module kadop

go 1.22
