package kadop

// End-to-end test of the command-line tools: builds the binaries, runs
// a two-peer TCP deployment, generates a corpus, publishes it, and
// queries it — the full kadop-peer/kadop-gen/kadop-publish/kadop-query
// workflow from the README.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// startDaemon launches a long-running tool, logging its output to a
// file (dumped on test failure), and returns its first stdout line (the
// banner) plus a stopper.
func startDaemon(t *testing.T, logPath, bin string, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
		logf.Close()
	}
	t.Cleanup(func() {
		if t.Failed() {
			out, _ := os.ReadFile(logPath)
			t.Logf("%s log:\n%s", filepath.Base(logPath), out)
		}
	})
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		for sc.Scan() {
			fmt.Fprintln(logf, sc.Text())
		}
	}()
	select {
	case line := <-lineCh:
		return line, stop
	case <-time.After(15 * time.Second):
		stop()
		t.Fatalf("%s produced no banner", bin)
		return "", nil
	}
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	peerBin := buildTool(t, dir, "kadop-peer")
	genBin := buildTool(t, dir, "kadop-gen")
	pubBin := buildTool(t, dir, "kadop-publish")
	queryBin := buildTool(t, dir, "kadop-query")

	// Two peers; the first also gets a disk store.
	banner1, stop1 := startDaemon(t, filepath.Join(dir, "p1.log"), peerBin,
		"-listen", "127.0.0.1:0", "-id", "1", "-store", filepath.Join(dir, "p1.bt"))
	defer stop1()
	fields := strings.Fields(banner1)
	addr := fields[len(fields)-1]
	if !strings.Contains(addr, ":") {
		t.Fatalf("no address in banner %q", banner1)
	}
	_, stop2 := startDaemon(t, filepath.Join(dir, "p2.log"), peerBin,
		"-listen", "127.0.0.1:0", "-id", "2", "-bootstrap", addr)
	defer stop2()

	// Generate a small corpus.
	corpusDir := filepath.Join(dir, "corpus")
	out, err := exec.Command(genBin, "-corpus", "dblp", "-records", "100", "-out", corpusDir).CombinedOutput()
	if err != nil {
		t.Fatalf("kadop-gen: %v\n%s", err, out)
	}
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.xml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}

	// Publish from an ephemeral peer that stays up to serve phase two.
	pubArgs := append([]string{"-bootstrap", addr, "-id", "10"}, files...)
	banner, stopPub := startDaemon(t, filepath.Join(dir, "pub.log"), pubBin, pubArgs...)
	defer stopPub()
	if !strings.Contains(banner, "published") {
		t.Fatalf("publish banner = %q", banner)
	}
	// Give the publisher a moment to finish the remaining files.
	deadline := time.Now().Add(30 * time.Second)
	var lastOut []byte
	for {
		lastOut, err = exec.Command(queryBin,
			"-bootstrap", addr, "-id", "99",
			fmt.Sprintf(`//article//author[. contains "Ullman"]`)).CombinedOutput()
		if err == nil && strings.Contains(string(lastOut), "answers") &&
			!strings.Contains(string(lastOut), " 0 answers") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never found answers: err=%v\n%s", err, lastOut)
		}
		time.Sleep(500 * time.Millisecond)
	}
	if !strings.Contains(string(lastOut), "candidate documents") {
		t.Fatalf("query output missing phase-one report:\n%s", lastOut)
	}
}
