package kadop

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestPeerRestartDurability is the end-to-end durability scenario: a
// TCP peer with a data directory publishes documents, stops, restarts
// from the same directory, and serves identical query results without a
// republish — including an append made by another peer while it was
// down, healed by the push/pull repair pair on rejoin.
func TestPeerRestartDurability(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "p2")
	// Replication 2 with retries: appends survive one peer being down,
	// which is what makes publish-while-down and repair-on-rejoin
	// meaningful.
	dcfg := DHTConfig{
		Replication: 2,
		Retry:       RetryPolicy{Attempts: 2, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	}
	cfg := Config{DHT: dcfg}

	p1, err := NewTCPPeer("127.0.0.1:0", 1, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	cfg2 := cfg
	cfg2.DataDir = dataDir
	p2, err := NewTCPPeer("127.0.0.1:0", 2, "", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	p2Addr := p2.Node().Self().Addr
	if err := Join(p2, p1.Node().Self().Addr); err != nil {
		t.Fatal(err)
	}
	if err := Join(p1, ""); err != nil {
		t.Fatal(err)
	}

	// p2 publishes durable documents.
	for i := 0; i < 4; i++ {
		doc := fmt.Sprintf(`<dblp><article><author>Serge Abiteboul</author><title>t%d</title></article></dblp>`, i)
		if _, err := p2.PublishXML([]byte(doc), fmt.Sprintf("p2-d%d.xml", i)); err != nil {
			t.Fatal(err)
		}
	}
	q := MustParseQuery(`//article//author[. contains "Abiteboul"]`)
	res, err := p1.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := len(res.Matches)
	if baseline != 4 {
		t.Fatalf("baseline matches = %d, want 4", baseline)
	}

	// Stop p2. Drop its contact from p1's routing table the way the
	// fault-tolerant RPC layer would after a failed call, so the
	// while-down publish routes around the dead peer deterministically.
	if err := p2.Close(); err != nil {
		t.Fatalf("close p2: %v", err)
	}
	p1.Node().Table().Remove(p2.Node().Self().ID)

	// p1 publishes while p2 is down; with p2 out of the owner sets the
	// appends land on the surviving replica.
	if _, err := p1.PublishXML(
		[]byte(`<dblp><article><author>Serge Abiteboul</author><title>while-down</title></article></dblp>`),
		"p1-d0.xml"); err != nil {
		t.Fatalf("publish while p2 down: %v", err)
	}

	// Restart p2 from the same data directory, on the same address (so
	// its DHT identity and key ownership are unchanged).
	p2r, err := NewTCPPeer(p2Addr, 2, "", cfg2)
	if err != nil {
		t.Fatalf("restart p2: %v", err)
	}
	defer p2r.Close()
	if got := p2r.DocumentCount(); got != 4 {
		t.Fatalf("restarted peer reloaded %d documents, want 4", got)
	}
	if err := Join(p2r, p1.Node().Self().Addr); err != nil {
		t.Fatalf("rejoin p2: %v", err)
	}
	if err := p2r.Reannounce(); err != nil {
		t.Fatalf("reannounce: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Heal both directions: p2 pulls appends its local terms missed;
	// p1 pushes keys p2 should own but has no local copy of.
	if _, err := p2r.Resync(ctx); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if _, err := p1.Node().RepairOnce(ctx); err != nil {
		t.Fatalf("repair push: %v", err)
	}

	// Old documents answer identically, plus the while-down publish —
	// with no republish anywhere.
	res, err = p1.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != baseline+1 {
		t.Fatalf("matches after restart = %d, want %d", len(res.Matches), baseline+1)
	}
	// And the restarted peer itself can answer queries (phase two runs
	// on its replayed documents).
	res, err = p2r.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != baseline+1 {
		t.Fatalf("matches queried at restarted peer = %d, want %d", len(res.Matches), baseline+1)
	}
}

// TestPeerRestartIdempotent checks a durable peer restarted with no
// downtime writes serves exactly its pre-shutdown state.
func TestPeerRestartIdempotent(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "solo")
	cfg := Config{DataDir: dataDir}
	p, err := NewTCPPeer("127.0.0.1:0", 1, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Node().Self().Addr
	if err := Join(p, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PublishXML([]byte(facadeDoc), "dblp.xml"); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//article//title`)
	res, err := p.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Matches)
	if want != 2 {
		t.Fatalf("matches before restart = %d, want 2", want)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	pr, err := NewTCPPeer(addr, 1, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if err := Join(pr, ""); err != nil {
		t.Fatal(err)
	}
	res, err = pr.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != want {
		t.Fatalf("matches after restart = %d, want %d", len(res.Matches), want)
	}
}
