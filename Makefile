GO ?= go

.PHONY: build test check bench bench-smoke fuzz-smoke crash-smoke churn-smoke slo-smoke load-smoke stats-smoke throughput-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: vet plus the full test suite
# under the race detector (the chaos tests exercise concurrent retries,
# repair and fault injection), then the seeded crash-recovery sweep,
# the churn emulation, the SLO/flight-recorder overload run, the
# adaptive-replication load gate, the statistics-registry estimation
# gate and the batched-engine throughput gate at smoke scale.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) crash-smoke
	$(MAKE) churn-smoke
	$(MAKE) slo-smoke
	$(MAKE) load-smoke
	$(MAKE) stats-smoke
	$(MAKE) throughput-smoke

# churn-smoke runs the churn emulation harness at its smallest scale: a
# seeded join/leave/crash schedule over a replicated overlay, asserting
# (via the printed report) that queries keep succeeding and the index
# converges back to the churn-free oracle. Deterministic: same seed,
# same schedule.
churn-smoke:
	$(GO) run ./cmd/kadop-bench -exp churn -short

# slo-smoke runs the observability-plane gate: a seeded overload run
# that fails unless the burn-rate alert fires under injected jitter and
# loss (and stays quiet when healthy), the flight watchdog writes a
# non-empty dump, and the dump's query trace ids also appear as
# histogram exemplars. Deterministic: same seed, same fault schedule.
slo-smoke:
	$(GO) run ./cmd/kadop-bench -exp slo -short

# load-smoke is the closed-loop skew gate: the load experiment's
# adaptive phase replays the same seeded Zipf stream before and after
# the replication controllers engage and exits non-zero unless the
# controllers promoted and BOTH the per-peer serving-load Gini and the
# query latency p99 strictly improved. Deterministic: same seed, same
# query mix in both phases.
load-smoke:
	$(GO) run ./cmd/kadop-bench -exp load -short

# stats-smoke is the query-cost-plane gate: a DPP deployment answers a
# repeated workload, the querier's statistics registry trains its
# selectivity EWMAs on warmup passes, and the run exits non-zero unless
# the measured p95 cardinality-estimation relative error stays under
# the bound and every phase (fetch, join, answers) reports nonzero
# operator actuals. Deterministic: same seed, same corpus, same
# estimates.
stats-smoke:
	$(GO) run ./cmd/kadop-bench -exp stats -short

# throughput-smoke is the batched-engine gate: the concurrent-workload
# experiment publishes the same corpus per-doc and through the bulk
# pipeline at fsync=always and fails unless group commit buys at least
# its bound in publish throughput; it then measures index-query p99
# idle, during an equal bulk publish into an UNRELATED cluster (the
# CPU-contention control) and during a bulk publish into the queried
# cluster itself, and fails if the last exceeds 1.5x the worse baseline
# plus slack — snapshot reads mean queries never wait on the writer, so
# publishing into the queried stores must cost no more than publishing
# next to them. Deterministic workload: same seed, same corpus.
throughput-smoke:
	$(GO) run ./cmd/kadop-bench -exp throughput -short

# crash-smoke is the durability gate: the crash-injection property and
# sweep tests at a fixed, deeper trial budget than the default `go
# test` run. Every trial kills the store's writes at an arbitrary byte
# offset and asserts recovery lands on exactly the committed prefix
# (the in-flight operation all-or-nothing). Deterministic: seeds derive
# from the trial index, so a failure reproduces by rerunning. Raise the
# budget with `make crash-smoke CRASH_TRIALS=400`.
CRASH_TRIALS ?= 160
crash-smoke:
	KADOP_CRASH_TRIALS=$(CRASH_TRIALS) $(GO) test -run 'TestCrash' -count=1 ./internal/store/

bench:
	$(GO) run ./cmd/kadop-bench -exp all -short

# bench-smoke is the fastest end-to-end signal that the experiment
# pipeline still runs: one figure, the robustness sweep (which also
# prints the per-phase latency percentiles), the block-cache cold/warm
# comparison and the load-distribution experiment, all at the smallest
# scales. The kadop-top selftest scrapes a live 4-peer cluster over
# HTTP and fails on an empty or malformed Prometheus exposition.
bench-smoke:
	$(GO) run ./cmd/kadop-bench -exp fig3 -short
	$(GO) run ./cmd/kadop-bench -exp robust -short
	$(GO) run ./cmd/kadop-bench -exp cache -short
	$(GO) run ./cmd/kadop-bench -exp load -short
	$(GO) run ./cmd/kadop-top -selftest 4

# fuzz-smoke runs each fuzz target for 30s on top of its checked-in
# seed corpus: the pattern parser, the posting codec, the DHT message
# codec, and the replica-advertisement codec.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/pattern/
	$(GO) test -run='^$$' -fuzz=FuzzCodec -fuzztime=30s ./internal/postings/
	$(GO) test -run='^$$' -fuzz=FuzzMessage -fuzztime=30s ./internal/dht/
	$(GO) test -run='^$$' -fuzz=FuzzReplicaSetCodec -fuzztime=30s ./internal/replicate/
