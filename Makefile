GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: vet plus the full test suite
# under the race detector (the chaos tests exercise concurrent retries,
# repair and fault injection).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/kadop-bench -exp all -short
