GO ?= go

.PHONY: build test check bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: vet plus the full test suite
# under the race detector (the chaos tests exercise concurrent retries,
# repair and fault injection).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/kadop-bench -exp all -short

# bench-smoke is the fastest end-to-end signal that the experiment
# pipeline still runs: one figure and the robustness sweep (which also
# prints the per-phase latency percentiles) at the smallest scales.
bench-smoke:
	$(GO) run ./cmd/kadop-bench -exp fig3 -short
	$(GO) run ./cmd/kadop-bench -exp robust -short
