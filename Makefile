GO ?= go

.PHONY: build test check bench bench-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 verification gate: vet plus the full test suite
# under the race detector (the chaos tests exercise concurrent retries,
# repair and fault injection).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/kadop-bench -exp all -short

# bench-smoke is the fastest end-to-end signal that the experiment
# pipeline still runs: one figure, the robustness sweep (which also
# prints the per-phase latency percentiles), the block-cache cold/warm
# comparison and the load-distribution experiment, all at the smallest
# scales. The kadop-top selftest scrapes a live 4-peer cluster over
# HTTP and fails on an empty or malformed Prometheus exposition.
bench-smoke:
	$(GO) run ./cmd/kadop-bench -exp fig3 -short
	$(GO) run ./cmd/kadop-bench -exp robust -short
	$(GO) run ./cmd/kadop-bench -exp cache -short
	$(GO) run ./cmd/kadop-bench -exp load -short
	$(GO) run ./cmd/kadop-top -selftest 4

# fuzz-smoke runs each fuzz target for 30s on top of its checked-in
# seed corpus: the pattern parser, the posting codec, and the DHT
# message codec.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/pattern/
	$(GO) test -run='^$$' -fuzz=FuzzCodec -fuzztime=30s ./internal/postings/
	$(GO) test -run='^$$' -fuzz=FuzzMessage -fuzztime=30s ./internal/dht/
