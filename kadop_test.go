package kadop

import (
	"fmt"
	"strings"
	"testing"
)

const facadeDoc = `<dblp>
  <article><author>Jeffrey Ullman</author><title>Database systems</title></article>
  <article><author>Serge Abiteboul</author><title>XML querying</title></article>
</dblp>`

func TestSimClusterEndToEnd(t *testing.T) {
	c, err := NewSimCluster(6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 6 {
		t.Fatalf("Size = %d", c.Size())
	}
	if _, err := c.Peer(0).PublishXML([]byte(facadeDoc), "dblp.xml"); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//article//author[. contains "Ullman"]`)
	res, err := c.Peer(3).Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	if c.TrafficBytes("index") == 0 {
		t.Error("no indexing traffic recorded")
	}
	if !strings.Contains(c.TrafficReport(), "index") {
		t.Error("traffic report missing classes")
	}
	c.ResetTraffic()
	if c.TrafficBytes("index") != 0 {
		t.Error("reset did not clear traffic")
	}
}

func TestSimClusterStrategiesAgree(t *testing.T) {
	c, err := NewSimCluster(8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 30; i++ {
		author := "Jane Doe"
		if i == 11 {
			author = "Jeffrey Ullman"
		}
		doc := fmt.Sprintf(`<dblp><article><author>%s</author><title>t%d</title></article></dblp>`, author, i)
		if _, err := c.Peer(i%8).PublishXML([]byte(doc), fmt.Sprintf("d%d.xml", i)); err != nil {
			t.Fatal(err)
		}
	}
	q := MustParseQuery(`//article//author[. contains "Ullman"]`)
	want := -1
	for _, s := range []Strategy{Conventional, ABReducer, DBReducer, BloomReducer, SubQueryReducer} {
		res, err := c.Peer(2).Query(q, QueryOptions{Strategy: s})
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if want == -1 {
			want = len(res.Matches)
		} else if len(res.Matches) != want {
			t.Errorf("strategy %v found %d matches, want %d", s, len(res.Matches), want)
		}
	}
	if want != 1 {
		t.Errorf("expected exactly 1 match, got %d", want)
	}
}

func TestParseQueryErrors(t *testing.T) {
	if _, err := ParseQuery("not a query"); err == nil {
		t.Error("invalid query should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseQuery should panic on bad input")
		}
	}()
	MustParseQuery("///")
}

func TestTCPPeersViaFacade(t *testing.T) {
	a, err := NewTCPPeer("127.0.0.1:0", 1, "", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Node().Close()
	b, err := NewTCPPeer("127.0.0.1:0", 2, "", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Node().Close()
	// Announce once the overlay is formed: directory entries are stored
	// at their key's current home and do not migrate on later joins.
	if err := Join(b, a.Node().Self().Addr); err != nil {
		t.Fatal(err)
	}
	if err := Join(a, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PublishXML([]byte(facadeDoc), "dblp.xml"); err != nil {
		t.Fatal(err)
	}
	res, err := b.Query(MustParseQuery(`//article//title`), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches over TCP = %d", len(res.Matches))
	}
}

func TestIntensionalFacade(t *testing.T) {
	c, err := NewSimCluster(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	files := map[string][]byte{
		"abs.xml": []byte(`<abstract>an interface story</abstract>`),
	}
	resolve := func(uri string) ([]byte, error) {
		b, ok := files[uri]
		if !ok {
			return nil, fmt.Errorf("no %s", uri)
		}
		return b, nil
	}
	var ixs []*Intensional
	for i := 0; i < 4; i++ {
		ixs = append(ixs, NewIntensional(c.Peer(i), Fundex, resolve))
	}
	host := `<!DOCTYPE article [<!ENTITY a SYSTEM "abs.xml">]>
<article><title>a system paper</title>&a;</article>`
	if _, err := ixs[0].Publish([]byte(host), "host.xml"); err != nil {
		t.Fatal(err)
	}
	ans, err := ixs[2].Query(MustParseQuery(
		`//article[contains(.//title,'system') and contains(.//abstract,'interface')]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Matches) == 0 {
		t.Fatal("intensional query found no answers")
	}
}
