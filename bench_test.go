package kadop

// One benchmark per table and figure of the paper's evaluation, each
// wrapping the corresponding experiment runner at a bench-friendly
// scale. `go test -bench=. -benchmem` regenerates every result;
// cmd/kadop-bench runs the same experiments at configurable scales and
// prints the paper-style tables.

import (
	"testing"

	"kadop/internal/experiments"
)

// BenchmarkFig2Indexing regenerates Figure 2: publishing time against
// corpus size, network size, publisher count and the DPP.
func BenchmarkFig2Indexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(experiments.Fig2Options{
			Records: []int{300, 600}, SmallPeers: 8, LargePeers: 16,
			Publishers: []int{4}, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig3QueryResponse regenerates Figure 3: index-query response
// time with and without the DPP.
func BenchmarkFig3QueryResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(experiments.Fig3Options{
			Records: []int{1500}, Peers: 12, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 { // without DPP, with DPP, with parallel join
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkTrafficWorkload regenerates the Section 4.3 traffic
// measurement: the 50-query workload over growing indexed volumes.
func BenchmarkTrafficWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTraffic(experiments.TrafficOptions{
			Records: []int{400, 800}, Peers: 10, Queries: 20, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkTable1DyadicCover regenerates Table 1: average dyadic-cover
// sizes over the five dataset shapes.
func BenchmarkTable1DyadicCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(experiments.Table1Options{Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkFilterSensitivity regenerates the Section 5.4 sensitivity
// analysis of the structural Bloom filters.
func BenchmarkFilterSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSensitivity(experiments.SensitivityOptions{
			Records: 2000, BasicFPs: []float64{0.05, 0.20}, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkFig7Strategies regenerates Figure 7(a,b,c): normalized data
// volume of the Bloom-reducer strategies.
func BenchmarkFig7Strategies(b *testing.B) {
	for _, variant := range []string{"a", "b", "c"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig7(experiments.Fig7Options{
					Variant: variant, Records: 800, Peers: 10, Seed: 6,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) < 3 {
					b.Fatal("missing strategies")
				}
			}
		})
	}
}

// BenchmarkFig9Fundex regenerates Figure 9: Fundex query processing
// over an intensional collection.
func BenchmarkFig9Fundex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(experiments.Fig9Options{
			Docs: []int{200}, Peers: 8, Matches: 5, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkStoreAblation regenerates the Section 3 store comparison
// (B+-tree vs PAST-like naive store vs memory).
func BenchmarkStoreAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStoreAblation(experiments.StoreAblationOptions{
			Batches: 60, BatchSize: 60, Seed: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkSplitAblation regenerates the Section 4.1 ordered-vs-random
// DPP split comparison.
func BenchmarkSplitAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSplitAblation(experiments.SplitAblationOptions{
			Records: 600, Peers: 10, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkPublishQuery is an end-to-end micro-benchmark of the public
// API: one publish plus one query per iteration on a standing cluster.
func BenchmarkPublishQuery(b *testing.B) {
	c, err := NewSimCluster(6, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	q := MustParseQuery(`//article//author`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Peer(i%6).PublishXML([]byte(facadeDoc), "bench.xml"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Peer((i+3)%6).Query(q, QueryOptions{IndexOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}
