// Package kadop is the public face of this repository: a from-scratch
// Go implementation of KadoP, the DHT-based peer-to-peer XML indexing
// and query processing system of "XML processing in DHT networks"
// (Abiteboul, Manolescu, Polyzotis, Preda, Sun — ICDE 2008).
//
// A KadoP deployment is a set of peers connected by a Kademlia-style
// distributed hash table. Peers publish XML documents: the documents
// stay at their publisher, while the index — postings of element labels
// and words, identified by structural ids — is distributed across all
// peers by term. Tree-pattern queries (an XPath subset) are answered in
// two phases: an index query joins the terms' posting lists with a
// holistic twig join to find candidate documents, then the documents'
// peers compute the final answers.
//
// The three contributions of the paper are all available:
//
//   - DPP (Section 4): posting lists of popular terms partition into
//     range-condition blocks spread over peers, fetched in parallel and
//     filtered by document intervals (Config.UseDPP).
//   - Structural Bloom Filters (Section 5): AB/DB filters reduce
//     posting transfers; select a strategy with QueryOptions.Strategy.
//   - Fundex (Section 6): intensional documents (external entity
//     includes) indexed once and completed through reverse pointers
//     (the Intensional type).
//
// The quickest start is a simulated deployment:
//
//	cluster, _ := kadop.NewSimCluster(8, kadop.Config{})
//	defer cluster.Close()
//	cluster.Peer(0).PublishXML(xmlBytes, "doc.xml")
//	q := kadop.MustParseQuery(`//article//author[. contains "Ullman"]`)
//	res, _ := cluster.Peer(1).Query(q, kadop.QueryOptions{})
//
// For real multi-node deployments, create peers over TCP with NewTCPPeer
// and join them with Join. The cmd/kadop-peer, cmd/kadop-publish and
// cmd/kadop-query programs wrap exactly this API.
package kadop

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kadop/internal/admin"
	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/fundex"
	ikadop "kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/obs/flight"
	"kadop/internal/obs/querylog"
	"kadop/internal/obs/slo"
	"kadop/internal/pattern"
	"kadop/internal/replicate"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/trace"
)

// Re-exported core types. The underlying packages carry the full
// documentation.
type (
	// Config configures a peer (DPP, pipelining, filter rates).
	Config = ikadop.Config
	// Peer is one KadoP peer.
	Peer = ikadop.Peer
	// Query is a tree-pattern query.
	Query = pattern.Query
	// QueryOptions select the evaluation strategy for one query.
	QueryOptions = ikadop.QueryOptions
	// Result is a query's outcome.
	Result = ikadop.Result
	// Strategy is a phase-one transfer strategy (Section 5.3).
	Strategy = ikadop.Strategy
	// DPPOptions configure distributed posting partitioning.
	DPPOptions = dpp.Options
	// DocKey identifies a document in the collection.
	DocKey = sid.DocKey
	// PeerID is a peer's internal integer identifier.
	PeerID = sid.PeerID
	// LinkModel shapes simulated network links.
	LinkModel = dht.LinkModel
	// DHTConfig configures the overlay node (replication, retries,
	// repair cadence) via Config.DHT.
	DHTConfig = dht.Config
	// RetryPolicy governs RPC retry attempts and backoff.
	RetryPolicy = dht.RetryPolicy
	// TrafficClass labels traffic in the collector reports.
	TrafficClass = metrics.Class
	// Intensional layers Section 6 intensional-data handling on a peer.
	Intensional = fundex.Indexer
	// IntensionalMode selects naive/brutal/fundex/inline/representative.
	IntensionalMode = fundex.Mode
	// Resolver materialises referenced documents for the Fundex.
	Resolver = fundex.Resolver
	// Tracer records query traces into a bounded in-memory ring.
	Tracer = trace.Tracer
	// Trace is one recorded query timeline; render it with Tree().
	Trace = trace.Trace
	// QueryLogger emits one structured JSONL record per sampled query;
	// install one via Config.QueryLog.
	QueryLogger = querylog.Logger
	// QueryLogOptions tune a QueryLogger (sampling rate).
	QueryLogOptions = querylog.Options
	// FlightRecorder is the per-peer forensic ring of recent annotated
	// events; install one via EnableFlight.
	FlightRecorder = flight.Recorder
	// FlightWatchdog snapshots a flight recorder to disk when tripped.
	FlightWatchdog = flight.Watchdog
	// SLOEngine evaluates declarative objectives with multi-window
	// burn-rate alerting; build one via EnableSLO.
	SLOEngine = slo.Engine
	// SLOWindow is one burn-rate alert condition (short/long look-back
	// plus threshold).
	SLOWindow = slo.Window
	// SLOAlert is one burn-rate condition newly met.
	SLOAlert = slo.Alert
	// SLOStatus is one objective's current evaluation.
	SLOStatus = slo.Status
	// ReplicateConfig parameterises the adaptive hot-term replication
	// controller (Config.Replicate): promotion threshold, extra replica
	// count, lease TTL and control-loop interval.
	ReplicateConfig = replicate.Config
	// ReplicationController is the per-peer closed loop promoting hot
	// terms to extra replicas; reach it via Peer.Replicator.
	ReplicationController = replicate.Controller
	// FsyncPolicy selects when the index WAL is fsynced (Config.Fsync):
	// it trades publish throughput for the durability window, never
	// consistency — a crash under any policy recovers to a committed
	// prefix.
	FsyncPolicy = store.FsyncPolicy
	// BatchingConfig tunes the publish-path write coalescer
	// (Config.Batching): concurrent index appends group into single WAL
	// commits, one fsync per batch.
	BatchingConfig = ikadop.BatchingConfig
	// BatchDoc is one document of a Peer.PublishXMLBatch bulk publish.
	BatchDoc = ikadop.BatchDoc
	// TreeDoc is one document of a Peer.PublishBatch bulk publish
	// (already parsed).
	TreeDoc = ikadop.TreeDoc
)

// Index WAL fsync policies (Config.Fsync, effective with
// Config.DataDir).
const (
	// FsyncAlways makes every acknowledged publish durable (default).
	FsyncAlways = store.FsyncAlways
	// FsyncInterval group-commits: a crash loses at most ~50ms of
	// acknowledged operations.
	FsyncInterval = store.FsyncInterval
	// FsyncOff leaves flushing to the OS page cache.
	FsyncOff = store.FsyncOff
)

// ParseFsyncPolicy parses "always", "interval" or "off" (the -fsync
// flag of kadop-peer).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return store.ParseFsyncPolicy(s) }

// Query strategies (Section 5.3).
const (
	Conventional    = ikadop.Conventional
	ABReducer       = ikadop.ABReducer
	DBReducer       = ikadop.DBReducer
	BloomReducer    = ikadop.BloomReducer
	SubQueryReducer = ikadop.SubQueryReducer
	// AutoStrategy picks a plan from the stored list sizes (the paper's
	// Section 5.4 heuristic).
	AutoStrategy = ikadop.AutoStrategy
)

// Intensional-data modes (Section 6).
const (
	Naive          = fundex.Naive
	Brutal         = fundex.Brutal
	Fundex         = fundex.Fundex
	Inline         = fundex.Inline
	Representative = fundex.Representative
)

// ParseQuery parses the supported XPath subset into a tree-pattern
// query (see internal/pattern for the grammar).
func ParseQuery(s string) (*Query, error) { return pattern.Parse(s) }

// MustParseQuery is ParseQuery for statically known strings; it panics
// on error.
func MustParseQuery(s string) *Query { return pattern.MustParse(s) }

// NewIntensional layers intensional-data support (Section 6) over a
// peer. All peers of a deployment must use the same mode and must be
// able to resolve the same reference URIs.
func NewIntensional(p *Peer, mode IntensionalMode, resolve Resolver) *Intensional {
	return fundex.New(p, mode, resolve)
}

// EnableTracing installs a fresh tracer keeping the peer's most recent
// capacity traces (16 if capacity <= 0) and returns it. Every query the
// peer runs from then on records a phase-attributed timeline, viewable
// through Result.Trace or the debug endpoint. Tracing is off until this
// is called; the untraced hot path costs two words per message and one
// context lookup per operation.
func EnableTracing(p *Peer, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 16
	}
	tr := trace.New(capacity)
	p.Node().SetTracer(tr)
	return tr
}

// EnableFlight installs a flight recorder retaining the peer's most
// recent capacity events (4096 if capacity <= 0) and returns it. From
// then on the peer's RPCs, robustness events, cache misses and query
// completions land in the ring, dumpable via /debug/flight or
// Recorder.TakeDump. The recorder stays on in production: recording is
// one shard-local lock and a struct copy per event.
func EnableFlight(p *Peer, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	rec := flight.New(capacity)
	p.Node().SetFlight(rec)
	if c := p.BlockCache(); c != nil {
		c.SetFlight(rec)
	}
	return rec
}

// SLOOptions configure EnableSLO. The zero value is a production-ready
// default: 99.9% query availability, 99% of queries under ~500ms, the
// classic SRE multi-window burn-rate pairs, evaluated every 5 seconds.
type SLOOptions struct {
	// AvailabilityTarget is the required fraction of queries that
	// succeed (default 0.999).
	AvailabilityTarget float64
	// LatencyTarget is the required fraction of queries at or under
	// LatencyThreshold (default 0.99).
	LatencyTarget float64
	// LatencyThreshold is the latency SLO's cut-off (default 500ms,
	// rounded up to the owning histogram bucket).
	LatencyThreshold time.Duration
	// Windows are the burn-rate alert conditions; the SRE default pairs
	// (5m/1h at 14.4x pages, 30m/6h at 6x tickets) when empty.
	Windows []SLOWindow
	// Interval is the evaluation cadence (default 5s). Negative
	// disables the background loop — drive Engine.Tick yourself (tests
	// and experiments use this for determinism).
	Interval time.Duration
	// FlightDir, when set, arms a flight watchdog: each burn-rate alert
	// snapshots the peer's flight recorder into this directory
	// (rate-limited), so the forensics of the moment the budget started
	// burning survive the ring. Install the recorder with EnableFlight.
	FlightDir string
	// OnAlert additionally receives each burn-rate alert transition.
	OnAlert func(SLOAlert)
}

// EnableSLO builds and starts the peer's SLO engine with two
// objectives over counters the peer already maintains:
//
//	query-availability  queries that did not error
//	query-latency       queries at or under the latency threshold
//
// Burn rates and verdicts are exported as kadop_slo_* gauges on
// /metrics (and /debug/slo via ServeDebug), where kadop-top picks them
// up for the cluster health verdict. The returned stop function halts
// the background evaluation loop.
func EnableSLO(p *Peer, o SLOOptions) (*SLOEngine, func(), error) {
	if o.AvailabilityTarget == 0 {
		o.AvailabilityTarget = 0.999
	}
	if o.LatencyTarget == 0 {
		o.LatencyTarget = 0.99
	}
	if o.LatencyThreshold <= 0 {
		o.LatencyThreshold = 500 * time.Millisecond
	}
	reg := p.Node().Registry()
	queries := reg.Counter("kadop_queries_total", "Queries evaluated by this peer.")
	errors := reg.Counter("kadop_query_errors_total", "Queries that failed (after retries and partial-result handling).")
	onAlert := o.OnAlert
	if o.FlightDir != "" {
		// The watchdog resolves the recorder lazily at the first alert, so
		// EnableFlight and EnableSLO may be called in either order.
		var wd *FlightWatchdog
		var once sync.Once
		dir, user := o.FlightDir, o.OnAlert
		onAlert = func(a SLOAlert) {
			once.Do(func() { wd = flight.NewWatchdog(p.Node().Flight(), dir, 0) })
			wd.Trip(a.String())
			if user != nil {
				user(a)
			}
		}
	}
	eng, err := slo.New(slo.Config{
		Objectives: []slo.Objective{
			{
				Name:        "query-availability",
				Description: fmt.Sprintf("%.4g%% of queries succeed", o.AvailabilityTarget*100),
				Target:      o.AvailabilityTarget,
				Source: slo.CounterSource(
					func() int64 { return queries.Value() - errors.Value() },
					errors.Value,
				),
			},
			{
				Name:        "query-latency",
				Description: fmt.Sprintf("%.4g%% of queries under %s", o.LatencyTarget*100, o.LatencyThreshold),
				Target:      o.LatencyTarget,
				Source:      slo.LatencySource(p.Node().Metrics(), metrics.OpQueryTotal, o.LatencyThreshold),
			},
		},
		Windows:  o.Windows,
		Registry: reg,
		OnAlert:  onAlert,
	})
	if err != nil {
		return nil, nil, err
	}
	if o.Interval < 0 {
		return eng, func() {}, nil
	}
	return eng, eng.Start(o.Interval), nil
}

// ParseSLOTarget parses a "99.9" / "0.999"-style SLO target into a
// fraction; values above 1 are read as percentages (the kadop-peer
// -slo-* flags).
func ParseSLOTarget(s string) (float64, error) { return slo.ParseTarget(s) }

// DebugOptions select what the introspection endpoint exposes beyond
// the peer's always-available sections (metrics, load, peer, cache,
// flight).
type DebugOptions struct {
	// Tracer exposes /debug/traces (from EnableTracing).
	Tracer *Tracer
	// SLO exposes /debug/slo (from EnableSLO).
	SLO *SLOEngine
	// Pprof mounts the net/http/pprof profiling handlers — off by
	// default because the debug address is often bound on a reachable
	// interface.
	Pprof bool
	// BuildInfo adds kadop_build_info and the process start-time gauge
	// to /metrics. The binaries turn it on.
	BuildInfo bool
}

// ServeDebug starts the live introspection endpoint for a peer on addr
// (e.g. "127.0.0.1:6060"): /metrics (Prometheus exposition),
// /debug/metrics, /debug/load, /debug/traces, /debug/peer,
// /debug/flight and /debug/slo. It returns the bound address and a
// shutdown function. The peer's flight recorder (EnableFlight) is
// picked up automatically; tracer and SLO engine are passed through
// DebugOptions.
func ServeDebug(addr string, p *Peer, o DebugOptions) (string, func() error, error) {
	return admin.Serve(addr, admin.Options{
		Collector: p.Node().Metrics(),
		Tracer:    o.Tracer,
		Node:      p.Node(),
		Docs:      p.DocumentCount,
		Cache:     p.BlockCache(),
		Pprof:     o.Pprof,
		SLO:       o.SLO,
		Stats:     p.Stats(),
		BuildInfo: o.BuildInfo,
	})
}

// FormatExplain renders a query result for -explain/-explain-analyze:
// the span tree, and with analyze also the per-phase table comparing
// the statistics registry's estimate with the recorded actuals.
func FormatExplain(res *Result, analyze bool) string {
	return ikadop.FormatExplain(res, analyze)
}

// NewQueryLog returns a query logger writing JSONL records to w; set
// it on Config.QueryLog before creating the peer. The kadop-query
// -log flag is a thin wrapper around this.
func NewQueryLog(w io.Writer, o QueryLogOptions) *QueryLogger {
	return querylog.New(w, o)
}

// OpenRotatingLog opens a size-capped JSONL sink for NewQueryLog:
// when path would exceed maxBytes (64MiB if <= 0) it is rotated to
// path.1 … path.<keep> (3 if <= 0) and a fresh file opened, so a
// long-lived peer's query log has a bounded disk footprint.
func OpenRotatingLog(path string, maxBytes int64, keep int) (io.WriteCloser, error) {
	return querylog.OpenRotating(path, maxBytes, keep)
}

// SimCluster is an in-process deployment: every peer runs over the
// simulated network, which models link latency/bandwidth and accounts
// traffic. It is the vehicle for experiments and tests — one process
// comfortably hosts hundreds of peers.
type SimCluster struct {
	net   *dht.Network
	nodes []*dht.Node
	peers []*ikadop.Peer
}

// NewSimCluster starts n peers on a fresh simulated network, fully
// bootstrapped, with internal peer ids 1..n.
func NewSimCluster(n int, cfg Config) (*SimCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("kadop: cluster needs at least one peer")
	}
	c := &SimCluster{net: dht.NewNetwork()}
	for i := 0; i < n; i++ {
		nd, err := dht.NewNode(c.net.NewEndpoint(), store.NewMem(), cfg.DHT)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	for i := 1; i < n; i++ {
		if err := c.nodes[i].Bootstrap(c.nodes[0].Self()); err != nil {
			return nil, err
		}
	}
	for _, nd := range c.nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			return nil, err
		}
	}
	for i, nd := range c.nodes {
		p, err := ikadop.NewPeer(nd, sid.PeerID(i+1), cfg)
		if err != nil {
			return nil, err
		}
		c.peers = append(c.peers, p)
	}
	for _, p := range c.peers {
		if err := p.Announce(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Peer returns the i-th peer (0-based).
func (c *SimCluster) Peer(i int) *Peer { return c.peers[i] }

// Size returns the number of peers.
func (c *SimCluster) Size() int { return len(c.peers) }

// SetLinkModel installs a latency/bandwidth model on the simulated
// network (zero value = infinitely fast links).
func (c *SimCluster) SetLinkModel(m LinkModel) { c.net.SetModel(m) }

// TrafficBytes reports the bytes moved so far in one traffic class.
func (c *SimCluster) TrafficBytes(class TrafficClass) int64 {
	return c.net.Collector.Bytes(class)
}

// TrafficReport renders all traffic counters.
func (c *SimCluster) TrafficReport() string { return c.net.Collector.Snapshot() }

// EnableTracing installs one shared tracer on every peer of the
// cluster (capacity <= 0 defaults to 16) and returns it. Because the
// tracer is shared, server-side spans join the querying peer's trace
// and a query's timeline shows the whole cluster's work.
func (c *SimCluster) EnableTracing(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 16
	}
	tr := trace.New(capacity)
	for _, nd := range c.nodes {
		nd.SetTracer(tr)
	}
	return tr
}

// LatencyQuantile reports the q-quantile (0..1) of the named operation's
// latency histogram — e.g. kadop.OpQueryTotal — over the cluster's
// shared collector. Zero when the operation was never observed.
func (c *SimCluster) LatencyQuantile(op string, q float64) time.Duration {
	return c.net.Collector.Quantile(op, q)
}

// Histogram operation names accepted by LatencyQuantile.
const (
	OpLookup           = metrics.OpLookup
	OpPostingsTransfer = metrics.OpPostingsTransfer
	OpTwigJoin         = metrics.OpTwigJoin
	OpFilterExchange   = metrics.OpFilterExchange
	OpQueryIndex       = metrics.OpQueryIndex
	OpQueryTotal       = metrics.OpQueryTotal
	OpSecondPhase      = metrics.OpSecondPhase
)

// ResetTraffic zeroes the traffic counters.
func (c *SimCluster) ResetTraffic() { c.net.Collector.Reset() }

// Close shuts the cluster down.
func (c *SimCluster) Close() {
	for _, nd := range c.nodes {
		nd.Close()
	}
}

// NewTCPPeer starts a peer listening on addr (e.g. "127.0.0.1:0") with
// the given internal id. The index store is, in order of precedence:
// Config.DataDir (a durable peer — B+-tree with WAL at
// DataDir/index.bt under Config.Fsync, plus the peer-state journal and
// DPP roots, all surviving restarts), storePath (a bare disk B+-tree,
// as before), or in-memory. Join it to an existing deployment with
// Join; restart a durable peer from the same DataDir and call Resync
// after rejoining. Shut it down with Peer.Close, which flushes and
// closes the store.
func NewTCPPeer(addr string, id PeerID, storePath string, cfg Config) (*Peer, error) {
	tr, err := dht.NewTCPTransport(addr, metrics.NewCollector(), 30*time.Second)
	if err != nil {
		return nil, err
	}
	var st store.Store
	switch {
	case cfg.DataDir != "":
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			tr.Close()
			return nil, err
		}
		st, err = store.OpenBTreeOptions(filepath.Join(cfg.DataDir, "index.bt"), store.Options{Fsync: cfg.Fsync})
		if err != nil {
			tr.Close()
			return nil, err
		}
	case storePath != "":
		st, err = store.OpenBTree(storePath)
		if err != nil {
			tr.Close()
			return nil, err
		}
	default:
		st = store.NewMem()
	}
	if cfg.Batching.Enabled {
		// The coalescer turns concurrent index appends into group
		// commits: one WAL transaction and one fsync per batch. Close
		// order is unchanged — closing the coalescer drains its queue
		// and closes the wrapped store.
		st = store.NewCoalescer(st, store.CoalesceOptions{
			MaxOps:   cfg.Batching.MaxOps,
			MaxDelay: cfg.Batching.MaxDelay,
		})
	}
	nd, err := dht.NewNode(tr, st, cfg.DHT)
	if err != nil {
		tr.Close()
		st.Close()
		return nil, err
	}
	p, err := ikadop.NewPeer(nd, id, cfg)
	if err != nil {
		nd.Close()
		st.Close()
		return nil, err
	}
	p.AttachStore(st)
	return p, nil
}

// NewTCPClientPeer starts a query-only peer over TCP: it never enters
// other peers' routing tables and owns no index keys, so it may come
// and go freely without destabilising the overlay (a short-lived full
// peer takes ownership of keys and leaves dangling owners behind when
// it exits). Join it with JoinClient; it cannot publish durably.
func NewTCPClientPeer(addr string, id PeerID, cfg Config) (*Peer, error) {
	tr, err := dht.NewTCPTransport(addr, metrics.NewCollector(), 30*time.Second)
	if err != nil {
		return nil, err
	}
	dcfg := cfg.DHT
	dcfg.Client = true
	nd, err := dht.NewNode(tr, store.NewMem(), dcfg)
	if err != nil {
		tr.Close()
		return nil, err
	}
	return ikadop.NewPeer(nd, id, cfg)
}

// JoinClient bootstraps a client peer without announcing it (clients
// hold no documents, so nothing needs to find them by id).
func JoinClient(p *Peer, bootstrapAddr string) error {
	return p.Node().Bootstrap(dht.Contact{Addr: bootstrapAddr})
}

// Join bootstraps a peer into the overlay through a known address and
// announces it in the Peer relation.
func Join(p *Peer, bootstrapAddr string) error {
	if bootstrapAddr != "" {
		if err := p.Node().Bootstrap(dht.Contact{Addr: bootstrapAddr}); err != nil {
			return err
		}
	}
	return p.Announce()
}
