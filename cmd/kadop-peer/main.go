// Command kadop-peer runs one long-lived KadoP peer over TCP.
//
// The first peer of a deployment needs no bootstrap address; every
// later peer joins through any running peer:
//
//	kadop-peer -listen 127.0.0.1:7001 -id 1 -store /var/lib/kadop/p1.bt
//	kadop-peer -listen 127.0.0.1:7002 -id 2 -bootstrap 127.0.0.1:7001
//
// The peer serves its slice of the distributed index and answers
// phase-two query evaluation for the documents it publishes. Use
// kadop-publish and kadop-query against any running peer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"kadop"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		bootstrap = flag.String("bootstrap", "", "address of any running peer (empty for the first peer)")
		id        = flag.Uint("id", 0, "internal peer id (unique across the deployment, > 0)")
		storePath = flag.String("store", "", "B+-tree index file (empty = in-memory; superseded by -data)")
		dataDir   = flag.String("data", "", "durable data directory: index WAL, published documents and directory entries survive restarts from it")
		fsyncMode = flag.String("fsync", "always", "index WAL fsync policy with -data: always|interval|off")
		batch     = flag.Bool("batch", false, "coalesce concurrent index appends into group-committed WAL batches (one fsync per batch)")
		batchOps  = flag.Int("batch-ops", 0, "max operations per coalesced batch (with -batch; 0 = default 256)")
		batchWait = flag.Duration("batch-wait", 0, "extra time a batch leader waits to grow its group (with -batch; 0 = flush immediately)")
		useDPP    = flag.Bool("dpp", false, "enable distributed posting partitioning")
		cache     = flag.Int64("cache", 0, "posting-block cache capacity in bytes (0 = off; effective with -dpp)")
		repl      = flag.Int("replication", 1, "index replication factor (all peers of a deployment must agree)")
		repair    = flag.Duration("repair", 0, "replica repair cadence, e.g. 30s (0 = off; needs -replication > 1)")
		replicate = flag.Duration("replicate", 0, "adaptive hot-term replication control-loop cadence, e.g. 10s (0 = off)")
		replExtra = flag.Int("replicate-extra", 2, "extra replicas a promoted hot term gets (with -replicate)")
		replHot   = flag.Int64("replicate-hot", 16<<10, "promotion threshold: bytes of a term served per decay window (with -replicate)")
		replLease = flag.Duration("replicate-lease", 30*time.Second, "replica advertisement lease TTL (with -replicate)")
		shedRate  = flag.Float64("shed-rate", 0, "admission gate: sustained reads/second served before shedding (0 = off)")
		shedBurst = flag.Float64("shed-burst", 0, "admission gate burst headroom in reads (default max(shed-rate,1))")
		refresh   = flag.Duration("refresh", 5*time.Minute, "stale routing-bucket refresh cadence (0 = off)")
		republish = flag.Duration("republish", 0, "directory re-registration cadence, e.g. 5m (0 = off)")
		probeTO   = flag.Duration("probe-timeout", 2*time.Second, "liveness probe timeout before evicting a failed contact (0 = evict immediately)")
		leaveTO   = flag.Duration("leave-timeout", 30*time.Second, "budget for handing keys off on SIGTERM/SIGINT before closing")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/{metrics,load,traces,peer,flight,slo} on this address (off by default)")
		pprofOn   = flag.Bool("pprof", false, "also serve /debug/pprof profiling handlers on the debug address")
		flightCap = flag.Int("flight", 4096, "flight-recorder capacity in events (0 = off); dump via /debug/flight")
		flightDir = flag.String("flight-dir", "", "directory for watchdog flight dumps on SLO burn alerts (default <data>/flight with -data)")
		slowQuery = flag.Duration("slow-query", time.Second, "slow-query capture threshold: queries at or over it are logged with their full trace, bypassing sampling (0 = off)")
		sloOn     = flag.Bool("slo", false, "run the SLO engine (query availability + latency burn-rate alerting; /debug/slo, kadop_slo_* on /metrics)")
		sloAvail  = flag.String("slo-availability", "99.9", "availability SLO target (percent or fraction)")
		sloLatPct = flag.String("slo-latency", "99", "latency SLO target (percent or fraction)")
		sloLatThr = flag.Duration("slo-threshold", 500*time.Millisecond, "latency SLO threshold (rounded up to the owning histogram bucket)")
	)
	flag.Parse()
	if *id == 0 {
		fmt.Fprintln(os.Stderr, "kadop-peer: -id is required and must be > 0")
		os.Exit(2)
	}
	fsync, err := kadop.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-peer:", err)
		os.Exit(2)
	}

	cfg := kadop.Config{
		UseDPP: *useDPP, CacheBytes: *cache, DHT: deployDHT(*repl, *repair, *refresh, *probeTO),
		DataDir: *dataDir, Fsync: fsync, RepublishInterval: *republish,
		SlowQuery: *slowQuery,
		ShedRate:  *shedRate, ShedBurst: *shedBurst,
	}
	if *batch {
		cfg.Batching = kadop.BatchingConfig{Enabled: true, MaxOps: *batchOps, MaxDelay: *batchWait}
	}
	if *replicate > 0 {
		cfg.Replicate = kadop.ReplicateConfig{
			Enabled:  true,
			Interval: *replicate,
			Extra:    *replExtra,
			HotBytes: *replHot,
			Lease:    *replLease,
			Seed:     int64(*id),
		}
	}
	// A restart is a start whose data directory already has an index.
	restarting := false
	if *dataDir != "" {
		if _, err := os.Stat(*dataDir); err == nil {
			restarting = true
		}
	}
	peer, err := kadop.NewTCPPeer(*listen, kadop.PeerID(*id), *storePath, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-peer:", err)
		os.Exit(1)
	}
	// The flight recorder is always-on forensics: it costs a bounded
	// ring of structs and answers "what was this peer doing" after the
	// fact, with or without the debug endpoint.
	if *flightCap > 0 {
		kadop.EnableFlight(peer, *flightCap)
	}
	// Slow-query capture and histogram exemplars need trace ids, so the
	// tracer rides along whenever either consumer is on.
	var tracer *kadop.Tracer
	if *debugAddr != "" || *slowQuery > 0 {
		tracer = kadop.EnableTracing(peer, 64)
	}
	var sloEngine *kadop.SLOEngine
	if *sloOn {
		avail, err := kadop.ParseSLOTarget(*sloAvail)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kadop-peer:", err)
			os.Exit(2)
		}
		lat, err := kadop.ParseSLOTarget(*sloLatPct)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kadop-peer:", err)
			os.Exit(2)
		}
		dir := *flightDir
		if dir == "" && *dataDir != "" {
			dir = filepath.Join(*dataDir, "flight")
		}
		eng, stop, err := kadop.EnableSLO(peer, kadop.SLOOptions{
			AvailabilityTarget: avail,
			LatencyTarget:      lat,
			LatencyThreshold:   *sloLatThr,
			FlightDir:          dir,
			OnAlert: func(a kadop.SLOAlert) {
				fmt.Fprintln(os.Stderr, "kadop-peer:", a)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kadop-peer: slo:", err)
			os.Exit(2)
		}
		defer stop()
		sloEngine = eng
	}
	if *debugAddr != "" {
		addr, stop, err := kadop.ServeDebug(*debugAddr, peer, kadop.DebugOptions{
			Tracer: tracer, SLO: sloEngine, Pprof: *pprofOn, BuildInfo: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kadop-peer: debug endpoint %s: %v\n", *debugAddr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "kadop-peer: debug endpoint on http://%s\n", addr)
	}
	if err := kadop.Join(peer, *bootstrap); err != nil {
		fmt.Fprintln(os.Stderr, "kadop-peer: join:", err)
		os.Exit(1)
	}
	if restarting {
		// Rejoining from durable state: re-register the documents this
		// peer serves and pull index appends made while it was down.
		if err := peer.Reannounce(); err != nil {
			fmt.Fprintln(os.Stderr, "kadop-peer: reannounce:", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		healed, err := peer.Resync(ctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "kadop-peer: resync:", err)
		}
		fmt.Fprintf(os.Stderr, "kadop-peer: restarted from %s: %d documents, %d terms resynced\n",
			*dataDir, peer.DocumentCount(), healed)
	}
	fmt.Printf("kadop-peer %d listening on %s\n", *id, peer.Node().Self().Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	// A terminating peer leaves gracefully: every key it holds is
	// confirmed (or re-pushed) on the remaining owner set before the
	// listener goes down, so the departure loses no index data.
	fmt.Println("kadop-peer: leaving (handing keys off)")
	ctx, cancel := context.WithTimeout(context.Background(), *leaveTO)
	moved, err := peer.Leave(ctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-peer: leave:", err)
		os.Exit(1)
	}
	fmt.Printf("kadop-peer: left cleanly, %d keys handed off\n", moved)
}

// deployDHT is the overlay configuration of a real deployment: retries
// absorb transient network failures, replication > 1 keeps the index
// alive across peer crashes (with repair re-filling lost copies),
// probation pings keep one dropped message from costing a live peer
// its table slot, and the refresher keeps idle routing buckets honest
// under churn.
func deployDHT(replication int, repair, refresh, probe time.Duration) kadop.DHTConfig {
	return kadop.DHTConfig{
		Replication: replication,
		Retry: kadop.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  time.Second,
		},
		RepairInterval:  repair,
		RefreshInterval: refresh,
		ProbeTimeout:    probe,
	}
}
