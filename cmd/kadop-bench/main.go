// Command kadop-bench regenerates the paper's tables and figures.
//
// Each experiment of the evaluation has a sub-experiment name; -exp all
// runs everything. Scales default to laptop-sized runs; raise -records,
// -peers and friends to approach the paper's Grid5000 scales.
//
//	kadop-bench -exp fig3 -records 1000,2000,4000 -peers 100
//	kadop-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kadop/internal/admin"
	"kadop/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig2|fig3|traffic|table1|sensitivity|fig7a|fig7b|fig7c|fig9|store|split|robust|churn|cache|load|durability|throughput|slo|stats|all")
		records   = flag.String("records", "", "comma-separated corpus sizes in records (experiment-specific default)")
		peers     = flag.Int("peers", 0, "network size (experiment-specific default)")
		seed      = flag.Int64("seed", 1, "workload seed")
		short     = flag.Bool("short", false, "smallest scales (smoke run)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof on this address while experiments run")
	)
	flag.Parse()

	if *debugAddr != "" {
		// Profiling is the whole point of a bench-side debug endpoint, so
		// pprof is on here (unlike the long-lived peers, where it is
		// flag-gated).
		addr, stop, err := admin.Serve(*debugAddr, admin.Options{Pprof: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kadop-bench: debug endpoint %s: %v\n", *debugAddr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "kadop-bench: debug endpoint on http://%s\n", addr)
	}

	sizes, err := parseSizes(*records)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-bench:", err)
		os.Exit(2)
	}
	if *short {
		sizes = []int{200, 400}
	}

	runners := map[string]func() (interface{ Format() string }, error){
		"fig2": func() (interface{ Format() string }, error) {
			o := experiments.Fig2Options{Records: sizes, Seed: *seed, WithNaiveStore: true}
			if *peers > 0 {
				o.SmallPeers, o.LargePeers = *peers/2, *peers
			}
			if *short {
				o.WithNaiveStore = false
			}
			return experiments.RunFig2(o)
		},
		"fig3": func() (interface{ Format() string }, error) {
			return experiments.RunFig3(experiments.Fig3Options{Records: sizes, Peers: *peers, Seed: *seed})
		},
		"traffic": func() (interface{ Format() string }, error) {
			return experiments.RunTraffic(experiments.TrafficOptions{Records: sizes, Peers: *peers, Seed: *seed})
		},
		"table1": func() (interface{ Format() string }, error) {
			return experiments.RunTable1(experiments.Table1Options{Seed: *seed})
		},
		"sensitivity": func() (interface{ Format() string }, error) {
			o := experiments.SensitivityOptions{Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			return experiments.RunSensitivity(o)
		},
		"fig7a": fig7Runner("a", sizes, *peers, *seed),
		"fig7b": fig7Runner("b", sizes, *peers, *seed),
		"fig7c": fig7Runner("c", sizes, *peers, *seed),
		"fig9": func() (interface{ Format() string }, error) {
			o := experiments.Fig9Options{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Docs = sizes
			}
			return experiments.RunFig9(o)
		},
		"store": func() (interface{ Format() string }, error) {
			return experiments.RunStoreAblation(experiments.StoreAblationOptions{Seed: *seed})
		},
		"split": func() (interface{ Format() string }, error) {
			o := experiments.SplitAblationOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			return experiments.RunSplitAblation(o)
		},
		"robust": func() (interface{ Format() string }, error) {
			o := experiments.RobustnessOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Records, o.Queries = 120, 4
				o.DropProbs = []float64{0, 0.20}
			}
			return experiments.RunRobustness(o)
		},
		"churn": func() (interface{ Format() string }, error) {
			o := experiments.ChurnOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Peers, o.Records, o.Events, o.Stable = 40, 100, 16, 6
			}
			return experiments.RunChurn(o)
		},
		"cache": func() (interface{ Format() string }, error) {
			o := experiments.CacheOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Records, o.Repeats, o.BlockSize = 150, 2, 64
			}
			return experiments.RunCache(o)
		},
		"load": func() (interface{ Format() string }, error) {
			o := experiments.LoadOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Records, o.Peers, o.Queries = 150, 8, 2
			}
			return experiments.RunLoad(o)
		},
		"durability": func() (interface{ Format() string }, error) {
			o := experiments.DurabilityOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Records, o.Peers = 100, 4
			}
			return experiments.RunDurability(o)
		},
		"throughput": func() (interface{ Format() string }, error) {
			o := experiments.ThroughputOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				// The busy-phase p99 needs a publish long enough to
				// sample properly; smoke trims peers, not the corpus.
				o.Records, o.Peers, o.Queries = 240, 4, 20
			}
			return experiments.RunThroughput(o)
		},
		"slo": func() (interface{ Format() string }, error) {
			o := experiments.SLOOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Records, o.Peers, o.Queries = 120, 6, 6
			}
			return experiments.RunSLO(o)
		},
		"stats": func() (interface{ Format() string }, error) {
			o := experiments.StatsOptions{Peers: *peers, Seed: *seed}
			if len(sizes) > 0 {
				o.Records = sizes[len(sizes)-1]
			}
			if *short {
				o.Records, o.Peers, o.Warmup, o.Measure = 150, 6, 4, 2
			}
			return experiments.RunStats(o)
		},
	}

	order := []string{"fig2", "fig3", "traffic", "table1", "sensitivity",
		"fig7a", "fig7b", "fig7c", "fig9", "store", "split", "robust", "churn", "cache", "load", "durability", "throughput", "slo", "stats"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "kadop-bench: unknown experiment %q (want one of %s, all)\n",
				*exp, strings.Join(order, "|"))
			os.Exit(2)
		}
		selected = []string{*exp}
	}
	for _, name := range selected {
		res, err := runners[name]()
		if err != nil {
			// A failed gate still carries the measurements it failed on.
			if res != nil {
				fmt.Println(res.Format())
			}
			fmt.Fprintf(os.Stderr, "kadop-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}
}

func fig7Runner(variant string, sizes []int, peers int, seed int64) func() (interface{ Format() string }, error) {
	return func() (interface{ Format() string }, error) {
		o := experiments.Fig7Options{Variant: variant, Peers: peers, Seed: seed}
		if len(sizes) > 0 {
			o.Records = sizes[len(sizes)-1]
		}
		return experiments.RunFig7(o)
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
