// Command kadop-gen writes the synthetic corpora of the experiments to
// disk as XML files, for use with kadop-publish or external tools.
//
//	kadop-gen -corpus dblp -records 5000 -out ./corpus
//	kadop-gen -corpus inex -docs 1000 -out ./inex
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kadop/internal/admin"
	"kadop/internal/workload"
	"kadop/internal/xmltree"
)

func main() {
	var (
		corpus    = flag.String("corpus", "dblp", "corpus kind: dblp|inex")
		out       = flag.String("out", "corpus", "output directory")
		records   = flag.Int("records", 2500, "dblp: bibliographic records")
		docs      = flag.Int("docs", 500, "inex: host documents (plus as many referenced files)")
		matches   = flag.Int("matches", 10, "inex: planted answers for the canonical query")
		seed      = flag.Int64("seed", 1, "generator seed")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof on this address while generating")
	)
	flag.Parse()
	if *debugAddr != "" {
		addr, stop, err := admin.Serve(*debugAddr, admin.Options{Pprof: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kadop-gen: debug endpoint %s: %v\n", *debugAddr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "kadop-gen: debug endpoint on http://%s\n", addr)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	switch *corpus {
	case "dblp":
		gen := workload.DBLP{Seed: *seed, Records: *records}.Documents()
		for _, d := range gen {
			if err := os.WriteFile(filepath.Join(*out, d.URI), []byte(xmltree.Serialize(d.Doc)), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d DBLP documents (%0.2f MB) to %s\n",
			len(gen), float64(workload.SizeBytes(gen))/1e6, *out)
	case "inex":
		c := workload.INEX{Seed: *seed, Docs: *docs, Matches: *matches, SecondType: true}.Generate()
		for _, h := range c.Hosts {
			if err := os.WriteFile(filepath.Join(*out, h.URI), []byte(xmltree.Serialize(h.Doc)), 0o644); err != nil {
				fatal(err)
			}
		}
		for uri, raw := range c.Files {
			if err := os.WriteFile(filepath.Join(*out, uri), raw, 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d host documents and %d referenced files to %s\n",
			len(c.Hosts), len(c.Files), *out)
	default:
		fmt.Fprintf(os.Stderr, "kadop-gen: unknown corpus %q\n", *corpus)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kadop-gen:", err)
	os.Exit(1)
}
