// Command kadop-query evaluates a tree-pattern query against a running
// KadoP deployment from an ephemeral query peer.
//
//	kadop-query -bootstrap 127.0.0.1:7001 -id 99 '//article//author[. contains "Ullman"]'
//
// The -strategy flag selects a Section 5.3 Bloom-reducer plan; -index
// stops after phase one and prints the candidate documents; -explain
// prints the query's trace tree — every phase with its latency and the
// bytes moved per traffic class; -explain-analyze adds the per-phase
// work table comparing the statistics registry's estimate with the
// operator actuals the query recorded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kadop"
)

func main() {
	var (
		bootstrap = flag.String("bootstrap", "", "address of any running peer (required)")
		id        = flag.Uint("id", 0, "internal peer id for this query peer (unique, > 0)")
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		strategy  = flag.String("strategy", "conventional", "conventional|ab|db|bloom|subquery")
		useDPP    = flag.Bool("dpp", false, "the deployment partitions posting lists (-dpp on its peers)")
		cache     = flag.Int64("cache", 0, "posting-block cache capacity in bytes for this query peer (0 = off; needs -dpp)")
		indexOnly = flag.Bool("index", false, "run the index query only; print candidate documents")
		repl      = flag.Int("replication", 1, "index replication factor (must match the deployment's peers)")
		explain   = flag.Bool("explain", false, "print the query's trace tree (per-phase latency and bytes)")
		analyze   = flag.Bool("explain-analyze", false, "like -explain, plus the per-phase work table: estimated vs actual blocks, bytes, postings and matches")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/{metrics,load,traces,peer} on this address; keeps the process up after the query for inspection")
		logPath   = flag.String("log", "", "append one structured JSONL record per query to this file (- = stderr)")
		logSample = flag.Float64("log-sample", 1, "fraction of queries logged to -log (deterministic: every 1/rate-th)")
		logMax    = flag.Int64("log-max-bytes", 0, "rotate -log when it would exceed this size (0 = 64MiB default)")
		logKeep   = flag.Int("log-keep", 3, "rotated -log generations to retain (file.1 .. file.N)")
		slowThr   = flag.Duration("slow", 0, "slow-query capture threshold: queries at or over it are logged with their full trace, bypassing -log-sample (0 = off)")
	)
	flag.Parse()
	if *bootstrap == "" || *id == 0 || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kadop-query -bootstrap ADDR -id N 'QUERY'")
		os.Exit(2)
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-query:", err)
		os.Exit(2)
	}
	q, err := kadop.ParseQuery(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-query:", err)
		os.Exit(2)
	}

	// A client peer: it looks up and fetches but never joins routing
	// tables, so firing off ephemeral queries does not disturb the
	// overlay's key ownership.
	cfg := kadop.Config{UseDPP: *useDPP, CacheBytes: *cache, DHT: kadop.DHTConfig{
		Replication: *repl,
		Retry: kadop.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  time.Second,
		},
	}}
	cfg.SlowQuery = *slowThr
	if *logPath != "" {
		var w io.Writer = os.Stderr
		if *logPath != "-" {
			// Size-capped rotation keeps a long-lived query log's disk
			// footprint bounded: file, file.1 (newest rotated) … file.N.
			f, err := kadop.OpenRotatingLog(*logPath, *logMax, *logKeep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kadop-query: query log:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		cfg.QueryLog = kadop.NewQueryLog(w, kadop.QueryLogOptions{SampleRate: *logSample})
	}
	peer, err := kadop.NewTCPClientPeer(*listen, kadop.PeerID(*id), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-query:", err)
		os.Exit(1)
	}
	defer peer.Node().Close()

	// Slow-query capture needs the tracer too: without it queries carry
	// no trace id, so the captured record would have no span tree and
	// the latency histogram no exemplar to link back to.
	var tracer *kadop.Tracer
	if *explain || *analyze || *debugAddr != "" || *slowThr > 0 {
		tracer = kadop.EnableTracing(peer, 16)
	}
	if *debugAddr != "" {
		kadop.EnableFlight(peer, 0)
		addr, stop, err := kadop.ServeDebug(*debugAddr, peer, kadop.DebugOptions{Tracer: tracer, BuildInfo: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kadop-query: debug endpoint %s: %v\n", *debugAddr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "kadop-query: debug endpoint on http://%s\n", addr)
	}

	if err := kadop.JoinClient(peer, *bootstrap); err != nil {
		fmt.Fprintln(os.Stderr, "kadop-query: join:", err)
		os.Exit(1)
	}

	res, err := peer.Query(q, kadop.QueryOptions{Strategy: strat, IndexOnly: *indexOnly})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-query:", err)
		os.Exit(1)
	}
	if *explain || *analyze {
		fmt.Println("--- explain ---")
		fmt.Print(kadop.FormatExplain(res, *analyze))
		fmt.Println("---------------")
	}
	fmt.Printf("index query: %v (first answer %v), %d candidate documents\n",
		res.IndexTime, res.FirstAnswer, len(res.Docs))
	if *indexOnly {
		for _, d := range res.Docs {
			uri, err := peer.URI(d)
			if err != nil {
				uri = "?"
			}
			fmt.Printf("  %v  %s\n", d, uri)
		}
	} else {
		fmt.Printf("total: %v, %d answers\n", res.Total, len(res.Matches))
		for _, m := range res.Matches {
			uri, err := peer.URI(m.Doc)
			if err != nil {
				uri = "?"
			}
			fmt.Printf("  %s (%v):", uri, m.Doc)
			for _, p := range m.Postings {
				fmt.Printf(" %v", p.SID)
			}
			fmt.Println()
		}
	}
	if *debugAddr != "" {
		// The endpoint exists to be inspected: keep it (and the collected
		// metrics and trace) alive until interrupted.
		fmt.Fprintln(os.Stderr, "kadop-query: serving debug endpoint; Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
	}
}

func parseStrategy(s string) (kadop.Strategy, error) {
	switch s {
	case "conventional":
		return kadop.Conventional, nil
	case "ab":
		return kadop.ABReducer, nil
	case "db":
		return kadop.DBReducer, nil
	case "bloom":
		return kadop.BloomReducer, nil
	case "subquery":
		return kadop.SubQueryReducer, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}
