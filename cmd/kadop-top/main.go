// Command kadop-top renders a cluster-wide load report from the admin
// endpoints of a set of KadoP peers: per-peer bytes/blocks/appends, a
// load-imbalance summary (max/mean ratio and Gini coefficient over
// bytes served), cluster-wide hot terms, and latency quantiles merged
// across every peer's histograms.
//
//	kadop-top 127.0.0.1:6060 127.0.0.1:6061 127.0.0.1:6062
//	kadop-top -interval 5s 127.0.0.1:6060 127.0.0.1:6061
//
// With -selftest N it instead spins up an N-peer in-process cluster,
// publishes a small skewed corpus, runs queries, scrapes itself, and
// exits non-zero unless the scrape parses and returns samples — the CI
// smoke test for the whole observability plane.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"kadop"
	"kadop/internal/admin"
	"kadop/internal/experiments"
	"kadop/internal/obs/cluster"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

func main() {
	var (
		selftest = flag.Int("selftest", 0, "spin up an N-peer in-process cluster, scrape it, and exit (CI smoke mode)")
		topK     = flag.Int("top", 10, "hot terms to show cluster-wide")
		interval = flag.Duration("interval", 0, "re-scrape and re-render every interval (0 = once)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	)
	flag.Parse()

	if *selftest > 0 {
		if err := runSelftest(*selftest, *topK); err != nil {
			fmt.Fprintln(os.Stderr, "kadop-top: selftest:", err)
			os.Exit(1)
		}
		return
	}

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kadop-top [-interval 5s] PEER-ADDR...\n       kadop-top -selftest 4")
		os.Exit(2)
	}
	for {
		if err := scrapeOnce(targets, *topK, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "kadop-top:", err)
			if *interval == 0 {
				os.Exit(1)
			}
		}
		if *interval == 0 {
			return
		}
		time.Sleep(*interval)
	}
}

func scrapeOnce(targets []string, topK int, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout*time.Duration(len(targets))+timeout)
	defer cancel()
	var sc cluster.Scraper
	scrapes, err := sc.ScrapeAll(ctx, targets)
	if err != nil {
		return err
	}
	fmt.Print(cluster.BuildReport(scrapes, topK).Format())
	return nil
}

// runSelftest exercises the full plane in-process: simulated cluster,
// skewed publish, real queries, real HTTP scrapes of every peer's
// admin endpoint, and a strict parse of the exposition output.
func runSelftest(peers, topK int) error {
	c, err := experiments.NewCluster(experiments.ClusterOptions{
		Peers: peers,
		Cfg:   kadop.Config{UseDPP: true, DPP: kadop.DPPOptions{BlockSize: 128}},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	docs := workload.DBLP{Seed: 1, Records: 150}.Documents()
	if _, err := c.PublishAll(docs, 4); err != nil {
		return err
	}
	q := pattern.MustParse(experiments.Fig3Query)
	for i := 0; i < 3; i++ {
		if _, err := c.NonOwnerPeer(q).Query(q, kadop.QueryOptions{}); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}

	targets := make([]string, 0, peers)
	for _, nd := range c.Nodes {
		addr, stop, err := admin.Serve("127.0.0.1:0", admin.Options{
			Collector: nd.Metrics(),
			Node:      nd,
		})
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer stop()
		targets = append(targets, addr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sc cluster.Scraper
	scrapes, err := sc.ScrapeAll(ctx, targets)
	if err != nil {
		return err
	}
	rep := cluster.BuildReport(scrapes, topK)
	if rep.SampleCount == 0 {
		return fmt.Errorf("scrape returned no samples")
	}
	var served int64
	for _, p := range rep.Peers {
		served += p.BytesServed
	}
	if served == 0 {
		return fmt.Errorf("no peer reported serving bytes — load accounting is dead")
	}
	fmt.Print(rep.Format())
	fmt.Printf("selftest ok: %d peers, %d samples, %s served\n",
		len(rep.Peers), rep.SampleCount, fmtSelftestBytes(served))
	return nil
}

func fmtSelftestBytes(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	}
	if n >= 1<<10 {
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
