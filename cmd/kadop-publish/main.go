// Command kadop-publish checks XML documents into a running KadoP
// deployment. It starts an ephemeral publishing peer, joins through the
// given bootstrap address, publishes each file, and keeps serving until
// interrupted (the documents live at their publishing peer, so the
// process must stay up for phase-two query evaluation).
//
//	kadop-publish -bootstrap 127.0.0.1:7001 -id 10 docs/*.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kadop"
)

func main() {
	var (
		bootstrap = flag.String("bootstrap", "", "address of any running peer (required)")
		id        = flag.Uint("id", 0, "internal peer id for this publisher (unique, > 0)")
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		oneshot   = flag.Bool("oneshot", false, "exit after publishing (documents become unreachable for phase two)")
		useDPP    = flag.Bool("dpp", false, "the deployment partitions posting lists (-dpp on its peers)")
		repl      = flag.Int("replication", 1, "index replication factor (must match the deployment's peers)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/{metrics,load,traces,peer} on this address")
	)
	flag.Parse()
	if *bootstrap == "" || *id == 0 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kadop-publish -bootstrap ADDR -id N file.xml...")
		os.Exit(2)
	}

	cfg := kadop.Config{UseDPP: *useDPP, DHT: kadop.DHTConfig{
		Replication: *repl,
		Retry: kadop.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  time.Second,
		},
	}}
	peer, err := kadop.NewTCPPeer(*listen, kadop.PeerID(*id), "", cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadop-publish:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		tracer := kadop.EnableTracing(peer, 16)
		kadop.EnableFlight(peer, 0)
		addr, stop, err := kadop.ServeDebug(*debugAddr, peer, kadop.DebugOptions{Tracer: tracer, BuildInfo: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kadop-publish: debug endpoint %s: %v\n", *debugAddr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "kadop-publish: debug endpoint on http://%s\n", addr)
	}
	if err := kadop.Join(peer, *bootstrap); err != nil {
		fmt.Fprintln(os.Stderr, "kadop-publish: join:", err)
		os.Exit(1)
	}
	for _, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kadop-publish:", err)
			os.Exit(1)
		}
		key, err := peer.PublishXML(raw, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kadop-publish: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("published %s as %v\n", path, key)
	}
	if *oneshot {
		peer.Node().Close()
		return
	}
	fmt.Println("kadop-publish: serving published documents; Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	peer.Node().Close()
}
