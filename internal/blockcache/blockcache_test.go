package blockcache

import (
	"context"
	"errors"
	"sync"
	"testing"

	"kadop/internal/metrics"
	"kadop/internal/postings"
	"kadop/internal/sid"
)

func mkList(doc uint32, n int) postings.List {
	l := make(postings.List, 0, n)
	for i := 0; i < n; i++ {
		l = append(l, sid.Posting{
			Peer: 1,
			Doc:  sid.DocID(doc),
			SID:  sid.SID{Start: uint32(i + 1), End: uint32(i + 2), Level: 1},
		})
	}
	return l
}

func TestCacheHitMissAndGeneration(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 4})
	k := Key{Term: "tag:article", Block: "overflow:1:tag:article", Gen: 3}
	if _, ok := c.Get(k); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	l := mkList(7, 16)
	c.Add(k, l)
	got, ok := c.Get(k)
	if !ok || len(got) != len(l) {
		t.Fatalf("expected hit with %d postings, got ok=%v len=%d", len(l), ok, len(got))
	}
	// A bumped generation addresses a different entry: no stale hit.
	if _, ok := c.Get(Key{Term: k.Term, Block: k.Block, Gen: 4}); ok {
		t.Fatal("stale generation served from cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 entry", st)
	}
	if st.BytesSaved != int64(postings.EncodedSize(l)) {
		t.Fatalf("bytes saved = %d, want encoded size %d", st.BytesSaved, postings.EncodedSize(l))
	}
}

func TestCacheEviction(t *testing.T) {
	// One shard with a tiny budget: the third insert must evict the
	// least recently used entry, not the most recent.
	l := mkList(1, 32)
	per := int64(postings.EncodedSize(l))
	c := New(Options{MaxBytes: 2*per + per/2, Shards: 1})
	ka := Key{Term: "a"}
	kb := Key{Term: "b"}
	kc := Key{Term: "c"}
	c.Add(ka, l)
	c.Add(kb, l)
	c.Get(ka) // refresh a, so b is LRU
	c.Add(kc, l)
	if _, ok := c.Get(kb); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get(ka); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := c.Get(kc); !ok {
		t.Fatal("newest entry c was evicted")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := New(Options{MaxBytes: 64, Shards: 1})
	big := mkList(1, 1024)
	c.Add(Key{Term: "big"}, big)
	if st := c.Stats(); st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("oversized entry not rejected: %+v", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20})
	k := Key{Term: "t", Block: "overflow:1:t"}
	l := mkList(3, 8)

	f, leader := c.BeginFlight(k)
	if !leader {
		t.Fatal("first caller must lead")
	}
	const waiters = 8
	var wg, joined sync.WaitGroup
	results := make([]postings.List, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		joined.Add(1)
		go func(i int) {
			defer wg.Done()
			wf, lead := c.BeginFlight(k)
			joined.Done()
			if lead {
				t.Error("waiter elected leader while flight in progress")
				c.Complete(k, wf, nil, errors.New("bogus"))
				return
			}
			got, err := wf.Wait(context.Background())
			if err != nil {
				t.Errorf("waiter error: %v", err)
			}
			results[i] = got
		}(i)
	}
	joined.Wait() // all waiters have joined the flight before it completes
	c.Complete(k, f, l, nil)
	wg.Wait()
	for i, got := range results {
		if len(got) != len(l) {
			t.Fatalf("waiter %d got %d postings, want %d", i, len(got), len(l))
		}
	}
	if co := c.Stats().Coalesced; co != waiters {
		t.Fatalf("coalesced = %d, want %d", co, waiters)
	}
	// The completed flight stored the block: later Gets hit.
	if _, ok := c.Get(k); !ok {
		t.Fatal("completed flight did not populate cache")
	}
}

func TestSingleflightFailureDoesNotCache(t *testing.T) {
	c := New(Options{})
	k := Key{Term: "t"}
	f, leader := c.BeginFlight(k)
	if !leader {
		t.Fatal("expected leadership")
	}
	boom := errors.New("fetch failed")
	c.Complete(k, f, nil, boom)
	if _, err := f.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want %v", err, boom)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed fetch was cached")
	}
	// The flight slot is released: the next caller leads a fresh fetch.
	f2, leader := c.BeginFlight(k)
	if !leader {
		t.Fatal("slot not released after failed flight")
	}
	c.Complete(k, f2, mkList(1, 2), nil)
}

func TestBeginFlightAfterCompletionReturnsCached(t *testing.T) {
	c := New(Options{})
	k := Key{Term: "t"}
	f, _ := c.BeginFlight(k)
	c.Complete(k, f, mkList(2, 4), nil)
	// The block is cached now; a racer that missed Get but reaches
	// BeginFlight gets a pre-completed flight, not leadership.
	f2, leader := c.BeginFlight(k)
	if leader {
		t.Fatal("leadership granted for an already-cached block")
	}
	got, err := f2.Wait(context.Background())
	if err != nil || len(got) != 4 {
		t.Fatalf("pre-completed flight returned (%d, %v)", len(got), err)
	}
}

func TestWaitRespectsContext(t *testing.T) {
	c := New(Options{})
	k := Key{Term: "t"}
	f, leader := c.BeginFlight(k)
	if !leader {
		t.Fatal("expected leadership")
	}
	w, _ := c.BeginFlight(k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	c.Complete(k, f, nil, errors.New("late"))
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{Term: "x"}); ok {
		t.Fatal("nil cache hit")
	}
	c.Add(Key{Term: "x"}, mkList(1, 1))
	f, leader := c.BeginFlight(Key{Term: "x"})
	if !leader {
		t.Fatal("nil cache must elect every caller leader")
	}
	c.Complete(Key{Term: "x"}, f, mkList(1, 1), nil)
	if _, err := f.Wait(context.Background()); err != nil {
		t.Fatalf("nil-cache flight error: %v", err)
	}
	c.Reset()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestCollectorMirroring(t *testing.T) {
	c := New(Options{})
	col := metrics.NewCollector()
	c.SetCollector(col)
	k := Key{Term: "t"}
	c.Get(k) // miss
	c.Add(k, mkList(1, 8))
	c.Get(k) // hit
	if col.Events(metrics.EventCacheMiss) != 1 || col.Events(metrics.EventCacheHit) != 1 {
		t.Fatalf("events: miss=%d hit=%d, want 1/1",
			col.Events(metrics.EventCacheMiss), col.Events(metrics.EventCacheHit))
	}
	if col.Events(metrics.EventCacheBytesSaved) == 0 {
		t.Fatal("bytes-saved event not mirrored")
	}
}
