// Package blockcache implements the query-peer posting-block cache: a
// sharded LRU of DPP posting blocks keyed by (term, block, generation).
//
// KadoP's query cost is dominated by transferring posting-list blocks
// over the DHT (Sections 3-4 of the paper). Repeated and overlapping
// queries fetch the same blocks again and again; caching them at the
// consuming peer removes those transfers entirely. Correctness comes
// from the generation in the key: the term's home peer bumps a block's
// generation on every append or delete that touches it, and the query
// peer learns the current generations from the root block it fetches
// for every query anyway — a stale cached block simply stops being
// addressed and ages out of the LRU.
//
// The cache also coalesces concurrent misses (singleflight): when two
// twig-join branches — or two concurrent queries — want the same block
// at the same time, one fetch goes to the network and both consumers
// share the result.
package blockcache

import (
	"container/list"
	"context"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"kadop/internal/metrics"
	"kadop/internal/obs/flight"
	"kadop/internal/postings"
)

// Key identifies one cached posting block. Block is the DPP pseudo-key
// of the block ("overflow:<n>:<term>"); the empty string addresses the
// term's inline list (a term that never overflowed its home peer). Gen
// is the block's generation as reported by the term's root block.
type Key struct {
	Term  string
	Block string
	Gen   uint64
}

// Options configure a Cache.
type Options struct {
	// MaxBytes bounds the total encoded size of cached blocks
	// (default 64 MiB). Entries larger than one shard's share of the
	// budget are not cached at all.
	MaxBytes int64
	// Shards is the number of independent LRU shards (default 16,
	// rounded up to a power of two). More shards mean less lock
	// contention between concurrent twig-join branches.
	Shards int
}

// DefaultMaxBytes is the default cache capacity.
const DefaultMaxBytes = 64 << 20

// Cache is a sharded LRU of posting blocks with per-key singleflight.
// All methods are safe for concurrent use. A nil *Cache is valid and
// behaves as an always-miss cache without coalescing.
type Cache struct {
	shards []*shard
	mask   uint64
	seed   maphash.Seed

	flightMu sync.Mutex
	flights  map[Key]*Flight

	collector atomic.Pointer[metrics.Collector]
	recorder  atomic.Pointer[flight.Recorder]

	hits       atomic.Int64
	misses     atomic.Int64
	coalesced  atomic.Int64
	inserts    atomic.Int64
	evictions  atomic.Int64
	rejected   atomic.Int64
	bytesSaved atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
}

type entry struct {
	key   Key
	list  postings.List
	bytes int64
}

// New builds a cache.
func New(o Options) *Cache {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	n := o.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	c := &Cache{
		shards:  make([]*shard, n),
		mask:    uint64(n - 1),
		seed:    maphash.MakeSeed(),
		flights: map[Key]*Flight{},
	}
	per := o.MaxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			maxBytes: per,
			entries:  map[Key]*list.Element{},
			lru:      list.New(),
		}
	}
	return c
}

// SetCollector mirrors the cache's counters into a metrics collector as
// events (cache-hits, cache-misses, ...), so they surface alongside the
// traffic accounting on /debug/metrics. Nil disables mirroring.
func (c *Cache) SetCollector(col *metrics.Collector) {
	if c == nil {
		return
	}
	c.collector.Store(col)
}

func (c *Cache) col() *metrics.Collector {
	if c == nil {
		return nil
	}
	return c.collector.Load()
}

// SetFlight mirrors cache misses into a flight recorder, so a dump
// shows which blocks the cache had to go to the network for just
// before an incident. Nil disables mirroring.
func (c *Cache) SetFlight(r *flight.Recorder) {
	if c == nil {
		return
	}
	c.recorder.Store(r)
}

func (c *Cache) shardOf(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.Term)
	h.WriteByte(0)
	h.WriteString(k.Block)
	return c.shards[h.Sum64()&c.mask]
}

// Get returns the cached block for k, if present, and records the hit
// or miss. The returned list is shared and must not be mutated.
func (c *Cache) Get(k Key) (postings.List, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardOf(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	var (
		l postings.List
		n int64
	)
	if ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*entry)
		l, n = e.list, e.bytes
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		c.col().CountEvent(metrics.EventCacheMiss)
		if fr := c.recorder.Load(); fr != nil {
			fr.Record(flight.Event{Kind: flight.KindEvent, Name: "cache-miss:" + k.Term})
		}
		return nil, false
	}
	c.hits.Add(1)
	c.bytesSaved.Add(n)
	col := c.col()
	col.CountEvent(metrics.EventCacheHit)
	col.AddEvent(metrics.EventCacheBytesSaved, n)
	return l, true
}

// Add inserts a block under k, evicting least-recently-used entries
// until the shard fits its byte budget. Oversized blocks are rejected
// rather than wiping the whole shard. The list must be sorted (it is
// the drained transfer of one block) and must not be mutated afterwards.
func (c *Cache) Add(k Key, l postings.List) {
	if c == nil {
		return
	}
	n := int64(postings.EncodedSize(l))
	s := c.shardOf(k)
	if n > s.maxBytes {
		c.rejected.Add(1)
		return
	}
	var evicted int64
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		e := el.Value.(*entry)
		s.bytes -= e.bytes
		e.list, e.bytes = l, n
		s.bytes += n
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(&entry{key: k, list: l, bytes: n})
		s.bytes += n
		c.inserts.Add(1)
	}
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= e.bytes
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.col().AddEvent(metrics.EventCacheEviction, evicted)
	}
}

// Flight is one in-flight fetch of a block, shared between the leader
// (who performs the fetch) and any coalesced waiters.
type Flight struct {
	done chan struct{}
	list postings.List
	err  error
}

// Wait blocks until the flight completes or the context expires, and
// returns the fetched block.
func (f *Flight) Wait(ctx context.Context) (postings.List, error) {
	select {
	case <-f.done:
		return f.list, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BeginFlight joins or starts the fetch of block k. The second return
// is true for the leader, who must fetch the block and call Complete
// exactly once; false marks a coalesced waiter, who calls Wait. When
// the block landed in the cache between the caller's Get and this call,
// an already-completed flight is returned (leader false), so the caller
// needs no special case.
func (c *Cache) BeginFlight(k Key) (*Flight, bool) {
	if c == nil {
		// No cache: every caller leads its own fetch, no coalescing.
		return &Flight{done: make(chan struct{})}, true
	}
	c.flightMu.Lock()
	if f, ok := c.flights[k]; ok {
		c.flightMu.Unlock()
		c.coalesced.Add(1)
		c.col().CountEvent(metrics.EventCacheCoalesced)
		return f, false
	}
	// Double-check the cache under the flight lock: a leader that
	// completed between the caller's Get and now already stored the
	// block, and re-fetching it would waste a round trip.
	if l, ok := c.peek(k); ok {
		c.flightMu.Unlock()
		f := &Flight{done: make(chan struct{}), list: l}
		close(f.done)
		return f, false
	}
	f := &Flight{done: make(chan struct{})}
	c.flights[k] = f
	c.flightMu.Unlock()
	return f, true
}

// peek is Get without stats (the flight path accounts on its own).
func (c *Cache) peek(k Key) (postings.List, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*entry).list, true
	}
	return nil, false
}

// Complete finishes a flight led by the caller: the result is published
// to all waiters and, on success, stored in the cache.
func (c *Cache) Complete(k Key, f *Flight, l postings.List, err error) {
	f.list, f.err = l, err
	if c != nil {
		c.flightMu.Lock()
		if c.flights[k] == f {
			delete(c.flights, k)
		}
		c.flightMu.Unlock()
		if err == nil {
			c.Add(k, l)
		}
	}
	close(f.done)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	Capacity   int64 `json:"capacity"`
	Shards     int   `json:"shards"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"`
	Inserts    int64 `json:"inserts"`
	Evictions  int64 `json:"evictions"`
	Rejected   int64 `json:"rejected"`
	BytesSaved int64 `json:"bytes_saved"`
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	var st Stats
	if c == nil {
		return st
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		st.Capacity += s.maxBytes
		s.mu.Unlock()
	}
	st.Shards = len(c.shards)
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	st.Coalesced = c.coalesced.Load()
	st.Inserts = c.inserts.Load()
	st.Evictions = c.evictions.Load()
	st.Rejected = c.rejected.Load()
	st.BytesSaved = c.bytesSaved.Load()
	return st
}

// Reset drops every entry and zeroes the counters (in-flight fetches
// are unaffected: their completions repopulate the empty cache).
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = map[Key]*list.Element{}
		s.lru.Init()
		s.bytes = 0
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.coalesced.Store(0)
	c.inserts.Store(0)
	c.evictions.Store(0)
	c.rejected.Store(0)
	c.bytesSaved.Store(0)
}
