package dht

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"kadop/internal/metrics"
)

// RetryPolicy governs how RPCs are re-attempted after transport
// failures. The zero value disables retries (one attempt, no backoff),
// which is what latency-sensitive experiments use; deployments that
// must survive flaky links configure a few attempts with exponential
// backoff and jitter.
type RetryPolicy struct {
	// Attempts is the total number of tries per RPC (minimum 1).
	Attempts int
	// BaseBackoff is the sleep before the second attempt; it doubles on
	// every further attempt (default 20ms when Attempts > 1).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Jitter adds up to this fraction of the backoff as random extra
	// sleep, decorrelating retry storms (default 0.5 when Attempts > 1;
	// set negative to force zero jitter).
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Attempts > 1 {
		if p.BaseBackoff <= 0 {
			p.BaseBackoff = 20 * time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = time.Second
		}
		if p.Jitter == 0 {
			p.Jitter = 0.5
		}
		if p.Jitter < 0 {
			p.Jitter = 0
		}
	}
	return p
}

// backoff returns the sleep before attempt i (the first attempt is 0,
// which never sleeps).
func (p RetryPolicy) backoff(i int, rng func() float64) time.Duration {
	if i <= 0 || p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff << (i - 1)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 && rng != nil {
		d += time.Duration(p.Jitter * rng() * float64(d))
	}
	return d
}

// terminalError marks an error that retrying cannot fix: the remote
// peer executed the request and answered with an application-level
// failure, or the caller's context expired.
type terminalError struct{ err error }

func (e terminalError) Error() string { return e.err.Error() }
func (e terminalError) Unwrap() error { return e.err }

// Terminal wraps an error so the retry machinery will not re-attempt
// the call. Remote handler errors arrive through this wrapper.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return terminalError{err: err}
}

// Retryable reports whether an RPC error is worth another attempt:
// transport-level failures (drops, resets, dials, closed endpoints)
// are; application errors and context expiry are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var t terminalError
	if errors.As(err, &t) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// retryRNG is the jitter source shared by a node's retry loops. Seeded
// deployments (the chaos tests) get reproducible backoff schedules.
type retryRNG struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRetryRNG(seed int64) *retryRNG {
	return &retryRNG{rng: rand.New(rand.NewSource(seed))}
}

func (r *retryRNG) float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// withRetry runs fn under the policy, sleeping the backoff schedule
// between attempts and honouring ctx cancellation. Each retry beyond
// the first is counted on the collector; a context-deadline failure is
// counted as a timeout.
func withRetry(ctx context.Context, p RetryPolicy, col *metrics.Collector, rng *retryRNG, fn func() error) error {
	p = p.withDefaults()
	var lastErr error
	for i := 0; i < p.Attempts; i++ {
		if d := p.backoff(i, rng.float64); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				col.CountEvent(metrics.EventTimeout)
				return fmt.Errorf("dht: retry wait: %w", ctx.Err())
			}
		}
		if err := ctx.Err(); err != nil {
			col.CountEvent(metrics.EventTimeout)
			return fmt.Errorf("dht: %w", err)
		}
		if i > 0 {
			col.CountEvent(metrics.EventRetry)
		}
		lastErr = fn()
		if lastErr == nil {
			return nil
		}
		if !Retryable(lastErr) {
			break
		}
	}
	if errors.Is(lastErr, context.DeadlineExceeded) || errors.Is(lastErr, context.Canceled) {
		col.CountEvent(metrics.EventTimeout)
	}
	return lastErr
}
