package dht

import (
	"reflect"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// FuzzMessage checks the wire codec shared by both transports.
// Arbitrary bytes must never panic the decoder; any message it accepts
// must re-encode, and the canonical encoding must decode back to the
// same message (after nil/empty normalization — the decoder is allowed
// to accept non-minimal varints and trailing garbage, so byte-level
// equality with the input is deliberately not required).
func FuzzMessage(f *testing.F) {
	var id ID
	id[0], id[len(id)-1] = 0xab, 0x01
	c := Contact{ID: id, Addr: "127.0.0.1:4001"}
	batchBlob := encodeBatchRequest(
		[]string{"author", "overflow:1:author"}, true,
		sid.DocKey{Peer: 1, Doc: 2}, sid.DocKey{Peer: 3, Doc: 4})
	seeds := []Message{
		{Type: MsgPing, From: c},
		{Type: MsgFindNode, From: c, Target: id},
		{Type: MsgAppend, From: c, Key: "author", Postings: postings.List{
			{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 10, Level: 0}},
			{Peer: 1, Doc: 1, SID: sid.SID{Start: 2, End: 5, Level: 1}},
		}},
		{Type: MsgChunk, From: c, Key: "overflow:0:author", Postings: postings.List{
			{Peer: 2, Doc: 7, SID: sid.SID{Start: 3, End: 4, Level: 2}},
		}, TraceID: 0xdead, SpanID: 0xbeef},
		{Type: MsgGetBatch, From: c, Blob: batchBlob},
		{Type: MsgApp, From: c, Proc: "stream:dpp:block", Key: "title", Blob: []byte{1, 2, 3}},
		{Type: MsgNodes, From: c, Contacts: []Contact{c, {ID: id, Addr: "10.0.0.1:9"}}},
		{Type: MsgError, From: c, Err: "no such key"},
	}
	for _, m := range seeds {
		enc, err := m.Encode()
		if err != nil {
			f.Fatalf("seed message %v does not encode: %v", m.Type, err)
		}
		f.Add(enc)
	}
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected input; only a panic is a failure here
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		normalizeMessage(&m)
		normalizeMessage(&m2)
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("message changed across re-encode:\n got %#v\nwant %#v", m2, m)
		}
	})
}

// normalizeMessage maps empty slices to nil so DeepEqual compares
// message content rather than the nil/empty distinction, which the
// codec does not preserve.
func normalizeMessage(m *Message) {
	if len(m.Postings) == 0 {
		m.Postings = nil
	}
	if len(m.Contacts) == 0 {
		m.Contacts = nil
	}
	if len(m.Blob) == 0 {
		m.Blob = nil
	}
}
