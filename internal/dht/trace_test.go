package dht

import (
	"context"
	"testing"

	"kadop/internal/metrics"
	"kadop/internal/trace"
)

// TestTracePropagatesAcrossLookup runs a multi-hop lookup under a shared
// tracer and checks that the server-side spans adopted from the wire
// (the sim transport round-trips every message through Encode /
// DecodeMessage, so the trace IDs really cross the codec boundary) link
// back to the client's lookup span.
func TestTracePropagatesAcrossLookup(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 16)
	tr := trace.New(32)
	for _, nd := range nodes {
		nd.SetTracer(tr)
	}

	client := nodes[1]
	ctx, root := tr.StartTrace(context.Background(), "test-lookup")
	target := PeerIDFromSeed("some far away key")
	if _, err := client.LookupContext(ctx, target); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	rec := root.Trace().Export()
	byID := make(map[uint64]trace.SpanRecord, len(rec.Spans))
	for _, s := range rec.Spans {
		byID[s.ID] = s
	}

	var lookupID uint64
	var rpcChildren, served int
	for _, s := range rec.Spans {
		if s.Name == "dht:lookup" {
			lookupID = s.ID
			if byID[s.Parent].Name != "test-lookup" {
				t.Errorf("dht:lookup parent = %q, want the root span", byID[s.Parent].Name)
			}
		}
	}
	if lookupID == 0 {
		t.Fatalf("no dht:lookup span in trace:\n%s", root.Trace().Tree())
	}
	for _, s := range rec.Spans {
		switch s.Name {
		case "rpc:find-node":
			if s.Parent != lookupID {
				t.Errorf("rpc:find-node parent = %d, want lookup span %d", s.Parent, lookupID)
			}
			rpcChildren++
		case "serve:find-node":
			// The server adopted the caller's span ID from the decoded
			// message: the parent must be the client's lookup span.
			if s.Parent != lookupID {
				t.Errorf("serve:find-node parent = %d, want lookup span %d", s.Parent, lookupID)
			}
			served++
		}
	}
	if rpcChildren == 0 || served == 0 {
		t.Fatalf("rpc=%d served=%d, want both > 0:\n%s", rpcChildren, served, root.Trace().Tree())
	}
	if net.Collector.Hist(metrics.OpLookup).Count() == 0 {
		t.Error("lookup histogram not populated")
	}
}

// TestTraceJoinRemoteSeparateTracers checks the TCP-like case where the
// server's tracer has never seen the trace: the adopted span lands in a
// stub trace keyed by the caller's trace ID, still carrying the remote
// parent link.
func TestTraceJoinRemoteSeparateTracers(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 4)
	clientTr, serverTr := trace.New(8), trace.New(8)
	nodes[1].SetTracer(clientTr)
	for _, nd := range nodes {
		if nd != nodes[1] {
			nd.SetTracer(serverTr)
		}
	}

	ctx, root := clientTr.StartTrace(context.Background(), "client-side")
	if _, err := nodes[1].LookupContext(ctx, PeerIDFromSeed("elsewhere")); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	traceID, _ := trace.ID(trace.ContextWithSpan(context.Background(), root))
	var found bool
	for _, tc := range serverTr.Recent(8) {
		if tc.ID() == traceID {
			found = true
			rec := tc.Export()
			if len(rec.Spans) == 0 {
				t.Error("stub remote trace has no spans")
			}
			for _, s := range rec.Spans {
				if s.Parent == 0 {
					t.Errorf("remote span %q lost its parent link", s.Name)
				}
			}
		}
	}
	if !found {
		t.Fatalf("server tracer never adopted trace %x", traceID)
	}
}

// TestUntracedMessagesCarryNoIDs pins the zero-overhead property: calls
// without a span in context put zero trace IDs on the wire.
func TestUntracedMessagesCarryNoIDs(t *testing.T) {
	m := Message{Type: MsgFindNode}
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TraceID != 0 || dec.SpanID != 0 {
		t.Errorf("untraced message decoded trace ids %d/%d", dec.TraceID, dec.SpanID)
	}
	m.TraceID, m.SpanID = 7, 9
	enc2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc2) < len(enc) {
		t.Error("traced encoding shorter than untraced")
	}
	dec2, err := DecodeMessage(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.TraceID != 7 || dec2.SpanID != 9 {
		t.Errorf("trace ids did not survive the codec: %d/%d", dec2.TraceID, dec2.SpanID)
	}
}
