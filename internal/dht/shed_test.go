package dht

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"kadop/internal/metrics"
	"kadop/internal/postings"
)

// denyGate is a hand-driven ShedGate: the test flips it instead of
// waiting out a token bucket (the bucket itself is pinned in the
// replicate package; here the subject is the wiring through the node).
type denyGate struct{ allow atomic.Bool }

func (g *denyGate) Allow() bool    { return g.allow.Load() }
func (g *denyGate) Shedding() bool { return !g.allow.Load() }

// keyOwnedBy finds a key whose single owner is node b, as located by a.
func keyOwnedBy(t *testing.T, a, b *Node) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("l:term%04d", i)
		o, err := a.Locate(k)
		if err != nil {
			t.Fatal(err)
		}
		if o.ID == b.Self().ID {
			return k
		}
	}
	t.Fatal("no key owned by b in 1000 candidates")
	return ""
}

// TestShedGateEndToEnd drives the admission gate through the real RPC
// path: an admitted read serves and piggybacks the owner's load gauge
// onto the response; a denied read comes back as a retryable overload
// error on both the unary and the streaming path, counts the shed
// event, and piggybacks the shedding flag so the reader's replica
// selection learns to avoid the peer.
func TestShedGateEndToEnd(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 2)
	a, b := nodes[0], nodes[1]
	key := keyOwnedBy(t, a, b)

	rng := rand.New(rand.NewSource(9))
	want := randomPostings(rng, 80)
	if err := a.Append(key, want); err != nil {
		t.Fatal(err)
	}

	gate := &denyGate{}
	gate.allow.Store(true)
	b.SetShedGate(gate)

	got, err := a.Get(key)
	if err != nil {
		t.Fatalf("admitted read: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("admitted read returned %d postings, want %d", len(got), len(want))
	}
	load, shed, known := a.PeerGauge(b.Self().Addr)
	if !known {
		t.Fatal("no gauge piggybacked on the admitted response")
	}
	if shed {
		t.Fatal("gauge reports shedding while the gate admits")
	}
	if load <= 0 {
		t.Fatalf("gauge load %d after serving %d postings, want > 0", load, len(want))
	}

	gate.allow.Store(false)
	if _, err := a.Get(key); !IsOverload(err) {
		t.Fatalf("denied unary read: err %v, want overload", err)
	}
	s, err := a.GetStream(key)
	if err == nil {
		_, err = postings.Drain(s)
	}
	if !IsOverload(err) {
		t.Fatalf("denied stream read: err %v, want overload", err)
	}
	if _, shed, known := a.PeerGauge(b.Self().Addr); !known || !shed {
		t.Fatalf("rejection did not piggyback the shedding flag (known=%v shed=%v)", known, shed)
	}
	if n := net.Collector.Events(metrics.EventShed); n < 2 {
		t.Fatalf("shed events: %d, want >= 2", n)
	}

	// Writes are not reads: the gate must not shed appends or repair.
	if err := a.Append(key, randomPostings(rng, 5)); err != nil {
		t.Fatalf("append through a shedding peer: %v", err)
	}

	gate.allow.Store(true)
	if _, err := a.Get(key); err != nil {
		t.Fatalf("read after the gate reopened: %v", err)
	}
}
