package dht

import (
	"bufio"
	"context"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/postings"
	"kadop/internal/store"
)

func tcpNode(t *testing.T, timeout time.Duration) *Node {
	t.Helper()
	tr, err := NewTCPTransport("127.0.0.1:0", metrics.NewCollector(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(tr, store.NewMem(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestTCPStreamProc(t *testing.T) {
	a, b := tcpNode(t, 0), tcpNode(t, 0)
	if err := b.Bootstrap(a.Self()); err != nil {
		t.Fatal(err)
	}
	want := randomPostings(rand.New(rand.NewSource(1)), 300)
	a.HandleStreamProc("stream:test", func(_ context.Context, _ Contact, _ string, _ []byte, send func(postings.List) error) error {
		for i := 0; i < len(want); i += 64 {
			end := i + 64
			if end > len(want) {
				end = len(want)
			}
			if err := send(want[i:end]); err != nil {
				return err
			}
		}
		return nil
	})
	s, err := b.OpenProcStream(a.Self(), "k", "stream:test", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tcp stream proc: %d vs %d", len(got), len(want))
	}
}

func TestTCPCallTimeout(t *testing.T) {
	// A listener that accepts but never answers: the client must give up
	// within its timeout instead of hanging.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow the request, never reply.
		}
	}()
	client := tcpNode(t, 300*time.Millisecond)
	start := time.Now()
	_, err = client.tr.Call(context.Background(), Contact{ID: PeerIDFromSeed("x"), Addr: ln.Addr().String()},
		Message{Type: MsgPing, From: client.Self()})
	if err == nil {
		t.Fatal("call to a mute server should time out")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

// TestTCPPoisonedConnNotPooled pins the putConn contract: a connection
// whose exchange failed mid-read (server wrote a partial frame and
// stalled until the client's deadline expired) must be closed, never
// returned to the pool. If it were pooled, the next call would reuse it
// and read the stale half-frame — a desynchronised connection poisoning
// every later exchange.
func TestTCPPoisonedConnNotPooled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serverMetrics := metrics.NewCollector()
	conns := make(chan net.Conn, 4)
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- conn
			go func(conn net.Conn, poison bool) {
				br := bufio.NewReader(conn)
				req, err := readFrame(br, serverMetrics)
				if err != nil {
					return
				}
				if poison {
					// Half a frame, then stall: the length prefix promises
					// more bytes than ever arrive.
					conn.Write([]byte{0, 0, 1, 0, 42, 42})
					return // keep the conn open; the client must time out
				}
				writeFrame(conn, Message{Type: MsgPong, Key: req.Key}, serverMetrics)
			}(conn, first)
			first = false
		}
	}()

	tr, err := NewTCPTransport("127.0.0.1:0", metrics.NewCollector(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	to := Contact{ID: PeerIDFromSeed("srv"), Addr: ln.Addr().String()}

	if _, err := tr.Call(context.Background(), to, Message{Type: MsgPing, Key: "first"}); err == nil {
		t.Fatal("call against the stalling server should fail")
	}
	tr.mu.Lock()
	pooled := len(tr.idle[to.Addr])
	tr.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("poisoned connection was pooled (%d idle)", pooled)
	}

	// The next call must dial a fresh connection and complete cleanly.
	resp, err := tr.Call(context.Background(), to, Message{Type: MsgPing, Key: "second"})
	if err != nil {
		t.Fatalf("call after poisoned exchange: %v", err)
	}
	if resp.Type != MsgPong || resp.Key != "second" {
		t.Fatalf("resp = %v %q, want pong for %q", resp.Type, resp.Key, "second")
	}
	if got := len(conns); got != 2 {
		t.Fatalf("server saw %d connections, want 2 (poisoned conn must not be reused)", got)
	}
}

func TestTCPStreamEarlyClose(t *testing.T) {
	a, b := tcpNode(t, 0), tcpNode(t, 0)
	if err := b.Bootstrap(a.Self()); err != nil {
		t.Fatal(err)
	}
	big := make(postings.List, 50000)
	for i := range big {
		s := uint32(2*i + 1)
		big[i].Peer = 1
		big[i].Doc = 1
		big[i].SID.Start = s
		big[i].SID.End = s + 1
	}
	if err := a.Store().Append("l:big", big); err != nil {
		t.Fatal(err)
	}
	ms, err := b.tr.OpenStream(context.Background(), a.Self(), Message{Type: MsgGetStream, From: b.Self(), Key: "l:big"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Recv(); err != nil {
		t.Fatal(err)
	}
	ms.Close() // abandon mid-stream; server write fails and its goroutine exits
	// The node keeps serving.
	resp, err := b.tr.Call(context.Background(), a.Self(), Message{Type: MsgPing, From: b.Self()})
	if err != nil || resp.Type != MsgPong {
		t.Fatalf("ping after abandoned stream: %v %v", resp.Type, err)
	}
}

func TestTCPRejectsOversizeFrame(t *testing.T) {
	node := tcpNode(t, 0)
	conn, err := net.Dial("tcp", node.Self().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header claiming 1 GiB: the server must drop the
	// connection, not allocate.
	if _, err := conn.Write([]byte{0x40, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server should close the connection on an oversize frame")
	}
	// And keep serving others.
	other := tcpNode(t, 0)
	if _, err := other.tr.Call(context.Background(), node.Self(), Message{Type: MsgPing, From: other.Self()}); err != nil {
		t.Fatalf("ping after oversize frame: %v", err)
	}
}

func TestTCPCollectorCountsSends(t *testing.T) {
	coll := metrics.NewCollector()
	tr, err := NewTCPTransport("127.0.0.1:0", coll, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNode(tr, store.NewMem(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := tcpNode(t, 0)
	if err := b.Bootstrap(a.Self()); err != nil {
		t.Fatal(err)
	}
	l := randomPostings(rand.New(rand.NewSource(2)), 100)
	if err := b.Append("l:x", l); err != nil {
		t.Fatal(err)
	}
	// a's collector counted its outbound responses (routing replies).
	if coll.TotalBytes() == 0 {
		t.Error("server collector recorded nothing")
	}
}
