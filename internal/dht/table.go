package dht

import (
	"sort"
	"sync"
)

// Table is a Kademlia routing table: one k-bucket per distance prefix.
// Buckets hold least-recently-seen contacts first; a full bucket drops
// the newcomer (the classic policy favouring long-lived peers, which
// matches the paper's assumption of low peer volatility).
type Table struct {
	mu      sync.RWMutex
	self    ID
	k       int
	buckets [IDBytes * 8][]Contact
}

// NewTable returns a routing table for the peer with the given id and
// bucket capacity k.
func NewTable(self ID, k int) *Table {
	if k < 1 {
		k = 1
	}
	return &Table{self: self, k: k}
}

// Update records that a contact was seen. Known contacts move to the
// bucket tail (most recently seen); new contacts are appended if the
// bucket has room.
func (t *Table) Update(c Contact) {
	if c.ID == t.self || c.ID.IsZero() {
		return
	}
	i := t.self.BucketIndex(c.ID)
	if i < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j := range b {
		if b[j].ID == c.ID {
			// Move to tail, refreshing the address.
			copy(b[j:], b[j+1:])
			b[len(b)-1] = c
			return
		}
	}
	if len(b) < t.k {
		t.buckets[i] = append(b, c)
	}
}

// Remove drops a contact (after a failed call).
func (t *Table) Remove(id ID) {
	i := t.self.BucketIndex(id)
	if i < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j := range b {
		if b[j].ID == id {
			t.buckets[i] = append(b[:j], b[j+1:]...)
			return
		}
	}
}

// Closest returns up to n known contacts closest to target under XOR.
func (t *Table) Closest(target ID, n int) []Contact {
	t.mu.RLock()
	var all []Contact
	for i := range t.buckets {
		all = append(all, t.buckets[i]...)
	}
	t.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.XOR(target).Less(all[j].ID.XOR(target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Size returns the number of contacts in the table.
func (t *Table) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i])
	}
	return n
}
