package dht

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Table is a Kademlia routing table: one k-bucket per distance prefix.
// Buckets hold least-recently-seen contacts first; a full bucket sends
// the newcomer to a per-bucket replacement cache (the classic policy
// favouring long-lived peers, which matches the paper's assumption of
// low peer volatility). When a failed contact is evicted, the bucket
// refills from the replacement cache, so churn does not slowly empty
// the table.
type Table struct {
	mu      sync.RWMutex
	self    ID
	k       int
	buckets [IDBytes * 8][]Contact
	// spares are the per-bucket replacement caches: contacts seen while
	// their bucket was full, most recently seen last, capacity k.
	spares [IDBytes * 8][]Contact
	// lastLookup records, per bucket, when a lookup last targeted an
	// identifier in the bucket's range. The refresher probes only
	// buckets this leaves stale; the zero time means "never".
	lastLookup [IDBytes * 8]time.Time
}

// NewTable returns a routing table for the peer with the given id and
// bucket capacity k.
func NewTable(self ID, k int) *Table {
	if k < 1 {
		k = 1
	}
	return &Table{self: self, k: k}
}

// Update records that a contact was seen. Known contacts move to the
// bucket tail (most recently seen); new contacts are appended if the
// bucket has room, and cached as replacements otherwise.
func (t *Table) Update(c Contact) {
	if c.ID == t.self || c.ID.IsZero() {
		return
	}
	i := t.self.BucketIndex(c.ID)
	if i < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j := range b {
		if b[j].ID == c.ID {
			// Move to tail, refreshing the address.
			copy(b[j:], b[j+1:])
			b[len(b)-1] = c
			return
		}
	}
	if len(b) < t.k {
		t.buckets[i] = append(b, c)
		// A promoted contact no longer needs its spare slot.
		t.spares[i] = dropContact(t.spares[i], c.ID)
		return
	}
	// Bucket full: remember the contact as a replacement candidate.
	s := dropContact(t.spares[i], c.ID)
	s = append(s, c)
	if len(s) > t.k {
		s = s[len(s)-t.k:]
	}
	t.spares[i] = s
}

// Remove drops a contact (after a failed call), refilling the bucket
// from the replacement cache. It reports whether a contact was
// actually evicted.
func (t *Table) Remove(id ID) bool {
	i := t.self.BucketIndex(id)
	if i < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j := range b {
		if b[j].ID == id {
			t.buckets[i] = append(b[:j], b[j+1:]...)
			// Refill with the most recently seen replacement.
			if s := t.spares[i]; len(s) > 0 {
				t.buckets[i] = append(t.buckets[i], s[len(s)-1])
				t.spares[i] = s[:len(s)-1]
			}
			return true
		}
	}
	// A failed replacement candidate must not be promoted later.
	t.spares[i] = dropContact(t.spares[i], id)
	return false
}

func dropContact(s []Contact, id ID) []Contact {
	for j := range s {
		if s[j].ID == id {
			return append(s[:j], s[j+1:]...)
		}
	}
	return s
}

// Touch records that a lookup targeted an identifier in target's
// bucket, marking the bucket fresh for staleness accounting. Lookups
// of the table's own identifier touch nothing (no bucket covers it).
func (t *Table) Touch(target ID) {
	i := t.self.BucketIndex(target)
	if i < 0 {
		return
	}
	t.mu.Lock()
	t.lastLookup[i] = time.Now()
	t.mu.Unlock()
}

// StaleBuckets returns the indexes of buckets that hold at least one
// contact but have not been the target of a lookup within maxAge
// (never-targeted buckets count as stale). Empty buckets are skipped:
// a random lookup there has no contacts to verify and the iterative
// lookup machinery fills them as a side effect of ordinary traffic.
func (t *Table) StaleBuckets(maxAge time.Duration) []int {
	cutoff := time.Now().Add(-maxAge)
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for i := range t.buckets {
		if len(t.buckets[i]) == 0 {
			continue
		}
		if ll := t.lastLookup[i]; ll.IsZero() || ll.Before(cutoff) {
			out = append(out, i)
		}
	}
	return out
}

// RandomIDInBucket returns an identifier whose bucket (relative to the
// table's own id) is exactly bucket: the bits above the bucket's
// position copy the table's id, the bucket bit is flipped, and the
// lower bits are random. Refresh lookups target such identifiers.
func (t *Table) RandomIDInBucket(bucket int, rng *rand.Rand) ID {
	id := t.self
	bi := IDBytes - 1 - bucket/8
	bit := uint(bucket % 8)
	random := byte(rng.Intn(256))
	keepMask := byte(0xFF) << (bit + 1) // bits above the bucket bit
	lowMask := byte(1<<bit) - 1         // bits below it
	id[bi] = (t.self[bi] & keepMask) | ((t.self[bi] ^ (1 << bit)) & (1 << bit)) | (random & lowMask)
	for j := bi + 1; j < IDBytes; j++ {
		id[j] = byte(rng.Intn(256))
	}
	return id
}

// Closest returns up to n known contacts closest to target under XOR.
func (t *Table) Closest(target ID, n int) []Contact {
	t.mu.RLock()
	var all []Contact
	for i := range t.buckets {
		all = append(all, t.buckets[i]...)
	}
	t.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.XOR(target).Less(all[j].ID.XOR(target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Size returns the number of contacts in the table.
func (t *Table) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i])
	}
	return n
}
