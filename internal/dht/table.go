package dht

import (
	"sort"
	"sync"
)

// Table is a Kademlia routing table: one k-bucket per distance prefix.
// Buckets hold least-recently-seen contacts first; a full bucket sends
// the newcomer to a per-bucket replacement cache (the classic policy
// favouring long-lived peers, which matches the paper's assumption of
// low peer volatility). When a failed contact is evicted, the bucket
// refills from the replacement cache, so churn does not slowly empty
// the table.
type Table struct {
	mu      sync.RWMutex
	self    ID
	k       int
	buckets [IDBytes * 8][]Contact
	// spares are the per-bucket replacement caches: contacts seen while
	// their bucket was full, most recently seen last, capacity k.
	spares [IDBytes * 8][]Contact
}

// NewTable returns a routing table for the peer with the given id and
// bucket capacity k.
func NewTable(self ID, k int) *Table {
	if k < 1 {
		k = 1
	}
	return &Table{self: self, k: k}
}

// Update records that a contact was seen. Known contacts move to the
// bucket tail (most recently seen); new contacts are appended if the
// bucket has room, and cached as replacements otherwise.
func (t *Table) Update(c Contact) {
	if c.ID == t.self || c.ID.IsZero() {
		return
	}
	i := t.self.BucketIndex(c.ID)
	if i < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j := range b {
		if b[j].ID == c.ID {
			// Move to tail, refreshing the address.
			copy(b[j:], b[j+1:])
			b[len(b)-1] = c
			return
		}
	}
	if len(b) < t.k {
		t.buckets[i] = append(b, c)
		// A promoted contact no longer needs its spare slot.
		t.spares[i] = dropContact(t.spares[i], c.ID)
		return
	}
	// Bucket full: remember the contact as a replacement candidate.
	s := dropContact(t.spares[i], c.ID)
	s = append(s, c)
	if len(s) > t.k {
		s = s[len(s)-t.k:]
	}
	t.spares[i] = s
}

// Remove drops a contact (after a failed call), refilling the bucket
// from the replacement cache. It reports whether a contact was
// actually evicted.
func (t *Table) Remove(id ID) bool {
	i := t.self.BucketIndex(id)
	if i < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[i]
	for j := range b {
		if b[j].ID == id {
			t.buckets[i] = append(b[:j], b[j+1:]...)
			// Refill with the most recently seen replacement.
			if s := t.spares[i]; len(s) > 0 {
				t.buckets[i] = append(t.buckets[i], s[len(s)-1])
				t.spares[i] = s[:len(s)-1]
			}
			return true
		}
	}
	// A failed replacement candidate must not be promoted later.
	t.spares[i] = dropContact(t.spares[i], id)
	return false
}

func dropContact(s []Contact, id ID) []Contact {
	for j := range s {
		if s[j].ID == id {
			return append(s[:j], s[j+1:]...)
		}
	}
	return s
}

// Closest returns up to n known contacts closest to target under XOR.
func (t *Table) Closest(target ID, n int) []Contact {
	t.mu.RLock()
	var all []Contact
	for i := range t.buckets {
		all = append(all, t.buckets[i]...)
	}
	t.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.XOR(target).Less(all[j].ID.XOR(target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Size returns the number of contacts in the table.
func (t *Table) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i])
	}
	return n
}
