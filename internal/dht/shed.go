package dht

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"kadop/internal/metrics"
)

// ErrOverload is the retryable rejection the admission gate answers
// over-budget reads with. Clients treat it as "this replica is busy,
// try another", not as data loss: remote occurrences arrive wrapped in
// the transport's error strings, so detection goes through IsOverload
// rather than errors.Is.
var ErrOverload = errors.New("overload: read shed by admission gate")

// IsOverload reports whether an error (local or a remote MsgError
// round-tripped through the transport as text) is an admission-gate
// rejection.
func IsOverload(err error) bool {
	return err != nil && strings.Contains(err.Error(), "overload:")
}

// ShedGate is the admission-control hook of the serve path. The
// replicate package's token bucket implements it; the dht layer only
// asks two questions, so it does not import the controller. Both
// methods must be safe for concurrent use. A nil gate admits all.
type ShedGate interface {
	// Allow spends one admission token; false rejects the read.
	Allow() bool
	// Shedding reports whether the gate would currently reject,
	// without spending a token (piggybacked on responses).
	Shedding() bool
}

// SetShedGate installs the admission gate on this node's read-serving
// path (MsgGet, posting streams, batched block fetches). Safe to call
// once at peer construction, before traffic.
func (n *Node) SetShedGate(g ShedGate) {
	n.gate.Store(&g)
}

func (n *Node) shedGate() ShedGate {
	if p := n.gate.Load(); p != nil {
		return *p
	}
	return nil
}

// admitRead consults the gate for one read-class request and accounts
// a rejection (kadop_shed_total, the shed-reads robustness event, and
// a flight-ring entry via robust).
func (n *Node) admitRead(op string) error {
	g := n.shedGate()
	if g == nil || g.Allow() {
		return nil
	}
	n.collector.CountEvent(metrics.EventShed)
	n.reg.Counter("kadop_shed_total",
		"Reads rejected by the admission gate, by operation.",
		metrics.Label{Key: "op", Value: op}).Add(1)
	n.robust("shed-read")
	return ErrOverload
}

// stampGauge attaches this peer's recent-load reading and shed state
// to an outgoing response, so every answered request doubles as a load
// advertisement for replica selection.
func (n *Node) stampGauge(m Message) Message {
	m.Gauge = 1 + uint64(n.load.RecentBytes())
	if g := n.shedGate(); g != nil && g.Shedding() {
		m.Shed = true
	}
	return m
}

// peerGauge is one remembered load advertisement.
type peerGauge struct {
	load int64
	shed bool
}

// gaugeCache remembers the last piggybacked gauge per remote address.
type gaugeCache struct {
	mu sync.RWMutex
	m  map[string]peerGauge
}

// noteGauge records a piggybacked advertisement from addr.
func (n *Node) noteGauge(addr string, m Message) {
	if m.Gauge == 0 || addr == "" {
		return
	}
	g := peerGauge{load: int64(m.Gauge - 1), shed: m.Shed}
	n.gauges.mu.Lock()
	if n.gauges.m == nil {
		n.gauges.m = map[string]peerGauge{}
	}
	n.gauges.m[addr] = g
	n.gauges.mu.Unlock()
}

// PeerGauge returns the last load advertisement seen from addr: the
// peer's recent bytes served, whether it reported shedding, and
// whether any reading is known at all.
func (n *Node) PeerGauge(addr string) (load int64, shed bool, known bool) {
	n.gauges.mu.RLock()
	g, ok := n.gauges.m[addr]
	n.gauges.mu.RUnlock()
	return g.load, g.shed, ok
}

// adaptive replication primitives ------------------------------------

// ReplicaTargetsContext returns up to extra peers just outside key's
// owner set, in XOR-closeness order: the natural hosts for promoted
// copies of a hot key (deterministic across peers, excludes self and
// the Replication owners that already hold it).
func (n *Node) ReplicaTargetsContext(ctx context.Context, key string, extra int) ([]Contact, error) {
	if extra <= 0 {
		return nil, nil
	}
	cs, err := n.LookupContext(ctx, KeyID(key))
	if err != nil {
		return nil, err
	}
	if len(cs) <= n.cfg.Replication {
		return nil, nil
	}
	var out []Contact
	for _, c := range cs[n.cfg.Replication:] {
		if c.ID == n.self.ID {
			continue
		}
		out = append(out, c)
		if len(out) == extra {
			break
		}
	}
	return out, nil
}

// RepairPushContext pushes the local copy of key to one specific peer
// unless its digest says it is already current — the same idempotent
// MsgRepair push the repair loop and graceful leave use, here driven
// by the replication controller promoting a hot key. Reports whether a
// copy was actually shipped.
func (n *Node) RepairPushContext(ctx context.Context, to Contact, key string) (bool, error) {
	if to.ID == n.self.ID {
		return false, nil
	}
	local, err := n.store.Count(key)
	if err != nil || local == 0 {
		return false, err
	}
	if remote, err := n.digestOf(ctx, to, key); err == nil && remote >= local {
		return false, nil
	}
	// Read past the load instrumentation: a replication push is supply,
	// not demand. Charging it to the hot-term sketch would make every
	// promotion self-sustaining — the renewal push re-heats the very
	// term it replicates and the controller never demotes.
	list, err := n.quietStore().Get(key)
	if err != nil {
		return false, err
	}
	if _, err := n.call(ctx, to, Message{Type: MsgRepair, From: n.from(), Key: key, Postings: list}); err != nil {
		return false, fmt.Errorf("dht: replica push %q to %s: %w", key, to.Addr, err)
	}
	n.collector.CountEvent(metrics.EventRepair)
	n.robust("replica-push")
	return true, nil
}

// DeleteKeyAtContext removes key's list on one specific peer — the
// demotion half of adaptive replication, dropping an expired promoted
// copy. Callers must check the target is not a current owner first.
func (n *Node) DeleteKeyAtContext(ctx context.Context, to Contact, key string) error {
	if to.ID == n.self.ID {
		return n.store.DeleteTerm(key)
	}
	_, err := n.call(ctx, to, Message{Type: MsgDeleteKey, From: n.from(), Key: key})
	return err
}
