package dht

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"kadop/internal/metrics"
)

// Handler serves incoming messages on a peer.
type Handler interface {
	// HandleCall serves a request-response message.
	HandleCall(from Contact, req Message) Message
	// HandleStream serves a streaming request by calling send for each
	// chunk; returning ends the stream (with the error, if non-nil).
	HandleStream(from Contact, req Message, send func(Message) error) error
}

// MsgStream is the consumer side of a streaming response.
type MsgStream interface {
	// Recv returns the next chunk, or io.EOF after the final one.
	Recv() (Message, error)
	// Close abandons the stream early.
	Close()
}

// Transport moves messages between peers. Implementations: the
// in-process simulated network (Network) and the TCP transport. Every
// outgoing operation takes a context carrying the caller's deadline
// budget; implementations abandon the exchange when it expires.
type Transport interface {
	// Addr is this endpoint's address, routable by peers on the same
	// transport.
	Addr() string
	// Call sends a request and waits for the response.
	Call(ctx context.Context, to Contact, req Message) (Message, error)
	// OpenStream sends a request whose response is a chunk stream.
	OpenStream(ctx context.Context, to Contact, req Message) (MsgStream, error)
	// Serve registers the handler for incoming messages and starts
	// serving (non-blocking).
	Serve(h Handler) error
	// Close shuts the endpoint down.
	Close() error
}

// LinkModel describes the simulated network links of the in-process
// transport. The zero value models an infinitely fast network, which is
// what unit tests use; experiments configure Grid5000-like numbers.
type LinkModel struct {
	// Latency is charged once per message.
	Latency time.Duration
	// BytesPerSec throttles each message's transfer time; 0 disables.
	BytesPerSec int64
}

func (lm LinkModel) delay(bytes int) time.Duration {
	d := lm.Latency
	if lm.BytesPerSec > 0 {
		d += time.Duration(int64(bytes) * int64(time.Second) / lm.BytesPerSec)
	}
	return d
}

// Faults injects failures into the simulated network, driven by a
// seeded RNG so chaos runs are reproducible. The zero value injects
// nothing. Drop and duplication apply to request-response calls;
// stream chunks only suffer jitter and slowness, so posting pipelines
// keep their ordering guarantees (a dropped stream peer surfaces as a
// stream error instead).
type Faults struct {
	// Seed drives the fault RNG (0 means 1).
	Seed int64
	// DropProb is the chance, per call, that the request or its
	// response is lost; the caller sees a retryable transport error.
	DropProb float64
	// DupProb is the chance a call's request is delivered twice,
	// exercising handler idempotency (at-least-once delivery).
	DupProb float64
	// JitterMax adds up to this much uniformly-random extra latency to
	// every message.
	JitterMax time.Duration
}

// errDropped is the retryable error surfaced for injected message loss.
var errDropped = errors.New("dht: fault injection dropped message")

// Network is the in-process simulated network: a registry of endpoints
// that exchange encoded messages by direct invocation, charging every
// byte to the Collector and sleeping according to the LinkModel. It
// lets one process host hundreds of KadoP peers, which is how the
// Figure 2/3 experiments run at 200-500 peers. Fault injection (drop,
// duplication, jitter, slow peers) turns it into the chaos harness the
// robustness tests run on.
type Network struct {
	mu        sync.RWMutex
	endpoints map[string]*inprocEndpoint
	Collector *metrics.Collector
	model     LinkModel
	nextAddr  int

	faultMu sync.Mutex
	faults  Faults
	frng    *rand.Rand
	slow    map[string]time.Duration // per-endpoint extra delay per message
}

// NewNetwork returns an empty simulated network.
func NewNetwork() *Network {
	return &Network{endpoints: map[string]*inprocEndpoint{}, Collector: metrics.NewCollector()}
}

// SetModel installs a link model. It is safe to call while traffic is
// in flight; messages charged afterwards use the new model.
func (n *Network) SetModel(m LinkModel) {
	n.mu.Lock()
	n.model = m
	n.mu.Unlock()
}

// Model returns the current link model.
func (n *Network) Model() LinkModel {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.model
}

// SetFaults installs (or, with the zero value, clears) the fault plan.
func (n *Network) SetFaults(f Faults) {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	n.faultMu.Lock()
	n.faults = f
	n.frng = rand.New(rand.NewSource(seed))
	n.faultMu.Unlock()
}

// SetSlow marks an endpoint as a slow peer: every message to or from
// it is delayed by extra on top of the link model. A zero duration
// restores full speed.
func (n *Network) SetSlow(addr string, extra time.Duration) {
	n.faultMu.Lock()
	if n.slow == nil {
		n.slow = map[string]time.Duration{}
	}
	if extra <= 0 {
		delete(n.slow, addr)
	} else {
		n.slow[addr] = extra
	}
	n.faultMu.Unlock()
}

// roll samples the fault plan for one call: whether to drop it,
// whether to duplicate it, and how much jitter to add.
func (n *Network) roll() (drop, dup bool, jitter time.Duration) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	f := n.faults
	if n.frng == nil || (f.DropProb <= 0 && f.DupProb <= 0 && f.JitterMax <= 0) {
		return false, false, 0
	}
	if f.DropProb > 0 && n.frng.Float64() < f.DropProb {
		drop = true
	}
	if f.DupProb > 0 && n.frng.Float64() < f.DupProb {
		dup = true
	}
	if f.JitterMax > 0 {
		jitter = time.Duration(n.frng.Int63n(int64(f.JitterMax)))
	}
	return drop, dup, jitter
}

// slowDelay returns the extra per-message delay of slow endpoints on a
// link.
func (n *Network) slowDelay(addrs ...string) time.Duration {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	var d time.Duration
	for _, a := range addrs {
		d += n.slow[a]
	}
	return d
}

// NewEndpoint creates a transport endpoint with a fresh address.
func (n *Network) NewEndpoint() Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextAddr++
	addr := fmt.Sprintf("sim://%d", n.nextAddr)
	ep := &inprocEndpoint{net: n, addr: addr}
	n.endpoints[addr] = ep
	return ep
}

func (n *Network) lookup(addr string) (*inprocEndpoint, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.endpoints[addr]
	if !ok || ep.closed {
		return nil, fmt.Errorf("dht: no endpoint at %s", addr)
	}
	return ep, nil
}

// Partition removes an endpoint from the network without closing it,
// simulating a peer failure (used by fault-injection tests).
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// charge accounts and delays one message transfer; extra is the
// injected jitter and slow-peer delay for this message.
func (n *Network) charge(m Message, extra time.Duration) (int, error) {
	enc, err := m.Encode()
	if err != nil {
		return 0, err
	}
	n.Collector.Count(m.Class(), len(enc))
	if d := n.Model().delay(len(enc)) + extra; d > 0 {
		time.Sleep(d)
	}
	return len(enc), nil
}

type inprocEndpoint struct {
	net     *Network
	addr    string
	mu      sync.RWMutex
	handler Handler
	closed  bool
}

func (e *inprocEndpoint) Addr() string { return e.addr }

// Metrics exposes the network's collector so the node layer can count
// robustness events (retries, timeouts, evictions) where traffic is
// already accounted.
func (e *inprocEndpoint) Metrics() *metrics.Collector { return e.net.Collector }

func (e *inprocEndpoint) Serve(h Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
	return nil
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.net.Partition(e.addr)
	return nil
}

func (e *inprocEndpoint) getHandler() (Handler, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("dht: endpoint %s closed", e.addr)
	}
	if e.handler == nil {
		return nil, fmt.Errorf("dht: endpoint %s not serving", e.addr)
	}
	return e.handler, nil
}

func (e *inprocEndpoint) Call(ctx context.Context, to Contact, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, fmt.Errorf("dht: call %s: %w", to.Addr, err)
	}
	target, err := e.net.lookup(to.Addr)
	if err != nil {
		return Message{}, err
	}
	h, err := target.getHandler()
	if err != nil {
		return Message{}, err
	}
	// The exchange runs in its own goroutine so a slow link or handler
	// cannot hold the caller past its deadline; an abandoned exchange
	// finishes in the background (its sleeps are bounded).
	type outcome struct {
		resp Message
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := e.exchange(to, h, req)
		ch <- outcome{resp: resp, err: err}
	}()
	select {
	case o := <-ch:
		return o.resp, o.err
	case <-ctx.Done():
		return Message{}, fmt.Errorf("dht: call %s: %w", to.Addr, ctx.Err())
	}
}

// exchange performs one request-response delivery with fault
// injection.
func (e *inprocEndpoint) exchange(to Contact, h Handler, req Message) (Message, error) {
	drop, dup, jitter := e.net.roll()
	slow := e.net.slowDelay(e.addr, to.Addr)
	if drop {
		// The bytes left the sender and died on the wire: charge them,
		// wait out the link, and report a retryable loss.
		if _, err := e.net.charge(req, jitter+slow); err != nil {
			return Message{}, err
		}
		return Message{}, fmt.Errorf("dht: call %s: %w", to.Addr, errDropped)
	}
	if _, err := e.net.charge(req, jitter+slow); err != nil {
		return Message{}, err
	}
	// Round-trip through the codec so the handler sees exactly what a
	// remote peer would see (catches any unencodable state early).
	enc, err := req.Encode()
	if err != nil {
		return Message{}, err
	}
	dec, err := DecodeMessage(enc)
	if err != nil {
		return Message{}, err
	}
	resp := h.HandleCall(dec.From, dec)
	if dup {
		// At-least-once delivery: the handler sees the request twice and
		// must be idempotent; the duplicate's bytes are charged too.
		if _, err := e.net.charge(req, 0); err != nil {
			return Message{}, err
		}
		resp = h.HandleCall(dec.From, dec)
	}
	if _, err := e.net.charge(resp, slow); err != nil {
		return Message{}, err
	}
	if resp.Type == MsgError {
		return resp, Terminal(fmt.Errorf("dht: remote %s: %s", to.Addr, resp.Err))
	}
	return resp, nil
}

func (e *inprocEndpoint) OpenStream(ctx context.Context, to Contact, req Message) (MsgStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dht: stream %s: %w", to.Addr, err)
	}
	target, err := e.net.lookup(to.Addr)
	if err != nil {
		return nil, err
	}
	h, err := target.getHandler()
	if err != nil {
		return nil, err
	}
	drop, _, jitter := e.net.roll()
	slow := e.net.slowDelay(e.addr, to.Addr)
	if drop {
		if _, err := e.net.charge(req, jitter+slow); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dht: stream %s: %w", to.Addr, errDropped)
	}
	if _, err := e.net.charge(req, jitter+slow); err != nil {
		return nil, err
	}
	st := &inprocStream{ch: make(chan Message, 8), done: make(chan struct{})}
	go func() {
		err := h.HandleStream(req.From, req, func(chunk Message) error {
			// Round-trip through the codec: accounts the bytes and gives
			// the consumer its own copy, exactly like a real network
			// (producers reuse their chunk buffers between sends).
			enc, cerr := chunk.Encode()
			if cerr != nil {
				return cerr
			}
			e.net.Collector.Count(chunk.Class(), len(enc))
			_, _, chunkJitter := e.net.roll()
			if d := e.net.Model().delay(len(enc)) + chunkJitter + slow; d > 0 {
				time.Sleep(d)
			}
			dec, cerr := DecodeMessage(enc)
			if cerr != nil {
				return cerr
			}
			select {
			case st.ch <- dec:
				return nil
			case <-st.done:
				return fmt.Errorf("dht: stream consumer closed")
			}
		})
		end := Message{Type: MsgEnd}
		if err != nil {
			end = Message{Type: MsgError, Err: err.Error()}
		}
		e.net.charge(end, 0)
		select {
		case st.ch <- end:
		case <-st.done:
		}
		close(st.ch)
	}()
	return st, nil
}

type inprocStream struct {
	ch        chan Message
	done      chan struct{}
	closeOnce sync.Once
	finished  bool
}

func (s *inprocStream) Recv() (Message, error) {
	if s.finished {
		return Message{}, io.EOF
	}
	m, ok := <-s.ch
	if !ok {
		return Message{}, io.EOF
	}
	switch m.Type {
	case MsgEnd:
		s.finished = true
		return Message{}, io.EOF
	case MsgError:
		s.finished = true
		return Message{}, fmt.Errorf("dht: stream error: %s", m.Err)
	}
	return m, nil
}

func (s *inprocStream) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}
