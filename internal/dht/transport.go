package dht

import (
	"fmt"
	"io"
	"sync"
	"time"

	"kadop/internal/metrics"
)

// Handler serves incoming messages on a peer.
type Handler interface {
	// HandleCall serves a request-response message.
	HandleCall(from Contact, req Message) Message
	// HandleStream serves a streaming request by calling send for each
	// chunk; returning ends the stream (with the error, if non-nil).
	HandleStream(from Contact, req Message, send func(Message) error) error
}

// MsgStream is the consumer side of a streaming response.
type MsgStream interface {
	// Recv returns the next chunk, or io.EOF after the final one.
	Recv() (Message, error)
	// Close abandons the stream early.
	Close()
}

// Transport moves messages between peers. Implementations: the
// in-process simulated network (Network) and the TCP transport.
type Transport interface {
	// Addr is this endpoint's address, routable by peers on the same
	// transport.
	Addr() string
	// Call sends a request and waits for the response.
	Call(to Contact, req Message) (Message, error)
	// OpenStream sends a request whose response is a chunk stream.
	OpenStream(to Contact, req Message) (MsgStream, error)
	// Serve registers the handler for incoming messages and starts
	// serving (non-blocking).
	Serve(h Handler) error
	// Close shuts the endpoint down.
	Close() error
}

// LinkModel describes the simulated network links of the in-process
// transport. The zero value models an infinitely fast network, which is
// what unit tests use; experiments configure Grid5000-like numbers.
type LinkModel struct {
	// Latency is charged once per message.
	Latency time.Duration
	// BytesPerSec throttles each message's transfer time; 0 disables.
	BytesPerSec int64
}

func (lm LinkModel) delay(bytes int) time.Duration {
	d := lm.Latency
	if lm.BytesPerSec > 0 {
		d += time.Duration(int64(bytes) * int64(time.Second) / lm.BytesPerSec)
	}
	return d
}

// Network is the in-process simulated network: a registry of endpoints
// that exchange encoded messages by direct invocation, charging every
// byte to the Collector and sleeping according to the LinkModel. It
// lets one process host hundreds of KadoP peers, which is how the
// Figure 2/3 experiments run at 200-500 peers.
type Network struct {
	mu        sync.RWMutex
	endpoints map[string]*inprocEndpoint
	Collector *metrics.Collector
	model     LinkModel
	nextAddr  int
}

// NewNetwork returns an empty simulated network.
func NewNetwork() *Network {
	return &Network{endpoints: map[string]*inprocEndpoint{}, Collector: metrics.NewCollector()}
}

// SetModel installs a link model. It is safe to call while traffic is
// in flight; messages charged afterwards use the new model.
func (n *Network) SetModel(m LinkModel) {
	n.mu.Lock()
	n.model = m
	n.mu.Unlock()
}

// Model returns the current link model.
func (n *Network) Model() LinkModel {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.model
}

// NewEndpoint creates a transport endpoint with a fresh address.
func (n *Network) NewEndpoint() Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextAddr++
	addr := fmt.Sprintf("sim://%d", n.nextAddr)
	ep := &inprocEndpoint{net: n, addr: addr}
	n.endpoints[addr] = ep
	return ep
}

func (n *Network) lookup(addr string) (*inprocEndpoint, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.endpoints[addr]
	if !ok || ep.closed {
		return nil, fmt.Errorf("dht: no endpoint at %s", addr)
	}
	return ep, nil
}

// Partition removes an endpoint from the network without closing it,
// simulating a peer failure (used by fault-injection tests).
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

// charge accounts and delays one message transfer.
func (n *Network) charge(m Message) (int, error) {
	enc, err := m.Encode()
	if err != nil {
		return 0, err
	}
	n.Collector.Count(m.Class(), len(enc))
	if d := n.Model().delay(len(enc)); d > 0 {
		time.Sleep(d)
	}
	return len(enc), nil
}

type inprocEndpoint struct {
	net     *Network
	addr    string
	mu      sync.RWMutex
	handler Handler
	closed  bool
}

func (e *inprocEndpoint) Addr() string { return e.addr }

func (e *inprocEndpoint) Serve(h Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
	return nil
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.net.Partition(e.addr)
	return nil
}

func (e *inprocEndpoint) getHandler() (Handler, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("dht: endpoint %s closed", e.addr)
	}
	if e.handler == nil {
		return nil, fmt.Errorf("dht: endpoint %s not serving", e.addr)
	}
	return e.handler, nil
}

func (e *inprocEndpoint) Call(to Contact, req Message) (Message, error) {
	target, err := e.net.lookup(to.Addr)
	if err != nil {
		return Message{}, err
	}
	h, err := target.getHandler()
	if err != nil {
		return Message{}, err
	}
	if _, err := e.net.charge(req); err != nil {
		return Message{}, err
	}
	// Round-trip through the codec so the handler sees exactly what a
	// remote peer would see (catches any unencodable state early).
	enc, err := req.Encode()
	if err != nil {
		return Message{}, err
	}
	dec, err := DecodeMessage(enc)
	if err != nil {
		return Message{}, err
	}
	resp := h.HandleCall(dec.From, dec)
	if _, err := e.net.charge(resp); err != nil {
		return Message{}, err
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("dht: remote %s: %s", to.Addr, resp.Err)
	}
	return resp, nil
}

func (e *inprocEndpoint) OpenStream(to Contact, req Message) (MsgStream, error) {
	target, err := e.net.lookup(to.Addr)
	if err != nil {
		return nil, err
	}
	h, err := target.getHandler()
	if err != nil {
		return nil, err
	}
	if _, err := e.net.charge(req); err != nil {
		return nil, err
	}
	st := &inprocStream{ch: make(chan Message, 8), done: make(chan struct{})}
	go func() {
		err := h.HandleStream(req.From, req, func(chunk Message) error {
			// Round-trip through the codec: accounts the bytes and gives
			// the consumer its own copy, exactly like a real network
			// (producers reuse their chunk buffers between sends).
			enc, cerr := chunk.Encode()
			if cerr != nil {
				return cerr
			}
			e.net.Collector.Count(chunk.Class(), len(enc))
			if d := e.net.Model().delay(len(enc)); d > 0 {
				time.Sleep(d)
			}
			dec, cerr := DecodeMessage(enc)
			if cerr != nil {
				return cerr
			}
			select {
			case st.ch <- dec:
				return nil
			case <-st.done:
				return fmt.Errorf("dht: stream consumer closed")
			}
		})
		end := Message{Type: MsgEnd}
		if err != nil {
			end = Message{Type: MsgError, Err: err.Error()}
		}
		e.net.charge(end)
		select {
		case st.ch <- end:
		case <-st.done:
		}
		close(st.ch)
	}()
	return st, nil
}

type inprocStream struct {
	ch        chan Message
	done      chan struct{}
	closeOnce sync.Once
	finished  bool
}

func (s *inprocStream) Recv() (Message, error) {
	if s.finished {
		return Message{}, io.EOF
	}
	m, ok := <-s.ch
	if !ok {
		return Message{}, io.EOF
	}
	switch m.Type {
	case MsgEnd:
		s.finished = true
		return Message{}, io.EOF
	case MsgError:
		s.finished = true
		return Message{}, fmt.Errorf("dht: stream error: %s", m.Err)
	}
	return m, nil
}

func (s *inprocStream) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}
