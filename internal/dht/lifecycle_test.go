package dht

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/store"
)

// buildNetworkCfg is buildNetwork with an explicit node configuration.
func buildNetworkCfg(t testing.TB, net *Network, n int, cfg Config) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(net.NewEndpoint(), store.NewMem(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatalf("bootstrap node %d: %v", i, err)
		}
	}
	for _, nd := range nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// TestBucketStaleness pins the refresher's bucket selection: a
// non-empty bucket no lookup has targeted is stale, a touched bucket
// is not, and empty buckets never are.
func TestBucketStaleness(t *testing.T) {
	self := PeerIDFromSeed("staleness-self")
	tb := NewTable(self, 4)
	other := PeerIDFromSeed("staleness-other")
	tb.Update(Contact{ID: other, Addr: "x"})
	bucket := self.BucketIndex(other)

	stale := tb.StaleBuckets(time.Hour)
	if len(stale) != 1 || stale[0] != bucket {
		t.Fatalf("StaleBuckets = %v, want [%d]: only the one non-empty, never-touched bucket", stale, bucket)
	}

	tb.Touch(other)
	if got := tb.StaleBuckets(time.Hour); len(got) != 0 {
		t.Fatalf("StaleBuckets after Touch = %v, want none", got)
	}
	// With a zero max age, even a just-touched bucket is due again.
	if got := tb.StaleBuckets(0); len(got) != 1 || got[0] != bucket {
		t.Fatalf("StaleBuckets(0) = %v, want [%d]", got, bucket)
	}
	// Touching an identifier whose bucket is empty must not make that
	// bucket eligible: staleness tracks only buckets holding contacts.
	tb.Touch(PeerIDFromSeed("staleness-elsewhere"))
	if got := tb.StaleBuckets(0); len(got) != 1 || got[0] != bucket {
		t.Fatalf("StaleBuckets(0) after unrelated Touch = %v, want [%d]", got, bucket)
	}
}

// TestRandomIDInBucket pins the refresh target construction: the
// generated identifier must land in exactly the requested bucket.
func TestRandomIDInBucket(t *testing.T) {
	self := PeerIDFromSeed("refresh-target-self")
	tb := NewTable(self, 4)
	rng := rand.New(rand.NewSource(42))
	for _, bucket := range []int{0, 1, 7, 8, 63, 100, IDBytes*8 - 1} {
		for trial := 0; trial < 32; trial++ {
			id := tb.RandomIDInBucket(bucket, rng)
			if got := self.BucketIndex(id); got != bucket {
				t.Fatalf("RandomIDInBucket(%d) -> %v lands in bucket %d", bucket, id, got)
			}
		}
	}
}

// TestRefreshOnce exercises the refresher end to end: a fresh node has
// stale buckets and refreshes them; immediately afterwards nothing is
// stale, so a second pass does nothing.
func TestRefreshOnce(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetworkCfg(t, net, 8, Config{})
	ctx := context.Background()
	// Lookups during bootstrap touched some buckets; use a zero-age
	// pass first to force every non-empty bucket stale, then a long-age
	// pass that must find nothing left to do.
	n, err := nodes[3].RefreshOnce(ctx, 0)
	if err != nil {
		t.Fatalf("RefreshOnce: %v", err)
	}
	if n == 0 {
		t.Fatal("RefreshOnce(0) refreshed no buckets on a populated table")
	}
	if got := net.Collector.Events(metrics.EventRefresh); got < int64(n) {
		t.Fatalf("EventRefresh = %d, want >= %d", got, n)
	}
	again, err := nodes[3].RefreshOnce(ctx, time.Hour)
	if err != nil {
		t.Fatalf("second RefreshOnce: %v", err)
	}
	if again != 0 {
		t.Fatalf("second RefreshOnce refreshed %d buckets, want 0 (all just touched)", again)
	}
}

// TestProbeKeepsSlowPeer pins the false-alarm half of the failure
// detector: a peer that is merely slow fails the tight RPC deadline,
// but the probe (with its own, longer deadline) succeeds and the peer
// keeps its table slot.
func TestProbeKeepsSlowPeer(t *testing.T) {
	net := NewNetwork()
	cfg := Config{RPCTimeout: 30 * time.Millisecond, ProbeTimeout: 2 * time.Second}
	nodes := buildNetworkCfg(t, net, 2, cfg)
	a, b := nodes[0], nodes[1]

	net.SetSlow(b.Self().Addr, 100*time.Millisecond)
	if _, err := a.call(context.Background(), b.Self(), Message{Type: MsgFindNode, From: a.Self(), Target: a.Self().ID}); err == nil {
		t.Fatal("call to slow peer should miss the 30ms deadline")
	}
	net.SetSlow(b.Self().Addr, 0)

	// The probe runs in the background; give it time to complete.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if net.Collector.Events(metrics.EventProbe) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if net.Collector.Events(metrics.EventProbe) == 0 {
		t.Fatal("no probe launched after a failed call")
	}
	if got := net.Collector.Events(metrics.EventFailedProbe); got != 0 {
		t.Fatalf("probe of a live peer failed (%d failed probes)", got)
	}
	if got := a.Table().Size(); got != 1 {
		t.Fatalf("slow-but-alive peer evicted: table size %d, want 1", got)
	}
}

// TestProbeEvictsDeadPeer pins the confirmation half: when the probed
// peer really is gone, the probe fails and the contact is evicted.
func TestProbeEvictsDeadPeer(t *testing.T) {
	net := NewNetwork()
	cfg := Config{RPCTimeout: 100 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond}
	nodes := buildNetworkCfg(t, net, 2, cfg)
	a, b := nodes[0], nodes[1]

	net.Partition(b.Self().Addr)
	if _, err := a.call(context.Background(), b.Self(), Message{Type: MsgPing, From: a.Self()}); err == nil {
		t.Fatal("call to a partitioned peer should fail")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && a.Table().Size() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := a.Table().Size(); got != 0 {
		t.Fatalf("dead peer not evicted: table size %d", got)
	}
	if got := net.Collector.Events(metrics.EventFailedProbe); got == 0 {
		t.Fatal("eviction happened without a failed probe being counted")
	}
}

// TestGracefulLeaveLosesNoKeys pins the acceptance criterion directly:
// after a key-holding node leaves gracefully, every key it held is
// still fully readable through the overlay.
func TestGracefulLeaveLosesNoKeys(t *testing.T) {
	net := NewNetwork()
	cfg := Config{Replication: 2}
	nodes := buildNetworkCfg(t, net, 10, cfg)
	rng := rand.New(rand.NewSource(9))

	want := map[string]int{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("leave-key-%d", i)
		list := randomPostings(rng, 5+rng.Intn(20))
		if err := nodes[i%len(nodes)].Append(key, list); err != nil {
			t.Fatalf("append %s: %v", key, err)
		}
		if got, err := nodes[0].Get(key); err == nil {
			want[key] = len(got)
		} else {
			t.Fatalf("baseline get %s: %v", key, err)
		}
	}

	// Leave the node holding the most keys, so the handoff actually has
	// work to do.
	leaver := nodes[1]
	for _, nd := range nodes[1:] {
		if a, _ := nd.Store().Terms(); func() bool { b, _ := leaver.Store().Terms(); return len(a) > len(b) }() {
			leaver = nd
		}
	}
	held, err := leaver.Store().Terms()
	if err != nil {
		t.Fatal(err)
	}
	if len(held) == 0 {
		t.Fatal("picked a leaver holding no keys; test needs a key holder")
	}
	moved, err := leaver.Leave(context.Background())
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if moved != len(held) {
		t.Fatalf("Leave moved %d keys, held %d", moved, len(held))
	}
	if err := leaver.Close(); err != nil {
		t.Fatal(err)
	}
	if got := net.Collector.Events(metrics.EventHandoff); got != int64(moved) {
		t.Fatalf("EventHandoff = %d, want %d", got, moved)
	}

	for key, count := range want {
		list, err := nodes[0].Get(key)
		if err != nil {
			t.Fatalf("get %s after leave: %v", key, err)
		}
		if len(list) < count {
			t.Fatalf("key %s lost postings after graceful leave: %d < %d", key, len(list), count)
		}
	}
}

// TestPullOwnedOnJoin pins the pull direction of handoff: a joiner
// lands inside some keys' owner sets and PullOwnedOnce fetches those
// keys without waiting for the incumbents' push loops.
func TestPullOwnedOnJoin(t *testing.T) {
	net := NewNetwork()
	cfg := Config{Replication: 3}
	nodes := buildNetworkCfg(t, net, 6, cfg)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("join-key-%d", i)
		if err := nodes[i%len(nodes)].Append(key, randomPostings(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}

	joiner, err := NewNode(net.NewEndpoint(), store.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Bootstrap(nodes[0].Self()); err != nil {
		t.Fatal(err)
	}
	pulled, err := joiner.PullOwnedOnce(context.Background())
	if err != nil {
		t.Fatalf("PullOwnedOnce: %v", err)
	}
	// In a 7-node overlay with Replication 3 the joiner is an owner of
	// roughly 3/7 of the keys; demanding at least one keeps the test
	// robust to ID geometry while still proving the pull works.
	if pulled == 0 {
		t.Fatal("joiner pulled no keys despite owning some")
	}
	terms, err := joiner.Store().Terms()
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != pulled {
		t.Fatalf("joiner store has %d terms, PullOwnedOnce reported %d", len(terms), pulled)
	}
	// Every pulled key must be one the joiner actually owns, at the full
	// replica size.
	for _, term := range terms {
		owners, err := joiner.Owners(term)
		if err != nil {
			t.Fatal(err)
		}
		mine := false
		for _, o := range owners {
			if o.ID == joiner.Self().ID {
				mine = true
			}
		}
		if !mine {
			t.Fatalf("joiner pulled %s but is not among its owners", term)
		}
		c, err := joiner.Store().Count(term)
		if err != nil || c != 8 {
			t.Fatalf("joiner holds %d postings of %s, want 8 (err %v)", c, term, err)
		}
	}
}
