package dht

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/store"
)

// TestLookupSurvivesChurn kills a third of the network and checks that
// lookups from the survivors still converge (on possibly new owners)
// and that routing tables shed the dead contacts along the way.
func TestLookupSurvivesChurn(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 30)
	rng := rand.New(rand.NewSource(1))

	// Kill 10 random peers.
	dead := map[int]bool{}
	for len(dead) < 10 {
		i := rng.Intn(len(nodes))
		if i == 0 {
			continue // keep the bootstrap alive for clarity
		}
		if !dead[i] {
			dead[i] = true
			net.Partition(nodes[i].Self().Addr)
		}
	}
	alive := func() []*Node {
		var out []*Node
		for i, nd := range nodes {
			if !dead[i] {
				out = append(out, nd)
			}
		}
		return out
	}()

	for _, key := range []string{"l:author", "w:xml", "l:title"} {
		target := KeyID(key)
		// Ground truth among survivors.
		best := alive[0]
		for _, nd := range alive {
			if nd.Self().ID.XOR(target).Less(best.Self().ID.XOR(target)) {
				best = nd
			}
		}
		for _, nd := range alive {
			owner, err := nd.Locate(key)
			if err != nil {
				t.Fatalf("locate %q after churn: %v", key, err)
			}
			if owner.ID != best.Self().ID {
				t.Fatalf("locate %q: got %s, want %s", key, owner, best.Self())
			}
		}
	}
}

// TestStoreOpsAfterChurn checks append/get keep working for keys whose
// previous owner died: the new closest peer takes over (fresh writes;
// data held only by the dead peer is gone, as in a replication-factor-1
// deployment).
func TestStoreOpsAfterChurn(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 20)
	owner, err := nodes[3].Locate("l:author")
	if err != nil {
		t.Fatal(err)
	}
	net.Partition(owner.Addr)

	l := randomPostings(rand.New(rand.NewSource(2)), 50)
	if err := nodes[3].Append("l:author", l); err != nil {
		t.Fatalf("append after owner death: %v", err)
	}
	got, err := nodes[7].Get("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(l) {
		t.Fatalf("get after re-homing: %d postings, want %d", len(got), len(l))
	}
}

// TestConcurrentAppendsAndGets hammers one key from many goroutines;
// with the store's locking every appended posting must be retrievable
// afterwards.
func TestConcurrentAppendsAndGets(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 10)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 20
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				l := randomPostings(rng, 5)
				if err := nodes[w%len(nodes)].Append(fmt.Sprintf("l:t%d", w%3), l); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if _, err := nodes[(w+1)%len(nodes)].Get(fmt.Sprintf("l:t%d", (w+1)%3)); err != nil {
					t.Errorf("worker %d get: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// All lists are intact and sorted.
	for i := 0; i < 3; i++ {
		l, err := nodes[0].Get(fmt.Sprintf("l:t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("list %d corrupted: %v", i, err)
		}
	}
}

// TestStreamConsumerAbandons opens a pipelined stream over a long list
// and drops it after a few postings; the producer must notice and stop
// rather than leak or block forever.
func TestStreamConsumerAbandons(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 6)
	big := make(postings.List, 20000)
	for i := range big {
		s := uint32(2*i + 1)
		big[i].Peer = 1
		big[i].Doc = 1
		big[i].SID.Start = s
		big[i].SID.End = s + 1
	}
	if err := nodes[0].Append("l:big", big); err != nil {
		t.Fatal(err)
	}
	s, err := nodes[2].GetStream("l:big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("posting %d: %v", i, err)
		}
	}
	// Abandon: close the receiving pipe; the sender-side goroutine must
	// unblock via the pipe's closed state.
	if p, ok := s.(*postings.Pipe); ok {
		p.Close(nil)
	}
	// The test passes if nothing deadlocks and the network keeps working.
	if _, err := nodes[3].Get("l:big"); err != nil {
		t.Fatal(err)
	}
}

// TestClientNodeInvisible checks client mode: a client can look up,
// fetch and append through the overlay, but never appears in any
// routing table and never owns a key.
func TestClientNodeInvisible(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 12)
	client, err := NewNode(net.NewEndpoint(), store.NewMem(), Config{Client: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Bootstrap(nodes[0].Self()); err != nil {
		t.Fatal(err)
	}
	l := randomPostings(rand.New(rand.NewSource(3)), 40)
	if err := client.Append("l:author", l); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get("l:author")
	if err != nil || len(got) != len(l) {
		t.Fatalf("client get: %d (%v)", len(got), err)
	}
	// The client never stored anything locally (it is not an owner).
	if n, _ := client.Store().Count("l:author"); n != 0 {
		t.Fatalf("client stored %d postings locally", n)
	}
	// No full peer knows the client.
	for i, nd := range nodes {
		for _, c := range nd.Table().Closest(client.Self().ID, 100) {
			if c.ID == client.Self().ID {
				t.Fatalf("peer %d learned the client's contact", i)
			}
		}
	}
	// Locates from the client agree with a full peer's.
	a, err := client.Locate("l:author")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nodes[5].Locate("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("client located %s, full peer %s", a, b)
	}
}
