package dht

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/store"
)

func TestIDXORMetric(t *testing.T) {
	a := KeyID("a")
	b := KeyID("b")
	if a.XOR(a) != (ID{}) {
		t.Error("d(x,x) must be 0")
	}
	if a.XOR(b) != b.XOR(a) {
		t.Error("XOR must be symmetric")
	}
	f := func(x, y, z [20]byte) bool {
		// Triangle inequality holds for XOR metrics under unsigned
		// comparison: d(x,z) <= d(x,y) XOR d(y,z) is actually equality
		// d(x,z) = d(x,y) xor d(y,z); check that identity instead.
		xi, yi, zi := ID(x), ID(y), ID(z)
		return xi.XOR(zi) == xi.XOR(yi).XOR(yi.XOR(zi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketIndex(t *testing.T) {
	var a ID
	if a.BucketIndex(a) != -1 {
		t.Error("same id has no bucket")
	}
	var b ID
	b[0] = 0x80
	if got := a.BucketIndex(b); got != 159 {
		t.Errorf("msb differs: bucket %d, want 159", got)
	}
	var c ID
	c[IDBytes-1] = 1
	if got := a.BucketIndex(c); got != 0 {
		t.Errorf("lsb differs: bucket %d, want 0", got)
	}
}

func TestTableUpdateAndClosest(t *testing.T) {
	self := PeerIDFromSeed("self")
	tbl := NewTable(self, 4)
	var contacts []Contact
	for i := 0; i < 50; i++ {
		c := Contact{ID: PeerIDFromSeed(fmt.Sprintf("peer%d", i)), Addr: fmt.Sprintf("a%d", i)}
		contacts = append(contacts, c)
		tbl.Update(c)
	}
	if tbl.Size() == 0 {
		t.Fatal("table empty after updates")
	}
	target := KeyID("l:author")
	got := tbl.Closest(target, 5)
	if len(got) == 0 || len(got) > 5 {
		t.Fatalf("Closest returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID.XOR(target).Less(got[i-1].ID.XOR(target)) {
			t.Fatal("Closest not sorted by distance")
		}
	}
	// Self is never stored.
	tbl.Update(Contact{ID: self, Addr: "self"})
	for _, c := range tbl.Closest(self, 100) {
		if c.ID == self {
			t.Fatal("table stored self")
		}
	}
	// Remove works.
	tbl.Remove(got[0].ID)
	for _, c := range tbl.Closest(target, 100) {
		if c.ID == got[0].ID {
			t.Fatal("Remove did not remove")
		}
	}
}

func TestTableBucketCapacity(t *testing.T) {
	self := PeerIDFromSeed("self")
	tbl := NewTable(self, 2)
	// Generate many contacts in the same bucket (same top bit pattern):
	// brute force by filtering on BucketIndex.
	bucket := -1
	added := 0
	for i := 0; i < 1000 && added < 10; i++ {
		c := Contact{ID: PeerIDFromSeed(fmt.Sprintf("x%d", i)), Addr: fmt.Sprintf("x%d", i)}
		bi := self.BucketIndex(c.ID)
		if bucket == -1 {
			bucket = bi
		}
		if bi == bucket {
			tbl.Update(c)
			added++
		}
	}
	if added < 3 {
		t.Skip("could not generate enough same-bucket contacts")
	}
	if tbl.Size() > 2 {
		t.Fatalf("bucket exceeded capacity: %d", tbl.Size())
	}
}

func randomPostings(rng *rand.Rand, n int) postings.List {
	l := make(postings.List, n)
	for i := range l {
		s := uint32(rng.Intn(5000) + 1)
		l[i] = sid.Posting{
			Peer: sid.PeerID(rng.Intn(5)), Doc: sid.DocID(rng.Intn(50)),
			SID: sid.SID{Start: s, End: s + 1 + uint32(rng.Intn(40)), Level: uint16(rng.Intn(6))},
		}
	}
	l.Sort()
	return l.Dedup()
}

func TestMessageCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	msgs := []Message{
		{Type: MsgPing, From: Contact{ID: KeyID("x"), Addr: "sim://1"}},
		{Type: MsgFindNode, Target: KeyID("l:author")},
		{Type: MsgAppend, Key: "l:author", Postings: randomPostings(rng, 100)},
		{Type: MsgNodes, Contacts: []Contact{{ID: KeyID("a"), Addr: "h1:1"}, {ID: KeyID("b"), Addr: "h2:2"}}},
		{Type: MsgApp, Proc: "filter:ab", Key: "k", Blob: []byte{1, 2, 3, 0, 255}},
		{Type: MsgError, Err: "boom"},
		{Type: MsgChunk, Postings: randomPostings(rng, 7)},
	}
	for _, m := range msgs {
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("Encode(%s): %v", m.Type, err)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("Decode(%s): %v", m.Type, err)
		}
		if got.Type != m.Type || got.Key != m.Key || got.Proc != m.Proc || got.Err != m.Err {
			t.Fatalf("scalar fields lost: %+v vs %+v", got, m)
		}
		if !reflect.DeepEqual(got.Blob, m.Blob) && len(m.Blob) > 0 {
			t.Fatalf("blob lost")
		}
		if len(got.Postings) != len(m.Postings) {
			t.Fatalf("postings lost: %d vs %d", len(got.Postings), len(m.Postings))
		}
		for i := range m.Postings {
			if got.Postings[i] != m.Postings[i] {
				t.Fatal("postings corrupted")
			}
		}
		if !reflect.DeepEqual(got.Contacts, m.Contacts) && len(m.Contacts) > 0 {
			t.Fatal("contacts lost")
		}
	}
}

func TestMessageCodecRejectsTruncation(t *testing.T) {
	m := Message{Type: MsgAppend, Key: "l:author", Postings: randomPostings(rand.New(rand.NewSource(2)), 20)}
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc)-1; cut += 7 {
		if _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
}

func TestMessageClasses(t *testing.T) {
	cases := map[MsgType]string{
		MsgPing: "routing", MsgFindNode: "routing", MsgAppend: "index",
		MsgGet: "postings", MsgChunk: "postings",
	}
	for typ, class := range cases {
		if got := string((Message{Type: typ}).Class()); got != class {
			t.Errorf("class(%s) = %s, want %s", typ, got, class)
		}
	}
	if got := (Message{Type: MsgApp, Proc: "filter:abreduce"}).Class(); string(got) != "filters-ab" {
		t.Errorf("AB filter proc class = %s", got)
	}
	if got := (Message{Type: MsgApp, Proc: "filter:dbreduce"}).Class(); string(got) != "filters-db" {
		t.Errorf("DB filter proc class = %s", got)
	}
	if got := (Message{Type: MsgApp, Proc: "filter:other"}).Class(); string(got) != "filters" {
		t.Errorf("generic filter proc class = %s", got)
	}
	if got := (Message{Type: MsgApp, Proc: "query:run"}).Class(); string(got) != "control" {
		t.Errorf("control proc class = %s", got)
	}
}

// buildNetwork spins up n peers on a simulated network, all
// bootstrapped through the first.
func buildNetwork(t testing.TB, net *Network, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(net.NewEndpoint(), store.NewMem(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatalf("bootstrap node %d: %v", i, err)
		}
	}
	// A second pass of self-lookups tightens tables after everyone joined.
	for _, nd := range nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

func TestLookupConvergesToGlobalClosest(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 40)
	for _, key := range []string{"l:author", "l:title", "w:xml", "overflow:3:l:author"} {
		target := KeyID(key)
		// Ground truth: globally closest node.
		best := nodes[0]
		for _, nd := range nodes {
			if nd.Self().ID.XOR(target).Less(best.Self().ID.XOR(target)) {
				best = nd
			}
		}
		// Every node must locate the same owner.
		for i, nd := range nodes {
			owner, err := nd.Locate(key)
			if err != nil {
				t.Fatalf("node %d locate: %v", i, err)
			}
			if owner.ID != best.Self().ID {
				t.Fatalf("node %d located %s, want %s for key %q", i, owner, best.Self(), key)
			}
		}
	}
}

func TestAppendGetAcrossNetwork(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 20)
	rng := rand.New(rand.NewSource(3))
	want := randomPostings(rng, 700)
	// Append in chunks from different peers.
	for i := 0; i < len(want); i += 100 {
		end := i + 100
		if end > len(want) {
			end = len(want)
		}
		if err := nodes[i/100%len(nodes)].Append("l:author", want[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := nodes[7].Get("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Get across network: %d vs %d postings", len(got), len(want))
	}
	// Traffic was recorded.
	if net.Collector.Bytes("index") == 0 || net.Collector.Bytes("postings") == 0 {
		t.Errorf("collector missing traffic:\n%s", net.Collector.Snapshot())
	}
}

func TestGetStreamPipelined(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 10)
	rng := rand.New(rand.NewSource(4))
	want := randomPostings(rng, 3000)
	if err := nodes[1].Append("w:xml", want); err != nil {
		t.Fatal(err)
	}
	s, err := nodes[2].GetStream("w:xml")
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream: %d vs %d postings", len(got), len(want))
	}
}

func TestDeleteAndDeleteKey(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 8)
	rng := rand.New(rand.NewSource(5))
	l := randomPostings(rng, 50)
	if err := nodes[0].Append("l:x", l); err != nil {
		t.Fatal(err)
	}
	if err := nodes[3].Delete("l:x", l[7]); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[5].Get("l:x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(l)-1 {
		t.Fatalf("after delete: %d", len(got))
	}
	if err := nodes[2].DeleteKey("l:x"); err != nil {
		t.Fatal(err)
	}
	got, _ = nodes[4].Get("l:x")
	if len(got) != 0 {
		t.Fatalf("after delete-key: %d", len(got))
	}
}

func TestAppProcs(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 6)
	for _, nd := range nodes {
		nd.Handle("echo", func(_ context.Context, from Contact, key string, blob []byte) ([]byte, error) {
			return append([]byte("echo:"), blob...), nil
		})
		nd.HandleStreamProc("stream:first", func(_ context.Context, from Contact, key string, blob []byte, send func(postings.List) error) error {
			l, err := nodes[0].Store().Get(key)
			if err != nil {
				return err
			}
			return send(l)
		})
	}
	out, err := nodes[1].CallProc("anykey", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("echo = %q", out)
	}
	if _, err := nodes[1].CallProc("anykey", "missing", nil); err == nil {
		t.Fatal("unknown proc should error")
	}
}

func TestReplication(t *testing.T) {
	net := NewNetwork()
	nodes := make([]*Node, 12)
	for i := range nodes {
		node, err := NewNode(net.NewEndpoint(), store.NewMem(), Config{Replication: 3})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		nd.Lookup(nd.Self().ID)
	}
	rng := rand.New(rand.NewSource(6))
	l := randomPostings(rng, 40)
	if err := nodes[4].Append("l:author", l); err != nil {
		t.Fatal(err)
	}
	// Count replicas across stores.
	replicas := 0
	for _, nd := range nodes {
		if c, _ := nd.Store().Count("l:author"); c == len(l) {
			replicas++
		}
	}
	if replicas != 3 {
		t.Fatalf("replicas = %d, want 3", replicas)
	}
	// Kill the primary owner: Get still succeeds via a surviving replica?
	// The basic Get asks only the closest; simulate owner failure and
	// verify a re-locate from another node can still find a copy among
	// the k closest.
	owner, err := nodes[4].Locate("l:author")
	if err != nil {
		t.Fatal(err)
	}
	net.Partition(owner.Addr)
	found := false
	for _, nd := range nodes {
		if nd.Self().Addr == owner.Addr {
			continue
		}
		cs, err := nd.Lookup(KeyID("l:author"))
		if err != nil {
			continue
		}
		for _, c := range cs {
			if c.Addr == owner.Addr {
				continue
			}
			resp, err := nd.tr.Call(context.Background(), c, Message{Type: MsgGet, From: nd.Self(), Key: "l:author"})
			if err == nil && len(resp.Postings) == len(l) {
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no surviving replica reachable after owner failure")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	mkNode := func() *Node {
		tr, err := NewTCPTransport("127.0.0.1:0", nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(tr, store.NewMem(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b, c := mkNode(), mkNode(), mkNode()
	defer a.Close()
	defer b.Close()
	defer c.Close()
	if err := b.Bootstrap(a.Self()); err != nil {
		t.Fatal(err)
	}
	if err := c.Bootstrap(a.Self()); err != nil {
		t.Fatal(err)
	}
	for _, nd := range []*Node{a, b, c} {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	want := randomPostings(rng, 1500)
	if err := b.Append("l:author", want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tcp get: %d vs %d", len(got), len(want))
	}
	s, err := c.GetStream("l:author")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("tcp stream: %d vs %d", len(got2), len(want))
	}
}

func TestCallToDeadPeerFails(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 3)
	dead := Contact{ID: PeerIDFromSeed("ghost"), Addr: "sim://999"}
	if _, err := nodes[0].tr.Call(context.Background(), dead, Message{Type: MsgPing, From: nodes[0].Self()}); err == nil {
		t.Fatal("call to dead peer should fail")
	}
}

func TestAppendAtDeleteAtTargeted(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 8)
	l := randomPostings(rand.New(rand.NewSource(9)), 30)
	target := nodes[5].Self()
	// Targeted append bypasses ownership routing entirely.
	if err := nodes[1].AppendAt(target, "overflow:1:l:x", l); err != nil {
		t.Fatal(err)
	}
	if n, _ := nodes[5].Store().Count("overflow:1:l:x"); n != len(l) {
		t.Fatalf("targeted append stored %d", n)
	}
	if err := nodes[2].DeleteAt(target, "overflow:1:l:x", l[3]); err != nil {
		t.Fatal(err)
	}
	if n, _ := nodes[5].Store().Count("overflow:1:l:x"); n != len(l)-1 {
		t.Fatalf("targeted delete left %d", n)
	}
	// Local fast paths.
	if err := nodes[5].AppendAt(target, "overflow:2:l:x", l[:5]); err != nil {
		t.Fatal(err)
	}
	if err := nodes[5].DeleteAt(target, "overflow:2:l:x", l[0]); err != nil {
		t.Fatal(err)
	}
	if n, _ := nodes[5].Store().Count("overflow:2:l:x"); n != 4 {
		t.Fatalf("local targeted ops left %d", n)
	}
}

func TestStringsNonEmpty(t *testing.T) {
	if KeyID("x").String() == "" {
		t.Error("ID.String")
	}
	c := Contact{ID: KeyID("y"), Addr: "sim://1"}
	if c.String() == "" {
		t.Error("Contact.String")
	}
	for typ := MsgPing; typ <= MsgAppReply; typ++ {
		if typ.String() == "" {
			t.Errorf("MsgType(%d).String empty", typ)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown MsgType should still render")
	}
}

func TestEndpointCloseStopsService(t *testing.T) {
	net := NewNetwork()
	nodes := buildNetwork(t, net, 4)
	addr := nodes[3].Self()
	if err := nodes[3].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].tr.Call(context.Background(), addr, Message{Type: MsgPing, From: nodes[0].Self()}); err == nil {
		t.Fatal("call to a closed endpoint should fail")
	}
	// Survivors keep working.
	if _, err := nodes[0].Lookup(KeyID("l:x")); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteWithReplication(t *testing.T) {
	net := NewNetwork()
	nodes := make([]*Node, 10)
	for i := range nodes {
		nd, err := NewNode(net.NewEndpoint(), store.NewMem(), Config{Replication: 3})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		nd.Lookup(nd.Self().ID)
	}
	l := randomPostings(rand.New(rand.NewSource(10)), 20)
	if err := nodes[0].Append("l:rep", l); err != nil {
		t.Fatal(err)
	}
	// Delete one posting everywhere, then the whole key everywhere.
	if err := nodes[4].Delete("l:rep", l[0]); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if n, _ := nd.Store().Count("l:rep"); n != 0 && n != len(l)-1 {
			t.Fatalf("replica holds %d postings after delete", n)
		}
	}
	if err := nodes[7].DeleteKey("l:rep"); err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		if n, _ := nd.Store().Count("l:rep"); n != 0 {
			t.Fatalf("replica %d still holds %d postings after delete-key", i, n)
		}
	}
}
