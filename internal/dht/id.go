// Package dht implements the structured overlay KadoP runs on: a
// Kademlia-style distributed hash table with the standard interface of
// Section 2 (locate, put, get, delete) plus the two extensions of
// Section 3 that the paper found essential for XML workloads:
//
//   - append(key, postings): linear-cost insertion into a key's posting
//     list, replacing the quadratic read-reconcile-write of the generic
//     DHT put;
//   - pipelined get: posting lists stream to the consumer in chunks, so
//     the holistic twig join starts before any list has fully arrived.
//
// Peers keep 160-bit identifiers; keys hash into the same space and are
// owned by the closest peers under the XOR metric. Routing state is the
// usual k-bucket table, and lookups are iterative with bounded
// parallelism, so every locate costs O(log n) messages — the multi-hop
// routing whose moderate cost Figure 2 demonstrates.
//
// Two interchangeable transports are provided: an in-process simulated
// network that can model link latency and bandwidth while accounting
// every byte (used to run hundreds of peers in one process), and a TCP
// transport for real multi-node deployments. Both serialise messages
// with the same codec, byte for byte.
package dht

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// IDBytes is the size of identifiers (160 bits, as in Pastry/Kademlia).
const IDBytes = 20

// ID is a peer or key identifier in the DHT's 160-bit space.
type ID [IDBytes]byte

// KeyID hashes an application key (a term key such as "l:author") into
// the identifier space.
func KeyID(key string) ID { return sha1.Sum([]byte(key)) }

// PeerIDFromSeed derives a peer identifier from a stable seed string
// (the peer's URI or listening address).
func PeerIDFromSeed(seed string) ID { return sha1.Sum([]byte("peer:" + seed)) }

// XOR returns the Kademlia distance between two identifiers.
func (a ID) XOR(b ID) ID {
	var d ID
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Less compares distances (big-endian byte order).
func (a ID) Less(b ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BucketIndex returns the index of the k-bucket that holds b relative
// to a: the position of the highest differing bit (159 for the most
// distant half of the space, 0 for the nearest). It returns -1 when
// a == b.
func (a ID) BucketIndex(b ID) int {
	for i := 0; i < IDBytes; i++ {
		if x := a[i] ^ b[i]; x != 0 {
			return (IDBytes-1-i)*8 + 7 - bits.LeadingZeros8(x)
		}
	}
	return -1
}

// IsZero reports whether the identifier is all zeroes.
func (a ID) IsZero() bool { return a == ID{} }

func (a ID) String() string { return hex.EncodeToString(a[:4]) }

// Contact is the address record of one peer.
type Contact struct {
	ID   ID
	Addr string
}

func (c Contact) String() string { return fmt.Sprintf("%s@%s", c.ID, c.Addr) }
