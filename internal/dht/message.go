package dht

import (
	"encoding/binary"
	"fmt"
	"strings"

	"kadop/internal/metrics"
	"kadop/internal/postings"
)

// MsgType enumerates the DHT wire messages.
type MsgType uint8

// Wire message types. Ping/FindNode are the routing substrate; Append,
// Get and GetStream are the store operations of Sections 2-3; App
// carries application-level procedures registered by the KadoP layer.
const (
	MsgPing MsgType = iota + 1
	MsgPong
	MsgFindNode
	MsgNodes
	MsgAppend
	MsgGet
	MsgGetStream
	MsgDelete
	MsgDeleteKey
	MsgChunk
	MsgEnd
	MsgAck
	MsgError
	MsgApp
	MsgAppReply
	// MsgDigest asks a peer how many postings it holds for a key; the
	// replica repair loop compares digests across owners to find
	// under-replicated keys.
	MsgDigest
	// MsgDigestAck answers a digest with the count (uvarint in Blob).
	MsgDigestAck
	// MsgRepair is an append pushed by the repair loop; it behaves
	// exactly like MsgAppend but is accounted as repair traffic.
	MsgRepair
	// MsgGetBatch opens a stream that fetches several keys from one
	// peer in a single round trip: the DPP layer uses it to pull a run
	// of posting blocks co-located on the same owner. The requested
	// keys (and an optional document-interval clip) travel in Blob;
	// the response is a MsgChunk sequence where each chunk's Key names
	// the block it belongs to.
	MsgGetBatch
	// MsgTerms asks a peer which keys it holds locally; a joiner uses
	// it to discover the keys it just became responsible for (the pull
	// direction of join-time handoff).
	MsgTerms
	// MsgTermsAck answers MsgTerms with the (term, posting count)
	// pairs of the peer's local store, encoded in Blob.
	MsgTermsAck
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgPing: "ping", MsgPong: "pong", MsgFindNode: "find-node",
		MsgNodes: "nodes", MsgAppend: "append", MsgGet: "get",
		MsgGetStream: "get-stream", MsgDelete: "delete", MsgDeleteKey: "delete-key",
		MsgChunk: "chunk", MsgEnd: "end", MsgAck: "ack", MsgError: "error",
		MsgApp: "app", MsgAppReply: "app-reply",
		MsgDigest: "digest", MsgDigestAck: "digest-ack", MsgRepair: "repair",
		MsgGetBatch: "get-batch", MsgTerms: "terms", MsgTermsAck: "terms-ack",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", t)
}

// Message is the single wire unit of both transports. Fields unused by
// a message type are zero and cost two length bytes each on the wire.
type Message struct {
	Type     MsgType
	From     Contact
	Target   ID            // FindNode: lookup target
	Key      string        // store operations: the term or pseudo key
	Proc     string        // App: procedure name
	Postings postings.List // Append payload / Get and Chunk responses
	Contacts []Contact     // Nodes response
	Blob     []byte        // App payloads, opaque to the DHT
	Err      string        // Error responses
	// TraceID and SpanID propagate the caller's trace across the
	// transport so servers can attribute their work to the originating
	// query (internal/trace). Zero when the caller is not traced; an
	// untraced message costs two extra zero bytes on the wire.
	TraceID uint64
	SpanID  uint64
	// Gauge piggybacks the responder's recent-load reading (1 +
	// bytes served over the last control windows) on every response,
	// so clients learn replica load from traffic they already pay
	// for. Zero means "no reading attached" (requests, old peers);
	// the +1 keeps a genuinely idle responder distinguishable.
	Gauge uint64
	// Shed piggybacks whether the responder's admission gate is
	// currently rejecting reads, steering replica selection away
	// before a request is burned on an overload rejection.
	Shed bool
}

// rpcOp returns the fixed histogram operation name for a message type,
// avoiding a per-call string concatenation on the RPC hot path.
func rpcOp(t MsgType) string {
	switch t {
	case MsgPing:
		return metrics.OpRPCPing
	case MsgFindNode:
		return metrics.OpRPCFindNode
	case MsgAppend:
		return metrics.OpRPCAppend
	case MsgGet:
		return metrics.OpRPCGet
	case MsgGetStream:
		return metrics.OpRPCGetStream
	case MsgGetBatch:
		return metrics.OpRPCGetBatch
	case MsgDelete:
		return metrics.OpRPCDelete
	case MsgDeleteKey:
		return metrics.OpRPCDeleteKey
	case MsgApp:
		return metrics.OpRPCApp
	case MsgDigest:
		return metrics.OpRPCDigest
	case MsgRepair:
		return metrics.OpRPCRepair
	case MsgTerms:
		return metrics.OpRPCTerms
	}
	return metrics.OpRPCOther
}

// Class attributes the message to a traffic class for accounting.
// Application procedures choose their class by name prefix: "filter:"
// counts as filter traffic, "index:" as indexing traffic, "stream:" as
// posting transfers; everything else is control traffic.
func (m Message) Class() metrics.Class {
	switch m.Type {
	case MsgPing, MsgPong, MsgFindNode, MsgNodes:
		return metrics.Routing
	case MsgAppend:
		return metrics.Index
	case MsgGet, MsgGetStream, MsgGetBatch, MsgChunk, MsgEnd:
		return metrics.Postings
	case MsgApp, MsgAppReply:
		switch {
		case strings.HasPrefix(m.Proc, "filter:ab"), strings.HasPrefix(m.Proc, "filter:hybrid-ab"):
			return metrics.FiltersAB
		case strings.HasPrefix(m.Proc, "filter:db"), strings.HasPrefix(m.Proc, "filter:hybrid-db"):
			return metrics.FiltersDB
		case strings.HasPrefix(m.Proc, "filter:"):
			return metrics.Filters
		case strings.HasPrefix(m.Proc, "index:"):
			return metrics.Index
		case strings.HasPrefix(m.Proc, "stream:"):
			return metrics.Postings
		}
		return metrics.Control
	case MsgDelete, MsgDeleteKey:
		return metrics.Index
	case MsgDigest, MsgDigestAck, MsgRepair, MsgTerms, MsgTermsAck:
		return metrics.Repair
	case MsgAck:
		// Acks answering a blocking get carry the full posting list;
		// plain acks are control chatter.
		if len(m.Postings) > 0 {
			return metrics.Postings
		}
		return metrics.Control
	}
	return metrics.Other
}

// Encode serialises the message. Both transports use this codec, so a
// message costs identical bytes in the simulated and the TCP network.
func (m Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 64+len(m.Blob)+len(m.Postings)*6)
	buf = append(buf, byte(m.Type))
	buf = appendContact(buf, m.From)
	buf = append(buf, m.Target[:]...)
	buf = appendString(buf, m.Key)
	buf = appendString(buf, m.Proc)
	enc, err := postings.Encode(m.Postings)
	if err != nil {
		return nil, fmt.Errorf("dht: encode %s: %w", m.Type, err)
	}
	buf = binary.AppendUvarint(buf, uint64(len(enc)))
	buf = append(buf, enc...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Contacts)))
	for _, c := range m.Contacts {
		buf = appendContact(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Blob)))
	buf = append(buf, m.Blob...)
	buf = appendString(buf, m.Err)
	buf = binary.AppendUvarint(buf, m.TraceID)
	buf = binary.AppendUvarint(buf, m.SpanID)
	buf = binary.AppendUvarint(buf, m.Gauge)
	if m.Shed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}

// DecodeMessage parses a message serialised by Encode.
func DecodeMessage(buf []byte) (Message, error) {
	var m Message
	r := reader{buf: buf}
	m.Type = MsgType(r.byte())
	m.From = r.contact()
	copy(m.Target[:], r.take(IDBytes))
	m.Key = r.str()
	m.Proc = r.str()
	encLen := int(r.uvarint())
	if r.err == nil {
		encBytes := r.take(encLen)
		if r.err == nil {
			l, _, err := postings.Decode(encBytes)
			if err != nil {
				return m, fmt.Errorf("dht: decode message: %w", err)
			}
			m.Postings = l
		}
	}
	nc := int(r.uvarint())
	if r.err == nil && nc > len(buf) {
		return m, fmt.Errorf("dht: decode message: implausible contact count %d", nc)
	}
	for i := 0; i < nc && r.err == nil; i++ {
		m.Contacts = append(m.Contacts, r.contact())
	}
	blobLen := int(r.uvarint())
	if r.err == nil {
		m.Blob = append([]byte(nil), r.take(blobLen)...)
		if len(m.Blob) == 0 {
			m.Blob = nil
		}
	}
	m.Err = r.str()
	m.TraceID = r.uvarint()
	m.SpanID = r.uvarint()
	m.Gauge = r.uvarint()
	m.Shed = r.byte() != 0
	if r.err != nil {
		return m, fmt.Errorf("dht: decode message: %w", r.err)
	}
	return m, nil
}

// TermCount is one (key, local posting count) pair of a MsgTermsAck.
type TermCount struct {
	Term  string
	Count int
}

// encodeTermCounts serialises the pairs into a MsgTermsAck Blob.
func encodeTermCounts(tcs []TermCount) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(tcs)))
	for _, tc := range tcs {
		buf = appendString(buf, tc.Term)
		buf = binary.AppendUvarint(buf, uint64(tc.Count))
	}
	return buf
}

// decodeTermCounts parses a MsgTermsAck Blob.
func decodeTermCounts(buf []byte) ([]TermCount, error) {
	r := reader{buf: buf}
	n := int(r.uvarint())
	if r.err == nil && n > len(buf) {
		return nil, fmt.Errorf("dht: decode term counts: implausible count %d", n)
	}
	out := make([]TermCount, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		term := r.str()
		count := int(r.uvarint())
		out = append(out, TermCount{Term: term, Count: count})
	}
	if r.err != nil {
		return nil, fmt.Errorf("dht: decode term counts: %w", r.err)
	}
	return out, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendContact(buf []byte, c Contact) []byte {
	buf = append(buf, c.ID[:]...)
	return appendString(buf, c.Addr)
}

// reader is a cursor over an encoded message that latches the first
// error instead of panicking on truncated input.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at offset %d", r.pos)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		r.fail()
		return make([]byte, n&0xffff)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := int(r.uvarint())
	if r.err != nil || n > len(r.buf)-r.pos {
		r.fail()
		return ""
	}
	return string(r.take(n))
}

func (r *reader) contact() Contact {
	var c Contact
	copy(c.ID[:], r.take(IDBytes))
	c.Addr = r.str()
	return c
}
