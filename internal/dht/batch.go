package dht

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// Batched multi-key get: the DPP fetch path often wants several posting
// blocks that live on the same peer (consecutive pseudo-keys hash
// independently, but with few peers and many blocks co-location is the
// common case). MsgGetBatch fetches them in one stream instead of one
// round trip per block. The response interleaves nothing: blocks are
// sent back-to-back in request order, each chunk stamped with its
// block's key so the client can split the stream.

// batchRequestVersion guards the Blob layout of MsgGetBatch.
const batchRequestVersion = 1

// encodeBatchRequest packs the requested keys and the optional document
// interval [lo, hi] into a MsgGetBatch blob.
func encodeBatchRequest(keys []string, clip bool, lo, hi sid.DocKey) []byte {
	sz := 2 + 10
	for _, k := range keys {
		sz += len(k) + 5
	}
	if clip {
		sz += 16
	}
	buf := make([]byte, 0, sz)
	buf = append(buf, batchRequestVersion)
	if clip {
		buf = append(buf, 1)
		var b [16]byte
		binary.BigEndian.PutUint32(b[0:], uint32(lo.Peer))
		binary.BigEndian.PutUint32(b[4:], uint32(lo.Doc))
		binary.BigEndian.PutUint32(b[8:], uint32(hi.Peer))
		binary.BigEndian.PutUint32(b[12:], uint32(hi.Doc))
		buf = append(buf, b[:]...)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// decodeBatchRequest unpacks a MsgGetBatch blob.
func decodeBatchRequest(blob []byte) (keys []string, clip bool, lo, hi sid.DocKey, err error) {
	fail := func(msg string) ([]string, bool, sid.DocKey, sid.DocKey, error) {
		return nil, false, sid.DocKey{}, sid.DocKey{}, fmt.Errorf("dht: decode batch request: %s", msg)
	}
	if len(blob) < 2 {
		return fail("truncated header")
	}
	if blob[0] != batchRequestVersion {
		return fail(fmt.Sprintf("unknown version %d", blob[0]))
	}
	pos := 1
	switch blob[pos] {
	case 0:
	case 1:
		clip = true
	default:
		return fail("bad clip flag")
	}
	pos++
	if clip {
		if len(blob) < pos+16 {
			return fail("truncated interval")
		}
		b := blob[pos:]
		lo = sid.DocKey{Peer: sid.PeerID(binary.BigEndian.Uint32(b[0:])), Doc: sid.DocID(binary.BigEndian.Uint32(b[4:]))}
		hi = sid.DocKey{Peer: sid.PeerID(binary.BigEndian.Uint32(b[8:])), Doc: sid.DocID(binary.BigEndian.Uint32(b[12:]))}
		pos += 16
	}
	n, sz := binary.Uvarint(blob[pos:])
	if sz <= 0 || n > uint64(len(blob)) {
		return fail("bad key count")
	}
	pos += sz
	for i := uint64(0); i < n; i++ {
		kl, sz := binary.Uvarint(blob[pos:])
		if sz <= 0 || pos+sz+int(kl) > len(blob) {
			return fail("truncated key")
		}
		pos += sz
		keys = append(keys, string(blob[pos:pos+int(kl)]))
		pos += int(kl)
	}
	return keys, clip, lo, hi, nil
}

// GetBatchContext fetches several keys from one peer in a single round
// trip, returning each key's (optionally interval-clipped) posting
// list. A requested key the peer holds nothing for maps to an empty
// list — callers that know a block is non-empty treat that as a stale
// owner and fall back to a located per-key fetch.
func (n *Node) GetBatchContext(ctx context.Context, to Contact, keys []string, clip bool, lo, hi sid.DocKey) (map[string]postings.List, error) {
	out := make(map[string]postings.List, len(keys))
	for _, k := range keys {
		out[k] = nil
	}
	req := Message{
		Type: MsgGetBatch,
		From: n.from(),
		Blob: encodeBatchRequest(keys, clip, lo, hi),
	}
	if to.ID == n.self.ID {
		// Local fast path: serve straight from the store.
		err := n.HandleStream(n.self, req, func(m Message) error {
			out[m.Key] = append(out[m.Key], m.Postings...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	ms, err := n.openStream(ctx, to, req)
	if err != nil {
		return nil, err
	}
	defer ms.Close()
	for {
		m, rerr := ms.Recv()
		if errors.Is(rerr, io.EOF) {
			return out, nil
		}
		if rerr != nil {
			return nil, rerr
		}
		if _, ok := out[m.Key]; !ok {
			return nil, fmt.Errorf("dht: get-batch from %s: unrequested key %q", to.Addr, m.Key)
		}
		out[m.Key] = append(out[m.Key], m.Postings...)
	}
}

// streamBatch serves a MsgGetBatch request: each requested key's list
// is scanned from the local store, clipped to the document interval
// when one was sent, and shipped in chunks stamped with the key.
func (n *Node) streamBatch(req Message, send func(Message) error) error {
	keys, clip, lo, hi, err := decodeBatchRequest(req.Blob)
	if err != nil {
		return err
	}
	// One snapshot for the whole batch: every key's list comes from the
	// same committed generation, so a publish landing between keys
	// cannot skew a join's inputs against each other.
	view, release := n.readView()
	defer release()
	for _, key := range keys {
		n.load.ServeBlock()
		batch := make(postings.List, 0, n.cfg.ChunkSize)
		var sendErr error
		err := view.Scan(key, sid.MinPosting, func(p sid.Posting) bool {
			if clip {
				k := p.Key()
				if k.Compare(lo) < 0 {
					return true
				}
				if k.Compare(hi) > 0 {
					return false // sorted: nothing further can match
				}
			}
			batch = append(batch, p)
			if len(batch) == n.cfg.ChunkSize {
				sendErr = send(Message{Type: MsgChunk, From: n.self, Key: key, Postings: batch})
				batch = batch[:0]
				return sendErr == nil
			}
			return true
		})
		if err != nil {
			return err
		}
		if sendErr != nil {
			return sendErr
		}
		if len(batch) > 0 {
			if err := send(Message{Type: MsgChunk, From: n.self, Key: key, Postings: batch}); err != nil {
				return err
			}
		}
	}
	return nil
}
