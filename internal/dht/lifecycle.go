package dht

import (
	"context"
	"sync"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/obs/flight"
)

// This file holds the churn-tolerance machinery: the probe-on-suspicion
// failure detector, periodic bucket refresh, graceful leave with key
// handoff, and the join-time pull that lets a newcomer fetch the keys
// it just became responsible for. The periodic republisher is the
// repair loop in node.go; both run on the jittered startLoop below.

// robust counts one robustness occurrence in the node's labeled
// registry, so failure handling shows up on /metrics next to the RPC
// counters, and mirrors it into the flight ring (when one is
// installed) so a dump shows the individual occurrences in order.
func (n *Node) robust(event string) {
	n.reg.Counter("kadop_robustness_total",
		"Robustness events: repair pushes/pulls, handoff keys, probes, evictions, bucket refreshes.",
		metrics.Label{Key: "event", Value: event}).Add(1)
	if fr := n.flight.Load(); fr != nil {
		fr.Record(flight.Event{Kind: flight.KindEvent, Name: event, Peer: n.self.Addr})
	}
}

// noteFailure reacts to a contact failing an RPC after retries. With no
// probe timeout configured it evicts immediately (the seed behaviour).
// Otherwise the contact is put on probation: a single background ping,
// bounded by ProbeTimeout, decides between keeping it (the failure was
// a dropped message or a slow link) and evicting it (the peer is gone).
// Concurrent failures against one contact share a single probe.
func (n *Node) noteFailure(to Contact) {
	if n.cfg.ProbeTimeout <= 0 {
		n.evict(to.ID)
		return
	}
	n.probeMu.Lock()
	if n.probing[to.ID] {
		n.probeMu.Unlock()
		return
	}
	n.probing[to.ID] = true
	n.probeMu.Unlock()
	go func() {
		defer func() {
			n.probeMu.Lock()
			delete(n.probing, to.ID)
			n.probeMu.Unlock()
		}()
		n.collector.CountEvent(metrics.EventProbe)
		n.robust("probe")
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
		defer cancel()
		// Probe through the transport directly: n.call would recurse into
		// noteFailure, and a probe must not retry (one clean round trip
		// answers the liveness question).
		if _, err := n.tr.Call(ctx, to, Message{Type: MsgPing, From: n.from()}); err != nil {
			n.collector.CountEvent(metrics.EventFailedProbe)
			n.robust("probe-failed")
			n.evict(to.ID)
		}
	}()
}

// evict drops a contact from the routing table (the replacement cache
// refills the bucket) and accounts the eviction.
func (n *Node) evict(id ID) {
	if n.table.Remove(id) {
		n.collector.CountEvent(metrics.EventEviction)
		n.robust("eviction")
	}
}

// RefreshOnce probes every stale bucket with a lookup for a random
// identifier in the bucket's range, verifying the bucket's contacts
// and discovering replacements for dead ones. It returns the number of
// buckets refreshed. Buckets touched by ordinary lookup traffic within
// maxAge are skipped — only genuinely idle corners of the table pay
// refresh traffic.
func (n *Node) RefreshOnce(ctx context.Context, maxAge time.Duration) (int, error) {
	refreshed := 0
	var firstErr error
	for _, bucket := range n.table.StaleBuckets(maxAge) {
		if err := ctx.Err(); err != nil {
			return refreshed, err
		}
		n.maintMu.Lock()
		target := n.table.RandomIDInBucket(bucket, n.maintRand)
		n.maintMu.Unlock()
		if _, err := n.LookupContext(ctx, target); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		refreshed++
		n.collector.CountEvent(metrics.EventRefresh)
		n.robust("bucket-refresh")
	}
	return refreshed, firstErr
}

// StartRefresh launches the periodic bucket refresher and returns its
// stop function. A bucket counts as stale when no lookup has targeted
// its range for a full interval.
func (n *Node) StartRefresh(interval time.Duration) (stop func()) {
	return n.startLoop(interval, func(ctx context.Context) {
		n.RefreshOnce(ctx, interval)
	})
}

// Leave hands every locally-held key to the key's current owner set
// before the node departs: for each key, the remaining K-closest peers
// are looked up and any of them holding fewer postings than this node
// receives the full local copy. It returns the number of keys for
// which at least one remote replica holds the complete copy (keys
// "moved" safely). The local store is left intact — a peer that later
// restarts from its data directory resyncs rather than starting cold.
// Leave stops the maintenance loops but does not close the transport;
// callers follow up with Close.
func (n *Node) Leave(ctx context.Context) (int, error) {
	n.stopMaintenance()
	if n.cfg.Client {
		return 0, nil
	}
	terms, err := n.store.Terms()
	if err != nil {
		return 0, err
	}
	moved := 0
	var firstErr error
	for _, term := range terms {
		if err := ctx.Err(); err != nil {
			return moved, err
		}
		local, err := n.store.Count(term)
		if err != nil || local == 0 {
			continue
		}
		// The departing node must not count itself an owner: the key's
		// new home is the K-closest among the peers staying behind.
		cands, err := n.LookupContext(ctx, KeyID(term))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		heirs := cands[:0]
		for _, c := range cands {
			if c.ID != n.self.ID {
				heirs = append(heirs, c)
			}
		}
		if len(heirs) > n.cfg.Replication {
			heirs = heirs[:n.cfg.Replication]
		}
		safe := false
		for _, h := range heirs {
			remote, err := n.digestOf(ctx, h, term)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if remote < local {
				list, lerr := n.store.Get(term)
				if lerr != nil {
					if firstErr == nil {
						firstErr = lerr
					}
					break
				}
				if _, err := n.call(ctx, h, Message{Type: MsgRepair, From: n.from(), Key: term, Postings: list}); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			}
			safe = true
		}
		if safe {
			moved++
			n.collector.CountEvent(metrics.EventHandoff)
			n.robust("handoff-key")
		}
	}
	return moved, firstErr
}

// PullOwnedOnce is the join-time direction of key handoff: the node
// asks its nearest neighbours which keys they hold, and for every key
// it is now among the owners of but holds less of than a neighbour, it
// pulls the neighbour's copy and merges it. A fresh joiner runs this
// once after bootstrap so queries hitting it do not return empty until
// the owners' push loops come around. Returns the number of keys
// pulled.
func (n *Node) PullOwnedOnce(ctx context.Context) (int, error) {
	if n.cfg.Client {
		return 0, nil
	}
	// best remembers, per key, the neighbour holding the largest copy.
	type source struct {
		from  Contact
		count int
	}
	best := map[string]source{}
	for _, nb := range n.table.Closest(n.self.ID, n.cfg.K) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		resp, err := n.call(ctx, nb, Message{Type: MsgTerms, From: n.from()})
		if err != nil {
			continue
		}
		tcs, err := decodeTermCounts(resp.Blob)
		if err != nil {
			continue
		}
		for _, tc := range tcs {
			if tc.Count > best[tc.Term].count {
				best[tc.Term] = source{from: nb, count: tc.Count}
			}
		}
	}
	pulled := 0
	var firstErr error
	for term, src := range best {
		if err := ctx.Err(); err != nil {
			return pulled, err
		}
		local, err := n.store.Count(term)
		if err != nil || local >= src.count {
			continue
		}
		owners, err := n.OwnersContext(ctx, term)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		mine := false
		for _, o := range owners {
			if o.ID == n.self.ID {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		resp, err := n.call(ctx, src.from, Message{Type: MsgGet, From: n.from(), Key: term})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := n.store.Append(term, resp.Postings); err != nil {
			return pulled, err
		}
		pulled++
		n.collector.CountEvent(metrics.EventResync)
		n.robust("resync-pull")
	}
	return pulled, firstErr
}

// startLoop runs fn forever at roughly the given interval, each pass
// bounded by one interval, with ±10% seeded jitter between passes so
// nodes started together de-synchronise. It returns an idempotent stop
// function.
func (n *Node) startLoop(interval time.Duration, fn func(context.Context)) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			n.maintMu.Lock()
			jitter := time.Duration((n.maintRand.Float64()*0.2 - 0.1) * float64(interval))
			n.maintMu.Unlock()
			t := time.NewTimer(interval + jitter)
			select {
			case <-done:
				t.Stop()
				return
			case <-t.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			fn(ctx)
			cancel()
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
