package dht

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"kadop/internal/metrics"
)

// maxFrame bounds a single wire frame; posting-list chunks are far
// smaller, so anything beyond this is a protocol error, not data.
const maxFrame = 64 << 20

// maxIdlePerPeer bounds the pooled idle connections kept per remote
// peer; further connections are closed after use.
const maxIdlePerPeer = 4

// TCPTransport carries DHT messages over TCP with length-prefixed
// frames. Calls multiplex over a bounded per-peer connection pool
// (serving several requests per connection); streams hold a dedicated
// connection until the final chunk.
type TCPTransport struct {
	ln        net.Listener
	collector *metrics.Collector
	timeout   time.Duration

	mu      sync.Mutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
	idle    map[string][]*pooledConn
	serving map[net.Conn]struct{}
}

type pooledConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// NewTCPTransport listens on addr (e.g. "127.0.0.1:0"). The collector
// may be nil; a timeout of 0 means 10 seconds per request. A context
// with an earlier deadline overrides the per-request timeout.
func NewTCPTransport(addr string, collector *metrics.Collector, timeout time.Duration) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dht: tcp listen: %w", err)
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &TCPTransport{
		ln:        ln,
		collector: collector,
		timeout:   timeout,
		idle:      map[string][]*pooledConn{},
		serving:   map[net.Conn]struct{}{},
	}, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Metrics exposes the transport's collector so the node layer can
// count robustness events alongside the traffic accounting.
func (t *TCPTransport) Metrics() *metrics.Collector { return t.collector }

// Serve implements Transport.
func (t *TCPTransport) Serve(h Handler) error {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() {
				t.mu.Lock()
				delete(t.serving, conn)
				t.mu.Unlock()
				conn.Close()
			}()
			t.serveConn(conn)
		}()
	}
}

// serveConn serves request frames on one connection until the peer
// hangs up. Stream requests take the connection over: after the final
// chunk the connection closes, matching the client, which dedicates a
// connection per stream.
func (t *TCPTransport) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		req, err := readFrame(br, t.collector)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			writeFrame(conn, Message{Type: MsgError, Err: "not serving"}, t.collector)
			return
		}
		if req.Type == MsgGetStream || (req.Type == MsgApp && isStreamProc(req.Proc)) {
			err := h.HandleStream(req.From, req, func(chunk Message) error {
				return writeFrame(conn, chunk, t.collector)
			})
			end := Message{Type: MsgEnd}
			if err != nil {
				end = Message{Type: MsgError, Err: err.Error()}
			}
			writeFrame(conn, end, t.collector)
			return
		}
		resp := h.HandleCall(req.From, req)
		if err := writeFrame(conn, resp, t.collector); err != nil {
			return
		}
	}
}

// isStreamProc reports whether an application procedure uses streaming
// responses; such procedures carry the "stream:" name prefix.
func isStreamProc(proc string) bool {
	return len(proc) >= 7 && proc[:7] == "stream:"
}

// deadline computes the per-attempt wire deadline: the transport
// timeout, clipped by the context's own deadline when that is earlier.
func (t *TCPTransport) deadline(ctx context.Context) time.Time {
	d := time.Now().Add(t.timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
		d = cd
	}
	return d
}

// getConn returns a pooled idle connection to addr, or dials a new one.
func (t *TCPTransport) getConn(ctx context.Context, addr string) (*pooledConn, error) {
	t.mu.Lock()
	if pool := t.idle[addr]; len(pool) > 0 {
		pc := pool[len(pool)-1]
		t.idle[addr] = pool[:len(pool)-1]
		t.mu.Unlock()
		return pc, nil
	}
	t.mu.Unlock()
	var d net.Dialer
	dctx, cancel := context.WithDeadline(ctx, t.deadline(ctx))
	defer cancel()
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dht: dial %s: %w", addr, err)
	}
	return &pooledConn{conn: conn, br: bufio.NewReader(conn)}, nil
}

// putConn returns a healthy connection to the pool (or closes it when
// the pool is full or the transport shut down).
func (t *TCPTransport) putConn(addr string, pc *pooledConn) {
	// Clear the per-request deadline so an idle connection cannot trip
	// a stale timer on its next use.
	if err := pc.conn.SetDeadline(time.Time{}); err != nil {
		pc.conn.Close()
		return
	}
	t.mu.Lock()
	if t.closed || len(t.idle[addr]) >= maxIdlePerPeer {
		t.mu.Unlock()
		pc.conn.Close()
		return
	}
	t.idle[addr] = append(t.idle[addr], pc)
	t.mu.Unlock()
}

// Call implements Transport.
func (t *TCPTransport) Call(ctx context.Context, to Contact, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, fmt.Errorf("dht: call %s: %w", to.Addr, err)
	}
	pc, err := t.getConn(ctx, to.Addr)
	if err != nil {
		return Message{}, err
	}
	if err := pc.conn.SetDeadline(t.deadline(ctx)); err != nil {
		pc.conn.Close()
		return Message{}, fmt.Errorf("dht: set deadline %s: %w", to.Addr, err)
	}
	if err := writeFrame(pc.conn, req, t.collector); err != nil {
		pc.conn.Close()
		return Message{}, err
	}
	resp, err := readFrame(pc.br, t.collector)
	if err != nil {
		pc.conn.Close()
		return Message{}, err
	}
	// The exchange completed: the connection is healthy regardless of
	// the application-level outcome.
	t.putConn(to.Addr, pc)
	if resp.Type == MsgError {
		return resp, Terminal(fmt.Errorf("dht: remote %s: %s", to.Addr, resp.Err))
	}
	return resp, nil
}

// OpenStream implements Transport. The stream owns its connection,
// which closes with the final chunk (stream connections are not
// pooled).
func (t *TCPTransport) OpenStream(ctx context.Context, to Contact, req Message) (MsgStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dht: stream %s: %w", to.Addr, err)
	}
	pc, err := t.getConn(ctx, to.Addr)
	if err != nil {
		return nil, err
	}
	if err := pc.conn.SetDeadline(t.deadline(ctx)); err != nil {
		pc.conn.Close()
		return nil, fmt.Errorf("dht: set deadline %s: %w", to.Addr, err)
	}
	if err := writeFrame(pc.conn, req, t.collector); err != nil {
		pc.conn.Close()
		return nil, err
	}
	return &tcpStream{conn: pc.conn, br: pc.br, collector: t.collector}, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	idle := t.idle
	t.idle = map[string][]*pooledConn{}
	serving := make([]net.Conn, 0, len(t.serving))
	for c := range t.serving {
		serving = append(serving, c)
	}
	t.mu.Unlock()
	for _, pool := range idle {
		for _, pc := range pool {
			pc.conn.Close()
		}
	}
	// Unblock serveConn goroutines parked in readFrame on idle inbound
	// connections; wg.Wait below would otherwise never return.
	for _, c := range serving {
		c.Close()
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

type tcpStream struct {
	conn      net.Conn
	br        *bufio.Reader
	collector *metrics.Collector
	finished  bool
}

func (s *tcpStream) Recv() (Message, error) {
	if s.finished {
		return Message{}, io.EOF
	}
	m, err := readFrame(s.br, s.collector)
	if err != nil {
		s.finished = true
		s.conn.Close()
		return Message{}, err
	}
	switch m.Type {
	case MsgEnd:
		s.finished = true
		s.conn.Close()
		return Message{}, io.EOF
	case MsgError:
		s.finished = true
		s.conn.Close()
		return Message{}, fmt.Errorf("dht: stream error: %s", m.Err)
	}
	return m, nil
}

func (s *tcpStream) Close() {
	if !s.finished {
		s.finished = true
		s.conn.Close()
	}
}

func writeFrame(w io.Writer, m Message, collector *metrics.Collector) error {
	enc, err := m.Encode()
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(enc)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dht: write frame: %w", err)
	}
	if _, err := w.Write(enc); err != nil {
		return fmt.Errorf("dht: write frame: %w", err)
	}
	collector.Count(m.Class(), len(enc))
	return nil
}

func readFrame(r io.Reader, collector *metrics.Collector) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, fmt.Errorf("dht: read frame: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("dht: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Message{}, fmt.Errorf("dht: read frame body: %w", err)
	}
	m, err := DecodeMessage(buf)
	if err != nil {
		return Message{}, err
	}
	// The receiver does not double-count: the sender charged the bytes.
	_ = collector
	return m, nil
}
