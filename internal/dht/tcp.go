package dht

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"kadop/internal/metrics"
)

// maxFrame bounds a single wire frame; posting-list chunks are far
// smaller, so anything beyond this is a protocol error, not data.
const maxFrame = 64 << 20

// TCPTransport carries DHT messages over TCP with length-prefixed
// frames. Each Call opens one connection (simple and adequate for the
// deployment sizes KadoP targets); streams hold their connection until
// the final chunk.
type TCPTransport struct {
	ln        net.Listener
	collector *metrics.Collector
	timeout   time.Duration

	mu      sync.Mutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
}

// NewTCPTransport listens on addr (e.g. "127.0.0.1:0"). The collector
// may be nil; a timeout of 0 means 10 seconds per request.
func NewTCPTransport(addr string, collector *metrics.Collector, timeout time.Duration) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dht: tcp listen: %w", err)
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &TCPTransport{ln: ln, collector: collector, timeout: timeout}, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Serve implements Transport.
func (t *TCPTransport) Serve(h Handler) error {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			t.serveConn(conn)
		}()
	}
}

func (t *TCPTransport) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	req, err := readFrame(br, t.collector)
	if err != nil {
		return
	}
	t.mu.Lock()
	h := t.handler
	t.mu.Unlock()
	if h == nil {
		writeFrame(conn, Message{Type: MsgError, Err: "not serving"}, t.collector)
		return
	}
	if req.Type == MsgGetStream || (req.Type == MsgApp && isStreamProc(req.Proc)) {
		err := h.HandleStream(req.From, req, func(chunk Message) error {
			return writeFrame(conn, chunk, t.collector)
		})
		end := Message{Type: MsgEnd}
		if err != nil {
			end = Message{Type: MsgError, Err: err.Error()}
		}
		writeFrame(conn, end, t.collector)
		return
	}
	resp := h.HandleCall(req.From, req)
	writeFrame(conn, resp, t.collector)
}

// isStreamProc reports whether an application procedure uses streaming
// responses; such procedures carry the "stream:" name prefix.
func isStreamProc(proc string) bool {
	return len(proc) >= 7 && proc[:7] == "stream:"
}

// Call implements Transport.
func (t *TCPTransport) Call(to Contact, req Message) (Message, error) {
	conn, err := net.DialTimeout("tcp", to.Addr, t.timeout)
	if err != nil {
		return Message{}, fmt.Errorf("dht: dial %s: %w", to.Addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(t.timeout))
	if err := writeFrame(conn, req, t.collector); err != nil {
		return Message{}, err
	}
	resp, err := readFrame(bufio.NewReader(conn), t.collector)
	if err != nil {
		return Message{}, err
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("dht: remote %s: %s", to.Addr, resp.Err)
	}
	return resp, nil
}

// OpenStream implements Transport.
func (t *TCPTransport) OpenStream(to Contact, req Message) (MsgStream, error) {
	conn, err := net.DialTimeout("tcp", to.Addr, t.timeout)
	if err != nil {
		return nil, fmt.Errorf("dht: dial %s: %w", to.Addr, err)
	}
	conn.SetDeadline(time.Now().Add(t.timeout))
	if err := writeFrame(conn, req, t.collector); err != nil {
		conn.Close()
		return nil, err
	}
	return &tcpStream{conn: conn, br: bufio.NewReader(conn), collector: t.collector}, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

type tcpStream struct {
	conn      net.Conn
	br        *bufio.Reader
	collector *metrics.Collector
	finished  bool
}

func (s *tcpStream) Recv() (Message, error) {
	if s.finished {
		return Message{}, io.EOF
	}
	m, err := readFrame(s.br, s.collector)
	if err != nil {
		s.finished = true
		s.conn.Close()
		return Message{}, err
	}
	switch m.Type {
	case MsgEnd:
		s.finished = true
		s.conn.Close()
		return Message{}, io.EOF
	case MsgError:
		s.finished = true
		s.conn.Close()
		return Message{}, fmt.Errorf("dht: stream error: %s", m.Err)
	}
	return m, nil
}

func (s *tcpStream) Close() {
	if !s.finished {
		s.finished = true
		s.conn.Close()
	}
}

func writeFrame(w io.Writer, m Message, collector *metrics.Collector) error {
	enc, err := m.Encode()
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(enc)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dht: write frame: %w", err)
	}
	if _, err := w.Write(enc); err != nil {
		return fmt.Errorf("dht: write frame: %w", err)
	}
	collector.Count(m.Class(), len(enc))
	return nil
}

func readFrame(r io.Reader, collector *metrics.Collector) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, fmt.Errorf("dht: read frame: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("dht: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Message{}, fmt.Errorf("dht: read frame body: %w", err)
	}
	m, err := DecodeMessage(buf)
	if err != nil {
		return Message{}, err
	}
	// The receiver does not double-count: the sender charged the bytes.
	_ = collector
	return m, nil
}
