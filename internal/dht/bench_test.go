package dht

import (
	"fmt"
	"math/rand"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/store"
)

func benchNetwork(b *testing.B, n int) []*Node {
	b.Helper()
	net := NewNetwork()
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := NewNode(net.NewEndpoint(), store.NewMem(), Config{})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = nd
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			b.Fatal(err)
		}
	}
	for _, nd := range nodes {
		nd.Lookup(nd.Self().ID)
	}
	return nodes
}

func BenchmarkLookup50Peers(b *testing.B) {
	nodes := benchNetwork(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[i%len(nodes)].Lookup(KeyID(fmt.Sprintf("l:t%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendThroughRouting(b *testing.B) {
	nodes := benchNetwork(b, 20)
	l := randomPostings(rand.New(rand.NewSource(1)), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[i%len(nodes)].Append(fmt.Sprintf("l:t%d", i%16), l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinedGet(b *testing.B) {
	nodes := benchNetwork(b, 12)
	l := randomPostings(rand.New(rand.NewSource(2)), 10000)
	if err := nodes[0].Append("l:big", l); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := nodes[1+i%10].GetStream("l:big")
		if err != nil {
			b.Fatal(err)
		}
		got, err := postings.Drain(s)
		if err != nil || len(got) != len(l) {
			b.Fatalf("drained %d (%v)", len(got), err)
		}
	}
}
