package dht

// Chaos tests: the fault-injection harness drives the simulated
// network with seeded message loss, duplication and node kills, and the
// tests assert the robustness layer's contract — an acknowledged append
// is never lost while at least one replica of each key survives and
// repair runs between failures, and every operation either completes or
// fails within its deadline.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/postings"
	"kadop/internal/store"
)

// chaosConfig is the node configuration the chaos tests run under:
// replicated keys and aggressive, fast retries.
func chaosConfig() Config {
	return Config{
		Replication: 2,
		Retry: RetryPolicy{
			Attempts:    6,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
		},
		RPCTimeout: 2 * time.Second,
	}
}

// buildChaosNetwork is buildNetwork with an explicit node config.
func buildChaosNetwork(t testing.TB, net *Network, n int, cfg Config) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(net.NewEndpoint(), store.NewMem(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatalf("bootstrap node %d: %v", i, err)
		}
	}
	for _, nd := range nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// repairAll runs one repair pass on every surviving node.
func repairAll(t testing.TB, nodes []*Node, dead map[int]bool) {
	t.Helper()
	for i, nd := range nodes {
		if dead[i] {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err := nd.RepairOnce(ctx)
		cancel()
		if err != nil {
			// Individual digests may fail under injected loss; the pass
			// reports the first error but keeps repairing. Only a context
			// expiry is fatal here.
			if ctx.Err() != nil {
				t.Fatalf("repair on node %d ran out of budget: %v", i, err)
			}
		}
	}
}

// TestChaosAckedPostingsSurviveKills is the headline soak: under 20%
// message loss and 10% duplication, every append acknowledged before a
// node kill is still retrievable after three staggered kills with a
// repair pass between them, and the run leaks no goroutines.
func TestChaosAckedPostingsSurviveKills(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	net := NewNetwork()
	nodes := buildChaosNetwork(t, net, 9, chaosConfig())
	net.SetFaults(Faults{Seed: 42, DropProb: 0.20, DupProb: 0.10})

	rng := rand.New(rand.NewSource(7))
	acked := map[string]postings.List{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("l:term%d", i)
		l := randomPostings(rng, 25)
		via := i % len(nodes)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := nodes[via].AppendContext(ctx, key, l)
		cancel()
		if err != nil {
			t.Fatalf("append %q via node %d not acknowledged: %v", key, via, err)
		}
		acked[key] = l
	}

	// Kill three nodes one at a time with a repair pass between kills:
	// the pass restores the replication factor, so no key ever has both
	// of its copies on dead peers.
	dead := map[int]bool{}
	for _, victim := range []int{2, 5, 7} {
		if err := nodes[victim].Close(); err != nil {
			t.Fatal(err)
		}
		dead[victim] = true
		repairAll(t, nodes, dead)
	}

	// Every acknowledged posting is still retrievable, through the
	// still-faulty network, under an explicit deadline.
	for key, want := range acked {
		reader := 0
		for dead[reader] {
			reader++
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, err := nodes[reader].GetContext(ctx, key)
		cancel()
		if err != nil {
			t.Fatalf("get %q after kills: %v", key, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("get %q after kills: %d postings, want %d (acked data lost)", key, len(got), len(want))
		}
	}

	// The retry/eviction/repair machinery left its footprints.
	if net.Collector.Events(metrics.EventRetry) == 0 {
		t.Error("no retries counted under 20% drop")
	}
	if net.Collector.Events(metrics.EventRepair) == 0 {
		t.Error("no repair pushes counted after kills")
	}

	// Shut everything down and bound the goroutine count: abandoned
	// exchanges and stream pumps must all terminate.
	net.SetFaults(Faults{})
	for i, nd := range nodes {
		if !dead[i] {
			if err := nd.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosCallsRespectDeadlines pins the never-hang half of the
// contract: against a slow peer, calls finish within the caller's
// budget (with a timeout error), not the peer's schedule.
func TestChaosCallsRespectDeadlines(t *testing.T) {
	net := NewNetwork()
	cfg := chaosConfig()
	cfg.Retry = RetryPolicy{} // single attempt: measure the deadline, not the retries
	nodes := buildChaosNetwork(t, net, 4, cfg)
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	// nodes[1] answers every message 300ms late; the caller budgets 50ms.
	net.SetSlow(nodes[1].Self().Addr, 300*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := nodes[0].call(ctx, nodes[1].Self(), Message{Type: MsgPing, From: nodes[0].Self()})
	if err == nil {
		t.Fatal("call to a slow peer inside a 50ms budget should fail")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("call overshot its deadline: took %v", elapsed)
	}
	net.SetSlow(nodes[1].Self().Addr, 0)

	// With the slowness lifted the same call succeeds again.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := nodes[0].call(ctx2, nodes[1].Self(), Message{Type: MsgPing, From: nodes[0].Self()}); err != nil {
		t.Fatalf("call after restoring the peer: %v", err)
	}
}

// TestChaosDuplicatedAppendsStayIdempotent forces heavy duplication and
// checks that the stores keep lists exact (at-least-once delivery is
// safe end to end).
func TestChaosDuplicatedAppendsStayIdempotent(t *testing.T) {
	net := NewNetwork()
	nodes := buildChaosNetwork(t, net, 5, chaosConfig())
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	net.SetFaults(Faults{Seed: 11, DupProb: 0.9})

	rng := rand.New(rand.NewSource(3))
	want := randomPostings(rng, 200)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Append in two overlapping halves so retries and duplicates overlap
	// existing ranges.
	mid := len(want) / 2
	if err := nodes[1].AppendContext(ctx, "l:dup", want[:mid+10]); err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].AppendContext(ctx, "l:dup", want[mid-10:]); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[3].GetContext(ctx, "l:dup")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("duplicated appends corrupted the list: %d postings, want %d", len(got), len(want))
	}
}
