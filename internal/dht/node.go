package dht

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/obs/flight"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/trace"
)

// Config holds the overlay parameters.
type Config struct {
	// K is the bucket size and lookup width (default 8).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// Replication is how many closest peers hold each key (default 1;
	// the experiments use 1 unless fault tolerance is under test).
	Replication int
	// ChunkSize is the number of postings per stream chunk of the
	// pipelined get (default 512).
	ChunkSize int
	// Client makes the node an observer: it can look up, fetch and call,
	// but never advertises itself, so it joins no routing table and owns
	// no keys. Ephemeral query clients use it — a short-lived full peer
	// would take ownership of keys and poison the overlay when it exits
	// (the paper's low-volatility assumption).
	Client bool
	// Retry governs re-attempts of failed RPCs (zero value: a single
	// attempt, the seed behaviour). Store appends are idempotent, so
	// at-least-once delivery under retry is safe.
	Retry RetryPolicy
	// RPCTimeout bounds each RPC attempt (default 10s). The caller's
	// context deadline still caps the total budget across attempts.
	RPCTimeout time.Duration
	// RepairInterval, when positive, starts the replica-repair loop
	// (the republisher): every interval, ±10% seeded jitter, the node
	// re-checks that each key it holds is present on all Replication
	// owners and re-pushes missing copies, keeping every replica set
	// at full strength despite silent failures and ownership drift.
	RepairInterval time.Duration
	// RefreshInterval, when positive, starts the bucket-refresh loop:
	// every interval, ±10% seeded jitter, buckets no lookup targeted
	// for a full interval are refreshed with a random-identifier
	// lookup, so routing state does not decay on quiet overlays.
	RefreshInterval time.Duration
	// ProbeTimeout, when positive, enables probe-on-suspicion failure
	// detection: a contact that fails an RPC after retries is pinged
	// once (bounded by this timeout) before being evicted, so one
	// dropped message does not cost a live peer its table slot. Zero
	// keeps the seed behaviour: evict immediately on failure.
	ProbeTimeout time.Duration
	// Seed drives the retry jitter RNG (default 1), so seeded chaos
	// runs get reproducible backoff schedules.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 512
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ProcHandler serves one application-level procedure (registered by the
// KadoP layer on top of the DHT). The context carries the calling
// query's trace span (when the caller was traced), so handlers that
// issue further DHT calls keep the remote work attributed to the
// originating query.
type ProcHandler func(ctx context.Context, from Contact, key string, blob []byte) ([]byte, error)

// StreamProcHandler serves one streaming application procedure; it
// sends posting batches through send. The context carries the calling
// query's trace span, as for ProcHandler.
type StreamProcHandler func(ctx context.Context, from Contact, key string, blob []byte, send func(postings.List) error) error

// Node is one DHT peer: routing table, local store, and the wire
// handlers for the DHT interface (plus registered application
// procedures).
type Node struct {
	self      Contact
	cfg       Config
	table     *Table
	store     store.Store
	tr        Transport
	collector *metrics.Collector
	load      *metrics.Load
	reg       *metrics.Registry
	rng       *retryRNG
	tracer    atomic.Pointer[trace.Tracer]
	flight    atomic.Pointer[flight.Recorder]

	// gate is the optional read-admission controller (see SetShedGate);
	// gauges remembers the last piggybacked load advertisement per
	// remote peer, feeding power-of-two-choices replica selection.
	gate   atomic.Pointer[ShedGate]
	gauges gaugeCache

	mu          sync.RWMutex
	procs       map[string]ProcHandler
	streamProcs map[string]StreamProcHandler

	repairMu    sync.Mutex
	stopRepair  func()
	stopRefresh func()

	// probing tracks contacts with an outstanding liveness probe so a
	// burst of failures against one peer spawns a single probe.
	probeMu sync.Mutex
	probing map[ID]bool

	// maintRand drives maintenance randomness (loop jitter, refresh
	// lookup targets); seeded so chaos runs stay reproducible.
	maintMu   sync.Mutex
	maintRand *rand.Rand
}

// NewNode creates a peer over the given transport and local store, and
// starts serving. The node's identifier derives from the transport
// address.
func NewNode(tr Transport, st store.Store, cfg Config) (*Node, error) {
	n := &Node{
		self:        Contact{ID: PeerIDFromSeed(tr.Addr()), Addr: tr.Addr()},
		cfg:         cfg.withDefaults(),
		tr:          tr,
		load:        metrics.NewLoad(metrics.DefaultHotTerms),
		reg:         metrics.NewRegistry(),
		procs:       map[string]ProcHandler{},
		streamProcs: map[string]StreamProcHandler{},
	}
	// Every store operation — replicated appends, repair pushes, posting
	// streams, DPP block serves — accrues to this node's per-peer load
	// ledger. The simulated network shares one Collector across all
	// peers, so the per-node Load is what makes skew observable there.
	n.store = store.Instrument(st, n.load)
	n.rng = newRetryRNG(n.cfg.Seed)
	// Robustness events land in the transport's collector, next to the
	// traffic they explain.
	if m, ok := tr.(interface{ Metrics() *metrics.Collector }); ok {
		n.collector = m.Metrics()
	}
	n.maintRand = rand.New(rand.NewSource(n.cfg.Seed + 0x5eed))
	n.probing = map[ID]bool{}
	n.table = NewTable(n.self.ID, n.cfg.K)
	if err := tr.Serve(n); err != nil {
		return nil, err
	}
	if !n.cfg.Client {
		if n.cfg.RepairInterval > 0 {
			n.stopRepair = n.StartRepair(n.cfg.RepairInterval)
		}
		if n.cfg.RefreshInterval > 0 {
			n.stopRefresh = n.StartRefresh(n.cfg.RefreshInterval)
		}
	}
	return n, nil
}

// Self returns this peer's contact record.
func (n *Node) Self() Contact { return n.self }

// from is the sender contact stamped on outgoing requests; client nodes
// send an anonymous contact so receivers do not record them.
func (n *Node) from() Contact {
	if n.cfg.Client {
		return Contact{}
	}
	return n.self
}

// Store exposes the local index store (used by the KadoP layer for
// local index organisation such as DPP blocks).
func (n *Node) Store() store.Store { return n.store }

// quietStore returns the store without its load instrumentation, for
// maintenance reads (replication pushes) that must not register as
// serving demand in the hot-term sketch.
func (n *Node) quietStore() store.Store {
	if u, ok := n.store.(*store.Instrumented); ok {
		return u.Unwrap()
	}
	return n.store
}

// storeReader is the read slice of store.Store, satisfied by both the
// store and a store.Snapshot.
type storeReader interface {
	Get(term string) (postings.List, error)
	Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error
	Count(term string) (int, error)
	Terms() ([]string, error)
}

// readView pins a snapshot of the local store for one serving read, so
// handlers answer queries without blocking behind the writer lock and
// without ever observing a half-applied publish batch. Stores without
// snapshot support fall back to direct reads. The caller must invoke
// the returned release func when done.
func (n *Node) readView() (storeReader, func()) {
	if snap := store.SnapshotOf(n.store); snap != nil {
		return snap, func() { snap.Close() }
	}
	return n.store, func() {}
}

// Metrics exposes the node's collector (the transport's, when the
// transport accounts traffic). May be nil; the collector's methods are
// nil-safe.
func (n *Node) Metrics() *metrics.Collector { return n.collector }

// Load exposes this node's per-peer load ledger: bytes/postings/blocks
// served, appends absorbed, and the hot-term sketch.
func (n *Node) Load() *metrics.Load { return n.load }

// Registry exposes this node's labeled metric registry (per-peer RPC
// counters, plus anything higher layers register).
func (n *Node) Registry() *metrics.Registry { return n.reg }

// SetTracer installs a tracer: queries from this node start traces, and
// requests arriving with trace ids get server-side spans recorded in
// the tracer's ring. A nil tracer (the default) disables tracing.
func (n *Node) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (n *Node) Tracer() *trace.Tracer { return n.tracer.Load() }

// SetFlight installs a flight recorder: every outgoing RPC and
// robustness event this node counts also drops an annotated entry into
// the ring, so a dump reconstructs what the node was doing right
// before an incident. A nil recorder (the default) disables recording.
func (n *Node) SetFlight(r *flight.Recorder) { n.flight.Store(r) }

// Flight returns the installed flight recorder, or nil.
func (n *Node) Flight() *flight.Recorder { return n.flight.Load() }

// Table exposes the routing table (for diagnostics).
func (n *Node) Table() *Table { return n.table }

// Handle registers an application procedure.
func (n *Node) Handle(proc string, h ProcHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.procs[proc] = h
}

// HandleStreamProc registers a streaming application procedure. By
// convention stream procedure names begin with "stream:".
func (n *Node) HandleStreamProc(proc string, h StreamProcHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.streamProcs[proc] = h
}

// call is the retrying RPC primitive every outgoing request funnels
// through: each attempt is bounded by RPCTimeout, transport failures
// retry under the policy, and a contact that stays unreachable is
// evicted from the routing table (the replacement cache refills the
// bucket).
func (n *Node) call(ctx context.Context, to Contact, req Message) (Message, error) {
	parent := trace.FromContext(ctx)
	if parent != nil {
		req.TraceID, req.SpanID = trace.ID(ctx)
	}
	start := time.Now()
	var resp Message
	err := withRetry(ctx, n.cfg.Retry, n.collector, n.rng, func() error {
		actx, cancel := context.WithTimeout(ctx, n.cfg.RPCTimeout)
		defer cancel()
		var cerr error
		resp, cerr = n.tr.Call(actx, to, req)
		if cerr != nil && actx.Err() != nil && ctx.Err() == nil {
			// The attempt timed out but the caller's budget remains: count
			// the timeout and report a retryable error (not a context one,
			// which would end the retry loop).
			n.collector.CountEvent(metrics.EventTimeout)
			return fmt.Errorf("dht: call %s: attempt timed out: %v", to.Addr, cerr)
		}
		return cerr
	})
	if err != nil && Retryable(err) && !to.ID.IsZero() {
		n.noteFailure(to)
	}
	// Even an error response (a shed read, say) carries the responder's
	// load gauge — that rejection is exactly when selection needs it.
	n.noteGauge(to.Addr, resp)
	dur := time.Since(start)
	n.collector.Observe(rpcOp(req.Type), dur)
	n.countPeerRPC(rpcOp(req.Type), to, err)
	n.flightRPC(rpcOp(req.Type), to, req.TraceID, dur, err)
	if parent != nil {
		sp := parent.Child(rpcOp(req.Type), start, dur)
		sp.SetAttr("peer", to.Addr)
		if req.Proc != "" {
			sp.SetAttr("proc", req.Proc)
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	return resp, err
}

// flightRPC records one completed outgoing RPC in the flight ring
// (retries folded in, like the latency observation beside it).
func (n *Node) flightRPC(op string, to Contact, traceID uint64, dur time.Duration, err error) {
	fr := n.flight.Load()
	if fr == nil {
		return
	}
	e := flight.Event{Kind: flight.KindRPC, Name: op, Peer: to.Addr, TraceID: traceID, Dur: dur}
	if err != nil {
		e.Err = err.Error()
	}
	fr.Record(e)
}

// countPeerRPC records one outgoing RPC (and its failure, if any) in
// the labeled registry, keyed by operation and remote peer — the
// per-peer breakdown the shared Collector's traffic classes cannot
// express.
func (n *Node) countPeerRPC(op string, to Contact, err error) {
	n.reg.Counter("kadop_rpc_client_total",
		"Outgoing RPCs by operation and remote peer (retried calls count once).",
		metrics.Label{Key: "op", Value: op},
		metrics.Label{Key: "peer", Value: to.Addr}).Add(1)
	if err != nil {
		n.reg.Counter("kadop_rpc_client_errors_total",
			"Outgoing RPCs that failed after retries, by operation and remote peer.",
			metrics.Label{Key: "op", Value: op},
			metrics.Label{Key: "peer", Value: to.Addr}).Add(1)
	}
}

// openStream opens a message stream with the same retry/eviction
// policy as call (retries apply to the stream opening only; an error
// mid-stream surfaces to the consumer).
func (n *Node) openStream(ctx context.Context, to Contact, req Message) (MsgStream, error) {
	return n.openStreamPolicy(ctx, to, req, n.cfg.Retry)
}

// openStreamPolicy is openStream under an explicit retry policy, so
// callers that rotate replicas themselves (the DPP block fetch) can
// probe each candidate once instead of burning the full retry budget
// on a stale one.
func (n *Node) openStreamPolicy(ctx context.Context, to Contact, req Message, retry RetryPolicy) (MsgStream, error) {
	parent := trace.FromContext(ctx)
	if parent != nil {
		req.TraceID, req.SpanID = trace.ID(ctx)
	}
	start := time.Now()
	var ms MsgStream
	err := withRetry(ctx, retry, n.collector, n.rng, func() error {
		actx, cancel := context.WithTimeout(ctx, n.cfg.RPCTimeout)
		defer cancel()
		var cerr error
		ms, cerr = n.tr.OpenStream(actx, to, req)
		if cerr != nil && actx.Err() != nil && ctx.Err() == nil {
			n.collector.CountEvent(metrics.EventTimeout)
			return fmt.Errorf("dht: stream %s: attempt timed out: %v", to.Addr, cerr)
		}
		return cerr
	})
	if err != nil && Retryable(err) && !to.ID.IsZero() {
		n.noteFailure(to)
	}
	dur := time.Since(start)
	n.collector.Observe(rpcOp(req.Type), dur)
	n.countPeerRPC(rpcOp(req.Type), to, err)
	n.flightRPC(rpcOp(req.Type), to, req.TraceID, dur, err)
	if parent != nil {
		sp := parent.Child("stream-open:"+req.Type.String(), start, dur)
		sp.SetAttr("peer", to.Addr)
		if req.Proc != "" {
			sp.SetAttr("proc", req.Proc)
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	return ms, err
}

// Bootstrap joins the overlay through the given contacts: it seeds the
// routing table and performs a lookup of the node's own identifier,
// which populates buckets along the path (the standard Kademlia join).
func (n *Node) Bootstrap(seeds ...Contact) error {
	return n.BootstrapContext(context.Background(), seeds...)
}

// BootstrapContext is Bootstrap under a caller-controlled deadline.
func (n *Node) BootstrapContext(ctx context.Context, seeds ...Contact) error {
	for _, c := range seeds {
		if c.ID.IsZero() {
			c.ID = PeerIDFromSeed(c.Addr)
		}
		n.table.Update(c)
	}
	_, err := n.LookupContext(ctx, n.self.ID)
	return err
}

// Lookup performs an iterative Kademlia lookup and returns up to K
// contacts closest to target (including, possibly, this node).
func (n *Node) Lookup(target ID) ([]Contact, error) {
	return n.LookupContext(context.Background(), target)
}

// LookupContext is Lookup under a caller-controlled deadline. Failed
// contacts are evicted and dropped from the shortlist; the lookup
// fails only when the deadline expires or no peer is reachable.
func (n *Node) LookupContext(ctx context.Context, target ID) ([]Contact, error) {
	start := time.Now()
	n.table.Touch(target)
	ctx, sp := trace.StartSpan(ctx, "dht:lookup")
	rounds := 0
	cs, err := n.lookupRun(ctx, target, &rounds)
	n.collector.Observe(metrics.OpLookup, time.Since(start))
	if sp != nil {
		sp.SetInt("rounds", int64(rounds))
		sp.SetInt("contacts", int64(len(cs)))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.Finish()
	}
	return cs, err
}

// lookupRun is the iterative Kademlia lookup; rounds reports how many
// α-parallel query rounds it took.
func (n *Node) lookupRun(ctx context.Context, target ID, rounds *int) ([]Contact, error) {
	type entry struct {
		c       Contact
		queried bool
	}
	shortlist := map[ID]*entry{}
	if !n.cfg.Client {
		shortlist[n.self.ID] = &entry{c: n.self, queried: true}
	}
	for _, c := range n.table.Closest(target, n.cfg.K) {
		shortlist[c.ID] = &entry{c: c}
	}
	closestOf := func() []Contact {
		out := make([]Contact, 0, len(shortlist))
		for _, e := range shortlist {
			out = append(out, e.c)
		}
		sort.Slice(out, func(i, j int) bool {
			return out[i].ID.XOR(target).Less(out[j].ID.XOR(target))
		})
		if len(out) > n.cfg.K {
			out = out[:n.cfg.K]
		}
		return out
	}

	for {
		if err := ctx.Err(); err != nil {
			n.collector.CountEvent(metrics.EventTimeout)
			return nil, fmt.Errorf("dht: lookup: %w", err)
		}
		// Pick up to Alpha unqueried contacts among the current closest.
		var batch []Contact
		for _, c := range closestOf() {
			e := shortlist[c.ID]
			if !e.queried {
				batch = append(batch, c)
				if len(batch) == n.cfg.Alpha {
					break
				}
			}
		}
		if len(batch) == 0 {
			return closestOf(), nil
		}
		*rounds++
		type result struct {
			from     Contact
			contacts []Contact
			err      error
		}
		results := make(chan result, len(batch))
		for _, c := range batch {
			shortlist[c.ID].queried = true
			go func(c Contact) {
				resp, err := n.call(ctx, c, Message{Type: MsgFindNode, From: n.from(), Target: target})
				results <- result{from: c, contacts: resp.Contacts, err: err}
			}(c)
		}
		for range batch {
			r := <-results
			if r.err != nil {
				// call handed the contact to the failure detector (or
				// evicted it outright); the lookup drops it either way.
				delete(shortlist, r.from.ID)
				continue
			}
			n.table.Update(r.from)
			for _, c := range r.contacts {
				if _, ok := shortlist[c.ID]; !ok {
					shortlist[c.ID] = &entry{c: c}
				}
				n.table.Update(c)
			}
		}
	}
}

// Locate returns the peer in charge of an application key (the closest
// peer to the key's identifier), implementing the DHT interface's
// locate(k).
func (n *Node) Locate(key string) (Contact, error) {
	return n.LocateContext(context.Background(), key)
}

// LocateContext is Locate under a caller-controlled deadline.
func (n *Node) LocateContext(ctx context.Context, key string) (Contact, error) {
	cs, err := n.LookupContext(ctx, KeyID(key))
	if err != nil {
		return Contact{}, err
	}
	if len(cs) == 0 {
		return Contact{}, fmt.Errorf("dht: locate %q: no peers known", key)
	}
	return cs[0], nil
}

// Owners returns the Replication closest peers to the key — the
// replica set reads and writes address.
func (n *Node) Owners(key string) ([]Contact, error) {
	return n.OwnersContext(context.Background(), key)
}

// OwnersContext is Owners under a caller-controlled deadline.
func (n *Node) OwnersContext(ctx context.Context, key string) ([]Contact, error) {
	cs, err := n.LookupContext(ctx, KeyID(key))
	if err != nil {
		return nil, err
	}
	if len(cs) == 0 {
		return nil, fmt.Errorf("dht: no peers for key %q", key)
	}
	if len(cs) > n.cfg.Replication {
		cs = cs[:n.cfg.Replication]
	}
	return cs, nil
}

// Append adds postings to the key's list on its owner peers — the
// linear-cost indexing operation of Section 3.
func (n *Node) Append(key string, ps postings.List) error {
	return n.AppendContext(context.Background(), key, ps)
}

// AppendContext is Append under a caller-controlled deadline. An
// acknowledged append reached every replica owner; store-side
// deduplication makes the retried delivery idempotent.
func (n *Node) AppendContext(ctx context.Context, key string, ps postings.List) error {
	start := time.Now()
	defer func() { n.collector.Observe(metrics.OpAppend, time.Since(start)) }()
	ctx, sp := trace.StartSpan(ctx, "dht:append")
	if sp != nil {
		sp.SetAttr("key", key)
		sp.SetInt("postings", int64(len(ps)))
		defer sp.Finish()
	}
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if o.ID == n.self.ID {
			if err := n.store.Append(key, ps); err != nil {
				return err
			}
			continue
		}
		sorted := ps.Clone()
		sorted.Sort()
		if _, err := n.call(ctx, o, Message{Type: MsgAppend, From: n.from(), Key: key, Postings: sorted}); err != nil {
			return fmt.Errorf("dht: append %q to %s: %w", key, o.Addr, err)
		}
	}
	return nil
}

// AppendAt adds postings to a key's list on one specific peer,
// bypassing the owner lookup. The DPP layer uses it for overflow
// blocks, whose placement the root block records explicitly (the
// paper's pointer function); DHT replication deliberately does not
// apply to such blocks (Section 4.2 notes the DHT's fixed replication
// does not fit the DPP's needs).
func (n *Node) AppendAt(to Contact, key string, ps postings.List) error {
	return n.AppendAtContext(context.Background(), to, key, ps)
}

// AppendAtContext is AppendAt under a caller-controlled deadline.
func (n *Node) AppendAtContext(ctx context.Context, to Contact, key string, ps postings.List) error {
	if to.ID == n.self.ID {
		return n.store.Append(key, ps)
	}
	sorted := ps.Clone()
	sorted.Sort()
	_, err := n.call(ctx, to, Message{Type: MsgAppend, From: n.from(), Key: key, Postings: sorted})
	return err
}

// Get retrieves the key's full posting list — the blocking get of the
// standard DHT API.
func (n *Node) Get(key string) (postings.List, error) {
	return n.GetContext(context.Background(), key)
}

// GetContext is Get under a caller-controlled deadline. With
// Replication > 1 every reachable owner is consulted and the copies
// are merged, so the read survives the loss of all but one replica
// (and heals divergent copies at the reader).
func (n *Node) GetContext(ctx context.Context, key string) (postings.List, error) {
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return nil, err
	}
	var (
		merged   postings.List
		firstErr error
		okCount  int
	)
	for _, o := range owners {
		var l postings.List
		if o.ID == n.self.ID {
			var view storeReader
			var release func()
			view, release = n.readView()
			l, err = view.Get(key)
			release()
		} else {
			var resp Message
			resp, err = n.call(ctx, o, Message{Type: MsgGet, From: n.from(), Key: key})
			l = resp.Postings
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
		if okCount == 1 {
			merged = l
		} else {
			merged = postings.MergeUnique(merged, l)
		}
	}
	if okCount == 0 {
		return nil, firstErr
	}
	return merged, nil
}

// GetStream retrieves the key's posting list as a pipelined stream —
// the paper's pipelined get. The returned stream delivers postings in
// canonical order while the transfer is still in progress.
func (n *Node) GetStream(key string) (postings.Stream, error) {
	return n.GetStreamContext(context.Background(), key)
}

// GetStreamContext is GetStream under a caller-controlled deadline.
// With Replication > 1 the owners are ranked by a digest exchange
// (most postings first) and the stream fails over to the next replica
// when opening fails, so a dead or stale primary does not break the
// pipelined read.
func (n *Node) GetStreamContext(ctx context.Context, key string) (postings.Stream, error) {
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return nil, err
	}
	if len(owners) > 1 {
		owners = n.rankOwners(ctx, owners, key)
	}
	var firstErr error
	for _, o := range owners {
		s, err := n.StreamFromContext(ctx, o, Message{Type: MsgGetStream, From: n.from(), Key: key})
		if err == nil {
			return s, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// rankOwners orders a replica set for reading: reachable owners first,
// by descending posting count (the freshest copy wins), preserving
// XOR-closeness order among ties.
func (n *Node) rankOwners(ctx context.Context, owners []Contact, key string) []Contact {
	type ranked struct {
		c     Contact
		count int
		ok    bool
	}
	rs := make([]ranked, len(owners))
	for i, o := range owners {
		rs[i] = ranked{c: o}
		if o.ID == n.self.ID {
			if c, err := n.store.Count(key); err == nil {
				rs[i].count, rs[i].ok = c, true
			}
			continue
		}
		if c, err := n.digestOf(ctx, o, key); err == nil {
			rs[i].count, rs[i].ok = c, true
		}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].ok != rs[j].ok {
			return rs[i].ok
		}
		return rs[i].count > rs[j].count
	})
	out := make([]Contact, len(rs))
	for i, r := range rs {
		out[i] = r.c
	}
	return out
}

// digestOf asks one peer how many postings it holds for key.
func (n *Node) digestOf(ctx context.Context, to Contact, key string) (int, error) {
	resp, err := n.call(ctx, to, Message{Type: MsgDigest, From: n.from(), Key: key})
	if err != nil {
		return 0, err
	}
	v, nn := binary.Uvarint(resp.Blob)
	if nn <= 0 {
		return 0, fmt.Errorf("dht: digest of %q from %s: bad count", key, to.Addr)
	}
	return int(v), nil
}

// StreamFrom opens a posting stream for an arbitrary request against a
// specific peer (used by the DPP layer to fetch blocks).
func (n *Node) StreamFrom(owner Contact, req Message) (postings.Stream, error) {
	return n.StreamFromContext(context.Background(), owner, req)
}

// StreamFromContext is StreamFrom under a caller-controlled deadline.
func (n *Node) StreamFromContext(ctx context.Context, owner Contact, req Message) (postings.Stream, error) {
	return n.streamFromPolicy(ctx, owner, req, n.cfg.Retry)
}

// StreamFromOnceContext is StreamFromContext with a single connection
// attempt: callers that hold their own list of candidate replicas probe
// each once and rotate, instead of spending the configured retry budget
// on a candidate that may simply be stale.
func (n *Node) StreamFromOnceContext(ctx context.Context, owner Contact, req Message) (postings.Stream, error) {
	return n.streamFromPolicy(ctx, owner, req, RetryPolicy{Attempts: 1})
}

func (n *Node) streamFromPolicy(ctx context.Context, owner Contact, req Message, retry RetryPolicy) (postings.Stream, error) {
	if owner.ID == n.self.ID {
		// Local fast path: serve from the store through a pipe so the
		// consumer sees the same streaming behaviour (the trace ids are
		// stamped so HandleStream attributes the work as usual).
		req.TraceID, req.SpanID = trace.ID(ctx)
		pipe := postings.NewPipe(n.cfg.ChunkSize * 2)
		go func() {
			err := n.HandleStream(n.self, req, func(chunk Message) error {
				if !pipe.Send(chunk.Postings) {
					return fmt.Errorf("dht: local stream consumer closed")
				}
				return nil
			})
			pipe.Close(err)
		}()
		return pipe, nil
	}
	ms, err := n.openStreamPolicy(ctx, owner, req, retry)
	if err != nil {
		return nil, err
	}
	pipe := postings.NewPipe(n.cfg.ChunkSize * 2)
	go func() {
		for {
			m, err := ms.Recv()
			if errors.Is(err, io.EOF) {
				pipe.Close(nil)
				return
			}
			if err != nil {
				pipe.Close(err)
				return
			}
			n.noteGauge(owner.Addr, m)
			if !pipe.Send(m.Postings) {
				ms.Close()
				return
			}
		}
	}()
	return pipe, nil
}

// Delete removes one posting from the key's list on all owners.
func (n *Node) Delete(key string, p sid.Posting) error {
	return n.DeleteContext(context.Background(), key, p)
}

// DeleteContext is Delete under a caller-controlled deadline.
func (n *Node) DeleteContext(ctx context.Context, key string, p sid.Posting) error {
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if o.ID == n.self.ID {
			if err := n.store.Delete(key, p); err != nil {
				return err
			}
			continue
		}
		if _, err := n.call(ctx, o, Message{Type: MsgDelete, From: n.from(), Key: key, Postings: postings.List{p}}); err != nil {
			return err
		}
	}
	return nil
}

// DeleteAt removes one posting from a key's list on a specific peer
// (the DPP's block-targeted deletion).
func (n *Node) DeleteAt(to Contact, key string, p sid.Posting) error {
	return n.DeleteAtContext(context.Background(), to, key, p)
}

// DeleteAtContext is DeleteAt under a caller-controlled deadline.
func (n *Node) DeleteAtContext(ctx context.Context, to Contact, key string, p sid.Posting) error {
	if to.ID == n.self.ID {
		return n.store.Delete(key, p)
	}
	_, err := n.call(ctx, to, Message{Type: MsgDelete, From: n.from(), Key: key, Postings: postings.List{p}})
	return err
}

// DeleteKey removes the key's entire list on all owners.
func (n *Node) DeleteKey(key string) error {
	return n.DeleteKeyContext(context.Background(), key)
}

// DeleteKeyContext is DeleteKey under a caller-controlled deadline.
func (n *Node) DeleteKeyContext(ctx context.Context, key string) error {
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if o.ID == n.self.ID {
			if err := n.store.DeleteTerm(key); err != nil {
				return err
			}
			continue
		}
		if _, err := n.call(ctx, o, Message{Type: MsgDeleteKey, From: n.from(), Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// CallProc invokes an application procedure on the owner of key.
func (n *Node) CallProc(key, proc string, blob []byte) ([]byte, error) {
	return n.CallProcContext(context.Background(), key, proc, blob)
}

// CallProcContext is CallProc under a caller-controlled deadline.
func (n *Node) CallProcContext(ctx context.Context, key, proc string, blob []byte) ([]byte, error) {
	owner, err := n.LocateContext(ctx, key)
	if err != nil {
		return nil, err
	}
	return n.CallProcOnContext(ctx, owner, key, proc, blob)
}

// CallProcOwners invokes an application procedure on every replica
// owner of key (replicated writes such as directory entries). It
// succeeds when at least one owner accepted the call, returning the
// first successful reply; unreachable owners are healed later by the
// read path trying all replicas.
func (n *Node) CallProcOwners(key, proc string, blob []byte) ([]byte, error) {
	return n.CallProcOwnersContext(context.Background(), key, proc, blob)
}

// CallProcOwnersContext is CallProcOwners under a caller-controlled
// deadline.
func (n *Node) CallProcOwnersContext(ctx context.Context, key, proc string, blob []byte) ([]byte, error) {
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return nil, err
	}
	var (
		out      []byte
		okCount  int
		firstErr error
	)
	for _, o := range owners {
		b, err := n.CallProcOnContext(ctx, o, key, proc, blob)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if okCount == 0 {
			out = b
		}
		okCount++
	}
	if okCount == 0 {
		return nil, firstErr
	}
	return out, nil
}

// CallProcAny invokes an application procedure on the replica owners
// of key in turn, returning the first success (replicated reads).
func (n *Node) CallProcAny(key, proc string, blob []byte) ([]byte, error) {
	return n.CallProcAnyContext(context.Background(), key, proc, blob)
}

// CallProcAnyContext is CallProcAny under a caller-controlled deadline.
func (n *Node) CallProcAnyContext(ctx context.Context, key, proc string, blob []byte) ([]byte, error) {
	owners, err := n.OwnersContext(ctx, key)
	if err != nil {
		return nil, err
	}
	var firstErr error
	for _, o := range owners {
		b, err := n.CallProcOnContext(ctx, o, key, proc, blob)
		if err == nil {
			return b, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// CallProcOn invokes an application procedure on a specific peer.
func (n *Node) CallProcOn(to Contact, key, proc string, blob []byte) ([]byte, error) {
	return n.CallProcOnContext(context.Background(), to, key, proc, blob)
}

// CallProcOnContext is CallProcOn under a caller-controlled deadline.
func (n *Node) CallProcOnContext(ctx context.Context, to Contact, key, proc string, blob []byte) ([]byte, error) {
	if to.ID == n.self.ID {
		h := n.lookupProc(proc)
		if h == nil {
			return nil, fmt.Errorf("dht: unknown procedure %q", proc)
		}
		// Local fast path: the handler inherits the caller's context
		// directly (deadline and trace span included).
		return h(ctx, n.self, key, blob)
	}
	resp, err := n.call(ctx, to, Message{Type: MsgApp, From: n.from(), Key: key, Proc: proc, Blob: blob})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// OpenProcStream opens a posting stream served by a streaming
// application procedure on a specific peer.
func (n *Node) OpenProcStream(to Contact, key, proc string, blob []byte) (postings.Stream, error) {
	return n.OpenProcStreamContext(context.Background(), to, key, proc, blob)
}

// OpenProcStreamContext is OpenProcStream under a caller-controlled
// deadline.
func (n *Node) OpenProcStreamContext(ctx context.Context, to Contact, key, proc string, blob []byte) (postings.Stream, error) {
	return n.StreamFromContext(ctx, to, Message{Type: MsgApp, From: n.from(), Key: key, Proc: proc, Blob: blob})
}

// OpenProcStreamOnceContext is OpenProcStreamContext with a single
// connection attempt (no retries): the DPP fetch path uses it to probe
// a recorded block owner before rotating to a freshly located replica.
func (n *Node) OpenProcStreamOnceContext(ctx context.Context, to Contact, key, proc string, blob []byte) (postings.Stream, error) {
	return n.StreamFromOnceContext(ctx, to, Message{Type: MsgApp, From: n.from(), Key: key, Proc: proc, Blob: blob})
}

// replica repair ----------------------------------------------------

// RepairOnce runs one repair pass: for every key held locally, check
// that each of the key's Replication owners holds at least as many
// postings, and re-push the local copy where one does not. It returns
// the number of copies pushed. Because store appends are idempotent,
// over-pushing is safe; because digests are counts, the pass heals the
// churn case (an owner that lost or never had the key) cheaply without
// shipping lists around.
func (n *Node) RepairOnce(ctx context.Context) (int, error) {
	if n.cfg.Client {
		return 0, nil
	}
	terms, err := n.store.Terms()
	if err != nil {
		return 0, err
	}
	pushed := 0
	var firstErr error
	for _, term := range terms {
		if err := ctx.Err(); err != nil {
			return pushed, err
		}
		local, err := n.store.Count(term)
		if err != nil || local == 0 {
			continue
		}
		owners, err := n.OwnersContext(ctx, term)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, o := range owners {
			if o.ID == n.self.ID {
				continue
			}
			remote, err := n.digestOf(ctx, o, term)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if remote >= local {
				continue
			}
			list, err := n.store.Get(term)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			if _, err := n.call(ctx, o, Message{Type: MsgRepair, From: n.from(), Key: term, Postings: list}); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			pushed++
			n.collector.CountEvent(metrics.EventRepair)
			n.robust("repair-push")
		}
	}
	return pushed, firstErr
}

// ResyncOnce is the pull direction of replica repair: for every key
// held locally, ask the key's other owners for their digests and, when
// a remote copy has more postings, fetch it and merge it into the local
// store. A peer restarting from its data directory runs it after
// rejoining to pick up appends made to its keys while it was down; the
// push loop (RepairOnce, run by the peers that stayed up) covers keys
// the restarted peer has no local copy of at all. Returns the number of
// keys healed. Merging is idempotent (postings are set members), so a
// concurrent push of the same list is harmless.
func (n *Node) ResyncOnce(ctx context.Context) (int, error) {
	if n.cfg.Client {
		return 0, nil
	}
	terms, err := n.store.Terms()
	if err != nil {
		return 0, err
	}
	healed := 0
	var firstErr error
	for _, term := range terms {
		if err := ctx.Err(); err != nil {
			return healed, err
		}
		local, err := n.store.Count(term)
		if err != nil {
			continue
		}
		owners, err := n.OwnersContext(ctx, term)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		grew := false
		for _, o := range owners {
			if o.ID == n.self.ID {
				continue
			}
			remote, err := n.digestOf(ctx, o, term)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if remote <= local {
				continue
			}
			resp, err := n.call(ctx, o, Message{Type: MsgGet, From: n.from(), Key: term})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := n.store.Append(term, resp.Postings); err != nil {
				return healed, err
			}
			grew = true
			if c, err := n.store.Count(term); err == nil {
				local = c
			}
		}
		if grew {
			healed++
			n.collector.CountEvent(metrics.EventResync)
			n.robust("resync-pull")
		}
	}
	return healed, firstErr
}

// StartRepair launches the periodic repair loop (the republisher) and
// returns its stop function. Each pass runs under a deadline of one
// interval, so a stuck pass cannot pile up behind the next; pass
// spacing is jittered ±10% so a cluster started in lockstep does not
// repair in lockstep forever.
func (n *Node) StartRepair(interval time.Duration) (stop func()) {
	return n.startLoop(interval, func(ctx context.Context) {
		n.RepairOnce(ctx)
	})
}

func (n *Node) lookupProc(proc string) ProcHandler {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.procs[proc]
}

func (n *Node) lookupStreamProc(proc string) StreamProcHandler {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.streamProcs[proc]
}

// serverContext opens a server-side span for a request that arrived
// with trace ids and returns a context carrying it. With no tracer or
// an untraced request it returns the background context and nil.
func (n *Node) serverContext(req Message) (context.Context, *trace.Span) {
	ctx := context.Background()
	if req.TraceID == 0 {
		return ctx, nil
	}
	sp := n.Tracer().JoinRemote(req.TraceID, req.SpanID, "serve:"+req.Type.String())
	if sp == nil {
		return ctx, nil
	}
	sp.SetAttr("at", n.self.Addr)
	if req.Proc != "" {
		sp.SetAttr("proc", req.Proc)
	}
	return trace.ContextWithSpan(ctx, sp), sp
}

// HandleCall implements Handler (the server side of the wire protocol).
// Every response leaves with the peer's load gauge stamped on it, so
// regular traffic doubles as replica-load advertisement.
func (n *Node) HandleCall(from Contact, req Message) Message {
	return n.stampGauge(n.handleCall(from, req))
}

func (n *Node) handleCall(from Contact, req Message) Message {
	if !from.ID.IsZero() {
		n.table.Update(from)
	}
	ctx, sp := n.serverContext(req)
	defer sp.Finish()
	fail := func(err error) Message {
		return Message{Type: MsgError, From: n.self, Err: err.Error()}
	}
	switch req.Type {
	case MsgPing:
		return Message{Type: MsgPong, From: n.self}
	case MsgFindNode:
		return Message{Type: MsgNodes, From: n.self, Contacts: n.table.Closest(req.Target, n.cfg.K)}
	case MsgAppend, MsgRepair:
		if err := n.store.Append(req.Key, req.Postings); err != nil {
			return fail(err)
		}
		return Message{Type: MsgAck, From: n.self}
	case MsgGet:
		if err := n.admitRead(rpcOp(req.Type)); err != nil {
			return fail(err)
		}
		view, release := n.readView()
		l, err := view.Get(req.Key)
		release()
		if err != nil {
			return fail(err)
		}
		return Message{Type: MsgAck, From: n.self, Postings: l}
	case MsgDigest:
		view, release := n.readView()
		c, err := view.Count(req.Key)
		release()
		if err != nil {
			return fail(err)
		}
		return Message{Type: MsgDigestAck, From: n.self, Blob: binary.AppendUvarint(nil, uint64(c))}
	case MsgTerms:
		// One snapshot across the whole enumeration: the terms and their
		// counts describe a single committed generation even while a
		// bulk publish rewrites the index underneath.
		view, release := n.readView()
		defer release()
		terms, err := view.Terms()
		if err != nil {
			return fail(err)
		}
		tcs := make([]TermCount, 0, len(terms))
		for _, term := range terms {
			c, err := view.Count(term)
			if err != nil || c == 0 {
				continue
			}
			tcs = append(tcs, TermCount{Term: term, Count: c})
		}
		return Message{Type: MsgTermsAck, From: n.self, Blob: encodeTermCounts(tcs)}
	case MsgDelete:
		for _, p := range req.Postings {
			if err := n.store.Delete(req.Key, p); err != nil {
				return fail(err)
			}
		}
		return Message{Type: MsgAck, From: n.self}
	case MsgDeleteKey:
		if err := n.store.DeleteTerm(req.Key); err != nil {
			return fail(err)
		}
		return Message{Type: MsgAck, From: n.self}
	case MsgApp:
		h := n.lookupProc(req.Proc)
		if h == nil {
			return fail(fmt.Errorf("unknown procedure %q", req.Proc))
		}
		blob, err := h(ctx, from, req.Key, req.Blob)
		if err != nil {
			return fail(err)
		}
		return Message{Type: MsgAppReply, From: n.self, Proc: req.Proc, Blob: blob}
	}
	return fail(fmt.Errorf("unexpected message type %s", req.Type))
}

// HandleStream implements Handler for pipelined transfers. Outgoing
// chunks carry the peer's load gauge like call responses do, and the
// posting-read streams pass the admission gate: a shed stream fails
// before any store work, and the rejection reaches the consumer as a
// stream error it answers by failing over to another replica.
func (n *Node) HandleStream(from Contact, req Message, send func(Message) error) error {
	if !from.ID.IsZero() {
		n.table.Update(from)
	}
	ctx, sp := n.serverContext(req)
	defer sp.Finish()
	stamped := func(m Message) error { return send(n.stampGauge(m)) }
	switch req.Type {
	case MsgGetStream:
		if err := n.admitRead(rpcOp(req.Type)); err != nil {
			return err
		}
		return n.streamList(req.Key, stamped)
	case MsgGetBatch:
		if err := n.admitRead(rpcOp(req.Type)); err != nil {
			return err
		}
		return n.streamBatch(req, stamped)
	case MsgApp:
		h := n.lookupStreamProc(req.Proc)
		if h == nil {
			return fmt.Errorf("unknown stream procedure %q", req.Proc)
		}
		if strings.HasPrefix(req.Proc, "stream:") {
			if err := n.admitRead(rpcOp(req.Type)); err != nil {
				return err
			}
		}
		return h(ctx, from, req.Key, req.Blob, func(batch postings.List) error {
			return stamped(Message{Type: MsgChunk, From: n.self, Postings: batch})
		})
	}
	return fmt.Errorf("unexpected stream request %s", req.Type)
}

// streamList scans a snapshot of the local store and ships the list in
// chunks: the stream delivers one committed generation end to end, even
// when publishes land mid-transfer.
func (n *Node) streamList(key string, send func(Message) error) error {
	view, release := n.readView()
	defer release()
	batch := make(postings.List, 0, n.cfg.ChunkSize)
	var sendErr error
	err := view.Scan(key, sid.MinPosting, func(p sid.Posting) bool {
		batch = append(batch, p)
		if len(batch) == n.cfg.ChunkSize {
			sendErr = send(Message{Type: MsgChunk, From: n.self, Postings: batch})
			batch = batch[:0]
			return sendErr == nil
		}
		return true
	})
	if err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	if len(batch) > 0 {
		return send(Message{Type: MsgChunk, From: n.self, Postings: batch})
	}
	return nil
}

// Close stops the maintenance loops and shuts the node's transport
// down.
func (n *Node) Close() error {
	n.stopMaintenance()
	return n.tr.Close()
}

func (n *Node) stopMaintenance() {
	n.repairMu.Lock()
	if n.stopRepair != nil {
		n.stopRepair()
		n.stopRepair = nil
	}
	if n.stopRefresh != nil {
		n.stopRefresh()
		n.stopRefresh = nil
	}
	n.repairMu.Unlock()
}
