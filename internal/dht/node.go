package dht

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/store"
)

// Config holds the overlay parameters.
type Config struct {
	// K is the bucket size and lookup width (default 8).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// Replication is how many closest peers hold each key (default 1;
	// the experiments use 1 unless fault tolerance is under test).
	Replication int
	// ChunkSize is the number of postings per stream chunk of the
	// pipelined get (default 512).
	ChunkSize int
	// Client makes the node an observer: it can look up, fetch and call,
	// but never advertises itself, so it joins no routing table and owns
	// no keys. Ephemeral query clients use it — a short-lived full peer
	// would take ownership of keys and poison the overlay when it exits
	// (the paper's low-volatility assumption).
	Client bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 512
	}
	return c
}

// ProcHandler serves one application-level procedure (registered by the
// KadoP layer on top of the DHT).
type ProcHandler func(from Contact, key string, blob []byte) ([]byte, error)

// StreamProcHandler serves one streaming application procedure; it
// sends posting batches through send.
type StreamProcHandler func(from Contact, key string, blob []byte, send func(postings.List) error) error

// Node is one DHT peer: routing table, local store, and the wire
// handlers for the DHT interface (plus registered application
// procedures).
type Node struct {
	self  Contact
	cfg   Config
	table *Table
	store store.Store
	tr    Transport

	mu          sync.RWMutex
	procs       map[string]ProcHandler
	streamProcs map[string]StreamProcHandler
}

// NewNode creates a peer over the given transport and local store, and
// starts serving. The node's identifier derives from the transport
// address.
func NewNode(tr Transport, st store.Store, cfg Config) (*Node, error) {
	n := &Node{
		self:        Contact{ID: PeerIDFromSeed(tr.Addr()), Addr: tr.Addr()},
		cfg:         cfg.withDefaults(),
		store:       st,
		tr:          tr,
		procs:       map[string]ProcHandler{},
		streamProcs: map[string]StreamProcHandler{},
	}
	n.table = NewTable(n.self.ID, n.cfg.K)
	if err := tr.Serve(n); err != nil {
		return nil, err
	}
	return n, nil
}

// Self returns this peer's contact record.
func (n *Node) Self() Contact { return n.self }

// from is the sender contact stamped on outgoing requests; client nodes
// send an anonymous contact so receivers do not record them.
func (n *Node) from() Contact {
	if n.cfg.Client {
		return Contact{}
	}
	return n.self
}

// Store exposes the local index store (used by the KadoP layer for
// local index organisation such as DPP blocks).
func (n *Node) Store() store.Store { return n.store }

// Table exposes the routing table (for diagnostics).
func (n *Node) Table() *Table { return n.table }

// Handle registers an application procedure.
func (n *Node) Handle(proc string, h ProcHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.procs[proc] = h
}

// HandleStreamProc registers a streaming application procedure. By
// convention stream procedure names begin with "stream:".
func (n *Node) HandleStreamProc(proc string, h StreamProcHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.streamProcs[proc] = h
}

// Bootstrap joins the overlay through the given contacts: it seeds the
// routing table and performs a lookup of the node's own identifier,
// which populates buckets along the path (the standard Kademlia join).
func (n *Node) Bootstrap(seeds ...Contact) error {
	for _, c := range seeds {
		if c.ID.IsZero() {
			c.ID = PeerIDFromSeed(c.Addr)
		}
		n.table.Update(c)
	}
	_, err := n.Lookup(n.self.ID)
	return err
}

// Lookup performs an iterative Kademlia lookup and returns up to K
// contacts closest to target (including, possibly, this node).
func (n *Node) Lookup(target ID) ([]Contact, error) {
	type entry struct {
		c       Contact
		queried bool
	}
	shortlist := map[ID]*entry{}
	if !n.cfg.Client {
		shortlist[n.self.ID] = &entry{c: n.self, queried: true}
	}
	for _, c := range n.table.Closest(target, n.cfg.K) {
		shortlist[c.ID] = &entry{c: c}
	}
	closestOf := func() []Contact {
		out := make([]Contact, 0, len(shortlist))
		for _, e := range shortlist {
			out = append(out, e.c)
		}
		sort.Slice(out, func(i, j int) bool {
			return out[i].ID.XOR(target).Less(out[j].ID.XOR(target))
		})
		if len(out) > n.cfg.K {
			out = out[:n.cfg.K]
		}
		return out
	}

	for {
		// Pick up to Alpha unqueried contacts among the current closest.
		var batch []Contact
		for _, c := range closestOf() {
			e := shortlist[c.ID]
			if !e.queried {
				batch = append(batch, c)
				if len(batch) == n.cfg.Alpha {
					break
				}
			}
		}
		if len(batch) == 0 {
			return closestOf(), nil
		}
		type result struct {
			from     Contact
			contacts []Contact
			err      error
		}
		results := make(chan result, len(batch))
		for _, c := range batch {
			shortlist[c.ID].queried = true
			go func(c Contact) {
				resp, err := n.tr.Call(c, Message{Type: MsgFindNode, From: n.from(), Target: target})
				results <- result{from: c, contacts: resp.Contacts, err: err}
			}(c)
		}
		for range batch {
			r := <-results
			if r.err != nil {
				n.table.Remove(r.from.ID)
				delete(shortlist, r.from.ID)
				continue
			}
			n.table.Update(r.from)
			for _, c := range r.contacts {
				if _, ok := shortlist[c.ID]; !ok {
					shortlist[c.ID] = &entry{c: c}
				}
				n.table.Update(c)
			}
		}
	}
}

// Locate returns the peer in charge of an application key (the closest
// peer to the key's identifier), implementing the DHT interface's
// locate(k).
func (n *Node) Locate(key string) (Contact, error) {
	cs, err := n.Lookup(KeyID(key))
	if err != nil {
		return Contact{}, err
	}
	if len(cs) == 0 {
		return Contact{}, fmt.Errorf("dht: locate %q: no peers known", key)
	}
	return cs[0], nil
}

// owners returns the Replication closest peers to the key.
func (n *Node) owners(key string) ([]Contact, error) {
	cs, err := n.Lookup(KeyID(key))
	if err != nil {
		return nil, err
	}
	if len(cs) == 0 {
		return nil, fmt.Errorf("dht: no peers for key %q", key)
	}
	if len(cs) > n.cfg.Replication {
		cs = cs[:n.cfg.Replication]
	}
	return cs, nil
}

// Append adds postings to the key's list on its owner peers — the
// linear-cost indexing operation of Section 3.
func (n *Node) Append(key string, ps postings.List) error {
	owners, err := n.owners(key)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if o.ID == n.self.ID {
			if err := n.store.Append(key, ps); err != nil {
				return err
			}
			continue
		}
		sorted := ps.Clone()
		sorted.Sort()
		if _, err := n.tr.Call(o, Message{Type: MsgAppend, From: n.from(), Key: key, Postings: sorted}); err != nil {
			return fmt.Errorf("dht: append %q to %s: %w", key, o.Addr, err)
		}
	}
	return nil
}

// AppendAt adds postings to a key's list on one specific peer,
// bypassing the owner lookup. The DPP layer uses it for overflow
// blocks, whose placement the root block records explicitly (the
// paper's pointer function); DHT replication deliberately does not
// apply to such blocks (Section 4.2 notes the DHT's fixed replication
// does not fit the DPP's needs).
func (n *Node) AppendAt(to Contact, key string, ps postings.List) error {
	if to.ID == n.self.ID {
		return n.store.Append(key, ps)
	}
	sorted := ps.Clone()
	sorted.Sort()
	_, err := n.tr.Call(to, Message{Type: MsgAppend, From: n.from(), Key: key, Postings: sorted})
	return err
}

// Get retrieves the key's full posting list from its owner — the
// blocking get of the standard DHT API.
func (n *Node) Get(key string) (postings.List, error) {
	owner, err := n.Locate(key)
	if err != nil {
		return nil, err
	}
	if owner.ID == n.self.ID {
		return n.store.Get(key)
	}
	resp, err := n.tr.Call(owner, Message{Type: MsgGet, From: n.from(), Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Postings, nil
}

// GetStream retrieves the key's posting list as a pipelined stream —
// the paper's pipelined get. The returned stream delivers postings in
// canonical order while the transfer is still in progress.
func (n *Node) GetStream(key string) (postings.Stream, error) {
	owner, err := n.Locate(key)
	if err != nil {
		return nil, err
	}
	return n.StreamFrom(owner, Message{Type: MsgGetStream, From: n.from(), Key: key})
}

// StreamFrom opens a posting stream for an arbitrary request against a
// specific peer (used by the DPP layer to fetch blocks).
func (n *Node) StreamFrom(owner Contact, req Message) (postings.Stream, error) {
	if owner.ID == n.self.ID {
		// Local fast path: serve from the store through a pipe so the
		// consumer sees the same streaming behaviour.
		pipe := postings.NewPipe(n.cfg.ChunkSize * 2)
		go func() {
			err := n.HandleStream(n.self, req, func(chunk Message) error {
				if !pipe.Send(chunk.Postings) {
					return fmt.Errorf("dht: local stream consumer closed")
				}
				return nil
			})
			pipe.Close(err)
		}()
		return pipe, nil
	}
	ms, err := n.tr.OpenStream(owner, req)
	if err != nil {
		return nil, err
	}
	pipe := postings.NewPipe(n.cfg.ChunkSize * 2)
	go func() {
		for {
			m, err := ms.Recv()
			if errors.Is(err, io.EOF) {
				pipe.Close(nil)
				return
			}
			if err != nil {
				pipe.Close(err)
				return
			}
			if !pipe.Send(m.Postings) {
				ms.Close()
				return
			}
		}
	}()
	return pipe, nil
}

// Delete removes one posting from the key's list on all owners.
func (n *Node) Delete(key string, p sid.Posting) error {
	owners, err := n.owners(key)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if o.ID == n.self.ID {
			if err := n.store.Delete(key, p); err != nil {
				return err
			}
			continue
		}
		if _, err := n.tr.Call(o, Message{Type: MsgDelete, From: n.from(), Key: key, Postings: postings.List{p}}); err != nil {
			return err
		}
	}
	return nil
}

// DeleteAt removes one posting from a key's list on a specific peer
// (the DPP's block-targeted deletion).
func (n *Node) DeleteAt(to Contact, key string, p sid.Posting) error {
	if to.ID == n.self.ID {
		return n.store.Delete(key, p)
	}
	_, err := n.tr.Call(to, Message{Type: MsgDelete, From: n.from(), Key: key, Postings: postings.List{p}})
	return err
}

// DeleteKey removes the key's entire list on all owners.
func (n *Node) DeleteKey(key string) error {
	owners, err := n.owners(key)
	if err != nil {
		return err
	}
	for _, o := range owners {
		if o.ID == n.self.ID {
			if err := n.store.DeleteTerm(key); err != nil {
				return err
			}
			continue
		}
		if _, err := n.tr.Call(o, Message{Type: MsgDeleteKey, From: n.from(), Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// CallProc invokes an application procedure on the owner of key.
func (n *Node) CallProc(key, proc string, blob []byte) ([]byte, error) {
	owner, err := n.Locate(key)
	if err != nil {
		return nil, err
	}
	return n.CallProcOn(owner, key, proc, blob)
}

// CallProcOn invokes an application procedure on a specific peer.
func (n *Node) CallProcOn(to Contact, key, proc string, blob []byte) ([]byte, error) {
	if to.ID == n.self.ID {
		h := n.lookupProc(proc)
		if h == nil {
			return nil, fmt.Errorf("dht: unknown procedure %q", proc)
		}
		return h(n.self, key, blob)
	}
	resp, err := n.tr.Call(to, Message{Type: MsgApp, From: n.from(), Key: key, Proc: proc, Blob: blob})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// OpenProcStream opens a posting stream served by a streaming
// application procedure on a specific peer.
func (n *Node) OpenProcStream(to Contact, key, proc string, blob []byte) (postings.Stream, error) {
	return n.StreamFrom(to, Message{Type: MsgApp, From: n.from(), Key: key, Proc: proc, Blob: blob})
}

func (n *Node) lookupProc(proc string) ProcHandler {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.procs[proc]
}

func (n *Node) lookupStreamProc(proc string) StreamProcHandler {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.streamProcs[proc]
}

// HandleCall implements Handler (the server side of the wire protocol).
func (n *Node) HandleCall(from Contact, req Message) Message {
	if !from.ID.IsZero() {
		n.table.Update(from)
	}
	fail := func(err error) Message {
		return Message{Type: MsgError, From: n.self, Err: err.Error()}
	}
	switch req.Type {
	case MsgPing:
		return Message{Type: MsgPong, From: n.self}
	case MsgFindNode:
		return Message{Type: MsgNodes, From: n.self, Contacts: n.table.Closest(req.Target, n.cfg.K)}
	case MsgAppend:
		if err := n.store.Append(req.Key, req.Postings); err != nil {
			return fail(err)
		}
		return Message{Type: MsgAck, From: n.self}
	case MsgGet:
		l, err := n.store.Get(req.Key)
		if err != nil {
			return fail(err)
		}
		return Message{Type: MsgAck, From: n.self, Postings: l}
	case MsgDelete:
		for _, p := range req.Postings {
			if err := n.store.Delete(req.Key, p); err != nil {
				return fail(err)
			}
		}
		return Message{Type: MsgAck, From: n.self}
	case MsgDeleteKey:
		if err := n.store.DeleteTerm(req.Key); err != nil {
			return fail(err)
		}
		return Message{Type: MsgAck, From: n.self}
	case MsgApp:
		h := n.lookupProc(req.Proc)
		if h == nil {
			return fail(fmt.Errorf("unknown procedure %q", req.Proc))
		}
		blob, err := h(from, req.Key, req.Blob)
		if err != nil {
			return fail(err)
		}
		return Message{Type: MsgAppReply, From: n.self, Proc: req.Proc, Blob: blob}
	}
	return fail(fmt.Errorf("unexpected message type %s", req.Type))
}

// HandleStream implements Handler for pipelined transfers.
func (n *Node) HandleStream(from Contact, req Message, send func(Message) error) error {
	if !from.ID.IsZero() {
		n.table.Update(from)
	}
	switch req.Type {
	case MsgGetStream:
		return n.streamList(req.Key, send)
	case MsgApp:
		h := n.lookupStreamProc(req.Proc)
		if h == nil {
			return fmt.Errorf("unknown stream procedure %q", req.Proc)
		}
		return h(from, req.Key, req.Blob, func(batch postings.List) error {
			return send(Message{Type: MsgChunk, From: n.self, Postings: batch})
		})
	}
	return fmt.Errorf("unexpected stream request %s", req.Type)
}

// streamList scans the local store and ships the list in chunks.
func (n *Node) streamList(key string, send func(Message) error) error {
	batch := make(postings.List, 0, n.cfg.ChunkSize)
	var sendErr error
	err := n.store.Scan(key, sid.MinPosting, func(p sid.Posting) bool {
		batch = append(batch, p)
		if len(batch) == n.cfg.ChunkSize {
			sendErr = send(Message{Type: MsgChunk, From: n.self, Postings: batch})
			batch = batch[:0]
			return sendErr == nil
		}
		return true
	})
	if err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	if len(batch) > 0 {
		return send(Message{Type: MsgChunk, From: n.self, Postings: batch})
	}
	return nil
}

// Close shuts the node's transport down.
func (n *Node) Close() error { return n.tr.Close() }
