package kadop

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sbf"
	"kadop/internal/trace"
)

// noteFilterBuild records one structural-Bloom-filter construction at a
// home peer: a latency observation in the node's collector, and — when
// the serving context carries the query's trace — a span annotated with
// the filter's kind, wire size and level.
func (p *Peer) noteFilterBuild(ctx context.Context, st sbf.Stats, start time.Time) {
	d := time.Since(start)
	p.node.Metrics().Observe(metrics.OpSBFBuild, d)
	if parent := trace.FromContext(ctx); parent != nil {
		sp := parent.Child("sbf:build", start, d)
		sp.SetAttr("filter", st.String())
	}
}

// The Bloom-reducer strategies of Section 5.3. All strategies proceed
// in two phases: peers exchange structural Bloom filters along the
// query tree's edges and reduce their posting lists, then the reduced
// lists are sent to the query peer for the final twig join. Filters
// flow peer-to-peer (parent term home to child term home and vice
// versa), and reduced lists are pushed directly to the query peer, so
// the traffic accounting matches the paper's deployment.

// filter kinds on the wire.
const (
	filterNone byte = iota
	filterAB
	filterDB
)

// reduceSpec is one query node in a strategy request: its pre-order
// position (the push slot at the query peer), its term, and its
// children.
type reduceSpec struct {
	nodeID   int
	term     string
	children []*reduceSpec
}

func buildSpec(n *pattern.Node, next *int) *reduceSpec {
	s := &reduceSpec{nodeID: *next, term: n.Term.Key()}
	*next++
	for _, c := range n.Children {
		s.children = append(s.children, buildSpec(c, next))
	}
	return s
}

func (s *reduceSpec) count() int {
	n := 1
	for _, c := range s.children {
		n += c.count()
	}
	return n
}

func encodeSpec(buf []byte, s *reduceSpec) []byte {
	buf = appendUint(buf, uint64(s.nodeID))
	buf = appendStr(buf, s.term)
	buf = appendUint(buf, uint64(len(s.children)))
	for _, c := range s.children {
		buf = encodeSpec(buf, c)
	}
	return buf
}

func decodeSpec(buf []byte, pos int) (*reduceSpec, int, error) {
	id, pos, err := readUint(buf, pos)
	if err != nil {
		return nil, pos, err
	}
	s := &reduceSpec{nodeID: int(id)}
	if s.term, pos, err = readStr(buf, pos); err != nil {
		return nil, pos, err
	}
	n, pos, err := readUint(buf, pos)
	if err != nil {
		return nil, pos, err
	}
	if n > uint64(len(buf)) {
		return nil, pos, fmt.Errorf("kadop: implausible spec fan-out %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var c *reduceSpec
		if c, pos, err = decodeSpec(buf, pos); err != nil {
			return nil, pos, err
		}
		s.children = append(s.children, c)
	}
	return s, pos, nil
}

// reduceReq is the wire form of a strategy step.
type reduceReq struct {
	session    string
	queryAddr  string
	abFP, dbFP float64
	filterKind byte
	filter     []byte
	// skipReply marks the strategy's root call: the root's own filter
	// has no consumer, so building and shipping it is suppressed.
	skipReply bool
	spec      *reduceSpec
}

func (r *reduceReq) encode() []byte {
	buf := appendStr(nil, r.session)
	buf = appendStr(buf, r.queryAddr)
	buf = appendUint(buf, uint64(r.abFP*1e6))
	buf = appendUint(buf, uint64(r.dbFP*1e6))
	buf = append(buf, r.filterKind)
	if r.skipReply {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendBytes(buf, r.filter)
	return encodeSpec(buf, r.spec)
}

func decodeReduceReq(buf []byte) (*reduceReq, error) {
	r := &reduceReq{}
	var err error
	pos := 0
	if r.session, pos, err = readStr(buf, pos); err != nil {
		return nil, err
	}
	if r.queryAddr, pos, err = readStr(buf, pos); err != nil {
		return nil, err
	}
	var v uint64
	if v, pos, err = readUint(buf, pos); err != nil {
		return nil, err
	}
	r.abFP = float64(v) / 1e6
	if v, pos, err = readUint(buf, pos); err != nil {
		return nil, err
	}
	r.dbFP = float64(v) / 1e6
	if pos >= len(buf) {
		return nil, fmt.Errorf("kadop: truncated reduce request")
	}
	r.filterKind = buf[pos]
	pos++
	if pos >= len(buf) {
		return nil, fmt.Errorf("kadop: truncated reduce request flags")
	}
	r.skipReply = buf[pos] == 1
	pos++
	if r.filter, pos, err = readBytes(buf, pos); err != nil {
		return nil, err
	}
	if r.spec, _, err = decodeSpec(buf, pos); err != nil {
		return nil, err
	}
	return r, nil
}

// sessions at the query peer -----------------------------------------

type pushMsg struct {
	nodeID int
	list   postings.List
}

var sessionCounter atomic.Int64

func (p *Peer) newSession(capacity int) (string, chan pushMsg) {
	id := fmt.Sprintf("s%d-%d", p.id, sessionCounter.Add(1))
	ch := make(chan pushMsg, capacity)
	p.sessMu.Lock()
	p.sess[id] = ch
	p.sessMu.Unlock()
	return id, ch
}

func (p *Peer) dropSession(id string) {
	p.sessMu.Lock()
	delete(p.sess, id)
	p.sessMu.Unlock()
}

// handlePush receives one reduced list at the query peer.
func (p *Peer) handlePush(_ context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	session, pos, err := readStr(blob, 0)
	if err != nil {
		return nil, err
	}
	id, pos, err := readUint(blob, pos)
	if err != nil {
		return nil, err
	}
	list, _, err := postings.Decode(blob[pos:])
	if err != nil {
		return nil, err
	}
	p.sessMu.Lock()
	ch := p.sess[session]
	p.sessMu.Unlock()
	if ch == nil {
		return nil, fmt.Errorf("kadop: unknown session %q", session)
	}
	select {
	case ch <- pushMsg{nodeID: int(id), list: list}:
	default:
		return nil, fmt.Errorf("kadop: session %q overflow", session)
	}
	return nil, nil
}

// pushList sends a (reduced) posting list to the query peer's slot.
func (p *Peer) pushList(queryAddr, session string, nodeID int, list postings.List) error {
	blob := appendStr(nil, session)
	blob = appendUint(blob, uint64(nodeID))
	enc, err := postings.Encode(list)
	if err != nil {
		return err
	}
	blob = append(blob, enc...)
	to := dht.Contact{ID: dht.PeerIDFromSeed(queryAddr), Addr: queryAddr}
	_, err = p.node.CallProcOn(to, "", procPush, blob)
	return err
}

// listFor loads the full posting list of a term this peer is home for.
// With DPP enabled the blocks are pulled back from their peers (the
// strategies and the DPP are orthogonal; composing them costs the
// block transfers, which the accounting reflects).
func (p *Peer) listFor(term string) (postings.List, error) {
	if p.dpp != nil {
		s, _, err := p.dpp.Fetch(term, dpp.FetchOptions{Parallel: p.cfg.Parallel})
		if err != nil {
			return nil, err
		}
		return postings.Drain(s)
	}
	return p.node.Store().Get(term)
}

// applyIncoming filters a list by the request's incoming filter.
func applyIncoming(req *reduceReq, list postings.List) (postings.List, error) {
	switch req.filterKind {
	case filterNone:
		return list, nil
	case filterAB:
		ab, err := sbf.UnmarshalAB(req.filter)
		if err != nil {
			return nil, err
		}
		return ab.Filter(list), nil
	case filterDB:
		db, err := sbf.UnmarshalDB(req.filter)
		if err != nil {
			return nil, err
		}
		return db.Filter(list), nil
	}
	return nil, fmt.Errorf("kadop: unknown filter kind %d", req.filterKind)
}

// handleABReduce implements one AB Reducer step at a term's home peer:
// filter the local list with the parent's AB filter, push the reduced
// list to the query peer, and forward an AB filter of the reduced list
// to the children (Figure 5).
func (p *Peer) handleABReduce(ctx context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	req, err := decodeReduceReq(blob)
	if err != nil {
		return nil, err
	}
	list, err := p.listFor(req.spec.term)
	if err != nil {
		return nil, err
	}
	reduced, err := applyIncoming(req, list)
	if err != nil {
		return nil, err
	}
	if err := p.pushList(req.queryAddr, req.session, req.spec.nodeID, reduced); err != nil {
		return nil, err
	}
	if len(req.spec.children) == 0 {
		return nil, nil
	}
	buildStart := time.Now()
	ab := sbf.BuildAB(reduced, req.abFP, sbf.DefaultPsiC)
	p.noteFilterBuild(ctx, ab.Stats(), buildStart)
	for _, c := range req.spec.children {
		child := &reduceReq{
			session: req.session, queryAddr: req.queryAddr,
			abFP: req.abFP, dbFP: req.dbFP,
			filterKind: filterAB, filter: ab.Marshal(), spec: c,
		}
		if _, err := p.node.CallProcContext(ctx, c.term, procABReduce, child.encode()); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// handleDBReduce implements one DB Reducer step: gather DB filters from
// the children (recursively), reduce the local list by all of them,
// push it to the query peer, and return a DB filter of the reduced list
// to the caller (Figure 6). Leaves push their full lists.
func (p *Peer) handleDBReduce(ctx context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	req, err := decodeReduceReq(blob)
	if err != nil {
		return nil, err
	}
	list, err := p.listFor(req.spec.term)
	if err != nil {
		return nil, err
	}
	reduced := list
	for _, c := range req.spec.children {
		child := &reduceReq{
			session: req.session, queryAddr: req.queryAddr,
			abFP: req.abFP, dbFP: req.dbFP, spec: c,
		}
		dbBytes, err := p.node.CallProcContext(ctx, c.term, procDBReduce, child.encode())
		if err != nil {
			return nil, err
		}
		db, err := sbf.UnmarshalDB(dbBytes)
		if err != nil {
			return nil, err
		}
		reduced = db.Filter(reduced)
	}
	if err := p.pushList(req.queryAddr, req.session, req.spec.nodeID, reduced); err != nil {
		return nil, err
	}
	if req.skipReply {
		return nil, nil
	}
	buildStart := time.Now()
	db := sbf.BuildDB(reduced, req.dbFP, 0, 0)
	p.noteFilterBuild(ctx, db.Stats(), buildStart)
	return db.Marshal(), nil
}

// handleHybridAB is the first pass of Bloom Reducer: AB filters flow
// top-down as in handleABReduce, but the reduced lists are retained at
// their home peers (keyed by session and slot) instead of being pushed.
func (p *Peer) handleHybridAB(ctx context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	req, err := decodeReduceReq(blob)
	if err != nil {
		return nil, err
	}
	list, err := p.listFor(req.spec.term)
	if err != nil {
		return nil, err
	}
	reduced, err := applyIncoming(req, list)
	if err != nil {
		return nil, err
	}
	p.sessMu.Lock()
	p.hybrid[hybridKey(req.session, req.spec.nodeID)] = reduced
	p.sessMu.Unlock()
	if len(req.spec.children) == 0 {
		return nil, nil
	}
	buildStart := time.Now()
	ab := sbf.BuildAB(reduced, req.abFP, sbf.DefaultPsiC)
	p.noteFilterBuild(ctx, ab.Stats(), buildStart)
	for _, c := range req.spec.children {
		child := &reduceReq{
			session: req.session, queryAddr: req.queryAddr,
			abFP: req.abFP, dbFP: req.dbFP,
			filterKind: filterAB, filter: ab.Marshal(), spec: c,
		}
		if _, err := p.node.CallProcContext(ctx, c.term, procHybridAB, child.encode()); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// handleHybridDB is the second pass of Bloom Reducer: DB filters flow
// bottom-up over the AB-reduced lists retained by the first pass; the
// final lists are pushed to the query peer.
func (p *Peer) handleHybridDB(ctx context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	req, err := decodeReduceReq(blob)
	if err != nil {
		return nil, err
	}
	key := hybridKey(req.session, req.spec.nodeID)
	p.sessMu.Lock()
	reduced, ok := p.hybrid[key]
	delete(p.hybrid, key)
	p.sessMu.Unlock()
	if !ok {
		// The AB pass did not reach this peer (e.g. strategy invoked
		// without the first pass); fall back to the full list.
		var err error
		reduced, err = p.listFor(req.spec.term)
		if err != nil {
			return nil, err
		}
	}
	for _, c := range req.spec.children {
		child := &reduceReq{
			session: req.session, queryAddr: req.queryAddr,
			abFP: req.abFP, dbFP: req.dbFP, spec: c,
		}
		dbBytes, err := p.node.CallProcContext(ctx, c.term, procHybridDB, child.encode())
		if err != nil {
			return nil, err
		}
		db, err := sbf.UnmarshalDB(dbBytes)
		if err != nil {
			return nil, err
		}
		reduced = db.Filter(reduced)
	}
	if err := p.pushList(req.queryAddr, req.session, req.spec.nodeID, reduced); err != nil {
		return nil, err
	}
	if req.skipReply {
		return nil, nil
	}
	buildStart := time.Now()
	db := sbf.BuildDB(reduced, req.dbFP, 0, 0)
	p.noteFilterBuild(ctx, db.Stats(), buildStart)
	return db.Marshal(), nil
}

func hybridKey(session string, nodeID int) string {
	return fmt.Sprintf("%s/%d", session, nodeID)
}

// reducedLists runs the selected strategy for one index subtree and
// returns the (reduced) posting list per query node pre-order position.
func (p *Peer) reducedLists(ctx context.Context, sub *pattern.Query, opts QueryOptions) (map[int]postings.List, error) {
	exStart := time.Now()
	ctx, exSp := trace.StartSpan(ctx, "phase:filter-exchange")
	defer func() {
		p.node.Metrics().Observe(metrics.OpFilterExchange, time.Since(exStart))
		exSp.Finish()
	}()
	if exSp != nil {
		exSp.SetAttr("strategy", opts.Strategy.String())
	}
	nodes := sub.Nodes()
	next := 0
	spec := buildSpec(sub.Root, &next)

	var (
		reduceSpecs []*reduceSpec // subtrees evaluated through filters
		plainIDs    []int         // nodes fetched conventionally
	)
	switch opts.Strategy {
	case ABReducer, DBReducer, BloomReducer:
		reduceSpecs = []*reduceSpec{spec}
	case SubQueryReducer:
		subSpec, rest, err := p.selectSubQuery(ctx, spec, nodes, opts.SubQuery)
		if err != nil {
			return nil, err
		}
		reduceSpecs = []*reduceSpec{subSpec}
		plainIDs = rest
	default:
		return nil, fmt.Errorf("kadop: reducedLists with strategy %v", opts.Strategy)
	}

	want := 0
	for _, s := range reduceSpecs {
		want += s.count()
	}
	session, ch := p.newSession(want + 1)
	defer p.dropSession(session)

	for _, s := range reduceSpecs {
		req := &reduceReq{
			session: session, queryAddr: p.node.Self().Addr,
			abFP: p.cfg.abFP(), dbFP: p.cfg.dbFP(), spec: s,
			skipReply: true, // the root call's filter has no consumer
		}
		var err error
		switch opts.Strategy {
		case ABReducer:
			_, err = p.node.CallProcContext(ctx, s.term, procABReduce, req.encode())
		case DBReducer, SubQueryReducer:
			_, err = p.node.CallProcContext(ctx, s.term, procDBReduce, req.encode())
		case BloomReducer:
			if _, err = p.node.CallProcContext(ctx, s.term, procHybridAB, req.encode()); err == nil {
				_, err = p.node.CallProcContext(ctx, s.term, procHybridDB, req.encode())
			}
		}
		if err != nil {
			return nil, err
		}
	}

	// Waiting for the pushes is bounded by the caller's context budget,
	// with a fallback cap so a context with no deadline cannot hang the
	// query on a lost push. Counting distinct slots (not deliveries)
	// keeps duplicated pushes — possible under at-least-once delivery —
	// from ending the wait early.
	lists := map[int]postings.List{}
	fallback := time.After(30 * time.Second)
	for len(lists) < want {
		select {
		case m := <-ch:
			lists[m.nodeID] = m.list
		case <-ctx.Done():
			return nil, fmt.Errorf("kadop: strategy %v: %w waiting for %d of %d lists", opts.Strategy, ctx.Err(), want-len(lists), want)
		case <-fallback:
			return nil, fmt.Errorf("kadop: strategy %v: timed out waiting for %d of %d lists", opts.Strategy, want-len(lists), want)
		}
	}

	// Conventionally fetched remainder (sub-query strategy).
	for _, id := range plainIDs {
		term := nodes[id].Term.Key()
		s, err := p.node.GetStreamContext(ctx, term)
		if err != nil {
			return nil, err
		}
		l, err := postings.Drain(s)
		if err != nil {
			return nil, err
		}
		lists[id] = l
	}
	return lists, nil
}

// selectSubQuery picks the sub-pattern the SubQueryReducer filters.
// With explicit positions it uses those; otherwise it applies the
// paper's heuristic — choose the root-to-leaf path ending at the leaf
// with the smallest posting list, the query's most selective branch.
func (p *Peer) selectSubQuery(ctx context.Context, spec *reduceSpec, nodes []*pattern.Node, explicit []int) (*reduceSpec, []int, error) {
	inSub := map[int]bool{}
	if len(explicit) > 0 {
		for _, id := range explicit {
			if id < 0 || id >= len(nodes) {
				return nil, nil, fmt.Errorf("kadop: sub-query position %d out of range", id)
			}
			inSub[id] = true
		}
	} else {
		// Find the smallest leaf list.
		type leafInfo struct {
			path []int
			size int
		}
		var best *leafInfo
		var walk func(s *reduceSpec, path []int) error
		walk = func(s *reduceSpec, path []int) error {
			path = append(path[:len(path):len(path)], s.nodeID)
			if len(s.children) == 0 {
				n, err := p.termCount(ctx, s.term)
				if err != nil {
					return err
				}
				if best == nil || n < best.size {
					best = &leafInfo{path: path, size: n}
				}
				return nil
			}
			for _, c := range s.children {
				if err := walk(c, path); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(spec, nil); err != nil {
			return nil, nil, err
		}
		for _, id := range best.path {
			inSub[id] = true
		}
	}
	subSpec := projectSpec(spec, inSub)
	if subSpec == nil {
		return nil, nil, fmt.Errorf("kadop: sub-query does not include the root")
	}
	var rest []int
	var collect func(s *reduceSpec)
	collect = func(s *reduceSpec) {
		if !inSub[s.nodeID] {
			rest = append(rest, s.nodeID)
		}
		for _, c := range s.children {
			collect(c)
		}
	}
	collect(spec)
	return subSpec, rest, nil
}

// projectSpec keeps only the nodes in the set, preserving ancestry.
func projectSpec(s *reduceSpec, keep map[int]bool) *reduceSpec {
	if !keep[s.nodeID] {
		return nil
	}
	out := &reduceSpec{nodeID: s.nodeID, term: s.term}
	for _, c := range s.children {
		if pc := projectSpec(c, keep); pc != nil {
			out.children = append(out.children, pc)
		}
	}
	return out
}

// termCount asks the home peer of a term for its posting count (used
// by the sub-query selection heuristic).
func (p *Peer) termCount(ctx context.Context, term string) (int, error) {
	blob, err := p.node.CallProcContext(ctx, term, procCount, nil)
	if err != nil {
		return 0, err
	}
	n, _, err := readUint(blob, 0)
	return int(n), err
}

// handleCount serves termCount at the home peer.
func (p *Peer) handleCount(_ context.Context, _ dht.Contact, term string, _ []byte) ([]byte, error) {
	if p.dpp != nil {
		root, err := p.dpp.Root(term)
		if err == nil && len(root.Blocks) > 0 {
			n := 0
			for _, b := range root.Blocks {
				n += b.Count
			}
			return appendUint(nil, uint64(n)), nil
		}
	}
	n, err := p.node.Store().Count(term)
	if err != nil {
		return nil, err
	}
	return appendUint(nil, uint64(n)), nil
}
