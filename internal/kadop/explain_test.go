package kadop

import (
	"strings"
	"testing"

	"kadop/internal/dpp"
	"kadop/internal/pattern"
	"kadop/internal/trace"
)

// TestCostPlaneEndToEnd drives a DPP cluster and checks the whole cost
// plane on a real query: operator actuals populated for every phase,
// an estimate present once the fetch plans supply cardinalities, the
// registry trained, and the shared explain renderer showing both.
func TestCostPlaneEndToEnd(t *testing.T) {
	c := newCluster(t, 8, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 4}})
	publishAll(t, c, dblpDocs)
	querier := c.peers[len(c.peers)-1]
	tr := trace.New(4)
	querier.Node().SetTracer(tr)

	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	var res *Result
	var err error
	for i := 0; i < 3; i++ { // repeats train the selectivity EWMAs
		if res, err = querier.Query(q, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	cost := res.Cost
	if cost.RootFetches == 0 || cost.BlocksFetched == 0 || cost.WireBytes == 0 {
		t.Errorf("fetch actuals missing: %+v", cost)
	}
	if cost.PostingsScanned == 0 || cost.IndexMatches == 0 {
		t.Errorf("join actuals missing: %+v", cost)
	}
	if cost.DocsEvaluated == 0 || cost.Answers != int64(len(res.Matches)) {
		t.Errorf("answer actuals missing or inconsistent: %+v (%d matches)", cost, len(res.Matches))
	}
	if res.Estimate == nil {
		t.Fatal("DPP query carried no estimate")
	}
	if res.Estimate.Postings <= 0 || res.Estimate.Matches <= 0 {
		t.Errorf("estimate = %+v", res.Estimate)
	}
	if querier.Stats().Queries() == 0 {
		t.Error("registry observed no queries")
	}

	out := FormatExplain(res, true)
	for _, want := range []string{
		"query", "phase:fetch", // the span tree
		"estimated", "actual", "postings scanned", "docs evaluated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain-analyze output missing %q:\n%s", want, out)
		}
	}
	// -explain (no analyze) is the tree alone, same renderer.
	plain := FormatExplain(res, false)
	if !strings.Contains(plain, "phase:fetch") || strings.Contains(plain, "estimated") {
		t.Errorf("explain output wrong:\n%s", plain)
	}
	if FormatExplain(nil, true) != "" {
		t.Error("nil result should render empty")
	}
}
