package kadop

import (
	"fmt"
	"sync"
	"testing"

	"kadop/internal/dpp"
	"kadop/internal/pattern"
)

// TestConcurrentPublishAndQuery runs publishers and query clients
// simultaneously against one deployment. Queries may observe any prefix
// of the publications (the index grows concurrently), but they must
// never fail, and answers must always be a subset of the final state.
func TestConcurrentPublishAndQuery(t *testing.T) {
	for _, cfg := range []Config{{}, {UseDPP: true, DPP: dpp.Options{BlockSize: 16}}} {
		name := "plain"
		if cfg.UseDPP {
			name = "dpp"
		}
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 8, cfg)
			const docsTotal = 60
			var wg sync.WaitGroup
			// Two publishers.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < docsTotal; i += 2 {
						doc := fmt.Sprintf(
							`<dblp><article><author>Writer %d</author><title>Title %d</title></article></dblp>`, i, i)
						if _, err := c.peers[w].PublishXML([]byte(doc), fmt.Sprintf("d%d.xml", i)); err != nil {
							t.Errorf("publish %d: %v", i, err)
							return
						}
					}
				}(w)
			}
			// Three query clients issuing queries while publishing runs.
			q := pattern.MustParse(`//article//author`)
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						res, err := c.peers[3+w].Query(q, QueryOptions{IndexOnly: true})
						if err != nil {
							t.Errorf("query client %d: %v", w, err)
							return
						}
						if res.IndexMatches > docsTotal {
							t.Errorf("query client %d: %d matches > %d published", w, res.IndexMatches, docsTotal)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			// Quiesced: the final query sees everything exactly once.
			res, err := c.peers[7].Query(q, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != docsTotal {
				t.Fatalf("final matches = %d, want %d", len(res.Matches), docsTotal)
			}
		})
	}
}

// TestConcurrentStrategyQueries runs all strategies at once against a
// static index; sessions must not cross-talk.
func TestConcurrentStrategyQueries(t *testing.T) {
	c := newCluster(t, 8, Config{})
	var docs []string
	for i := 0; i < 40; i++ {
		author := "Plain Person"
		if i%13 == 0 {
			author = "Jeffrey Ullman"
		}
		docs = append(docs, fmt.Sprintf(
			`<dblp><article><author>%s</author><title>T%d</title></article></dblp>`, author, i))
	}
	truth := publishAll(t, c, docs)
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	want := len(truth(q))

	var wg sync.WaitGroup
	strategies := []Strategy{Conventional, ABReducer, DBReducer, BloomReducer, SubQueryReducer, AutoStrategy}
	for round := 0; round < 3; round++ {
		for si, s := range strategies {
			wg.Add(1)
			go func(round, si int, s Strategy) {
				defer wg.Done()
				res, err := c.peers[(round+si)%len(c.peers)].Query(q, QueryOptions{Strategy: s})
				if err != nil {
					t.Errorf("round %d strategy %v: %v", round, s, err)
					return
				}
				if len(res.Matches) != want {
					t.Errorf("round %d strategy %v: %d matches, want %d", round, s, len(res.Matches), want)
				}
			}(round, si, s)
		}
	}
	wg.Wait()
}
