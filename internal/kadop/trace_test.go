package kadop

import (
	"strings"
	"testing"
	"time"

	"kadop/internal/dpp"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/trace"
)

func dppOptions(blockSize int) dpp.Options { return dpp.Options{BlockSize: blockSize} }

// TestQueryTrace runs a full query with a tracer installed on the
// querying node and checks that the result carries a trace whose phase
// spans cover the pipeline, and that the phase histograms the admin
// endpoint exports are populated.
func TestQueryTrace(t *testing.T) {
	c := newCluster(t, 6, Config{})
	publishAll(t, c, dblpDocs)

	querier := c.peers[2]
	tr := trace.New(16)
	querier.Node().SetTracer(tr)

	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	res, err := querier.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("query returned no matches")
	}
	if res.Trace == nil {
		t.Fatal("result carries no trace despite tracer being installed")
	}

	tree := res.Trace.Tree()
	for _, phase := range []string{"query", "phase:fetch", "phase:transfer", "phase:twigjoin", "phase:answers"} {
		if !strings.Contains(tree, phase) {
			t.Errorf("trace tree missing %q:\n%s", phase, tree)
		}
	}

	// Phase latencies must roughly account for the reported total: each
	// finished span's duration is bounded by the root query span.
	rec := res.Trace.Export()
	var rootDur time.Duration
	for _, s := range rec.Spans {
		if s.Name == "query" && s.Parent == 0 {
			rootDur = s.Duration
		}
	}
	if rootDur <= 0 {
		t.Fatalf("root query span not finished:\n%s", tree)
	}
	for _, s := range rec.Spans {
		if s.Duration > rootDur+time.Millisecond {
			t.Errorf("span %q (%v) exceeds the query total (%v)", s.Name, s.Duration, rootDur)
		}
	}

	// The byte attributes on the root come from collector class deltas.
	var sawBytes bool
	for _, s := range rec.Spans {
		if s.Name != "query" {
			continue
		}
		for _, a := range s.Attrs {
			if strings.HasPrefix(a.Key, "bytes.") {
				sawBytes = true
			}
		}
	}
	if !sawBytes {
		t.Errorf("root span carries no bytes.* attributes:\n%s", tree)
	}

	col := c.net.Collector
	for _, op := range []string{metrics.OpQueryTotal, metrics.OpQueryIndex, metrics.OpLookup, metrics.OpPostingsTransfer, metrics.OpTwigJoin} {
		if col.Hist(op).Count() == 0 {
			t.Errorf("histogram %q not populated", op)
		}
	}
	if col.Quantile(metrics.OpQueryTotal, 0.5) <= 0 {
		t.Error("query-total p50 is zero")
	}
}

// TestQueryUntracedHasNoTrace pins the off-by-default behaviour: with
// no tracer installed the result has no trace and per-posting timing
// stays out of the hot path.
func TestQueryUntracedHasNoTrace(t *testing.T) {
	c := newCluster(t, 4, Config{})
	publishAll(t, c, dblpDocs)

	res, err := c.peers[0].Query(pattern.MustParse(`//article//author`), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced query still produced a trace")
	}
	// Cheap once-per-query observations are recorded regardless.
	if c.net.Collector.Hist(metrics.OpQueryTotal).Count() == 0 {
		t.Error("query-total histogram not populated on untraced query")
	}
}

// BenchmarkQueryTracingOff/On measure the end-to-end query cost with
// tracing disabled (the default) and enabled; the Off number is the
// hot path the <5% overhead budget protects.
func BenchmarkQueryTracingOff(b *testing.B) { benchQueryTracing(b, false) }
func BenchmarkQueryTracingOn(b *testing.B)  { benchQueryTracing(b, true) }

func benchQueryTracing(b *testing.B, traced bool) {
	c := newCluster(b, 6, Config{})
	publishAll(b, c, dblpDocs)
	querier := c.peers[2]
	if traced {
		querier.Node().SetTracer(trace.New(4))
	}
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := querier.Query(q, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQueryTraceParallel covers the parallel join path: per-vector
// spans must appear under the query.
func TestQueryTraceParallel(t *testing.T) {
	c := newCluster(t, 6, Config{UseDPP: true, DPP: dppOptions(4)})
	publishAll(t, c, dblpDocs)

	querier := c.peers[1]
	querier.Node().SetTracer(trace.New(16))
	res, err := querier.Query(pattern.MustParse(`//article[//title]//author`), QueryOptions{ParallelJoin: 2, IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace on parallel query")
	}
	tree := res.Trace.Tree()
	if !strings.Contains(tree, "vector") {
		t.Errorf("parallel query trace missing vector spans:\n%s", tree)
	}
}
