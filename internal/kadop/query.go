package kadop

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"kadop/internal/dpp"
	"kadop/internal/metrics"
	"kadop/internal/obs/cost"
	"kadop/internal/obs/flight"
	"kadop/internal/obs/stats"
	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/trace"
	"kadop/internal/twigjoin"
)

// QueryOptions tune one query execution.
type QueryOptions struct {
	// Strategy selects the phase-one transfer plan (default
	// Conventional).
	Strategy Strategy
	// IndexOnly skips phase two: the result carries the candidate
	// documents and the index matches but no final answers. The paper's
	// response-time experiments measure exactly this phase.
	IndexOnly bool
	// ParallelJoin runs the Section 4.2 parallel twig join: the document
	// space is cut at the DPP block boundaries of the query's most
	// partitioned term, and up to this many vector joins run
	// concurrently, each fetching only its slice of every list. Answers
	// stream unordered (the paper relaxes result order for time to first
	// answer). 0 or 1 disables; requires the DPP.
	ParallelJoin int
	// SubQuery restricts Bloom filtering to the sub-pattern rooted at
	// the node with this pre-order position (SubQueryReducer only).
	SubQuery []int
	// AllowPartial tolerates unreachable document peers in phase two:
	// their answers are omitted and the result is marked incomplete,
	// matching the paper's timeout behaviour ("in this case, the answer
	// is incomplete"). Without it, a failed peer fails the query.
	AllowPartial bool
	// DocType restricts the query to documents published with this
	// type; with the DPP enabled, blocks whose type sets exclude it are
	// not transferred (the type filtering of Section 4.1).
	DocType string
}

// Strategy is a phase-one query evaluation strategy.
type Strategy int

// Strategies of Section 5.3 plus the conventional baseline.
const (
	// Conventional transfers every term's full posting list to the
	// query peer.
	Conventional Strategy = iota
	// ABReducer forwards Ancestor Bloom filters root-to-leaves.
	ABReducer
	// DBReducer forwards Descendant Bloom filters leaves-to-root.
	DBReducer
	// BloomReducer combines both passes (AB top-down, then DB
	// bottom-up).
	BloomReducer
	// SubQueryReducer applies DBReducer to a low-selectivity sub-query
	// only (the fourth strategy of Figure 7(c)).
	SubQueryReducer
	// AutoStrategy picks a plan per query with the paper's heuristic
	// (Section 5.4): when the stored posting-list sizes reveal a branch
	// of guaranteed low selectivity, filter that sub-query with
	// structural Bloom filters; otherwise ship full lists — filtering a
	// non-selective query costs more than it saves (Figure 7(c)).
	AutoStrategy
)

func (s Strategy) String() string {
	switch s {
	case Conventional:
		return "conventional"
	case ABReducer:
		return "ab-reducer"
	case DBReducer:
		return "db-reducer"
	case BloomReducer:
		return "bloom-reducer"
	case SubQueryReducer:
		return "subquery-reducer"
	case AutoStrategy:
		return "auto"
	}
	return fmt.Sprintf("strategy(%d)", s)
}

// Result is the outcome of a query.
type Result struct {
	// Matches are the final answer tuples (empty when IndexOnly).
	Matches []twigjoin.Match
	// Docs are the candidate documents identified by the index query.
	Docs []sid.DocKey
	// IndexMatches counts the tuples produced by the index twig join.
	IndexMatches int
	// IndexTime is the duration of phase one.
	IndexTime time.Duration
	// FirstAnswer is the time to the first index answer.
	FirstAnswer time.Duration
	// Total is the full duration including phase two.
	Total time.Duration
	// Plans describes the DPP fetch decisions per term.
	Plans []*dpp.FetchPlan
	// Incomplete reports that some document peers were unreachable in
	// phase two and their answers are missing (AllowPartial only).
	Incomplete bool
	// FailedPeers counts the unreachable document peers.
	FailedPeers int
	// Trace is the query's span timeline, set when the querying node has
	// a tracer installed (or the caller's context already carried a
	// span). Render it with Trace.Tree() — the kadop-query -explain
	// output.
	Trace *trace.Trace
	// Cost is the query's operator actuals: the work every phase did
	// (postings scanned, blocks fetched, bytes moved, candidates
	// pruned, documents evaluated). Always populated.
	Cost cost.Snapshot
	// Estimate is the pre-execution cost prediction from the peer's
	// statistics registry, nil when the per-term cardinalities were
	// unavailable (plain transfers of terms this peer never published).
	// FormatExplain renders Estimate vs Cost side by side.
	Estimate *stats.Estimate
}

// Query evaluates a tree-pattern query: phase one computes the
// candidate documents from the distributed index, phase two retrieves
// the answers from the document peers.
func (p *Peer) Query(q *pattern.Query, opts QueryOptions) (*Result, error) {
	return p.QueryContext(context.Background(), q, opts)
}

// QueryContext is Query under a caller-controlled deadline. The
// deadline bounds every transfer of both phases; with AllowPartial the
// query degrades to an explicitly incomplete result when peers fail or
// the budget runs out mid-phase-two, instead of hanging or erroring.
// When the peer's Config.QueryLog is set, every sampled query also
// emits one structured JSONL record.
func (p *Peer) QueryContext(ctx context.Context, q *pattern.Query, opts QueryOptions) (*Result, error) {
	ql := p.cfg.QueryLog
	sampled := ql.Sample()
	if ql == nil && p.cfg.SlowQuery <= 0 {
		res, err := p.queryContext(ctx, q, opts)
		p.countQuery(err, false)
		return res, err
	}
	snap := p.logSnapshot()
	start := time.Now()
	res, err := p.queryContext(ctx, q, opts)
	// Slow-query capture bypasses sampling: the latency tail is exactly
	// what sampling must not drop.
	slow := p.cfg.SlowQuery > 0 && time.Since(start) >= p.cfg.SlowQuery
	p.countQuery(err, slow)
	if ql != nil && (sampled || slow) {
		rec := p.buildLogRecord(q, opts, snap, res, err)
		rec.Slow = slow
		if res != nil && res.Trace != nil {
			rec.TraceID = fmt.Sprintf("%016x", res.Trace.ID())
			if slow {
				// The full span tree rides the slow record, so the log line
				// alone explains where the time went — no need to catch the
				// trace before it rotates out of the tracer ring.
				rec.Trace = res.Trace.Export()
			}
		}
		ql.Log(rec)
	}
	return res, err
}

// countQuery maintains the peer's query counters in the node registry —
// the availability feed of the SLO engine.
func (p *Peer) countQuery(err error, slow bool) {
	reg := p.node.Registry()
	reg.Counter("kadop_queries_total", "Queries evaluated by this peer.").Add(1)
	if err != nil {
		reg.Counter("kadop_query_errors_total", "Queries that failed (after retries and partial-result handling).").Add(1)
	}
	if slow {
		reg.Counter("kadop_slow_queries_total", "Queries at or over the Config.SlowQuery capture threshold.").Add(1)
	}
}

// queryContext is the query body; QueryContext wraps it with the
// structured query log.
func (p *Peer) queryContext(ctx context.Context, q *pattern.Query, opts QueryOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	col := p.node.Metrics()
	// Open the query's root span: join the caller's trace when the
	// context already carries one, else start a fresh trace when the
	// node has a tracer. With neither, all downstream instrumentation
	// reduces to its no-op fast paths.
	var root *trace.Span
	if trace.FromContext(ctx) != nil {
		ctx, root = trace.StartSpan(ctx, "query")
	} else if tr := p.node.Tracer(); tr != nil {
		ctx, root = tr.StartTrace(ctx, "query")
	}
	var classBase map[metrics.Class]int64
	if root != nil {
		root.SetAttr("query", q.String())
		root.SetAttr("strategy", opts.Strategy.String())
		classBase = col.ClassBytes()
	}
	// Every query gets a cost accumulator: the fetch, join and answer
	// operators find it on the context and add their actuals as they
	// work, regardless of tracing.
	counters := new(cost.Counters)
	ctx = cost.NewContext(ctx, counters)
	start := time.Now()
	res := &Result{Trace: root.Trace()}
	defer func() {
		dur := time.Since(start)
		var traceID uint64
		if t := root.Trace(); t != nil {
			traceID = t.ID()
		}
		// Traced queries leave their trace id as the bucket's exemplar, so
		// /metrics links a p99 bucket straight to a captured trace.
		col.ObserveExemplar(metrics.OpQueryTotal, dur, traceID)
		if fr := p.node.Flight(); fr != nil {
			fr.Record(flight.Event{Kind: flight.KindQuery, Name: q.String(), TraceID: traceID, Dur: dur})
		}
		if root != nil {
			// Per-class byte deltas: what this query moved, attributed the
			// same way the collector attributes traffic.
			for class, now := range col.ClassBytes() {
				if d := now - classBase[class]; d > 0 {
					root.SetInt("bytes."+string(class), d)
				}
			}
			root.Finish()
		}
	}()

	iq, err := ProjectIndexQuery(q)
	if err != nil {
		return nil, err
	}
	docs, err := p.indexQuery(ctx, iq, opts, res, start)
	if err != nil {
		return nil, err
	}
	res.Docs = docs
	res.IndexTime = time.Since(start)
	col.Observe(metrics.OpQueryIndex, res.IndexTime)
	// Phase one is done: predict its cost from the statistics registry
	// (using the selectivities as they were BEFORE this query), record
	// the estimation error, then let the query train the EWMAs.
	p.observeQueryStats(iq, res)

	if !opts.IndexOnly {
		phaseStart := time.Now()
		actx, asp := trace.StartSpan(ctx, "phase:answers")
		matches, failed, err := p.secondPhase(actx, q, docs)
		col.Observe(metrics.OpSecondPhase, time.Since(phaseStart))
		if asp != nil {
			asp.SetInt("matches", int64(len(matches)))
			asp.SetInt("failed-peers", int64(failed))
			asp.Finish()
		}
		if err != nil && !opts.AllowPartial {
			return nil, err
		}
		res.Matches = matches
		res.FailedPeers = failed
		res.Incomplete = failed > 0
	}
	res.Total = time.Since(start)
	res.Cost = counters.Snapshot()
	if root != nil {
		root.SetInt("answers", int64(len(res.Matches)))
		root.SetInt("candidate-docs", int64(len(res.Docs)))
		if c := res.Cost; c != (cost.Snapshot{}) {
			root.SetInt("postings-scanned", c.PostingsScanned)
			root.SetInt("blocks-fetched", c.BlocksFetched)
			root.SetInt("wire-bytes", c.WireBytes)
			root.SetInt("pruned", c.Pruned)
		}
	}
	return res, nil
}

// queryEdges flattens an index query's tree edges into the statistics
// registry's selectivity keys.
func queryEdges(iq *indexQuery) []stats.Edge {
	var edges []stats.Edge
	for _, sub := range iq.subtrees {
		var walk func(n *pattern.Node)
		walk = func(n *pattern.Node) {
			for _, c := range n.Children {
				edges = append(edges, stats.Edge{
					Parent: n.Term.Key(),
					Axis:   c.Axis.String(),
					Child:  c.Term.Key(),
				})
				walk(c)
			}
		}
		if sub.Root != nil {
			walk(sub.Root)
		}
	}
	return edges
}

// observeQueryStats closes the estimation loop after phase one: it
// gathers the per-term planned posting counts (from the DPP fetch
// plans when available, else the local registry), asks the registry
// for a prediction, records the relative cardinality error against
// the twig join's actual match count, and finally feeds the actuals
// back into the selectivity EWMAs.
func (p *Peer) observeQueryStats(iq *indexQuery, res *Result) {
	counts := map[string]int64{}
	var blocks int64
	if len(res.Plans) > 0 {
		for _, plan := range res.Plans {
			counts[plan.Term] += int64(plan.Postings)
			n := int64(plan.Fetched)
			if plan.Inline && plan.Postings > 0 {
				n = 1
			}
			blocks += n
		}
	} else if p.stats != nil {
		// Plain transfers carry no plan; the local registry knows the
		// cardinalities only for terms this peer published itself.
		for _, sub := range iq.subtrees {
			for _, t := range sub.Terms() {
				ts, ok := p.stats.Term(t.Key())
				if !ok {
					return // unknown term: no honest estimate exists
				}
				counts[t.Key()] = ts.Postings
			}
		}
	}
	if len(counts) == 0 {
		return
	}
	edges := queryEdges(iq)
	est := p.stats.Estimate(counts, blocks, edges)
	res.Estimate = &est
	actual := int64(res.IndexMatches)
	relErr := est.Matches - float64(actual)
	if relErr < 0 {
		relErr = -relErr
	}
	div := float64(actual)
	if div < 1 {
		div = 1
	}
	p.stats.ObserveError(relErr / div)
	minCount := int64(-1)
	for _, n := range counts {
		if minCount < 0 || n < minCount {
			minCount = n
		}
	}
	p.stats.ObserveQuery(minCount, actual, edges)
}

// indexQuery runs phase one and returns the candidate document keys.
func (p *Peer) indexQuery(ctx context.Context, iq *indexQuery, opts QueryOptions, res *Result, start time.Time) ([]sid.DocKey, error) {
	docSet := map[sid.DocKey]bool{}
	for si, sub := range iq.subtrees {
		var subDocs []sid.DocKey
		var err error
		if opts.ParallelJoin > 1 && p.dpp != nil && opts.Strategy == Conventional {
			subDocs, err = p.parallelIndexJoin(ctx, sub, opts, res, start)
		} else {
			subDocs, err = p.sequentialIndexJoin(ctx, sub, opts, res, start)
		}
		if err != nil {
			return nil, err
		}
		if si == 0 {
			for _, d := range subDocs {
				docSet[d] = true
			}
		} else {
			// Wildcard projection split the pattern: candidate documents
			// must match every connected subtree.
			keep := map[sid.DocKey]bool{}
			for _, d := range subDocs {
				if docSet[d] {
					keep[d] = true
				}
			}
			docSet = keep
		}
	}
	docs := make([]sid.DocKey, 0, len(docSet))
	for d := range docSet {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Compare(docs[j]) < 0 })
	return docs, nil
}

// timedStream decorates a posting stream to measure the time its
// consumer spends blocked in Next and the postings delivered. The twig
// join's wall time splits into transfer (summed blocked time) and
// compute (the rest) — the paper's Figure 5 decomposition, per query.
// Only traced queries pay the two clock reads per posting.
type timedStream struct {
	s    postings.Stream
	wait time.Duration
	n    int64
}

func (t *timedStream) Next() (sid.Posting, error) {
	start := time.Now()
	p, err := t.s.Next()
	t.wait += time.Since(start)
	if err == nil {
		t.n++
	}
	return p, err
}

// wrapTimed replaces every stream with a timing decorator in place and
// returns the decorators for later accounting.
func wrapTimed(streams map[*pattern.Node]postings.Stream) []*timedStream {
	timed := make([]*timedStream, 0, len(streams))
	for n, s := range streams {
		ts := &timedStream{s: s}
		streams[n] = ts
		timed = append(timed, ts)
	}
	return timed
}

// recordJoinPhases attributes one twig join's wall time to transfer and
// compute, both to the collector's histograms and — when traced — as
// phase spans under the span carried by ctx.
func (p *Peer) recordJoinPhases(ctx context.Context, joinStart time.Time, joinWall time.Duration, timed []*timedStream, matches int) {
	var blocked time.Duration
	var moved int64
	for _, t := range timed {
		blocked += t.wait
		moved += t.n
	}
	compute := joinWall - blocked
	if compute < 0 {
		compute = 0
	}
	col := p.node.Metrics()
	col.Observe(metrics.OpPostingsTransfer, blocked)
	col.Observe(metrics.OpTwigJoin, compute)
	if parent := trace.FromContext(ctx); parent != nil {
		tsp := parent.Child("phase:transfer", joinStart, blocked)
		tsp.SetInt("postings", moved)
		jsp := parent.Child("phase:twigjoin", joinStart, compute)
		jsp.SetInt("matches", int64(matches))
	}
}

// sequentialIndexJoin is the default phase-one evaluation: one holistic
// twig join over the full streams.
func (p *Peer) sequentialIndexJoin(ctx context.Context, sub *pattern.Query, opts QueryOptions, res *Result, start time.Time) ([]sid.DocKey, error) {
	traced := trace.FromContext(ctx) != nil
	fctx, fsp := trace.StartSpan(ctx, "phase:fetch")
	streams, plans, err := p.fetchStreams(fctx, sub, opts)
	fsp.Finish()
	if err != nil {
		return nil, err
	}
	res.Plans = append(res.Plans, plans...)
	var timed []*timedStream
	if traced {
		timed = wrapTimed(streams)
	}
	joinStart := time.Now()
	matchBase := res.IndexMatches
	var subDocs []sid.DocKey
	err = twigjoin.RunContext(ctx, sub, streams, func(m twigjoin.Match) error {
		if res.FirstAnswer == 0 {
			res.FirstAnswer = time.Since(start)
		}
		res.IndexMatches++
		if len(subDocs) == 0 || subDocs[len(subDocs)-1] != m.Doc {
			subDocs = append(subDocs, m.Doc)
		}
		return nil
	})
	if traced {
		p.recordJoinPhases(ctx, joinStart, time.Since(joinStart), timed, res.IndexMatches-matchBase)
	}
	return subDocs, err
}

// parallelIndexJoin implements the Section 4.2 parallel twig join: the
// candidate document space is partitioned at the block boundaries of
// the most partitioned term, and the vectors join concurrently, each
// fetching only its document slice of every list. The vectors' document
// ranges are disjoint, so answers need no deduplication; they are
// produced out of order, improving the time to the first answer.
func (p *Peer) parallelIndexJoin(ctx context.Context, sub *pattern.Query, opts QueryOptions, res *Result, start time.Time) ([]sid.DocKey, error) {
	terms := sub.Terms()
	roots := map[string]*dpp.Root{}
	var widest *dpp.Root
	for _, t := range terms {
		r, err := p.dpp.RootContext(ctx, t.Key())
		if err != nil {
			return nil, err
		}
		roots[t.Key()] = r
		if widest == nil || len(r.Blocks) > len(widest.Blocks) {
			widest = r
		}
	}
	lo, hi, _ := docInterval(roots)
	if hi.Compare(lo) < 0 {
		return nil, nil // empty intersection: no term can contribute
	}
	allowed := allowedTypes(roots, opts.DocType)

	// Cut points: the widest term's block boundaries, clipped to the
	// document interval. Boundary documents belong to the vector of the
	// block holding their first postings; since vectors are whole-doc
	// ranges, each document joins in exactly one vector.
	vectors := cutVectors(widest, lo, hi, opts.ParallelJoin)

	nodes := sub.Nodes()
	dup := termDup(nodes)
	var (
		mu      sync.Mutex
		subDocs = map[sid.DocKey]bool{}
		wg      sync.WaitGroup
		errOnce sync.Once
		firstE  error
	)
	traced := trace.FromContext(ctx) != nil
	sem := make(chan struct{}, opts.ParallelJoin)
	for vi, v := range vectors {
		wg.Add(1)
		sem <- struct{}{}
		go func(vi int, v docRange) {
			defer wg.Done()
			defer func() { <-sem }()
			vctx, vsp := trace.StartSpan(ctx, "vector")
			if vsp != nil {
				vsp.SetInt("vector", int64(vi))
				defer vsp.Finish()
			}
			streams := map[string]postings.Stream{}
			for _, t := range terms {
				s, plan, err := p.dpp.FetchWithRootContext(vctx, roots[t.Key()], dpp.FetchOptions{
					Parallel: p.cfg.Parallel,
					Filter:   true, FilterLo: v.lo, FilterHi: v.hi,
					AllowedTypes: allowed,
				})
				if err != nil {
					errOnce.Do(func() { firstE = err })
					return
				}
				mu.Lock()
				res.Plans = append(res.Plans, plan)
				mu.Unlock()
				if dup[t.Key()] {
					l, err := postings.Drain(s)
					if err != nil {
						errOnce.Do(func() { firstE = err })
						return
					}
					s = postings.NewSliceStream(l)
				}
				streams[t.Key()] = s
			}
			nodeStreams, err := assignStreams(nodes, streams, dup)
			if err != nil {
				errOnce.Do(func() { firstE = err })
				return
			}
			var timed []*timedStream
			if traced {
				timed = wrapTimed(nodeStreams)
			}
			joinStart := time.Now()
			vecMatches := 0
			err = twigjoin.RunContext(vctx, sub, nodeStreams, func(m twigjoin.Match) error {
				mu.Lock()
				if res.FirstAnswer == 0 {
					res.FirstAnswer = time.Since(start)
				}
				res.IndexMatches++
				subDocs[m.Doc] = true
				mu.Unlock()
				vecMatches++
				return nil
			})
			if traced {
				p.recordJoinPhases(vctx, joinStart, time.Since(joinStart), timed, vecMatches)
			}
			if err != nil {
				errOnce.Do(func() { firstE = err })
			}
		}(vi, v)
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	out := make([]sid.DocKey, 0, len(subDocs))
	for d := range subDocs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// docRange is one vector's document slice.
type docRange struct {
	lo, hi sid.DocKey
}

// cutVectors derives disjoint whole-document ranges covering [lo, hi]
// from a root's block boundaries, at most maxVectors of them (adjacent
// blocks merge when there are more blocks than the parallelism allows).
func cutVectors(widest *dpp.Root, lo, hi sid.DocKey, maxVectors int) []docRange {
	var cuts []sid.DocKey // inclusive upper bounds
	if widest != nil {
		for _, b := range widest.Blocks {
			k := b.Hi.Key()
			if k.Compare(lo) < 0 || k.Compare(hi) >= 0 {
				continue
			}
			if len(cuts) == 0 || cuts[len(cuts)-1].Compare(k) < 0 {
				cuts = append(cuts, k)
			}
		}
	}
	cuts = append(cuts, hi)
	// Merge down to maxVectors ranges.
	if maxVectors < 1 {
		maxVectors = 1
	}
	for len(cuts) > maxVectors {
		merged := cuts[:0]
		for i := 0; i < len(cuts); i += 2 {
			if i+1 < len(cuts) {
				merged = append(merged, cuts[i+1])
			} else {
				merged = append(merged, cuts[i])
			}
		}
		cuts = merged
	}
	var out []docRange
	cur := lo
	for _, c := range cuts {
		out = append(out, docRange{lo: cur, hi: c})
		cur = sid.DocKey{Peer: c.Peer, Doc: c.Doc + 1}
		if c.Doc == ^sid.DocID(0) {
			cur = sid.DocKey{Peer: c.Peer + 1, Doc: 0}
		}
	}
	return out
}

// fetchStreams obtains one posting stream per query node of a subtree,
// according to the configured transfer machinery and the selected
// strategy.
func (p *Peer) fetchStreams(ctx context.Context, sub *pattern.Query, opts QueryOptions) (map[*pattern.Node]postings.Stream, []*dpp.FetchPlan, error) {
	if opts.Strategy == AutoStrategy {
		chosen, err := p.chooseStrategy(ctx, sub)
		if err != nil {
			return nil, nil, err
		}
		opts.Strategy = chosen
	}
	if opts.Strategy != Conventional {
		lists, err := p.reducedLists(ctx, sub, opts)
		if err != nil {
			return nil, nil, err
		}
		streams := map[*pattern.Node]postings.Stream{}
		for i, n := range sub.Nodes() {
			streams[n] = postings.NewSliceStream(lists[i])
		}
		return streams, nil, nil
	}

	terms := sub.Terms()
	nodes := sub.Nodes()

	// With DPP: fetch all roots first, compute the document interval of
	// Section 4.2, then fetch blocks in parallel with condition filtering.
	if p.dpp != nil {
		roots := map[string]*dpp.Root{}
		for _, t := range terms {
			r, err := p.dpp.RootContext(ctx, t.Key())
			if err != nil {
				return nil, nil, err
			}
			roots[t.Key()] = r
		}
		lo, hi, filter := docInterval(roots)
		allowed := allowedTypes(roots, opts.DocType)
		lists := map[string]postings.Stream{}
		var plans []*dpp.FetchPlan
		dup := termDup(nodes)
		for _, t := range terms {
			s, plan, err := p.dpp.FetchWithRootContext(ctx, roots[t.Key()], dpp.FetchOptions{
				Parallel: p.cfg.Parallel,
				Filter:   filter, FilterLo: lo, FilterHi: hi,
				AllowedTypes: allowed,
			})
			if err != nil {
				return nil, nil, err
			}
			plans = append(plans, plan)
			if dup[t.Key()] {
				// The same term appears at several query nodes: buffer it.
				l, err := postings.Drain(s)
				if err != nil {
					return nil, nil, err
				}
				s = postings.NewSliceStream(l)
			}
			lists[t.Key()] = s
		}
		streams, err := assignStreams(nodes, lists, dup)
		return streams, plans, err
	}

	// Plain transfers: pipelined get (default) or the blocking baseline.
	lists := map[string]postings.Stream{}
	dup := termDup(nodes)
	cc := cost.FromContext(ctx)
	for _, t := range terms {
		var s postings.Stream
		if p.cfg.pipelined() {
			var err error
			s, err = p.node.GetStreamContext(ctx, t.Key())
			if err != nil {
				return nil, nil, err
			}
			s = &wireCountStream{s: s, c: cc}
		} else {
			l, err := p.node.GetContext(ctx, t.Key())
			if err != nil {
				return nil, nil, err
			}
			cc.AddWireBytes(int64(len(l)) * metrics.PostingWireBytes)
			s = postings.NewSliceStream(l)
		}
		if dup[t.Key()] {
			l, err := postings.Drain(s)
			if err != nil {
				return nil, nil, err
			}
			s = postings.NewSliceStream(l)
		}
		lists[t.Key()] = s
	}
	streams, err := assignStreams(nodes, lists, dup)
	return streams, nil, err
}

// wireCountStream attributes a plain pipelined get's posting bytes to
// the query's cost accumulator as the consumer pulls them.
type wireCountStream struct {
	s postings.Stream
	c *cost.Counters
}

func (w *wireCountStream) Next() (sid.Posting, error) {
	p, err := w.s.Next()
	if err == nil {
		w.c.AddWireBytes(metrics.PostingWireBytes)
	}
	return p, err
}

// termDup reports which term keys label more than one query node.
func termDup(nodes []*pattern.Node) map[string]bool {
	count := map[string]int{}
	for _, n := range nodes {
		count[n.Term.Key()]++
	}
	dup := map[string]bool{}
	for k, c := range count {
		if c > 1 {
			dup[k] = true
		}
	}
	return dup
}

// assignStreams gives each query node its stream; duplicated terms get
// independent replays of the buffered list.
func assignStreams(nodes []*pattern.Node, lists map[string]postings.Stream, dup map[string]bool) (map[*pattern.Node]postings.Stream, error) {
	streams := map[*pattern.Node]postings.Stream{}
	for _, n := range nodes {
		k := n.Term.Key()
		s, ok := lists[k]
		if !ok {
			return nil, fmt.Errorf("kadop: no stream fetched for term %q", k)
		}
		if dup[k] {
			ss, ok := s.(*postings.SliceStream)
			if !ok {
				return nil, fmt.Errorf("kadop: duplicated term %q not buffered", k)
			}
			streams[n] = postings.NewSliceStream(ss.Rest())
		} else {
			streams[n] = s
		}
	}
	return streams, nil
}

// docInterval computes the [min, max] document interval of Section 4.2
// from the roots of all the query's terms: every answer document lies
// within every term's own document range, so the interval is the
// intersection — [max of the minima, min of the maxima].
func docInterval(roots map[string]*dpp.Root) (lo, hi sid.DocKey, ok bool) {
	lo = sid.MinDocKey
	hi = sid.MaxDocKey
	for _, r := range roots {
		rlo, rhi, known := rootDocRange(r)
		if !known {
			// A term with no postings: the join is empty anyway; an empty
			// interval lets the fetches skip everything.
			return sid.MaxDocKey, sid.MinDocKey, true
		}
		if rlo.Compare(lo) > 0 {
			lo = rlo
		}
		if rhi.Compare(hi) < 0 {
			hi = rhi
		}
	}
	return lo, hi, true
}

func rootDocRange(r *dpp.Root) (lo, hi sid.DocKey, ok bool) {
	if len(r.Blocks) > 0 {
		return r.Blocks[0].Lo.Key(), r.Blocks[len(r.Blocks)-1].Hi.Key(), true
	}
	if r.Count > 0 {
		return r.Lo.Key(), r.Hi.Key(), true
	}
	return sid.DocKey{}, sid.DocKey{}, false
}

// secondPhase contacts the peers holding candidate documents and
// gathers the final answers. It returns the matches, the number of
// unreachable peers, and the first error encountered.
func (p *Peer) secondPhase(ctx context.Context, q *pattern.Query, docs []sid.DocKey) ([]twigjoin.Match, int, error) {
	cc := cost.FromContext(ctx)
	byPeer := map[sid.PeerID][]sid.DocKey{}
	for _, d := range docs {
		byPeer[d.Peer] = append(byPeer[d.Peer], d)
	}
	var (
		mu      sync.Mutex
		all     []twigjoin.Match
		wg      sync.WaitGroup
		errOnce sync.Once
		firstE  error
		failed  int
	)
	for pid, keys := range byPeer {
		wg.Add(1)
		go func(pid sid.PeerID, keys []sid.DocKey) {
			defer wg.Done()
			fail := func(err error) {
				errOnce.Do(func() { firstE = err })
				mu.Lock()
				failed++
				mu.Unlock()
			}
			contact, err := p.contactOf(ctx, pid)
			if err != nil {
				fail(err)
				return
			}
			blob := appendStr(nil, q.String())
			blob = append(blob, encodeDocKeys(keys)...)
			out, err := p.node.CallProcOnContext(ctx, contact, "", procAnswer, blob)
			if err != nil {
				// The paper detects faulty peers with time-outs and accepts
				// an incomplete answer; we record the failure and keep going.
				fail(err)
				return
			}
			ms, st, err := decodeMatchesStats(out)
			if err != nil {
				fail(err)
				return
			}
			// The document peer's evaluation work rides back on the
			// response trailer; attribute it to this query's actuals.
			cc.AddDocsEvaluated(st.docsEvaluated)
			cc.AddElementsScanned(st.elementsScanned)
			cc.AddAnswers(int64(len(ms)))
			mu.Lock()
			all = append(all, ms...)
			mu.Unlock()
		}(pid, keys)
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool {
		if c := all[i].Doc.Compare(all[j].Doc); c != 0 {
			return c < 0
		}
		for k := range all[i].Postings {
			if k >= len(all[j].Postings) {
				return false
			}
			if c := all[i].Postings[k].Compare(all[j].Postings[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return all, failed, firstE
}

// indexQuery is a query projected for index evaluation: wildcards
// removed, possibly splitting the pattern into connected subtrees.
type indexQuery struct {
	subtrees []*pattern.Query
}

// ProjectIndexQuery removes wildcard nodes from a query, reattaching
// their children to the nearest non-wildcard ancestor with a descendant
// axis. The result is a superset query: it never misses an answer
// document (completeness), though it may admit documents the full
// pattern rejects (the imprecision discussed in Section 2). If the
// root itself is a wildcard, the pattern may split into independent
// subtrees whose document sets intersect.
func ProjectIndexQuery(q *pattern.Query) (*indexQuery, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var roots []*pattern.Node
	var project func(n *pattern.Node, relaxed bool) []*pattern.Node
	project = func(n *pattern.Node, relaxed bool) []*pattern.Node {
		if n.IsWildcard() {
			var out []*pattern.Node
			for _, c := range n.Children {
				out = append(out, project(c, true)...)
			}
			return out
		}
		clone := &pattern.Node{Term: n.Term, Axis: n.Axis}
		if relaxed && clone.Axis == pattern.Child {
			clone.Axis = pattern.Descendant
		}
		for _, c := range n.Children {
			clone.Children = append(clone.Children, project(c, false)...)
		}
		return []*pattern.Node{clone}
	}
	roots = project(q.Root, false)
	if len(roots) == 0 {
		return nil, fmt.Errorf("kadop: query has no indexable structure")
	}
	iq := &indexQuery{}
	for _, r := range roots {
		sub := &pattern.Query{Root: r}
		if err := sub.Validate(); err != nil {
			return nil, fmt.Errorf("kadop: index projection: %w", err)
		}
		iq.subtrees = append(iq.subtrees, sub)
	}
	return iq, nil
}

// selectivityRatio is the cost-model threshold of AutoStrategy: a
// sub-query counts as selective when its smallest leaf list is at
// least this many times smaller than the query's largest list, which
// makes the Bloom-filter exchange (sized by the small list) cheap
// relative to the transfer it can save.
const selectivityRatio = 20

// chooseStrategy implements the paper's plan-selection heuristic from
// the stored posting-list sizes.
func (p *Peer) chooseStrategy(ctx context.Context, sub *pattern.Query) (Strategy, error) {
	minCount, maxCount := -1, 0
	for _, n := range sub.Nodes() {
		if n.IsWildcard() {
			continue
		}
		c, err := p.termCount(ctx, n.Term.Key())
		if err != nil {
			return Conventional, err
		}
		if c > maxCount {
			maxCount = c
		}
		if len(n.Children) == 0 && (minCount < 0 || c < minCount) {
			minCount = c
		}
	}
	if minCount >= 0 && minCount*selectivityRatio <= maxCount {
		return SubQueryReducer, nil
	}
	return Conventional, nil
}

// allowedTypes computes the type constraint of Section 4.1: every
// answer document's type must appear in every term's type set, so the
// allowed set is the intersection of the known sets (terms without
// type information impose no constraint), further narrowed by an
// explicit query type. nil means unconstrained; an empty non-nil set
// means no document can match and every typed block is skipped.
func allowedTypes(roots map[string]*dpp.Root, queryType string) []string {
	var allowed []string
	constrained := false
	intersect := func(set []string) {
		if len(set) == 0 {
			return // untyped term: no constraint
		}
		if !constrained {
			allowed = append([]string(nil), set...)
			constrained = true
			return
		}
		var kept []string
		for _, a := range allowed {
			for _, s := range set {
				if a == s {
					kept = append(kept, a)
					break
				}
			}
		}
		allowed = kept
		if allowed == nil {
			allowed = []string{}
		}
	}
	for _, r := range roots {
		set := r.Types
		if len(r.Blocks) > 0 {
			set = nil
			seen := map[string]bool{}
			typed := true
			for _, b := range r.Blocks {
				if len(b.Types) == 0 {
					typed = false
					break
				}
				for _, t := range b.Types {
					if !seen[t] {
						seen[t] = true
						set = append(set, t)
					}
				}
			}
			if !typed {
				set = nil
			}
		}
		intersect(set)
	}
	if queryType != "" {
		intersect([]string{queryType})
	}
	if !constrained {
		return nil
	}
	return allowed
}
