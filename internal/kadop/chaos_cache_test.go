package kadop

// Cache-invalidation chaos test: concurrent appends bump block
// generations while queries run against a hot block cache under message
// loss. A query must never serve a stale cached block — every document
// whose publish completed before the query started has to appear in the
// result, and nothing beyond what was published may appear.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/pattern"
)

func TestChaosConcurrentAppendsNeverServeStale(t *testing.T) {
	c := newChaosCluster(t, 8, Config{
		UseDPP:     true,
		DPP:        dpp.Options{BlockSize: 8},
		CacheBytes: 1 << 20,
	})
	mkDoc := func(i int) string {
		return fmt.Sprintf(
			`<dblp><article><author>Jeffrey Ullman</author><title>Paper %d</title></article></dblp>`, i)
	}
	const baseDocs = 20
	for i := 0; i < baseDocs; i++ {
		p := c.peers[i%len(c.peers)]
		if _, err := p.PublishXML([]byte(mkDoc(i)), fmt.Sprintf("base%d.xml", i)); err != nil {
			t.Fatal(err)
		}
	}
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	querier := c.peers[len(c.peers)-1]

	// Warm the cache on the healthy cluster.
	res, err := querier.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != baseDocs {
		t.Fatalf("baseline: %d matches, want %d", len(res.Matches), baseDocs)
	}

	c.net.SetFaults(dht.Faults{Seed: 41, DropProb: 0.10, DupProb: 0.02})

	const extraDocs = 8
	// A publish is visible piecewise while it runs, so the bounds below
	// bracket each query with both counters: completed publishes must all
	// be visible, and nothing beyond the started ones may be.
	var started, completed atomic.Int64
	appendDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(appendDone)
		for i := 0; i < extraDocs; i++ {
			p := c.peers[i%3]
			started.Add(1)
			if _, err := p.PublishXML([]byte(mkDoc(baseDocs+i)), fmt.Sprintf("extra%d.xml", i)); err != nil {
				t.Errorf("publish under faults: %v", err)
				return
			}
			completed.Add(1)
		}
	}()

	// Queriers race the appender on a shared cache. Each query brackets
	// its run with the published counter: everything published before it
	// started must be visible (no stale block served), and nothing may
	// appear that was never published.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-appendDone:
					return
				default:
				}
				before := completed.Load()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				res, err := querier.QueryContext(ctx, q, QueryOptions{})
				cancel()
				if err != nil {
					t.Errorf("querier %d: %v", w, err)
					return
				}
				after := started.Load()
				got := int64(len(res.Matches))
				if got < baseDocs+before {
					t.Errorf("querier %d served stale data: %d matches, %d published before the query",
						w, got, baseDocs+before)
					return
				}
				if got > baseDocs+after {
					t.Errorf("querier %d invented matches: %d, only %d publishes started", w, got, baseDocs+after)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Faults off: the final query must account for every append, and the
	// cache must have actually been exercised along the way.
	c.net.SetFaults(dht.Faults{})
	res, err = querier.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != baseDocs+extraDocs {
		t.Fatalf("final query: %d matches, want %d", len(res.Matches), baseDocs+extraDocs)
	}
	st := querier.BlockCache().Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache was not exercised: %+v", st)
	}
}
