package kadop

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"kadop/internal/dpp"
	"kadop/internal/obs/querylog"
	"kadop/internal/pattern"
)

// TestQueryLogRoundTrip runs real queries with Config.QueryLog set and
// checks the emitted JSONL records parse and carry the query's numbers.
func TestQueryLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		UseDPP:   true,
		DPP:      dpp.Options{BlockSize: 64},
		QueryLog: querylog.New(&buf, querylog.Options{}),
	}
	c := newCluster(t, 4, cfg)
	publishAll(t, c, dblpDocs)

	q, err := pattern.Parse(`//article//author[. contains "Ullman"]`)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		res, err := c.peers[3].Query(q, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) == 0 {
			t.Fatal("query found no answers; log record would be vacuous")
		}
	}

	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if got := rec["query"]; got != q.String() {
			t.Errorf("query = %v, want %v", got, q.String())
		}
		if rec["strategy"] != "conventional" {
			t.Errorf("strategy = %v", rec["strategy"])
		}
		if total, _ := rec["total_ns"].(float64); total <= 0 {
			t.Errorf("total_ns = %v, want > 0", rec["total_ns"])
		}
		if ans, _ := rec["answers"].(float64); ans == 0 {
			t.Errorf("answers = %v, want > 0", rec["answers"])
		}
		if pb, _ := rec["posting_bytes"].(float64); pb <= 0 {
			t.Errorf("posting_bytes = %v, want > 0", rec["posting_bytes"])
		}
	}
	if lines != runs {
		t.Fatalf("logged %d records, want %d", lines, runs)
	}
}

// TestQueryLogSampling checks the sampled logger only records its share.
func TestQueryLogSampling(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{QueryLog: querylog.New(&buf, querylog.Options{SampleRate: 0.5})}
	c := newCluster(t, 2, cfg)
	publishAll(t, c, dblpDocs)

	q, err := pattern.Parse(`//article//author`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.peers[1].Query(q, QueryOptions{IndexOnly: true}); err != nil {
			t.Fatal(err)
		}
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
	}
	if lines != 2 {
		t.Errorf("rate 0.5 over 4 queries logged %d records, want 2", lines)
	}
}
