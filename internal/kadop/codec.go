package kadop

import (
	"encoding/binary"
	"fmt"

	"kadop/internal/sid"
	"kadop/internal/twigjoin"
)

// Binary helpers shared by the KadoP control messages. All control
// payloads use explicit length-prefixed encoding so traffic accounting
// reflects exactly what a deployment would ship.

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readStr(buf []byte, pos int) (string, int, error) {
	n, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || pos+sz+int(n) > len(buf) {
		return "", pos, fmt.Errorf("kadop: truncated string at offset %d", pos)
	}
	pos += sz
	return string(buf[pos : pos+int(n)]), pos + int(n), nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(buf []byte, pos int) ([]byte, int, error) {
	n, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || pos+sz+int(n) > len(buf) {
		return nil, pos, fmt.Errorf("kadop: truncated bytes at offset %d", pos)
	}
	pos += sz
	out := append([]byte(nil), buf[pos:pos+int(n)]...)
	return out, pos + int(n), nil
}

func appendUint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func readUint(buf []byte, pos int) (uint64, int, error) {
	v, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return 0, pos, fmt.Errorf("kadop: truncated varint at offset %d", pos)
	}
	return v, pos + sz, nil
}

func appendPosting(buf []byte, p sid.Posting) []byte {
	var b [18]byte
	binary.BigEndian.PutUint32(b[0:], uint32(p.Peer))
	binary.BigEndian.PutUint32(b[4:], uint32(p.Doc))
	binary.BigEndian.PutUint32(b[8:], p.SID.Start)
	binary.BigEndian.PutUint32(b[12:], p.SID.End)
	binary.BigEndian.PutUint16(b[16:], p.SID.Level)
	return append(buf, b[:]...)
}

func readPosting(buf []byte, pos int) (sid.Posting, int, error) {
	if pos+18 > len(buf) {
		return sid.Posting{}, pos, fmt.Errorf("kadop: truncated posting at offset %d", pos)
	}
	b := buf[pos:]
	p := sid.Posting{
		Peer: sid.PeerID(binary.BigEndian.Uint32(b[0:])),
		Doc:  sid.DocID(binary.BigEndian.Uint32(b[4:])),
		SID: sid.SID{
			Start: binary.BigEndian.Uint32(b[8:]),
			End:   binary.BigEndian.Uint32(b[12:]),
			Level: binary.BigEndian.Uint16(b[16:]),
		},
	}
	return p, pos + 18, nil
}

// encodeMatches serialises answer tuples (phase-two responses).
func encodeMatches(ms []twigjoin.Match) []byte {
	buf := appendUint(nil, uint64(len(ms)))
	for _, m := range ms {
		buf = appendUint(buf, uint64(m.Doc.Peer))
		buf = appendUint(buf, uint64(m.Doc.Doc))
		buf = appendUint(buf, uint64(len(m.Postings)))
		for _, p := range m.Postings {
			buf = appendPosting(buf, p)
		}
	}
	return buf
}

func decodeMatches(buf []byte) ([]twigjoin.Match, error) {
	out, _, err := decodeMatchesAt(buf)
	return out, err
}

func decodeMatchesAt(buf []byte) ([]twigjoin.Match, int, error) {
	n, pos, err := readUint(buf, 0)
	if err != nil {
		return nil, pos, err
	}
	if n > uint64(len(buf)) {
		return nil, pos, fmt.Errorf("kadop: implausible match count %d", n)
	}
	out := make([]twigjoin.Match, 0, n)
	for i := uint64(0); i < n; i++ {
		var m twigjoin.Match
		var v uint64
		if v, pos, err = readUint(buf, pos); err != nil {
			return nil, pos, err
		}
		m.Doc.Peer = sid.PeerID(v)
		if v, pos, err = readUint(buf, pos); err != nil {
			return nil, pos, err
		}
		m.Doc.Doc = sid.DocID(v)
		if v, pos, err = readUint(buf, pos); err != nil {
			return nil, pos, err
		}
		if v > uint64(len(buf)) {
			return nil, pos, fmt.Errorf("kadop: implausible tuple width %d", v)
		}
		for j := uint64(0); j < v; j++ {
			var p sid.Posting
			if p, pos, err = readPosting(buf, pos); err != nil {
				return nil, pos, err
			}
			m.Postings = append(m.Postings, p)
		}
		out = append(out, m)
	}
	return out, pos, nil
}

// answerStats is the optional cost trailer of a phase-two response:
// how much evaluation work the document peer did on the query's
// behalf. Old responses simply end after the matches, so the trailer
// decodes as zeros — decodeMatches ignores it entirely.
type answerStats struct {
	docsEvaluated   int64
	elementsScanned int64
}

func appendAnswerStats(buf []byte, st answerStats) []byte {
	buf = appendUint(buf, uint64(st.docsEvaluated))
	return appendUint(buf, uint64(st.elementsScanned))
}

// decodeMatchesStats decodes a phase-two response plus its cost
// trailer when present.
func decodeMatchesStats(buf []byte) ([]twigjoin.Match, answerStats, error) {
	var st answerStats
	out, pos, err := decodeMatchesAt(buf)
	if err != nil || pos >= len(buf) {
		return out, st, err
	}
	d, pos, err := readUint(buf, pos)
	if err != nil {
		return out, answerStats{}, nil // no well-formed trailer: matches stand alone
	}
	e, _, err := readUint(buf, pos)
	if err != nil {
		return out, answerStats{}, nil
	}
	st.docsEvaluated = int64(d)
	st.elementsScanned = int64(e)
	return out, st, nil
}

// encodeDocKeys serialises a document-key list (phase-two requests).
func encodeDocKeys(keys []sid.DocKey) []byte {
	buf := appendUint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = appendUint(buf, uint64(k.Peer))
		buf = appendUint(buf, uint64(k.Doc))
	}
	return buf
}

func decodeDocKeys(buf []byte) ([]sid.DocKey, error) {
	n, pos, err := readUint(buf, 0)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("kadop: implausible key count %d", n)
	}
	out := make([]sid.DocKey, 0, n)
	for i := uint64(0); i < n; i++ {
		var p, d uint64
		if p, pos, err = readUint(buf, pos); err != nil {
			return nil, err
		}
		if d, pos, err = readUint(buf, pos); err != nil {
			return nil, err
		}
		out = append(out, sid.DocKey{Peer: sid.PeerID(p), Doc: sid.DocID(d)})
	}
	return out, nil
}
