package kadop

// Query-level chaos tests: a replicated KadoP deployment under seeded
// message loss keeps answering queries, and after a peer kill every
// query either completes or returns an explicitly-marked partial
// result within its deadline — it never hangs and never silently drops
// answers.

import (
	"context"
	"testing"
	"time"

	"kadop/internal/dht"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/twigjoin"
)

// newChaosCluster is newCluster with replication and retries enabled on
// the DHT nodes.
func newChaosCluster(t testing.TB, n int, cfg Config) *cluster {
	t.Helper()
	dcfg := dht.Config{
		Replication: 2,
		Retry: dht.RetryPolicy{
			Attempts:    6,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
		},
		RPCTimeout: 2 * time.Second,
	}
	c := &cluster{net: dht.NewNetwork()}
	var nodes []*dht.Node
	for i := 0; i < n; i++ {
		node, err := dht.NewNode(c.net.NewEndpoint(), store.NewMem(), dcfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range nodes {
		p, err := NewPeer(nd, sid.PeerID(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.peers = append(c.peers, p)
	}
	for _, p := range c.peers {
		if err := p.Announce(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// matchesSubset reports whether every match in got appears in truth.
func matchesSubset(got, truth []twigjoin.Match) bool {
	seen := map[string]int{}
	for _, m := range truth {
		seen[matchKey(m)]++
	}
	for _, m := range got {
		k := matchKey(m)
		if seen[k] == 0 {
			return false
		}
		seen[k]--
	}
	return true
}

func matchKey(m twigjoin.Match) string {
	s := m.Doc.String()
	for _, p := range m.Postings {
		s += "|" + p.String()
	}
	return s
}

// TestChaosQueryCompletesOrMarksPartial publishes a corpus on a
// replicated cluster, turns on 20% message loss, kills one peer, and
// checks the paper's failure semantics: index answers survive intact
// (the index is replicated and repaired), and full queries either
// complete or return with Incomplete explicitly set, always within the
// deadline.
func TestChaosQueryCompletesOrMarksPartial(t *testing.T) {
	c := newChaosCluster(t, 8, Config{})
	truth := publishAll(t, c, dblpDocs)
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	want := truth(q)
	if len(want) == 0 {
		t.Fatal("bad fixture: ground truth is empty")
	}

	// Baseline on the healthy cluster.
	querier := c.peers[len(c.peers)-1]
	res, err := querier.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := append([]twigjoin.Match(nil), res.Matches...); !matchesSubset(got, want) || len(got) != len(want) {
		t.Fatalf("baseline query: %d matches, want %d", len(res.Matches), len(want))
	}
	baselineDocs := res.Docs

	// Chaos on: 20% loss plus duplication. Retries must absorb it — the
	// query still completes exactly.
	c.net.SetFaults(dht.Faults{Seed: 23, DropProb: 0.20, DupProb: 0.05})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	res, err = querier.QueryContext(ctx, q, QueryOptions{})
	cancel()
	if err != nil {
		t.Fatalf("query under 20%% loss: %v", err)
	}
	if res.Incomplete || len(res.Matches) != len(want) {
		t.Fatalf("query under loss: %d matches (incomplete=%v), want %d complete", len(res.Matches), res.Incomplete, len(want))
	}

	// Kill one document peer and repair the index from the survivors.
	victim := c.peers[2]
	if err := victim.Node().Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range c.peers {
		if i == 2 {
			continue
		}
		rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
		p.Node().RepairOnce(rctx)
		rcancel()
	}

	// Phase one survives in full: the candidate documents are identical,
	// served from the surviving replicas.
	ctx, cancel = context.WithTimeout(context.Background(), 60*time.Second)
	res, err = querier.QueryContext(ctx, q, QueryOptions{IndexOnly: true})
	cancel()
	if err != nil {
		t.Fatalf("index query after kill: %v", err)
	}
	if len(res.Docs) != len(baselineDocs) {
		t.Fatalf("index answers lost with the peer: %d docs, want %d", len(res.Docs), len(baselineDocs))
	}

	// Phase two with AllowPartial: the killed peer's documents cannot
	// answer, so the result must either be complete (victim held no
	// answers) or carry the explicit incomplete marker — and it must
	// return within the deadline either way.
	deadline := 60 * time.Second
	start := time.Now()
	ctx, cancel = context.WithTimeout(context.Background(), deadline)
	res, err = querier.QueryContext(ctx, q, QueryOptions{AllowPartial: true})
	cancel()
	if took := time.Since(start); took >= deadline {
		t.Fatalf("partial query overran its deadline (%v)", took)
	}
	if err != nil {
		t.Fatalf("partial query after kill: %v", err)
	}
	if !matchesSubset(res.Matches, want) {
		t.Fatal("partial query invented matches not in the ground truth")
	}
	if len(res.Matches) < len(want) && !res.Incomplete {
		t.Fatalf("query lost %d matches without marking the result incomplete",
			len(want)-len(res.Matches))
	}
	if res.Incomplete && res.FailedPeers == 0 {
		t.Fatal("incomplete result must report its failed peers")
	}

	// Without AllowPartial the same query must fail loudly, not hang,
	// when the victim actually held answers.
	if res.Incomplete {
		ctx, cancel = context.WithTimeout(context.Background(), deadline)
		_, err = querier.QueryContext(ctx, q, QueryOptions{})
		cancel()
		if err == nil {
			t.Fatal("strict query against a dead document peer should error")
		}
	}
}
