package kadop

// Property test: random twig queries over random generated documents.
// The distributed evaluation (index query + twig join over a DPP
// deployment with the block cache on) must agree exactly with
// xmltree.MatchPattern, a naive in-memory oracle that shares neither
// code nor algorithm with the query pipeline.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kadop/internal/dpp"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/twigjoin"
	"kadop/internal/xmltree"
)

var (
	propLabels = []string{"a", "b", "c", "d", "e"}
	propWords  = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
)

// genDoc builds a random labeled tree over the small alphabet: depth at
// most 4, a bounded node budget, words sprinkled on about half the
// elements.
func genDoc(t *testing.T, rng *rand.Rand) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	var rec func(depth int, budget *int)
	rec = func(depth int, budget *int) {
		b.Open(propLabels[rng.Intn(len(propLabels))])
		if rng.Intn(2) == 0 {
			b.Text(propWords[rng.Intn(len(propWords))])
		}
		for depth < 4 && *budget > 0 && rng.Intn(3) > 0 {
			*budget--
			rec(depth+1, budget)
		}
		b.Close()
	}
	budget := 6 + rng.Intn(10)
	rec(0, &budget)
	d, err := b.Document()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// genQuery builds a random twig: 1-7 element nodes with random axes,
// occasional wildcards and word-predicate leaves, retried until the
// query validates (a wildcard-only draw does not).
func genQuery(rng *rand.Rand) *pattern.Query {
	var rec func(depth int) *pattern.Node
	rec = func(depth int) *pattern.Node {
		term := xmltree.LabelTerm(propLabels[rng.Intn(len(propLabels))])
		if rng.Intn(5) == 0 {
			term = xmltree.LabelTerm(pattern.Wildcard)
		}
		axis := pattern.Child
		if rng.Intn(2) == 0 {
			axis = pattern.Descendant
		}
		n := &pattern.Node{Term: term, Axis: axis}
		if depth < 2 {
			for i := rng.Intn(3); i > 0; i-- {
				n.Children = append(n.Children, rec(depth+1))
			}
		}
		if rng.Intn(3) == 0 {
			n.Children = append(n.Children, &pattern.Node{
				Term: xmltree.WordTerm(propWords[rng.Intn(len(propWords))]),
				Axis: pattern.DescendantOrSelf,
			})
		}
		return n
	}
	for {
		q := &pattern.Query{Root: rec(0)}
		if q.Validate() != nil {
			continue
		}
		// Normalize through the concrete syntax: the pipeline ships
		// queries as strings, and parsing orders word predicates before
		// later path steps. Reparsing here gives the oracle the same
		// node pre-order the engine's answer tuples use.
		return pattern.MustParse(q.String())
	}
}

// toOracle converts a pattern tree into the oracle's representation.
func toOracle(n *pattern.Node) *xmltree.PatternNode {
	axis := map[pattern.Axis]xmltree.PatternAxis{
		pattern.Child:            xmltree.PatternChild,
		pattern.Descendant:       xmltree.PatternDescendant,
		pattern.DescendantOrSelf: xmltree.PatternDescendantOrSelf,
	}[n.Axis]
	o := &xmltree.PatternNode{Term: n.Term, Axis: axis}
	for _, c := range n.Children {
		o.Children = append(o.Children, toOracle(c))
	}
	return o
}

func TestPropertyDistributedMatchesOracle(t *testing.T) {
	const (
		nDocs    = 30
		nQueries = 40
		seed     = 7
	)
	rng := rand.New(rand.NewSource(seed))
	c := newCluster(t, 6, Config{
		UseDPP:     true,
		DPP:        dpp.Options{BlockSize: 16},
		CacheBytes: 1 << 20,
	})

	type stored struct {
		key sid.DocKey
		doc *xmltree.Document
	}
	var all []stored
	for i := 0; i < nDocs; i++ {
		d := genDoc(t, rng)
		p := c.peers[i%len(c.peers)]
		key, err := p.Publish(d, fmt.Sprintf("gen%d.xml", i))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, stored{key, d})
	}

	oracle := func(q *pattern.Query) []twigjoin.Match {
		root := toOracle(q.Root)
		var out []twigjoin.Match
		for _, s := range all {
			for _, tuple := range xmltree.MatchPattern(s.doc, root) {
				ps := make([]sid.Posting, len(tuple))
				for i, e := range tuple {
					ps[i] = sid.Posting{Peer: s.key.Peer, Doc: s.key.Doc, SID: e}
				}
				out = append(out, twigjoin.Match{Doc: s.key, Postings: ps})
			}
		}
		sortMatches(out)
		return out
	}

	nonEmpty := 0
	for qi := 0; qi < nQueries; qi++ {
		q := genQuery(rng)
		want := oracle(q)
		if len(want) > 0 {
			nonEmpty++
		}
		querier := c.peers[rng.Intn(len(c.peers))]
		// Run twice: the first pass fills the block cache, the second
		// answers from it — both must agree with the oracle exactly.
		for pass, name := range []string{"cold", "warm"} {
			res, err := querier.Query(q, QueryOptions{})
			if err != nil {
				t.Fatalf("query %d (%s) %s pass: %v", qi, q, name, err)
			}
			got := res.Matches
			sortMatches(got)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d (%s) %s pass diverges from oracle:\n got %d %v\nwant %d %v",
					qi, q, name, len(got), got, len(want), want)
			}
			_ = pass
		}
	}
	// The generator must actually exercise matching queries, or the
	// property is vacuous.
	if nonEmpty < nQueries/4 {
		t.Fatalf("only %d of %d random queries matched anything — generator drifted", nonEmpty, nQueries)
	}
}
