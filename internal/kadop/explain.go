package kadop

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// FormatExplain renders a query result for the kadop-query -explain
// and -explain-analyze flags: the span tree (when the query was
// traced), and with analyze also the per-phase work table comparing
// the statistics registry's pre-execution estimate with the operator
// actuals the query recorded. One renderer serves both flags so the
// span tree — including the per-span cache-hit, probe and shed attrs
// — never diverges between them.
func FormatExplain(res *Result, analyze bool) string {
	if res == nil {
		return ""
	}
	var b strings.Builder
	if res.Trace != nil {
		if tree := res.Trace.Tree(); tree != "" {
			b.WriteString(tree)
		}
	}
	if !analyze {
		return b.String()
	}
	if b.Len() > 0 {
		b.WriteString("\n")
	}
	c := res.Cost
	est := res.Estimate
	// The estimated column only exists for the quantities the registry
	// predicts; everything else is actual-only ("-"). A nil Estimate
	// (unknown cardinalities) blanks the whole column.
	estOf := func(v int64) string {
		if est == nil {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	var estBlocks, estBytes, estPostings, estMatches string = "-", "-", "-", "-"
	if est != nil {
		estBlocks = estOf(est.Blocks)
		estBytes = estOf(est.Bytes)
		estPostings = estOf(est.Postings)
		estMatches = fmt.Sprintf("%.1f", est.Matches)
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tmetric\testimated\tactual")
	fmt.Fprintln(w, "-----\t------\t---------\t------")
	row := func(phase, metric, estimated string, actual int64) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\n", phase, metric, estimated, actual)
	}
	row("fetch", "root fetches", "-", c.RootFetches)
	row("fetch", "blocks fetched", estBlocks, c.BlocksFetched)
	row("fetch", "cache hits", "-", c.CacheHits)
	row("fetch", "wire bytes", estBytes, c.WireBytes)
	row("fetch", "replica probes", "-", c.ReplicaProbes)
	row("fetch", "shed retries", "-", c.ShedRetries)
	row("join", "postings scanned", estPostings, c.PostingsScanned)
	row("join", "candidates", "-", c.Candidates)
	row("join", "candidates pruned", "-", c.Pruned)
	row("join", "index matches", estMatches, c.IndexMatches)
	row("answers", "docs evaluated", "-", c.DocsEvaluated)
	row("answers", "elements scanned", "-", c.ElementsScanned)
	row("answers", "answers", "-", c.Answers)
	w.Flush()
	return b.String()
}
