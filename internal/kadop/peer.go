// Package kadop implements the KadoP peer itself: the publishing
// pipeline, the two-phase query processing of Section 2, and the
// Bloom-reducer query strategies of Section 5.3, on top of the dht,
// dpp, twigjoin and sbf substrates.
//
// A peer stores the XML documents it publishes, contributes a slice of
// the distributed Term index through its DHT node, and can submit
// queries. Query processing first runs an index query — a holistic twig
// join over the posting lists of the query's terms, fetched from their
// home peers (optionally via the DPP partitioning and optionally
// reduced by structural Bloom filters) — and then sends the query to
// the peers holding the candidate documents, where the final answers
// are computed.
package kadop

import (
	"context"
	"fmt"
	"sync"

	"kadop/internal/blockcache"
	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/obs/querylog"
	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/twigjoin"
	"kadop/internal/xmltree"
)

// Proc names registered by every KadoP peer.
const (
	procDirPut   = "index:dir:put"
	procDirGet   = "dir:get"
	procAnswer   = "query:answer"
	procPush     = "stream:push"
	procCount    = "term:count"
	procABReduce = "filter:abreduce"
	procDBReduce = "filter:dbreduce"
	procHybridAB = "filter:hybrid-ab"
	procHybridDB = "filter:hybrid-db"
)

// Config configures a KadoP peer.
type Config struct {
	// UseDPP enables the distributed posting partitioning of Section 4.
	UseDPP bool
	// DPP holds the partitioning options when UseDPP is set.
	DPP dpp.Options
	// CacheBytes, when positive, gives this peer a posting-block cache
	// of that capacity for its DPP fetches: repeated and overlapping
	// queries reuse fetched blocks instead of transferring them again,
	// concurrent fetches of one block coalesce, and generation-keyed
	// entries self-invalidate on append/delete. Zero disables caching.
	CacheBytes int64
	// Pipelined selects the pipelined get of Section 3 for index
	// queries (default true; the blocking baseline is kept for the
	// ablation experiments).
	Pipelined *bool
	// Parallel is the DPP fetch parallelism K (default 4).
	Parallel int
	// Extract controls term extraction at publishing time.
	Extract xmltree.ExtractOptions
	// ABBasicFP and DBBasicFP are the basic false-positive rates of the
	// structural Bloom filters (defaults 0.20 and 0.01, the paper's
	// choices: AB filters tolerate a loose basic filter).
	ABBasicFP float64
	DBBasicFP float64
	// DHT configures the overlay node (replication factor, retry
	// policy, repair cadence) for the constructors that build the node
	// themselves — NewSimCluster, NewTCPPeer and the CLIs. The zero
	// value is the seed behaviour: one copy of every key, one RPC
	// attempt. Constructors taking an existing *dht.Node ignore it.
	DHT dht.Config
	// QueryLog, when set, receives one structured JSONL record per
	// (sampled) query: pattern, phase latencies, bytes moved, cache
	// hits, hops and retries. kadop-query -log wires this up.
	QueryLog *querylog.Logger
}

func (c Config) pipelined() bool { return c.Pipelined == nil || *c.Pipelined }

func (c Config) abFP() float64 {
	if c.ABBasicFP <= 0 {
		return 0.20
	}
	return c.ABBasicFP
}

func (c Config) dbFP() float64 {
	if c.DBBasicFP <= 0 {
		return 0.01
	}
	return c.DBBasicFP
}

// Peer is one KadoP peer.
type Peer struct {
	node *dht.Node
	id   sid.PeerID
	cfg  Config
	dpp  *dpp.Manager

	mu       sync.Mutex
	docs     map[sid.DocID]*xmltree.Document
	uris     map[sid.DocID]string
	docTypes map[sid.DocID]string
	nextDoc  sid.DocID
	dir      map[string][]byte // directory entries this peer is home for

	sessMu sync.Mutex
	sess   map[string]chan pushMsg  // open query sessions at this peer
	hybrid map[string]postings.List // Bloom Reducer intermediate lists
}

// NewPeer creates a KadoP peer with internal identifier id on an
// existing DHT node, registering all its procedures.
func NewPeer(node *dht.Node, id sid.PeerID, cfg Config) (*Peer, error) {
	p := &Peer{
		node:     node,
		id:       id,
		cfg:      cfg,
		docs:     map[sid.DocID]*xmltree.Document{},
		uris:     map[sid.DocID]string{},
		docTypes: map[sid.DocID]string{},
		dir:      map[string][]byte{},
		sess:     map[string]chan pushMsg{},
		hybrid:   map[string]postings.List{},
	}
	if cfg.UseDPP {
		if cfg.CacheBytes > 0 && cfg.DPP.Cache == nil {
			cfg.DPP.Cache = blockcache.New(blockcache.Options{MaxBytes: cfg.CacheBytes})
			cfg.DPP.Cache.SetCollector(node.Metrics())
		}
		p.dpp = dpp.NewManager(node, cfg.DPP)
	}
	node.Handle(procDirPut, p.handleDirPut)
	node.Handle(procDirGet, p.handleDirGet)
	node.Handle(procAnswer, p.handleAnswer)
	node.Handle(procCount, p.handleCount)
	node.Handle(procPush, p.handlePush)
	node.Handle(procABReduce, p.handleABReduce)
	node.Handle(procDBReduce, p.handleDBReduce)
	node.Handle(procHybridAB, p.handleHybridAB)
	node.Handle(procHybridDB, p.handleHybridDB)
	return p, nil
}

// Announce registers the peer in the distributed Peer relation so
// other peers can resolve its internal identifier to a network address.
// Call it once the overlay is in place (after every peer that may be
// home for the entry has been created); publishing and phase-two query
// processing rely on it.
func (p *Peer) Announce() error {
	if err := p.dirPut(peerKey(p.id), []byte(p.node.Self().Addr)); err != nil {
		return fmt.Errorf("kadop: register peer %d: %w", p.id, err)
	}
	return nil
}

// Node returns the peer's DHT node.
func (p *Peer) Node() *dht.Node { return p.node }

// ID returns the peer's internal identifier.
func (p *Peer) ID() sid.PeerID { return p.id }

// DPP returns the peer's DPP manager (nil when disabled).
func (p *Peer) DPP() *dpp.Manager { return p.dpp }

// BlockCache returns the peer's posting-block cache, or nil when
// caching (or DPP) is disabled.
func (p *Peer) BlockCache() *blockcache.Cache {
	if p.dpp == nil {
		return nil
	}
	return p.dpp.Cache()
}

func peerKey(id sid.PeerID) string { return fmt.Sprintf("peer:%d", id) }
func docKey(k sid.DocKey) string   { return fmt.Sprintf("doc:%d:%d", k.Peer, k.Doc) }

// directory --------------------------------------------------------

// dirPut stores a small directory entry at the home peers of key. It
// implements the Peer and Doc relations of the data model. With DHT
// replication enabled the entry lands on every replica owner, so
// address resolution survives the loss of the primary.
func (p *Peer) dirPut(key string, blob []byte) error {
	_, err := p.node.CallProcOwners(key, procDirPut, blob)
	return err
}

// dirGet retrieves a directory entry from any reachable replica owner.
func (p *Peer) dirGet(ctx context.Context, key string) ([]byte, error) {
	return p.node.CallProcAnyContext(ctx, key, procDirGet, nil)
}

func (p *Peer) handleDirPut(_ context.Context, _ dht.Contact, key string, blob []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dir[key] = append([]byte(nil), blob...)
	return nil, nil
}

func (p *Peer) handleDirGet(_ context.Context, _ dht.Contact, key string, _ []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	blob, ok := p.dir[key]
	if !ok {
		return nil, fmt.Errorf("kadop: no directory entry for %q", key)
	}
	return blob, nil
}

// contactOf resolves a peer's internal identifier to its DHT contact.
func (p *Peer) contactOf(ctx context.Context, id sid.PeerID) (dht.Contact, error) {
	if id == p.id {
		return p.node.Self(), nil
	}
	blob, err := p.dirGet(ctx, peerKey(id))
	if err != nil {
		return dht.Contact{}, fmt.Errorf("kadop: resolve peer %d: %w", id, err)
	}
	addr := string(blob)
	return dht.Contact{ID: dht.PeerIDFromSeed(addr), Addr: addr}, nil
}

// publishing --------------------------------------------------------

// Publish checks a parsed document into the collection: the document
// stays at this peer, its term postings are routed to their home peers
// (through the DPP when enabled), and its URI is registered in the Doc
// relation. It returns the document's global key.
func (p *Peer) Publish(doc *xmltree.Document, uri string) (sid.DocKey, error) {
	return p.PublishTyped(doc, uri, "")
}

// PublishTyped is Publish for a document with a user-specified type
// (Section 4.1). With the DPP enabled, the type is recorded in the
// conditions of the blocks receiving the document's postings, and
// type-constrained queries skip blocks of other types.
func (p *Peer) PublishTyped(doc *xmltree.Document, uri, dtype string) (sid.DocKey, error) {
	p.mu.Lock()
	id := p.nextDoc
	p.nextDoc++
	p.docs[id] = doc
	p.uris[id] = uri
	if dtype != "" {
		p.docTypes[id] = dtype
	}
	p.mu.Unlock()
	key := sid.DocKey{Peer: p.id, Doc: id}

	tps := xmltree.Extract(doc, p.id, id, p.cfg.Extract)
	// Batch postings per term (Section 3: buffering postings of the same
	// term cuts per-posting routing costs).
	byTerm := map[string]postings.List{}
	for _, tp := range tps {
		k := tp.Term.Key()
		byTerm[k] = append(byTerm[k], tp.Posting)
	}
	for term, list := range byTerm {
		list.Sort()
		if err := p.appendIndex(term, list, dtype); err != nil {
			return key, fmt.Errorf("kadop: publish %q: index %q: %w", uri, term, err)
		}
	}
	if err := p.dirPut(docKey(key), []byte(uri)); err != nil {
		return key, err
	}
	return key, nil
}

// appendIndex routes one term's postings into the distributed index.
func (p *Peer) appendIndex(term string, list postings.List, dtype string) error {
	if p.dpp != nil {
		return p.dpp.AppendTyped(term, list, dtype)
	}
	return p.node.Append(term, list)
}

// PublishAt indexes a document under an explicit document identifier.
// The Fundex machinery (Section 6) uses it to index a functional
// document under its functional id (p, h'(w)) instead of a sequential
// id; the document is retained locally so phase-two evaluation can
// serve answers from it.
func (p *Peer) PublishAt(id sid.DocID, doc *xmltree.Document, uri string) (sid.DocKey, error) {
	p.mu.Lock()
	if _, dup := p.docs[id]; dup {
		p.mu.Unlock()
		return sid.DocKey{Peer: p.id, Doc: id}, fmt.Errorf("kadop: document id %d already in use", id)
	}
	p.docs[id] = doc
	p.uris[id] = uri
	p.mu.Unlock()
	key := sid.DocKey{Peer: p.id, Doc: id}

	tps := xmltree.Extract(doc, p.id, id, p.cfg.Extract)
	byTerm := map[string]postings.List{}
	for _, tp := range tps {
		k := tp.Term.Key()
		byTerm[k] = append(byTerm[k], tp.Posting)
	}
	for term, list := range byTerm {
		list.Sort()
		if err := p.appendIndex(term, list, ""); err != nil {
			return key, fmt.Errorf("kadop: publish %q: index %q: %w", uri, term, err)
		}
	}
	if err := p.dirPut(docKey(key), []byte(uri)); err != nil {
		return key, err
	}
	return key, nil
}

// PublishXML parses and publishes an XML document held as bytes.
func (p *Peer) PublishXML(raw []byte, uri string) (sid.DocKey, error) {
	doc, err := xmltree.ParseBytes(raw)
	if err != nil {
		return sid.DocKey{}, fmt.Errorf("kadop: publish %q: %w", uri, err)
	}
	return p.Publish(doc, uri)
}

// Unpublish removes a document from the collection: its postings are
// deleted from the index and the document is dropped. Modification is
// deletion followed by re-publication, as in the paper.
func (p *Peer) Unpublish(id sid.DocID) error {
	p.mu.Lock()
	doc := p.docs[id]
	delete(p.docs, id)
	delete(p.uris, id)
	p.mu.Unlock()
	if doc == nil {
		return fmt.Errorf("kadop: no local document %d", id)
	}
	tps := xmltree.Extract(doc, p.id, id, p.cfg.Extract)
	byTerm := map[string]postings.List{}
	for _, tp := range tps {
		byTerm[tp.Term.Key()] = append(byTerm[tp.Term.Key()], tp.Posting)
	}
	for term, list := range byTerm {
		if p.dpp != nil {
			if err := p.dpp.Delete(term, list); err != nil {
				return err
			}
			continue
		}
		for _, posting := range list {
			if err := p.node.Delete(term, posting); err != nil {
				return err
			}
		}
	}
	return nil
}

// Document returns a locally stored document.
func (p *Peer) Document(id sid.DocID) (*xmltree.Document, string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.docs[id]
	return d, p.uris[id], ok
}

// DocumentCount returns the number of locally published documents.
func (p *Peer) DocumentCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.docs)
}

// URI resolves any document key in the collection to its URI via the
// Doc relation.
func (p *Peer) URI(k sid.DocKey) (string, error) {
	blob, err := p.dirGet(context.Background(), docKey(k))
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// handleAnswer serves phase-two query evaluation: given a query and a
// set of local document ids, it evaluates the full tree pattern on the
// stored documents and returns the answer tuples.
func (p *Peer) handleAnswer(_ context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	queryText, pos, err := readStr(blob, 0)
	if err != nil {
		return nil, err
	}
	keys, err := decodeDocKeys(blob[pos:])
	if err != nil {
		return nil, err
	}
	q, err := pattern.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("kadop: answer: %w", err)
	}
	var all []twigjoin.Match
	for _, k := range keys {
		p.mu.Lock()
		doc := p.docs[k.Doc]
		p.mu.Unlock()
		if doc == nil || k.Peer != p.id {
			continue
		}
		for _, m := range pattern.MatchDocument(q, doc, k) {
			ps := make([]sid.Posting, len(m.Elements))
			for i, e := range m.Elements {
				ps[i] = sid.Posting{Peer: k.Peer, Doc: k.Doc, SID: e}
			}
			all = append(all, twigjoin.Match{Doc: k, Postings: ps})
		}
	}
	return encodeMatches(all), nil
}
