// Package kadop implements the KadoP peer itself: the publishing
// pipeline, the two-phase query processing of Section 2, and the
// Bloom-reducer query strategies of Section 5.3, on top of the dht,
// dpp, twigjoin and sbf substrates.
//
// A peer stores the XML documents it publishes, contributes a slice of
// the distributed Term index through its DHT node, and can submit
// queries. Query processing first runs an index query — a holistic twig
// join over the posting lists of the query's terms, fetched from their
// home peers (optionally via the DPP partitioning and optionally
// reduced by structural Bloom filters) — and then sends the query to
// the peers holding the candidate documents, where the final answers
// are computed.
package kadop

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kadop/internal/blockcache"
	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/obs/cost"
	"kadop/internal/obs/querylog"
	"kadop/internal/obs/stats"
	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/replicate"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/trace"
	"kadop/internal/twigjoin"
	"kadop/internal/xmltree"
)

// Proc names registered by every KadoP peer.
const (
	procDirPut   = "index:dir:put"
	procDirGet   = "dir:get"
	procAnswer   = "query:answer"
	procPush     = "stream:push"
	procCount    = "term:count"
	procABReduce = "filter:abreduce"
	procDBReduce = "filter:dbreduce"
	procHybridAB = "filter:hybrid-ab"
	procHybridDB = "filter:hybrid-db"
)

// Config configures a KadoP peer.
type Config struct {
	// UseDPP enables the distributed posting partitioning of Section 4.
	UseDPP bool
	// DPP holds the partitioning options when UseDPP is set.
	DPP dpp.Options
	// CacheBytes, when positive, gives this peer a posting-block cache
	// of that capacity for its DPP fetches: repeated and overlapping
	// queries reuse fetched blocks instead of transferring them again,
	// concurrent fetches of one block coalesce, and generation-keyed
	// entries self-invalidate on append/delete. Zero disables caching.
	CacheBytes int64
	// Pipelined selects the pipelined get of Section 3 for index
	// queries (default true; the blocking baseline is kept for the
	// ablation experiments).
	Pipelined *bool
	// Parallel is the DPP fetch parallelism K (default 4).
	Parallel int
	// Extract controls term extraction at publishing time.
	Extract xmltree.ExtractOptions
	// ABBasicFP and DBBasicFP are the basic false-positive rates of the
	// structural Bloom filters (defaults 0.20 and 0.01, the paper's
	// choices: AB filters tolerate a loose basic filter).
	ABBasicFP float64
	DBBasicFP float64
	// DHT configures the overlay node (replication factor, retry
	// policy, repair cadence) for the constructors that build the node
	// themselves — NewSimCluster, NewTCPPeer and the CLIs. The zero
	// value is the seed behaviour: one copy of every key, one RPC
	// attempt. Constructors taking an existing *dht.Node ignore it.
	DHT dht.Config
	// QueryLog, when set, receives one structured JSONL record per
	// (sampled) query: pattern, phase latencies, bytes moved, cache
	// hits, hops and retries. kadop-query -log wires this up.
	QueryLog *querylog.Logger
	// DataDir, when set, makes the peer durable: the index B+-tree, the
	// DPP root blocks and the peer-state journal (published raw XML,
	// directory entries) all live under this directory, and a peer
	// restarted from the same directory serves its documents and index
	// slice again without republishing. NewTCPPeer and the CLIs honour
	// it; constructors taking an existing *dht.Node persist the peer
	// state and DPP roots but leave the index store to the caller.
	DataDir string
	// Fsync selects the index WAL's fsync policy when DataDir is set
	// (default store.FsyncAlways; see store.FsyncPolicy for the
	// throughput/durability-window trade).
	Fsync store.FsyncPolicy
	// RepublishInterval, when positive, starts a background loop that
	// re-registers the peer's directory entries (its address and the Doc
	// entries of its published documents) roughly every interval, with
	// ±10% jitter. Directory entries live in other peers' volatile
	// stores, so under churn they need periodic republication the same
	// way postings need the repair loop. Zero (the default) disables the
	// loop.
	RepublishInterval time.Duration
	// Replicate configures the adaptive hot-term replication controller
	// (internal/replicate). The zero value keeps the seed behaviour: no
	// promotion, no advertisements. With Enabled set the peer builds a
	// controller; Interval > 0 additionally starts its background loop
	// (experiments with synthetic clocks leave it zero and drive Tick).
	Replicate replicate.Config
	// ShedRate, when positive, arms the admission gate on this peer's
	// read-serving path: sustained read admissions per second, with
	// ShedBurst (default max(ShedRate,1)) of headroom. Over-budget
	// reads answer the retryable overload error so clients fail over to
	// another replica instead of queueing here. Zero disables shedding.
	ShedRate  float64
	ShedBurst float64
	// SlowQuery, when positive, is the slow-query capture threshold:
	// any query at least this slow is written to the query log with its
	// full trace tree attached, bypassing the log's sampling — the tail
	// is exactly what sampling must not drop. Requires QueryLog for the
	// persistent record; the query's flight-ring entry and histogram
	// exemplar are recorded regardless.
	SlowQuery time.Duration
	// Batching configures write coalescing on the peer's index store:
	// index appends arriving concurrently (several publishers, or the
	// fan-out of one wide document) group into a single WAL commit, so
	// one fsync covers the whole batch instead of one per operation.
	// Honoured by the constructors that build the store themselves
	// (NewTCPPeer, the experiment clusters); constructors taking an
	// existing *dht.Node leave the store to the caller, who can wrap it
	// in store.NewCoalescer directly.
	Batching BatchingConfig
}

// BatchingConfig tunes the publish-path write coalescer
// (store.NewCoalescer). The zero value disables coalescing, the seed
// behaviour: one WAL transaction and one fsync per store operation.
type BatchingConfig struct {
	// Enabled wraps the index store in the coalescer.
	Enabled bool
	// MaxOps bounds one batch (default 256 when zero).
	MaxOps int
	// MaxDelay, when positive, lets a batch leader linger that long
	// collecting more operations before flushing. Zero (the default)
	// flushes immediately — serial callers pay no added latency and
	// batches form naturally from whatever queued during the previous
	// flush.
	MaxDelay time.Duration
}

func (c Config) pipelined() bool { return c.Pipelined == nil || *c.Pipelined }

func (c Config) abFP() float64 {
	if c.ABBasicFP <= 0 {
		return 0.20
	}
	return c.ABBasicFP
}

func (c Config) dbFP() float64 {
	if c.DBBasicFP <= 0 {
		return 0.01
	}
	return c.DBBasicFP
}

// Peer is one KadoP peer.
type Peer struct {
	node *dht.Node
	id   sid.PeerID
	cfg  Config
	dpp  *dpp.Manager

	mu       sync.Mutex
	docs     map[sid.DocID]*xmltree.Document
	uris     map[sid.DocID]string
	docTypes map[sid.DocID]string
	nextDoc  sid.DocID
	dir      map[string][]byte // directory entries this peer is home for

	sessMu sync.Mutex
	sess   map[string]chan pushMsg  // open query sessions at this peer
	hybrid map[string]postings.List // Bloom Reducer intermediate lists

	persist    *statePersist // nil unless Config.DataDir is set
	ownedStore io.Closer     // index store closed by Close (NewTCPPeer)

	stats *stats.Registry // per-term cardinalities + learned selectivities

	stopRepub func()                // stops the republish loop; nil when disabled
	ctrl      *replicate.Controller // adaptive replication; nil when disabled
}

// NewPeer creates a KadoP peer with internal identifier id on an
// existing DHT node, registering all its procedures. With
// Config.DataDir set, the peer-state journal and the DPP root state are
// reloaded from (and persisted under) that directory, so documents
// published through PublishXML and directory entries survive a restart.
func NewPeer(node *dht.Node, id sid.PeerID, cfg Config) (*Peer, error) {
	p := &Peer{
		node:     node,
		id:       id,
		cfg:      cfg,
		docs:     map[sid.DocID]*xmltree.Document{},
		uris:     map[sid.DocID]string{},
		docTypes: map[sid.DocID]string{},
		dir:      map[string][]byte{},
		sess:     map[string]chan pushMsg{},
		hybrid:   map[string]postings.List{},
		stats:    stats.NewRegistry(),
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("kadop: data dir: %w", err)
		}
		sp, recs, err := openStatePersist(filepath.Join(cfg.DataDir, "state.jsonl"))
		if err != nil {
			return nil, err
		}
		p.persist = sp
		if err := p.replayState(recs); err != nil {
			sp.close()
			return nil, err
		}
		if err := p.stats.Load(filepath.Join(cfg.DataDir, "stats.json")); err != nil {
			sp.close()
			return nil, err
		}
	}
	if cfg.ShedRate > 0 {
		node.SetShedGate(replicate.NewGate(cfg.ShedRate, cfg.ShedBurst, cfg.Replicate.Now))
	}
	if cfg.Replicate.Enabled {
		p.ctrl = replicate.NewController(node, cfg.Replicate)
		p.ctrl.Start() // no-op unless Interval > 0
	}
	if cfg.UseDPP {
		if cfg.DPP.Now == nil {
			cfg.DPP.Now = cfg.Replicate.Now // one synthetic clock end to end
		}
		if cfg.DPP.Seed == 0 {
			cfg.DPP.Seed = cfg.DHT.Seed
		}
		if cfg.CacheBytes > 0 && cfg.DPP.Cache == nil {
			cfg.DPP.Cache = blockcache.New(blockcache.Options{MaxBytes: cfg.CacheBytes})
			cfg.DPP.Cache.SetCollector(node.Metrics())
		}
		if cfg.DataDir != "" && cfg.DPP.PersistPath == "" {
			cfg.DPP.PersistPath = filepath.Join(cfg.DataDir, "dpp.json")
		}
		mgr, err := dpp.NewManager(node, cfg.DPP)
		if err != nil {
			p.persist.close()
			return nil, err
		}
		p.dpp = mgr
	}
	node.Handle(procDirPut, p.handleDirPut)
	node.Handle(procDirGet, p.handleDirGet)
	node.Handle(procAnswer, p.handleAnswer)
	node.Handle(procCount, p.handleCount)
	node.Handle(procPush, p.handlePush)
	node.Handle(procABReduce, p.handleABReduce)
	node.Handle(procDBReduce, p.handleDBReduce)
	node.Handle(procHybridAB, p.handleHybridAB)
	node.Handle(procHybridDB, p.handleHybridDB)
	if cfg.RepublishInterval > 0 {
		p.stopRepub = p.startRepublish(cfg.RepublishInterval)
	}
	return p, nil
}

// startRepublish runs Reannounce roughly every interval (±10% seeded
// jitter) until the returned stop function is called.
func (p *Peer) startRepublish(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		rng := rand.New(rand.NewSource(p.cfg.DHT.Seed + int64(p.id) + 0x4e90))
		for {
			jitter := time.Duration((rng.Float64()*0.2 - 0.1) * float64(interval))
			t := time.NewTimer(interval + jitter)
			select {
			case <-done:
				t.Stop()
				return
			case <-t.C:
			}
			p.Reannounce()
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// replayState rebuilds the in-memory maps from the journal. Records
// replay in order, so a later record for the same document id or
// directory key wins — the same last-writer-wins the maps had live.
func (p *Peer) replayState(recs []stateRecord) error {
	for _, rec := range recs {
		switch rec.Kind {
		case "doc":
			doc, err := xmltree.ParseBytes(rec.XML)
			if err != nil {
				return fmt.Errorf("kadop: replay doc %d (%s): %w", rec.ID, rec.URI, err)
			}
			id := sid.DocID(rec.ID)
			p.docs[id] = doc
			p.uris[id] = rec.URI
			if rec.Dtype != "" {
				p.docTypes[id] = rec.Dtype
			}
			if id >= p.nextDoc {
				p.nextDoc = id + 1
			}
		case "undoc":
			id := sid.DocID(rec.ID)
			delete(p.docs, id)
			delete(p.uris, id)
			delete(p.docTypes, id)
		case "dir":
			p.dir[rec.Key] = append([]byte(nil), rec.Blob...)
		default:
			return fmt.Errorf("kadop: replay: unknown record kind %q", rec.Kind)
		}
	}
	return nil
}

// AttachStore hands the peer ownership of the index store backing its
// node; Close will close it after the node stops serving. The facade
// constructors that build the store themselves (NewTCPPeer) use this.
func (p *Peer) AttachStore(c io.Closer) { p.ownedStore = c }

// Close shuts the peer down: the DHT node stops serving, then the
// index store flushes and closes (checkpointing its WAL), then the
// peer-state journal closes. A durable peer can be restarted from its
// DataDir afterwards.
func (p *Peer) Close() error {
	if p.stopRepub != nil {
		p.stopRepub()
	}
	p.ctrl.Stop()
	var err error
	if p.cfg.DataDir != "" {
		err = p.stats.Save(filepath.Join(p.cfg.DataDir, "stats.json"))
	}
	if cerr := p.node.Close(); err == nil {
		err = cerr
	}
	if p.ownedStore != nil {
		if cerr := p.ownedStore.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := p.persist.close(); err == nil {
		err = cerr
	}
	return err
}

// Leave departs the overlay gracefully: the peer's index slice is
// handed to the keys' remaining owners (dht.Node.Leave), then the peer
// shuts down as Close does. It returns the number of keys for which a
// complete remote replica was confirmed before departure. A durable
// peer keeps its local state and can rejoin later with Join + Resync;
// the handoff only ensures the overlay does not lose data while it is
// away.
func (p *Peer) Leave(ctx context.Context) (int, error) {
	if p.stopRepub != nil {
		p.stopRepub()
	}
	// Stop promoting before handing off: a controller pushing copies
	// mid-departure would race the handoff's ownership view.
	p.ctrl.Stop()
	p.handoffDir(ctx)
	moved, err := p.node.Leave(ctx)
	if cerr := p.Close(); err == nil {
		err = cerr
	}
	return moved, err
}

// handoffDir pushes every directory entry this peer is home for to the
// entry's remaining owners before departure. Directory entries live in
// the peer-level side map (see dirPut), not the DHT store, so
// dht.Node.Leave does not cover them — without this step a graceful
// leave can drop the last replica of a peer-address or document entry
// and break phase-two resolution even though every index key survived.
// Best-effort per entry: an unreachable heir must not block departure.
func (p *Peer) handoffDir(ctx context.Context) int {
	p.mu.Lock()
	dir := make(map[string][]byte, len(p.dir))
	for k, v := range p.dir {
		dir[k] = v
	}
	p.mu.Unlock()
	self := p.node.Self().ID
	moved := 0
	for key, blob := range dir {
		cands, err := p.node.LookupContext(ctx, dht.KeyID(key))
		if err != nil {
			continue
		}
		// As in dht.Node.Leave, the departing peer is not an owner: the
		// entry's new home is the K-closest among the peers staying.
		heirs := cands[:0]
		for _, c := range cands {
			if c.ID != self {
				heirs = append(heirs, c)
			}
		}
		if r := p.cfg.DHT.Replication; r > 0 && len(heirs) > r {
			heirs = heirs[:r]
		}
		ok := false
		for _, h := range heirs {
			if _, err := p.node.CallProcOnContext(ctx, h, key, procDirPut, blob); err == nil {
				ok = true
			}
		}
		if ok {
			moved++
		}
	}
	return moved
}

// Resync pulls appends this peer's index slice missed while it was
// down: for every term held locally, replicas with more postings are
// fetched and merged (see dht.Node.ResyncOnce). Call it after Join when
// restarting from a data directory. The returned count is the number of
// terms that grew.
func (p *Peer) Resync(ctx context.Context) (int, error) {
	return p.node.ResyncOnce(ctx)
}

// Reannounce re-registers everything other peers resolve through the
// directory: the peer's own address and the Doc entries of its
// published documents. A restarted peer calls it (after Join) because
// its address entry may be stale and the home peers of its document
// keys may themselves have restarted without durable state.
func (p *Peer) Reannounce() error {
	if err := p.Announce(); err != nil {
		return err
	}
	p.mu.Lock()
	uris := make(map[sid.DocID]string, len(p.uris))
	for id, uri := range p.uris {
		uris[id] = uri
	}
	p.mu.Unlock()
	for id, uri := range uris {
		key := sid.DocKey{Peer: p.id, Doc: id}
		if err := p.dirPut(docKey(key), []byte(uri)); err != nil {
			return fmt.Errorf("kadop: reannounce doc %d: %w", id, err)
		}
	}
	return nil
}

// Announce registers the peer in the distributed Peer relation so
// other peers can resolve its internal identifier to a network address.
// Call it once the overlay is in place (after every peer that may be
// home for the entry has been created); publishing and phase-two query
// processing rely on it.
func (p *Peer) Announce() error {
	if err := p.dirPut(peerKey(p.id), []byte(p.node.Self().Addr)); err != nil {
		return fmt.Errorf("kadop: register peer %d: %w", p.id, err)
	}
	return nil
}

// Node returns the peer's DHT node.
func (p *Peer) Node() *dht.Node { return p.node }

// ID returns the peer's internal identifier.
func (p *Peer) ID() sid.PeerID { return p.id }

// DPP returns the peer's DPP manager (nil when disabled).
func (p *Peer) DPP() *dpp.Manager { return p.dpp }

// Replicator returns the peer's adaptive replication controller (nil
// when disabled); experiments with synthetic clocks drive its Tick.
func (p *Peer) Replicator() *replicate.Controller { return p.ctrl }

// Stats returns the peer's statistics registry: per-term cardinalities
// from its publish path and join selectivities learned from its
// completed queries. Served at /debug/stats and as kadop_stats_* on
// /metrics by the admin endpoint.
func (p *Peer) Stats() *stats.Registry { return p.stats }

// BlockCache returns the peer's posting-block cache, or nil when
// caching (or DPP) is disabled.
func (p *Peer) BlockCache() *blockcache.Cache {
	if p.dpp == nil {
		return nil
	}
	return p.dpp.Cache()
}

func peerKey(id sid.PeerID) string { return fmt.Sprintf("peer:%d", id) }
func docKey(k sid.DocKey) string   { return fmt.Sprintf("doc:%d:%d", k.Peer, k.Doc) }

// directory --------------------------------------------------------

// dirPut stores a small directory entry at the home peers of key. It
// implements the Peer and Doc relations of the data model. With DHT
// replication enabled the entry lands on every replica owner, so
// address resolution survives the loss of the primary.
func (p *Peer) dirPut(key string, blob []byte) error {
	_, err := p.node.CallProcOwners(key, procDirPut, blob)
	return err
}

// dirGet retrieves a directory entry from any reachable replica owner.
func (p *Peer) dirGet(ctx context.Context, key string) ([]byte, error) {
	return p.node.CallProcAnyContext(ctx, key, procDirGet, nil)
}

func (p *Peer) handleDirPut(_ context.Context, _ dht.Contact, key string, blob []byte) ([]byte, error) {
	p.mu.Lock()
	p.dir[key] = append([]byte(nil), blob...)
	p.mu.Unlock()
	// Journal before acknowledging: a directory entry this peer is home
	// for must survive its restart.
	return nil, p.persist.append(stateRecord{Kind: "dir", Key: key, Blob: blob})
}

func (p *Peer) handleDirGet(_ context.Context, _ dht.Contact, key string, _ []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	blob, ok := p.dir[key]
	if !ok {
		return nil, fmt.Errorf("kadop: no directory entry for %q", key)
	}
	return blob, nil
}

// contactOf resolves a peer's internal identifier to its DHT contact.
func (p *Peer) contactOf(ctx context.Context, id sid.PeerID) (dht.Contact, error) {
	if id == p.id {
		return p.node.Self(), nil
	}
	blob, err := p.dirGet(ctx, peerKey(id))
	if err != nil {
		return dht.Contact{}, fmt.Errorf("kadop: resolve peer %d: %w", id, err)
	}
	addr := string(blob)
	return dht.Contact{ID: dht.PeerIDFromSeed(addr), Addr: addr}, nil
}

// publishing --------------------------------------------------------

// Publish checks a parsed document into the collection: the document
// stays at this peer, its term postings are routed to their home peers
// (through the DPP when enabled), and its URI is registered in the Doc
// relation. It returns the document's global key.
func (p *Peer) Publish(doc *xmltree.Document, uri string) (sid.DocKey, error) {
	return p.PublishTyped(doc, uri, "")
}

// PublishTyped is Publish for a document with a user-specified type
// (Section 4.1). With the DPP enabled, the type is recorded in the
// conditions of the blocks receiving the document's postings, and
// type-constrained queries skip blocks of other types.
func (p *Peer) PublishTyped(doc *xmltree.Document, uri, dtype string) (sid.DocKey, error) {
	p.mu.Lock()
	id := p.nextDoc
	p.nextDoc++
	p.docs[id] = doc
	p.uris[id] = uri
	if dtype != "" {
		p.docTypes[id] = dtype
	}
	p.mu.Unlock()
	return p.indexDoc(id, doc, uri, dtype)
}

// indexDoc routes a registered document's postings into the
// distributed index and records its URI in the Doc relation.
func (p *Peer) indexDoc(id sid.DocID, doc *xmltree.Document, uri, dtype string) (sid.DocKey, error) {
	key := sid.DocKey{Peer: p.id, Doc: id}
	tps := xmltree.Extract(doc, p.id, id, p.cfg.Extract)
	// Batch postings per term (Section 3: buffering postings of the same
	// term cuts per-posting routing costs).
	byTerm := map[string]postings.List{}
	for _, tp := range tps {
		k := tp.Term.Key()
		byTerm[k] = append(byTerm[k], tp.Posting)
	}
	if err := p.appendTerms(byTerm, nil, dtype, indexFanOut); err != nil {
		return key, fmt.Errorf("kadop: publish %q: %w", uri, err)
	}
	if err := p.dirPut(docKey(key), []byte(uri)); err != nil {
		return key, err
	}
	return key, nil
}

// indexFanOut bounds the concurrent term appends of one publish. Terms
// hash to independent home peers, so a document's appends are parallel
// work; at the home stores the concurrency is what lets the write
// coalescer form large group commits. The bound keeps one wide
// document from flooding the overlay.
const indexFanOut = 8

// batchFanOut is the append fan-out of the bulk-publish path. A batch
// has already merged its postings per term, so its appends are fewer
// and larger than a per-doc publish's — and with a lingering coalescer
// at the home stores (BatchingConfig.MaxDelay) an append spends most
// of its life parked in a store's batch queue, so the bulk path must
// keep many more in flight than indexFanOut to keep every store's
// collection window fed.
const batchFanOut = 32

// appendTerms routes per-term posting groups into the distributed
// index, at most fanOut appends in flight, and feeds the
// publisher-side statistics. docsGained[term] is the number of
// documents contributing to term; nil means one document (the
// single-publish paths). Lists are sorted in place. The first append
// error wins; remaining in-flight appends still drain.
func (p *Peer) appendTerms(byTerm map[string]postings.List, docsGained map[string]int, dtype string, fanOut int) error {
	sem := make(chan struct{}, fanOut)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for term, list := range byTerm {
		list.Sort()
		sem <- struct{}{}
		wg.Add(1)
		go func(term string, list postings.List) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := p.appendIndex(term, list, dtype); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("index %q: %w", term, err)
				}
				errMu.Unlock()
				return
			}
			// Statistics update at the publisher: summing registries
			// across the cluster yields the exact global cardinalities.
			docs := int64(1)
			if docsGained != nil {
				docs = int64(docsGained[term])
			}
			p.stats.ObservePublish(term, docs, int64(len(list)))
		}(term, list)
	}
	wg.Wait()
	return firstErr
}

// appendIndex routes one term's postings into the distributed index.
func (p *Peer) appendIndex(term string, list postings.List, dtype string) error {
	if p.dpp != nil {
		return p.dpp.AppendTyped(term, list, dtype)
	}
	return p.node.Append(term, list)
}

// PublishAt indexes a document under an explicit document identifier.
// The Fundex machinery (Section 6) uses it to index a functional
// document under its functional id (p, h'(w)) instead of a sequential
// id; the document is retained locally so phase-two evaluation can
// serve answers from it.
func (p *Peer) PublishAt(id sid.DocID, doc *xmltree.Document, uri string) (sid.DocKey, error) {
	p.mu.Lock()
	if _, dup := p.docs[id]; dup {
		p.mu.Unlock()
		return sid.DocKey{Peer: p.id, Doc: id}, fmt.Errorf("kadop: document id %d already in use", id)
	}
	p.docs[id] = doc
	p.uris[id] = uri
	p.mu.Unlock()
	key := sid.DocKey{Peer: p.id, Doc: id}

	tps := xmltree.Extract(doc, p.id, id, p.cfg.Extract)
	byTerm := map[string]postings.List{}
	for _, tp := range tps {
		k := tp.Term.Key()
		byTerm[k] = append(byTerm[k], tp.Posting)
	}
	if err := p.appendTerms(byTerm, nil, "", indexFanOut); err != nil {
		return key, fmt.Errorf("kadop: publish %q: %w", uri, err)
	}
	if err := p.dirPut(docKey(key), []byte(uri)); err != nil {
		return key, err
	}
	return key, nil
}

// PublishXML parses and publishes an XML document held as bytes. On a
// durable peer (Config.DataDir) the raw bytes are journaled before
// indexing, so a restarted peer serves the document again without a
// republish.
func (p *Peer) PublishXML(raw []byte, uri string) (sid.DocKey, error) {
	return p.PublishXMLTyped(raw, uri, "")
}

// PublishXMLTyped is PublishXML with a document type (Section 4.1).
func (p *Peer) PublishXMLTyped(raw []byte, uri, dtype string) (sid.DocKey, error) {
	doc, err := xmltree.ParseBytes(raw)
	if err != nil {
		return sid.DocKey{}, fmt.Errorf("kadop: publish %q: %w", uri, err)
	}
	p.mu.Lock()
	id := p.nextDoc
	p.nextDoc++
	p.docs[id] = doc
	p.uris[id] = uri
	if dtype != "" {
		p.docTypes[id] = dtype
	}
	p.mu.Unlock()
	// Journal before indexing: if the crash lands mid-index, the
	// restarted peer still holds the document and Reannounce + replica
	// repair re-derive the rest; the reverse order would leave index
	// postings pointing at a document nobody can serve.
	if err := p.persist.append(stateRecord{Kind: "doc", ID: uint32(id), URI: uri, Dtype: dtype, XML: raw}); err != nil {
		return sid.DocKey{Peer: p.id, Doc: id}, err
	}
	return p.indexDoc(id, doc, uri, dtype)
}

// BatchDoc is one document of a PublishXMLBatch bulk publish.
type BatchDoc struct {
	XML   []byte
	URI   string
	Dtype string // optional document type (Section 4.1)
}

// PublishXMLBatch publishes many XML documents as one bulk operation.
// It has the same outcome as calling PublishXML per document, but the
// costs amortise across the batch:
//
//   - on a durable peer the whole batch journals with a single write
//     and a single fsync (a crash mid-journal recovers a prefix of the
//     batch, each document whole);
//   - postings merge per term across the batch, so a term appearing in
//     k documents costs one index append instead of k;
//   - the merged appends fan out concurrently, and with store batching
//     enabled (Config.Batching) the home peers group-commit them.
//
// All documents must parse; a parse failure rejects the batch before
// any state changes. Index errors are reported after the documents are
// registered and journaled, exactly as a failed PublishXML leaves the
// document held locally for Reannounce and repair to finish the job.
func (p *Peer) PublishXMLBatch(docs []BatchDoc) ([]sid.DocKey, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	parsed := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		doc, err := xmltree.ParseBytes(d.XML)
		if err != nil {
			return nil, fmt.Errorf("kadop: publish %q: %w", d.URI, err)
		}
		parsed[i] = doc
	}
	keys := make([]sid.DocKey, len(docs))
	recs := make([]stateRecord, len(docs))
	uris := make([]string, len(docs))
	dtypes := make([]string, len(docs))
	p.mu.Lock()
	for i, d := range docs {
		id := p.nextDoc
		p.nextDoc++
		p.docs[id] = parsed[i]
		p.uris[id] = d.URI
		if d.Dtype != "" {
			p.docTypes[id] = d.Dtype
		}
		keys[i] = sid.DocKey{Peer: p.id, Doc: id}
		recs[i] = stateRecord{Kind: "doc", ID: uint32(id), URI: d.URI, Dtype: d.Dtype, XML: d.XML}
		uris[i] = d.URI
		dtypes[i] = d.Dtype
	}
	p.mu.Unlock()
	// Journal the whole batch before indexing (one write, one fsync):
	// same ordering rationale as PublishXML — a crash mid-index leaves
	// documents someone can still serve, never postings pointing at
	// documents nobody holds.
	if err := p.persist.appendMany(recs); err != nil {
		return keys, err
	}
	return keys, p.batchIndex(parsed, keys, uris, dtypes)
}

// TreeDoc is one document of a PublishBatch bulk publish: already
// parsed, with its URI and optional type.
type TreeDoc struct {
	Doc   *xmltree.Document
	URI   string
	Dtype string
}

// PublishBatch is the parsed-document counterpart of PublishXMLBatch:
// the bulk form of Publish/PublishTyped. Like those, it does not
// journal document bytes (there are none); postings merge per term
// across the batch and the merged appends fan out concurrently, so a
// term appearing in k documents costs one index append instead of k —
// with store batching enabled the home peers group-commit what is
// left.
func (p *Peer) PublishBatch(docs []TreeDoc) ([]sid.DocKey, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	parsed := make([]*xmltree.Document, len(docs))
	keys := make([]sid.DocKey, len(docs))
	uris := make([]string, len(docs))
	dtypes := make([]string, len(docs))
	p.mu.Lock()
	for i, d := range docs {
		id := p.nextDoc
		p.nextDoc++
		p.docs[id] = d.Doc
		p.uris[id] = d.URI
		if d.Dtype != "" {
			p.docTypes[id] = d.Dtype
		}
		parsed[i] = d.Doc
		keys[i] = sid.DocKey{Peer: p.id, Doc: id}
		uris[i] = d.URI
		dtypes[i] = d.Dtype
	}
	p.mu.Unlock()
	return keys, p.batchIndex(parsed, keys, uris, dtypes)
}

// batchIndex routes the postings of a batch of already-registered
// documents into the distributed index, merged per term across the
// batch, then records the URIs in the Doc relation. Appends carry the
// document type into the DPP block conditions, so only documents of
// the same type may share one append.
func (p *Peer) batchIndex(parsed []*xmltree.Document, keys []sid.DocKey, uris, dtypes []string) error {
	type termGroup struct {
		list postings.List
		docs int
	}
	groups := map[string]map[string]*termGroup{} // dtype -> term -> group
	for i := range parsed {
		byType := groups[dtypes[i]]
		if byType == nil {
			byType = map[string]*termGroup{}
			groups[dtypes[i]] = byType
		}
		for _, tp := range xmltree.Extract(parsed[i], p.id, keys[i].Doc, p.cfg.Extract) {
			k := tp.Term.Key()
			g := byType[k]
			if g == nil {
				g = &termGroup{}
				byType[k] = g
			}
			if len(g.list) == 0 || g.list[len(g.list)-1].Doc != keys[i].Doc {
				g.docs++
			}
			g.list = append(g.list, tp.Posting)
		}
	}
	for dtype, byType := range groups {
		byTerm := make(map[string]postings.List, len(byType))
		docsGained := make(map[string]int, len(byType))
		for term, g := range byType {
			byTerm[term] = g.list
			docsGained[term] = g.docs
		}
		if err := p.appendTerms(byTerm, docsGained, dtype, batchFanOut); err != nil {
			return fmt.Errorf("kadop: publish batch: %w", err)
		}
	}
	for i, key := range keys {
		if err := p.dirPut(docKey(key), []byte(uris[i])); err != nil {
			return err
		}
	}
	return nil
}

// Unpublish removes a document from the collection: its postings are
// deleted from the index and the document is dropped. Modification is
// deletion followed by re-publication, as in the paper.
func (p *Peer) Unpublish(id sid.DocID) error {
	p.mu.Lock()
	doc := p.docs[id]
	delete(p.docs, id)
	delete(p.uris, id)
	delete(p.docTypes, id)
	p.mu.Unlock()
	if doc == nil {
		return fmt.Errorf("kadop: no local document %d", id)
	}
	if err := p.persist.append(stateRecord{Kind: "undoc", ID: uint32(id)}); err != nil {
		return err
	}
	tps := xmltree.Extract(doc, p.id, id, p.cfg.Extract)
	byTerm := map[string]postings.List{}
	for _, tp := range tps {
		byTerm[tp.Term.Key()] = append(byTerm[tp.Term.Key()], tp.Posting)
	}
	for term, list := range byTerm {
		if p.dpp != nil {
			if err := p.dpp.Delete(term, list); err != nil {
				return err
			}
			continue
		}
		for _, posting := range list {
			if err := p.node.Delete(term, posting); err != nil {
				return err
			}
		}
	}
	return nil
}

// Document returns a locally stored document.
func (p *Peer) Document(id sid.DocID) (*xmltree.Document, string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.docs[id]
	return d, p.uris[id], ok
}

// DocumentCount returns the number of locally published documents.
func (p *Peer) DocumentCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.docs)
}

// URI resolves any document key in the collection to its URI via the
// Doc relation.
func (p *Peer) URI(k sid.DocKey) (string, error) {
	blob, err := p.dirGet(context.Background(), docKey(k))
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// handleAnswer serves phase-two query evaluation: given a query and a
// set of local document ids, it evaluates the full tree pattern on the
// stored documents and returns the answer tuples.
func (p *Peer) handleAnswer(ctx context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	queryText, pos, err := readStr(blob, 0)
	if err != nil {
		return nil, err
	}
	keys, err := decodeDocKeys(blob[pos:])
	if err != nil {
		return nil, err
	}
	q, err := pattern.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("kadop: answer: %w", err)
	}
	// Evaluation work is measured locally and shipped back in the
	// response trailer, so the querying peer's cost accumulator covers
	// phase two even though it runs here.
	counters := new(cost.Counters)
	mctx := cost.NewContext(ctx, counters)
	var all []twigjoin.Match
	for _, k := range keys {
		p.mu.Lock()
		doc := p.docs[k.Doc]
		p.mu.Unlock()
		if doc == nil || k.Peer != p.id {
			continue
		}
		for _, m := range pattern.MatchDocumentContext(mctx, q, doc, k) {
			ps := make([]sid.Posting, len(m.Elements))
			for i, e := range m.Elements {
				ps[i] = sid.Posting{Peer: k.Peer, Doc: k.Doc, SID: e}
			}
			all = append(all, twigjoin.Match{Doc: k, Postings: ps})
		}
	}
	snap := counters.Snapshot()
	if sp := trace.FromContext(ctx); sp != nil {
		// The joined server span shows where the evaluation effort went
		// when client and server share a tracer (sim clusters).
		sp.SetInt("docs-evaluated", snap.DocsEvaluated)
		sp.SetInt("elements-scanned", snap.ElementsScanned)
		sp.SetInt("matches", int64(len(all)))
	}
	return appendAnswerStats(encodeMatches(all), answerStats{
		docsEvaluated:   snap.DocsEvaluated,
		elementsScanned: snap.ElementsScanned,
	}), nil
}
