package kadop

import (
	"kadop/internal/metrics"
	"kadop/internal/obs/querylog"
	"kadop/internal/pattern"
)

// logSnapshot captures the collector state a query log record is
// computed against: the deltas around one query are that query's
// traffic (exact in a single-query process, approximate when
// concurrent queries share the collector).
type logSnapshot struct {
	classBytes map[metrics.Class]int64
	retries    int64
	timeouts   int64
	findNodes  int64
}

func (p *Peer) logSnapshot() logSnapshot {
	col := p.node.Metrics()
	return logSnapshot{
		classBytes: col.ClassBytes(),
		retries:    col.Events(metrics.EventRetry),
		timeouts:   col.Events(metrics.EventTimeout),
		findNodes:  col.Hist(metrics.OpRPCFindNode).Count(),
	}
}

// buildLogRecord turns one query's outcome plus the collector deltas
// into a flat querylog.Record.
func (p *Peer) buildLogRecord(q *pattern.Query, opts QueryOptions, snap logSnapshot, res *Result, err error) querylog.Record {
	col := p.node.Metrics()
	rec := querylog.Record{
		Query:     q.String(),
		Strategy:  opts.Strategy.String(),
		IndexOnly: opts.IndexOnly,
		Retries:   col.Events(metrics.EventRetry) - snap.retries,
		Timeouts:  col.Events(metrics.EventTimeout) - snap.timeouts,
		Hops:      col.Hist(metrics.OpRPCFindNode).Count() - snap.findNodes,
	}
	now := col.ClassBytes()
	rec.PostingBytes = now[metrics.Postings] - snap.classBytes[metrics.Postings]
	rec.FilterBytes = now[metrics.Filters] - snap.classBytes[metrics.Filters]
	rec.RoutingBytes = now[metrics.Routing] - snap.classBytes[metrics.Routing]
	if err != nil {
		rec.Err = err.Error()
	}
	if res == nil {
		return rec
	}
	rec.IndexNS = res.IndexTime.Nanoseconds()
	rec.FirstAnswerNS = res.FirstAnswer.Nanoseconds()
	rec.TotalNS = res.Total.Nanoseconds()
	if d := res.Total - res.IndexTime; d > 0 && !opts.IndexOnly {
		rec.SecondPhaseNS = d.Nanoseconds()
	}
	// Cache hits and block counts come from the DPP fetch plans: exact
	// per query, unlike the collector's shared event counters.
	for _, pl := range res.Plans {
		if pl == nil {
			continue
		}
		rec.CacheHits += pl.CacheHits
		rec.BlocksFetched += pl.Fetched
	}
	rec.IndexMatches = res.IndexMatches
	rec.CandidateDocs = len(res.Docs)
	rec.Answers = len(res.Matches)
	rec.Incomplete = res.Incomplete
	rec.FailedPeers = res.FailedPeers
	return rec
}
