package kadop

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/twigjoin"
	"kadop/internal/xmltree"
)

// cluster is a simulated KadoP deployment.
type cluster struct {
	net   *dht.Network
	peers []*Peer
}

func newCluster(t testing.TB, n int, cfg Config) *cluster {
	t.Helper()
	c := &cluster{net: dht.NewNetwork()}
	var nodes []*dht.Node
	for i := 0; i < n; i++ {
		node, err := dht.NewNode(c.net.NewEndpoint(), store.NewMem(), dht.Config{})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range nodes {
		p, err := NewPeer(nd, sid.PeerID(i+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.peers = append(c.peers, p)
	}
	for _, p := range c.peers {
		if err := p.Announce(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// dblpDocs is a small corpus exercising the paper's queries.
var dblpDocs = []string{
	`<dblp><article><author>Jeffrey Ullman</author><title>Principles of database systems</title></article></dblp>`,
	`<dblp><article><author>Serge Abiteboul</author><title>Querying XML</title></article>
	 <article><author>Jeffrey Ullman</author><title>Data on the web</title></article></dblp>`,
	`<dblp><inproceedings><author>Jeffrey Ullman</author><title>A survey</title></inproceedings></dblp>`,
	`<dblp><article><author>Ioana Manolescu</author><title>XML processing in DHT networks</title></article></dblp>`,
	`<catalog><book><title>No authors in this one</title></book></catalog>`,
}

// publishAll distributes the corpus round-robin over the peers and
// returns the ground-truth evaluator.
func publishAll(t testing.TB, c *cluster, docs []string) func(q *pattern.Query) []twigjoin.Match {
	t.Helper()
	type stored struct {
		key sid.DocKey
		doc *xmltree.Document
	}
	var all []stored
	for i, src := range docs {
		p := c.peers[i%len(c.peers)]
		d, err := xmltree.ParseBytes([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		key, err := p.Publish(d, fmt.Sprintf("doc%d.xml", i))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, stored{key, d})
	}
	return func(q *pattern.Query) []twigjoin.Match {
		var out []twigjoin.Match
		for _, s := range all {
			for _, m := range pattern.MatchDocument(q, s.doc, s.key) {
				ps := make([]sid.Posting, len(m.Elements))
				for i, e := range m.Elements {
					ps[i] = sid.Posting{Peer: s.key.Peer, Doc: s.key.Doc, SID: e}
				}
				out = append(out, twigjoin.Match{Doc: s.key, Postings: ps})
			}
		}
		sortMatches(out)
		return out
	}
}

func sortMatches(ms []twigjoin.Match) {
	sort.Slice(ms, func(i, j int) bool {
		if c := ms[i].Doc.Compare(ms[j].Doc); c != 0 {
			return c < 0
		}
		for k := range ms[i].Postings {
			if k >= len(ms[j].Postings) {
				return false
			}
			if c := ms[i].Postings[k].Compare(ms[j].Postings[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

var paperQueries = []string{
	`//article//author`,
	`//article//author[. contains "Ullman"]`,
	`//article[//title]//author[. contains "Ullman"]`,
	`//article[. contains "Ullman"]`,
	`//dblp//title`,
	`//article//editor`,
}

func checkQueries(t *testing.T, c *cluster, truth func(*pattern.Query) []twigjoin.Match, opts QueryOptions) {
	t.Helper()
	for _, qs := range paperQueries {
		q := pattern.MustParse(qs)
		res, err := c.peers[len(c.peers)-1].Query(q, opts)
		if err != nil {
			t.Fatalf("Query(%s, %v): %v", qs, opts.Strategy, err)
		}
		got := res.Matches
		sortMatches(got)
		want := truth(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %s strategy %v:\n got %d matches %v\nwant %d matches %v",
				qs, opts.Strategy, len(got), got, len(want), want)
		}
	}
}

func TestEndToEndConventional(t *testing.T) {
	c := newCluster(t, 8, Config{})
	truth := publishAll(t, c, dblpDocs)
	checkQueries(t, c, truth, QueryOptions{})
}

func TestEndToEndBlockingGet(t *testing.T) {
	off := false
	c := newCluster(t, 6, Config{Pipelined: &off})
	truth := publishAll(t, c, dblpDocs)
	checkQueries(t, c, truth, QueryOptions{})
}

func TestEndToEndWithDPP(t *testing.T) {
	c := newCluster(t, 8, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 4}})
	truth := publishAll(t, c, dblpDocs)
	checkQueries(t, c, truth, QueryOptions{})
}

func TestEndToEndStrategies(t *testing.T) {
	for _, strat := range []Strategy{ABReducer, DBReducer, BloomReducer, SubQueryReducer} {
		t.Run(strat.String(), func(t *testing.T) {
			c := newCluster(t, 8, Config{})
			truth := publishAll(t, c, dblpDocs)
			checkQueries(t, c, truth, QueryOptions{Strategy: strat})
		})
	}
}

func TestWildcardQuery(t *testing.T) {
	c := newCluster(t, 6, Config{})
	truth := publishAll(t, c, dblpDocs)
	q := pattern.MustParse(`//*[contains(.,'xml')]//title`)
	res, err := c.peers[0].Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matches
	sortMatches(got)
	want := truth(q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wildcard query:\n got %v\nwant %v", got, want)
	}
	if len(got) == 0 {
		t.Error("expected some matches for the wildcard query")
	}
}

func TestIndexOnlyCandidatesSuperset(t *testing.T) {
	c := newCluster(t, 6, Config{})
	truth := publishAll(t, c, dblpDocs)
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	res, err := c.peers[2].Query(q, QueryOptions{IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("IndexOnly should not compute final matches")
	}
	// Every true answer document must be among the candidates.
	cand := map[sid.DocKey]bool{}
	for _, d := range res.Docs {
		cand[d] = true
	}
	for _, m := range truth(q) {
		if !cand[m.Doc] {
			t.Errorf("candidate set missed answer document %v", m.Doc)
		}
	}
	if res.IndexTime <= 0 || res.Total <= 0 {
		t.Error("timings not recorded")
	}
}

func TestStrategiesReduceTraffic(t *testing.T) {
	// A selective keyword over a large list: DB Reducer must ship far
	// fewer posting bytes than the conventional plan (Figure 7(a)/(b)).
	var docs []string
	for i := 0; i < 120; i++ {
		author := "Someone Else"
		if i == 7 || i == 63 {
			author = "Jeffrey Ullman"
		}
		docs = append(docs, fmt.Sprintf(
			`<dblp><article><author>%s</author><title>Paper %d about things</title></article></dblp>`, author, i))
	}
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)

	run := func(strategy Strategy) (postBytes, filterBytes int64, matches int) {
		c := newCluster(t, 8, Config{})
		truth := publishAll(t, c, docs)
		c.net.Collector.Reset()
		res, err := c.peers[3].Query(q, QueryOptions{Strategy: strategy, IndexOnly: true})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		_ = truth
		filt := c.net.Collector.Bytes(metrics.FiltersAB) + c.net.Collector.Bytes(metrics.FiltersDB)
		return c.net.Collector.Bytes(metrics.Postings), filt, res.IndexMatches
	}

	basePost, baseFilt, baseMatches := run(Conventional)
	if baseFilt != 0 {
		t.Errorf("conventional plan should ship no filters, got %d bytes", baseFilt)
	}
	dbPost, dbFilt, dbMatches := run(DBReducer)
	if dbMatches != baseMatches {
		t.Errorf("DB reducer changed the answer: %d vs %d index matches", dbMatches, baseMatches)
	}
	if dbFilt == 0 {
		t.Error("DB reducer shipped no filters")
	}
	if dbPost+dbFilt >= basePost {
		t.Errorf("DB reducer did not reduce traffic: %d+%d vs %d", dbPost, dbFilt, basePost)
	}
}

func TestPublishUnpublish(t *testing.T) {
	c := newCluster(t, 5, Config{})
	p := c.peers[0]
	key, err := p.PublishXML([]byte(`<a><b>hello world</b></a>`), "x.xml")
	if err != nil {
		t.Fatal(err)
	}
	if p.DocumentCount() != 1 {
		t.Fatal("document not stored")
	}
	uri, err := c.peers[3].URI(key)
	if err != nil || uri != "x.xml" {
		t.Fatalf("URI = %q (%v)", uri, err)
	}
	q := pattern.MustParse(`//a//b`)
	res, err := c.peers[2].Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	if err := p.Unpublish(key.Doc); err != nil {
		t.Fatal(err)
	}
	res, err = c.peers[2].Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("matches after unpublish = %d", len(res.Matches))
	}
	if err := p.Unpublish(999); err == nil {
		t.Error("unpublishing a missing doc should fail")
	}
}

func TestPublishBadXML(t *testing.T) {
	c := newCluster(t, 3, Config{})
	if _, err := c.peers[0].PublishXML([]byte("<broken"), "bad.xml"); err == nil {
		t.Fatal("broken XML should fail to publish")
	}
}

func TestProjectIndexQuery(t *testing.T) {
	// Wildcard in the middle: a/*/b becomes a//b.
	q := pattern.MustParse(`//a/*/b`)
	iq, err := ProjectIndexQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(iq.subtrees) != 1 {
		t.Fatalf("subtrees = %d", len(iq.subtrees))
	}
	nodes := iq.subtrees[0].Nodes()
	if len(nodes) != 2 || nodes[0].Term.Text != "a" || nodes[1].Term.Text != "b" {
		t.Fatalf("projection = %v", iq.subtrees[0].String())
	}
	if nodes[1].Axis != pattern.Descendant {
		t.Error("axis through wildcard must relax to descendant")
	}

	// Wildcard root with two branches: splits in two subtrees.
	q = pattern.MustParse(`//*[contains(.,'xml')]//title`)
	iq, err = ProjectIndexQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(iq.subtrees) != 2 {
		t.Fatalf("subtrees = %d", len(iq.subtrees))
	}

	// Fully-wildcard query cannot be projected.
	wq := &pattern.Query{Root: &pattern.Node{Term: xmltree.LabelTerm(pattern.Wildcard)}}
	if _, err := ProjectIndexQuery(wq); err == nil {
		t.Error("wildcard-only query should fail projection")
	}
}

func TestDocIntervalNarrowsDPPFetch(t *testing.T) {
	// One rare term co-occurring with a huge term: the doc interval from
	// the rare term's root should keep the huge term's fetch from
	// transferring most blocks.
	var docs []string
	for i := 0; i < 200; i++ {
		docs = append(docs, fmt.Sprintf(`<dblp><article><author>Person %d</author></article></dblp>`, i))
	}
	// The rare term appears only in one late document.
	docs = append(docs, `<dblp><article><author>Zarathustra</author></article></dblp>`)
	c := newCluster(t, 8, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 64}})
	publishAll(t, c, docs)
	q := pattern.MustParse(`//article//author[. contains "Zarathustra"]`)
	res, err := c.peers[1].Query(q, QueryOptions{IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var authorPlan *dpp.FetchPlan
	for _, pl := range res.Plans {
		if pl.Term == "l:author" {
			authorPlan = pl
		}
	}
	if authorPlan == nil {
		t.Fatal("no fetch plan for l:author")
	}
	if authorPlan.Blocks < 3 {
		t.Fatalf("author list should be partitioned, has %d blocks", authorPlan.Blocks)
	}
	if authorPlan.Fetched >= authorPlan.Blocks {
		t.Errorf("doc-interval filter fetched %d of %d blocks", authorPlan.Fetched, authorPlan.Blocks)
	}
	if len(res.Docs) != 1 {
		t.Errorf("candidates = %v", res.Docs)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	ms := []twigjoin.Match{
		{Doc: sid.DocKey{Peer: 1, Doc: 2}, Postings: []sid.Posting{
			{Peer: 1, Doc: 2, SID: sid.SID{Start: 1, End: 4, Level: 0}},
			{Peer: 1, Doc: 2, SID: sid.SID{Start: 2, End: 3, Level: 1}},
		}},
		{Doc: sid.DocKey{Peer: 3, Doc: 4}},
	}
	got, err := decodeMatches(encodeMatches(ms))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ms) {
		t.Fatalf("matches round trip: %v vs %v", got, ms)
	}
	keys := []sid.DocKey{{Peer: 1, Doc: 9}, {Peer: 7, Doc: 0}}
	gk, err := decodeDocKeys(encodeDocKeys(keys))
	if err != nil || !reflect.DeepEqual(gk, keys) {
		t.Fatalf("keys round trip: %v (%v)", gk, err)
	}
	// Spec round trip.
	q := pattern.MustParse(`//a//b[//c][. contains "w"]`)
	next := 0
	spec := buildSpec(q.Root, &next)
	dec, _, err := decodeSpec(encodeSpec(nil, spec), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, spec) {
		t.Fatalf("spec round trip: %+v vs %+v", dec, spec)
	}
	// Reduce request round trip.
	req := &reduceReq{session: "s1", queryAddr: "sim://9", abFP: 0.2, dbFP: 0.01,
		filterKind: filterAB, filter: []byte{1, 2, 3}, spec: spec}
	rr, err := decodeReduceReq(req.encode())
	if err != nil {
		t.Fatal(err)
	}
	if rr.session != "s1" || rr.queryAddr != "sim://9" || rr.filterKind != filterAB ||
		!reflect.DeepEqual(rr.filter, req.filter) || !reflect.DeepEqual(rr.spec, spec) {
		t.Fatalf("reduce request round trip: %+v", rr)
	}
	if rr.abFP != 0.2 || rr.dbFP != 0.01 {
		t.Fatalf("fp round trip: %v %v", rr.abFP, rr.dbFP)
	}
}

func TestSubQuerySelectionHeuristic(t *testing.T) {
	c := newCluster(t, 8, Config{})
	// Many titles and authors; "ullman" is rare.
	var docs []string
	for i := 0; i < 30; i++ {
		a := "Common Name"
		if i == 3 {
			a = "Ullman"
		}
		docs = append(docs, fmt.Sprintf(`<dblp><article><title>T%d</title><author>%s</author></article></dblp>`, i, a))
	}
	truth := publishAll(t, c, docs)
	q := pattern.MustParse(`//article[//title]//author[. contains "Ullman"]`)
	res, err := c.peers[1].Query(q, QueryOptions{Strategy: SubQueryReducer})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matches
	sortMatches(got)
	want := truth(q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sub-query reducer:\n got %v\nwant %v", got, want)
	}
}

func TestUnpublishWithDPP(t *testing.T) {
	c := newCluster(t, 8, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 8}})
	p := c.peers[0]
	var keys []sid.DocKey
	for i := 0; i < 10; i++ {
		key, err := p.PublishXML([]byte(fmt.Sprintf(
			`<dblp><article><author>Person %d</author><title>T%d</title></article></dblp>`, i, i)), fmt.Sprintf("d%d.xml", i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	q := pattern.MustParse(`//article//author`)
	res, err := c.peers[3].Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 10 {
		t.Fatalf("before unpublish: %d matches", len(res.Matches))
	}
	for i := 0; i < 5; i++ {
		if err := p.Unpublish(keys[i].Doc); err != nil {
			t.Fatal(err)
		}
	}
	res, err = c.peers[3].Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 {
		t.Fatalf("after unpublish: %d matches, want 5", len(res.Matches))
	}
}

func TestAutoStrategy(t *testing.T) {
	var docs []string
	for i := 0; i < 100; i++ {
		author := "Common Person"
		if i == 42 {
			author = "Jeffrey Ullman"
		}
		docs = append(docs, fmt.Sprintf(
			`<dblp><article><author>%s</author><title>T%d</title></article></dblp>`, author, i))
	}
	c := newCluster(t, 8, Config{})
	truth := publishAll(t, c, docs)

	// Selective query: the rare keyword makes AutoStrategy filter, so
	// posting traffic must be well below the conventional plan's.
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	c.net.Collector.Reset()
	resAuto, err := c.peers[2].Query(q, QueryOptions{Strategy: AutoStrategy, IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	autoBytes := c.net.Collector.Bytes(metrics.Postings)
	c.net.Collector.Reset()
	resConv, err := c.peers[2].Query(q, QueryOptions{IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	convBytes := c.net.Collector.Bytes(metrics.Postings)
	if resAuto.IndexMatches != resConv.IndexMatches {
		t.Fatalf("auto changed the answer: %d vs %d", resAuto.IndexMatches, resConv.IndexMatches)
	}
	if autoBytes >= convBytes {
		t.Errorf("auto (%d B) should undercut conventional (%d B) on a selective query", autoBytes, convBytes)
	}

	// Non-selective query: all lists comparable, AutoStrategy must fall
	// back to the conventional plan (no filter traffic).
	q2 := pattern.MustParse(`//article//title`)
	c.net.Collector.Reset()
	if _, err := c.peers[2].Query(q2, QueryOptions{Strategy: AutoStrategy, IndexOnly: true}); err != nil {
		t.Fatal(err)
	}
	filt := c.net.Collector.Bytes(metrics.FiltersAB) + c.net.Collector.Bytes(metrics.FiltersDB)
	if filt != 0 {
		t.Errorf("auto shipped %d filter bytes on a non-selective query", filt)
	}
	_ = truth
}

func TestAllowPartialOnPeerFailure(t *testing.T) {
	c := newCluster(t, 6, Config{})
	// Two docs at two different peers.
	if _, err := c.peers[0].PublishXML([]byte(`<a><b>one</b></a>`), "d0.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.peers[1].PublishXML([]byte(`<a><b>two</b></a>`), "d1.xml"); err != nil {
		t.Fatal(err)
	}
	q := pattern.MustParse(`//a//b`)
	res, err := c.peers[4].Query(q, QueryOptions{})
	if err != nil || len(res.Matches) != 2 {
		t.Fatalf("healthy query: %d matches (%v)", len(res.Matches), err)
	}
	// Kill peer 0: its document's answers become unreachable.
	c.net.Partition(c.peers[0].Node().Self().Addr)

	if _, err := c.peers[4].Query(q, QueryOptions{}); err == nil {
		t.Fatal("strict query should fail when a document peer is down")
	}
	res, err = c.peers[4].Query(q, QueryOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete || res.FailedPeers != 1 {
		t.Fatalf("partial result flags: incomplete=%v failed=%d", res.Incomplete, res.FailedPeers)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("partial matches = %d, want 1 (the surviving peer's)", len(res.Matches))
	}
}

func TestTypeFilteringSkipsBlocks(t *testing.T) {
	c := newCluster(t, 8, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 32}})
	// Two document types sharing the author term; the booktitle term
	// exists only in proceedings-type documents.
	for i := 0; i < 60; i++ {
		var doc, dtype string
		if i%2 == 0 {
			doc = fmt.Sprintf(`<dblp><article><author>Person %d</author><journal>J</journal></article></dblp>`, i)
			dtype = "journal-article"
		} else {
			doc = fmt.Sprintf(`<dblp><inproceedings><author>Person %d</author><booktitle>C</booktitle></inproceedings></dblp>`, i)
			dtype = "proceedings"
		}
		d, err := xmltree.ParseBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.peers[i%len(c.peers)].PublishTyped(d, fmt.Sprintf("d%d.xml", i), dtype); err != nil {
			t.Fatal(err)
		}
	}
	// author appears in both types, booktitle only in proceedings: the
	// automatic intersection restricts author's fetch to proceedings
	// blocks.
	q := pattern.MustParse(`//inproceedings[//booktitle]//author`)
	res, err := c.peers[1].Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 30 {
		t.Fatalf("matches = %d, want 30", len(res.Matches))
	}
	// Explicit type constraint excluding every document: nothing fetched.
	res, err = c.peers[1].Query(q, QueryOptions{DocType: "no-such-type", IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 0 {
		t.Fatalf("type-excluded query returned %d docs", len(res.Docs))
	}
	for _, pl := range res.Plans {
		if pl.Fetched != 0 {
			t.Errorf("term %s fetched %d blocks despite type exclusion", pl.Term, pl.Fetched)
		}
	}
}

func TestParallelJoinMatchesSequential(t *testing.T) {
	c := newCluster(t, 10, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 16}, Parallel: 2})
	var docs []string
	for i := 0; i < 80; i++ {
		author := fmt.Sprintf("Person %d", i)
		if i%9 == 0 {
			author = "Jeffrey Ullman"
		}
		docs = append(docs, fmt.Sprintf(
			`<dblp><article><author>%s</author><title>T%d</title></article></dblp>`, author, i))
	}
	truth := publishAll(t, c, docs)
	for _, qs := range []string{
		`//article//author[. contains "Ullman"]`,
		`//article//author`,
		`//dblp[//title]//author`,
	} {
		q := pattern.MustParse(qs)
		want := truth(q)
		seq, err := c.peers[1].Query(q, QueryOptions{})
		if err != nil {
			t.Fatalf("%s sequential: %v", qs, err)
		}
		par, err := c.peers[1].Query(q, QueryOptions{ParallelJoin: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", qs, err)
		}
		sortMatches(seq.Matches)
		sortMatches(par.Matches)
		if !reflect.DeepEqual(seq.Matches, want) {
			t.Fatalf("%s: sequential diverges from ground truth", qs)
		}
		if !reflect.DeepEqual(par.Matches, want) {
			t.Fatalf("%s: parallel join diverges: %d vs %d matches", qs, len(par.Matches), len(want))
		}
		if par.IndexMatches != seq.IndexMatches {
			t.Errorf("%s: index matches differ: %d vs %d", qs, par.IndexMatches, seq.IndexMatches)
		}
	}
}

func TestParallelJoinVectorCuts(t *testing.T) {
	// cutVectors produces disjoint, covering, whole-document ranges.
	root := &dpp.Root{Blocks: []dpp.BlockRef{
		{Lo: sid.Posting{Peer: 1, Doc: 0}, Hi: sid.Posting{Peer: 1, Doc: 10}},
		{Lo: sid.Posting{Peer: 1, Doc: 10}, Hi: sid.Posting{Peer: 1, Doc: 25}},
		{Lo: sid.Posting{Peer: 1, Doc: 26}, Hi: sid.Posting{Peer: 2, Doc: 4}},
		{Lo: sid.Posting{Peer: 2, Doc: 5}, Hi: sid.Posting{Peer: 3, Doc: 0}},
	}}
	lo := sid.DocKey{Peer: 1, Doc: 3}
	hi := sid.DocKey{Peer: 2, Doc: 50}
	for _, maxV := range []int{1, 2, 3, 8} {
		vs := cutVectors(root, lo, hi, maxV)
		if len(vs) == 0 || len(vs) > maxV {
			t.Fatalf("maxV=%d: %d vectors", maxV, len(vs))
		}
		if vs[0].lo != lo || vs[len(vs)-1].hi != hi {
			t.Fatalf("maxV=%d: vectors do not span [%v,%v]: %v", maxV, lo, hi, vs)
		}
		for i := 1; i < len(vs); i++ {
			prev := vs[i-1].hi
			next := sid.DocKey{Peer: prev.Peer, Doc: prev.Doc + 1}
			if vs[i].lo != next {
				t.Fatalf("maxV=%d: gap or overlap between %v and %v", maxV, vs[i-1], vs[i])
			}
		}
	}
}

func TestPeerAccessorsAndPublishAt(t *testing.T) {
	c := newCluster(t, 5, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 64}})
	p := c.peers[0]
	if p.ID() != 1 {
		t.Errorf("ID = %d", p.ID())
	}
	if p.DPP() == nil {
		t.Error("DPP manager should be set")
	}
	d, err := xmltree.ParseBytes([]byte(`<a><b>explicit id</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	key, err := p.PublishAt(4242, d, "explicit.xml")
	if err != nil {
		t.Fatal(err)
	}
	if key.Doc != 4242 {
		t.Errorf("key = %v", key)
	}
	got, uri, ok := p.Document(4242)
	if !ok || got != d || uri != "explicit.xml" {
		t.Fatalf("Document(4242) = %v %q %v", got, uri, ok)
	}
	// Duplicate explicit id is rejected.
	if _, err := p.PublishAt(4242, d, "dup.xml"); err == nil {
		t.Error("duplicate PublishAt id should fail")
	}
	// And it is queryable end to end.
	res, err := c.peers[2].Query(pattern.MustParse(`//a//b[. contains "explicit"]`), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
}

func TestStrategiesComposeWithDPP(t *testing.T) {
	// listFor pulls DPP blocks back to the home peer; the strategies
	// must still compute exact answers over partitioned lists.
	c := newCluster(t, 8, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 8}})
	var docs []string
	for i := 0; i < 30; i++ {
		a := "Common Person"
		if i == 17 {
			a = "Jeffrey Ullman"
		}
		docs = append(docs, fmt.Sprintf(`<dblp><article><author>%s</author></article></dblp>`, a))
	}
	truth := publishAll(t, c, docs)
	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	want := truth(q)
	for _, s := range []Strategy{ABReducer, DBReducer, BloomReducer} {
		res, err := c.peers[3].Query(q, QueryOptions{Strategy: s})
		if err != nil {
			t.Fatalf("%v over DPP: %v", s, err)
		}
		got := res.Matches
		sortMatches(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v over DPP: %d matches, want %d", s, len(got), len(want))
		}
	}
}

func TestHandleCountWithDPPBlocks(t *testing.T) {
	c := newCluster(t, 6, Config{UseDPP: true, DPP: dpp.Options{BlockSize: 8}})
	var docs []string
	for i := 0; i < 40; i++ {
		docs = append(docs, fmt.Sprintf(`<dblp><article><author>P%d</author></article></dblp>`, i))
	}
	publishAll(t, c, docs)
	n, err := c.peers[1].termCount(context.Background(), "l:author")
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("termCount over blocks = %d, want 40", n)
	}
	if n, err := c.peers[1].termCount(context.Background(), "l:absent"); err != nil || n != 0 {
		t.Fatalf("absent term count = %d (%v)", n, err)
	}
}

func TestApplyIncomingRejectsGarbage(t *testing.T) {
	if _, err := applyIncoming(&reduceReq{filterKind: filterAB, filter: []byte{1}}, nil); err == nil {
		t.Error("corrupt AB filter should fail")
	}
	if _, err := applyIncoming(&reduceReq{filterKind: filterDB, filter: []byte{1}}, nil); err == nil {
		t.Error("corrupt DB filter should fail")
	}
	if _, err := applyIncoming(&reduceReq{filterKind: 99}, nil); err == nil {
		t.Error("unknown filter kind should fail")
	}
}
