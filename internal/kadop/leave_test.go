package kadop

// Pin for the directory half of graceful departure: directory entries
// live in the peer-level side map, not the DHT store, so dht.Node.Leave
// alone would drop them. Peer.Leave must hand hosted entries to the
// keys' remaining owners — otherwise a pair of graceful leaves can
// erase every replica of a peer-address entry and break phase-two
// resolution even though all index keys survived.

import (
	"context"
	"testing"
	"time"
)

func TestGracefulLeaveKeepsDirectory(t *testing.T) {
	c := newChaosCluster(t, 8, Config{})

	hostsOf := func(key string) []*Peer {
		var hosts []*Peer
		for _, p := range c.peers {
			p.mu.Lock()
			_, ok := p.dir[key]
			p.mu.Unlock()
			if ok {
				hosts = append(hosts, p)
			}
		}
		return hosts
	}

	// Pick a target peer that does not host its own address entry, so
	// every host can depart while the target stays reachable.
	var target *Peer
	var hosts []*Peer
	for _, p := range c.peers {
		hs := hostsOf(peerKey(p.ID()))
		selfHosted := false
		for _, h := range hs {
			if h == p {
				selfHosted = true
			}
		}
		if !selfHosted && len(hs) > 0 {
			target, hosts = p, hs
			break
		}
	}
	if target == nil {
		t.Fatal("bad fixture: every peer hosts its own directory entry")
	}
	if len(hosts) < 2 {
		t.Fatalf("bad fixture: %d replica hosts for %s, want >= 2", len(hosts), peerKey(target.ID()))
	}

	// A querier that neither hosts the entry nor is the target.
	var querier *Peer
	for _, p := range c.peers {
		inHosts := false
		for _, h := range hosts {
			if h == p {
				inHosts = true
			}
		}
		if !inHosts && p != target {
			querier = p
			break
		}
	}
	if querier == nil {
		t.Fatal("bad fixture: no peer left to act as querier")
	}

	// Every host of the entry departs gracefully, one after another.
	for _, h := range hosts {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err := h.Leave(ctx)
		cancel()
		if err != nil {
			t.Fatalf("graceful leave: %v", err)
		}
	}

	// The entry must have been handed to surviving owners: resolution
	// still works and returns the target's real address.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := querier.contactOf(ctx, target.ID())
	if err != nil {
		t.Fatalf("resolve after all entry hosts left: %v", err)
	}
	if want := target.Node().Self().Addr; got.Addr != want {
		t.Fatalf("resolved addr %q, want %q", got.Addr, want)
	}
}
