package kadop

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Peer-state persistence: a peer started with Config.DataDir keeps an
// append-only JSONL journal of the state that must survive a restart
// but lives outside the durable index — the raw XML of the documents it
// published (phase-two evaluation answers from them) and the directory
// entries it is home for (the Peer and Doc relations). On restart the
// journal replays in order, so a later record for the same document id
// or directory key wins, exactly as the in-memory maps behaved.
//
// The journal records only documents published through PublishXML (the
// CLI and network publishing path), because only there does the peer
// hold the raw bytes to replay. Documents handed over pre-parsed
// (Publish / PublishAt) stay memory-only, as before.

// stateRecord is one journal line.
type stateRecord struct {
	Kind  string `json:"kind"` // "doc" or "dir"
	ID    uint32 `json:"id,omitempty"`
	URI   string `json:"uri,omitempty"`
	Dtype string `json:"dtype,omitempty"`
	XML   []byte `json:"xml,omitempty"` // raw document bytes (base64 in JSON)
	Key   string `json:"key,omitempty"`
	Blob  []byte `json:"blob,omitempty"`
}

// statePersist appends records to the journal. Append errors are
// sticky: once the journal fails, further writes are refused so the
// journal never holds a gap in the middle of the history.
type statePersist struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// openStatePersist reads the existing journal (tolerating a torn last
// line from a crash mid-append) and opens it for appending.
func openStatePersist(path string) (*statePersist, []stateRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("kadop: peer state %s: %w", path, err)
	}
	var recs []stateRecord
	valid := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var rec stateRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: keep the valid prefix
		}
		recs = append(recs, rec)
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("kadop: peer state %s: %w", path, err)
	}
	// Drop the torn tail (if any) so the next append starts on a clean
	// line boundary.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("kadop: peer state %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("kadop: peer state %s: %w", path, err)
	}
	return &statePersist{f: f}, recs, nil
}

// append writes one record and fsyncs: journal entries are rare (one
// per published document or directory update) next to index appends,
// so the fsync cost is noise while the recovery guarantee is not.
func (sp *statePersist) append(rec stateRecord) error {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.err != nil {
		return sp.err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := sp.f.Write(line); err != nil {
		sp.err = fmt.Errorf("kadop: peer state: %w", err)
		return sp.err
	}
	if err := sp.f.Sync(); err != nil {
		sp.err = fmt.Errorf("kadop: peer state: %w", err)
		return sp.err
	}
	return nil
}

// appendMany journals a whole batch of records with a single write and
// a single fsync. The bulk-publish path uses it: N documents cost one
// durability round trip instead of N, while the torn-tail recovery in
// openStatePersist still applies — a crash mid-write keeps the valid
// line prefix, so recovery sees a prefix of the batch, each line whole.
func (sp *statePersist) appendMany(recs []stateRecord) error {
	if sp == nil || len(recs) == 0 {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.err != nil {
		return sp.err
	}
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if _, err := sp.f.Write(buf); err != nil {
		sp.err = fmt.Errorf("kadop: peer state: %w", err)
		return sp.err
	}
	if err := sp.f.Sync(); err != nil {
		sp.err = fmt.Errorf("kadop: peer state: %w", err)
		return sp.err
	}
	return nil
}

func (sp *statePersist) close() error {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.f == nil {
		return nil
	}
	err := sp.f.Close()
	sp.f = nil
	return err
}
