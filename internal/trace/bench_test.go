package trace

import (
	"context"
	"testing"
	"time"
)

// BenchmarkDisabledStartSpan is the instrumented hot path with tracing
// off: one context lookup, no allocations. The allocation count is
// asserted by TestDisabledPathAllocs below, not just eyeballed.
func BenchmarkDisabledStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx2, sp := StartSpan(ctx, "op")
		sp.Finish()
		_ = ctx2
	}
}

func BenchmarkDisabledRecord(b *testing.B) {
	ctx := context.Background()
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Record(ctx, "op", start, time.Microsecond)
	}
}

func BenchmarkDisabledFromContext(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if FromContext(ctx) != nil {
			b.Fatal("unexpected span")
		}
	}
}

func BenchmarkEnabledStartSpan(b *testing.B) {
	tr := New(4)
	ctx, root := tr.StartTrace(context.Background(), "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 { // fresh trace before the span cap bites
			ctx, root = tr.StartTrace(context.Background(), "bench")
		}
		_, sp := StartSpan(ctx, "op")
		sp.Finish()
	}
	b.StopTimer()
	root.Finish()
}

func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "op")
		sp.Finish()
		Record(ctx, "op", time.Time{}, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}
