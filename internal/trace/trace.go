// Package trace is a lightweight span tracer for phase-attributed query
// timelines. A Tracer keeps a bounded ring of recent traces; each Trace
// is a tree of Spans carrying a name, wall-clock interval, and
// key/value attributes. Span identity travels inside a context.Context
// on the caller side and as a (trace id, span id) pair on the wire, so
// a query's timeline includes the spans of every peer it touched —
// provided those peers share a tracer (the simulated network) or
// export their own rings (TCP deployments).
//
// The package is engineered for a cheap "off" state: every function is
// nil-safe, and when no span rides the context the instrumentation
// hot paths cost one context lookup and no allocations.
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's span count so a pathological
// query (or a join against a huge posting list) cannot grow a trace
// without limit. Spans past the cap are counted but dropped.
const maxSpansPerTrace = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Tracer owns a bounded ring of recent traces. The zero value is not
// usable; use New. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	mu     sync.Mutex
	ring   []*Trace
	next   int
	seq    atomic.Uint64
	idBase uint64
}

// New returns a tracer retaining the most recent capacity traces.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]*Trace, 0, capacity)}
	// Seed ids from the clock so ids from distinct processes hitting
	// one server tracer almost never collide.
	t.idBase = uint64(time.Now().UnixNano())
	return t
}

// nextID returns a process-unique id.
func (tr *Tracer) nextID() uint64 { return tr.idBase + tr.seq.Add(1) }

// add inserts a trace into the ring, evicting the oldest past capacity.
func (tr *Tracer) add(t *Trace) {
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, t)
	} else {
		tr.ring[tr.next] = t
		tr.next = (tr.next + 1) % cap(tr.ring)
	}
	tr.mu.Unlock()
}

// StartTrace begins a new trace with a root span of the given name and
// returns a context carrying the root. On a nil tracer it returns the
// context unchanged and a nil span.
func (tr *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if tr == nil {
		return ctx, nil
	}
	t := &Trace{tracer: tr, id: tr.nextID(), name: name, start: time.Now()}
	root := &Span{t: t, id: tr.nextID(), name: name, start: t.start}
	t.spans = append(t.spans, root)
	tr.add(t)
	return ContextWithSpan(ctx, root), root
}

// JoinRemote records a server-side span for work done on behalf of a
// remote caller identified by (traceID, parentSpan). If the trace lives
// in this tracer's ring (in-process transports, or a message looping
// back to its sender) the span joins it; otherwise a stub trace is
// created so the ring still shows what this peer worked on.
func (tr *Tracer) JoinRemote(traceID, parentSpan uint64, name string) *Span {
	if tr == nil || traceID == 0 {
		return nil
	}
	t := tr.byID(traceID)
	if t == nil {
		t = &Trace{tracer: tr, id: traceID, name: "remote:" + name, start: time.Now(), remote: true}
		tr.add(t)
	}
	return t.newSpan(parentSpan, name, time.Now())
}

// byID finds a live trace in the ring.
func (tr *Tracer) byID(id uint64) *Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, t := range tr.ring {
		if t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// Recent returns up to n of the most recent traces, newest first.
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, n)
	// The ring is ordered oldest..newest starting at next (once full).
	for i := 0; i < len(tr.ring) && len(out) < n; i++ {
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if len(tr.ring) < cap(tr.ring) {
			idx = len(tr.ring) - 1 - i
		}
		if t := tr.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Trace is one tree of spans.
type Trace struct {
	tracer *Tracer
	id     uint64
	name   string
	start  time.Time
	remote bool

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// ID returns the trace id.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Name returns the root span's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// newSpan appends a span to the trace, honouring the span cap.
func (t *Trace) newSpan(parent uint64, name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, parent: parent, name: name, start: start}
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	if t.tracer != nil {
		s.id = t.tracer.nextID()
	} else {
		s.id = uint64(len(t.spans) + 1)
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed operation inside a trace.
type Span struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	// Guarded by t.mu.
	dur   time.Duration
	done  bool
	attrs []Attr
}

// ContextWithSpan returns a context carrying the span. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

type ctxKey struct{}

// FromContext returns the span carried by ctx, or nil. This is the
// fast path every instrumentation site guards on: one context lookup,
// no allocations.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ID returns the (trace id, span id) pair carried by ctx, for stamping
// onto outgoing messages. (0, 0) when the context carries no span.
func ID(ctx context.Context) (traceID, spanID uint64) {
	s := FromContext(ctx)
	if s == nil || s.t == nil {
		return 0, 0
	}
	return s.t.id, s.id
}

// StartSpan opens a child span under the span carried by ctx and
// returns a context carrying the child. When ctx carries no span it
// returns (ctx, nil) without allocating — the disabled-tracer fast
// path. Finish the returned span (nil-safe) when the work completes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.t.newSpan(parent.id, name, time.Now())
	if s == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, s), s
}

// Child records a completed child span under s with an explicit
// interval — the shape used after the fact on hot paths, where opening
// and finishing a live span per item would be wasteful.
func (s *Span) Child(name string, start time.Time, dur time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := s.t.newSpan(s.id, name, start)
	if c == nil {
		return nil
	}
	s.t.mu.Lock()
	c.dur = dur
	c.done = true
	s.t.mu.Unlock()
	return c
}

// Finish marks the span complete, fixing its duration.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	s.t.mu.Unlock()
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// Trace returns the trace the span belongs to.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.t
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Record attaches a completed child span to the span carried by ctx.
// It is the one-liner for instrumenting an already-measured interval;
// with no span in ctx it does nothing and allocates nothing (the
// variadic attrs are only materialised after the guard).
func Record(ctx context.Context, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	parent := FromContext(ctx)
	if parent == nil {
		return
	}
	c := parent.Child(name, start, dur)
	if c == nil || len(attrs) == 0 {
		return
	}
	parent.t.mu.Lock()
	c.attrs = append(c.attrs, attrs...)
	parent.t.mu.Unlock()
}

// SpanRecord is the exported form of one span.
type SpanRecord struct {
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	StartUS  int64         `json:"start_us"` // offset from trace start
	Duration time.Duration `json:"duration_ns"`
	DurStr   string        `json:"duration"`
	Done     bool          `json:"done"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// TraceRecord is the exported form of one trace.
type TraceRecord struct {
	ID      uint64       `json:"id"`
	Name    string       `json:"name"`
	Start   time.Time    `json:"start"`
	Remote  bool         `json:"remote,omitempty"`
	Dropped int          `json:"dropped_spans,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// Export returns a point-in-time copy of the trace for serialisation.
func (t *Trace) Export() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := TraceRecord{ID: t.id, Name: t.name, Start: t.start, Remote: t.remote, Dropped: t.dropped}
	for _, s := range t.spans {
		sr := SpanRecord{
			ID:       s.id,
			Parent:   s.parent,
			Name:     s.name,
			StartUS:  s.start.Sub(t.start).Microseconds(),
			Duration: s.dur,
			Done:     s.done,
		}
		if !s.done {
			sr.Duration = time.Since(s.start)
		}
		sr.DurStr = sr.Duration.String()
		sr.Attrs = append(sr.Attrs, s.attrs...)
		rec.Spans = append(rec.Spans, sr)
	}
	return rec
}

// JSON renders the trace as indented JSON.
func (t *Trace) JSON() []byte {
	b, err := json.MarshalIndent(t.Export(), "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return b
}

// Tree renders the trace as an indented text tree, children under
// parents ordered by start time — the kadop-query -explain output.
func (t *Trace) Tree() string {
	rec := t.Export()
	if len(rec.Spans) == 0 {
		return ""
	}
	children := map[uint64][]SpanRecord{}
	byID := map[uint64]bool{}
	for _, s := range rec.Spans {
		byID[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range rec.Spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(ss []SpanRecord) {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].StartUS < ss[j].StartUS })
	}
	order(roots)
	var b strings.Builder
	var walk func(s SpanRecord, depth int)
	walk = func(s SpanRecord, depth int) {
		fmt.Fprintf(&b, "%s%-*s %12v", strings.Repeat("  ", depth), 28-2*depth, s.Name, s.Duration.Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		if !s.Done {
			b.WriteString("  (open)")
		}
		b.WriteByte('\n')
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if rec.Dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped past cap)\n", rec.Dropped)
	}
	return b.String()
}
