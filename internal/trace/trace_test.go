package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartTraceAndSpanTree(t *testing.T) {
	tr := New(4)
	ctx, root := tr.StartTrace(context.Background(), "query")
	if root == nil {
		t.Fatal("no root span")
	}
	root.SetAttr("query", "//a//b")
	ctx2, child := StartSpan(ctx, "phase:fetch")
	if child == nil {
		t.Fatal("no child span")
	}
	_, grand := StartSpan(ctx2, "rpc:get")
	grand.SetInt("bytes", 123)
	grand.Finish()
	child.Finish()
	root.Finish()

	rec := root.Trace().Export()
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	if byName["phase:fetch"].Parent != byName["query"].ID {
		t.Error("fetch not child of root")
	}
	if byName["rpc:get"].Parent != byName["phase:fetch"].ID {
		t.Error("rpc not child of fetch")
	}
	if !byName["rpc:get"].Done || byName["rpc:get"].Duration < 0 {
		t.Error("rpc span not finished")
	}
	tree := root.Trace().Tree()
	if !strings.Contains(tree, "query") || !strings.Contains(tree, "phase:fetch") ||
		!strings.Contains(tree, "bytes=123") {
		t.Errorf("tree missing content:\n%s", tree)
	}
	// Children must be indented under parents.
	if strings.Index(tree, "query") > strings.Index(tree, "rpc:get") {
		t.Errorf("root should come first:\n%s", tree)
	}
}

// TestTreeEdgeCases pins Tree()'s behaviour on the degenerate shapes
// the explain renderer must survive: an empty trace, a single span,
// deep nesting past the name column's width, and an orphan span whose
// parent fell off the span cap.
func TestTreeEdgeCases(t *testing.T) {
	tr := New(4)

	// Empty: a trace whose spans never materialised renders as "".
	_, root := tr.StartTrace(context.Background(), "empty")
	_ = root
	if empty := (&Trace{}).Tree(); empty != "" {
		t.Errorf("empty trace tree = %q, want \"\"", empty)
	}

	// Single span: one line, no indentation, attrs inline.
	_, solo := tr.StartTrace(context.Background(), "solo")
	solo.SetInt("cache-hits", 2)
	solo.Finish()
	tree := solo.Trace().Tree()
	if lines := strings.Count(tree, "\n"); lines != 1 {
		t.Errorf("single-span tree has %d lines:\n%s", lines, tree)
	}
	if !strings.Contains(tree, "cache-hits=2") || strings.HasPrefix(tree, " ") {
		t.Errorf("single-span tree = %q", tree)
	}

	// Deep nesting: depth exceeding the fixed name column must still
	// produce one line per span, each child indented under its parent.
	ctx, deep := tr.StartTrace(context.Background(), "d0")
	spans := []*Span{deep}
	const depth = 20
	for i := 1; i <= depth; i++ {
		var s *Span
		ctx, s = StartSpan(ctx, "d"+strings.Repeat("x", i))
		spans = append(spans, s)
	}
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].Finish()
	}
	tree = deep.Trace().Tree()
	if lines := strings.Count(tree, "\n"); lines != depth+1 {
		t.Errorf("deep tree has %d lines, want %d:\n%s", lines, depth+1, tree)
	}
	prev := -1
	for _, line := range strings.SplitAfter(tree, "\n") {
		if line == "" {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if indent <= prev && prev >= 0 && indent != 0 {
			// Monotone growth until the fixed column floor; never negative.
			break
		}
		prev = indent
	}

	// Orphan: a span whose recorded parent is missing from the export
	// renders as a root instead of disappearing.
	orphanTrace := &Trace{}
	orphanTrace.spans = append(orphanTrace.spans,
		&Span{t: orphanTrace, id: 7, parent: 99, name: "orphan", done: true})
	if got := orphanTrace.Tree(); !strings.Contains(got, "orphan") {
		t.Errorf("orphaned span vanished from tree:\n%q", got)
	}
}

func TestRecordAndChild(t *testing.T) {
	tr := New(2)
	ctx, root := tr.StartTrace(context.Background(), "op")
	start := time.Now().Add(-time.Millisecond)
	Record(ctx, "done-before", start, time.Millisecond, String("k", "v"))
	c := root.Child("child", start, 2*time.Millisecond)
	if c == nil {
		t.Fatal("child nil")
	}
	rec := root.Trace().Export()
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(rec.Spans))
	}
	for _, s := range rec.Spans {
		if s.Name == "done-before" {
			if !s.Done || s.Duration != time.Millisecond {
				t.Errorf("recorded span wrong: %+v", s)
			}
			if len(s.Attrs) != 1 || s.Attrs[0].Key != "k" {
				t.Errorf("attrs = %v", s.Attrs)
			}
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(2)
	_, a := tr.StartTrace(context.Background(), "a")
	_, bSpan := tr.StartTrace(context.Background(), "b")
	_, c := tr.StartTrace(context.Background(), "c")
	recent := tr.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("recent = %d, want 2", len(recent))
	}
	if recent[0].Name() != "c" || recent[1].Name() != "b" {
		t.Errorf("recent order: %s, %s", recent[0].Name(), recent[1].Name())
	}
	if tr.byID(a.Trace().ID()) != nil {
		t.Error("oldest trace should be evicted")
	}
	_ = bSpan
	_ = c
}

func TestJoinRemote(t *testing.T) {
	tr := New(4)
	ctx, root := tr.StartTrace(context.Background(), "query")
	traceID, spanID := ID(ctx)
	if traceID == 0 || spanID == 0 {
		t.Fatal("ids not carried")
	}
	// Same tracer (simulated network): joins the live trace.
	sp := tr.JoinRemote(traceID, spanID, "serve:find-node")
	sp.Finish()
	if sp.Trace() != root.Trace() {
		t.Error("remote span should join the live trace")
	}
	// Different tracer (real deployment): stub trace is created.
	other := New(4)
	sp2 := other.JoinRemote(traceID, spanID, "serve:get")
	sp2.Finish()
	if sp2.Trace().ID() != traceID {
		t.Error("stub trace should keep the caller's trace id")
	}
	if len(other.Recent(10)) != 1 {
		t.Error("stub trace should be in the ring")
	}
	// A second join on the same trace id reuses the stub.
	other.JoinRemote(traceID, spanID, "serve:get").Finish()
	if len(other.Recent(10)) != 1 {
		t.Error("second join should reuse the stub trace")
	}
}

func TestSpanCap(t *testing.T) {
	tr := New(1)
	_, root := tr.StartTrace(context.Background(), "big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child("c", time.Now(), 0)
	}
	rec := root.Trace().Export()
	if len(rec.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want cap %d", len(rec.Spans), maxSpansPerTrace)
	}
	if rec.Dropped == 0 {
		t.Error("dropped count not reported")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartTrace(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	ctx2, sp2 := StartSpan(ctx, "y")
	if sp2 != nil || ctx2 != ctx {
		t.Fatal("no-span context must pass through")
	}
	sp.Finish()
	sp.SetAttr("a", "b")
	sp.SetInt("n", 1)
	sp.Child("c", time.Now(), 0)
	Record(ctx, "r", time.Now(), 0)
	if a, b := ID(ctx); a != 0 || b != 0 {
		t.Error("nil ids should be zero")
	}
	if tr.Recent(5) != nil {
		t.Error("nil tracer Recent should be nil")
	}
	if tr.JoinRemote(1, 2, "s") != nil {
		t.Error("nil tracer JoinRemote should be nil")
	}
	var trace *Trace
	trace.Export()
	if trace.Tree() != "" {
		t.Error("nil trace tree should be empty")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(8)
	ctx, root := tr.StartTrace(context.Background(), "conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, sp := StartSpan(ctx, "w")
				sp.SetInt("j", int64(j))
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	root.Finish()
	if n := len(root.Trace().Export().Spans); n != 801 {
		t.Errorf("spans = %d, want 801", n)
	}
}
