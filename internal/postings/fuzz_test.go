package postings

import (
	"testing"

	"kadop/internal/sid"
)

// FuzzCodec drives the delta-varint codec from both ends. Arbitrary
// bytes fed to Decode must either be rejected or yield a canonically
// ordered list whose re-encoding round-trips exactly; and a sorted list
// built from the same bytes must survive an encode/decode round trip
// posting for posting.
func FuzzCodec(f *testing.F) {
	addList := func(l List) {
		if enc, err := Encode(l); err == nil {
			f.Add(enc)
		}
	}
	addList(nil)
	addList(List{
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 10, Level: 0}},
	})
	addList(List{
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 10, Level: 0}},
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 2, End: 5, Level: 1}},
		{Peer: 1, Doc: 2, SID: sid.SID{Start: 1, End: 4, Level: 0}},
		{Peer: 3, Doc: 1, SID: sid.SID{Start: 7, End: 8, Level: 2}},
	})
	addList(List{
		{Peer: 1 << 20, Doc: 1 << 18, SID: sid.SID{Start: 1 << 24, End: 1<<24 + 9000, Level: 900}},
	})
	// Corrupt shapes: implausible length, truncated varint, zero width.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x02, 0x01, 0x01, 0x01})
	f.Add([]byte{0x01, 0x00, 0x00, 0x01, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		if l, consumed, err := Decode(data); err == nil {
			if consumed > len(data) {
				t.Fatalf("Decode consumed %d of %d bytes", consumed, len(data))
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("Decode accepted an unsorted list: %v", err)
			}
			enc, err := Encode(l)
			if err != nil {
				t.Fatalf("decoded list does not re-encode: %v", err)
			}
			if got := EncodedSize(l); got != len(enc) {
				t.Fatalf("EncodedSize = %d, Encode produced %d bytes", got, len(enc))
			}
			l2, n2, err := Decode(enc)
			if err != nil {
				t.Fatalf("canonical encoding does not decode: %v", err)
			}
			if n2 != len(enc) {
				t.Fatalf("canonical decode consumed %d of %d bytes", n2, len(enc))
			}
			requireEqualLists(t, l, l2)
		}

		// Build-encode-decode: interpret the input as posting deltas.
		l := buildFuzzList(data)
		enc, err := Encode(l)
		if err != nil {
			t.Fatalf("built list does not encode: %v", err)
		}
		l2, n2, err := Decode(enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("built list does not round-trip: consumed %d of %d, err %v", n2, len(enc), err)
		}
		requireEqualLists(t, l, l2)
	})
}

// buildFuzzList derives a canonically ordered list from arbitrary bytes
// by treating them as bounded per-field deltas, mirroring the codec's
// own delta discipline so the result is sorted by construction.
func buildFuzzList(data []byte) List {
	var l List
	var p sid.Posting
	for len(data) >= 5 && len(l) < 64 {
		dPeer := uint32(data[0] & 0x3)
		dDoc := uint32(data[1] & 0x7)
		dStart := uint32(data[2])
		width := uint32(data[3]&0x1f) + 1
		level := uint16(data[4] & 0xf)
		data = data[5:]

		p.Peer += sid.PeerID(dPeer)
		if dPeer > 0 {
			p.Doc, p.SID.Start = 0, 0
		}
		p.Doc += sid.DocID(dDoc)
		if dDoc > 0 {
			p.SID.Start = 0
		}
		p.SID.Start += dStart + 1 // strictly increasing within a document
		p.SID.End = p.SID.Start + width - 1
		p.SID.Level = level
		l = append(l, p)
	}
	return l
}

// TestDecodeRejectsOutOfOrder pins the decoder's ordering check: the
// deltas cannot regress on (peer, doc, start), but a crafted encoding
// can shrink End at an equal Start, which would produce a list the
// encoder itself refuses.
func TestDecodeRejectsOutOfOrder(t *testing.T) {
	// Two postings: (start 1, width 5) then (dStart 0, width 3) — the
	// second sorts before the first.
	buf := []byte{2, 0, 0, 1, 5, 0, 0, 0, 0, 3, 0}
	if _, _, err := Decode(buf); err == nil {
		t.Fatalf("Decode accepted an out-of-order encoding")
	}
}

func requireEqualLists(t *testing.T, want, got List) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("round trip changed length: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("round trip changed posting %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
