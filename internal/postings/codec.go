package postings

import (
	"encoding/binary"
	"fmt"

	"kadop/internal/sid"
)

// The delta-varint posting codec.
//
// Each posting is encoded as five unsigned varints relative to its
// predecessor in the canonical order:
//
//	dPeer      = peer - prev.peer
//	dDoc       = doc  - prev.doc   (absolute when dPeer > 0)
//	dStart     = start - prev.start (absolute when the document changed)
//	width      = end - start + 1    (always absolute; small for XML)
//	level                            (always absolute; small)
//
// The first posting of a list is encoded against the zero posting. Since
// lists are sorted, all deltas except dStart are non-negative; dStart is
// non-negative within a document run because start values increase in
// the canonical order. The decoder rejects malformed input rather than
// guessing, so a corrupted DHT message cannot silently poison an index.

// AppendEncoded appends the encoding of the sorted list l to buf and
// returns the extended buffer. It returns an error if l is not sorted.
func AppendEncoded(buf []byte, l List) ([]byte, error) {
	if err := l.Validate(); err != nil {
		return buf, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(l)))
	prev := sid.Posting{}
	for _, p := range l {
		buf = appendPosting(buf, prev, p)
		prev = p
	}
	return buf, nil
}

func appendPosting(buf []byte, prev, p sid.Posting) []byte {
	dPeer := uint64(p.Peer - prev.Peer)
	buf = binary.AppendUvarint(buf, dPeer)
	if dPeer > 0 {
		prev.Doc = 0
		prev.SID.Start = 0
	}
	dDoc := uint64(p.Doc - prev.Doc)
	buf = binary.AppendUvarint(buf, dDoc)
	if dDoc > 0 {
		prev.SID.Start = 0
	}
	buf = binary.AppendUvarint(buf, uint64(p.SID.Start-prev.SID.Start))
	buf = binary.AppendUvarint(buf, uint64(p.SID.Width()))
	buf = binary.AppendUvarint(buf, uint64(p.SID.Level))
	return buf
}

// Encode returns the encoding of the sorted list l.
func Encode(l List) ([]byte, error) {
	return AppendEncoded(make([]byte, 0, 2+len(l)*6), l)
}

// EncodedSize returns the exact number of bytes Encode would produce for
// l without allocating the encoding. It is used by the traffic
// accounting to cost hypothetical transfers.
func EncodedSize(l List) int {
	n := uvarintLen(uint64(len(l)))
	prev := sid.Posting{}
	for _, p := range l {
		dPeer := uint64(p.Peer - prev.Peer)
		n += uvarintLen(dPeer)
		pd := prev.Doc
		ps := prev.SID.Start
		if dPeer > 0 {
			pd, ps = 0, 0
		}
		dDoc := uint64(p.Doc - pd)
		n += uvarintLen(dDoc)
		if dDoc > 0 {
			ps = 0
		}
		n += uvarintLen(uint64(p.SID.Start - ps))
		n += uvarintLen(uint64(p.SID.Width()))
		n += uvarintLen(uint64(p.SID.Level))
		prev = p
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decode decodes a posting list encoded by Encode. It returns the list
// and the number of bytes consumed.
func Decode(buf []byte) (List, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("postings: bad list length varint")
	}
	// Each posting occupies at least 5 bytes (five one-byte varints), so a
	// length claiming more postings than the buffer can hold is corrupt.
	if n > uint64(len(buf))/5+1 {
		return nil, 0, fmt.Errorf("postings: implausible list length %d for %d bytes", n, len(buf))
	}
	off := sz
	out := make(List, 0, n)
	prev := sid.Posting{}
	for i := uint64(0); i < n; i++ {
		p, consumed, err := decodePosting(buf[off:], prev)
		if err != nil {
			return nil, 0, fmt.Errorf("postings: posting %d: %w", i, err)
		}
		// The deltas force (peer, doc, start) to be non-decreasing, but a
		// crafted input can still regress on (end, level) at an equal
		// start; reject it so decoded lists are always in canonical order.
		if i > 0 && p.Compare(prev) < 0 {
			return nil, 0, fmt.Errorf("postings: posting %d out of canonical order", i)
		}
		off += consumed
		out = append(out, p)
		prev = p
	}
	return out, off, nil
}

func decodePosting(buf []byte, prev sid.Posting) (sid.Posting, int, error) {
	var vals [5]uint64
	off := 0
	for i := range vals {
		v, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return sid.Posting{}, 0, fmt.Errorf("truncated varint %d", i)
		}
		vals[i] = v
		off += sz
	}
	dPeer, dDoc, dStart, width, level := vals[0], vals[1], vals[2], vals[3], vals[4]
	if width == 0 {
		return sid.Posting{}, 0, fmt.Errorf("zero element width")
	}
	p := prev
	p.Peer += sid.PeerID(dPeer)
	if dPeer > 0 {
		p.Doc = 0
		p.SID.Start = 0
	}
	p.Doc += sid.DocID(dDoc)
	if dDoc > 0 {
		p.SID.Start = 0
	}
	p.SID.Start += uint32(dStart)
	if p.SID.Start == 0 {
		return sid.Posting{}, 0, fmt.Errorf("zero start position")
	}
	p.SID.End = p.SID.Start + uint32(width) - 1
	if uint64(p.SID.End) != uint64(p.SID.Start)+width-1 {
		return sid.Posting{}, 0, fmt.Errorf("element width overflow")
	}
	p.SID.Level = uint16(level)
	if uint64(p.SID.Level) != level {
		return sid.Posting{}, 0, fmt.Errorf("level overflow")
	}
	return p, off, nil
}
