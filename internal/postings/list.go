// Package postings implements posting lists: ordered sequences of
// sid.Posting values together with a compact wire encoding and the
// streaming abstractions that the rest of KadoP is built on.
//
// A posting list is always maintained in the canonical lexicographic
// order by (peer, doc, start, end, level). The wire encoding is a
// delta-varint codec: each posting is encoded relative to its
// predecessor, which makes long lists of postings from the same
// document (the common case for popular terms) very compact. The codec
// is shared by the local store, the DHT messages and the DPP blocks, so
// the traffic measurements of Sections 4.3 and 5.4 account for exactly
// the bytes a deployment would ship.
package postings

import (
	"errors"
	"fmt"
	"sort"

	"kadop/internal/sid"
)

// List is an ordered posting list.
type List []sid.Posting

// Sort puts l into the canonical (peer, doc, sid) order.
func (l List) Sort() {
	sort.Slice(l, func(i, j int) bool { return l[i].Less(l[j]) })
}

// Sorted reports whether l is in canonical order (duplicates allowed).
func (l List) Sorted() bool {
	return sort.SliceIsSorted(l, func(i, j int) bool { return l[i].Less(l[j]) })
}

// Dedup removes adjacent duplicates from a sorted list, in place.
func (l List) Dedup() List {
	if len(l) == 0 {
		return l
	}
	out := l[:1]
	for _, p := range l[1:] {
		if p.Compare(out[len(out)-1]) != 0 {
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a copy of l (nil stays nil).
func (l List) Clone() List {
	if len(l) == 0 {
		return nil
	}
	out := make(List, len(l))
	copy(out, l)
	return out
}

// DocRange returns the smallest and largest document keys appearing in
// the sorted list l. It reports ok=false for an empty list.
func (l List) DocRange() (lo, hi sid.DocKey, ok bool) {
	if len(l) == 0 {
		return sid.DocKey{}, sid.DocKey{}, false
	}
	return l[0].Key(), l[len(l)-1].Key(), true
}

// ClipDocs returns the sub-list of the sorted list l whose document keys
// fall in the closed interval [lo, hi]. This implements the DPP
// document-interval filtering of Section 4.2: instead of transferring a
// whole block, only its intersection with [min, max] is shipped.
func (l List) ClipDocs(lo, hi sid.DocKey) List {
	if hi.Compare(lo) < 0 {
		return nil
	}
	from := sort.Search(len(l), func(i int) bool { return l[i].Key().Compare(lo) >= 0 })
	to := sort.Search(len(l), func(i int) bool { return l[i].Key().Compare(hi) > 0 })
	if from >= to {
		return nil
	}
	return l[from:to]
}

// MergeUnique merges two sorted lists into one sorted list without
// duplicates (within or across the inputs). The replicated read path
// uses it to combine owner copies, and the idempotent stores use it so
// at-least-once appends cannot double postings.
func MergeUnique(a, b List) List {
	out := make(List, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(p sid.Posting) {
		if n := len(out); n == 0 || out[n-1].Compare(p) != 0 {
			out = append(out, p)
		}
	}
	for i < len(a) && j < len(b) {
		if a[i].Compare(b[j]) <= 0 {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

// Merge merges two sorted lists into a new sorted list, keeping
// duplicates from both inputs.
func Merge(a, b List) List {
	out := make(List, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Compare(b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// errUnsorted is returned by codecs when fed an out-of-order list.
var errUnsorted = errors.New("postings: list is not in canonical order")

// Validate returns an error describing the first ordering violation in l,
// or nil if l is sorted.
func (l List) Validate() error {
	for i := 1; i < len(l); i++ {
		if l[i].Compare(l[i-1]) < 0 {
			return fmt.Errorf("%w: position %d: %v before %v", errUnsorted, i, l[i-1], l[i])
		}
	}
	return nil
}
