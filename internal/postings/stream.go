package postings

import (
	"io"
	"sync"

	"kadop/internal/sid"
)

// Stream is the pull interface through which posting lists flow between
// producers (peers holding index fragments) and consumers (the holistic
// twig join). Streams deliver postings in the canonical order.
//
// The paper's "pipelined get" (Section 3) is realised by streams backed
// by network pipes: the consumer starts joining as soon as the first
// postings of every list arrive, instead of blocking until whole lists
// have been received.
type Stream interface {
	// Next returns the next posting. It returns io.EOF after the last
	// posting has been delivered.
	Next() (sid.Posting, error)
}

// SliceStream adapts an in-memory list to the Stream interface.
type SliceStream struct {
	list List
	pos  int
}

// NewSliceStream returns a stream over the sorted list l.
func NewSliceStream(l List) *SliceStream { return &SliceStream{list: l} }

// Next implements Stream.
func (s *SliceStream) Next() (sid.Posting, error) {
	if s.pos >= len(s.list) {
		return sid.Posting{}, io.EOF
	}
	p := s.list[s.pos]
	s.pos++
	return p, nil
}

// Rest returns the postings not yet consumed, without consuming them.
func (s *SliceStream) Rest() List { return s.list[s.pos:] }

// Pipe is a bounded buffer connecting one producer goroutine to one
// consumer; it is the in-process equivalent of the network pipe the
// paper assumes between producers and the holistic join consumer.
type Pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    List
	closed bool
	err    error
	limit  int
}

// NewPipe returns a pipe whose internal buffer holds at most limit
// postings (limit <= 0 means a default of 4096). A full buffer blocks
// the producer, providing back-pressure like a TCP window.
func NewPipe(limit int) *Pipe {
	if limit <= 0 {
		limit = 4096
	}
	p := &Pipe{limit: limit}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Send appends batch to the pipe, blocking while the buffer is full.
// It returns false if the pipe has been closed.
func (p *Pipe) Send(batch List) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(batch) > 0 {
		for len(p.buf) >= p.limit && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			return false
		}
		room := p.limit - len(p.buf)
		if room > len(batch) {
			room = len(batch)
		}
		p.buf = append(p.buf, batch[:room]...)
		batch = batch[room:]
		p.cond.Broadcast()
	}
	return true
}

// Close marks the end of the stream. If err is non-nil the consumer's
// Next will return it after draining the buffered postings; otherwise
// Next returns io.EOF.
func (p *Pipe) Close(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.err = err
	p.cond.Broadcast()
}

// Next implements Stream for the consumer side of the pipe.
func (p *Pipe) Next() (sid.Posting, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.buf) == 0 {
		if p.err != nil {
			return sid.Posting{}, p.err
		}
		return sid.Posting{}, io.EOF
	}
	v := p.buf[0]
	p.buf = p.buf[1:]
	p.cond.Broadcast()
	return v, nil
}

// Drain consumes the whole stream into a list. It is used by tests and
// by the non-pipelined (blocking get) baseline.
func Drain(s Stream) (List, error) {
	var out List
	for {
		p, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// Concat returns a stream that delivers the postings of each stream in
// turn. It is used to reassemble a DPP-partitioned list from its blocks,
// whose conditions guarantee the concatenation is globally sorted.
func Concat(streams ...Stream) Stream {
	return &concatStream{streams: streams}
}

type concatStream struct {
	streams []Stream
}

func (c *concatStream) Next() (sid.Posting, error) {
	for len(c.streams) > 0 {
		p, err := c.streams[0].Next()
		if err == io.EOF {
			c.streams = c.streams[1:]
			continue
		}
		return p, err
	}
	return sid.Posting{}, io.EOF
}

// MergeStreams returns a stream delivering the union of the (sorted)
// input streams in canonical order. It is used when a list's blocks are
// not ordered (the randomised DPP split ablation of Section 4.1).
func MergeStreams(streams ...Stream) Stream {
	m := &mergeStream{}
	for _, s := range streams {
		m.heads = append(m.heads, mergeHead{s: s})
	}
	return m
}

type mergeHead struct {
	s    Stream
	cur  sid.Posting
	live bool
}

type mergeStream struct {
	heads  []mergeHead
	primed bool
}

func (m *mergeStream) prime() error {
	for i := range m.heads {
		p, err := m.heads[i].s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		m.heads[i].cur = p
		m.heads[i].live = true
	}
	m.primed = true
	return nil
}

func (m *mergeStream) Next() (sid.Posting, error) {
	if !m.primed {
		if err := m.prime(); err != nil {
			return sid.Posting{}, err
		}
	}
	best := -1
	for i := range m.heads {
		if !m.heads[i].live {
			continue
		}
		if best < 0 || m.heads[i].cur.Less(m.heads[best].cur) {
			best = i
		}
	}
	if best < 0 {
		return sid.Posting{}, io.EOF
	}
	out := m.heads[best].cur
	p, err := m.heads[best].s.Next()
	if err == io.EOF {
		m.heads[best].live = false
	} else if err != nil {
		return sid.Posting{}, err
	} else {
		m.heads[best].cur = p
	}
	return out, nil
}
