package postings

import (
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"kadop/internal/sid"
)

func randomList(rng *rand.Rand, n int) List {
	l := make(List, n)
	for i := range l {
		start := uint32(rng.Intn(1000) + 1)
		l[i] = sid.Posting{
			Peer: sid.PeerID(rng.Intn(5)),
			Doc:  sid.DocID(rng.Intn(20)),
			SID:  sid.SID{Start: start, End: start + uint32(rng.Intn(100)), Level: uint16(rng.Intn(8))},
		}
	}
	l.Sort()
	return l
}

func TestSortAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := randomList(rng, 200)
	if !l.Sorted() {
		t.Fatal("Sort did not sort")
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate of sorted list: %v", err)
	}
	if len(l) >= 2 {
		l[0], l[len(l)-1] = l[len(l)-1], l[0]
		if err := l.Validate(); err == nil {
			t.Fatal("Validate should fail on shuffled list")
		}
	}
}

func TestDedup(t *testing.T) {
	p := sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 0}}
	q := sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: 3, End: 4, Level: 1}}
	l := List{p, p, p, q, q}
	got := l.Dedup()
	if len(got) != 2 || got[0] != p || got[1] != q {
		t.Fatalf("Dedup = %v", got)
	}
	if len(List{}.Dedup()) != 0 {
		t.Fatal("Dedup of empty list should be empty")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		l := randomList(rng, rng.Intn(300))
		buf, err := Encode(l)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if got := EncodedSize(l); got != len(buf) {
			t.Fatalf("EncodedSize = %d, len(Encode) = %d", got, len(buf))
		}
		dec, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(buf))
		}
		if len(dec) != len(l) {
			t.Fatalf("round trip length %d != %d", len(dec), len(l))
		}
		for i := range l {
			if dec[i] != l[i] {
				t.Fatalf("posting %d: %v != %v", i, dec[i], l[i])
			}
		}
	}
}

func TestCodecRejectsUnsorted(t *testing.T) {
	l := List{
		{Peer: 1, Doc: 0, SID: sid.SID{Start: 5, End: 6, Level: 0}},
		{Peer: 0, Doc: 0, SID: sid.SID{Start: 1, End: 2, Level: 0}},
	}
	if _, err := Encode(l); err == nil {
		t.Fatal("Encode should reject unsorted list")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	l := randomList(rand.New(rand.NewSource(3)), 20)
	buf, _ := Encode(l)
	for cut := 1; cut < len(buf); cut += 3 {
		if _, _, err := Decode(buf[:cut]); err == nil {
			// A truncation can still decode successfully only if it lands
			// exactly after a full posting AND the length prefix matched,
			// which it cannot since the length prefix says len(l).
			t.Fatalf("Decode of truncated buffer (cut=%d) should fail", cut)
		}
	}
	if _, _, err := Decode([]byte{0xff}); err == nil {
		t.Fatal("Decode of garbage should fail")
	}
}

func TestCodecCompact(t *testing.T) {
	// Postings from one document should cost only a few bytes each.
	l := make(List, 1000)
	for i := range l {
		s := uint32(2*i + 1)
		l[i] = sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: s, End: s + 1, Level: 3}}
	}
	buf, err := Encode(l)
	if err != nil {
		t.Fatal(err)
	}
	if per := float64(len(buf)) / float64(len(l)); per > 6 {
		t.Errorf("encoding too large: %.1f bytes/posting", per)
	}
}

func TestCodecQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		l := randomList(rand.New(rand.NewSource(seed)), int(n))
		buf, err := Encode(l)
		if err != nil {
			return false
		}
		dec, _, err := Decode(buf)
		if err != nil {
			return false
		}
		if len(l) == 0 {
			return len(dec) == 0
		}
		return reflect.DeepEqual(dec, List(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDocRangeAndClip(t *testing.T) {
	l := List{
		{Peer: 0, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 0}},
		{Peer: 0, Doc: 3, SID: sid.SID{Start: 1, End: 2, Level: 0}},
		{Peer: 0, Doc: 3, SID: sid.SID{Start: 3, End: 4, Level: 1}},
		{Peer: 1, Doc: 0, SID: sid.SID{Start: 1, End: 2, Level: 0}},
		{Peer: 2, Doc: 9, SID: sid.SID{Start: 1, End: 2, Level: 0}},
	}
	lo, hi, ok := l.DocRange()
	if !ok || lo != (sid.DocKey{Peer: 0, Doc: 1}) || hi != (sid.DocKey{Peer: 2, Doc: 9}) {
		t.Fatalf("DocRange = %v %v %v", lo, hi, ok)
	}
	clip := l.ClipDocs(sid.DocKey{Peer: 0, Doc: 3}, sid.DocKey{Peer: 1, Doc: 0})
	if len(clip) != 3 {
		t.Fatalf("ClipDocs = %v", clip)
	}
	if clip[0].Doc != 3 || clip[2].Peer != 1 {
		t.Fatalf("ClipDocs content = %v", clip)
	}
	if got := l.ClipDocs(sid.DocKey{Peer: 3, Doc: 0}, sid.DocKey{Peer: 4, Doc: 0}); len(got) != 0 {
		t.Fatalf("ClipDocs outside range = %v", got)
	}
	if got := l.ClipDocs(sid.DocKey{Peer: 1, Doc: 0}, sid.DocKey{Peer: 0, Doc: 0}); len(got) != 0 {
		t.Fatalf("ClipDocs inverted range = %v", got)
	}
	if _, _, ok := (List{}).DocRange(); ok {
		t.Fatal("DocRange of empty list should report !ok")
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomList(rng, 100)
	b := randomList(rng, 150)
	m := Merge(a, b)
	if len(m) != 250 {
		t.Fatalf("Merge length = %d", len(m))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Merge not sorted: %v", err)
	}
}

func TestSliceStream(t *testing.T) {
	l := randomList(rand.New(rand.NewSource(5)), 10)
	s := NewSliceStream(l)
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("Drain mismatch")
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatal("exhausted stream should return io.EOF")
	}
}

func TestPipeBackpressureAndOrder(t *testing.T) {
	l := randomList(rand.New(rand.NewSource(6)), 5000)
	p := NewPipe(16) // tiny buffer to force blocking
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(l); i += 100 {
			end := i + 100
			if end > len(l) {
				end = len(l)
			}
			if !p.Send(l[i:end]) {
				t.Error("Send failed on open pipe")
				return
			}
		}
		p.Close(nil)
	}()
	got, err := Drain(p)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("pipe reordered or dropped postings")
	}
}

func TestPipeError(t *testing.T) {
	p := NewPipe(4)
	p.Send(List{{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 0}}})
	wantErr := io.ErrUnexpectedEOF
	p.Close(wantErr)
	if _, err := p.Next(); err != nil {
		t.Fatalf("buffered posting should drain first, got %v", err)
	}
	if _, err := p.Next(); err != wantErr {
		t.Fatalf("Next after Close(err) = %v, want %v", err, wantErr)
	}
	// Close is idempotent and Send after close reports failure.
	p.Close(nil)
	if p.Send(List{{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 0}}}) {
		t.Fatal("Send after Close should return false")
	}
}

func TestConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randomList(rng, 99)
	s := Concat(
		NewSliceStream(l[:30]),
		NewSliceStream(nil),
		NewSliceStream(l[30:70]),
		NewSliceStream(l[70:]),
	)
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("Concat mismatch")
	}
}

func TestMergeStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomList(rng, 40)
	b := randomList(rng, 60)
	c := randomList(rng, 0)
	got, err := Drain(MergeStreams(NewSliceStream(a), NewSliceStream(b), NewSliceStream(c)))
	if err != nil {
		t.Fatal(err)
	}
	want := Merge(a, b)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("MergeStreams mismatch")
	}
}
