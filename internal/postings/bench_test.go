package postings

import (
	"math/rand"
	"testing"
)

func benchList(n int) List {
	return randomList(rand.New(rand.NewSource(1)), n)
}

func BenchmarkEncode(b *testing.B) {
	l := benchList(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(l); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(EncodedSize(l)))
}

func BenchmarkDecode(b *testing.B) {
	l := benchList(10000)
	enc, _ := Encode(l)
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	x := benchList(5000)
	y := benchList(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(x, y)
	}
}

func BenchmarkPipeThroughput(b *testing.B) {
	l := benchList(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPipe(1024)
		go func() {
			for j := 0; j < len(l); j += 256 {
				p.Send(l[j : j+256])
			}
			p.Close(nil)
		}()
		if _, err := Drain(p); err != nil {
			b.Fatal(err)
		}
	}
}
