package pattern

import (
	"math/rand"
	"testing"

	"kadop/internal/sid"
	"kadop/internal/xmltree"
)

func TestParseSimplePath(t *testing.T) {
	q, err := Parse("//article//author")
	if err != nil {
		t.Fatal(err)
	}
	nodes := q.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if nodes[0].Term.Text != "article" || nodes[0].Axis != Descendant {
		t.Errorf("root = %+v", nodes[0])
	}
	if nodes[1].Term.Text != "author" || nodes[1].Axis != Descendant {
		t.Errorf("child = %+v", nodes[1])
	}
}

func TestParseChildAxis(t *testing.T) {
	q := MustParse("//article/title")
	nodes := q.Nodes()
	if nodes[1].Axis != Child {
		t.Errorf("axis = %v", nodes[1].Axis)
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Every query string quoted in the paper must parse.
	for _, s := range []string{
		`//article[. contains "Ullman"]`,
		`//article//author[. contains "Ullman"]`,
		`//article[//title]//author[. contains "Ullman"]`,
		`//article[contains(.//title,'system') and contains(.//abstract,'interface')]`,
		`//*[contains(.,'xml')]//title`,
		`//article//abstract[.contains "graph"]`,
		`//a//b[//c][//d]`,
	} {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%s): %v", s, err)
		}
	}
}

func TestParseContainsDesugar(t *testing.T) {
	q := MustParse(`//author[. contains "Ullman"]`)
	nodes := q.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	w := nodes[1]
	if w.Term.Kind != xmltree.Word || w.Term.Text != "ullman" {
		t.Errorf("word node = %+v", w)
	}
	if w.Axis != DescendantOrSelf {
		t.Errorf("word axis = %v", w.Axis)
	}
}

func TestParseContainsPathDesugar(t *testing.T) {
	q := MustParse(`//article[contains(.//title,'system')]`)
	nodes := q.Nodes()
	// article -> title -> word(system)
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d: %v", len(nodes), q.String())
	}
	if nodes[1].Term.Text != "title" || nodes[1].Axis != Descendant {
		t.Errorf("title node = %+v", nodes[1])
	}
	if nodes[2].Term.Text != "system" || nodes[2].Axis != DescendantOrSelf {
		t.Errorf("word node = %+v", nodes[2])
	}
}

func TestParseBranchPredicate(t *testing.T) {
	q := MustParse(`//a//b[//c][//d]`)
	nodes := q.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	b := nodes[1]
	if len(b.Children) != 2 {
		t.Fatalf("b children = %d", len(b.Children))
	}
}

func TestParseWildcard(t *testing.T) {
	q := MustParse(`//*[contains(.,'xml')]//title`)
	nodes := q.Nodes()
	if !nodes[0].IsWildcard() {
		t.Error("root should be wildcard")
	}
	terms := q.Terms()
	// xml (word) and title (label); the wildcard is not indexable.
	if len(terms) != 2 {
		t.Errorf("terms = %v", terms)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"article",
		"//",
		"//a[",
		"//a[foo]",
		`//a[. contains ]`,
		`//a[. contains "x]`,
		"//a trailing",
		"//*",
		`//a[contains(]`,
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		`//article//author`,
		`//article[//title]//author[. contains "ullman"]`,
		`//a//b[//c][//d]`,
	} {
		q := MustParse(s)
		r, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q (from %q): %v", q.String(), s, err)
		}
		if len(r.Nodes()) != len(q.Nodes()) {
			t.Errorf("round trip changed node count for %q", s)
		}
	}
}

func TestValidate(t *testing.T) {
	q := &Query{}
	if err := q.Validate(); err == nil {
		t.Error("empty query should not validate")
	}
	q = &Query{Root: &Node{Term: xmltree.LabelTerm(Wildcard)}}
	if err := q.Validate(); err == nil {
		t.Error("wildcard-only query should not validate")
	}
	w := &Node{Term: xmltree.WordTerm("x"), Children: []*Node{{Term: xmltree.LabelTerm("a")}}}
	q = &Query{Root: w}
	if err := q.Validate(); err == nil {
		t.Error("word node with children should not validate")
	}
}

const doc1 = `<dblp>
  <article>
    <author>Jeffrey Ullman</author>
    <title>Principles of database systems</title>
  </article>
  <article>
    <author>Serge Abiteboul</author>
    <title>Querying XML</title>
  </article>
  <inproceedings>
    <author>Jeffrey Ullman</author>
    <title>More principles</title>
  </inproceedings>
</dblp>`

func matchCount(t *testing.T, query, doc string) int {
	t.Helper()
	q := MustParse(query)
	d, err := xmltree.ParseBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return len(MatchDocument(q, d, sid.DocKey{Peer: 1, Doc: 1}))
}

func TestMatchDocument(t *testing.T) {
	cases := []struct {
		query string
		want  int
	}{
		{`//article//author`, 2},
		{`//article/author`, 2},
		{`//dblp//author`, 3},
		{`//article//author[. contains "Ullman"]`, 1},
		{`//article[//title]//author[. contains "Ullman"]`, 1},
		{`//inproceedings//author[. contains "ullman"]`, 1},
		{`//article//editor`, 0},
		{`//author/article`, 0},
		// 'xml' occurs under article 2's title: ancestors dblp (3 title
		// descendants) and article 2 (1 title descendant) both qualify.
		{`//*[contains(.,'xml')]//title`, 4},
		{`//article[. contains "xml"]`, 1}, // descendant-or-self finds title words
	}
	for _, c := range cases {
		if got := matchCount(t, c.query, doc1); got != c.want {
			t.Errorf("matches(%s) = %d, want %d", c.query, got, c.want)
		}
	}
}

func TestMatchDocumentWildcardAncestor(t *testing.T) {
	// //*[contains(.,'xml')]//title : the wildcard must be an element
	// containing the word 'xml' with a title descendant.
	doc := `<a><b>about xml things</b></a>`
	if got := matchCount(t, `//*[contains(.,'xml')]//title`, doc); got != 0 {
		t.Errorf("no title in doc: matches = %d", got)
	}
	doc = `<a><b>xml<c><title>t</title></c></b></a>`
	// b contains the word and has a title descendant; a also has a title
	// descendant but does not contain the word directly or below? It does:
	// word is below a. So both a and b match the wildcard.
	if got := matchCount(t, `//*[contains(.,'xml')]//title`, doc); got != 2 {
		t.Errorf("matches = %d, want 2", got)
	}
}

func TestMatchElementsOrder(t *testing.T) {
	q := MustParse(`//article//author`)
	d, err := xmltree.ParseBytes([]byte(doc1))
	if err != nil {
		t.Fatal(err)
	}
	ms := MatchDocument(q, d, sid.DocKey{Peer: 3, Doc: 5})
	for _, m := range ms {
		if m.Doc != (sid.DocKey{Peer: 3, Doc: 5}) {
			t.Errorf("match doc = %v", m.Doc)
		}
		if len(m.Elements) != 2 {
			t.Fatalf("elements = %d", len(m.Elements))
		}
		if !m.Elements[0].Contains(m.Elements[1]) {
			t.Errorf("article %v does not contain author %v", m.Elements[0], m.Elements[1])
		}
	}
}

func TestAxisSatisfied(t *testing.T) {
	a := sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 10, Level: 0}}
	c := sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: 2, End: 5, Level: 1}}
	g := sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: 3, End: 4, Level: 2}}
	other := sid.Posting{Peer: 1, Doc: 2, SID: sid.SID{Start: 2, End: 5, Level: 1}}

	if !AxisSatisfied(Child, a, c) || AxisSatisfied(Child, a, g) {
		t.Error("child axis")
	}
	if !AxisSatisfied(Descendant, a, g) || AxisSatisfied(Descendant, g, a) {
		t.Error("descendant axis")
	}
	if !AxisSatisfied(DescendantOrSelf, a, a) {
		t.Error("descendant-or-self must accept self")
	}
	if AxisSatisfied(Descendant, a, other) {
		t.Error("cross-document axis must fail")
	}
}

// TestParseNeverPanics feeds the parser mutated fragments of valid
// queries and random bytes; it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	seeds := []string{
		`//article//author[. contains "Ullman"]`,
		`//a[//b][contains(.//c,'w')]/d`,
		`//*[contains(.,'xml')]//title`,
		`//{word}`,
	}
	rng := rand.New(rand.NewSource(21))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for trial := 0; trial < 5000; trial++ {
		s := []byte(seeds[rng.Intn(len(seeds))])
		// Mutate: delete, duplicate or replace a few bytes.
		for m := 0; m < 1+rng.Intn(4); m++ {
			if len(s) == 0 {
				break
			}
			i := rng.Intn(len(s))
			switch rng.Intn(3) {
			case 0:
				s = append(s[:i], s[i+1:]...)
			case 1:
				s = append(s[:i], append([]byte{s[i]}, s[i:]...)...)
			default:
				s[i] = byte(rng.Intn(128))
			}
		}
		q, err := Parse(string(s))
		if err == nil {
			// Whatever parses must render and re-parse.
			if _, err := Parse(q.String()); err != nil {
				t.Fatalf("round trip of %q (from %q) failed: %v", q.String(), s, err)
			}
		}
	}
}

// TestWordStepParses checks the {word} step syntax used for split
// sub-queries.
func TestWordStepParses(t *testing.T) {
	q := MustParse(`//{interface}`)
	nodes := q.Nodes()
	if len(nodes) != 1 || nodes[0].Term.Kind != xmltree.Word || nodes[0].Term.Text != "interface" {
		t.Fatalf("word step = %+v", nodes[0])
	}
	r := MustParse(q.String())
	if r.Nodes()[0].Term != nodes[0].Term {
		t.Fatal("word step round trip")
	}
}
