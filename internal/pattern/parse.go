package pattern

import (
	"fmt"
	"strings"

	"kadop/internal/xmltree"
)

// Parse parses the XPath subset KadoP supports into a tree-pattern
// query. The grammar:
//
//	query      = path
//	path       = step+
//	step       = ("/" | "//") name predicate*
//	name       = NCName | "*"
//	predicate  = "[" (relpath | containsFn | containsKw) "]"
//	relpath    = ("."? ("/" | "//"))? path        (a branch)
//	containsFn = "contains(" ("." | relpath) "," string ")"
//	containsKw = "." "contains" string             (the paper's notation)
//	string     = '"' chars '"' | "'" chars "'"
//
// Examples from the paper, all accepted:
//
//	//article[. contains "Ullman"]
//	//article//author[. contains "Ullman"]
//	//article[//title]//author[. contains "Ullman"]
//	//article[contains(.//title,'system') and contains(.//abstract,'interface')]
//	//*[contains(.,'xml')]//title
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	root, err := p.parsePath(nil)
	if err != nil {
		return nil, fmt.Errorf("pattern: parse %q: %w", input, err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pattern: parse %q: trailing input at offset %d", input, p.pos)
	}
	q := &Query{Root: root}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for statically known query strings; it panics on
// error and is intended for tests and example programs.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) eat(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.eat(s) {
		return fmt.Errorf("expected %q at offset %d", s, p.pos)
	}
	return nil
}

// parsePath parses step+ and attaches the first step to parent (nil for
// the query root). It returns the root of the parsed chain.
func (p *parser) parsePath(parent *Node) (*Node, error) {
	first, err := p.parseStep(parent)
	if err != nil {
		return nil, err
	}
	cur := first
	for p.peek("/") {
		next, err := p.parseStep(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return first, nil
}

// parseStep parses one ("/" | "//") name predicate* step, attaches it
// to parent, and returns the new node.
func (p *parser) parseStep(parent *Node) (*Node, error) {
	axis := Child
	if p.eat("//") {
		axis = Descendant
	} else if p.eat("/") {
		axis = Child
	} else {
		return nil, fmt.Errorf("expected '/' or '//' at offset %d", p.pos)
	}
	var n *Node
	if p.peek("{") {
		// "{word}" steps denote word terms directly (used when a value
		// condition stands alone, e.g. in split sub-queries).
		p.eat("{")
		w, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		n = &Node{Term: xmltree.WordTerm(w), Axis: DescendantOrSelf}
		_ = axis
	} else {
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		n = &Node{Term: xmltree.LabelTerm(name), Axis: axis}
	}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	for p.peek("[") {
		if err := p.parsePredicate(n); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (p *parser) parseName() (string, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		return Wildcard, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c == '-' || c == '.' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", fmt.Errorf("expected element name at offset %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseString() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("expected string at end of input")
	}
	quote := p.src[p.pos]
	if quote != '"' && quote != '\'' {
		return "", fmt.Errorf("expected quoted string at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated string starting at offset %d", start-1)
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// parsePredicate parses one bracketed predicate and attaches the
// resulting branch(es) to n. Predicates may be joined with "and".
func (p *parser) parsePredicate(n *Node) error {
	if err := p.expect("["); err != nil {
		return err
	}
	for {
		if err := p.parsePredicateTerm(n); err != nil {
			return err
		}
		if !p.eat("and") {
			break
		}
	}
	return p.expect("]")
}

func (p *parser) parsePredicateTerm(n *Node) error {
	switch {
	case p.peek("contains("):
		return p.parseContainsFn(n)
	case p.peek("."):
		// ". contains \"w\"" (the paper's notation) or ".//path".
		save := p.pos
		p.eat(".")
		if p.eat("contains") {
			w, err := p.parseString()
			if err != nil {
				return err
			}
			attachWord(n, w)
			return nil
		}
		p.pos = save
		p.eat(".") // relative branch .//a or ./a
		if !p.peek("/") {
			return fmt.Errorf("expected path after '.' at offset %d", p.pos)
		}
		_, err := p.parsePath(n)
		return err
	case p.peek("/"):
		_, err := p.parsePath(n)
		return err
	default:
		return fmt.Errorf("unsupported predicate at offset %d", p.pos)
	}
}

// parseContainsFn parses contains(. , "w") or contains(.//path, "w").
func (p *parser) parseContainsFn(n *Node) error {
	if err := p.expect("contains("); err != nil {
		return err
	}
	target := n
	p.skipSpace()
	if p.eat(".") {
		if p.peek("/") {
			branch, err := p.parsePath(n)
			if err != nil {
				return err
			}
			// The word attaches to the deepest step of the branch.
			target = deepest(branch)
		}
	} else if p.peek("/") {
		branch, err := p.parsePath(n)
		if err != nil {
			return err
		}
		target = deepest(branch)
	} else {
		return fmt.Errorf("expected '.' or path in contains() at offset %d", p.pos)
	}
	if err := p.expect(","); err != nil {
		return err
	}
	w, err := p.parseString()
	if err != nil {
		return err
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	attachWord(target, w)
	return nil
}

func deepest(n *Node) *Node {
	for len(n.Children) > 0 {
		n = n.Children[len(n.Children)-1]
	}
	return n
}

// attachWord desugars a contains predicate on n into a word leaf
// connected with a descendant-or-self edge: the word's host element is
// n itself or any element below it.
func attachWord(n *Node, word string) {
	words := xmltree.Tokenize(word)
	for _, w := range words {
		n.Children = append(n.Children, &Node{
			Term: xmltree.WordTerm(w),
			Axis: DescendantOrSelf,
		})
	}
}
