// Package pattern implements the tree-pattern queries of Section 2: the
// subset of XPath that KadoP evaluates over the distributed collection.
//
// A tree-pattern query is a tree whose nodes are labeled with an element
// label or the wildcard "*", connected by child ("/") or descendant
// ("//") edges. A node may additionally carry a value predicate
// contains(., "word"); predicates are desugared into word-term leaves
// attached with a descendant-or-self edge, since a word posting is
// attached to the element that directly contains the text.
//
// Given a query with n nodes, an answer is a tuple
// (peer, doc, e_1, ..., e_n) of elements of one document such that the
// mapping preserves all axes and label/word conditions.
package pattern

import (
	"context"
	"fmt"
	"strings"

	"kadop/internal/obs/cost"
	"kadop/internal/sid"
	"kadop/internal/xmltree"
)

// Axis is the relationship between a pattern node and its parent node.
type Axis uint8

const (
	// Child is the "/" axis: the element must be a direct child.
	Child Axis = iota
	// Descendant is the "//" axis: the element must be a strict
	// descendant.
	Descendant
	// DescendantOrSelf connects desugared word predicates: the word may
	// be attached to the element itself or to any descendant.
	DescendantOrSelf
)

func (a Axis) String() string {
	switch a {
	case Child:
		return "/"
	case Descendant:
		return "//"
	case DescendantOrSelf:
		return "//self::"
	}
	return "?"
}

// Wildcard is the label of unconstrained pattern nodes.
const Wildcard = "*"

// Node is one node of a tree-pattern query.
type Node struct {
	Term     xmltree.Term // label term (possibly Wildcard) or word term
	Axis     Axis         // axis connecting this node to its parent
	Children []*Node
}

// IsWildcard reports whether the node matches any element label.
func (n *Node) IsWildcard() bool {
	return n.Term.Kind == xmltree.Label && n.Term.Text == Wildcard
}

// Query is a tree-pattern query.
type Query struct {
	Root *Node
}

// Nodes returns the query's nodes in pre-order. The positions in this
// slice are the answer-tuple variable positions.
func (q *Query) Nodes() []*Node {
	var out []*Node
	var rec func(*Node)
	rec = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if q.Root != nil {
		rec(q.Root)
	}
	return out
}

// Terms returns the distinct indexable terms of the query: every
// non-wildcard label and every word. These are the posting lists the
// index query must fetch.
func (q *Query) Terms() []xmltree.Term {
	seen := map[string]bool{}
	var out []xmltree.Term
	for _, n := range q.Nodes() {
		if n.IsWildcard() {
			continue
		}
		k := n.Term.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, n.Term)
		}
	}
	return out
}

// Validate checks that the query is well-formed and answerable by an
// index query: it must contain at least one non-wildcard term, and word
// nodes must be leaves.
func (q *Query) Validate() error {
	if q == nil || q.Root == nil {
		return fmt.Errorf("pattern: empty query")
	}
	hasTerm := false
	for _, n := range q.Nodes() {
		if n.Term.Kind == xmltree.Word {
			if len(n.Children) > 0 {
				return fmt.Errorf("pattern: word node %q cannot have children", n.Term.Text)
			}
			hasTerm = true
		} else if !n.IsWildcard() {
			hasTerm = true
		}
	}
	if !hasTerm {
		return fmt.Errorf("pattern: query has no indexable term (only wildcards)")
	}
	return nil
}

// String renders the query in the parser's syntax. Word nodes render
// as contains predicates, except a word at the root of the pattern
// (which arises when query-splitting machinery isolates a value
// condition), rendered as the step "//{word}".
func (q *Query) String() string {
	var sb strings.Builder
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Term.Kind == xmltree.Word {
			if n == q.Root {
				fmt.Fprintf(&sb, "//{%s}", n.Term.Text)
				return
			}
			fmt.Fprintf(&sb, "[contains(., %q)]", n.Term.Text)
			return
		}
		sb.WriteString(n.Axis.String())
		sb.WriteString(n.Term.Text)
		// Render word-predicate children first, then element children as
		// predicates except the last, which continues the path.
		var elems []*Node
		for _, c := range n.Children {
			if c.Term.Kind == xmltree.Word {
				rec(c)
			} else {
				elems = append(elems, c)
			}
		}
		for i, c := range elems {
			if i < len(elems)-1 {
				sb.WriteString("[")
				rec(c)
				sb.WriteString("]")
			} else {
				rec(c)
			}
		}
	}
	if q.Root != nil {
		rec(q.Root)
	}
	return sb.String()
}

// Match is one answer tuple: the matched document and one element per
// query node, in pre-order node order.
type Match struct {
	Doc      sid.DocKey
	Elements []sid.SID
}

// axisOK reports whether descendant d satisfies the axis relative to
// ancestor candidate a (both in the same document).
func axisOK(axis Axis, a, d sid.SID) bool {
	switch axis {
	case Child:
		return a.ParentOf(d)
	case Descendant:
		return a.Contains(d)
	case DescendantOrSelf:
		return a == d || a.Contains(d)
	}
	return false
}

// AxisSatisfied reports whether postings a (ancestor side) and d
// (descendant side) satisfy the axis; they must be in the same document.
func AxisSatisfied(axis Axis, a, d sid.Posting) bool {
	return a.SameDoc(d) && axisOK(axis, a.SID, d.SID)
}

// MatchDocument enumerates all matches of q in a parsed document,
// by direct tree evaluation. It is the reference (non-distributed)
// evaluator: the second query-processing phase runs it at publishing
// peers, and tests use it as ground truth for the index machinery.
func MatchDocument(q *Query, doc *xmltree.Document, key sid.DocKey) []Match {
	return MatchDocumentContext(context.Background(), q, doc, key)
}

// MatchDocumentContext is MatchDocument with the caller's context.
// When the context carries cost.Counters the evaluator accumulates its
// answer-phase actuals there: one document evaluated, every element
// node visited while enumerating, and the matches produced.
func MatchDocumentContext(ctx context.Context, q *Query, doc *xmltree.Document, key sid.DocKey) []Match {
	c := cost.FromContext(ctx)
	if q == nil || q.Root == nil || doc == nil || doc.Root == nil {
		return nil
	}
	c.AddDocsEvaluated(1)
	var out []Match
	nodes := q.Nodes()
	index := map[*Node]int{}
	for i, n := range nodes {
		index[n] = i
	}
	assignment := make([]sid.SID, len(nodes))

	// elementsOf collects candidate document nodes for a pattern node.
	var allNodes []*xmltree.Node
	doc.Walk(func(n *xmltree.Node) { allNodes = append(allNodes, n) })

	matchesTerm := func(pn *Node, dn *xmltree.Node) bool {
		if pn.Term.Kind == xmltree.Word {
			for _, w := range dn.Words {
				if w == pn.Term.Text {
					return true
				}
			}
			return false
		}
		return pn.IsWildcard() || dn.Label == pn.Term.Text
	}

	// Backtracking enumeration over pre-order pattern nodes: by the time
	// node i is assigned, its pattern parent (which precedes it in
	// pre-order) is already bound, so the axis can be checked directly.
	var enumerate func(i int)
	parentOf := map[*Node]*Node{}
	for _, n := range nodes {
		for _, c := range n.Children {
			parentOf[c] = n
		}
	}
	enumerate = func(i int) {
		if i == len(nodes) {
			m := Match{Doc: key, Elements: make([]sid.SID, len(nodes))}
			copy(m.Elements, assignment)
			out = append(out, m)
			return
		}
		pn := nodes[i]
		for _, dn := range allNodes {
			c.AddElementsScanned(1)
			if !matchesTerm(pn, dn) {
				continue
			}
			if parent := parentOf[pn]; parent != nil {
				if !axisOK(pn.Axis, assignment[index[parent]], dn.SID) {
					continue
				}
			}
			assignment[i] = dn.SID
			enumerate(i + 1)
		}
	}
	enumerate(0)
	c.AddAnswers(int64(len(out)))
	return out
}
