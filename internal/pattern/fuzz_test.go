package pattern

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser on arbitrary input. Malformed queries must
// be rejected with an error, never a panic; accepted queries must
// validate, and their String() rendering must reparse to an equivalent
// query whose rendering is a fixpoint (parse∘String is idempotent).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The paper's examples.
		`//article[. contains "Ullman"]`,
		`//article//author[. contains "Ullman"]`,
		`//article[//title]//author[. contains "Ullman"]`,
		`//article[contains(.//title,'system') and contains(.//abstract,'interface')]`,
		`//*[contains(.,'xml')]//title`,
		// Grammar corners: absolute child steps, word steps, stacked and
		// relative predicates, wildcard interior nodes.
		`/dblp/article/title`,
		`//{ullman}`,
		`//a[/b][/c]//d`,
		`//a[./b and .//c]`,
		`//a[.//b[. contains "x"]]//c`,
		`//*//*[. contains "w"]`,
		// Near-misses the parser must reject cleanly.
		``, `//`, `//*`, `///`, `a//b`, `//a[`, `//a[]`, `//a[. contains "x`,
		`//a[contains(]`, `//{w`, `//a[. contains "x" and]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejected input; only a panic is a failure here
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid query: %v", input, err)
		}
		s1 := q.String()
		// Tokenize keeps every rune above 127, printable or not, while
		// String() quotes words with %q and the parser reads quoted
		// strings verbatim (no escape processing). A word that needs
		// escaping therefore cannot round-trip through the concrete
		// syntax; skip the reparse for those renderings.
		if strings.Contains(s1, `\`) {
			return
		}
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("String() of parsed %q does not reparse: %q: %v", input, s1, err)
		}
		if got, want := len(q2.Nodes()), len(q.Nodes()); got != want {
			t.Fatalf("reparse of %q changed node count: got %d, want %d", s1, got, want)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("String() is not a fixpoint: %q reparses and rerenders as %q", s1, s2)
		}
	})
}
