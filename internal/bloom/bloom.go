// Package bloom implements the basic Bloom filter [Bloom 1970] used by
// KadoP's Structural Bloom Filters (Section 5 of the paper).
//
// The filter is a bit vector of n bits with k hash functions; an element
// is inserted by setting the k bits it hashes to, and a membership
// look-up answers positively iff all k bits are set. Look-ups of
// inserted elements always succeed; look-ups of absent elements fail
// except with the filter's false-positive probability, which depends on
// n, k and the number of insertions.
//
// The k hash functions are derived from one 128-bit hash by the
// standard double-hashing construction h_i(e) = h1(e) + i*h2(e), which
// is indistinguishable from independent hashes for Bloom-filter
// purposes (Kirsch & Mitzenmacher).
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Filter is a Bloom filter over 64-bit keys.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	count uint64 // number of insertions, for fill-ratio estimation
}

// New returns a filter with nbits bits (rounded up to a multiple of 64,
// minimum 64) and k hash functions (clamped to [1, 32]).
func New(nbits uint64, k int) *Filter {
	if nbits < 64 {
		nbits = 64
	}
	words := (nbits + 63) / 64
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return &Filter{bits: make([]uint64, words), nbits: words * 64, k: k}
}

// OptimalParams returns the bit count and hash count minimising space
// for n expected insertions at target false-positive rate fp:
// m = -n ln fp / (ln 2)^2, k = (m/n) ln 2.
func OptimalParams(n uint64, fp float64) (nbits uint64, k int) {
	if n == 0 {
		n = 1
	}
	if fp <= 0 {
		fp = 1e-9
	}
	if fp >= 1 {
		fp = 0.999
	}
	ln2 := math.Ln2
	m := math.Ceil(-float64(n) * math.Log(fp) / (ln2 * ln2))
	nbits = uint64(m)
	k = int(math.Round(m / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return nbits, k
}

// NewOptimal returns a filter sized for n insertions at false-positive
// rate fp.
func NewOptimal(n uint64, fp float64) *Filter {
	nbits, k := OptimalParams(n, fp)
	return New(nbits, k)
}

// mix128 produces two independent 64-bit hashes of key using a
// SplitMix64-style finalizer over two distinct stream constants.
func mix128(key uint64) (h1, h2 uint64) {
	h1 = finalize(key + 0x9e3779b97f4a7c15)
	h2 = finalize(key ^ 0xbf58476d1ce4e5b9)
	h2 |= 1 // odd, so the double-hash probes cover the table
	return
}

func finalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Insert adds a 64-bit key to the filter.
func (f *Filter) Insert(key uint64) {
	h1, h2 := mix128(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit>>6] |= 1 << (bit & 63)
	}
	f.count++
}

// Contains reports whether key may have been inserted. False positives
// occur with the filter's error probability; false negatives never.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := mix128(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of insertions performed.
func (f *Filter) Count() uint64 { return f.count }

// Bits returns the size of the filter in bits.
func (f *Filter) Bits() uint64 { return f.nbits }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// SizeBytes returns the wire size of the filter; this is what the
// Bloom reducer traffic accounting charges for shipping it.
func (f *Filter) SizeBytes() int { return 16 + len(f.bits)*8 }

// FillRatio returns the fraction of set bits, an estimator of the
// filter's current false-positive behaviour (fp ~= fill^k).
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

// EstimatedFP returns the filter's estimated false-positive rate given
// its current fill.
func (f *Filter) EstimatedFP() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// Marshal serialises the filter to a compact binary form.
func (f *Filter) Marshal() []byte {
	buf := make([]byte, 0, f.SizeBytes())
	buf = binary.AppendUvarint(buf, f.nbits)
	buf = binary.AppendUvarint(buf, uint64(f.k))
	buf = binary.AppendUvarint(buf, f.count)
	for _, w := range f.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Unmarshal reconstructs a filter serialised by Marshal.
func Unmarshal(buf []byte) (*Filter, error) {
	nbits, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("bloom: bad nbits")
	}
	off := sz
	k, sz := binary.Uvarint(buf[off:])
	if sz <= 0 || k == 0 || k > 32 {
		return nil, fmt.Errorf("bloom: bad k")
	}
	off += sz
	count, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("bloom: bad count")
	}
	off += sz
	if nbits%64 != 0 || nbits == 0 {
		return nil, fmt.Errorf("bloom: nbits %d not a positive multiple of 64", nbits)
	}
	words := int(nbits / 64)
	if len(buf[off:]) < words*8 {
		return nil, fmt.Errorf("bloom: truncated bit vector: want %d words, have %d bytes", words, len(buf[off:]))
	}
	f := &Filter{bits: make([]uint64, words), nbits: nbits, k: int(k), count: count}
	for i := 0; i < words; i++ {
		f.bits[i] = binary.LittleEndian.Uint64(buf[off+i*8:])
	}
	return f, nil
}

// Union merges other into f (bitwise or). Both filters must have
// identical geometry; Union returns an error otherwise. It is used when
// a reduced posting list is assembled from several DPP blocks whose
// filters were built independently.
func (f *Filter) Union(other *Filter) error {
	if f.nbits != other.nbits || f.k != other.k {
		return fmt.Errorf("bloom: geometry mismatch: (%d,%d) vs (%d,%d)", f.nbits, f.k, other.nbits, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.count += other.count
	return nil
}
