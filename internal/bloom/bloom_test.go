package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewOptimal(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Count() != 1000 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	for _, target := range []float64{0.01, 0.05, 0.20} {
		f := NewOptimal(5000, target)
		rng := rand.New(rand.NewSource(2))
		inserted := make(map[uint64]bool, 5000)
		for i := 0; i < 5000; i++ {
			k := rng.Uint64()
			inserted[k] = true
			f.Insert(k)
		}
		fp := 0
		probes := 50000
		for i := 0; i < probes; i++ {
			k := rng.Uint64()
			if inserted[k] {
				continue
			}
			if f.Contains(k) {
				fp++
			}
		}
		rate := float64(fp) / float64(probes)
		if rate > target*1.6 {
			t.Errorf("target fp %.3f: measured %.4f (too high)", target, rate)
		}
		if target >= 0.05 && rate < target*0.3 {
			t.Errorf("target fp %.3f: measured %.4f (suspiciously low: wrong sizing?)", target, rate)
		}
	}
}

func TestOptimalParams(t *testing.T) {
	nbits, k := OptimalParams(1000, 0.01)
	// Theory: m ~= 9.585*n for 1% fp, k ~= 7.
	if nbits < 9000 || nbits > 10500 {
		t.Errorf("nbits = %d, want ~9585", nbits)
	}
	if k < 6 || k > 8 {
		t.Errorf("k = %d, want ~7", k)
	}
	// Degenerate inputs must not panic or return nonsense.
	nbits, k = OptimalParams(0, -1)
	if nbits == 0 || k < 1 {
		t.Errorf("degenerate OptimalParams = %d,%d", nbits, k)
	}
	_, k = OptimalParams(10, 2)
	if k < 1 {
		t.Errorf("fp>=1 should still give k>=1")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewOptimal(500, 0.02)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	buf := f.Marshal()
	if len(buf) > f.SizeBytes() {
		t.Errorf("Marshal produced %d bytes, SizeBytes = %d", len(buf), f.SizeBytes())
	}
	g, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatal("geometry lost in round trip")
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatal("round-tripped filter lost a key")
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	f := New(128, 3)
	f.Insert(42)
	buf := f.Marshal()
	for cut := 0; cut < len(buf)-1; cut += 5 {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("Unmarshal of %d-byte prefix should fail", cut)
		}
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("Unmarshal(nil) should fail")
	}
}

func TestUnion(t *testing.T) {
	a := New(1024, 4)
	b := New(1024, 4)
	a.Insert(1)
	b.Insert(2)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains(1) || !a.Contains(2) {
		t.Fatal("union must contain both keys")
	}
	c := New(2048, 4)
	if err := a.Union(c); err == nil {
		t.Fatal("Union with mismatched geometry should fail")
	}
}

func TestFillRatioAndEstimatedFP(t *testing.T) {
	f := New(1024, 4)
	if f.FillRatio() != 0 {
		t.Fatal("empty filter fill should be 0")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		f.Insert(rng.Uint64())
	}
	fill := f.FillRatio()
	if fill <= 0 || fill >= 1 {
		t.Fatalf("fill = %f", fill)
	}
	if est := f.EstimatedFP(); math.Abs(est-math.Pow(fill, 4)) > 1e-12 {
		t.Fatalf("EstimatedFP = %f", est)
	}
}

func TestInsertedAlwaysFound(t *testing.T) {
	f := New(4096, 5)
	prop := func(key uint64) bool {
		f.Insert(key)
		return f.Contains(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClamping(t *testing.T) {
	f := New(1, 0)
	if f.Bits() < 64 || f.K() != 1 {
		t.Errorf("clamped filter: bits=%d k=%d", f.Bits(), f.K())
	}
	f = New(100, 100)
	if f.K() != 32 {
		t.Errorf("k should clamp to 32, got %d", f.K())
	}
	if f.Bits()%64 != 0 {
		t.Errorf("bits should round to word multiple, got %d", f.Bits())
	}
}

func BenchmarkInsert(b *testing.B) {
	f := NewOptimal(uint64(b.N)+1, 0.01)
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewOptimal(100000, 0.01)
	for i := 0; i < 100000; i++ {
		f.Insert(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
