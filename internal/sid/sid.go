// Package sid implements the structural identifiers and postings that
// underlie all of KadoP's indexing and query processing.
//
// Following the paper's data model (Section 2), every element of an XML
// document is identified by a structural identifier (start, end, level):
// start and end are the positions of the element's opening and closing
// tags when the document's tags are numbered in document order, and level
// is the element's depth in the tree. The triple (peer, doc, sid) is a
// globally unique element identifier, and a posting is one row of the
// distributed Term relation: (peer, doc, sid) for one occurrence of a
// term (an element label or a word).
//
// Structural identifiers support constant-time axis checks:
//
//	a is an ancestor of b  iff  a.Start < b.Start && b.End < a.End
//	a is the parent of b   iff  ancestor && a.Level+1 == b.Level
//
// Postings are totally ordered lexicographically by
// (Peer, Doc, Start, End, Level); every posting list in the system is kept
// in this order, which is what the holistic twig join, the DPP range
// conditions and the Bloom reducers all rely on.
package sid

import (
	"fmt"
)

// PeerID identifies a peer internally (the paper's integer peer id).
type PeerID uint32

// DocID identifies a document within its publishing peer; the pair
// (PeerID, DocID) identifies a document globally.
type DocID uint32

// SID is a structural identifier (start, end, level) for one element.
type SID struct {
	Start uint32 // position of the opening tag in document order (1-based)
	End   uint32 // position of the closing tag in document order
	Level uint16 // depth in the tree; the root element has level 0
}

// Valid reports whether s is a well-formed structural identifier:
// a positive start not after its end.
func (s SID) Valid() bool { return s.Start >= 1 && s.Start <= s.End }

// Width is the number of tag positions the element spans, End-Start+1.
// Leaf elements have width 2 except text-collapsed leaves of width 1.
func (s SID) Width() uint32 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start + 1
}

// Contains reports whether the element identified by s is an ancestor of
// (strictly contains) the element identified by t, assuming both belong
// to the same document.
func (s SID) Contains(t SID) bool {
	return s.Start < t.Start && t.End < s.End
}

// ParentOf reports whether s is the parent of t within one document.
func (s SID) ParentOf(t SID) bool {
	return s.Contains(t) && s.Level+1 == t.Level
}

// Compare orders structural identifiers by (Start, End, Level).
func (s SID) Compare(t SID) int {
	switch {
	case s.Start < t.Start:
		return -1
	case s.Start > t.Start:
		return 1
	case s.End < t.End:
		return -1
	case s.End > t.End:
		return 1
	case s.Level < t.Level:
		return -1
	case s.Level > t.Level:
		return 1
	}
	return 0
}

func (s SID) String() string {
	return fmt.Sprintf("[%d:%d@%d]", s.Start, s.End, s.Level)
}

// Posting is one tuple of the Term relation: term t occurs at element
// (Peer, Doc, SID). The term itself is the key under which the posting is
// stored, so it is not repeated inside the posting.
type Posting struct {
	Peer PeerID
	Doc  DocID
	SID  SID
}

// Compare orders postings lexicographically by (Peer, Doc, SID), the
// canonical order of every posting list in the system.
func (p Posting) Compare(q Posting) int {
	switch {
	case p.Peer < q.Peer:
		return -1
	case p.Peer > q.Peer:
		return 1
	case p.Doc < q.Doc:
		return -1
	case p.Doc > q.Doc:
		return 1
	}
	return p.SID.Compare(q.SID)
}

// Less reports whether p sorts strictly before q.
func (p Posting) Less(q Posting) bool { return p.Compare(q) < 0 }

// SameDoc reports whether p and q identify elements of the same document.
func (p Posting) SameDoc(q Posting) bool {
	return p.Peer == q.Peer && p.Doc == q.Doc
}

// Contains reports whether p's element is an ancestor of q's element.
// Elements of distinct documents never contain one another.
func (p Posting) Contains(q Posting) bool {
	return p.SameDoc(q) && p.SID.Contains(q.SID)
}

// ParentOf reports whether p's element is the parent of q's element.
func (p Posting) ParentOf(q Posting) bool {
	return p.SameDoc(q) && p.SID.ParentOf(q.SID)
}

func (p Posting) String() string {
	return fmt.Sprintf("(%d,%d,%s)", p.Peer, p.Doc, p.SID)
}

// MinPosting and MaxPosting bound the posting order; they are used as
// open interval endpoints in DPP conditions.
var (
	MinPosting = Posting{}
	MaxPosting = Posting{
		Peer: ^PeerID(0),
		Doc:  ^DocID(0),
		SID:  SID{Start: ^uint32(0), End: ^uint32(0), Level: ^uint16(0)},
	}
)

// DocKey identifies a document globally; it is the unit of the DPP
// document-interval filtering of Section 4.2 and of the second query
// phase (contacting the peers that hold matching documents).
type DocKey struct {
	Peer PeerID
	Doc  DocID
}

// Key returns the document key of the posting.
func (p Posting) Key() DocKey { return DocKey{Peer: p.Peer, Doc: p.Doc} }

// Compare orders document keys by (Peer, Doc).
func (k DocKey) Compare(l DocKey) int {
	switch {
	case k.Peer < l.Peer:
		return -1
	case k.Peer > l.Peer:
		return 1
	case k.Doc < l.Doc:
		return -1
	case k.Doc > l.Doc:
		return 1
	}
	return 0
}

func (k DocKey) String() string { return fmt.Sprintf("(%d,%d)", k.Peer, k.Doc) }

// MinDocKey and MaxDocKey bound the document-key order.
var (
	MinDocKey = DocKey{}
	MaxDocKey = DocKey{Peer: ^PeerID(0), Doc: ^DocID(0)}
)
