package sid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSIDValid(t *testing.T) {
	cases := []struct {
		s    SID
		want bool
	}{
		{SID{1, 2, 0}, true},
		{SID{1, 1, 0}, true},
		{SID{0, 2, 0}, false},
		{SID{3, 2, 0}, false},
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestSIDWidth(t *testing.T) {
	if w := (SID{1, 8, 0}).Width(); w != 8 {
		t.Errorf("Width = %d, want 8", w)
	}
	if w := (SID{5, 5, 2}).Width(); w != 1 {
		t.Errorf("Width = %d, want 1", w)
	}
	if w := (SID{5, 4, 2}).Width(); w != 0 {
		t.Errorf("Width of invalid sid = %d, want 0", w)
	}
}

func TestSIDContains(t *testing.T) {
	root := SID{1, 10, 0}
	child := SID{2, 5, 1}
	grandchild := SID{3, 4, 2}
	sibling := SID{6, 9, 1}

	if !root.Contains(child) || !root.Contains(grandchild) {
		t.Error("root must contain descendants")
	}
	if !child.Contains(grandchild) {
		t.Error("child must contain grandchild")
	}
	if child.Contains(sibling) || sibling.Contains(child) {
		t.Error("siblings must not contain each other")
	}
	if child.Contains(root) {
		t.Error("containment must not be symmetric")
	}
	if root.Contains(root) {
		t.Error("containment must be strict")
	}
}

func TestSIDParentOf(t *testing.T) {
	root := SID{1, 10, 0}
	child := SID{2, 5, 1}
	grandchild := SID{3, 4, 2}

	if !root.ParentOf(child) {
		t.Error("root is parent of child")
	}
	if root.ParentOf(grandchild) {
		t.Error("root is not parent of grandchild")
	}
	if !child.ParentOf(grandchild) {
		t.Error("child is parent of grandchild")
	}
}

func TestPostingCompareTotalOrder(t *testing.T) {
	ps := []Posting{
		{0, 0, SID{1, 2, 0}},
		{0, 0, SID{1, 4, 0}},
		{0, 0, SID{2, 3, 1}},
		{0, 1, SID{1, 2, 0}},
		{1, 0, SID{1, 2, 0}},
	}
	for i := range ps {
		for j := range ps {
			got := ps[i].Compare(ps[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("ps[%d] should sort before ps[%d], Compare=%d", i, j, got)
			case i == j && got != 0:
				t.Errorf("ps[%d] should equal itself, Compare=%d", i, got)
			case i > j && got <= 0:
				t.Errorf("ps[%d] should sort after ps[%d], Compare=%d", i, j, got)
			}
		}
	}
}

func TestPostingCompareAntisymmetric(t *testing.T) {
	f := func(a, b Posting) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPostingCompareTransitiveSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := make([]Posting, 500)
	for i := range ps {
		ps[i] = Posting{
			Peer: PeerID(rng.Intn(4)),
			Doc:  DocID(rng.Intn(8)),
			SID:  SID{uint32(rng.Intn(50) + 1), uint32(rng.Intn(50) + 51), uint16(rng.Intn(6))},
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	for i := 1; i < len(ps); i++ {
		if ps[i].Compare(ps[i-1]) < 0 {
			t.Fatalf("sorted slice out of order at %d: %v before %v", i, ps[i-1], ps[i])
		}
	}
}

func TestPostingContainsRequiresSameDoc(t *testing.T) {
	a := Posting{0, 0, SID{1, 10, 0}}
	b := Posting{0, 1, SID{2, 3, 1}}
	if a.Contains(b) {
		t.Error("postings from different documents must not contain each other")
	}
	b.Doc = 0
	if !a.Contains(b) {
		t.Error("ancestor posting must contain descendant in same doc")
	}
}

func TestMinMaxPostingBounds(t *testing.T) {
	f := func(p Posting) bool {
		return MinPosting.Compare(p) <= 0 && p.Compare(MaxPosting) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDocKeyCompare(t *testing.T) {
	ks := []DocKey{{0, 0}, {0, 5}, {1, 0}, {1, 7}}
	for i := range ks {
		for j := range ks {
			got := ks[i].Compare(ks[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v)=%d want %d", ks[i], ks[j], got, want)
			}
		}
	}
	if MinDocKey.Compare(ks[0]) != 0 {
		t.Error("MinDocKey should equal zero key")
	}
	if ks[3].Compare(MaxDocKey) >= 0 {
		t.Error("all keys must be <= MaxDocKey")
	}
}

func TestPostingKey(t *testing.T) {
	p := Posting{3, 9, SID{1, 2, 0}}
	if k := p.Key(); k != (DocKey{3, 9}) {
		t.Errorf("Key() = %v", k)
	}
}

func TestStrings(t *testing.T) {
	p := Posting{1, 2, SID{3, 4, 5}}
	if p.String() == "" || p.SID.String() == "" || p.Key().String() == "" {
		t.Error("String() should be non-empty")
	}
}
