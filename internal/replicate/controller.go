package replicate

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"time"

	"kadop/internal/dht"
	"kadop/internal/metrics"
)

// Config parameterises the per-peer replication controller.
type Config struct {
	// Enabled turns the controller on. Off (the zero value) keeps the
	// seed behaviour: no adaptive replication, no advertisement.
	Enabled bool
	// Extra is how many replicas beyond the owner set a promoted key
	// gets (default 2).
	Extra int
	// HotBytes is the promotion threshold: a canonical term whose
	// sketch weight reaches it gets its local keys promoted (default
	// 16 KiB of served postings per decay window).
	HotBytes int64
	// CoolFactor scales the demotion threshold: a promoted term whose
	// weight decays below CoolFactor*HotBytes is demoted (default
	// 0.25; hysteresis keeps borderline terms from flapping).
	CoolFactor float64
	// Lease is the advertisement TTL (default 30s). Leases renew every
	// tick while a term stays promoted, so a dead controller's
	// advertisements expire on their own.
	Lease time.Duration
	// Interval is the control-loop period; 0 disables the background
	// loop (tests and the simulated experiments call Tick directly).
	Interval time.Duration
	// Decay is the per-tick hot-term sketch aging factor (default 0.5).
	Decay float64
	// Now injects a clock for deterministic tests (default time.Now).
	Now func() time.Time
	// Seed drives the loop jitter (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Extra <= 0 {
		c.Extra = 2
	}
	if c.HotBytes <= 0 {
		c.HotBytes = 16 << 10
	}
	if c.CoolFactor <= 0 || c.CoolFactor >= 1 {
		c.CoolFactor = 0.25
	}
	if c.Lease <= 0 {
		c.Lease = 30 * time.Second
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// promotion is one live promoted key.
type promotion struct {
	key     string
	term    string
	targets []dht.Contact
	count   int
}

// Controller is the closed loop of adaptive replication, one per peer:
// each tick it rolls the load window, ages the hot-term sketch,
// promotes local keys of terms above the hotness threshold (pushing
// copies to extra replicas and advertising them to the term's home
// peers under a lease), renews leases of still-hot promotions, and
// demotes cooled ones (revoke the advertisement, then drop the pushed
// copies). Every peer runs the same loop over its own sketch, so the
// hot term's home peer promotes the inline list while block owners
// promote their own overflow blocks — no coordination needed beyond
// the advertisement itself.
type Controller struct {
	node *dht.Node
	cfg  Config

	mu    sync.Mutex
	promo map[string]*promotion
	stop  chan struct{}
	done  chan struct{}
}

// NewController builds a controller for node. Call Start for the
// background loop, or Tick directly under a synthetic clock.
func NewController(node *dht.Node, cfg Config) *Controller {
	return &Controller{node: node, cfg: cfg.withDefaults(), promo: map[string]*promotion{}}
}

// Promoted returns the number of currently promoted keys.
func (c *Controller) Promoted() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.promo)
}

// Start launches the control loop (Interval must be positive) and
// returns; Stop ends it. Spacing is jittered ±10% like the other
// maintenance loops, so a cluster started in lockstep does not tick in
// lockstep forever.
func (c *Controller) Start() {
	if c == nil || !c.cfg.Enabled || c.cfg.Interval <= 0 || c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	rng := rand.New(rand.NewSource(c.cfg.Seed + 0xad0b))
	go func() {
		defer close(c.done)
		for {
			d := c.cfg.Interval
			d += time.Duration((rng.Float64()*0.2 - 0.1) * float64(d))
			select {
			case <-c.stop:
				return
			case <-time.After(d):
			}
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Interval)
			c.Tick(ctx)
			cancel()
		}
	}()
}

// Stop ends the control loop and waits for the in-flight tick.
func (c *Controller) Stop() {
	if c == nil || c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop, c.done = nil, nil
}

// Tick runs one control pass and reports how many keys it promoted or
// renewed and how many it demoted.
func (c *Controller) Tick(ctx context.Context) (promoted, demoted int, err error) {
	if c == nil || !c.cfg.Enabled {
		return 0, 0, nil
	}
	load := c.node.Load()
	load.Roll()

	// Weight per canonical term, read before aging so one isolated
	// burst still crosses the threshold on the tick that saw it.
	weight := map[string]int64{}
	for _, ht := range load.HotTerms(0) {
		weight[ht.Term] = ht.Bytes
	}
	load.DecayHot(c.cfg.Decay)

	terms, err := c.node.Store().Terms()
	if err != nil {
		return 0, 0, err
	}

	var firstErr error
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range terms {
		if ctx.Err() != nil {
			return promoted, demoted, ctx.Err()
		}
		term := metrics.CanonicalTerm(key)
		hot := weight[term] >= c.cfg.HotBytes
		p := c.promo[key]
		switch {
		case hot:
			if err := c.promote(ctx, key, term, p); err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				promoted++
			}
		case p != nil && weight[term] < int64(c.cfg.CoolFactor*float64(c.cfg.HotBytes)):
			if err := c.demote(ctx, p); err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				demoted++
			}
		}
	}
	// Promotions whose key vanished from the store (deleted, handed
	// off) are demoted too: their copies would otherwise linger until
	// some other peer's repair noticed.
	live := map[string]bool{}
	for _, key := range terms {
		live[key] = true
	}
	for key, p := range c.promo {
		if !live[key] {
			if err := c.demote(ctx, p); err == nil {
				demoted++
			} else if firstErr == nil {
				firstErr = err
			}
		}
	}
	return promoted, demoted, firstErr
}

// promote pushes key to its extra replicas (or re-pushes and renews an
// existing promotion) and advertises the replica set to the term's
// home peers. Caller holds c.mu.
func (c *Controller) promote(ctx context.Context, key, term string, p *promotion) error {
	if p == nil {
		targets, err := c.node.ReplicaTargetsContext(ctx, key, c.cfg.Extra)
		if err != nil {
			return err
		}
		if len(targets) == 0 {
			return nil // overlay too small for extra replicas
		}
		p = &promotion{key: key, term: term, targets: targets}
	}
	pushAll := func(targets []dht.Contact) ([]string, error) {
		var firstErr error
		addrs := make([]string, 0, len(targets))
		for _, t := range targets {
			if _, err := c.node.RepairPushContext(ctx, t, key); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			addrs = append(addrs, t.Addr)
		}
		return addrs, firstErr
	}
	addrs, pushErr := pushAll(p.targets)
	if pushErr != nil {
		// A target died or left the overlay: refresh the target set and
		// push again right away, so one tick heals the replica count
		// instead of pushing at a ghost until the next.
		if fresh, err := c.node.ReplicaTargetsContext(ctx, key, c.cfg.Extra); err == nil && len(fresh) > 0 {
			p.targets = fresh
			addrs, pushErr = pushAll(fresh)
		}
	}
	if len(addrs) == 0 {
		return pushErr
	}
	count, err := c.node.Store().Count(key)
	if err != nil || count == 0 {
		return err
	}
	p.count = count
	c.promo[key] = p
	ad := Set{
		Key:      key,
		Term:     term,
		Count:    uint64(count),
		Expire:   c.cfg.Now().Add(c.cfg.Lease).UnixNano(),
		Replicas: addrs,
	}
	// The advertisement goes to every owner of the term's root so any
	// replica a query consults knows the extra holders. A deployment
	// without the DPP layer has no handler; promotion still helps
	// there (GetStream's owner ranking finds pushed copies via
	// digests), so an unknown-procedure error is not a failure.
	if _, err := c.node.CallProcOwnersContext(ctx, term, ProcAdvert, EncodeSet(ad)); err != nil && pushErr == nil && !isUnknownProc(err) {
		pushErr = err
	}
	return pushErr
}

// demote revokes the advertisement at the term's home peers first —
// so no new reader is steered at a copy about to vanish — then drops
// the pushed copies from targets that did not become owners in the
// meantime. Caller holds c.mu.
func (c *Controller) demote(ctx context.Context, p *promotion) error {
	revoke := Set{Key: p.key, Term: p.term, Expire: c.cfg.Now().UnixNano()}
	var firstErr error
	if _, err := c.node.CallProcOwnersContext(ctx, p.term, ProcAdvert, EncodeSet(revoke)); err != nil && !isUnknownProc(err) {
		firstErr = err
	}
	owners, err := c.node.OwnersContext(ctx, p.key)
	if err != nil {
		return err // keep the promotion; next tick retries the demotion
	}
	isOwner := map[dht.ID]bool{}
	for _, o := range owners {
		isOwner[o.ID] = true
	}
	for _, t := range p.targets {
		if isOwner[t.ID] {
			continue // churn made the target a real owner; its copy is now load-bearing
		}
		// A delete that fails because the target is gone is moot — the
		// copy left with the peer. Even against a merely unreachable
		// target the promotion is not retained: the revocation above and
		// the lease expiry already fence readers off the copy, so it is
		// inert garbage, not a hazard, and retrying a ghost forever is.
		c.node.DeleteKeyAtContext(ctx, t, p.key)
	}
	if firstErr != nil {
		return firstErr
	}
	delete(c.promo, p.key)
	return nil
}

func isUnknownProc(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown procedure")
}
