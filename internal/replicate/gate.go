package replicate

import (
	"sync"
	"time"
)

// Gate is a token-bucket admission controller on a peer's serve path.
// Each admitted read spends one token; the bucket refills at Rate
// tokens per second up to Burst. When empty, Allow reports false and
// the serve path rejects the read with dht.ErrOverload — a retryable
// signal the client answers by failing over to another replica, which
// is what turns local overload into load spreading instead of queueing
// delay. The zero threshold (rate <= 0) disables shedding entirely, so
// deployments that never opt in keep the seed behaviour.
type Gate struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewGate returns a gate admitting rate reads per second with bursts
// up to burst (burst < 1 is raised to the rate, minimum 1). A nil now
// uses the wall clock; tests and the simulated experiments inject a
// synthetic clock. rate <= 0 returns nil, and a nil *Gate admits
// everything.
func NewGate(rate, burst float64, now func() time.Time) *Gate {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	if now == nil {
		now = time.Now
	}
	return &Gate{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Allow spends one token if available.
func (g *Gate) Allow() bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refill()
	if g.tokens < 1 {
		return false
	}
	g.tokens--
	return true
}

// Shedding reports whether the gate would currently reject a read; the
// serve path piggybacks it on RPC responses so clients stop choosing
// this replica before burning a request on a rejection.
func (g *Gate) Shedding() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refill()
	return g.tokens < 1
}

func (g *Gate) refill() {
	now := g.now()
	if dt := now.Sub(g.last).Seconds(); dt > 0 {
		g.tokens += dt * g.rate
		if g.tokens > g.burst {
			g.tokens = g.burst
		}
	}
	g.last = now
}
