package replicate

import "math/rand"

// PeerLoad is one replica-selection candidate: the peer's last
// advertised recent-load gauge (bytes served over the last control
// windows, piggybacked on RPC responses) and whether it reported
// itself shedding. Known is false when no gauge has been observed yet;
// unknown peers count as load zero, which biases exploration toward
// peers we have never asked — exactly what a fresh replica wants.
type PeerLoad struct {
	Addr  string
	Load  int64
	Shed  bool
	Known bool
}

// Choose picks a candidate index by power-of-two choices: sample two
// distinct candidates, take the lighter one. Shedding peers are
// excluded whenever at least one non-shedding candidate exists, so an
// overloaded replica stops receiving traffic the moment an alternative
// is available — but a fully-shedding set still serves rather than
// failing. Returns -1 on an empty candidate list.
func Choose(cands []PeerLoad, rng *rand.Rand) int {
	pool := make([]int, 0, len(cands))
	for i, c := range cands {
		if !c.Shed {
			pool = append(pool, i)
		}
	}
	if len(pool) == 0 {
		// Everyone sheds: serve anyway, the gate's token refill will
		// let some requests through.
		for i := range cands {
			pool = append(pool, i)
		}
	}
	switch len(pool) {
	case 0:
		return -1
	case 1:
		return pool[0]
	}
	ai := rng.Intn(len(pool))
	bj := rng.Intn(len(pool) - 1)
	// Map the second sample into pool \ {first} so the two are distinct.
	if bj == ai {
		bj = len(pool) - 1
	}
	a, bi := pool[ai], pool[bj]
	if cands[bi].Load < cands[a].Load {
		return bi
	}
	return a
}

// Order returns all candidate indices in failover order: repeated
// Choose without replacement, so the first entry is the p2c pick and
// later entries are progressively heavier (shedding peers last).
func Order(cands []PeerLoad, rng *rand.Rand) []int {
	remaining := make([]PeerLoad, len(cands))
	copy(remaining, cands)
	index := make([]int, len(cands))
	for i := range index {
		index[i] = i
	}
	out := make([]int, 0, len(cands))
	for len(remaining) > 0 {
		i := Choose(remaining, rng)
		if i < 0 {
			break
		}
		out = append(out, index[i])
		remaining = append(remaining[:i], remaining[i+1:]...)
		index = append(index[:i], index[i+1:]...)
	}
	return out
}
