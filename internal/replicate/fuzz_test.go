package replicate

import (
	"reflect"
	"testing"
)

// FuzzReplicaSetCodec: any frame DecodeSet accepts must survive an
// encode/decode round trip field for field (non-minimal uvarints are
// accepted but re-encode minimally, so byte identity is not required —
// same contract as the DHT message codec).
func FuzzReplicaSetCodec(f *testing.F) {
	seeds := []Set{
		{},
		{Key: "l:author", Term: "l:author", Count: 7, Expire: 1234,
			Replicas: []string{"127.0.0.1:4001", "127.0.0.1:4002", "127.0.0.1:4003"}},
		{Key: "overflow:12:w:ullman", Term: "w:ullman", Count: 1 << 33, Expire: -1,
			Replicas: []string{"[::1]:9"}},
		{Key: "k", Term: "t"},
	}
	for _, s := range seeds {
		f.Add(EncodeSet(s))
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSet(data)
		if err != nil {
			return
		}
		enc := EncodeSet(s)
		s2, err := DecodeSet(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if s2.Key != s.Key || s2.Term != s.Term || s2.Count != s.Count ||
			s2.Expire != s.Expire || !reflect.DeepEqual(s2.Replicas, s.Replicas) {
			t.Fatalf("round trip drift: %+v vs %+v", s, s2)
		}
	})
}
