// Package replicate closes the load-skew loop the observability plane
// only measures: a per-peer controller reads the hot-term sketch and
// the recent-load gauge, promotes hot terms by pushing their posting
// blocks to extra replicas, advertises the replica set to the term's
// home peer under a TTL lease, and demotes terms that cool off.
// Clients balance across the advertised replicas with power-of-two
// choices, and an admission gate sheds over-budget reads so overload
// fails over instead of queueing. This is the LiquidXML direction —
// adaptive XML content redistribution — grafted onto the KadoP index.
package replicate

import (
	"encoding/binary"
	"fmt"
)

// ProcAdvert is the application procedure a controller calls on a
// term's home peer to install (or, with an empty replica list, revoke)
// a replica advertisement. The DPP manager registers the handler.
const ProcAdvert = "replicate:advert"

// Set is one replica advertisement: "these peers hold a pushed copy of
// store key Key (belonging to canonical term Term) good until Expire".
// Count is the posting count of the copy at push time; the home peer
// only serves the advertisement while its own count still matches, so
// an append silently disables stale replicas until the controller
// re-pushes and re-advertises. An empty Replicas slice is a revocation.
type Set struct {
	// Key is the store key the replicas hold (a term, or a DPP
	// overflow pseudo-key "overflow:<n>:<term>").
	Key string
	// Term is the canonical term the key belongs to.
	Term string
	// Count is the posting count of the replicated copy.
	Count uint64
	// Expire is the lease deadline in Unix nanoseconds; advertisements
	// at or past it are ignored and garbage-collected.
	Expire int64
	// Replicas are the extra holders' addresses (primaries excluded).
	Replicas []string
}

// maxReplicas bounds a decoded advertisement; a controller never
// promotes to more than a handful of peers, so anything larger is a
// corrupt or hostile frame.
const maxReplicas = 1 << 10

// EncodeSet encodes an advertisement for the ProcAdvert blob.
func EncodeSet(s Set) []byte {
	buf := make([]byte, 0, 32+len(s.Key)+len(s.Term))
	buf = appendStr(buf, s.Key)
	buf = appendStr(buf, s.Term)
	buf = binary.AppendUvarint(buf, s.Count)
	buf = binary.AppendUvarint(buf, uint64(s.Expire))
	buf = binary.AppendUvarint(buf, uint64(len(s.Replicas)))
	for _, r := range s.Replicas {
		buf = appendStr(buf, r)
	}
	return buf
}

// DecodeSet decodes an advertisement, rejecting truncated or
// implausible frames.
func DecodeSet(data []byte) (Set, error) {
	r := &reader{buf: data}
	var s Set
	s.Key = r.str()
	s.Term = r.str()
	s.Count = r.uvarint()
	s.Expire = int64(r.uvarint())
	n := r.uvarint()
	if r.err == nil && n > maxReplicas {
		return Set{}, fmt.Errorf("replicate: implausible replica count %d", n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		s.Replicas = append(s.Replicas, r.str())
	}
	if r.err != nil {
		return Set{}, fmt.Errorf("replicate: decode advertisement: %w", r.err)
	}
	if r.pos != len(data) {
		return Set{}, fmt.Errorf("replicate: %d trailing bytes after advertisement", len(data)-r.pos)
	}
	return s, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a latching decode cursor: the first failure sticks and
// every later read returns zero values, so decoders check err once.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.err = fmt.Errorf("string of %d bytes overruns buffer at offset %d", n, r.pos)
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}
