package replicate

import (
	"reflect"
	"testing"
	"time"
)

func TestSetRoundTrip(t *testing.T) {
	cases := []Set{
		{},
		{Key: "l:author", Term: "l:author", Count: 12, Expire: 99,
			Replicas: []string{"127.0.0.1:4001", "127.0.0.1:4002"}},
		{Key: "overflow:3:l:author", Term: "l:author", Count: 1 << 40,
			Expire: time.Now().UnixNano(), Replicas: []string{"x"}},
		{Key: "k", Term: "t", Count: 0, Expire: -1, Replicas: nil},
	}
	for _, want := range cases {
		got, err := DecodeSet(EncodeSet(want))
		if err != nil {
			t.Fatalf("round trip %+v: %v", want, err)
		}
		if got.Key != want.Key || got.Term != want.Term || got.Count != want.Count ||
			got.Expire != want.Expire || !reflect.DeepEqual(got.Replicas, want.Replicas) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestSetDecodeRejects(t *testing.T) {
	good := EncodeSet(Set{Key: "k", Term: "t", Count: 3, Expire: 7, Replicas: []string{"a", "b"}})
	cases := map[string][]byte{
		"empty":         {},
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0xff),
		"overrun str":   {0xff, 0x01},
		"bad uvarint":   {0x80},
		"huge replicas": EncodeSet(Set{Key: "k", Term: "t"})[:0],
	}
	// A frame claiming 2^20 replicas but carrying none.
	huge := appendStr(nil, "k")
	huge = appendStr(huge, "t")
	huge = append(huge, 0x00, 0x00)       // count, expire
	huge = append(huge, 0x80, 0x80, 0x40) // replica count 2^20
	cases["huge replicas"] = huge
	for name, data := range cases {
		if _, err := DecodeSet(data); err == nil {
			t.Errorf("%s: decode accepted %x", name, data)
		}
	}
}

func TestGate(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	g := NewGate(10, 2, now)
	if !g.Allow() || !g.Allow() {
		t.Fatal("burst of 2 must admit two reads")
	}
	if g.Allow() {
		t.Fatal("third read within the burst must shed")
	}
	if !g.Shedding() {
		t.Fatal("empty bucket must report shedding")
	}
	clock = clock.Add(100 * time.Millisecond) // refills 1 token at 10/s
	if g.Shedding() {
		t.Fatal("refilled bucket must not report shedding")
	}
	if !g.Allow() {
		t.Fatal("refilled token must admit")
	}
	if g.Allow() {
		t.Fatal("bucket must be empty again")
	}
	clock = clock.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if !g.Allow() {
			t.Fatalf("read %d: refill must cap at burst, not admit unbounded", i)
		}
	}
	if g.Allow() {
		t.Fatal("refill must cap at burst")
	}

	var nilGate *Gate
	if !nilGate.Allow() || nilGate.Shedding() {
		t.Fatal("nil gate must admit everything")
	}
	if NewGate(0, 5, now) != nil {
		t.Fatal("rate 0 must disable the gate")
	}
}
