package replicate

import (
	"math/rand"
	"testing"
)

// TestChooseBeatsUniform is the power-of-two-choices property test:
// over randomized initial load vectors, routing a stream of requests
// with Choose (each pick adds unit load) must end with a strictly
// smaller maximum load than routing the same stream uniformly at
// random. The theoretical gap is exponential (O(log log n / log 2) vs
// O(log n / log log n) above the mean); here we assert the max-load
// bound holds on aggregate across many seeded trials, allowing the
// rare individual trial where uniform gets lucky.
func TestChooseBeatsUniform(t *testing.T) {
	const (
		trials   = 50
		peers    = 16
		requests = 2000
	)
	p2cWins, ties, uniformWins := 0, 0, 0
	var p2cMaxSum, uniMaxSum int64
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		init := make([]int64, peers)
		irng := rand.New(rand.NewSource(seed))
		for i := range init {
			init[i] = int64(irng.Intn(500))
		}

		run := func(uniform bool) int64 {
			rng := rand.New(rand.NewSource(seed * 31))
			cands := make([]PeerLoad, peers)
			for i := range cands {
				cands[i] = PeerLoad{Load: init[i], Known: true}
			}
			for r := 0; r < requests; r++ {
				var i int
				if uniform {
					i = rng.Intn(peers)
				} else {
					i = Choose(cands, rng)
				}
				cands[i].Load++
			}
			var max int64
			for _, c := range cands {
				if c.Load > max {
					max = c.Load
				}
			}
			return max
		}

		p2cMax, uniMax := run(false), run(true)
		p2cMaxSum += p2cMax
		uniMaxSum += uniMax
		switch {
		case p2cMax < uniMax:
			p2cWins++
		case p2cMax == uniMax:
			ties++
		default:
			uniformWins++
		}
	}
	if p2cMaxSum >= uniMaxSum {
		t.Fatalf("p2c aggregate max load %d not below uniform %d", p2cMaxSum, uniMaxSum)
	}
	if p2cWins <= uniformWins {
		t.Fatalf("p2c won %d trials, uniform %d (ties %d); two choices should dominate",
			p2cWins, uniformWins, ties)
	}
	t.Logf("p2c wins %d / ties %d / uniform wins %d; aggregate max %d vs %d",
		p2cWins, ties, uniformWins, p2cMaxSum, uniMaxSum)
}

// TestChooseNeverPicksSheddingPeer: whenever at least one non-shedding
// candidate exists, Choose must not return a shedding one — across
// randomized loads, shed patterns and candidate counts.
func TestChooseNeverPicksSheddingPeer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(8)
		cands := make([]PeerLoad, n)
		healthy := 0
		for i := range cands {
			cands[i] = PeerLoad{Load: int64(rng.Intn(1000)), Shed: rng.Intn(3) == 0, Known: true}
			if !cands[i].Shed {
				healthy++
			}
		}
		i := Choose(cands, rng)
		if i < 0 || i >= n {
			t.Fatalf("trial %d: index %d out of range", trial, i)
		}
		if healthy > 0 && cands[i].Shed {
			t.Fatalf("trial %d: picked shedding peer %d of %+v", trial, i, cands)
		}
	}
}

func TestChooseAllShedStillServes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cands := []PeerLoad{{Shed: true, Load: 5}, {Shed: true, Load: 1}}
	for i := 0; i < 100; i++ {
		if j := Choose(cands, rng); j < 0 || j > 1 {
			t.Fatalf("all-shedding set must still pick someone, got %d", j)
		}
	}
	if Choose(nil, rng) != -1 {
		t.Fatal("empty candidate list must return -1")
	}
	if Choose([]PeerLoad{{Load: 9}}, rng) != 0 {
		t.Fatal("single candidate must be picked")
	}
}

func TestOrderCoversAllShedLast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cands := []PeerLoad{
		{Addr: "a", Load: 10},
		{Addr: "b", Load: 700, Shed: true},
		{Addr: "c", Load: 3},
		{Addr: "d", Load: 40},
	}
	for trial := 0; trial < 200; trial++ {
		order := Order(cands, rng)
		if len(order) != len(cands) {
			t.Fatalf("order %v does not cover all %d candidates", order, len(cands))
		}
		seen := map[int]bool{}
		for _, i := range order {
			if seen[i] {
				t.Fatalf("order %v repeats index %d", order, i)
			}
			seen[i] = true
		}
		// The only shedding peer must always come last.
		if order[len(order)-1] != 1 {
			t.Fatalf("shedding peer not last in failover order %v", order)
		}
	}
}
