package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/obs/cluster"
	"kadop/internal/pattern"
	"kadop/internal/replicate"
	"kadop/internal/workload"
)

// adaptiveQueries is the Zipf population of the adaptive phase: the
// head ranks are the hot-term queries the controller must notice, the
// tail keeps background traffic on other peers so the Gini comparison
// is not a degenerate two-point distribution.
var adaptiveQueries = []string{
	Fig3Query,
	`//article//author`,
	`//article//title`,
	`//inproceedings//author`,
	`//article//year`,
	`//article//journal`,
	`//inproceedings//booktitle`,
}

// slowHomePenalty emulates saturation at the hot terms' home peers:
// every message they send or receive costs this much extra, the way a
// peer at its bandwidth limit stretches every transfer. The simulated
// network has no queueing, so without it a perfectly spread load and a
// single scorching peer would show identical latencies.
const slowHomePenalty = 2 * time.Millisecond

// AdaptiveResult compares the same skewed workload before and after
// the replication controllers engage. Both phases run under identical
// conditions — same seeded Zipf query stream, same slow home peers —
// so any improvement is attributable to the promoted replicas and the
// load-aware replica selection alone.
type AdaptiveResult struct {
	GiniBefore, GiniAfter float64       // per-peer served-bytes inequality
	P99Before, P99After   time.Duration // per-query latency tail
	Promoted              int           // keys promoted across the cluster
	Queries               int           // queries per phase
}

// Err returns nil when the closed loop did its job: at least one
// promotion happened and both the serving-load inequality and the
// latency tail strictly improved. The load smoke gate runs on this.
func (a *AdaptiveResult) Err() error { return a.check(true) }

// check is Err with the wall-clock p99 comparison optional: the race
// detector's scheduling overhead adds latency noise on the order of
// the improvement being measured, so race-built callers (the `make
// check` test suite) gate on promotion and the byte-count Gini only,
// while the non-race load-smoke gate keeps the strict tail assertion.
func (a *AdaptiveResult) check(strictTail bool) error {
	if a.Promoted == 0 {
		return fmt.Errorf("experiments: adaptive phase promoted nothing")
	}
	if a.GiniAfter >= a.GiniBefore {
		return fmt.Errorf("experiments: adaptive phase did not flatten load: Gini %.3f -> %.3f",
			a.GiniBefore, a.GiniAfter)
	}
	if strictTail && a.P99After >= a.P99Before {
		return fmt.Errorf("experiments: adaptive phase did not improve the tail: p99 %s -> %s",
			a.P99Before, a.P99After)
	}
	return nil
}

// Format renders the before/after comparison.
func (a *AdaptiveResult) Format() string {
	out := "--- adaptive: hot-term replication controller engaged mid-run ---\n"
	out += table(
		[]string{"phase", "queries", "Gini", "p99"},
		[][]string{
			{"before", fmt.Sprintf("%d", a.Queries), fmt.Sprintf("%.3f", a.GiniBefore), ms(a.P99Before) + "ms"},
			{"after", fmt.Sprintf("%d", a.Queries), fmt.Sprintf("%.3f", a.GiniAfter), ms(a.P99After) + "ms"},
		},
	)
	out += fmt.Sprintf("controller promoted %d keys; ", a.Promoted)
	if a.Err() == nil {
		out += "Gini and p99 strictly improved after promotion.\n"
	} else {
		out += fmt.Sprintf("WARNING: %v\n", a.Err())
	}
	return out
}

// runLoadAdaptive measures the closed loop end to end: a cluster whose
// hot lists stay inline at their home peers (the skewed regime the
// static DPP variant exists to avoid), a seeded Zipf query stream, and
// the per-peer replication controllers ticked once mid-run under a
// synthetic clock. Phase A runs with the controllers idle; the tick
// rolls the load windows, reads the hot-term sketches, pushes the hot
// keys to extra replicas and advertises them; phase B replays the same
// stream against the now-replicated index.
func runLoadAdaptive(o LoadOptions) (*AdaptiveResult, error) {
	// Synthetic clock: leases and gauge windows advance only when the
	// experiment says so, keeping the run schedule-independent.
	var clockMu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	cfg := kadop.Config{
		UseDPP: true,
		// Blocks larger than any list: every term stays inline at its
		// home peer, which is exactly the hot-spot regime.
		DPP: dpp.Options{BlockSize: 1 << 20},
		Replicate: replicate.Config{
			Enabled:  true,
			Extra:    2,
			HotBytes: 4 << 10,
			Lease:    time.Hour, // ticks are explicit; leases must span the run
			Now:      clock,
			Seed:     o.Seed,
		},
	}
	cl, err := NewCluster(ClusterOptions{Peers: o.Peers, Cfg: cfg})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	defer func() {
		for _, p := range cl.Peers {
			p.Replicator().Stop()
		}
	}()

	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	if _, err := cl.PublishAll(docs, 4); err != nil {
		return nil, err
	}

	queries := make([]*pattern.Query, len(adaptiveQueries))
	for i, qs := range adaptiveQueries {
		queries[i] = pattern.MustParse(qs)
	}

	// Saturate the hot queries' home peers (see slowHomePenalty). The
	// hot head of the Zipf stream is the first loadQueries ranks.
	slowed := map[string]bool{}
	for _, qs := range loadQueries {
		for _, t := range pattern.MustParse(qs).Terms() {
			owner, err := cl.Nodes[0].Locate(t.Key())
			if err != nil {
				return nil, fmt.Errorf("experiments: locate hot home: %w", err)
			}
			if !slowed[owner.Addr] {
				slowed[owner.Addr] = true
				cl.Net.SetSlow(owner.Addr, slowHomePenalty)
			}
		}
	}
	defer func() {
		for a := range slowed {
			cl.Net.SetSlow(a, 0)
		}
	}()

	nq := 30 * o.Queries
	if nq < 40 {
		nq = 40
	}
	rng := rand.New(rand.NewSource(o.Seed + 0x5eed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(queries)-1))
	querier := cl.NonOwnerPeer(queries[0])

	// phase replays the seeded Zipf stream and reports the served-bytes
	// Gini over this phase's per-peer deltas and the per-query p99.
	phase := func(z *rand.Zipf) (float64, time.Duration, error) {
		before := make([]int64, len(cl.Nodes))
		for i, nd := range cl.Nodes {
			before[i] = nd.Load().BytesServed()
		}
		durs := make([]time.Duration, 0, nq)
		for i := 0; i < nq; i++ {
			q := queries[z.Uint64()]
			start := time.Now()
			if _, err := querier.Query(q, kadop.QueryOptions{IndexOnly: true}); err != nil {
				return 0, 0, fmt.Errorf("experiments: adaptive query: %w", err)
			}
			durs = append(durs, time.Since(start))
		}
		deltas := make([]int64, len(cl.Nodes))
		for i, nd := range cl.Nodes {
			deltas[i] = nd.Load().BytesServed() - before[i]
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return cluster.Gini(deltas), durs[len(durs)*99/100], nil
	}

	// Identical seeded streams for both phases: re-derive the Zipf
	// source so phase B replays phase A's query mix exactly.
	giniA, p99A, err := phase(zipf)
	if err != nil {
		return nil, err
	}

	// Engage: one control tick per peer. The tick rolls the gauge
	// window (phase A becomes the "recent" reading), reads the hot-term
	// sketch, and promotes — the hot homes push their lists to extra
	// replicas and advertise them under the lease.
	advance(time.Second)
	promoted := 0
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	for _, p := range cl.Peers {
		n, _, err := p.Replicator().Tick(ctx)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("experiments: controller tick: %w", err)
		}
		promoted += n
	}
	cancel()

	rngB := rand.New(rand.NewSource(o.Seed + 0x5eed))
	zipfB := rand.NewZipf(rngB, 1.3, 1, uint64(len(queries)-1))
	giniB, p99B, err := phase(zipfB)
	if err != nil {
		return nil, err
	}

	return &AdaptiveResult{
		GiniBefore: giniA, GiniAfter: giniB,
		P99Before: p99A, P99After: p99B,
		Promoted: promoted, Queries: nq,
	}, nil
}
