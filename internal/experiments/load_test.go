package experiments

import (
	"strings"
	"testing"

	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// TestLoadDPPFlattens is the experiment's headline claim: splitting hot
// posting lists into distributed blocks spreads the serving load, so
// the Gini coefficient over per-peer bytes served drops.
func TestLoadDPPFlattens(t *testing.T) {
	res, err := RunLoad(LoadOptions{Records: 150, Peers: 8, Queries: 2, BlockSize: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.Gini <= 0 {
		t.Fatalf("DPP-off Gini = %v, want skew on a hot-term workload", res.Off.Gini)
	}
	if res.On.Gini >= res.Off.Gini {
		t.Errorf("DPP-on Gini %v not flatter than DPP-off %v", res.On.Gini, res.Off.Gini)
	}
	if res.On.MaxMeanRatio >= res.Off.MaxMeanRatio {
		t.Errorf("DPP-on max/mean %v not flatter than DPP-off %v", res.On.MaxMeanRatio, res.Off.MaxMeanRatio)
	}
	var offServed, onServed int64
	for _, p := range res.Off.Peers {
		offServed += p.BytesServed
	}
	for _, p := range res.On.Peers {
		onServed += p.BytesServed
	}
	if offServed == 0 || onServed == 0 {
		t.Fatalf("served bytes off=%d on=%d, want both > 0", offServed, onServed)
	}
	out := res.Format()
	for _, want := range []string{"DPP off", "DPP on", "imbalance summary:", "Gini"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}

// TestOpNamesDeclared pins the op-name vocabulary: after a full
// publish+query workload, every operation the collector observed must
// be one of the metrics.Op* constants. A handler recording a stray
// string literal fails here instead of silently forking the metric
// namespace.
func TestOpNamesDeclared(t *testing.T) {
	cl, err := NewCluster(ClusterOptions{
		Peers: 6,
		Cfg:   kadop.Config{UseDPP: true, DPP: dpp.Options{BlockSize: 32}, CacheBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := workload.DBLP{Seed: 1, Records: 80}.Documents()
	if _, err := cl.PublishAll(docs, 3); err != nil {
		t.Fatal(err)
	}
	q := pattern.MustParse(Fig3Query)
	for _, strat := range []kadop.Strategy{kadop.Conventional, kadop.BloomReducer} {
		if _, err := cl.NonOwnerPeer(q).Query(q, kadop.QueryOptions{Strategy: strat}); err != nil {
			t.Fatal(err)
		}
	}
	col := cl.Nodes[0].Metrics()
	ops := col.Ops()
	if len(ops) == 0 {
		t.Fatal("collector observed no operations")
	}
	for _, op := range ops {
		if !metrics.IsDeclaredOp(op) {
			t.Errorf("recorded op %q is not a declared metrics.Op* constant", op)
		}
	}
}
