// Package experiments implements the paper's evaluation: one runner per
// table and figure, each reproducing the corresponding workload,
// parameter sweep and measurement on a simulated KadoP deployment. The
// kadop-bench command and the repository's benchmarks are thin wrappers
// over this package.
//
// Scales default to laptop-sized runs (hundreds of documents, tens of
// peers); every runner accepts explicit scales, and the kadop-bench
// command exposes them as flags for paper-scale runs (hundreds of
// peers, hundreds of megabytes).
package experiments

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"kadop/internal/dht"
	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/workload"
)

// StoreKind selects the local index store of the deployment's peers.
type StoreKind int

// Store kinds.
const (
	// MemStore is the in-memory store (default for simulations).
	MemStore StoreKind = iota
	// BTreeStore is the disk B+-tree (the re-engineered store of §3).
	BTreeStore
	// NaiveStore is the PAST-like gzip-blob baseline.
	NaiveStore
)

func (k StoreKind) String() string {
	switch k {
	case MemStore:
		return "mem"
	case BTreeStore:
		return "btree"
	case NaiveStore:
		return "naive"
	}
	return "?"
}

// ClusterOptions configure a simulated deployment.
type ClusterOptions struct {
	Peers int
	Cfg   kadop.Config
	// DHT configures the overlay nodes (replication, retry policy);
	// the zero value keeps the seed behaviour (single copy, one shot).
	DHT   dht.Config
	Link  dht.LinkModel
	Store StoreKind
	// Fsync is the WAL sync policy of BTreeStore peers (default
	// FsyncAlways, the durable setting).
	Fsync store.FsyncPolicy
	// Batched wraps each BTreeStore peer's store in the write
	// coalescer: concurrent index appends group-commit, one WAL
	// transaction and one fsync per batch.
	Batched bool
	// TempDir receives disk stores; empty means os.MkdirTemp.
	TempDir string
}

// Cluster is a simulated KadoP deployment.
type Cluster struct {
	Net   *dht.Network
	Nodes []*dht.Node
	Peers []*kadop.Peer
	dirs  []string
}

// NewCluster builds and bootstraps a deployment.
func NewCluster(o ClusterOptions) (*Cluster, error) {
	if o.Peers <= 0 {
		o.Peers = 8
	}
	c := &Cluster{Net: dht.NewNetwork()}
	c.Net.SetModel(o.Link)
	for i := 0; i < o.Peers; i++ {
		st, err := c.newStore(o, i)
		if err != nil {
			return nil, err
		}
		nd, err := dht.NewNode(c.Net.NewEndpoint(), st, o.DHT)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, nd)
	}
	for i := 1; i < o.Peers; i++ {
		if err := c.Nodes[i].Bootstrap(c.Nodes[0].Self()); err != nil {
			return nil, fmt.Errorf("experiments: bootstrap peer %d: %w", i, err)
		}
	}
	for _, nd := range c.Nodes {
		if _, err := nd.Lookup(nd.Self().ID); err != nil {
			return nil, err
		}
	}
	for i, nd := range c.Nodes {
		p, err := kadop.NewPeer(nd, sid.PeerID(i+1), o.Cfg)
		if err != nil {
			return nil, err
		}
		c.Peers = append(c.Peers, p)
	}
	for _, p := range c.Peers {
		if err := p.Announce(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) newStore(o ClusterOptions, i int) (store.Store, error) {
	switch o.Store {
	case BTreeStore:
		dir, err := c.tempDir(o)
		if err != nil {
			return nil, err
		}
		st, err := store.OpenBTreeOptions(fmt.Sprintf("%s/peer%d.bt", dir, i), store.Options{Fsync: o.Fsync})
		if err != nil || !o.Batched {
			return st, err
		}
		// The small linger decouples batch formation from disk speed:
		// batches collect for 2ms regardless of how fast the previous
		// fsync returned. Bulk publishes trade that latency for an
		// order of magnitude fewer WAL commits.
		return store.NewCoalescer(st, store.CoalesceOptions{MaxDelay: 2 * time.Millisecond}), nil
	case NaiveStore:
		dir, err := c.tempDir(o)
		if err != nil {
			return nil, err
		}
		return store.NewNaive(fmt.Sprintf("%s/peer%d", dir, i))
	default:
		return store.NewMem(), nil
	}
}

func (c *Cluster) tempDir(o ClusterOptions) (string, error) {
	if o.TempDir != "" {
		return o.TempDir, nil
	}
	dir, err := os.MkdirTemp("", "kadop-exp-")
	if err != nil {
		return "", err
	}
	c.dirs = append(c.dirs, dir)
	return dir, nil
}

// Close releases cluster resources (disk stores, temp dirs).
func (c *Cluster) Close() {
	for _, nd := range c.Nodes {
		nd.Store().Close()
	}
	for _, d := range c.dirs {
		os.RemoveAll(d)
	}
}

// PublishAll distributes the documents over the first `publishers`
// peers, publishing in parallel (one goroutine per publisher, as in the
// paper's multi-publisher runs), and returns the wall-clock time.
func (c *Cluster) PublishAll(docs []workload.GeneratedDoc, publishers int) (time.Duration, error) {
	if publishers <= 0 || publishers > len(c.Peers) {
		publishers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, publishers)
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(docs); i += publishers {
				if _, err := c.Peers[w].Publish(docs[i].Doc, docs[i].URI); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// PublishAllBatched distributes the documents like PublishAll, but
// each publisher submits its share through the bulk-publish path:
// size-bounded PublishBatch calls that merge postings per term across
// the batch, on top of whatever group commit the stores do. batchSize
// <= 0 means 16 documents per call.
func (c *Cluster) PublishAllBatched(docs []workload.GeneratedDoc, publishers, batchSize int) (time.Duration, error) {
	if publishers <= 0 || publishers > len(c.Peers) {
		publishers = 1
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, publishers)
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]kadop.TreeDoc, 0, batchSize)
			flush := func() error {
				if len(batch) == 0 {
					return nil
				}
				_, err := c.Peers[w].PublishBatch(batch)
				batch = batch[:0]
				return err
			}
			for i := w; i < len(docs); i += publishers {
				batch = append(batch, kadop.TreeDoc{Doc: docs[i].Doc, URI: docs[i].URI})
				if len(batch) >= batchSize {
					if err := flush(); err != nil {
						errs[w] = err
						return
					}
				}
			}
			errs[w] = flush()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// table renders rows with aligned columns for the experiment reports.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func mb(n int64) string { return fmt.Sprintf("%.2f", float64(n)/1e6) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// NonOwnerPeer returns a peer that is home for none of the query's
// terms, so phase-one transfers actually cross the network. Experiment
// measurements use it as the query submitter: a submitter that happens
// to own a long list would read it locally for free, which is not the
// regime the paper measures.
func (c *Cluster) NonOwnerPeer(q *pattern.Query) *kadop.Peer {
	for _, p := range c.Peers {
		owns := false
		for _, t := range q.Terms() {
			owner, err := p.Node().Locate(t.Key())
			if err == nil && owner.ID == p.Node().Self().ID {
				owns = true
				break
			}
		}
		if !owns {
			return p
		}
	}
	return c.Peers[0]
}
