package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// CacheOptions scale the block-cache experiment: a DPP deployment
// answers a repeated-query workload cold and warm, measuring how many
// posting bytes the query-peer block cache keeps off the network.
type CacheOptions struct {
	Records    int
	Peers      int
	Repeats    int // warm repetitions of the query set
	BlockSize  int
	CacheBytes int64
	Seed       int64
}

func (o CacheOptions) defaults() CacheOptions {
	if o.Records <= 0 {
		o.Records = 400
	}
	if o.Peers <= 0 {
		o.Peers = 10
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if o.BlockSize <= 0 {
		// Small blocks so the corpus's popular terms overflow into real
		// DPPs at laptop scale.
		o.BlockSize = 256
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 32 << 20
	}
	return o
}

// cacheQueries is the repeated workload: the paper's stress query plus
// two overlapping patterns, so reuse shows up across queries (shared
// terms) as well as across repetitions.
var cacheQueries = []string{
	Fig3Query,
	`//article//author`,
	`//article//title`,
}

// CachePass is the measurement of one pass over the query set.
type CachePass struct {
	Name          string
	Queries       int
	PostingsBytes int64 // posting-class wire bytes this pass moved
	Hits          int64
	Misses        int64
	Coalesced     int64
	BytesSaved    int64 // wire bytes served from cache instead
}

// CacheResult is the cold/warm comparison.
type CacheResult struct {
	Passes []CachePass
	// ColdBytes and WarmBytes compare one cold pass against the mean
	// warm pass; Ratio is their quotient (0 when warm moved nothing).
	ColdBytes, WarmBytes int64
	Ratio                float64
	CacheStats           string
}

// RunCache measures the posting-block cache on a repeated-query
// workload. One pass runs every query in the set; the cold pass starts
// with an empty cache (and runs the set twice concurrently, so
// coalescing shows up), warm passes rerun the set against the hot
// cache, and a final pass follows an index append to demonstrate
// generation-based invalidation: the touched blocks miss once and
// refill, without any invalidation traffic.
func RunCache(o CacheOptions) (*CacheResult, error) {
	o = o.defaults()
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	cl, err := NewCluster(ClusterOptions{
		Peers: o.Peers,
		Cfg: kadop.Config{
			UseDPP:     true,
			DPP:        dpp.Options{BlockSize: o.BlockSize},
			CacheBytes: o.CacheBytes,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	// Hold back a slice of the corpus for the invalidation pass.
	nExtra := len(docs) / 10
	if nExtra == 0 {
		nExtra = 1
	}
	extra := docs[len(docs)-nExtra:]
	docs = docs[:len(docs)-nExtra]
	if _, err := cl.PublishAll(docs, 4); err != nil {
		return nil, err
	}

	queries := make([]*pattern.Query, len(cacheQueries))
	for i, s := range cacheQueries {
		queries[i] = pattern.MustParse(s)
	}
	querier := cl.NonOwnerPeer(queries[0])
	cache := querier.BlockCache()
	if cache == nil {
		return nil, fmt.Errorf("experiments: cache experiment needs Config.CacheBytes > 0")
	}
	col := cl.Net.Collector

	runSet := func(concurrent int) error {
		if concurrent < 1 {
			concurrent = 1
		}
		var wg sync.WaitGroup
		errs := make([]error, concurrent)
		for w := 0; w < concurrent; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, q := range queries {
					ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
					_, qerr := querier.QueryContext(ctx, q, kadop.QueryOptions{})
					cancel()
					if qerr != nil {
						errs[w] = qerr
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	res := &CacheResult{}
	var prev = cache.Stats()
	measure := func(name string, nq int, run func() error) (CachePass, error) {
		base := col.Bytes(metrics.Postings)
		if err := run(); err != nil {
			return CachePass{}, fmt.Errorf("experiments: cache pass %q: %w", name, err)
		}
		st := cache.Stats()
		pass := CachePass{
			Name:          name,
			Queries:       nq,
			PostingsBytes: col.Bytes(metrics.Postings) - base,
			Hits:          st.Hits - prev.Hits,
			Misses:        st.Misses - prev.Misses,
			Coalesced:     st.Coalesced - prev.Coalesced,
			BytesSaved:    st.BytesSaved - prev.BytesSaved,
		}
		prev = st
		return pass, nil
	}

	// Cold: empty cache, the set twice concurrently — the second runner
	// coalesces onto the first's fetches instead of doubling the bytes.
	col.Reset()
	cache.Reset()
	prev = cache.Stats()
	cold, err := measure("cold", 2*len(queries), func() error { return runSet(2) })
	if err != nil {
		return nil, err
	}
	res.Passes = append(res.Passes, cold)

	// Warm: the cache is hot; repeated sets should move ~no posting
	// bytes.
	var warmBytes int64
	for r := 0; r < o.Repeats; r++ {
		pass, err := measure(fmt.Sprintf("warm-%d", r+1), len(queries), func() error { return runSet(1) })
		if err != nil {
			return nil, err
		}
		warmBytes += pass.PostingsBytes
		res.Passes = append(res.Passes, pass)
	}

	// Invalidate: append a held-back slice of the corpus. Appends bump
	// the touched blocks' generations, so the next pass re-misses
	// exactly the refreshed blocks and refills.
	if len(extra) > 0 {
		if _, err := cl.PublishAll(extra, 1); err != nil {
			return nil, err
		}
		pass, err := measure("after-append", len(queries), func() error { return runSet(1) })
		if err != nil {
			return nil, err
		}
		res.Passes = append(res.Passes, pass)
	}

	res.ColdBytes = cold.PostingsBytes
	res.WarmBytes = warmBytes / int64(o.Repeats)
	if res.WarmBytes > 0 {
		res.Ratio = float64(res.ColdBytes) / float64(res.WarmBytes)
	}
	st := cache.Stats()
	res.CacheStats = fmt.Sprintf("entries %d, %s KB of %s KB, %d inserts, %d evictions",
		st.Entries, kb(st.Bytes), kb(st.Capacity), st.Inserts, st.Evictions)
	return res, nil
}

// kb renders bytes as kilobytes; posting transfers at laptop scale are
// kilobytes, and the MB rendering of the other tables would flatten
// them all to 0.00.
func kb(n int64) string { return fmt.Sprintf("%.1f", float64(n)/1e3) }

// Format renders the cache table.
func (r *CacheResult) Format() string {
	rows := make([][]string, 0, len(r.Passes))
	for _, p := range r.Passes {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.Queries),
			kb(p.PostingsBytes),
			fmt.Sprintf("%d", p.Hits),
			fmt.Sprintf("%d", p.Misses),
			fmt.Sprintf("%d", p.Coalesced),
			kb(p.BytesSaved),
		})
	}
	ratio := "inf (warm moved 0 bytes)"
	if r.Ratio > 0 {
		ratio = fmt.Sprintf("%.1fx", r.Ratio)
	}
	return "Block cache — posting bytes moved per pass over the repeated query set\n" +
		table([]string{"pass", "queries", "postings(KB)", "hits", "misses", "coalesced", "saved(KB)"}, rows) +
		fmt.Sprintf("\ncold/warm posting-byte ratio: %s (cold %s KB vs warm %s KB per pass)\ncache: %s\n",
			ratio, kb(r.ColdBytes), kb(r.WarmBytes), r.CacheStats)
}
