package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"kadop/internal/dht"
	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/workload"
)

// ChurnOptions scale the churn emulation: a replicated deployment
// subjected to a seeded Poisson schedule of joins, graceful leaves and
// crashes, optionally through a lossy network, with the query workload
// and the repair machinery running throughout.
type ChurnOptions struct {
	// Records is the DBLP corpus size.
	Records int
	// Peers is the initial overlay size.
	Peers int
	// Stable is the number of peers (the first Stable ids) that never
	// churn: they publish the corpus, submit the queries, and anchor
	// the overlay the way long-lived peers anchor deployed DHTs.
	Stable int
	// Events is the number of churn events in the schedule.
	Events int
	// JoinRate, LeaveRate and CrashRate are the relative weights of the
	// three event kinds in the schedule (all default to 1).
	JoinRate, LeaveRate, CrashRate float64
	// DropProb is the message loss injected while the schedule runs.
	DropProb float64
	// RepairEvery runs a full repair sweep (RepairOnce on every live
	// member, RefreshOnce on the stable ones) every that many events,
	// standing in for the periodic loops of a wall-clock deployment.
	RepairEvery int
	Seed        int64
}

func (o ChurnOptions) defaults() ChurnOptions {
	if o.Records <= 0 {
		o.Records = 240
	}
	if o.Peers <= 0 {
		o.Peers = 200
	}
	if o.Stable <= 0 {
		o.Stable = 8
	}
	if o.Stable > o.Peers {
		o.Stable = o.Peers
	}
	if o.Events <= 0 {
		o.Events = 60
	}
	if o.JoinRate <= 0 && o.LeaveRate <= 0 && o.CrashRate <= 0 {
		o.JoinRate, o.LeaveRate, o.CrashRate = 1, 1, 1
	}
	if o.DropProb < 0 {
		o.DropProb = 0
	}
	if o.RepairEvery <= 0 {
		o.RepairEvery = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ChurnResult is the outcome of one churn emulation run.
type ChurnResult struct {
	Peers, Stable, Events  int
	Joins, Leaves, Crashes int
	AliveEnd               int
	DropProb               float64
	VirtualTime            time.Duration // schedule time (Poisson gaps, not slept)

	QueriesRun, QueriesOK, QueriesExact int

	LeaveKeysMoved int // keys confirmed on a remote replica at leave time
	LeaveKeysLost  int // keys a leaver held that the overlay later lost

	FinalTermsTotal    int // oracle terms checked after quiesce
	FinalTermsComplete int // of those, readable at full pre-churn count
	QuiesceRounds      int

	RepairPushes, ResyncPulls int64
	Handoffs                  int64
	Probes, FailedProbes      int64
	Evictions, Refreshes      int64
	RepairBytes               int64
	// RepairBytesSeries samples cumulative repair traffic after each
	// event, so runs can plot repair cost over the schedule.
	RepairBytesSeries []int64
}

type churnMember struct {
	node   *dht.Node
	peer   *kadop.Peer
	alive  bool
	stable bool
}

// RunChurn emulates churn the way the paper's robustness discussion
// frames it: an overlay of hundreds of peers holding a replicated
// index, with peers joining (and pulling the keys they become
// responsible for), leaving gracefully (handing their keys off) and
// crashing outright, while a stable core keeps publishing-side state
// and submits the query workload. The run reports query success under
// churn, whether graceful leaves lost any keys, and whether the index
// converged back to the churn-free oracle once the schedule ended.
func RunChurn(o ChurnOptions) (*ChurnResult, error) {
	o = o.defaults()
	dhtCfg := dht.Config{
		Replication: 3,
		// Backoffs stay tiny: the simulated network fails dead-endpoint
		// calls instantly, so large backoffs would only stretch the
		// wall-clock of sweeps over a churned overlay.
		Retry: dht.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
		RPCTimeout:   5 * time.Second,
		ProbeTimeout: 2 * time.Second,
		Seed:         o.Seed,
	}
	cl, err := NewCluster(ClusterOptions{Peers: o.Peers, DHT: dhtCfg})
	if err != nil {
		return nil, err
	}
	members := make([]*churnMember, 0, o.Peers+o.Events)
	for i := range cl.Nodes {
		members = append(members, &churnMember{
			node: cl.Nodes[i], peer: cl.Peers[i], alive: true, stable: i < o.Stable,
		})
	}
	defer func() {
		for _, m := range members {
			if m.alive {
				m.node.Close()
			}
			m.node.Store().Close()
		}
		cl.Close()
	}()

	// Publish churn-free and capture the oracle: the full posting count
	// of every term (the max across replicas is the complete copy) and
	// the exact answer of the probe query.
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	publishers := o.Stable
	if publishers > 4 {
		publishers = 4
	}
	if _, err := cl.PublishAll(docs, publishers); err != nil {
		return nil, err
	}
	oracle := map[string]int{}
	for _, m := range members {
		terms, err := m.node.Store().Terms()
		if err != nil {
			return nil, err
		}
		for _, t := range terms {
			if c, err := m.node.Store().Count(t); err == nil && c > oracle[t] {
				oracle[t] = c
			}
		}
	}
	q := pattern.MustParse(Fig3Query)
	querier := cl.Peers[o.Stable-1]
	base, err := querier.QueryContext(context.Background(), q, kadop.QueryOptions{AllowPartial: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: churn baseline query: %w", err)
	}
	baseDocs := sortedDocs(base.Docs)

	col := cl.Net.Collector
	col.Reset()
	cl.Net.SetFaults(dht.Faults{Seed: o.Seed, DropProb: o.DropProb})
	defer cl.Net.SetFaults(dht.Faults{})

	res := &ChurnResult{Peers: o.Peers, Stable: o.Stable, Events: o.Events, DropProb: o.DropProb}
	rng := rand.New(rand.NewSource(o.Seed + 7))
	nextID := sid.PeerID(o.Peers + 1)
	// leftBehind records, per term a leaver held, the largest copy any
	// leaver held: after quiesce the overlay must still serve at least
	// that many postings or the leave lost data.
	leftBehind := map[string]int{}
	total := o.JoinRate + o.LeaveRate + o.CrashRate

	churnable := func() []*churnMember {
		var out []*churnMember
		for _, m := range members {
			if m.alive && !m.stable {
				out = append(out, m)
			}
		}
		return out
	}
	sweep := func(ctx context.Context) {
		for _, m := range members {
			if !m.alive {
				continue
			}
			m.node.RepairOnce(ctx)
			if m.stable {
				m.node.RefreshOnce(ctx, time.Second)
			}
		}
	}

	for e := 0; e < o.Events; e++ {
		// Poisson schedule: exponential virtual gaps (reported, not
		// slept — the simulated network has no propagation delay to
		// wait out).
		res.VirtualTime += time.Duration(rng.ExpFloat64() * float64(2*time.Second))
		pick := rng.Float64() * total
		cands := churnable()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		switch {
		case pick < o.JoinRate || len(cands) == 0:
			nd, err := dht.NewNode(cl.Net.NewEndpoint(), store.NewMem(), dhtCfg)
			if err != nil {
				cancel()
				return nil, err
			}
			if err := nd.BootstrapContext(ctx, members[0].node.Self()); err != nil {
				nd.Close()
				cancel()
				return nil, fmt.Errorf("experiments: churn join: %w", err)
			}
			nd.Lookup(nd.Self().ID)
			p, err := kadop.NewPeer(nd, nextID, kadop.Config{DHT: dhtCfg})
			if err != nil {
				nd.Close()
				cancel()
				return nil, err
			}
			nextID++
			p.Announce()
			// The joiner pulls the keys it is now among the owners of,
			// so queries routed to it do not come back empty before the
			// owners' push loops notice it.
			nd.PullOwnedOnce(ctx)
			members = append(members, &churnMember{node: nd, peer: p, alive: true})
			res.Joins++
		case pick < o.JoinRate+o.LeaveRate:
			m := cands[rng.Intn(len(cands))]
			terms, _ := m.node.Store().Terms()
			for _, t := range terms {
				if c, err := m.node.Store().Count(t); err == nil && c > leftBehind[t] {
					leftBehind[t] = c
				}
			}
			moved, _ := m.peer.Leave(ctx)
			m.alive = false
			res.LeaveKeysMoved += moved
			res.Leaves++
		default:
			m := cands[rng.Intn(len(cands))]
			m.node.Close()
			m.alive = false
			res.Crashes++
		}
		cancel()

		qctx, qcancel := context.WithTimeout(context.Background(), 60*time.Second)
		r, qerr := querier.QueryContext(qctx, q, kadop.QueryOptions{AllowPartial: true})
		qcancel()
		res.QueriesRun++
		if qerr == nil {
			res.QueriesOK++
			if !r.Incomplete && docsEqual(sortedDocs(r.Docs), baseDocs) {
				res.QueriesExact++
			}
		}
		res.RepairBytesSeries = append(res.RepairBytesSeries, col.Bytes(metrics.Repair))

		if (e+1)%o.RepairEvery == 0 {
			sctx, scancel := context.WithTimeout(context.Background(), 120*time.Second)
			sweep(sctx)
			scancel()
		}
	}

	// Quiesce: lift the faults, re-register the stable peers' directory
	// entries, then repair until a full sweep pushes nothing.
	cl.Net.SetFaults(dht.Faults{})
	for _, m := range members {
		if m.alive && m.stable {
			m.peer.Reannounce()
		}
	}
	for round := 0; round < 15; round++ {
		res.QuiesceRounds++
		pushed := 0
		qctx, qcancel := context.WithTimeout(context.Background(), 120*time.Second)
		for _, m := range members {
			if !m.alive {
				continue
			}
			n, _ := m.node.RepairOnce(qctx)
			pushed += n
		}
		qcancel()
		if pushed == 0 {
			break
		}
	}

	// Completeness against the churn-free oracle, read through the
	// overlay (merged across reachable replicas) from a stable member.
	reader := members[0].node
	fctx, fcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer fcancel()
	for term, want := range oracle {
		res.FinalTermsTotal++
		l, err := reader.GetContext(fctx, term)
		if err == nil && len(l) >= want {
			res.FinalTermsComplete++
		}
	}
	for term, want := range leftBehind {
		l, err := reader.GetContext(fctx, term)
		if err != nil || len(l) < want {
			res.LeaveKeysLost++
		}
	}

	for _, m := range members {
		if m.alive {
			res.AliveEnd++
		}
	}
	res.RepairPushes = col.Events(metrics.EventRepair)
	res.ResyncPulls = col.Events(metrics.EventResync)
	res.Handoffs = col.Events(metrics.EventHandoff)
	res.Probes = col.Events(metrics.EventProbe)
	res.FailedProbes = col.Events(metrics.EventFailedProbe)
	res.Evictions = col.Events(metrics.EventEviction)
	res.Refreshes = col.Events(metrics.EventRefresh)
	res.RepairBytes = col.Bytes(metrics.Repair)
	return res, nil
}

func sortedDocs(ds []sid.DocKey) []sid.DocKey {
	out := append([]sid.DocKey(nil), ds...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

func docsEqual(a, b []sid.DocKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Format renders the churn report.
func (r *ChurnResult) Format() string {
	pct := func(n, of int) string {
		if of == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(of))
	}
	out := fmt.Sprintf("Churn — %d peers (%d stable), %d events over %s virtual, %.0f%% loss\n",
		r.Peers, r.Stable, r.Events, r.VirtualTime.Round(time.Second), r.DropProb*100)
	out += table(
		[]string{"joins", "leaves", "crashes", "alive-end", "queries-ok", "queries-exact", "keys-moved", "keys-lost"},
		[][]string{{
			fmt.Sprintf("%d", r.Joins), fmt.Sprintf("%d", r.Leaves), fmt.Sprintf("%d", r.Crashes),
			fmt.Sprintf("%d", r.AliveEnd),
			fmt.Sprintf("%d/%d (%s)", r.QueriesOK, r.QueriesRun, pct(r.QueriesOK, r.QueriesRun)),
			fmt.Sprintf("%d/%d", r.QueriesExact, r.QueriesRun),
			fmt.Sprintf("%d", r.LeaveKeysMoved), fmt.Sprintf("%d", r.LeaveKeysLost),
		}},
	)
	out += fmt.Sprintf("\nConvergence after quiesce (%d repair rounds): %d/%d oracle terms at full count (%s)\n",
		r.QuiesceRounds, r.FinalTermsComplete, r.FinalTermsTotal, pct(r.FinalTermsComplete, r.FinalTermsTotal))
	out += "\nRepair machinery\n" + table(
		[]string{"pushes", "pulls", "handoffs", "probes", "probe-fail", "evictions", "refreshes", "repair(MB)"},
		[][]string{{
			fmt.Sprintf("%d", r.RepairPushes), fmt.Sprintf("%d", r.ResyncPulls),
			fmt.Sprintf("%d", r.Handoffs), fmt.Sprintf("%d", r.Probes),
			fmt.Sprintf("%d", r.FailedProbes), fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.Refreshes), mb(r.RepairBytes),
		}},
	)
	if n := len(r.RepairBytesSeries); n >= 4 {
		out += "\nRepair traffic over the schedule (cumulative MB at quartiles)\n"
		out += fmt.Sprintf("  25%%: %s  50%%: %s  75%%: %s  100%%: %s\n",
			mb(r.RepairBytesSeries[n/4]), mb(r.RepairBytesSeries[n/2]),
			mb(r.RepairBytesSeries[3*n/4]), mb(r.RepairBytesSeries[n-1]))
	}
	return out
}
