package experiments

import (
	"fmt"
	"time"

	"kadop/internal/fundex"
	"kadop/internal/pattern"
	"kadop/internal/workload"
	"kadop/internal/xmltree"
)

// Fig9Options scale the Figure 9 experiment: query processing time over
// an intensional collection under the Fundex variants.
type Fig9Options struct {
	// Docs are the host-document counts to sweep (the paper uses
	// 5 000–25 000; each host references one ~1 KB abstract file).
	Docs    []int
	Peers   int
	Matches int
	Seed    int64
}

func (o Fig9Options) defaults() Fig9Options {
	if len(o.Docs) == 0 {
		o.Docs = []int{250, 500, 750, 1000, 1250}
	}
	if o.Peers <= 0 {
		o.Peers = 12
	}
	if o.Matches <= 0 {
		o.Matches = 10
	}
	return o
}

// Fig9Row is one measurement.
type Fig9Row struct {
	Mode       fundex.Mode
	Docs       int
	Elapsed    time.Duration
	Answers    int
	RevLookups int
}

// Fig9Result is the Figure 9 sweep.
type Fig9Result struct {
	Rows []Fig9Row
}

// RunFig9 reproduces Figure 9: the query //article[contains(.//title,
// 'system') and contains(.//abstract,'interface')] over an INEX-HCO-like
// collection of hosts plus separate abstract files, under Fundex-simple,
// Fundex with representative data instances, and in-lining.
func RunFig9(o Fig9Options) (*Fig9Result, error) {
	o = o.defaults()
	res := &Fig9Result{}
	q := pattern.MustParse(workload.INEXQuery)
	for _, mode := range []fundex.Mode{fundex.Fundex, fundex.Representative, fundex.Inline} {
		for _, nDocs := range o.Docs {
			corpus := workload.INEX{Seed: o.Seed, Docs: nDocs, Matches: o.Matches, SecondType: true}.Generate()
			cl, err := NewCluster(ClusterOptions{Peers: o.Peers})
			if err != nil {
				return nil, err
			}
			ixs := make([]*fundex.Indexer, len(cl.Peers))
			for i, p := range cl.Peers {
				ixs[i] = fundex.New(p, mode, corpus.Resolve)
			}
			for i, h := range corpus.Hosts {
				raw := xmltree.Serialize(h.Doc)
				if _, err := ixs[i%len(ixs)].Publish([]byte(raw), h.URI); err != nil {
					cl.Close()
					return nil, fmt.Errorf("experiments: fig9 %v publish: %w", mode, err)
				}
			}
			ans, err := ixs[0].Query(q)
			cl.Close()
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 %v query: %w", mode, err)
			}
			hosts := 0
			for _, d := range ans.Docs {
				if !fundex.IsFunctionalDoc(d) {
					hosts++
				}
			}
			res.Rows = append(res.Rows, Fig9Row{
				Mode: mode, Docs: nDocs, Elapsed: ans.Elapsed,
				Answers: hosts, RevLookups: ans.RevLookups,
			})
		}
	}
	return res, nil
}

// Format renders the Figure 9 series.
func (r *Fig9Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		name := map[fundex.Mode]string{
			fundex.Fundex:         "Fundex-simple",
			fundex.Representative: "Fundex-representative data instance",
			fundex.Inline:         "Inlining",
		}[row.Mode]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", row.Docs),
			ms(row.Elapsed),
			fmt.Sprintf("%d", row.Answers),
			fmt.Sprintf("%d", row.RevLookups),
		})
	}
	return "Figure 9 — query processing time with the Fundex (query " + workload.INEXQuery + ")\n" +
		table([]string{"setting", "host docs", "query time(ms)", "answer docs", "rev lookups"}, rows)
}
