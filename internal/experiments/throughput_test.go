package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("publishes three corpora against disk stores")
	}
	// The race build distorts both gates (everything is 5-20x slower
	// and fsync stops dominating), so it only checks the plumbing.
	res, err := RunThroughput(ThroughputOptions{
		Records: 60, Peers: 4, Queries: 10, Seed: 1,
		NoGate: raceEnabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs == 0 || res.UnbatchedSec <= 0 || res.BatchedSec <= 0 {
		t.Fatalf("degenerate publish measurements: %+v", res)
	}
	if res.Gain <= 0 {
		t.Fatalf("gain = %v, want > 0", res.Gain)
	}
	if res.IdleP99 <= 0 || res.CtlP99 <= 0 || res.BusyP99 <= 0 {
		t.Fatalf("degenerate latency measurements: idle %v ctl %v busy %v", res.IdleP99, res.CtlP99, res.BusyP99)
	}
	if res.IdleSamples < 10 || res.CtlSamples < 10 || res.BusySamples < 10 {
		t.Fatalf("too few samples: idle %d ctl %d busy %d", res.IdleSamples, res.CtlSamples, res.BusySamples)
	}
	if res.IdleP50 > res.IdleP99 || res.CtlP50 > res.CtlP99 || res.BusyP50 > res.BusyP99 {
		t.Fatalf("quantiles inverted: %+v", res)
	}
	out := res.Format()
	for _, want := range []string{"group commit", "per-op commit", "publish gain", "idle cluster", "bulk publish elsewhere", "during bulk publish"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestQuantileDur(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	if got := quantileDur(ds, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := quantileDur(ds, 0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
	if got := quantileDur(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// quantileDur must not reorder the caller's samples.
	if ds[0] != 5 || ds[4] != 3 {
		t.Fatalf("input mutated: %v", ds)
	}
}
