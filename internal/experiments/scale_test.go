package experiments

import (
	"testing"

	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// TestPaperScaleNetwork runs a deployment at the paper's network scale
// (200 peers, the smaller of its two settings) end to end: bootstrap,
// publish from many peers, query from several others. It demonstrates
// that the simulated network genuinely operates at the sizes the
// Figure 2/3 sweeps can be scaled to with kadop-bench flags.
func TestPaperScaleNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("200-peer cluster; skipped in -short")
	}
	const peers = 200
	cl, err := NewCluster(ClusterOptions{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	docs := workload.DBLP{Seed: 42, Records: 500}.Documents()
	if _, err := cl.PublishAll(docs, 25); err != nil {
		t.Fatal(err)
	}

	q := pattern.MustParse(`//article//author[. contains "Ullman"]`)
	var want int
	for i := 0; i < 5; i++ {
		res, err := cl.Peers[peers-1-i*13].Query(q, kadop.QueryOptions{})
		if err != nil {
			t.Fatalf("query from peer %d: %v", peers-1-i*13, err)
		}
		if i == 0 {
			want = len(res.Matches)
			if want == 0 {
				t.Fatal("no matches at paper scale")
			}
		} else if len(res.Matches) != want {
			t.Fatalf("peer %d sees %d matches, first saw %d", peers-1-i*13, len(res.Matches), want)
		}
	}

	// Routing state is bounded: k-buckets cap contacts per peer.
	for i := 0; i < peers; i += 37 {
		if size := cl.Nodes[i].Table().Size(); size == 0 {
			t.Fatalf("peer %d has an empty routing table", i)
		} else if size > 8*160 {
			t.Fatalf("peer %d routing table exceeds bucket bounds: %d", i, size)
		}
	}

	// Index load is spread: no peer holds everything.
	max, total := 0, 0
	for _, nd := range cl.Nodes {
		terms, err := nd.Store().Terms()
		if err != nil {
			t.Fatal(err)
		}
		n := len(terms)
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		t.Fatal("no index entries anywhere")
	}
	if float64(max) > 0.2*float64(total) {
		t.Fatalf("one peer holds %d of %d term slices; index is not spread", max, total)
	}
}
