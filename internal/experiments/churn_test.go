package experiments

import (
	"testing"
)

// TestChurnCompleteness is the churn property test: under a seeded
// join/leave/crash schedule with injected message loss, every query
// must come back, graceful leaves must lose no keys, and after the
// schedule quiesces the index must converge back to the churn-free
// oracle — every published posting fully readable through the overlay.
// It runs under -race in make check, so it also shakes the background
// probes and handoffs for data races.
func TestChurnCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("churn emulation takes a few seconds")
	}
	res, err := RunChurn(ChurnOptions{
		Records: 80,
		Peers:   24,
		Stable:  6,
		Events:  12,
		// Repair every 3 events: with a quarter of the overlay crashing
		// over the schedule, the replica sets need re-filling faster
		// than the default cadence or a key can lose all three copies
		// between sweeps.
		RepairEvery: 3,
		DropProb:    0.02,
		Seed:        3,
	})
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	t.Logf("\n%s", res.Format())
	if res.QueriesOK != res.QueriesRun {
		t.Errorf("queries under churn: %d/%d succeeded", res.QueriesOK, res.QueriesRun)
	}
	if res.LeaveKeysLost != 0 {
		t.Errorf("graceful leaves lost %d keys (moved %d)", res.LeaveKeysLost, res.LeaveKeysMoved)
	}
	if res.Leaves > 0 && res.Handoffs == 0 {
		t.Errorf("%d leaves but no handoffs counted", res.Leaves)
	}
	if res.FinalTermsComplete != res.FinalTermsTotal {
		t.Errorf("convergence after quiesce: %d/%d oracle terms at full count",
			res.FinalTermsComplete, res.FinalTermsTotal)
	}
	if res.FinalTermsTotal == 0 {
		t.Error("oracle is empty; the test checked nothing")
	}
}
