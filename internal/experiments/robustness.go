package experiments

import (
	"context"
	"fmt"
	"time"

	"kadop/internal/dht"
	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/trace"
	"kadop/internal/workload"
)

// RobustnessOptions scale the robustness experiment: a replicated
// deployment queried under injected message loss and one peer failure,
// reporting what the fault-tolerance machinery did and what it cost.
type RobustnessOptions struct {
	Records   int
	Peers     int
	Queries   int
	DropProbs []float64
	Seed      int64
}

func (o RobustnessOptions) defaults() RobustnessOptions {
	if o.Records <= 0 {
		o.Records = 300
	}
	if o.Peers <= 0 {
		o.Peers = 12
	}
	if o.Queries <= 0 {
		o.Queries = 10
	}
	if len(o.DropProbs) == 0 {
		o.DropProbs = []float64{0, 0.10, 0.20}
	}
	return o
}

// RobustnessRow is one measurement at one loss rate.
type RobustnessRow struct {
	DropProb  float64
	Complete  int   // queries answered exactly after the kill
	Partial   int   // queries returning an explicitly incomplete answer
	Retries   int64 // RPC attempts beyond the first
	Timeouts  int64 // attempts abandoned on a deadline
	Evictions int64 // contacts dropped from routing tables
	Repairs   int64 // keys re-pushed by the repair pass

	RepairBytes int64 // replica-maintenance traffic

	// Phases are the latency distributions of the query pipeline under
	// this loss rate, from the collector's histograms.
	Phases []PhaseLatency
}

// PhaseLatency is the latency distribution of one pipeline phase.
type PhaseLatency struct {
	Op            string
	Count         int64
	P50, P95, P99 time.Duration
}

// RobustnessResult is the loss-rate sweep.
type RobustnessResult struct {
	Rows []RobustnessRow
}

// RunRobustness prices fault tolerance the way the paper prices query
// bandwidth: a deployment with Replication 2 and retrying RPCs
// publishes a DBLP corpus, loses one peer, repairs the index from the
// surviving replicas, and then answers a query workload through a lossy
// network. Each row reports how many queries completed exactly versus
// returned an explicitly partial answer, alongside the retry, timeout,
// eviction and repair counters and the repair traffic.
func RunRobustness(o RobustnessOptions) (*RobustnessResult, error) {
	o = o.defaults()
	res := &RobustnessResult{}
	q := pattern.MustParse(Fig3Query)
	for _, drop := range o.DropProbs {
		docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
		cl, err := NewCluster(ClusterOptions{
			Peers: o.Peers,
			DHT: dht.Config{
				Replication: 2,
				Retry: dht.RetryPolicy{
					Attempts:    6,
					BaseBackoff: 2 * time.Millisecond,
					MaxBackoff:  50 * time.Millisecond,
				},
				RPCTimeout: 5 * time.Second,
			},
		})
		if err != nil {
			return nil, err
		}
		if _, err := cl.PublishAll(docs, 4); err != nil {
			cl.Close()
			return nil, err
		}
		cl.Net.Collector.Reset()

		// Lose one peer, then let the survivors restore the replication
		// factor, through the already-lossy network.
		cl.Net.SetFaults(dht.Faults{Seed: o.Seed, DropProb: drop})
		if err := cl.Nodes[1].Close(); err != nil {
			cl.Close()
			return nil, err
		}
		for i, nd := range cl.Nodes {
			if i == 1 {
				continue
			}
			rctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			_, _ = nd.RepairOnce(rctx) // per-key failures show up in the counters
			cancel()
		}

		// The query workload: every query must come back within its
		// deadline, either exact or explicitly marked incomplete. The
		// querier gets a tracer so the per-phase histograms (transfer,
		// twig join) populate alongside the always-on ones.
		row := RobustnessRow{DropProb: drop}
		querier := cl.Peers[len(cl.Peers)-1]
		querier.Node().SetTracer(trace.New(4))
		for i := 0; i < o.Queries; i++ {
			qctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			r, qerr := querier.QueryContext(qctx, q, kadop.QueryOptions{AllowPartial: true})
			cancel()
			if qerr != nil {
				cl.Net.SetFaults(dht.Faults{})
				cl.Close()
				return nil, fmt.Errorf("experiments: robustness query at drop %.2f: %w", drop, qerr)
			}
			if r.Incomplete {
				row.Partial++
			} else {
				row.Complete++
			}
		}
		col := cl.Net.Collector
		row.Retries = col.Events(metrics.EventRetry)
		row.Timeouts = col.Events(metrics.EventTimeout)
		row.Evictions = col.Events(metrics.EventEviction)
		row.Repairs = col.Events(metrics.EventRepair)
		row.RepairBytes = col.Bytes(metrics.Repair)
		for _, op := range []string{
			metrics.OpQueryTotal, metrics.OpQueryIndex, metrics.OpLookup,
			metrics.OpPostingsTransfer, metrics.OpTwigJoin, metrics.OpSecondPhase,
		} {
			h := col.Hist(op)
			if h.Count() == 0 {
				continue
			}
			row.Phases = append(row.Phases, PhaseLatency{
				Op:    op,
				Count: h.Count(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
			})
		}
		cl.Net.SetFaults(dht.Faults{})
		cl.Close()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the robustness table.
func (r *RobustnessResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", row.DropProb*100),
			fmt.Sprintf("%d", row.Complete),
			fmt.Sprintf("%d", row.Partial),
			fmt.Sprintf("%d", row.Retries),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.Evictions),
			fmt.Sprintf("%d", row.Repairs),
			mb(row.RepairBytes),
		})
	}
	out := "Robustness — queries after one peer failure, under message loss (Replication 2)\n" +
		table([]string{"drop", "complete", "partial", "retries", "timeouts", "evictions", "repairs", "repair(MB)"}, rows)
	for _, row := range r.Rows {
		if len(row.Phases) == 0 {
			continue
		}
		msq := func(d time.Duration) string {
			return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
		}
		prows := make([][]string, 0, len(row.Phases))
		for _, ph := range row.Phases {
			prows = append(prows, []string{
				ph.Op,
				fmt.Sprintf("%d", ph.Count),
				msq(ph.P50), msq(ph.P95), msq(ph.P99),
			})
		}
		out += fmt.Sprintf("\nPhase latency at %.0f%% loss\n", row.DropProb*100) +
			table([]string{"phase", "obs", "p50(ms)", "p95(ms)", "p99(ms)"}, prows)
	}
	return out
}
