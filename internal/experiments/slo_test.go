package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"kadop/internal/admin"
	"kadop/internal/obs/cluster"
	"kadop/internal/obs/flight"
)

// TestSLOForensicChain pins the observability plane end to end, over
// real HTTP, the way an operator would walk it: under fault injection
// the burn-rate alert fires, /debug/flight dumps the querier's ring
// with the trace ids of the captured slow queries, the latency
// histogram's exemplars on /metrics carry those same trace ids, and
// the kadop-top report (BuildReport over the scrape) renders the SLO
// burn verdict. It runs under -race in make check, so the recorder,
// engine and exporter are also shaken for data races.
func TestSLOForensicChain(t *testing.T) {
	if testing.Short() {
		t.Skip("seeded overload run takes a few seconds")
	}
	res, err := RunSLO(SLOOptions{
		Records: 100,
		Peers:   5,
		Queries: 4,
		Jitter:  150 * time.Millisecond,
		Seed:    1,
		Inspect: func(f SLOForensics) error {
			addr, stop, err := admin.Serve("127.0.0.1:0", admin.Options{
				Collector: f.Node.Metrics(),
				Node:      f.Node,
				SLO:       f.Engine,
			})
			if err != nil {
				return fmt.Errorf("admin endpoint: %w", err)
			}
			defer stop()

			// /debug/flight: the ring dump names the captured queries.
			resp, err := http.Get("http://" + addr + "/debug/flight?kind=query")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("/debug/flight: status %d", resp.StatusCode)
			}
			var dump flight.Dump
			if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
				return fmt.Errorf("/debug/flight: %w", err)
			}
			flightIDs := map[uint64]bool{}
			for _, id := range dump.TraceIDs(flight.KindQuery) {
				flightIDs[id] = true
			}
			if len(flightIDs) == 0 {
				return fmt.Errorf("/debug/flight dump has no query trace ids (%d events)", len(dump.Events))
			}

			// /metrics via the kadop-top scraper: exemplars link back to
			// the flight dump, and the report renders the burn verdict.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			var sc cluster.Scraper
			scrapes, err := sc.ScrapeAll(ctx, []string{addr})
			if err != nil {
				return err
			}
			rep := cluster.BuildReport(scrapes, 5)
			if len(rep.Exemplars) == 0 {
				return fmt.Errorf("scrape found no histogram exemplars")
			}
			linked := 0
			for _, e := range rep.Exemplars {
				if flightIDs[e.TraceID] {
					linked++
				}
			}
			if linked == 0 {
				return fmt.Errorf("no exemplar trace id (%d scraped) appears in the flight dump (%d ids)",
					len(rep.Exemplars), len(flightIDs))
			}
			if !strings.HasPrefix(rep.SLOVerdict, "BURN") {
				return fmt.Errorf("report verdict = %q, want a BURN verdict", rep.SLOVerdict)
			}
			if out := rep.Format(); !strings.Contains(out, "slo: BURN") || !strings.Contains(out, "slow exemplars:") {
				return fmt.Errorf("kadop-top report misses the slo verdict or exemplar section:\n%s", out)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkedTraces == 0 || res.DumpEvents == 0 {
		t.Fatalf("forensic chain incomplete: %+v", res)
	}
	t.Log(res.Format())
}
