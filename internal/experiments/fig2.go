package experiments

import (
	"fmt"
	"time"

	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/workload"
)

// Fig2Options scale the Figure 2 experiment (indexing time as a
// function of published data volume, network size, publisher count,
// DPP, and the store engine).
type Fig2Options struct {
	// Records are the corpus sizes to sweep (bibliographic records).
	Records []int
	// SmallPeers and LargePeers are the two network sizes compared
	// (the paper uses 200 and 500).
	SmallPeers, LargePeers int
	// Publishers are the multi-publisher settings on the large network
	// (the paper uses 25 and 50).
	Publishers []int
	// WithNaiveStore adds the PAST-like store baseline (at the smallest
	// corpus size only: it is orders of magnitude slower by design).
	WithNaiveStore bool
	Seed           int64
}

func (o Fig2Options) defaults() Fig2Options {
	if len(o.Records) == 0 {
		o.Records = []int{500, 1000, 1500, 2000}
	}
	if o.SmallPeers <= 0 {
		o.SmallPeers = 20
	}
	if o.LargePeers <= 0 {
		o.LargePeers = 50
	}
	if len(o.Publishers) == 0 {
		o.Publishers = []int{5, 10}
	}
	return o
}

// Fig2Row is one measurement of the indexing-time experiment.
type Fig2Row struct {
	Setting   string
	Records   int
	SizeBytes int
	Elapsed   time.Duration
}

// Fig2Result is the full Figure 2 sweep.
type Fig2Result struct {
	Rows []Fig2Row
}

// RunFig2 reproduces Figure 2: total publishing time against the total
// size of published data, across network sizes, publisher counts, the
// DPP, and (optionally) the naive store.
func RunFig2(o Fig2Options) (*Fig2Result, error) {
	o = o.defaults()
	res := &Fig2Result{}

	type setting struct {
		name       string
		peers      int
		publishers int
		cfg        kadop.Config
		store      StoreKind
		sizes      []int
	}
	settings := []setting{
		{name: fmt.Sprintf("1 publisher, %d peers", o.SmallPeers), peers: o.SmallPeers, publishers: 1, sizes: o.Records},
		{name: fmt.Sprintf("1 publisher, %d peers", o.LargePeers), peers: o.LargePeers, publishers: 1, sizes: o.Records},
		{name: fmt.Sprintf("1 publisher, %d peers (with DPP)", o.LargePeers), peers: o.LargePeers, publishers: 1,
			cfg: kadop.Config{UseDPP: true, DPP: dpp.Options{BlockSize: 512}}, sizes: o.Records},
	}
	for _, pubs := range o.Publishers {
		settings = append(settings, setting{
			name:  fmt.Sprintf("%d publishers, %d peers", pubs, o.LargePeers),
			peers: o.LargePeers, publishers: pubs, sizes: o.Records,
		})
	}
	if o.WithNaiveStore {
		small := o.Records[0]
		if small > 200 {
			small = 200
		}
		settings = append(settings, setting{
			name:  fmt.Sprintf("1 publisher, %d peers (naive PAST-like store)", o.SmallPeers),
			peers: o.SmallPeers, publishers: 1, store: NaiveStore, sizes: []int{small},
		})
	}

	for _, s := range settings {
		for _, records := range s.sizes {
			docs := workload.DBLP{Seed: o.Seed, Records: records}.Documents()
			cl, err := NewCluster(ClusterOptions{Peers: s.peers, Cfg: s.cfg, Store: s.store})
			if err != nil {
				return nil, err
			}
			elapsed, err := cl.PublishAll(docs, s.publishers)
			cl.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig2Row{
				Setting: s.name, Records: records,
				SizeBytes: workload.SizeBytes(docs), Elapsed: elapsed,
			})
		}
	}
	return res, nil
}

// Format renders the sweep as the Figure 2 series.
func (r *Fig2Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Setting,
			fmt.Sprintf("%d", row.Records),
			mb(int64(row.SizeBytes)),
			ms(row.Elapsed),
		})
	}
	return "Figure 2 — indexing time vs published data\n" +
		table([]string{"setting", "records", "size(MB)", "publish time(ms)"}, rows)
}
