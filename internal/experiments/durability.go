package experiments

import (
	"fmt"
	"os"
	"time"

	"kadop/internal/store"
	"kadop/internal/workload"
)

// DurabilityOptions scale the durability experiment: a deployment of
// disk-backed peers publishes a DBLP corpus once per WAL fsync policy,
// pricing the durability window in publish throughput. After each run
// every peer store is reopened (the restart path: checksum sweep plus
// WAL recovery) to measure what coming back costs.
type DurabilityOptions struct {
	Records  int
	Peers    int
	Seed     int64
	Policies []store.FsyncPolicy
}

func (o DurabilityOptions) defaults() DurabilityOptions {
	if o.Records <= 0 {
		o.Records = 300
	}
	if o.Peers <= 0 {
		o.Peers = 8
	}
	if len(o.Policies) == 0 {
		o.Policies = []store.FsyncPolicy{store.FsyncOff, store.FsyncInterval, store.FsyncAlways}
	}
	return o
}

// DurabilityRow is one measurement at one fsync policy.
type DurabilityRow struct {
	Policy  store.FsyncPolicy
	Docs    int
	Publish time.Duration // wall clock of the whole publish run
	DocsSec float64
	Reopen  time.Duration // sum over peers of post-close reopen time
}

// DurabilityResult is the fsync-policy sweep.
type DurabilityResult struct {
	Rows []DurabilityRow
}

// RunDurability prices durability the way fig2 prices the store: the
// same publish workload at each fsync policy. FsyncAlways pays one WAL
// fsync per committed operation; FsyncInterval group-commits on a
// timer; FsyncOff leaves syncing to the page cache and bounds nothing.
// The spread between rows is what surviving a crash costs at publish
// time.
func RunDurability(o DurabilityOptions) (*DurabilityResult, error) {
	o = o.defaults()
	res := &DurabilityResult{}
	for _, policy := range o.Policies {
		docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
		dir, err := os.MkdirTemp("", "kadop-dur-")
		if err != nil {
			return nil, err
		}
		cl, err := NewCluster(ClusterOptions{
			Peers:   o.Peers,
			Store:   BTreeStore,
			Fsync:   policy,
			TempDir: dir,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		elapsed, err := cl.PublishAll(docs, 4)
		if err != nil {
			cl.Close()
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: durability publish under %v: %w", policy, err)
		}
		cl.Close()

		// The restart path: reopen every peer store from its files. A
		// clean Close checkpoints, so this times the checksum sweep and
		// an (empty) WAL scan — the fixed cost every restart pays.
		var reopen time.Duration
		for i := 0; i < o.Peers; i++ {
			start := time.Now()
			st, err := store.OpenBTree(fmt.Sprintf("%s/peer%d.bt", dir, i))
			if err != nil {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("experiments: durability reopen peer %d under %v: %w", i, policy, err)
			}
			reopen += time.Since(start)
			st.Close()
		}
		os.RemoveAll(dir)

		res.Rows = append(res.Rows, DurabilityRow{
			Policy:  policy,
			Docs:    len(docs),
			Publish: elapsed,
			DocsSec: float64(len(docs)) / elapsed.Seconds(),
			Reopen:  reopen,
		})
	}
	return res, nil
}

// Format renders the durability table.
func (r *DurabilityResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy.String(),
			fmt.Sprintf("%d", row.Docs),
			ms(row.Publish),
			fmt.Sprintf("%.1f", row.DocsSec),
			ms(row.Reopen),
		})
	}
	return "Durability — publish throughput per WAL fsync policy (disk B+-tree peers)\n" +
		table([]string{"fsync", "docs", "publish(ms)", "docs/s", "reopen(ms)"}, rows)
}
