package experiments

import (
	"fmt"
	"os"
	"time"

	"kadop/internal/store"
	"kadop/internal/workload"
)

// DurabilityOptions scale the durability experiment: a deployment of
// disk-backed peers publishes a DBLP corpus once per WAL fsync policy,
// pricing the durability window in publish throughput. After each run
// every peer store is reopened (the restart path: checksum sweep plus
// WAL recovery) to measure what coming back costs. A final run repeats
// FsyncAlways with the write coalescer on: group commit buys back
// throughput without giving up the per-acknowledgement durability
// guarantee.
type DurabilityOptions struct {
	Records  int
	Peers    int
	Seed     int64
	Policies []store.FsyncPolicy
	// NoBatch skips the trailing batched-FsyncAlways run.
	NoBatch bool
}

func (o DurabilityOptions) defaults() DurabilityOptions {
	// Durability prices the per-store cost of the WAL fsync policy, so
	// the default deployment concentrates index load on few stores
	// rather than spreading it thin: with many peers the plain
	// FsyncAlways row hides its per-op fsyncs behind cross-store
	// overlap and the spread between rows (the thing being measured)
	// collapses into scheduling noise.
	if o.Records <= 0 {
		o.Records = 800
	}
	if o.Peers <= 0 {
		o.Peers = 4
	}
	if len(o.Policies) == 0 {
		o.Policies = []store.FsyncPolicy{store.FsyncOff, store.FsyncInterval, store.FsyncAlways}
	}
	return o
}

// DurabilityRow is one measurement at one fsync policy.
type DurabilityRow struct {
	Policy  store.FsyncPolicy
	Batched bool // write coalescer on (group commit)
	Docs    int
	Publish time.Duration // wall clock of the whole publish run
	DocsSec float64
	Reopen  time.Duration // sum over peers of post-close reopen time
}

func (r DurabilityRow) label() string {
	if r.Batched {
		return r.Policy.String() + "+batch"
	}
	return r.Policy.String()
}

// DurabilityResult is the fsync-policy sweep.
type DurabilityResult struct {
	Rows []DurabilityRow
}

// BatchGain is the batched/unbatched publish-throughput ratio at
// FsyncAlways, zero when either row is missing.
func (r *DurabilityResult) BatchGain() float64 {
	var plain, batched float64
	for _, row := range r.Rows {
		if row.Policy != store.FsyncAlways {
			continue
		}
		if row.Batched {
			batched = row.DocsSec
		} else {
			plain = row.DocsSec
		}
	}
	if plain == 0 {
		return 0
	}
	return batched / plain
}

// RunDurability prices durability the way fig2 prices the store: the
// same publish workload at each fsync policy. FsyncAlways pays one WAL
// fsync per committed operation; FsyncInterval group-commits on a
// timer; FsyncOff leaves syncing to the page cache and bounds nothing.
// The spread between rows is what surviving a crash costs at publish
// time — and the final always+batch row is that cost with the write
// coalescer turning concurrent appends into group commits.
func RunDurability(o DurabilityOptions) (*DurabilityResult, error) {
	o = o.defaults()
	res := &DurabilityResult{}
	for _, policy := range o.Policies {
		row, err := runDurabilityOnce(o, policy, false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if !o.NoBatch {
		row, err := runDurabilityOnce(o, store.FsyncAlways, true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runDurabilityOnce(o DurabilityOptions, policy store.FsyncPolicy, batched bool) (DurabilityRow, error) {
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	dir, err := os.MkdirTemp("", "kadop-dur-")
	if err != nil {
		return DurabilityRow{}, err
	}
	defer os.RemoveAll(dir)
	cl, err := NewCluster(ClusterOptions{
		Peers:   o.Peers,
		Store:   BTreeStore,
		Fsync:   policy,
		Batched: batched,
		TempDir: dir,
	})
	if err != nil {
		return DurabilityRow{}, err
	}
	// The batched row exercises the full bulk pipeline: doc batching at
	// the publishers (postings merged per term across each batch) over
	// group commit at the home stores. The plain rows publish per doc,
	// the seed behaviour.
	var elapsed time.Duration
	if batched {
		elapsed, err = cl.PublishAllBatched(docs, 4, 0)
	} else {
		elapsed, err = cl.PublishAll(docs, 4)
	}
	if err != nil {
		cl.Close()
		return DurabilityRow{}, fmt.Errorf("experiments: durability publish under %v: %w", policy, err)
	}
	cl.Close()

	// The restart path: reopen every peer store from its files. A
	// clean Close checkpoints, so this times the checksum sweep and
	// an (empty) WAL scan — the fixed cost every restart pays.
	var reopen time.Duration
	for i := 0; i < o.Peers; i++ {
		start := time.Now()
		st, err := store.OpenBTree(fmt.Sprintf("%s/peer%d.bt", dir, i))
		if err != nil {
			return DurabilityRow{}, fmt.Errorf("experiments: durability reopen peer %d under %v: %w", i, policy, err)
		}
		reopen += time.Since(start)
		st.Close()
	}

	return DurabilityRow{
		Policy:  policy,
		Batched: batched,
		Docs:    len(docs),
		Publish: elapsed,
		DocsSec: float64(len(docs)) / elapsed.Seconds(),
		Reopen:  reopen,
	}, nil
}

// Format renders the durability table.
func (r *DurabilityResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.label(),
			fmt.Sprintf("%d", row.Docs),
			ms(row.Publish),
			fmt.Sprintf("%.1f", row.DocsSec),
			ms(row.Reopen),
		})
	}
	out := "Durability — publish throughput per WAL fsync policy (disk B+-tree peers)\n" +
		table([]string{"fsync", "docs", "publish(ms)", "docs/s", "reopen(ms)"}, rows)
	if gain := r.BatchGain(); gain > 0 {
		out += fmt.Sprintf("group commit at fsync=always: %.1fx publish throughput\n", gain)
	}
	return out
}
