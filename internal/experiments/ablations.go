package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/workload"
)

// StoreAblationOptions scale the Section 3 store comparison: the cost
// of building and reading an index with the B+-tree versus the
// PAST-like naive store, the change the paper credits with 2–3 orders
// of magnitude of publishing speed-up.
type StoreAblationOptions struct {
	// Batches and BatchSize define the append workload: Batches
	// insertions of BatchSize postings into one term.
	Batches   int
	BatchSize int
	Seed      int64
}

func (o StoreAblationOptions) defaults() StoreAblationOptions {
	if o.Batches <= 0 {
		o.Batches = 100
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 100
	}
	return o
}

// StoreAblationRow is one store's measurement.
type StoreAblationRow struct {
	Store      string
	AppendTime time.Duration
	ScanTime   time.Duration
	Postings   int
}

// StoreAblationResult is the store comparison.
type StoreAblationResult struct {
	Rows []StoreAblationRow
}

// RunStoreAblation measures append and scan cost on the three store
// engines under the same workload.
func RunStoreAblation(o StoreAblationOptions) (*StoreAblationResult, error) {
	o = o.defaults()
	res := &StoreAblationResult{}
	rng := rand.New(rand.NewSource(o.Seed))
	batches := make([]postings.List, o.Batches)
	for i := range batches {
		l := make(postings.List, o.BatchSize)
		for j := range l {
			s := uint32(rng.Intn(1_000_000)*2 + 1)
			l[j] = sid.Posting{
				Peer: sid.PeerID(rng.Intn(50)), Doc: sid.DocID(rng.Intn(10_000)),
				SID: sid.SID{Start: s, End: s + 1, Level: uint16(rng.Intn(8))},
			}
		}
		l.Sort()
		batches[i] = l.Dedup()
	}

	dir, err := os.MkdirTemp("", "kadop-store-abl-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	stores := []struct {
		name string
		s    store.Store
	}{}
	bt, err := store.OpenBTree(dir + "/abl.bt")
	if err != nil {
		return nil, err
	}
	nv, err := store.NewNaive(dir + "/naive")
	if err != nil {
		return nil, err
	}
	stores = append(stores,
		struct {
			name string
			s    store.Store
		}{"btree", bt},
		struct {
			name string
			s    store.Store
		}{"naive (PAST-like)", nv},
		struct {
			name string
			s    store.Store
		}{"mem", store.NewMem()},
	)

	for _, st := range stores {
		start := time.Now()
		for _, b := range batches {
			if err := st.s.Append("l:author", b); err != nil {
				return nil, fmt.Errorf("experiments: store ablation %s: %w", st.name, err)
			}
		}
		appendTime := time.Since(start)
		start = time.Now()
		n := 0
		if err := st.s.Scan("l:author", sid.MinPosting, func(sid.Posting) bool { n++; return true }); err != nil {
			return nil, err
		}
		scanTime := time.Since(start)
		res.Rows = append(res.Rows, StoreAblationRow{
			Store: st.name, AppendTime: appendTime, ScanTime: scanTime, Postings: n,
		})
		st.s.Close()
	}
	return res, nil
}

// Format renders the store comparison.
func (r *StoreAblationResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Store, ms(row.AppendTime), ms(row.ScanTime), fmt.Sprintf("%d", row.Postings),
		})
	}
	return "Section 3 ablation — local store engines under the same append workload\n" +
		table([]string{"store", "append time(ms)", "scan time(ms)", "postings"}, rows)
}

// SplitAblationOptions scale the Section 4.1 comparison of the ordered
// DPP split against the randomised split.
type SplitAblationOptions struct {
	Records   int
	Peers     int
	BlockSize int
	Parallel  int
	Link      *dht.LinkModel
	Seed      int64
}

func (o SplitAblationOptions) defaults() SplitAblationOptions {
	if o.Records <= 0 {
		o.Records = 1500
	}
	if o.Peers <= 0 {
		o.Peers = 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 512
	}
	if o.Parallel <= 0 {
		o.Parallel = 4
	}
	if o.Link == nil {
		o.Link = &dht.LinkModel{BytesPerSec: 1 << 20}
	}
	return o
}

// SplitAblationRow is one variant's measurement.
type SplitAblationRow struct {
	Variant      string
	IndexTime    time.Duration
	PostingBytes int64
	Matches      int
}

// SplitAblationResult compares the DPP split policies.
type SplitAblationResult struct {
	Rows []SplitAblationRow
}

// RunSplitAblation compares ordered range partitioning against the
// randomised split on the Figure 3 query: both parallelise transfers,
// but only the ordered split supports condition filtering and
// order-preserving concatenation (the paper found the random variant
// "a few times smaller" in benefit).
func RunSplitAblation(o SplitAblationOptions) (*SplitAblationResult, error) {
	o = o.defaults()
	res := &SplitAblationResult{}
	q := pattern.MustParse(Fig3Query)
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	for _, variant := range []struct {
		name   string
		random bool
	}{{"ordered split", false}, {"random split", true}} {
		cfg := kadop.Config{
			UseDPP:   true,
			DPP:      dpp.Options{BlockSize: o.BlockSize, RandomSplit: variant.random},
			Parallel: o.Parallel,
		}
		cl, err := NewCluster(ClusterOptions{Peers: o.Peers, Cfg: cfg})
		if err != nil {
			return nil, err
		}
		if _, err := cl.PublishAll(docs, 4); err != nil {
			cl.Close()
			return nil, err
		}
		cl.Net.Collector.Reset()
		cl.Net.SetModel(*o.Link)
		r, err := cl.NonOwnerPeer(q).Query(q, kadop.QueryOptions{IndexOnly: true})
		cl.Net.SetModel(dht.LinkModel{})
		if err != nil {
			cl.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, SplitAblationRow{
			Variant:      variant.name,
			IndexTime:    r.IndexTime,
			PostingBytes: postingBytes(cl),
			Matches:      r.IndexMatches,
		})
		cl.Close()
	}
	return res, nil
}

func postingBytes(cl *Cluster) int64 {
	return cl.Net.Collector.Bytes("postings")
}

// Format renders the split comparison.
func (r *SplitAblationResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant, ms(row.IndexTime), mb(row.PostingBytes), fmt.Sprintf("%d", row.Matches),
		})
	}
	return "Section 4.1 ablation — ordered vs randomised DPP split (query " + Fig3Query + ")\n" +
		table([]string{"variant", "index time(ms)", "postings(MB)", "matches"}, rows)
}
