package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// StatsOptions scale the statistics-registry experiment: a DPP
// deployment answers a repeated workload, the querier's registry
// trains its selectivity EWMAs on the warmup passes, and the
// measurement passes compare its cardinality estimates to the twig
// join's actual match counts.
type StatsOptions struct {
	Records int
	Peers   int
	// Warmup is the number of passes over the query set that train the
	// selectivity EWMAs before measurement begins.
	Warmup int
	// Measure is the number of measured passes.
	Measure int
	// ErrBound is the p95 relative-error ceiling the run must meet on
	// the measured passes.
	ErrBound  float64
	BlockSize int
	Seed      int64
}

func (o StatsOptions) defaults() StatsOptions {
	if o.Records <= 0 {
		o.Records = 300
	}
	if o.Peers <= 0 {
		o.Peers = 8
	}
	if o.Warmup <= 0 {
		o.Warmup = 6
	}
	if o.Measure <= 0 {
		o.Measure = 3
	}
	if o.ErrBound <= 0 {
		o.ErrBound = 0.25
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 256
	}
	return o
}

// statsQueries is the measured workload: the paper's stress query plus
// two broader shapes. The shapes are edge-disjoint on purpose — two
// queries training one edge to different reductions would oscillate
// the EWMA and measure the workload's ambiguity, not the registry.
var statsQueries = []string{
	Fig3Query,
	`//inproceedings//author`,
	`//article//title`,
}

// StatsRow is one query shape's measurement.
type StatsRow struct {
	Query string
	// Estimated and Actual are the registry's match prediction and the
	// twig join's match count on the last measured pass.
	Estimated float64
	Actual    int64
	// RelErr is the worst relative error across measured passes.
	RelErr float64
}

// StatsResult is the experiment outcome. Run fails unless every
// measured query carries an estimate, the p95 relative error stays
// under the bound, and every phase of the cost plane reports nonzero
// actuals — an operator that stops counting is an observability bug
// no dashboard would catch.
type StatsResult struct {
	Rows []StatsRow
	// ErrP50 and ErrP95 summarise relative errors over measured passes.
	ErrP50, ErrP95 float64
	ErrBound       float64
	// RegistryP95 is the querier registry's own bucketed p95, the value
	// /debug/stats and kadop-top report for the same run.
	RegistryP95 float64
	// FetchWork, JoinWork and AnswerWork are the summed actuals of the
	// measured passes: blocks fetched, postings scanned, documents
	// evaluated.
	FetchWork, JoinWork, AnswerWork int64
}

// RunStats prices the estimation loop end to end: publish a corpus
// over a DPP deployment, train the querier's statistics registry on a
// warmup workload, then verify the registry's cardinality estimates
// track the actuals the cost counters measure.
func RunStats(o StatsOptions) (*StatsResult, error) {
	o = o.defaults()
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	cl, err := NewCluster(ClusterOptions{
		Peers: o.Peers,
		Cfg: kadop.Config{
			UseDPP: true,
			DPP:    dpp.Options{BlockSize: o.BlockSize},
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if _, err := cl.PublishAll(docs, 4); err != nil {
		return nil, err
	}

	queries := make([]*pattern.Query, len(statsQueries))
	for i, s := range statsQueries {
		queries[i] = pattern.MustParse(s)
	}
	// One querier for the whole run: training and measurement must hit
	// the same registry, and a non-owner so fetches cross the network.
	querier := cl.NonOwnerPeer(queries[0])

	run := func(q *pattern.Query) (*kadop.Result, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 60e9)
		defer cancel()
		return querier.QueryContext(ctx, q, kadop.QueryOptions{})
	}
	for pass := 0; pass < o.Warmup; pass++ {
		for _, q := range queries {
			if _, err := run(q); err != nil {
				return nil, fmt.Errorf("experiments: stats: warmup: %w", err)
			}
		}
	}

	res := &StatsResult{ErrBound: o.ErrBound}
	rows := make([]StatsRow, len(queries))
	var errs []float64
	for pass := 0; pass < o.Measure; pass++ {
		for i, q := range queries {
			r, err := run(q)
			if err != nil {
				return nil, fmt.Errorf("experiments: stats: measure: %w", err)
			}
			if r.Estimate == nil {
				return nil, fmt.Errorf("experiments: stats: query %q produced no estimate", statsQueries[i])
			}
			actual := int64(r.IndexMatches)
			relErr := math.Abs(r.Estimate.Matches-float64(actual)) / math.Max(float64(actual), 1)
			errs = append(errs, relErr)
			rows[i].Query = statsQueries[i]
			rows[i].Estimated = r.Estimate.Matches
			rows[i].Actual = actual
			if relErr > rows[i].RelErr {
				rows[i].RelErr = relErr
			}
			res.FetchWork += r.Cost.RootFetches + r.Cost.BlocksFetched
			res.JoinWork += r.Cost.PostingsScanned
			res.AnswerWork += r.Cost.DocsEvaluated
		}
	}
	res.Rows = rows
	sort.Float64s(errs)
	quantile := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(errs)))) - 1
		if idx < 0 {
			idx = 0
		}
		return errs[idx]
	}
	res.ErrP50, res.ErrP95 = quantile(0.50), quantile(0.95)
	res.RegistryP95 = querier.Stats().ErrorQuantile(0.95)

	if res.ErrP95 > o.ErrBound {
		return nil, fmt.Errorf("experiments: stats: p95 relative error %.3f exceeds bound %.3f after %d warmup passes",
			res.ErrP95, o.ErrBound, o.Warmup)
	}
	for _, ph := range []struct {
		name string
		work int64
	}{{"fetch", res.FetchWork}, {"join", res.JoinWork}, {"answers", res.AnswerWork}} {
		if ph.work == 0 {
			return nil, fmt.Errorf("experiments: stats: phase %s reported zero actuals — an operator stopped counting", ph.name)
		}
	}
	return res, nil
}

// Format renders the statistics experiment report.
func (r *StatsResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Query,
			fmt.Sprintf("%.1f", row.Estimated),
			fmt.Sprintf("%d", row.Actual),
			fmt.Sprintf("%.3f", row.RelErr),
		})
	}
	out := "Statistics registry — cardinality estimates vs twig-join actuals (trained EWMAs)\n" +
		table([]string{"query", "est-matches", "actual", "max-rel-err"}, rows)
	out += fmt.Sprintf("\nrelative error: p50 %.3f, p95 %.3f (bound %.3f); registry bucketed p95 %.3g\n",
		r.ErrP50, r.ErrP95, r.ErrBound, r.RegistryP95)
	out += fmt.Sprintf("actuals: %d blocks+roots fetched, %d postings scanned, %d docs evaluated\n",
		r.FetchWork, r.JoinWork, r.AnswerWork)
	return out
}
