package experiments

import (
	"fmt"

	"kadop/internal/postings"
	"kadop/internal/sbf"
	"kadop/internal/sid"
	"kadop/internal/workload"
	"kadop/internal/xmltree"
)

// SensitivityOptions scale the Section 5.4 filter sensitivity analysis
// for the query a//b: filtering L_b with ABF(a) and L_a with DBF(b)
// across basic false-positive rates.
type SensitivityOptions struct {
	Records  int
	BasicFPs []float64
	Seed     int64
}

func (o SensitivityOptions) defaults() SensitivityOptions {
	if o.Records <= 0 {
		o.Records = 3000
	}
	if len(o.BasicFPs) == 0 {
		o.BasicFPs = []float64{0.01, 0.05, 0.10, 0.20, 0.30}
	}
	return o
}

// SensitivityRow is one measurement: the empirical false-positive rate
// of each filter variant at one basic rate.
type SensitivityRow struct {
	BasicFP       float64
	ABPsi         float64 // AB Filter with the paper's ψ traces
	ABSingleTrace float64 // AB Filter with one trace per level
	ABStartOnly   float64 // AB Filter with the simpler start-only probe
	DB            float64 // DB Filter
}

// SensitivityResult is the sensitivity sweep.
type SensitivityResult struct {
	Rows []SensitivityRow
}

// RunSensitivity reproduces the Section 5.4 sensitivity analysis on a
// DBLP-shaped corpus. Both directions need a population of true
// negatives to measure the empirical rate against:
//
//   - AB side: a = inproceedings, b = title. Titles under articles have
//     no inproceedings ancestor — the negatives ABF(a) must reject.
//   - DB side: a = the record elements (article and inproceedings),
//     b = journal. Only articles carry a journal child, so the
//     inproceedings records are the negatives DBF(b) must reject.
func RunSensitivity(o SensitivityOptions) (*SensitivityResult, error) {
	o = o.defaults()
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	var la, lb postings.List         // AB side: a = inproceedings, b = title
	var recs, journals postings.List // DB side: a = records, b = journal
	for i, d := range docs {
		for _, tp := range xmltree.Extract(d.Doc, 1, sid.DocID(i), xmltree.ExtractOptions{SkipWords: true}) {
			switch tp.Term.Key() {
			case "l:inproceedings":
				la = append(la, tp.Posting)
				recs = append(recs, tp.Posting)
			case "l:article":
				recs = append(recs, tp.Posting)
			case "l:title":
				lb = append(lb, tp.Posting)
			case "l:journal":
				journals = append(journals, tp.Posting)
			}
		}
	}
	la.Sort()
	lb.Sort()
	recs.Sort()
	journals.Sort()

	hasAncestor := func(e sid.Posting) bool {
		for _, a := range la {
			if a.Contains(e) {
				return true
			}
		}
		return false
	}
	hasJournal := func(e sid.Posting) bool {
		for _, b := range journals {
			if e.Contains(b) {
				return true
			}
		}
		return false
	}

	res := &SensitivityResult{}
	for _, fp := range o.BasicFPs {
		abPsi := sbf.BuildAB(la, fp, sbf.DefaultPsiC)
		abOne := sbf.BuildAB(la, fp, 0)
		db := sbf.BuildDB(journals, fp, 0, 0)
		row := SensitivityRow{BasicFP: fp}
		row.ABPsi = empiricalRate(lb, hasAncestor, abPsi.MayHaveAncestor)
		row.ABSingleTrace = empiricalRate(lb, hasAncestor, abOne.MayHaveAncestor)
		row.ABStartOnly = empiricalRate(lb, hasAncestor, abPsi.MayHaveAncestorStartOnly)
		row.DB = empiricalRate(recs, hasJournal, db.MayHaveDescendant)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// empiricalRate measures the fraction of true negatives the probe
// wrongly accepts.
func empiricalRate(list postings.List, truth func(sid.Posting) bool, probe func(sid.Posting) bool) float64 {
	fp, neg := 0, 0
	for _, e := range list {
		if truth(e) {
			continue
		}
		neg++
		if probe(e) {
			fp++
		}
	}
	if neg == 0 {
		return 0
	}
	return float64(fp) / float64(neg)
}

// Format renders the sensitivity table.
func (r *SensitivityResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", row.BasicFP),
			fmt.Sprintf("%.4f", row.ABPsi),
			fmt.Sprintf("%.4f", row.ABSingleTrace),
			fmt.Sprintf("%.4f", row.ABStartOnly),
			fmt.Sprintf("%.4f", row.DB),
		})
	}
	return "Section 5.4 — empirical false-positive rates vs basic Bloom rate (query a//b)\n" +
		table([]string{"basic fp", "AB (psi)", "AB (single trace)", "AB (start-only)", "DB"}, rows)
}
