package experiments

import (
	"fmt"
	"time"

	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// Fig3Query is the paper's stress-test query over the long author
// list (Figure 3 uses //article//author//Ullman).
const Fig3Query = `//article//author[. contains "Ullman"]`

// Fig3Options scale the Figure 3 experiment (index-query response time
// against indexed data volume, with and without the DPP).
type Fig3Options struct {
	Records  []int
	Peers    int
	Parallel int // DPP fetch parallelism K
	// Link models the network; the default throttles bandwidth so list
	// transfer dominates, as on the paper's testbed.
	Link *dht.LinkModel
	// BlockSize is the DPP block bound (postings).
	BlockSize int
	Seed      int64
	// Pipelined disables the pipelined get when explicitly false.
	Pipelined *bool
}

func (o Fig3Options) defaults() Fig3Options {
	if len(o.Records) == 0 {
		o.Records = []int{1000, 2000, 3000, 4000}
	}
	if o.Peers <= 0 {
		o.Peers = 24
	}
	if o.Parallel <= 0 {
		o.Parallel = 4
	}
	if o.Link == nil {
		o.Link = &dht.LinkModel{BytesPerSec: 512 << 10} // 512 KB/s per link: transfer-bound, like the paper's long lists
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 512
	}
	return o
}

// Fig3Row is one measurement.
type Fig3Row struct {
	Records      int
	SizeBytes    int
	DPP          bool
	ParallelJoin bool
	IndexTime    time.Duration
	FirstAnswer  time.Duration
	Matches      int
}

// Fig3Result is the full Figure 3 sweep.
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 reproduces Figure 3: index-query processing time over growing
// indexed volumes, with and without the DPP.
func RunFig3(o Fig3Options) (*Fig3Result, error) {
	o = o.defaults()
	res := &Fig3Result{}
	q := pattern.MustParse(Fig3Query)
	type variant struct{ dpp, pjoin bool }
	for _, v := range []variant{{false, false}, {true, false}, {true, true}} {
		useDPP := v.dpp
		for _, records := range o.Records {
			docs := workload.DBLP{Seed: o.Seed, Records: records}.Documents()
			cfg := kadop.Config{Parallel: o.Parallel, Pipelined: o.Pipelined}
			if useDPP {
				cfg.UseDPP = true
				cfg.DPP = dpp.Options{BlockSize: o.BlockSize}
			}
			cl, err := NewCluster(ClusterOptions{Peers: o.Peers, Cfg: cfg})
			if err != nil {
				return nil, err
			}
			if _, err := cl.PublishAll(docs, 4); err != nil {
				cl.Close()
				return nil, err
			}
			// Publish fast, then enable the throttled link model for the
			// query measurement (the paper measures query time on an
			// already-loaded index). Take the best of three runs to damp
			// scheduler noise.
			cl.Net.SetModel(*o.Link)
			peer := cl.NonOwnerPeer(q)
			qopts := kadop.QueryOptions{IndexOnly: true}
			if v.pjoin {
				qopts.ParallelJoin = o.Parallel
			}
			var r *kadop.Result
			for run := 0; run < 3; run++ {
				rr, qerr := peer.Query(q, qopts)
				if qerr != nil {
					cl.Net.SetModel(dht.LinkModel{})
					cl.Close()
					return nil, qerr
				}
				if r == nil || rr.IndexTime < r.IndexTime {
					r = rr
				}
			}
			cl.Net.SetModel(dht.LinkModel{})
			cl.Close()
			res.Rows = append(res.Rows, Fig3Row{
				Records: records, SizeBytes: workload.SizeBytes(docs), DPP: useDPP,
				ParallelJoin: v.pjoin,
				IndexTime:    r.IndexTime, FirstAnswer: r.FirstAnswer, Matches: r.IndexMatches,
			})
		}
	}
	return res, nil
}

// Format renders the Figure 3 series.
func (r *Fig3Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		setting := "without DPP"
		if row.DPP {
			setting = "with DPP"
		}
		if row.ParallelJoin {
			setting = "with DPP + parallel join"
		}
		rows = append(rows, []string{
			setting,
			fmt.Sprintf("%d", row.Records),
			mb(int64(row.SizeBytes)),
			ms(row.IndexTime),
			ms(row.FirstAnswer),
			fmt.Sprintf("%d", row.Matches),
		})
	}
	return "Figure 3 — index query response time vs indexed data (query " + Fig3Query + ")\n" +
		table([]string{"setting", "records", "size(MB)", "index time(ms)", "first answer(ms)", "matches"}, rows)
}
