package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/store"
	"kadop/internal/workload"
)

// ThroughputOptions scale the concurrent-workload experiment pinning
// the batched publish pipeline: group-committed WAL writes must buy
// publish throughput at fsync=always, and snapshot reads must keep
// query latency flat while a bulk publish is in flight.
type ThroughputOptions struct {
	Records    int // corpus size of each publish phase
	Peers      int
	Publishers int // concurrent publisher goroutines
	Queries    int // latency samples per query phase
	Seed       int64
	// MinGain is the gate on the batched/unbatched publish-throughput
	// ratio at fsync=always (default 2.0 — the headline runs land far
	// higher, the gate only has to catch the coalescer breaking).
	MinGain float64
	// MaxP99x bounds query p99 during a concurrent bulk publish at
	// MaxP99x * max(idle p99, control p99) + P99Slack (defaults 1.5x +
	// 25ms). The control phase runs the same bulk-publish stream against a
	// second, unrelated cluster in the same process while querying this
	// one: it prices the pure CPU/scheduler cost of a publish that
	// shares no stores and no locks with the queries, which on small
	// machines dwarfs everything else. What the gate then isolates is
	// exactly the snapshot-read promise — publishing into the queried
	// stores must cost no more than publishing next to them. On a
	// machine with cores to spare the control collapses to the idle
	// baseline and the bound reduces to MaxP99x * idle p99.
	MaxP99x  float64
	P99Slack time.Duration
	// NoGate reports the measurements without failing the run (the
	// race-detector build, where every bound is distorted).
	NoGate bool
}

func (o ThroughputOptions) defaults() ThroughputOptions {
	if o.Records <= 0 {
		o.Records = 240
	}
	if o.Peers <= 0 {
		o.Peers = 6
	}
	if o.Publishers <= 0 {
		o.Publishers = 4
	}
	if o.Queries <= 0 {
		o.Queries = 30
	}
	if o.MinGain <= 0 {
		o.MinGain = 2.0
	}
	if o.MaxP99x <= 0 {
		o.MaxP99x = 1.5
	}
	if o.P99Slack <= 0 {
		o.P99Slack = 25 * time.Millisecond
	}
	return o
}

// ThroughputResult holds both halves of the experiment.
type ThroughputResult struct {
	// Publish throughput at fsync=always, coalescer off and on.
	UnbatchedSec float64 // docs/s
	BatchedSec   float64
	Gain         float64
	Docs         int

	// Query p99 on the batched cluster: idle, during an equal bulk
	// publish into an unrelated cluster (control), and during a bulk
	// publish into the queried cluster itself.
	IdleP99     time.Duration
	CtlP99      time.Duration
	BusyP99     time.Duration
	IdleP50     time.Duration
	CtlP50      time.Duration
	BusyP50     time.Duration
	IdleSamples int
	CtlSamples  int
	BusySamples int

	MinGain  float64
	MaxP99x  float64
	P99Slack time.Duration
	Gated    bool
}

// RunThroughput measures the two promises of the batched engine. Phase
// one publishes the same corpus twice at fsync=always — once per doc
// with one WAL commit per append (the seed behaviour), once through
// the bulk pipeline (postings merged per term across each batch, group
// commit at the stores) — and gates on the throughput ratio. Phase two
// measures index-query p99 on an idle batched deployment, then twice
// under load: while a stream of bulk publishes runs against an unrelated
// cluster (the CPU-contention control), and while it runs against the
// queried cluster itself. Snapshot reads mean queries never wait on
// the writer, so the last must cost no more than the control.
func RunThroughput(o ThroughputOptions) (*ThroughputResult, error) {
	o = o.defaults()
	res := &ThroughputResult{
		MinGain:  o.MinGain,
		MaxP99x:  o.MaxP99x,
		P99Slack: o.P99Slack,
		Gated:    !o.NoGate,
	}

	// Phase one: publish throughput, coalescer off vs on.
	for _, batched := range []bool{false, true} {
		docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
		cl, err := NewCluster(ClusterOptions{
			Peers:   o.Peers,
			Store:   BTreeStore,
			Fsync:   store.FsyncAlways,
			Batched: batched,
		})
		if err != nil {
			return nil, err
		}
		var elapsed time.Duration
		if batched {
			elapsed, err = cl.PublishAllBatched(docs, o.Publishers, 0)
		} else {
			elapsed, err = cl.PublishAll(docs, o.Publishers)
		}
		cl.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput publish (batched=%v): %w", batched, err)
		}
		docsSec := float64(len(docs)) / elapsed.Seconds()
		if batched {
			res.BatchedSec = docsSec
		} else {
			res.UnbatchedSec = docsSec
		}
		res.Docs = len(docs)
	}
	res.Gain = res.BatchedSec / res.UnbatchedSec

	// Phase two: query p99 idle vs during a concurrent bulk publish,
	// on a batched durable cluster.
	cl, err := NewCluster(ClusterOptions{
		Peers:   o.Peers,
		Store:   BTreeStore,
		Fsync:   store.FsyncAlways,
		Batched: true,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	base := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	if _, err := cl.PublishAll(base, o.Publishers); err != nil {
		return nil, fmt.Errorf("experiments: throughput base publish: %w", err)
	}

	q := pattern.MustParse(Fig3Query)
	querier := cl.NonOwnerPeer(q)
	runQuery := func() (time.Duration, error) {
		start := time.Now()
		_, err := querier.Query(q, kadop.QueryOptions{IndexOnly: true})
		return time.Since(start), err
	}

	// Warm paths (store caches, directory entries) before sampling.
	if _, err := runQuery(); err != nil {
		return nil, fmt.Errorf("experiments: throughput warmup query: %w", err)
	}
	idle := make([]time.Duration, 0, o.Queries)
	for i := 0; i < o.Queries; i++ {
		d, err := runQuery()
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput idle query: %w", err)
		}
		idle = append(idle, d)
	}
	res.IdleP50, res.IdleP99 = quantileDur(idle, 0.50), quantileDur(idle, 0.99)
	res.IdleSamples = len(idle)

	// sampleDuring queries while publish chunks run in the background,
	// feeding publish fresh corpora until at least o.Queries samples
	// were taken with a publish genuinely in flight. A single chunk can
	// finish inside a handful of queries, and samples taken after it
	// would make the p99 the max of the few that overlapped — all noise,
	// no quantile. Chunk seeds advance so every publish carries new
	// documents, restarting at o.Seed+1 each phase: the control and busy
	// phases then push identical document streams, just at different
	// clusters.
	sampleDuring := func(publish func(docs []workload.GeneratedDoc) error) ([]time.Duration, error) {
		samples := make([]time.Duration, 0, 4*o.Queries)
		for seed := o.Seed + 1; len(samples) < o.Queries; seed++ {
			docs := workload.DBLP{Seed: seed, Records: o.Records}.Documents()
			pubDone := make(chan error, 1)
			go func() { pubDone <- publish(docs) }()
			publishing := true
			for publishing {
				d, err := runQuery()
				if err != nil {
					<-pubDone
					return nil, fmt.Errorf("experiments: throughput query under load: %w", err)
				}
				samples = append(samples, d)
				select {
				case err := <-pubDone:
					if err != nil {
						return nil, fmt.Errorf("experiments: throughput bulk publish: %w", err)
					}
					publishing = false
				default:
				}
			}
		}
		return samples, nil
	}

	// Control: the same bulk publish against a second cluster that
	// shares nothing with the queried one but the process. Queries keep
	// hitting cl; any p99 inflation is pure CPU/scheduler contention.
	ctlCl, err := NewCluster(ClusterOptions{
		Peers:   o.Peers,
		Store:   BTreeStore,
		Fsync:   store.FsyncAlways,
		Batched: true,
	})
	if err != nil {
		return nil, err
	}
	if _, err := ctlCl.PublishAllBatched(base, o.Publishers, 0); err != nil {
		ctlCl.Close()
		return nil, fmt.Errorf("experiments: throughput control base publish: %w", err)
	}
	ctl, err := sampleDuring(func(docs []workload.GeneratedDoc) error {
		_, err := ctlCl.PublishAllBatched(docs, o.Publishers, 0)
		return err
	})
	ctlCl.Close()
	if err != nil {
		return nil, err
	}
	res.CtlP50, res.CtlP99 = quantileDur(ctl, 0.50), quantileDur(ctl, 0.99)
	res.CtlSamples = len(ctl)

	// Busy: the same bulk publish, now into the queried cluster itself.
	busy, err := sampleDuring(func(docs []workload.GeneratedDoc) error {
		_, err := cl.PublishAllBatched(docs, o.Publishers, 0)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.BusyP50, res.BusyP99 = quantileDur(busy, 0.50), quantileDur(busy, 0.99)
	res.BusySamples = len(busy)

	return res, res.check()
}

// check applies the two gates; the result stays populated so the smoke
// run prints the numbers it failed on.
func (r *ThroughputResult) check() error {
	if !r.Gated {
		return nil
	}
	if r.Gain < r.MinGain {
		return fmt.Errorf("experiments: throughput gate: batched/unbatched publish ratio %.2fx under bound %.2fx (%.1f vs %.1f docs/s)",
			r.Gain, r.MinGain, r.BatchedSec, r.UnbatchedSec)
	}
	base := r.IdleP99
	if r.CtlP99 > base {
		base = r.CtlP99
	}
	bound := time.Duration(float64(base)*r.MaxP99x) + r.P99Slack
	if r.BusyP99 > bound {
		return fmt.Errorf("experiments: throughput gate: query p99 %v during bulk publish exceeds %v (%.1fx max(idle p99 %v, control p99 %v) + %v slack)",
			r.BusyP99, bound, r.MaxP99x, r.IdleP99, r.CtlP99, r.P99Slack)
	}
	return nil
}

// quantileDur is the nearest-rank q-quantile of the samples.
func quantileDur(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Format renders the concurrent-workload report.
func (r *ThroughputResult) Format() string {
	var b strings.Builder
	b.WriteString("Throughput — batched WAL commit + snapshot reads (disk B+-tree peers, fsync=always)\n")
	b.WriteString(table(
		[]string{"variant", "docs", "docs/s"},
		[][]string{
			{"per-op commit", fmt.Sprintf("%d", r.Docs), fmt.Sprintf("%.1f", r.UnbatchedSec)},
			{"group commit", fmt.Sprintf("%d", r.Docs), fmt.Sprintf("%.1f", r.BatchedSec)},
		}))
	fmt.Fprintf(&b, "publish gain: %.1fx (gate ≥ %.1fx)\n", r.Gain, r.MinGain)
	b.WriteString(table(
		[]string{"query phase", "p50(ms)", "p99(ms)", "samples"},
		[][]string{
			{"idle cluster", ms(r.IdleP50), ms(r.IdleP99), fmt.Sprintf("%d", r.IdleSamples)},
			{"bulk publish elsewhere", ms(r.CtlP50), ms(r.CtlP99), fmt.Sprintf("%d", r.CtlSamples)},
			{"during bulk publish", ms(r.BusyP50), ms(r.BusyP99), fmt.Sprintf("%d", r.BusySamples)},
		}))
	fmt.Fprintf(&b, "query p99 during publish: %.2fx idle, %.2fx control (gate ≤ %.1fx max(idle, control) + %v slack)\n",
		float64(r.BusyP99)/float64(max64(int64(r.IdleP99), 1)),
		float64(r.BusyP99)/float64(max64(int64(r.CtlP99), 1)), r.MaxP99x, r.P99Slack)
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
