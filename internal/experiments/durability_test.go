package experiments

import (
	"strings"
	"testing"

	"kadop/internal/store"
)

func TestDurabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("publishes a corpus three times against disk stores")
	}
	res, err := RunDurability(DurabilityOptions{Records: 100, Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want one per policy plus the batched-always row", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Docs == 0 || row.Publish <= 0 || row.DocsSec <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
	}
	// Same workload at every policy.
	if res.Rows[0].Docs != res.Rows[2].Docs {
		t.Fatalf("doc counts differ across policies: %d vs %d", res.Rows[0].Docs, res.Rows[2].Docs)
	}
	if res.Rows[2].Policy != store.FsyncAlways {
		t.Fatalf("third row policy = %v, want always", res.Rows[2].Policy)
	}
	last := res.Rows[3]
	if last.Policy != store.FsyncAlways || !last.Batched {
		t.Fatalf("last row = %+v, want batched always", last)
	}
	if res.BatchGain() <= 0 {
		t.Fatalf("batch gain = %v, want > 0", res.BatchGain())
	}
	out := res.Format()
	for _, want := range []string{"fsync", "always", "always+batch", "interval", "off", "docs/s", "group commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
