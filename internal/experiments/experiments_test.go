package experiments

import (
	"sort"
	"strings"
	"testing"

	"kadop/internal/dht"
	"kadop/internal/fundex"
	"kadop/internal/kadop"
)

// The experiment runners double as integration tests: each smoke test
// runs its experiment at small scale and asserts the qualitative shape
// the paper reports (who wins, monotonicity, completeness), not
// absolute numbers.

func TestFig2Shape(t *testing.T) {
	res, err := RunFig2(Fig2Options{
		Records: []int{200, 400}, SmallPeers: 8, LargePeers: 16,
		Publishers: []int{4}, WithNaiveStore: false, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byRecords := map[string]map[int]float64{}
	for _, r := range res.Rows {
		if byRecords[r.Setting] == nil {
			byRecords[r.Setting] = map[int]float64{}
		}
		byRecords[r.Setting][r.Records] = r.Elapsed.Seconds()
	}
	// Publishing time grows with corpus size in every setting.
	for setting, m := range byRecords {
		if m[400] <= m[200]*0.5 {
			t.Errorf("%s: time did not grow with size: %v", setting, m)
		}
	}
	if !strings.Contains(res.Format(), "Figure 2") {
		t.Error("format header missing")
	}
}

func TestFig2NaiveStoreSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("naive store is slow by design")
	}
	res, err := RunFig2(Fig2Options{
		Records: []int{150}, SmallPeers: 6, LargePeers: 8,
		Publishers: []int{2}, WithNaiveStore: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var naive, plain float64
	for _, r := range res.Rows {
		if strings.Contains(r.Setting, "naive") {
			naive = r.Elapsed.Seconds()
		} else if strings.HasPrefix(r.Setting, "1 publisher, 6 peers") {
			plain = r.Elapsed.Seconds()
		}
	}
	if naive == 0 || plain == 0 {
		t.Fatalf("missing settings in %v", res.Rows)
	}
	if naive < 3*plain {
		t.Errorf("naive store should be much slower: naive=%.3fs plain=%.3fs", naive, plain)
	}
}

func TestFig3DPPFaster(t *testing.T) {
	// A strongly transfer-bound link keeps the DPP-vs-baseline margin
	// far above scheduler noise even on loaded CI machines.
	res, err := RunFig3(Fig3Options{
		Records: []int{3000}, Peers: 12, Seed: 3,
		Link: &dht.LinkModel{BytesPerSec: 256 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	var with, without, pjoin float64
	var matchesWith, matchesWithout, matchesPJ int
	for _, r := range res.Rows {
		switch {
		case r.ParallelJoin:
			pjoin = r.IndexTime.Seconds()
			matchesPJ = r.Matches
		case r.DPP:
			with = r.IndexTime.Seconds()
			matchesWith = r.Matches
		default:
			without = r.IndexTime.Seconds()
			matchesWithout = r.Matches
		}
	}
	if matchesPJ != matchesWithout {
		t.Fatalf("parallel join changed the answer: %d vs %d", matchesPJ, matchesWithout)
	}
	if pjoin >= without {
		t.Errorf("parallel join should also beat the baseline: %.3fs vs %.3fs", pjoin, without)
	}
	if matchesWith != matchesWithout {
		t.Fatalf("DPP changed the answer: %d vs %d", matchesWith, matchesWithout)
	}
	if with >= without {
		t.Errorf("DPP should cut response time: with=%.3fs without=%.3fs", with, without)
	}
	if !strings.Contains(res.Format(), "Figure 3") {
		t.Error("format header missing")
	}
}

func TestTrafficLinear(t *testing.T) {
	res, err := RunTraffic(TrafficOptions{Records: []int{300, 600}, Peers: 10, Queries: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, big := res.Rows[0], res.Rows[1]
	if big.QueryTraffic <= small.QueryTraffic {
		t.Errorf("traffic should grow with indexed size: %d vs %d", small.QueryTraffic, big.QueryTraffic)
	}
	// Roughly linear: doubling the data should not quadruple traffic.
	if float64(big.QueryTraffic) > 3.5*float64(small.QueryTraffic) {
		t.Errorf("traffic grows super-linearly: %d -> %d", small.QueryTraffic, big.QueryTraffic)
	}
	if !strings.Contains(res.Format(), "Section 4.3") {
		t.Error("format header missing")
	}
}

func TestTable1InPaperBand(t *testing.T) {
	res, err := RunTable1(Table1Options{Elements: 30_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The paper's measurements range over [1.23, 1.55]; the shapes
		// must land in the same narrow-element regime, far below 2l.
		if r.AvgCover < 1.0 || r.AvgCover > 2.2 {
			t.Errorf("%s: |D(e)| = %.2f out of band", r.Dataset, r.AvgCover)
		}
		if float64(r.TwoL) < 4*r.AvgCover {
			t.Errorf("%s: 2l=%d should dwarf |D(e)|=%.2f", r.Dataset, r.TwoL, r.AvgCover)
		}
	}
	if !strings.Contains(res.Format(), "Table 1") {
		t.Error("format header missing")
	}
}

func TestSensitivityShape(t *testing.T) {
	res, err := RunSensitivity(SensitivityOptions{Records: 1500, BasicFPs: []float64{0.01, 0.20}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Rows[0], res.Rows[1]
	// AB with psi stays accurate even at a loose basic filter.
	if hi.ABPsi > 0.15 {
		t.Errorf("AB(psi) fp at basic 0.20 = %.3f, paper reports <0.10", hi.ABPsi)
	}
	// DB degrades as the basic rate grows and has a real error rate at
	// a loose basic filter (the paper's contrast with AB).
	if hi.DB < lo.DB {
		t.Errorf("DB fp should grow with basic rate: %.4f -> %.4f", lo.DB, hi.DB)
	}
	if hi.DB < 0.05 {
		t.Errorf("DB fp at basic 0.20 = %.4f; expected visible degradation", hi.DB)
	}
	if hi.ABPsi >= hi.DB {
		t.Errorf("AB(psi) (%.4f) should beat DB (%.4f) at basic 0.20", hi.ABPsi, hi.DB)
	}
	// The Theorem-1 probe is at least as accurate as start-only.
	if hi.ABPsi > hi.ABStartOnly+1e-9 {
		t.Errorf("Theorem-1 probe (%.4f) worse than start-only (%.4f)", hi.ABPsi, hi.ABStartOnly)
	}
	if !strings.Contains(res.Format(), "Section 5.4") {
		t.Error("format header missing")
	}
}

func TestFig7aShape(t *testing.T) {
	res, err := RunFig7(Fig7Options{Variant: "a", Records: 800, Peers: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[kadop.Strategy]Fig7Row{}
	for _, r := range res.Rows {
		byStrategy[r.Strategy] = r
	}
	db := byStrategy[kadop.DBReducer]
	ab := byStrategy[kadop.ABReducer]
	// Figure 7(a): DB Reducer achieves a large reduction; AB Reducer is
	// worse than DB (it ships the large article AB filter plus the
	// unfiltered article list).
	if db.Normalized > 0.6 {
		t.Errorf("DB reducer normalized = %.3f, expected a large reduction", db.Normalized)
	}
	if ab.Normalized < db.Normalized {
		t.Errorf("AB (%.3f) should be costlier than DB (%.3f) on fig7a", ab.Normalized, db.Normalized)
	}
	if db.DBFilterBytes == 0 || ab.ABFilterBytes == 0 {
		t.Error("filter traffic breakdown missing")
	}
	if !strings.Contains(res.Format(), "Figure 7(a)") {
		t.Error("format header missing")
	}
}

func TestFig7cSubQueryWins(t *testing.T) {
	res, err := RunFig7(Fig7Options{Variant: "c", Records: 800, Peers: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[kadop.Strategy]Fig7Row{}
	for _, r := range res.Rows {
		byStrategy[r.Strategy] = r
	}
	sub := byStrategy[kadop.SubQueryReducer]
	db := byStrategy[kadop.DBReducer]
	// Figure 7(c): the title branch spoils the full-query strategies;
	// the sub-query reducer recovers most of the savings.
	if sub.Normalized >= db.Normalized {
		t.Errorf("sub-query (%.3f) should beat full DB reducer (%.3f) on fig7c", sub.Normalized, db.Normalized)
	}
	if sub.Normalized > 0.8 {
		t.Errorf("sub-query reducer normalized = %.3f, paper reports ~0.3", sub.Normalized)
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(Fig9Options{Docs: []int{150}, Peers: 8, Matches: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	answers := map[fundex.Mode]int{}
	for _, r := range res.Rows {
		answers[r.Mode] = r.Answers
	}
	// All three complete modes find the same 5 planted answers.
	for _, m := range []fundex.Mode{fundex.Fundex, fundex.Representative, fundex.Inline} {
		if answers[m] != 5 {
			t.Errorf("%v found %d answers, want 5", m, answers[m])
		}
	}
	// Inlining does not chase reverse pointers.
	for _, r := range res.Rows {
		if r.Mode == fundex.Inline && r.RevLookups != 0 {
			t.Errorf("inline mode performed %d rev lookups", r.RevLookups)
		}
		if r.Mode == fundex.Fundex && r.RevLookups == 0 {
			t.Error("fundex mode performed no rev lookups")
		}
	}
	if !strings.Contains(res.Format(), "Figure 9") {
		t.Error("format header missing")
	}
}

func TestStoreAblationShape(t *testing.T) {
	// Wall-clock at this scale is dominated by per-append fsyncs, which
	// both disk stores pay, so the naive store's whole-blob-rewrite
	// penalty shows up as a modest ratio with real run-to-run variance.
	// Take the median of three runs and assert the ordering with a
	// margin rather than a machine-dependent multiplier.
	ratios := make([]float64, 0, 3)
	for trial := 0; trial < 3; trial++ {
		res, err := RunStoreAblation(StoreAblationOptions{Batches: 40, BatchSize: 50, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		times := map[string]float64{}
		counts := map[string]int{}
		for _, r := range res.Rows {
			times[r.Store] = r.AppendTime.Seconds()
			counts[r.Store] = r.Postings
		}
		if counts["btree"] != counts["naive (PAST-like)"] || counts["btree"] != counts["mem"] {
			t.Fatalf("stores disagree on content: %v", counts)
		}
		ratios = append(ratios, times["naive (PAST-like)"]/times["btree"])
		if trial == 0 && !strings.Contains(res.Format(), "Section 3") {
			t.Error("format header missing")
		}
	}
	sort.Float64s(ratios)
	if median := ratios[1]; median < 1.2 {
		t.Errorf("naive store should append slower than btree: median ratio %.2f (runs %v)", median, ratios)
	}
}

func TestSplitAblationShape(t *testing.T) {
	res, err := RunSplitAblation(SplitAblationOptions{Records: 400, Peers: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var ordered, random SplitAblationRow
	for _, r := range res.Rows {
		if strings.HasPrefix(r.Variant, "ordered") {
			ordered = r
		} else {
			random = r
		}
	}
	if ordered.Matches != random.Matches {
		t.Fatalf("split policy changed the answer: %d vs %d", ordered.Matches, random.Matches)
	}
	if ordered.Matches == 0 {
		t.Fatal("workload should plant answers for the canonical query")
	}
	// The ordered split filters blocks by condition; random cannot, so
	// it ships at least as many posting bytes.
	if random.PostingBytes < ordered.PostingBytes {
		t.Errorf("random split shipped fewer bytes (%d) than ordered (%d)",
			random.PostingBytes, ordered.PostingBytes)
	}
	if !strings.Contains(res.Format(), "Section 4.1") {
		t.Error("format header missing")
	}
}
