package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"kadop/internal/admin"
	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/obs/cluster"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// LoadOptions scale the load-distribution experiment: per-peer bytes
// served under a skewed workload, with and without the DPP. The paper
// motivates the DPP exactly here — popular terms concentrate posting
// storage and serving on their home peers; splitting the lists into
// distributed blocks spreads that load over the network.
type LoadOptions struct {
	Records   int
	Peers     int
	Queries   int // repetitions of each hot-term query
	BlockSize int // DPP block bound (postings)
	TopK      int // cluster-wide hot terms reported
	Seed      int64
}

func (o LoadOptions) defaults() LoadOptions {
	if o.Records <= 0 {
		o.Records = 300
	}
	if o.Peers <= 0 {
		o.Peers = 12
	}
	if o.Queries <= 0 {
		o.Queries = 4
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 128
	}
	if o.TopK <= 0 {
		o.TopK = 8
	}
	return o
}

// loadQueries are the hot-term patterns driving the skew: every one
// touches the giant author/article/title lists.
var loadQueries = []string{
	Fig3Query,
	`//article//author`,
	`//article//title`,
}

// LoadResult holds both variants' cluster reports. The reports are
// built by scraping real /metrics + /debug/load admin endpoints with
// the same code path kadop-top uses, so the experiment doubles as an
// end-to-end check of the observability plane.
type LoadResult struct {
	Off *cluster.Report // conventional: whole lists at their home peers
	On  *cluster.Report // DPP: lists split into distributed blocks
	// Adaptive is the closed-loop variant: hot lists start inline at
	// their home peers and the replication controllers engage mid-run.
	Adaptive *AdaptiveResult
}

// RunLoad measures per-peer serving load under a skewed DBLP workload
// with the DPP off and on, then runs the adaptive-replication phase.
// It returns an error (with the result still populated) when the
// adaptive phase fails its strict improvement assertions, so the load
// smoke gate in CI fails loudly if the closed loop regresses.
func RunLoad(o LoadOptions) (*LoadResult, error) {
	o = o.defaults()
	res := &LoadResult{}
	for _, useDPP := range []bool{false, true} {
		rep, err := runLoadVariant(o, useDPP)
		if err != nil {
			return nil, err
		}
		if useDPP {
			res.On = rep
		} else {
			res.Off = rep
		}
	}
	ad, err := runLoadAdaptive(o)
	if err != nil {
		return nil, err
	}
	res.Adaptive = ad
	return res, ad.check(!raceEnabled)
}

func runLoadVariant(o LoadOptions, useDPP bool) (*cluster.Report, error) {
	cfg := kadop.Config{}
	if useDPP {
		cfg.UseDPP = true
		cfg.DPP = dpp.Options{BlockSize: o.BlockSize}
	}
	cl, err := NewCluster(ClusterOptions{Peers: o.Peers, Cfg: cfg})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	if _, err := cl.PublishAll(docs, 4); err != nil {
		return nil, err
	}
	for _, qs := range loadQueries {
		q := pattern.MustParse(qs)
		peer := cl.NonOwnerPeer(q)
		for i := 0; i < o.Queries; i++ {
			if _, err := peer.Query(q, kadop.QueryOptions{IndexOnly: true}); err != nil {
				return nil, fmt.Errorf("query %s: %w", qs, err)
			}
		}
	}

	// Scrape the peers the way kadop-top does: real HTTP endpoints,
	// strict exposition parsing.
	targets := make([]string, 0, o.Peers)
	for _, nd := range cl.Nodes {
		addr, stop, err := admin.Serve("127.0.0.1:0", admin.Options{
			Collector: nd.Metrics(),
			Node:      nd,
		})
		if err != nil {
			return nil, fmt.Errorf("admin endpoint: %w", err)
		}
		defer stop()
		targets = append(targets, addr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sc cluster.Scraper
	scrapes, err := sc.ScrapeAll(ctx, targets)
	if err != nil {
		return nil, err
	}
	return cluster.BuildReport(scrapes, o.TopK), nil
}

// Format renders both variants' load tables and the imbalance
// comparison.
func (r *LoadResult) Format() string {
	var b strings.Builder
	b.WriteString("=== load distribution (per-peer bytes served, skewed workload) ===\n")
	b.WriteString("--- DPP off: whole posting lists at their home peers ---\n")
	b.WriteString(r.Off.Format())
	b.WriteString("--- DPP on: lists split into distributed blocks ---\n")
	b.WriteString(r.On.Format())
	fmt.Fprintf(&b, "imbalance summary: max/mean %.2f -> %.2f, Gini %.3f -> %.3f (DPP off -> on)\n",
		r.Off.MaxMeanRatio, r.On.MaxMeanRatio, r.Off.Gini, r.On.Gini)
	if r.On.Gini < r.Off.Gini {
		b.WriteString("DPP flattens the serving load, as in the paper's Section 4 motivation.\n")
	} else {
		b.WriteString("WARNING: DPP did not flatten the load at this scale.\n")
	}
	if r.Adaptive != nil {
		b.WriteString(r.Adaptive.Format())
	}
	return b.String()
}
