//go:build !race

package experiments

// raceEnabled reports whether the race detector is on. Wall-clock
// latency assertions are only trusted without it: the detector's
// scheduling overhead adds noise on the order of the margins the
// adaptive gate measures.
const raceEnabled = false
