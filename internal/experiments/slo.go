package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"kadop/internal/dht"
	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/obs/flight"
	"kadop/internal/obs/slo"
	"kadop/internal/pattern"
	"kadop/internal/trace"
	"kadop/internal/workload"
)

// SLOOptions scale the SLO/flight-recorder experiment: a deployment
// queried healthy, then under seeded overload (message loss), with the
// burn-rate engine watching the querier and a flight watchdog armed on
// its alerts.
type SLOOptions struct {
	Records int
	Peers   int
	// Queries per phase (healthy, then overloaded).
	Queries int
	// DropProb is the overload phase's message-loss rate.
	DropProb float64
	// Jitter is the overload phase's per-message added latency cap.
	Jitter time.Duration
	// SlowThreshold is the slow-query capture threshold and the latency
	// SLO's cut-off (rounded up to the owning histogram bucket).
	SlowThreshold time.Duration
	// DumpDir receives the watchdog's flight dumps (temp dir if empty).
	DumpDir string
	Seed    int64
	// Inspect, when set, runs after the run's own assertions pass and
	// before the cluster shuts down — the e2e test scrapes the live
	// admin endpoint through it. Its error fails the run.
	Inspect func(SLOForensics) error
}

// SLOForensics hands the live observability objects of an SLO run to
// SLOOptions.Inspect.
type SLOForensics struct {
	// Node is the querier's overlay node (collector, registry, flight).
	Node *dht.Node
	// Recorder is the querier's flight ring.
	Recorder *flight.Recorder
	// Engine is the ticked SLO engine, alerting after the overload.
	Engine *slo.Engine
}

func (o SLOOptions) defaults() SLOOptions {
	if o.Records <= 0 {
		o.Records = 200
	}
	if o.Peers <= 0 {
		o.Peers = 8
	}
	if o.Queries <= 0 {
		o.Queries = 8
	}
	if o.DropProb <= 0 {
		o.DropProb = 0.2
	}
	if o.Jitter <= 0 {
		o.Jitter = 400 * time.Millisecond
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 50 * time.Millisecond
	}
	return o
}

// SLOPhase is one phase's measurement.
type SLOPhase struct {
	Phase   string
	Queries int
	Errors  int
	// Slow counts queries captured at or over the slow threshold.
	Slow int64
	// MaxBurn is the hottest burn rate across objectives and windows at
	// the phase's closing tick.
	MaxBurn float64
	Verdict string
	Alerts  int
}

// SLOResult is the experiment outcome. Run fails (returns an error)
// unless the burn-rate alert fires under overload, stays quiet when
// healthy, and the watchdog's flight dump is non-empty with query
// trace ids that also appear as histogram exemplars — the full
// forensic chain the observability plane promises.
type SLOResult struct {
	Phases []SLOPhase
	// DumpPath is the watchdog's flight dump on disk.
	DumpPath string
	// DumpEvents is the number of events in the dump.
	DumpEvents int
	// QueryTraces / ExemplarTraces / LinkedTraces count the distinct
	// query trace ids in the flight dump, on the latency histogram's
	// exemplars, and in both.
	QueryTraces    int
	ExemplarTraces int
	LinkedTraces   int
}

// RunSLO prices the observability plane end to end. A deployment
// answers a healthy query workload (the SLO engine ticks and stays
// calm), then the network starts dropping messages: queries slow down
// and fail, the availability budget burns past the window thresholds,
// the alert fires, and the flight watchdog snapshots the querier's
// ring — which, because slow-query capture and exemplars share trace
// ids, names the exact queries that burned the budget. Ticks use a
// synthetic clock so the burn windows are deterministic.
func RunSLO(o SLOOptions) (*SLOResult, error) {
	o = o.defaults()
	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()
	cl, err := NewCluster(ClusterOptions{
		Peers: o.Peers,
		Cfg:   kadop.Config{SlowQuery: o.SlowThreshold},
		// One-shot RPCs with a short timeout: overload should hurt — the
		// experiment measures detection, not the retry machinery's cure
		// (robustness.go prices that).
		DHT: dht.Config{RPCTimeout: 250 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if _, err := cl.PublishAll(docs, 4); err != nil {
		return nil, err
	}

	q := pattern.MustParse(Fig3Query)
	querier := cl.NonOwnerPeer(q)
	// Shared tracer: server-side spans join the querier's traces, so a
	// captured slow trace shows the whole cluster's part in the stall.
	tr := trace.New(64)
	for _, nd := range cl.Nodes {
		nd.SetTracer(tr)
	}
	rec := flight.New(2048)
	querier.Node().SetFlight(rec)

	dir := o.DumpDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "kadop-slo-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	wd := flight.NewWatchdog(rec, dir, time.Millisecond)

	reg := querier.Node().Registry()
	queries := reg.Counter("kadop_queries_total", "Queries evaluated by this peer.")
	qerrors := reg.Counter("kadop_query_errors_total", "Queries that failed (after retries and partial-result handling).")
	slowQueries := reg.Counter("kadop_slow_queries_total", "Queries at or over the Config.SlowQuery capture threshold.")
	var alerts []slo.Alert
	eng, err := slo.New(slo.Config{
		Objectives: []slo.Objective{
			{
				Name:        "query-availability",
				Description: "90% of queries succeed",
				Target:      0.9,
				Source: slo.CounterSource(
					func() int64 { return queries.Value() - qerrors.Value() },
					qerrors.Value,
				),
			},
			{
				Name:        "query-latency",
				Description: "90% of queries under the slow threshold",
				Target:      0.9,
				Source:      slo.LatencySource(querier.Node().Metrics(), metrics.OpQueryTotal, o.SlowThreshold),
			},
		},
		// Compressed windows: the experiment's synthetic clock advances
		// one second per tick, so a 2s/10s pair burns within one phase.
		Windows:  []slo.Window{{Short: 2 * time.Second, Long: 10 * time.Second, Burn: 2, Severity: "page"}},
		Registry: reg,
		OnAlert: func(a slo.Alert) {
			alerts = append(alerts, a)
			wd.Trip(a.String())
		},
	})
	if err != nil {
		return nil, err
	}

	res := &SLOResult{}
	clock := time.Now()
	tick := func() []slo.Status {
		clock = clock.Add(time.Second)
		return eng.Tick(clock)
	}
	runPhase := func(name string) SLOPhase {
		ph := SLOPhase{Phase: name, Queries: o.Queries}
		alertsBefore, slowBefore := len(alerts), slowQueries.Value()
		for i := 0; i < o.Queries; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, qerr := querier.QueryContext(ctx, q, kadop.QueryOptions{})
			cancel()
			if qerr != nil {
				ph.Errors++
			}
		}
		statuses := tick()
		for _, s := range statuses {
			for _, w := range s.Windows {
				if w.ShortBurn > ph.MaxBurn {
					ph.MaxBurn = w.ShortBurn
				}
			}
		}
		ph.Slow = slowQueries.Value() - slowBefore
		ph.Verdict = slo.Verdict(statuses)
		ph.Alerts = len(alerts) - alertsBefore
		return ph
	}

	tick() // baseline sample before any traffic
	healthy := runPhase("healthy")
	res.Phases = append(res.Phases, healthy)
	if healthy.Alerts > 0 || healthy.Verdict != "ok" {
		return nil, fmt.Errorf("experiments: slo: burn alert fired on the healthy phase (verdict %q)", healthy.Verdict)
	}

	// Overload: every message suffers seeded jitter and some loss, so
	// queries cross the slow threshold (and some fail outright).
	cl.Net.SetFaults(dht.Faults{Seed: o.Seed, DropProb: o.DropProb, JitterMax: o.Jitter})
	overload := runPhase("overload")
	cl.Net.SetFaults(dht.Faults{})
	res.Phases = append(res.Phases, overload)
	if overload.Slow == 0 {
		return nil, fmt.Errorf("experiments: slo: overload (jitter %v) produced no slow queries", o.Jitter)
	}
	if overload.Alerts == 0 {
		return nil, fmt.Errorf("experiments: slo: no burn-rate alert under overload (burn %.1fx, %d slow, %d/%d errors)",
			overload.MaxBurn, overload.Slow, overload.Errors, overload.Queries)
	}

	// The forensic chain: alert → watchdog dump on disk → query trace
	// ids in the dump → the same ids on the histogram's exemplars.
	dumps := wd.Dumps()
	if len(dumps) == 0 {
		return nil, fmt.Errorf("experiments: slo: alert fired but the watchdog wrote no flight dump")
	}
	res.DumpPath = dumps[0]
	st, err := os.Stat(res.DumpPath)
	if err != nil || st.Size() == 0 {
		return nil, fmt.Errorf("experiments: slo: flight dump %s is missing or empty", res.DumpPath)
	}
	dump := rec.TakeDump("experiment")
	res.DumpEvents = len(dump.Events)
	if res.DumpEvents == 0 {
		return nil, fmt.Errorf("experiments: slo: flight ring is empty")
	}
	queryIDs := dump.TraceIDs(flight.KindQuery)
	res.QueryTraces = len(queryIDs)
	exemplar := map[uint64]bool{}
	if h := querier.Node().Metrics().Hist(metrics.OpQueryTotal); h != nil {
		for _, e := range h.Exemplars() {
			exemplar[e.TraceID] = true
		}
	}
	res.ExemplarTraces = len(exemplar)
	for _, id := range queryIDs {
		if exemplar[id] {
			res.LinkedTraces++
		}
	}
	if res.LinkedTraces == 0 {
		return nil, fmt.Errorf("experiments: slo: no trace id links the flight dump (%d query traces) to the exemplars (%d)",
			res.QueryTraces, res.ExemplarTraces)
	}
	if o.Inspect != nil {
		if err := o.Inspect(SLOForensics{Node: querier.Node(), Recorder: rec, Engine: eng}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Format renders the SLO experiment report.
func (r *SLOResult) Format() string {
	rows := make([][]string, 0, len(r.Phases))
	for _, p := range r.Phases {
		rows = append(rows, []string{
			p.Phase,
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%d", p.Errors),
			fmt.Sprintf("%d", p.Slow),
			fmt.Sprintf("%.1fx", p.MaxBurn),
			fmt.Sprintf("%d", p.Alerts),
			p.Verdict,
		})
	}
	out := "SLO burn-rate alerting under seeded overload (availability + latency targets 90%, 2x burn window)\n" +
		table([]string{"phase", "queries", "errors", "slow", "burn", "alerts", "verdict"}, rows)
	out += fmt.Sprintf("\nflight dump: %s (%d events; %d query traces, %d exemplar traces, %d linked)\n",
		r.DumpPath, r.DumpEvents, r.QueryTraces, r.ExemplarTraces, r.LinkedTraces)
	return out
}
