package experiments

import (
	"fmt"
	"sync"

	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// TrafficOptions scale the Section 4.3 traffic-consumption experiment:
// a workload of concurrent data-intensive queries over growing indexed
// volumes.
type TrafficOptions struct {
	Records    []int
	Peers      int
	Queries    int // workload size (the paper uses 50)
	QueryPeers int // distinct submitting peers (the paper uses 50)
	Seed       int64
}

func (o TrafficOptions) defaults() TrafficOptions {
	if len(o.Records) == 0 {
		o.Records = []int{500, 1000, 1500, 2000}
	}
	if o.Peers <= 0 {
		o.Peers = 24
	}
	if o.Queries <= 0 {
		o.Queries = 50
	}
	if o.QueryPeers <= 0 {
		o.QueryPeers = o.Peers
	}
	return o
}

// TrafficRow is one measurement.
type TrafficRow struct {
	Records      int
	SizeBytes    int
	QueryTraffic int64 // bytes moved by query processing
	IndexTraffic int64 // bytes moved during publication
}

// TrafficResult is the Section 4.3 sweep.
type TrafficResult struct {
	Rows []TrafficRow
}

// RunTraffic reproduces the Section 4.3 traffic experiment: a workload
// of queries over long posting lists, submitted concurrently from many
// peers, measuring the total transferred volume per indexed size. The
// paper reports 32/66/95/127 MB for 200–800 MB indexed — linear growth,
// which is the property checked here.
func RunTraffic(o TrafficOptions) (*TrafficResult, error) {
	o = o.defaults()
	res := &TrafficResult{}
	queries := workload.QueryMix(o.Seed, o.Queries)
	for _, records := range o.Records {
		docs := workload.DBLP{Seed: o.Seed, Records: records}.Documents()
		cl, err := NewCluster(ClusterOptions{Peers: o.Peers})
		if err != nil {
			return nil, err
		}
		if _, err := cl.PublishAll(docs, 4); err != nil {
			cl.Close()
			return nil, err
		}
		indexBytes := cl.Net.Collector.Bytes(metrics.Index)
		cl.Net.Collector.Reset()

		var wg sync.WaitGroup
		errs := make([]error, len(queries))
		for i, qs := range queries {
			wg.Add(1)
			go func(i int, qs string) {
				defer wg.Done()
				q, err := pattern.Parse(qs)
				if err != nil {
					errs[i] = err
					return
				}
				peer := cl.Peers[i%o.QueryPeers%len(cl.Peers)]
				if _, err := peer.Query(q, kadop.QueryOptions{IndexOnly: true}); err != nil {
					errs[i] = err
				}
			}(i, qs)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				cl.Close()
				return nil, err
			}
		}
		queryBytes := cl.Net.Collector.Bytes(metrics.Postings) +
			cl.Net.Collector.Bytes(metrics.Control)
		cl.Close()
		res.Rows = append(res.Rows, TrafficRow{
			Records: records, SizeBytes: workload.SizeBytes(docs),
			QueryTraffic: queryBytes, IndexTraffic: indexBytes,
		})
	}
	return res, nil
}

// Format renders the traffic table.
func (r *TrafficResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Records),
			mb(int64(row.SizeBytes)),
			mb(row.QueryTraffic),
			mb(row.IndexTraffic),
		})
	}
	return "Section 4.3 — traffic for the 50-query workload vs indexed data\n" +
		table([]string{"records", "indexed(MB)", "query traffic(MB)", "index traffic(MB)"}, rows)
}
