package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kadop/internal/dht"
	"kadop/internal/dpp"
	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/replicate"
	"kadop/internal/sid"
	"kadop/internal/store"
	"kadop/internal/workload"
)

// TestRunLoadAdaptive pins the load experiment's adaptive phase at
// smoke scale: the controller must promote, and both the serving-load
// Gini and the query p99 must strictly improve after it engages. This
// is the same assertion `make load-smoke` gates CI on, kept in the
// plain test suite so a regression fails `go test ./...` too.
func TestRunLoadAdaptive(t *testing.T) {
	res, err := runLoadAdaptive(LoadOptions{Records: 120, Peers: 8, Queries: 2, Seed: 7}.defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.check(!raceEnabled); err != nil {
		t.Fatalf("%v\n%s", err, res.Format())
	}
}

// TestAdaptiveChaosConvergence is the race-enabled chaos test of the
// closed loop: a replicated deployment runs the hot-term workload while
// documents keep being published concurrently and peers churn (graceful
// leaves and joins), with the replication controllers ticking under a
// synthetic clock throughout. It pins three properties:
//
//  1. Correctness is never traded for load: a query that reports a
//     complete result must bound the published corpus exactly — never
//     missing a pre-wave answer, never inventing one (stale promoted
//     copies are fenced by the advertisement count guard).
//  2. Convergence: after the churn settles, the hot term's list is held
//     in full by strictly more peers than the replication factor — the
//     controller established and maintained extra replicas through the
//     churn.
//  3. Demotion: once the hot traffic stops and the sketch decays, the
//     promotions drain and the extra copies are deleted again.
func TestAdaptiveChaosConvergence(t *testing.T) {
	const (
		peers     = 10
		stable    = 4 // first ids never churn: they publish and query
		baseDocs  = 60
		waveDocs  = 8
		waves     = 3
		seed      = 42
		replicaN  = 3
		extraRepl = 2
	)

	var clockMu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	dhtCfg := dht.Config{
		Replication: replicaN,
		Retry: dht.RetryPolicy{
			Attempts:    3,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
		RPCTimeout:   5 * time.Second,
		ProbeTimeout: 2 * time.Second,
		Seed:         seed,
	}
	cfg := kadop.Config{
		UseDPP: true,
		DPP:    dpp.Options{BlockSize: 1 << 20}, // inline lists: the hot-spot regime
		DHT:    dhtCfg,
		Replicate: replicate.Config{
			Enabled:  true,
			Extra:    extraRepl,
			HotBytes: 1 << 10,
			Decay:    0.05, // steep aging so the cool-down phase demotes quickly
			Lease:    time.Hour,
			Now:      clock,
			Seed:     seed,
		},
	}
	cl, err := NewCluster(ClusterOptions{Peers: peers, Cfg: cfg, DHT: dhtCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type member struct {
		node  *dht.Node
		peer  *kadop.Peer
		alive bool
	}
	members := make([]*member, 0, peers+waves)
	for i := range cl.Nodes {
		members = append(members, &member{node: cl.Nodes[i], peer: cl.Peers[i], alive: true})
	}
	var joinedStores []store.Store
	defer func() {
		for _, m := range members {
			if m.alive {
				m.peer.Replicator().Stop()
			}
		}
		for _, st := range joinedStores {
			st.Close()
		}
	}()

	// The corpus arrives in a churn-free base plus per-wave batches
	// published concurrently with queries and churn. The oracle is pure
	// local tree evaluation (pattern.MatchDocument), so it never depends
	// on the machinery under test.
	docs := workload.DBLP{Seed: seed, Records: 2 * (baseDocs + waves*waveDocs), RecordsPerDoc: 2}.Documents()
	if len(docs) < baseDocs+waves*waveDocs {
		t.Fatalf("bad fixture: %d documents", len(docs))
	}
	q := pattern.MustParse(Fig3Query)
	var expMu sync.Mutex
	expected := map[sid.DocKey]bool{}
	publish := func(p *kadop.Peer, d workload.GeneratedDoc) error {
		key, err := p.Publish(d.Doc, d.URI)
		if err != nil {
			return err
		}
		if len(pattern.MatchDocument(q, d.Doc, key)) > 0 {
			expMu.Lock()
			expected[key] = true
			expMu.Unlock()
		}
		return nil
	}
	snapshot := func() map[sid.DocKey]bool {
		expMu.Lock()
		defer expMu.Unlock()
		out := make(map[sid.DocKey]bool, len(expected))
		for k := range expected {
			out[k] = true
		}
		return out
	}
	for i := 0; i < baseDocs; i++ {
		if err := publish(cl.Peers[i%2], docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(snapshot()) == 0 {
		t.Fatal("bad fixture: oracle is empty")
	}

	querier := cl.Peers[stable-1]
	// boundsCheck verifies one complete result against the publication
	// bounds: every doc published before the query must answer, and no
	// answer may come from outside the corpus published so far.
	boundsCheck := func(t *testing.T, got []sid.DocKey, lower, upper map[sid.DocKey]bool, when string) {
		t.Helper()
		have := map[sid.DocKey]bool{}
		for _, d := range got {
			have[d] = true
			if !upper[d] {
				t.Fatalf("%s: query invented answer %v", when, d)
			}
		}
		for d := range lower {
			if !have[d] {
				t.Fatalf("%s: complete query dropped answer %v", when, d)
			}
		}
	}
	// tickAll runs one control pass on every live peer. Transient tick
	// errors are expected under churn (a push can race a departure); the
	// loop is self-healing, so the test logs them and pins convergence
	// on the state assertions instead.
	tickAll := func() int {
		promoted := 0
		for _, m := range members {
			if !m.alive {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			n, _, err := m.peer.Replicator().Tick(ctx)
			cancel()
			if err != nil {
				t.Logf("controller tick (tolerated under churn): %v", err)
			}
			promoted += n
		}
		return promoted
	}
	sweep := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, m := range members {
			if m.alive {
				m.node.RepairOnce(ctx)
			}
		}
	}

	rng := rand.New(rand.NewSource(seed + 11))
	nextID := sid.PeerID(peers + 1)
	for w := 0; w < waves; w++ {
		lower := snapshot()
		var wg sync.WaitGroup
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < waveDocs; i++ {
				if err := publish(cl.Peers[2], docs[baseDocs+w*waveDocs+i]); err != nil {
					t.Errorf("wave %d publish: %v", w, err)
					return
				}
			}
		}(w)

		// Queries race the appends: a complete answer observed mid-wave
		// is bounded below by the pre-wave oracle; the upper bound is
		// checked after the wave joins (answers only ever grow).
		type observed struct{ docs []sid.DocKey }
		var raced []observed
		for i := 0; i < 6; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			r, err := querier.QueryContext(ctx, q, kadop.QueryOptions{AllowPartial: true})
			cancel()
			if err == nil && !r.Incomplete {
				have := map[sid.DocKey]bool{}
				for _, d := range r.Docs {
					have[d] = true
				}
				for d := range lower {
					if !have[d] {
						t.Fatalf("wave %d: complete query dropped pre-wave answer %v", w, d)
					}
				}
				raced = append(raced, observed{docs: r.Docs})
			}
			if i == 2 {
				advance(time.Second)
				tickAll()
			}
		}
		wg.Wait()
		upper := snapshot()
		for _, o := range raced {
			for _, d := range o.docs {
				if !upper[d] {
					t.Fatalf("wave %d: query invented answer %v", w, d)
				}
			}
		}

		// Churn between waves: one graceful leave among the churnable
		// members, one join, then a repair sweep to settle ownership.
		var churnable []*member
		for _, m := range members[stable:] {
			if m.alive {
				churnable = append(churnable, m)
			}
		}
		leaver := churnable[rng.Intn(len(churnable))]
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if _, err := leaver.peer.Leave(ctx); err != nil {
			t.Fatalf("wave %d leave: %v", w, err)
		}
		leaver.alive = false
		st := store.NewMem()
		nd, err := dht.NewNode(cl.Net.NewEndpoint(), st, dhtCfg)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		joinedStores = append(joinedStores, st)
		if err := nd.BootstrapContext(ctx, members[0].node.Self()); err != nil {
			cancel()
			t.Fatalf("wave %d join: %v", w, err)
		}
		nd.Lookup(nd.Self().ID)
		jp, err := kadop.NewPeer(nd, nextID, cfg)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		nextID++
		jp.Announce()
		nd.PullOwnedOnce(ctx)
		cancel()
		members = append(members, &member{node: nd, peer: jp, alive: true})
		sweep()

		// Settled: no concurrent publishes, churn repaired — a complete
		// answer must now match the oracle exactly.
		advance(time.Second)
		tickAll()
		sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
		r, err := querier.QueryContext(sctx, q, kadop.QueryOptions{AllowPartial: true})
		scancel()
		if err != nil {
			t.Fatalf("wave %d settled query: %v", w, err)
		}
		if r.Incomplete {
			t.Fatalf("wave %d settled query incomplete after repair", w)
		}
		exact := snapshot()
		boundsCheck(t, r.Docs, exact, exact, fmt.Sprintf("wave %d settled", w))
	}

	// Convergence: with the hot traffic still fresh, the hot term's full
	// list must be held by strictly more peers than the replication
	// factor — the controller's extra replicas survived the churn.
	sweep()
	advance(time.Second)
	if n := tickAll(); n == 0 {
		t.Fatal("no promotions on the final tick despite hot traffic")
	}
	hotTerm, full, holders := "", 0, 0
	for _, term := range q.Terms() {
		tk := term.Key()
		max, cnt := 0, 0
		for _, m := range members {
			if !m.alive {
				continue
			}
			c, err := m.node.Store().Count(tk)
			if err != nil {
				continue
			}
			if c > max {
				max, cnt = c, 1
			} else if c == max && c > 0 {
				cnt++
			}
		}
		if max > full {
			hotTerm, full, holders = tk, max, cnt
		}
	}
	if holders <= replicaN {
		t.Fatalf("hot term %q: %d full holders (count %d), want > replication factor %d",
			hotTerm, holders, full, replicaN)
	}

	// Cool-down: no hot traffic; the steep decay drags the sketch below
	// the demotion threshold within a few ticks and the extra copies are
	// revoked and deleted again.
	for i := 0; i < 4; i++ {
		advance(time.Second)
		tickAll()
	}
	livePromos := 0
	for _, m := range members {
		if m.alive {
			livePromos += m.peer.Replicator().Promoted()
		}
	}
	if livePromos != 0 {
		t.Fatalf("%d promotions still live after cool-down", livePromos)
	}
	coolHolders := 0
	for _, m := range members {
		if !m.alive {
			continue
		}
		if c, err := m.node.Store().Count(hotTerm); err == nil && c == full {
			coolHolders++
		}
	}
	if coolHolders >= holders {
		t.Fatalf("demotion removed no copies: %d full holders before, %d after", holders, coolHolders)
	}

	// And the index is still exactly right.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	r, err := querier.QueryContext(ctx, q, kadop.QueryOptions{AllowPartial: true})
	cancel()
	if err != nil || r.Incomplete {
		t.Fatalf("final query: err=%v incomplete=%v", err, r != nil && r.Incomplete)
	}
	exact := snapshot()
	boundsCheck(t, r.Docs, exact, exact, "final")
}
