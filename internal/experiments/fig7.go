package experiments

import (
	"fmt"

	"kadop/internal/kadop"
	"kadop/internal/metrics"
	"kadop/internal/pattern"
	"kadop/internal/workload"
)

// The Figure 7 queries.
const (
	Fig7aQuery = `//article[. contains "Ullman"]`
	Fig7bQuery = `//article//author[. contains "Ullman"]`
	Fig7cQuery = `//article[//title]//author[. contains "Ullman"]`
)

// Fig7Options scale the Figure 7 experiment: the normalized data
// volume of the Bloom-reducer strategies.
type Fig7Options struct {
	// Variant selects the sub-figure: "a", "b" or "c".
	Variant string
	Records int
	Peers   int
	Seed    int64
}

func (o Fig7Options) defaults() Fig7Options {
	if o.Variant == "" {
		o.Variant = "a"
	}
	if o.Records <= 0 {
		o.Records = 4000
	}
	if o.Peers <= 0 {
		o.Peers = 16
	}
	return o
}

// Fig7Row is one strategy's measurement, broken down as in the figure.
type Fig7Row struct {
	Strategy      kadop.Strategy
	PostingBytes  int64
	ABFilterBytes int64
	DBFilterBytes int64
	Normalized    float64 // total volume / conventional posting volume
	IndexMatches  int
}

// Fig7Result is one sub-figure's set of bars.
type Fig7Result struct {
	Variant  string
	Query    string
	Baseline int64 // conventional strategy's posting bytes
	Rows     []Fig7Row
}

// RunFig7 reproduces one Figure 7 sub-figure: the total data volume of
// each filter-based strategy, normalized by the volume the conventional
// strategy ships, split into posting and filter transfers.
func RunFig7(o Fig7Options) (*Fig7Result, error) {
	o = o.defaults()
	query := Fig7aQuery
	strategies := []kadop.Strategy{kadop.ABReducer, kadop.DBReducer, kadop.BloomReducer}
	switch o.Variant {
	case "a":
	case "b":
		query = Fig7bQuery
	case "c":
		query = Fig7cQuery
		strategies = append(strategies, kadop.SubQueryReducer)
	default:
		return nil, fmt.Errorf("experiments: unknown figure 7 variant %q", o.Variant)
	}
	q := pattern.MustParse(query)
	res := &Fig7Result{Variant: o.Variant, Query: query}

	docs := workload.DBLP{Seed: o.Seed, Records: o.Records}.Documents()

	run := func(strategy kadop.Strategy) (*Fig7Row, error) {
		cl, err := NewCluster(ClusterOptions{Peers: o.Peers})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		if _, err := cl.PublishAll(docs, 4); err != nil {
			return nil, err
		}
		cl.Net.Collector.Reset()
		r, err := cl.NonOwnerPeer(q).Query(q, kadop.QueryOptions{Strategy: strategy, IndexOnly: true})
		if err != nil {
			return nil, err
		}
		return &Fig7Row{
			Strategy:      strategy,
			PostingBytes:  cl.Net.Collector.Bytes(metrics.Postings),
			ABFilterBytes: cl.Net.Collector.Bytes(metrics.FiltersAB),
			DBFilterBytes: cl.Net.Collector.Bytes(metrics.FiltersDB),
			IndexMatches:  r.IndexMatches,
		}, nil
	}

	base, err := run(kadop.Conventional)
	if err != nil {
		return nil, err
	}
	res.Baseline = base.PostingBytes
	for _, s := range strategies {
		row, err := run(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7%s %v: %w", o.Variant, s, err)
		}
		if row.IndexMatches != base.IndexMatches {
			return nil, fmt.Errorf("experiments: fig7%s: strategy %v changed the answer (%d vs %d index matches)",
				o.Variant, s, row.IndexMatches, base.IndexMatches)
		}
		total := row.PostingBytes + row.ABFilterBytes + row.DBFilterBytes
		row.Normalized = float64(total) / float64(res.Baseline)
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// Format renders the sub-figure's bars.
func (r *Fig7Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy.String(),
			fmt.Sprintf("%.3f", row.Normalized),
			mb(row.PostingBytes),
			mb(row.ABFilterBytes),
			mb(row.DBFilterBytes),
		})
	}
	return fmt.Sprintf("Figure 7(%s) — normalized data volume for %s (baseline %s MB of postings)\n",
		r.Variant, r.Query, mb(r.Baseline)) +
		table([]string{"strategy", "normalized", "postings(MB)", "AB filters(MB)", "DB filters(MB)"}, rows)
}
