package experiments

import (
	"fmt"
	"math"

	"kadop/internal/dyadic"
	"kadop/internal/workload"
)

// Table1Options scale the Table 1 measurement (average dyadic-cover
// size per dataset shape).
type Table1Options struct {
	// Elements overrides each shape's element count (0 keeps defaults).
	Elements int
	Seed     int64
}

// Table1Row is one dataset's measurement.
type Table1Row struct {
	Dataset  string
	Elements int
	AvgCover float64
	TwoL     int // 2·l, where 2^l bounds the position space (as in Table 1)
}

// Table1Result is the Table 1 reproduction.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 reproduces Table 1: the average size of the dyadic cover
// |D(e)| over element populations shaped like IMDB, XMark, SwissProt,
// NASA and DBLP. The paper's point — XML elements are narrow, so covers
// average ~1.2–1.6 intervals, far below the worst-case 2l — is what the
// measurement demonstrates.
func RunTable1(o Table1Options) (*Table1Result, error) {
	res := &Table1Result{}
	for _, s := range workload.Table1Shapes() {
		if o.Elements > 0 {
			s.Elements = o.Elements
		}
		widths := s.Widths(o.Seed)
		var sum float64
		maxPos := uint64(1)
		for _, w := range widths {
			sum += float64(dyadic.CoverSize(1, w))
			if w > maxPos {
				maxPos = w
			}
		}
		l := int(math.Ceil(math.Log2(float64(maxPos))))
		res.Rows = append(res.Rows, Table1Row{
			Dataset:  s.Name,
			Elements: len(widths),
			AvgCover: sum / float64(len(widths)),
			TwoL:     2 * l,
		})
	}
	return res, nil
}

// Format renders the table.
func (r *Table1Result) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset,
			fmt.Sprintf("%d", row.Elements),
			fmt.Sprintf("%.2f", row.AvgCover),
			fmt.Sprintf("%d", row.TwoL),
		})
	}
	return "Table 1 — average size of the dyadic cover\n" +
		table([]string{"data set", "element count", "|D(e)|", "2l"}, rows)
}
