package sbf

import (
	"math/rand"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// randomTree builds a forest of small, bushy XML-like documents with n
// elements in total (the shape the paper's Table 1 reports: average
// dyadic covers of 1.2–1.6 intervals). Each element is assigned to
// label "a" or "b" with the given probability of "a".
func randomTree(rng *rand.Rand, n int, pA float64) (la, lb postings.List) {
	const maxDepth = 6
	const docSize = 150
	var la0, lb0 postings.List
	doc := sid.DocID(0)
	emitted := 0
	for emitted < n {
		var stack []int
		var all []sid.SID
		pos := uint32(1)
		open := func(level uint16) {
			all = append(all, sid.SID{Start: pos, Level: level})
			stack = append(stack, len(all)-1)
			pos++
		}
		close1 := func() {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			all[i].End = pos
			pos++
		}
		open(0)
		for len(all) < docSize && emitted+len(all) < n {
			if len(stack) >= maxDepth || (len(stack) > 1 && rng.Float64() < 0.55) {
				close1()
			} else {
				open(uint16(len(stack)))
			}
		}
		for len(stack) > 0 {
			close1()
		}
		for _, s := range all {
			p := sid.Posting{Peer: 1, Doc: doc, SID: s}
			if rng.Float64() < pA {
				la0 = append(la0, p)
			} else {
				lb0 = append(lb0, p)
			}
		}
		emitted += len(all)
		doc++
	}
	la0.Sort()
	lb0.Sort()
	return la0, lb0
}

// hasAncestor reports ground truth: does e have an ancestor in la?
func hasAncestor(e sid.Posting, la postings.List) bool {
	for _, a := range la {
		if a.Contains(e) {
			return true
		}
	}
	return false
}

func hasDescendant(e sid.Posting, lb postings.List) bool {
	for _, b := range lb {
		if e.Contains(b) {
			return true
		}
	}
	return false
}

func TestABNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		la, lb := randomTree(rng, 400, 0.3)
		ab := BuildAB(la, 0.05, DefaultPsiC)
		for _, e := range lb {
			if hasAncestor(e, la) && !ab.MayHaveAncestor(e) {
				t.Fatalf("false negative: %v has an ancestor in La but probe failed", e)
			}
		}
	}
}

func TestABStartOnlyNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	la, lb := randomTree(rng, 500, 0.3)
	ab := BuildAB(la, 0.05, DefaultPsiC)
	for _, e := range lb {
		if hasAncestor(e, la) && !ab.MayHaveAncestorStartOnly(e) {
			t.Fatalf("start-only false negative for %v", e)
		}
		// The Theorem-1 probe never passes a posting the start-only probe
		// rejects (start-only is strictly weaker filtering? no: strictly
		// fewer conditions, so it passes a superset).
		if ab.MayHaveAncestor(e) && !ab.MayHaveAncestorStartOnly(e) {
			t.Fatalf("start-only probe rejected %v accepted by Theorem-1 probe", e)
		}
	}
}

func TestDBNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		la, lb := randomTree(rng, 400, 0.3)
		db := BuildDB(lb, 0.01, 0, 0)
		for _, e := range la {
			if hasDescendant(e, lb) && !db.MayHaveDescendant(e) {
				t.Fatalf("false negative: %v has a descendant in Lb but probe failed", e)
			}
		}
	}
}

func empiricalFP(t *testing.T, probe func(sid.Posting) bool, truth func(sid.Posting) bool, list postings.List) float64 {
	t.Helper()
	fp, neg := 0, 0
	for _, e := range list {
		if truth(e) {
			continue
		}
		neg++
		if probe(e) {
			fp++
		}
	}
	if neg == 0 {
		return 0
	}
	return float64(fp) / float64(neg)
}

// TestABResilientToBasicFP reproduces the qualitative finding of
// Section 5.4: the AB filter's empirical error stays low (paper: <10%)
// even when the basic Bloom filter is allowed a 20% false-positive rate.
func TestABResilientToBasicFP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	la, lb := randomTree(rng, 3000, 0.25)
	ab := BuildAB(la, 0.20, DefaultPsiC)
	rate := empiricalFP(t, ab.MayHaveAncestor,
		func(e sid.Posting) bool { return hasAncestor(e, la) }, lb)
	if rate > 0.12 {
		t.Errorf("AB empirical fp = %.3f at basic fp 0.20, paper reports <0.10", rate)
	}
}

// TestDBDegradesWithBasicFP checks the DB side of the Section 5.4
// finding: at a high basic rate the disjunctive DB probe degrades far
// more than AB.
func TestDBDegradesWithBasicFP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	la, lb := randomTree(rng, 3000, 0.75) // few b postings, many a probes
	truth := func(e sid.Posting) bool { return hasDescendant(e, lb) }

	dbTight := BuildDB(lb, 0.01, 0, 0)
	tight := empiricalFP(t, dbTight.MayHaveDescendant, truth, la)
	if tight > 0.15 {
		t.Errorf("DB empirical fp = %.3f at basic fp 0.01, paper reports <0.10", tight)
	}

	dbLoose := BuildDB(lb, 0.20, 0, 0)
	loose := empiricalFP(t, dbLoose.MayHaveDescendant, truth, la)
	if loose < tight {
		t.Errorf("DB error should grow with basic fp: %.3f (0.01) vs %.3f (0.20)", tight, loose)
	}

	abLoose := BuildAB(la, 0.20, DefaultPsiC)
	abRate := empiricalFP(t, abLoose.MayHaveAncestor,
		func(e sid.Posting) bool { return hasAncestor(e, la) }, lb)
	if abRate > loose+0.05 {
		t.Errorf("AB (%.3f) should be at least as accurate as DB (%.3f) at basic fp 0.20", abRate, loose)
	}
}

// TestPsiImprovesAccuracy verifies the paper's claim that the ψ trace
// function beats a single trace per level for filters of similar size.
func TestPsiImprovesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	la, lb := randomTree(rng, 4000, 0.25)
	truth := func(e sid.Posting) bool { return hasAncestor(e, la) }

	withPsi := BuildAB(la, 0.25, DefaultPsiC)
	single := BuildAB(la, 0.25, 0)
	ratePsi := empiricalFP(t, withPsi.MayHaveAncestor, truth, lb)
	rateSingle := empiricalFP(t, single.MayHaveAncestor, truth, lb)
	if ratePsi > rateSingle+0.02 {
		t.Errorf("psi traces should not hurt: psi=%.4f single=%.4f", ratePsi, rateSingle)
	}
}

func TestStartOnlyProbeLooser(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	la, lb := randomTree(rng, 3000, 0.25)
	ab := BuildAB(la, 0.25, DefaultPsiC)
	truth := func(e sid.Posting) bool { return hasAncestor(e, la) }
	full := empiricalFP(t, ab.MayHaveAncestor, truth, lb)
	startOnly := empiricalFP(t, ab.MayHaveAncestorStartOnly, truth, lb)
	if full > startOnly+1e-9 {
		t.Errorf("Theorem-1 probe (%.4f) must be at most as error-prone as start-only (%.4f)", full, startOnly)
	}
}

func TestABFilterList(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	la, lb := randomTree(rng, 800, 0.3)
	ab := BuildAB(la, 0.02, DefaultPsiC)
	got := ab.Filter(lb)
	// Every true match must survive.
	want := 0
	for _, e := range lb {
		if hasAncestor(e, la) {
			want++
		}
	}
	survived := make(map[sid.Posting]bool, len(got))
	for _, e := range got {
		survived[e] = true
	}
	for _, e := range lb {
		if hasAncestor(e, la) && !survived[e] {
			t.Fatalf("Filter dropped true match %v", e)
		}
	}
	if len(got) < want {
		t.Fatalf("Filter kept %d, fewer than %d true matches", len(got), want)
	}
}

func TestDBFilterList(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	la, lb := randomTree(rng, 800, 0.7)
	db := BuildDB(lb, 0.02, 0, 0)
	got := db.Filter(la)
	survived := make(map[sid.Posting]bool, len(got))
	for _, e := range got {
		survived[e] = true
	}
	for _, e := range la {
		if hasDescendant(e, lb) && !survived[e] {
			t.Fatalf("Filter dropped true match %v", e)
		}
	}
}

func TestABMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	la, lb := randomTree(rng, 500, 0.3)
	ab := BuildAB(la, 0.05, DefaultPsiC)
	buf := ab.Marshal()
	got, err := UnmarshalAB(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DCLev() != ab.DCLev() {
		t.Fatal("dclev lost")
	}
	for _, e := range lb {
		if got.MayHaveAncestor(e) != ab.MayHaveAncestor(e) {
			t.Fatalf("round-tripped AB filter disagrees on %v", e)
		}
	}
	if _, err := UnmarshalAB(buf[:1]); err == nil {
		t.Fatal("UnmarshalAB of truncated buffer should fail")
	}
	if _, err := UnmarshalAB(buf[:8]); err == nil {
		t.Fatal("UnmarshalAB of truncated filter body should fail")
	}
}

func TestDBMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	la, lb := randomTree(rng, 500, 0.7)
	db := BuildDB(lb, 0.05, 0, 0)
	got, err := UnmarshalDB(db.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range la {
		if got.MayHaveDescendant(e) != db.MayHaveDescendant(e) {
			t.Fatalf("round-tripped DB filter disagrees on %v", e)
		}
	}
	if _, err := UnmarshalDB(nil); err == nil {
		t.Fatal("UnmarshalDB(nil) should fail")
	}
}

func TestDBWideIntervalConservative(t *testing.T) {
	// Elements wider than 2^maxLevel must pass the probe (no recall loss).
	lb := postings.List{{Peer: 1, Doc: 1, SID: sid.SID{Start: 5, End: 6, Level: 3}}}
	db := BuildDB(lb, 0.01, 0, 4) // maxLevel 4: widths up to 16
	wide := sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 100, Level: 0}}
	if !db.MayHaveDescendant(wide) {
		t.Fatal("probe of element wider than maxLevel must conservatively pass")
	}
}

func TestABErrorBound(t *testing.T) {
	b := ABErrorBound(0.05, DefaultPsiC, 10)
	if b <= 0 || b >= 1 {
		t.Fatalf("bound = %f", b)
	}
	// More levels -> larger bound; lower fp -> smaller bound.
	if ABErrorBound(0.05, DefaultPsiC, 20) < b {
		t.Error("bound should grow with level count")
	}
	if ABErrorBound(0.01, DefaultPsiC, 10) > b {
		t.Error("bound should shrink with basic fp")
	}
}

func TestPsiTraces(t *testing.T) {
	psi := PsiTraces(4)
	want := map[uint8]int{0: 1, 1: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for lvl, n := range want {
		if got := psi(lvl); got != n {
			t.Errorf("psi(%d) = %d, want %d", lvl, got, n)
		}
	}
	if PsiTraces(0)(5) < 1 {
		t.Error("psi must be at least 1")
	}
	if PsiSingle(30) != 1 {
		t.Error("PsiSingle must be 1")
	}
}

func TestFilterSizesMuchSmallerThanLists(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	la, _ := randomTree(rng, 20000, 0.9)
	ab := BuildAB(la, 0.10, DefaultPsiC)
	enc, err := postings.Encode(la)
	if err != nil {
		t.Fatal(err)
	}
	if ab.SizeBytes() >= len(enc) {
		t.Errorf("AB filter (%d B) should be smaller than the raw list (%d B)", ab.SizeBytes(), len(enc))
	}
}
