package sbf

import (
	"math/rand"
	"testing"
)

func BenchmarkBuildAB(b *testing.B) {
	la, _ := randomTree(rand.New(rand.NewSource(1)), 20000, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildAB(la, 0.10, DefaultPsiC)
	}
	b.ReportMetric(float64(len(la)), "postings/filter")
}

func BenchmarkProbeAB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	la, lb := randomTree(rng, 20000, 0.5)
	ab := BuildAB(la, 0.10, DefaultPsiC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab.MayHaveAncestor(lb[i%len(lb)])
	}
}

func BenchmarkBuildDB(b *testing.B) {
	_, lb := randomTree(rand.New(rand.NewSource(3)), 20000, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDB(lb, 0.01, 0, 0)
	}
}

func BenchmarkFilterListAB(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	la, lb := randomTree(rng, 20000, 0.5)
	ab := BuildAB(la, 0.10, DefaultPsiC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab.Filter(lb)
	}
	b.ReportMetric(float64(len(lb)), "postings/filter-pass")
}
