// Package sbf implements Structural Bloom Filters (Section 5 of the
// paper): compact, one-sided-error summaries of posting lists that let a
// remote peer discard postings with no ancestor (AB Filter) or no
// descendant (DB Filter) in the summarised list, before shipping them
// across the network.
//
// Both filters build on the dyadic decomposition of the [start, end]
// interval of each posting:
//
//   - The Ancestor Bloom Filter ABF(a) encodes the dyadic covers D(La)
//     of the postings of term a. By Theorem 1, a posting e_b has an
//     ancestor in La iff every interval of D(e_b) has a dyadic container
//     present in D(La); the probe is a conjunction of container
//     look-ups, which keeps the error probability low.
//
//   - The Descendant Bloom Filter DBF(b) encodes the dyadic containers
//     Dc(Lb). By Theorem 2, a posting e_a has a descendant in Lb iff
//     D(e_a) intersects Dc(Lb); the probe is a disjunction, which is
//     cheaper to build but more error-prone — exactly the asymmetry the
//     paper measures in Section 5.4.
//
// Filters never produce false negatives: a posting that truly has the
// queried ancestor/descendant always survives filtering, so recall is
// preserved end-to-end.
//
// The trace function ψ(j) (Section 5.1) inserts ψ(j) replicas of each
// level-j interval and requires all of them on look-up. Wide (high
// level) intervals are the most damaging false positives, so ψ grows
// with the level; the paper's choice ψ(j) = ⌈1 + j/c⌉ with c = 4 is the
// default for AB Filters.
package sbf

import (
	"fmt"
	"math"

	"kadop/internal/bloom"
	"kadop/internal/dyadic"
	"kadop/internal/postings"
	"kadop/internal/sid"
)

// Psi is a trace function: the number of replicas inserted (and probed)
// for a dyadic interval at the given level. Implementations must return
// at least 1 and be deterministic.
type Psi func(level uint8) int

// PsiSingle is the default single-trace function ψ(j) = 1.
func PsiSingle(uint8) int { return 1 }

// PsiTraces returns the paper's trace function ψ(j) = ⌈1 + j/c⌉, which
// adds one extra trace every c levels. The paper uses c = 4.
func PsiTraces(c int) Psi {
	if c < 1 {
		c = 1
	}
	return func(level uint8) int { return 1 + (int(level)+c-1)/c }
}

// DefaultPsiC is the paper's choice of c for the AB Filter trace
// function, picked for basic false-positive rates below 1/16.
const DefaultPsiC = 4

// key derives the Bloom key for one trace of a dyadic interval of a
// given document. The packing is mixed through SplitMix-style rounds so
// that nearby (peer, doc, interval) triples do not collide structurally.
func key(peer sid.PeerID, doc sid.DocID, iv dyadic.Interval, trace int) uint64 {
	// Avalanche each field before combining with the next: xoring raw
	// field words would make (doc, interval-index) pairs collide
	// systematically (doc^1 vs index^1 yield the same word).
	h := mix(uint64(peer)<<32 | uint64(doc))
	h = mix(h ^ iv.Key())
	h = mix(h + uint64(trace)*0x9e3779b97f4a7c15)
	return h
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ABFilter is an Ancestor Bloom Filter: a summary of the posting list
// La that can decide (with one-sided error) whether a posting has an
// ancestor in La.
type ABFilter struct {
	f     *bloom.Filter
	dclev uint8 // highest level occurring in D(La); probes stop here
	psiC  int   // 0 means single trace; otherwise the paper's c
}

// psi returns the trace function encoded by psiC.
func psiFor(c int) Psi {
	if c <= 0 {
		return PsiSingle
	}
	return PsiTraces(c)
}

// BuildAB constructs ABF(a) from the posting list of term a.
// basicFP is the target false-positive rate of the underlying basic
// Bloom filter (fp[ψ] in the paper). psiC selects the trace function:
// 0 for a single trace per level, otherwise ψ(j) = ⌈1 + j/c⌉.
func BuildAB(list postings.List, basicFP float64, psiC int) *ABFilter {
	psi := psiFor(psiC)
	// First pass: count insertions and find the highest cover level so
	// the basic filter can be sized for its actual load.
	var n uint64
	var dclev uint8
	var cov []dyadic.Interval
	for _, p := range list {
		cov = dyadic.Cover(cov[:0], uint64(p.SID.Start), uint64(p.SID.End))
		for _, iv := range cov {
			n += uint64(psi(iv.Level))
			if iv.Level > dclev {
				dclev = iv.Level
			}
		}
	}
	ab := &ABFilter{f: bloom.NewOptimal(n, basicFP), dclev: dclev, psiC: psiC}
	for _, p := range list {
		cov = dyadic.Cover(cov[:0], uint64(p.SID.Start), uint64(p.SID.End))
		for _, iv := range cov {
			for tr := 0; tr < psi(iv.Level); tr++ {
				ab.f.Insert(key(p.Peer, p.Doc, iv, tr))
			}
		}
	}
	return ab
}

// containedIn reports whether one trace-checked interval is present in
// the filter: all ψ(level) replicas must be set.
func (ab *ABFilter) present(peer sid.PeerID, doc sid.DocID, iv dyadic.Interval) bool {
	psi := psiFor(ab.psiC)
	for tr := 0; tr < psi(iv.Level); tr++ {
		if !ab.f.Contains(key(peer, doc, iv, tr)) {
			return false
		}
	}
	return true
}

// covered reports whether the dyadic interval iv has a container
// recorded in D(La): some dyadic interval containing iv, at a level not
// above dclev, is present in the filter.
func (ab *ABFilter) covered(peer sid.PeerID, doc sid.DocID, iv dyadic.Interval) bool {
	if iv.Level > ab.dclev {
		return false // no interval that wide was ever inserted
	}
	for cur := iv; cur.Level <= ab.dclev; cur = cur.Parent() {
		if ab.present(peer, doc, cur) {
			return true
		}
	}
	return false
}

// MayHaveAncestor implements the Theorem-1 probe: it returns false only
// if e provably has no ancestor in La; a true answer may be a false
// positive with the filter's error probability.
func (ab *ABFilter) MayHaveAncestor(e sid.Posting) bool {
	cov := dyadic.Cover(nil, uint64(e.SID.Start), uint64(e.SID.End))
	for _, iv := range cov {
		if !ab.covered(e.Peer, e.Doc, iv) {
			return false
		}
	}
	return true
}

// MayHaveAncestorStartOnly implements the simpler probe discussed in
// Section 5.1, which checks coverage of the single point interval
// [start, start]. It has the same false-negative guarantee but a higher
// false-positive rate whenever |D(e)| > 1.
func (ab *ABFilter) MayHaveAncestorStartOnly(e sid.Posting) bool {
	iv := dyadic.Interval{Level: 0, Index: uint64(e.SID.Start) - 1}
	return ab.covered(e.Peer, e.Doc, iv)
}

// Filter returns the sub-list of list whose postings may have an
// ancestor in La (the paper's F(b, ABF(a))).
func (ab *ABFilter) Filter(list postings.List) postings.List {
	out := make(postings.List, 0, len(list))
	for _, p := range list {
		if ab.MayHaveAncestor(p) {
			out = append(out, p)
		}
	}
	return out
}

// SizeBytes is the wire size of the filter.
func (ab *ABFilter) SizeBytes() int { return ab.f.SizeBytes() + 2 }

// DCLev returns the highest dyadic level recorded in the filter.
func (ab *ABFilter) DCLev() uint8 { return ab.dclev }

// Stats summarises a filter for observability (trace attributes and
// the admin endpoint).
type Stats struct {
	Kind  string // "ab" or "db"
	Bytes int    // wire size
	Level uint8  // AB: highest dyadic level; DB: container chain depth
}

// String renders the stats compactly, e.g. "ab/1024B/lev=7".
func (s Stats) String() string {
	return fmt.Sprintf("%s/%dB/lev=%d", s.Kind, s.Bytes, s.Level)
}

// Stats describes the filter.
func (ab *ABFilter) Stats() Stats {
	return Stats{Kind: "ab", Bytes: ab.SizeBytes(), Level: ab.dclev}
}

// Marshal serialises the filter.
func (ab *ABFilter) Marshal() []byte {
	buf := []byte{ab.dclev, byte(ab.psiC)}
	return append(buf, ab.f.Marshal()...)
}

// UnmarshalAB reconstructs an ABFilter serialised by Marshal.
func UnmarshalAB(buf []byte) (*ABFilter, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("sbf: truncated AB filter header")
	}
	f, err := bloom.Unmarshal(buf[2:])
	if err != nil {
		return nil, fmt.Errorf("sbf: AB filter: %w", err)
	}
	return &ABFilter{f: f, dclev: buf[0], psiC: int(buf[1])}, nil
}

// ABErrorBound returns the paper's upper bound on the ancestor false
// positive rate, 1 - Π_{0<=j<=l} (1 - fp)^ψ(j), for a basic rate fp,
// trace parameter psiC and maximum level l.
func ABErrorBound(fp float64, psiC int, l uint8) float64 {
	psi := psiFor(psiC)
	prod := 1.0
	for j := uint8(0); j <= l; j++ {
		prod *= math.Pow(1-fp, float64(psi(j)))
	}
	return 1 - prod
}

// DBMaxLevelDefault bounds the container chains inserted by DB Filters:
// level 16 supports elements spanning up to 65536 tag positions, far
// beyond the 20 KB documents KadoP deployments publish. Probes for
// wider intervals conservatively pass, preserving recall.
const DBMaxLevelDefault = 16

// DBFilter is a Descendant Bloom Filter: a summary of the posting list
// Lb that can decide (with one-sided error) whether a posting has a
// descendant in Lb.
type DBFilter struct {
	f        *bloom.Filter
	maxLevel uint8
	psiC     int
}

// BuildDB constructs DBF(b) from the posting list of term b. Container
// chains are inserted up to maxLevel; passing 0 sizes the chains to the
// list's own position space (capped at DBMaxLevelDefault), since probes
// for intervals wider than the chains conservatively pass and cost no
// recall. psiC selects the trace function; the paper effectively uses a
// single trace for DB Filters (psiC = 0).
//
// The containers inserted are those of each posting's start point
// [start, start] rather than of its whole [start, end] interval. Within
// one document element intervals nest, so e_a contains e_b exactly when
// start_a < start_b < end_a (the paper's Section 5.1 remark that
// "posting intervals cannot be partially contained"); the cover piece of
// e_a that holds start_b is then a dyadic container of that point, which
// makes the Theorem-2 probe below free of false negatives. Inserting
// containers of the full interval instead would lose recall whenever a
// descendant's interval straddles two cover pieces of its ancestor.
func BuildDB(list postings.List, basicFP float64, psiC int, maxLevel uint8) *DBFilter {
	if maxLevel == 0 {
		var maxEnd uint32
		for _, p := range list {
			if p.SID.End > maxEnd {
				maxEnd = p.SID.End
			}
		}
		maxLevel = 2
		for (uint64(1) << maxLevel) < uint64(maxEnd) {
			maxLevel++
		}
		maxLevel += 2 // headroom for ancestors wider than any b posting
		if maxLevel > DBMaxLevelDefault {
			maxLevel = DBMaxLevelDefault
		}
	}
	psi := psiFor(psiC)
	var n uint64
	var chain []dyadic.Interval
	for _, p := range list {
		chain = dyadic.Containers(chain[:0], uint64(p.SID.Start), uint64(p.SID.Start), maxLevel)
		for _, iv := range chain {
			n += uint64(psi(iv.Level))
		}
	}
	db := &DBFilter{f: bloom.NewOptimal(n, basicFP), maxLevel: maxLevel, psiC: psiC}
	for _, p := range list {
		chain = dyadic.Containers(chain[:0], uint64(p.SID.Start), uint64(p.SID.Start), maxLevel)
		for _, iv := range chain {
			for tr := 0; tr < psi(iv.Level); tr++ {
				db.f.Insert(key(p.Peer, p.Doc, iv, tr))
			}
		}
	}
	return db
}

func (db *DBFilter) present(peer sid.PeerID, doc sid.DocID, iv dyadic.Interval) bool {
	psi := psiFor(db.psiC)
	for tr := 0; tr < psi(iv.Level); tr++ {
		if !db.f.Contains(key(peer, doc, iv, tr)) {
			return false
		}
	}
	return true
}

// MayHaveDescendant implements the Theorem-2 probe: it returns false
// only if e provably has no descendant in Lb.
func (db *DBFilter) MayHaveDescendant(e sid.Posting) bool {
	cov := dyadic.Cover(nil, uint64(e.SID.Start), uint64(e.SID.End))
	for _, iv := range cov {
		if iv.Level > db.maxLevel {
			// The filter never recorded containers this wide; failing the
			// probe here could drop a real ancestor, so pass conservatively.
			return true
		}
		if db.present(e.Peer, e.Doc, iv) {
			return true
		}
	}
	return false
}

// Filter returns the sub-list of list whose postings may have a
// descendant in Lb (the paper's F(a, DBF(b))).
func (db *DBFilter) Filter(list postings.List) postings.List {
	out := make(postings.List, 0, len(list))
	for _, p := range list {
		if db.MayHaveDescendant(p) {
			out = append(out, p)
		}
	}
	return out
}

// SizeBytes is the wire size of the filter.
func (db *DBFilter) SizeBytes() int { return db.f.SizeBytes() + 2 }

// Stats describes the filter.
func (db *DBFilter) Stats() Stats {
	return Stats{Kind: "db", Bytes: db.SizeBytes(), Level: db.maxLevel}
}

// Marshal serialises the filter.
func (db *DBFilter) Marshal() []byte {
	buf := []byte{db.maxLevel, byte(db.psiC)}
	return append(buf, db.f.Marshal()...)
}

// UnmarshalDB reconstructs a DBFilter serialised by Marshal.
func UnmarshalDB(buf []byte) (*DBFilter, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("sbf: truncated DB filter header")
	}
	f, err := bloom.Unmarshal(buf[2:])
	if err != nil {
		return nil, fmt.Errorf("sbf: DB filter: %w", err)
	}
	return &DBFilter{f: f, maxLevel: buf[0], psiC: int(buf[1])}, nil
}
