// Package fundex implements the indexing and querying of intensional
// data (Section 6 of the paper): documents whose content is partly
// given by references — external entity includes, or more generally
// function calls — to other documents.
//
// Five publishing/query modes are provided, matching the alternatives
// the paper compares:
//
//   - Naive: index documents as they are; queries never see the
//     referenced content (incomplete).
//   - Brutal: index as-is, but treat every document containing
//     intensional data as a potential match (complete, very imprecise).
//   - Fundex: the paper's functional indexing. Each referenced document
//     is materialised and indexed once, under the functional id
//     (p, h'(w)) where p is the peer in charge of the key fun:w; the
//     Rev relation maps each functional id back to the places that
//     reference it. Queries complete their incomplete matches by
//     evaluating the split-off sub-pattern on the functional documents
//     and joining back through Rev (complete and precise).
//   - Inline: expand references before indexing (complete and precise,
//     at the cost of re-indexing shared content in every referencing
//     document).
//   - Representative: index, in place of the reference, a skeleton of
//     the referenced content (its element structure without words) in
//     the spirit of representative objects. Queries run like Fundex but
//     keep structural conditions below the reference in the host-side
//     pattern, pruning reference chasing when the "type" cannot match.
package fundex

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"kadop/internal/dht"
	"kadop/internal/kadop"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/twigjoin"
	"kadop/internal/xmltree"
)

// Mode selects how intensional data is indexed and queried.
type Mode int

// The five modes compared in Section 6.
const (
	Naive Mode = iota
	Brutal
	Fundex
	Inline
	Representative
)

func (m Mode) String() string {
	switch m {
	case Naive:
		return "naive"
	case Brutal:
		return "brutal"
	case Fundex:
		return "fundex"
	case Inline:
		return "inline"
	case Representative:
		return "representative"
	}
	return fmt.Sprintf("mode(%d)", m)
}

// Resolver materialises the content behind a reference URI. Every peer
// of a Fundex deployment must be able to resolve the URIs it is asked
// to index (the paper's "peer p materialises f(u)").
type Resolver func(uri string) ([]byte, error)

// procFun is the materialisation procedure: the home peer of key
// "fun:<uri>" indexes the referenced document once and returns its
// functional id.
const procFun = "index:fun:doc"

// fidBit marks functional document identifiers, keeping them disjoint
// from the sequential ids of ordinary documents.
const fidBit = 0x80000000

// Indexer layers intensional-data handling over a KadoP peer.
type Indexer struct {
	peer    *kadop.Peer
	mode    Mode
	resolve Resolver
}

// New creates the intensional-data layer on a peer and registers its
// materialisation procedure. All peers of a deployment must use the
// same mode.
func New(peer *kadop.Peer, mode Mode, resolve Resolver) *Indexer {
	ix := &Indexer{peer: peer, mode: mode, resolve: resolve}
	peer.Node().Handle(procFun, ix.handleFun)
	return ix
}

// Mode returns the indexer's mode.
func (ix *Indexer) Mode() Mode { return ix.mode }

// Peer returns the underlying KadoP peer.
func (ix *Indexer) Peer() *kadop.Peer { return ix.peer }

// fid derives the functional document id h'(w) for a reference URI.
func fid(uri string) sid.DocID {
	h := fnv.New32a()
	h.Write([]byte(uri))
	return sid.DocID(h.Sum32() | fidBit)
}

// IsFunctionalDoc reports whether a document key denotes a
// materialised functional document.
func IsFunctionalDoc(k sid.DocKey) bool { return uint32(k.Doc)&fidBit != 0 }

func revKey(k sid.DocKey) string { return fmt.Sprintf("rev:%d:%d", k.Peer, k.Doc) }

// Publish checks a document in under the indexer's mode.
func (ix *Indexer) Publish(raw []byte, uri string) (sid.DocKey, error) {
	doc, err := xmltree.ParseBytes(raw)
	if err != nil {
		return sid.DocKey{}, fmt.Errorf("fundex: publish %q: %w", uri, err)
	}
	switch ix.mode {
	case Naive, Brutal:
		return ix.peer.Publish(doc, uri)
	case Inline:
		expanded, err := ix.expand(doc, nil)
		if err != nil {
			return sid.DocKey{}, fmt.Errorf("fundex: inline %q: %w", uri, err)
		}
		return ix.peer.Publish(expanded, uri)
	case Representative:
		skeleton, err := ix.skeletonize(doc)
		if err != nil {
			return sid.DocKey{}, fmt.Errorf("fundex: representative %q: %w", uri, err)
		}
		key, err := ix.peer.Publish(skeleton.doc, uri)
		if err != nil {
			return key, err
		}
		return key, ix.registerIncludes(key, skeleton.doc, skeleton.anchors)
	case Fundex:
		key, err := ix.peer.Publish(doc, uri)
		if err != nil {
			return key, err
		}
		anchors := map[string][]sid.SID{}
		doc.Walk(func(n *xmltree.Node) {
			if n.Include != "" {
				anchors[n.Include] = append(anchors[n.Include], n.SID)
			}
		})
		return key, ix.registerIncludes(key, doc, anchors)
	}
	return sid.DocKey{}, fmt.Errorf("fundex: unknown mode %v", ix.mode)
}

// registerIncludes materialises every referenced document and records
// the reverse pointers of the Rev relation.
func (ix *Indexer) registerIncludes(host sid.DocKey, doc *xmltree.Document, anchors map[string][]sid.SID) error {
	for uri, sids := range anchors {
		fkey, err := ix.materialize(uri)
		if err != nil {
			return err
		}
		occ := make(postings.List, 0, len(sids))
		for _, s := range sids {
			occ = append(occ, sid.Posting{Peer: host.Peer, Doc: host.Doc, SID: s})
		}
		occ.Sort()
		if err := ix.peer.Node().Append(revKey(fkey), occ); err != nil {
			return fmt.Errorf("fundex: rev %q: %w", uri, err)
		}
	}
	return nil
}

// materialize asks the home peer of fun:<uri> to index the referenced
// document (idempotently) and returns its functional document key.
func (ix *Indexer) materialize(uri string) (sid.DocKey, error) {
	blob, err := ix.peer.Node().CallProc("fun:"+uri, procFun, []byte(uri))
	if err != nil {
		return sid.DocKey{}, fmt.Errorf("fundex: materialise %q: %w", uri, err)
	}
	keys, err := decodeDocKey(blob)
	if err != nil {
		return sid.DocKey{}, err
	}
	return keys, nil
}

// handleFun runs at the home peer of fun:<uri>: on first request it
// resolves, parses and indexes the referenced document under the
// functional id; later requests are free ("then p has nothing to do").
func (ix *Indexer) handleFun(_ context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	uri := string(blob)
	id := fid(uri)
	key := sid.DocKey{Peer: ix.peer.ID(), Doc: id}
	if _, _, ok := ix.peer.Document(id); ok {
		return encodeDocKey(key), nil
	}
	if ix.resolve == nil {
		return nil, fmt.Errorf("fundex: no resolver for %q", uri)
	}
	raw, err := ix.resolve(uri)
	if err != nil {
		return nil, fmt.Errorf("fundex: resolve %q: %w", uri, err)
	}
	doc, err := xmltree.ParseBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("fundex: parse %q: %w", uri, err)
	}
	if doc.HasIncludes() {
		// Nested references: materialise recursively so the functional
		// document is itself complete (one level of indirection per call).
		doc, err = ix.expand(doc, nil)
		if err != nil {
			return nil, fmt.Errorf("fundex: nested includes in %q: %w", uri, err)
		}
	}
	if _, err := ix.peer.PublishAt(id, doc, uri); err != nil {
		return nil, err
	}
	return encodeDocKey(key), nil
}

// expand replaces every include node with the parsed content of its
// reference, recursively, and rebuilds structural identifiers. The
// seen set guards against reference cycles.
func (ix *Indexer) expand(doc *xmltree.Document, seen map[string]bool) (*xmltree.Document, error) {
	if seen == nil {
		seen = map[string]bool{}
	}
	b := xmltree.NewBuilder()
	var rec func(n *xmltree.Node) error
	rec = func(n *xmltree.Node) error {
		if n.Include != "" {
			if seen[n.Include] {
				return fmt.Errorf("reference cycle through %q", n.Include)
			}
			if ix.resolve == nil {
				return fmt.Errorf("no resolver for %q", n.Include)
			}
			raw, err := ix.resolve(n.Include)
			if err != nil {
				return err
			}
			sub, err := xmltree.ParseBytes(raw)
			if err != nil {
				return err
			}
			seen[n.Include] = true
			err = rec(sub.Root)
			delete(seen, n.Include)
			return err
		}
		b.Open(n.Label)
		for _, w := range n.Words {
			b.Text(w)
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		b.Close()
		return nil
	}
	if err := rec(doc.Root); err != nil {
		return nil, err
	}
	return b.Document()
}

// skeletonized is the result of representative-data indexing: the host
// document with references replaced by content skeletons, plus the
// skeleton-root anchor of each reference for the Rev relation.
type skeletonized struct {
	doc     *xmltree.Document
	anchors map[string][]sid.SID
}

// skeletonize replaces each include node with the element structure of
// its referenced content, stripped of words (the representative
// instance).
func (ix *Indexer) skeletonize(doc *xmltree.Document) (*skeletonized, error) {
	b := xmltree.NewBuilder()
	type pending struct {
		uri   string
		order int // pre-order position of the skeleton root in the new doc
	}
	var pendings []pending
	order := 0
	var rec func(n *xmltree.Node) error
	rec = func(n *xmltree.Node) error {
		if n.Include != "" {
			if ix.resolve == nil {
				return fmt.Errorf("no resolver for %q", n.Include)
			}
			raw, err := ix.resolve(n.Include)
			if err != nil {
				return err
			}
			sub, err := xmltree.ParseBytes(raw)
			if err != nil {
				return err
			}
			pendings = append(pendings, pending{uri: n.Include, order: order})
			var skel func(sn *xmltree.Node)
			skel = func(sn *xmltree.Node) {
				order++
				b.Open(sn.Label)
				for _, c := range sn.Children {
					skel(c)
				}
				b.Close()
			}
			skel(sub.Root)
			return nil
		}
		order++
		b.Open(n.Label)
		for _, w := range n.Words {
			b.Text(w)
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		b.Close()
		return nil
	}
	if err := rec(doc.Root); err != nil {
		return nil, err
	}
	out, err := b.Document()
	if err != nil {
		return nil, err
	}
	// Map pre-order positions back to sids in the rebuilt document.
	var sids []sid.SID
	out.Walk(func(n *xmltree.Node) { sids = append(sids, n.SID) })
	anchors := map[string][]sid.SID{}
	for _, p := range pendings {
		anchors[p.uri] = append(anchors[p.uri], sids[p.order])
	}
	return &skeletonized{doc: out, anchors: anchors}, nil
}

// Answer is the result of an intensional-aware query.
type Answer struct {
	// Matches are completed answer tuples; elements belonging to
	// referenced content carry the functional document's key.
	Matches []twigjoin.Match
	// Docs are the candidate host documents (for Brutal, the
	// completeness set the strategy would contact).
	Docs []sid.DocKey
	// RevLookups counts reverse-pointer fetches (the cost Figure 9's
	// in-lining comparison highlights).
	RevLookups int
	// Elapsed is the total query time.
	Elapsed time.Duration
}

func encodeDocKey(k sid.DocKey) []byte {
	buf := make([]byte, 8)
	buf[0] = byte(k.Peer >> 24)
	buf[1] = byte(k.Peer >> 16)
	buf[2] = byte(k.Peer >> 8)
	buf[3] = byte(k.Peer)
	buf[4] = byte(k.Doc >> 24)
	buf[5] = byte(k.Doc >> 16)
	buf[6] = byte(k.Doc >> 8)
	buf[7] = byte(k.Doc)
	return buf
}

func decodeDocKey(b []byte) (sid.DocKey, error) {
	if len(b) != 8 {
		return sid.DocKey{}, fmt.Errorf("fundex: malformed doc key (%d bytes)", len(b))
	}
	return sid.DocKey{
		Peer: sid.PeerID(b[0])<<24 | sid.PeerID(b[1])<<16 | sid.PeerID(b[2])<<8 | sid.PeerID(b[3]),
		Doc:  sid.DocID(b[4])<<24 | sid.DocID(b[5])<<16 | sid.DocID(b[6])<<8 | sid.DocID(b[7]),
	}, nil
}
