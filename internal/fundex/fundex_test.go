package fundex

import (
	"fmt"
	"reflect"
	"testing"

	"kadop/internal/dht"
	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/store"
)

// corpus models the INEX-HCO-like setting of Section 6: publication
// documents referencing separate abstract files.
type corpus struct {
	hosts map[string]string // uri -> xml
	files map[string]string // referenced uri -> xml
}

func inexCorpus(n int) *corpus {
	c := &corpus{hosts: map[string]string{}, files: map[string]string{}}
	for i := 0; i < n; i++ {
		kind := "abstract"
		if i%3 == 2 {
			kind = "appendix" // a second include "type" for the
			// representative-data-indexing comparison
		}
		title := fmt.Sprintf("paper %d about storage", i)
		body := fmt.Sprintf("generic words paper %d", i)
		if i == 4 || i == 10 {
			title = fmt.Sprintf("a system paper %d", i)
			body = fmt.Sprintf("a fine interface study %d", i)
		}
		fileURI := fmt.Sprintf("%s%d.xml", kind, i)
		c.files[fileURI] = fmt.Sprintf(`<%s>%s</%s>`, kind, body, kind)
		c.hosts[fmt.Sprintf("host%d.xml", i)] = fmt.Sprintf(`<?xml version="1.0"?>
<!DOCTYPE article [
<!ENTITY inc SYSTEM "%s">
]>
<article><title>%s</title>&inc;</article>`, fileURI, title)
	}
	return c
}

func (c *corpus) resolver() Resolver {
	return func(uri string) ([]byte, error) {
		s, ok := c.files[uri]
		if !ok {
			return nil, fmt.Errorf("no file %q", uri)
		}
		return []byte(s), nil
	}
}

// deploy builds a cluster of peers with fundex indexers in a mode and
// publishes the corpus.
func deploy(t testing.TB, co *corpus, mode Mode, peers int) []*Indexer {
	t.Helper()
	net := dht.NewNetwork()
	var nodes []*dht.Node
	for i := 0; i < peers; i++ {
		nd, err := dht.NewNode(net.NewEndpoint(), store.NewMem(), dht.Config{})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for i := 1; i < peers; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		nd.Lookup(nd.Self().ID)
	}
	var ixs []*Indexer
	for i, nd := range nodes {
		p, err := kadop.NewPeer(nd, sid.PeerID(i+1), kadop.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ixs = append(ixs, New(p, mode, co.resolver()))
	}
	for _, ix := range ixs {
		if err := ix.Peer().Announce(); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	for uri, xml := range co.hosts {
		if _, err := ixs[i%len(ixs)].Publish([]byte(xml), uri); err != nil {
			t.Fatalf("publish %s in mode %v: %v", uri, mode, err)
		}
		i++
	}
	return ixs
}

const inexQuery = `//article[contains(.//title,'system')][contains(.//abstract,'interface')]`

// hostDocs filters an answer's documents to non-functional ones.
func hostDocs(docs []sid.DocKey) []sid.DocKey {
	var out []sid.DocKey
	for _, d := range docs {
		if !IsFunctionalDoc(d) {
			out = append(out, d)
		}
	}
	return out
}

func answerURIs(t *testing.T, ix *Indexer, ans *Answer) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, d := range hostDocs(ans.Docs) {
		uri, err := ix.Peer().URI(d)
		if err != nil {
			t.Fatalf("URI(%v): %v", d, err)
		}
		out[uri] = true
	}
	return out
}

func TestInlineFindsCrossBoundaryAnswers(t *testing.T) {
	co := inexCorpus(15)
	ixs := deploy(t, co, Inline, 6)
	ans, err := ixs[1].Query(pattern.MustParse(inexQuery))
	if err != nil {
		t.Fatal(err)
	}
	got := answerURIs(t, ixs[1], ans)
	want := map[string]bool{"host4.xml": true, "host10.xml": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inline answers = %v, want %v", got, want)
	}
}

func TestNaiveMissesIntensionalAnswers(t *testing.T) {
	co := inexCorpus(15)
	ixs := deploy(t, co, Naive, 6)
	ans, err := ixs[0].Query(pattern.MustParse(inexQuery))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Matches) != 0 {
		t.Fatalf("naive mode should miss answers behind includes, got %d", len(ans.Matches))
	}
}

func TestBrutalOverApproximates(t *testing.T) {
	co := inexCorpus(15)
	ixs := deploy(t, co, Brutal, 6)
	ans, err := ixs[0].Query(pattern.MustParse(inexQuery))
	if err != nil {
		t.Fatal(err)
	}
	// Complete at document level: both true answers among candidates...
	got := answerURIs(t, ixs[0], ans)
	if !got["host4.xml"] || !got["host10.xml"] {
		t.Fatalf("brutal candidates must cover true answers, got %v", got)
	}
	// ...but grossly imprecise: every intensional document is contacted.
	if len(got) < 14 {
		t.Fatalf("brutal should contact (almost) all docs, got %d", len(got))
	}
}

func TestFundexCompleteAndPrecise(t *testing.T) {
	co := inexCorpus(15)
	ixs := deploy(t, co, Fundex, 6)
	ans, err := ixs[2].Query(pattern.MustParse(inexQuery))
	if err != nil {
		t.Fatal(err)
	}
	got := answerURIs(t, ixs[2], ans)
	want := map[string]bool{"host4.xml": true, "host10.xml": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fundex answers = %v, want %v", got, want)
	}
	if len(ans.Matches) == 0 {
		t.Fatal("fundex produced no completed tuples")
	}
	if ans.RevLookups == 0 {
		t.Fatal("fundex should have chased reverse pointers")
	}
	// Completed tuples mix host elements and functional elements.
	foundFunctional := false
	for _, m := range ans.Matches {
		for _, p := range m.Postings {
			if IsFunctionalDoc(p.Key()) {
				foundFunctional = true
			}
		}
	}
	if !foundFunctional {
		t.Error("completed tuples should reference functional elements")
	}
}

func TestRepresentativeCompleteAndPrecise(t *testing.T) {
	co := inexCorpus(15)
	ixs := deploy(t, co, Representative, 6)
	ans, err := ixs[3].Query(pattern.MustParse(inexQuery))
	if err != nil {
		t.Fatal(err)
	}
	got := answerURIs(t, ixs[3], ans)
	want := map[string]bool{"host4.xml": true, "host10.xml": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("representative answers = %v, want %v", got, want)
	}
}

func TestRepresentativePrunesByStructure(t *testing.T) {
	// A purely structural query over the included type: the skeleton
	// answers it from the host index without touching words.
	co := inexCorpus(15)
	ixs := deploy(t, co, Representative, 6)
	ans, err := ixs[0].Query(pattern.MustParse(`//article[//appendix]//title`))
	if err != nil {
		t.Fatal(err)
	}
	got := answerURIs(t, ixs[0], ans)
	// Docs 2, 5, 8, 11, 14 have appendix-type includes.
	if len(got) != 5 {
		t.Fatalf("appendix-typed hosts = %v", got)
	}
}

func TestFunctionalDocIndexedOnce(t *testing.T) {
	// Two hosts referencing the same file: the functional document is
	// materialised and indexed exactly once.
	co := &corpus{
		hosts: map[string]string{
			"h1.xml": `<!DOCTYPE a [<!ENTITY s SYSTEM "shared.xml">]><article><title>one system</title>&s;</article>`,
			"h2.xml": `<!DOCTYPE a [<!ENTITY s SYSTEM "shared.xml">]><article><title>two system</title>&s;</article>`,
		},
		files: map[string]string{
			"shared.xml": `<abstract>a common interface text</abstract>`,
		},
	}
	ixs := deploy(t, co, Fundex, 5)
	// The functional document lives at exactly one peer.
	holders := 0
	for _, ix := range ixs {
		if _, _, ok := ix.Peer().Document(fid("shared.xml")); ok {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("functional doc held by %d peers, want 1", holders)
	}
	// Both hosts are answers, completed through the shared file.
	ans, err := ixs[0].Query(pattern.MustParse(inexQuery))
	if err != nil {
		t.Fatal(err)
	}
	got := answerURIs(t, ixs[0], ans)
	if !got["h1.xml"] || !got["h2.xml"] || len(got) != 2 {
		t.Fatalf("shared-file answers = %v", got)
	}
}

func TestWholePatternInsideReference(t *testing.T) {
	// The entire pattern matches inside the referenced file: the host
	// documents still surface as answers through Rev.
	co := &corpus{
		hosts: map[string]string{
			"h1.xml": `<!DOCTYPE a [<!ENTITY s SYSTEM "f.xml">]><wrapper>&s;</wrapper>`,
		},
		files: map[string]string{
			"f.xml": `<record><name>inner match</name></record>`,
		},
	}
	ixs := deploy(t, co, Fundex, 4)
	ans, err := ixs[0].Query(pattern.MustParse(`//record//name[. contains "inner"]`))
	if err != nil {
		t.Fatal(err)
	}
	got := answerURIs(t, ixs[0], ans)
	if !got["h1.xml"] {
		t.Fatalf("whole-pattern-in-reference answers = %v", got)
	}
}

func TestInlineExpandCycleDetected(t *testing.T) {
	co := &corpus{
		hosts: map[string]string{
			"h.xml": `<!DOCTYPE a [<!ENTITY x SYSTEM "a.xml">]><doc>&x;</doc>`,
		},
		files: map[string]string{
			"a.xml": `<!DOCTYPE a [<!ENTITY y SYSTEM "b.xml">]><a>&y;</a>`,
			"b.xml": `<!DOCTYPE b [<!ENTITY z SYSTEM "a.xml">]><b>&z;</b>`,
		},
	}
	net := dht.NewNetwork()
	nd, err := dht.NewNode(net.NewEndpoint(), store.NewMem(), dht.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := kadop.NewPeer(nd, 1, kadop.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Announce(); err != nil {
		t.Fatal(err)
	}
	ix := New(p, Inline, co.resolver())
	if _, err := ix.Publish([]byte(co.hosts["h.xml"]), "h.xml"); err == nil {
		t.Fatal("reference cycle should be detected")
	}
}

func TestFidDisjointFromSequentialIDs(t *testing.T) {
	if !IsFunctionalDoc(sid.DocKey{Peer: 1, Doc: fid("x.xml")}) {
		t.Error("fid must carry the functional bit")
	}
	if IsFunctionalDoc(sid.DocKey{Peer: 1, Doc: 12345}) {
		t.Error("sequential ids must not look functional")
	}
}

func TestDocKeyCodec(t *testing.T) {
	k := sid.DocKey{Peer: 0x01020304, Doc: 0xfafbfcfd}
	got, err := decodeDocKey(encodeDocKey(k))
	if err != nil || got != k {
		t.Fatalf("round trip: %v (%v)", got, err)
	}
	if _, err := decodeDocKey([]byte{1, 2}); err == nil {
		t.Error("short key should fail")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{Naive, Brutal, Fundex, Inline, Representative} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
}
