package fundex

import (
	"fmt"
	"sort"
	"time"

	"kadop/internal/kadop"
	"kadop/internal/pattern"
	"kadop/internal/sid"
	"kadop/internal/twigjoin"
	"kadop/internal/xmltree"
)

// Query evaluates a tree-pattern query over the collection, completing
// matches that cross a reference boundary (Section 6). The returned
// matches identify every answer document with full recall under the
// Fundex, Inline and Representative modes; Naive misses intensional
// answers and Brutal over-approximates at the document level.
//
// Completion handles matches that cross one reference boundary (one
// incomplete variable per answer), which covers includes used for
// content factoring as in the paper's experiments; several boundaries
// in a single answer would require the multi-way Rev join the paper
// sketches and is left out.
func (ix *Indexer) Query(q *pattern.Query) (*Answer, error) {
	start := time.Now()
	ans := &Answer{}

	res, err := ix.peer.Query(q, kadop.QueryOptions{})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	add := func(m twigjoin.Match) {
		key := fingerprint(m)
		if !seen[key] {
			seen[key] = true
			ans.Matches = append(ans.Matches, m)
		}
	}

	// Host-side matches are final; whole-pattern matches inside a
	// functional document complete through Rev (the pattern holds in
	// every document that references it).
	funWhole := map[sid.DocKey][]twigjoin.Match{}
	for _, m := range res.Matches {
		if IsFunctionalDoc(m.Doc) {
			funWhole[m.Doc] = append(funWhole[m.Doc], m)
		} else {
			add(m)
			ans.Docs = appendDoc(ans.Docs, m.Doc)
		}
	}

	switch ix.mode {
	case Naive, Inline:
		ans.Elapsed = time.Since(start)
		return ans, nil
	case Brutal:
		// Complete at the document level: any document holding
		// intensional data may contain an answer.
		incl, err := ix.peer.Node().Get("l:" + xmltree.IncludeLabel)
		if err != nil {
			return nil, err
		}
		for _, p := range incl {
			ans.Docs = appendDoc(ans.Docs, p.Key())
		}
		sortDocs(ans.Docs)
		ans.Elapsed = time.Since(start)
		return ans, nil
	}

	// Fundex / Representative: complete incomplete matches.
	for fkey, ms := range funWhole {
		occ, err := ix.peer.Node().Get(revKey(fkey))
		if err != nil {
			return nil, err
		}
		ans.RevLookups++
		for _, m := range ms {
			for _, o := range occ {
				host := o.Key()
				hm := twigjoin.Match{Doc: host, Postings: m.Postings}
				add(hm)
				ans.Docs = appendDoc(ans.Docs, host)
			}
		}
	}

	splits := ix.buildSplits(q)
	for _, sp := range splits {
		if err := ix.completeSplit(q, sp, add, ans); err != nil {
			return nil, err
		}
	}
	sortDocs(ans.Docs)
	ans.Elapsed = time.Since(start)
	return ans, nil
}

// split is one way of cutting the query at a reference boundary: the
// sub-pattern qv is evaluated on functional documents, qrest on hosts,
// and the results join through the Rev occurrences under the anchor.
type split struct {
	qv, qrest  *pattern.Query
	vPos       []int // original pre-order positions of qv's nodes
	restPos    []int // original pre-order positions of qrest's nodes
	anchorRest int   // index in qrest's pre-order of the anchor node
	axis       pattern.Axis
	keepV      bool // Representative: v stays in qrest (skeleton match)
}

// buildSplits enumerates the single-boundary splits of q.
func (ix *Indexer) buildSplits(q *pattern.Query) []*split {
	nodes := q.Nodes()
	pos := map[*pattern.Node]int{}
	parentOf := map[*pattern.Node]*pattern.Node{}
	for i, n := range nodes {
		pos[n] = i
		for _, c := range n.Children {
			parentOf[c] = n
		}
	}
	var out []*split
	for _, v := range nodes[1:] {
		u := parentOf[v]
		if v.IsWildcard() {
			continue
		}
		if ix.mode == Representative && v.Term.Kind == xmltree.Word && u != q.Root {
			// Under representative indexing the skeleton of the referenced
			// content is part of the host index, so a word below a label
			// node completes through the keepV split at that label; a
			// separate word-edge split would redo the same work. Words
			// hanging directly off the root keep their split (the root
			// cannot be cut).
			continue
		}
		qv, vPos := cloneSubtree(v, pos)
		if qv.Validate() != nil {
			continue
		}
		keepV := ix.mode == Representative && v.Term.Kind == xmltree.Label
		qrest, restPos := cloneWithout(q.Root, v, keepV, pos)
		if qrest == nil || qrest.Validate() != nil {
			continue
		}
		anchor := u
		if keepV {
			anchor = v
		}
		anchorRest := -1
		for i, p := range restPos {
			if p == pos[anchor] {
				anchorRest = i
			}
		}
		if anchorRest < 0 {
			continue
		}
		out = append(out, &split{
			qv: qv, qrest: qrest, vPos: vPos, restPos: restPos,
			anchorRest: anchorRest, axis: v.Axis, keepV: keepV,
		})
	}
	return out
}

// completeSplit evaluates one split and emits the joined answers. The
// host-side rest pattern is evaluated first: when nothing matches it —
// which, under representative-data indexing, includes every host whose
// referenced content has the wrong "type" for the split — the
// functional-document evaluation and the reverse-pointer chasing are
// skipped entirely (the pruning Section 6 credits to representative
// instances).
func (ix *Indexer) completeSplit(q *pattern.Query, sp *split, add func(twigjoin.Match), ans *Answer) error {
	resRest, err := ix.peer.Query(sp.qrest, kadop.QueryOptions{})
	if err != nil {
		return err
	}
	hosts := 0
	for _, mr := range resRest.Matches {
		if !IsFunctionalDoc(mr.Doc) {
			hosts++
		}
	}
	if hosts == 0 {
		return nil
	}
	resV, err := ix.peer.Query(sp.qv, kadop.QueryOptions{})
	if err != nil {
		return err
	}
	byFid := map[sid.DocKey][]twigjoin.Match{}
	for _, m := range resV.Matches {
		if IsFunctionalDoc(m.Doc) {
			byFid[m.Doc] = append(byFid[m.Doc], m)
		}
	}
	if len(byFid) == 0 {
		return nil
	}
	// Reverse pointers: where is each matching functional doc used?
	occByHost := map[sid.DocKey][]revOcc{}
	for fkey := range byFid {
		occ, err := ix.peer.Node().Get(revKey(fkey))
		if err != nil {
			return err
		}
		ans.RevLookups++
		for _, o := range occ {
			occByHost[o.Key()] = append(occByHost[o.Key()], revOcc{fid: fkey, at: o})
		}
	}
	width := len(q.Nodes())
	for _, mr := range resRest.Matches {
		if IsFunctionalDoc(mr.Doc) {
			continue
		}
		occs := occByHost[mr.Doc]
		if len(occs) == 0 {
			continue
		}
		anchor := mr.Postings[sp.anchorRest]
		for _, oc := range occs {
			if !anchorAdmits(sp, anchor, oc.at) {
				continue
			}
			for _, mv := range byFid[oc.fid] {
				if sp.axis == pattern.Child && !sp.keepV && mv.Postings[0].SID.Level != 0 {
					// A child-axis boundary is satisfied only by the root of
					// the referenced content.
					continue
				}
				m := twigjoin.Match{Doc: mr.Doc, Postings: make([]sid.Posting, width)}
				for i, p := range sp.restPos {
					m.Postings[p] = mr.Postings[i]
				}
				for i, p := range sp.vPos {
					m.Postings[p] = mv.Postings[i]
				}
				add(m)
				ans.Docs = appendDoc(ans.Docs, mr.Doc)
			}
		}
	}
	return nil
}

type revOcc struct {
	fid sid.DocKey
	at  sid.Posting
}

// anchorAdmits checks that the reference occurrence can supply the
// split-off sub-pattern below the anchor element.
func anchorAdmits(sp *split, anchor, occ sid.Posting) bool {
	if !anchor.SameDoc(occ) {
		return false
	}
	if sp.keepV {
		// The anchor matched the content skeleton: it must be the
		// skeleton root (the occurrence itself) or lie inside it.
		return anchor.SID == occ.SID || occ.SID.Contains(anchor.SID)
	}
	switch sp.axis {
	case pattern.Child:
		return anchor.SID.ParentOf(occ.SID)
	default: // Descendant, DescendantOrSelf
		return anchor.SID.Contains(occ.SID)
	}
}

// helpers -------------------------------------------------------------

// cloneSubtree copies the pattern subtree rooted at v and reports the
// original pre-order positions of its nodes, in the clone's pre-order.
func cloneSubtree(v *pattern.Node, pos map[*pattern.Node]int) (*pattern.Query, []int) {
	var positions []int
	var rec func(n *pattern.Node) *pattern.Node
	rec = func(n *pattern.Node) *pattern.Node {
		positions = append(positions, pos[n])
		c := &pattern.Node{Term: n.Term, Axis: n.Axis}
		for _, ch := range n.Children {
			c.Children = append(c.Children, rec(ch))
		}
		return c
	}
	root := rec(v)
	root.Axis = pattern.Descendant
	return &pattern.Query{Root: root}, positions
}

// cloneWithout copies the whole pattern, cutting at node v: the
// v-subtree is dropped (keepV=false) or v is kept childless
// (keepV=true). It reports the original positions kept, in clone
// pre-order; nil if v was the root.
func cloneWithout(root, v *pattern.Node, keepV bool, pos map[*pattern.Node]int) (*pattern.Query, []int) {
	if root == v {
		return nil, nil
	}
	var positions []int
	var rec func(n *pattern.Node) *pattern.Node
	rec = func(n *pattern.Node) *pattern.Node {
		positions = append(positions, pos[n])
		c := &pattern.Node{Term: n.Term, Axis: n.Axis}
		if n == v {
			return c // childless
		}
		for _, ch := range n.Children {
			if ch == v && !keepV {
				continue
			}
			c.Children = append(c.Children, rec(ch))
		}
		return c
	}
	return &pattern.Query{Root: rec(root)}, positions
}

func fingerprint(m twigjoin.Match) string {
	s := fmt.Sprintf("%v:", m.Doc)
	for _, p := range m.Postings {
		s += p.String()
	}
	return s
}

func appendDoc(docs []sid.DocKey, d sid.DocKey) []sid.DocKey {
	for _, x := range docs {
		if x == d {
			return docs
		}
	}
	return append(docs, d)
}

func sortDocs(docs []sid.DocKey) {
	sort.Slice(docs, func(i, j int) bool { return docs[i].Compare(docs[j]) < 0 })
}
