package stats

import (
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kadop/internal/metrics"
)

func TestPublishAccumulates(t *testing.T) {
	r := NewRegistry()
	r.ObservePublish("l:author", 3, 9)
	r.ObservePublish("l:author", 2, 4)
	ts, ok := r.Term("l:author")
	if !ok {
		t.Fatal("term missing")
	}
	if ts.Docs != 5 || ts.Postings != 13 || ts.Bytes != 13*metrics.PostingWireBytes {
		t.Errorf("term stat = %+v", ts)
	}
	if got := ts.MeanPostingsPerDoc(); math.Abs(got-13.0/5) > 1e-9 {
		t.Errorf("mean postings/doc = %v", got)
	}
	if _, ok := r.Term("l:missing"); ok {
		t.Error("missing term reported present")
	}
}

func TestSelectivityConverges(t *testing.T) {
	r := NewRegistry()
	edges := []Edge{{Parent: "l:article", Axis: "//", Child: "l:author"}}
	// A stable workload: 100 rarest-term postings, 25 matches.
	for i := 0; i < 20; i++ {
		r.ObserveQuery(100, 25, edges)
	}
	est := r.Estimate(map[string]int64{"l:article": 500, "l:author": 100}, 4, edges)
	if est.Postings != 600 || est.Bytes != 600*metrics.PostingWireBytes || est.Blocks != 4 {
		t.Errorf("estimate inputs = %+v", est)
	}
	if math.Abs(est.Matches-25) > 1.0 {
		t.Errorf("est matches = %v, want ~25", est.Matches)
	}
	// An unseen shape falls back to the rarest-term upper bound.
	cold := NewRegistry().Estimate(map[string]int64{"a": 10, "b": 50}, 1, edges)
	if cold.Matches != 10 {
		t.Errorf("cold estimate = %v, want 10", cold.Matches)
	}
}

func TestErrorHistogramAndQuantile(t *testing.T) {
	r := NewRegistry()
	if q := r.ErrorQuantile(0.95); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	for _, e := range []float64{0.005, 0.03, 0.03, 0.15} {
		r.ObserveError(e)
	}
	// Garbage observations are dropped, not recorded.
	r.ObserveError(math.NaN())
	r.ObserveError(math.Inf(1))
	r.ObserveError(-1)
	if q := r.ErrorQuantile(0.5); q != 0.05 {
		t.Errorf("p50 = %v, want 0.05 (bucket upper bound)", q)
	}
	if q := r.ErrorQuantile(0.95); q != 0.2 {
		t.Errorf("p95 = %v, want 0.2", q)
	}
}

func TestWritePromShape(t *testing.T) {
	r := NewRegistry()
	r.ObservePublish(`l:we"ird\term`+"\n", 1, 2)
	r.ObserveQuery(10, 5, []Edge{{Parent: "a", Axis: "/", Child: "b"}})
	r.ObserveError(0.3)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"kadop_stats_terms 1",
		`kadop_stats_term_docs{term="l:we\"ird\\term\n"} 1`,
		`kadop_stats_term_postings{term="l:we\"ird\\term\n"} 2`,
		"kadop_stats_queries_observed_total 1",
		`kadop_stats_est_error_bucket{le="0.5"} 1`,
		`kadop_stats_est_error_bucket{le="+Inf"} 1`,
		"kadop_stats_est_error_count 1",
		"# TYPE kadop_stats_est_error histogram",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	r := NewRegistry()
	r.ObservePublish("l:author", 4, 12)
	r.ObserveQuery(100, 30, []Edge{{Parent: "x", Axis: "//", Child: "y"}})
	r.ObserveError(0.07)
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.Load(path); err != nil {
		t.Fatal(err)
	}
	a, b := r.Snapshot(), r2.Snapshot()
	if len(a.Terms) != len(b.Terms) || a.Terms["l:author"] != b.Terms["l:author"] {
		t.Errorf("terms: %+v vs %+v", a.Terms, b.Terms)
	}
	if a.Queries != b.Queries || a.ErrSum != b.ErrSum {
		t.Errorf("queries/errsum diverged: %+v vs %+v", a, b)
	}
	if math.Abs(a.Sel["x\x00//\x00y"]-b.Sel["x\x00//\x00y"]) > 1e-12 {
		t.Errorf("selectivities diverged")
	}
	// Loading a missing file is a silent no-op.
	if err := NewRegistry().Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatal(err)
	}
}

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	r.ObservePublish("t", 1, 1)
	r.ObserveQuery(1, 1, []Edge{{Parent: "a", Axis: "/", Child: "b"}})
	r.ObserveError(0.5)
	if _, ok := r.Term("t"); ok {
		t.Error("nil registry reported a term")
	}
	if q := r.Queries(); q != 0 {
		t.Errorf("nil queries = %d", q)
	}
	if err := r.Save(filepath.Join(t.TempDir(), "x.json")); err != nil {
		t.Fatal(err)
	}
	est := r.Estimate(map[string]int64{"a": 5}, 1, nil)
	if est.Matches != 5 {
		t.Errorf("nil estimate matches = %v, want 5", est.Matches)
	}
}

// TestConcurrentRegistry hammers every mutating and reading path at
// once; under -race it proves the registry needs no external locking.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	edges := []Edge{{Parent: "a", Axis: "/", Child: "b"}}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.ObservePublish("l:author", 1, 3)
				r.ObserveQuery(10, 2, edges)
				r.ObserveError(0.1)
				r.Term("l:author")
				r.Estimate(map[string]int64{"a": 10}, 1, edges)
				r.ErrorQuantile(0.95)
				var b strings.Builder
				_ = r.WriteProm(&b)
			}
		}()
	}
	wg.Wait()
	if got := r.Queries(); got != 4*500 {
		t.Errorf("queries = %d, want 2000", got)
	}
}
