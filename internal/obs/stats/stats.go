// Package stats maintains the per-peer statistics registry of the
// query cost plane: per-term cardinalities collected on the publish
// path and join selectivities learned from completed-query actuals.
// Together they let a query peer predict what a query will cost —
// postings scanned, blocks and bytes transferred, index matches —
// before fetching a single posting, which is the substrate any
// cost-based rewriting (materialized views à la ViP2P, native planners
// à la RadegastXDB) has to stand on.
//
// Cardinalities are exact sums over everything this peer published.
// Selectivities are exponentially-weighted moving averages per query
// edge (parent term, axis, child term): each finished query observes
// the ratio of index matches to its rarest term's cardinality and
// spreads that reduction uniformly over its edges, so repeated query
// shapes converge to stable per-edge factors. Estimation error is
// recorded into a fixed-bound histogram whose buckets merge across
// peers exactly like the latency histograms (internal/obs/cluster).
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"

	"kadop/internal/metrics"
)

// ErrBounds are the upper bounds of the relative-error histogram
// buckets (an implicit +Inf bucket follows the last). Fixed bounds
// keep the buckets mergeable across peers.
var ErrBounds = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}

// SelAlpha is the EWMA smoothing factor for selectivity updates: high
// enough to converge within a short warmup, low enough that one
// outlier query does not erase the history.
const SelAlpha = 0.3

// TermStat aggregates what this peer published under one term.
type TermStat struct {
	// Docs is the term's document frequency: distinct documents this
	// peer published containing the term.
	Docs int64 `json:"docs"`
	// Postings is the total posting count published under the term.
	Postings int64 `json:"postings"`
	// Bytes is Postings at wire width.
	Bytes int64 `json:"bytes"`
}

// MeanPostingsPerDoc is the term's average positional fan-out.
func (t TermStat) MeanPostingsPerDoc() float64 {
	if t.Docs == 0 {
		return 0
	}
	return float64(t.Postings) / float64(t.Docs)
}

// Edge identifies one edge of a tree-pattern query by its endpoint
// index terms and axis — the unit selectivity is learned at.
type Edge struct {
	Parent string
	Axis   string
	Child  string
}

func (e Edge) key() string { return e.Parent + "\x00" + e.Axis + "\x00" + e.Child }

// Estimate is a pre-execution cost prediction for one query.
type Estimate struct {
	// Postings is the predicted join input: the sum of the query
	// terms' (planned or registered) posting counts.
	Postings int64 `json:"postings"`
	// Blocks is the predicted number of block transfers.
	Blocks int64 `json:"blocks"`
	// Bytes is Postings at wire width.
	Bytes int64 `json:"bytes"`
	// Matches is the predicted index-match count: the rarest term's
	// cardinality scaled by the learned per-edge selectivities.
	Matches float64 `json:"matches"`
}

// Registry is one peer's statistics store. All methods are safe for
// concurrent use; a nil *Registry is inert (observations are dropped,
// estimates are unavailable), so callers can thread it unconditionally.
type Registry struct {
	mu      sync.Mutex
	terms   map[string]*TermStat
	sel     map[string]float64
	queries int64
	errN    []int64 // per-bucket counts, len(ErrBounds)+1 (+Inf last)
	errSum  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		terms: map[string]*TermStat{},
		sel:   map[string]float64{},
		errN:  make([]int64, len(ErrBounds)+1),
	}
}

// ObservePublish records one publish batch for a term: how many
// distinct documents and postings it contributed. Called at the
// publishing peer, so summing registries across the cluster yields the
// exact global cardinalities with no double counting.
func (r *Registry) ObservePublish(term string, docs, postings int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.terms[term]
	if t == nil {
		t = &TermStat{}
		r.terms[term] = t
	}
	t.Docs += docs
	t.Postings += postings
	t.Bytes += postings * metrics.PostingWireBytes
}

// Term returns the registered statistics for a term.
func (r *Registry) Term(term string) (TermStat, bool) {
	if r == nil {
		return TermStat{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.terms[term]
	if !ok {
		return TermStat{}, false
	}
	return *t, true
}

// Estimate predicts a query's cost from per-term posting counts (from
// DPP fetch plans or the local registry; index order matches edges'
// terms) and the learned edge selectivities. Unknown edges default to
// selectivity 1, so a never-seen shape predicts the rarest term's
// cardinality — the classical upper bound.
func (r *Registry) Estimate(counts map[string]int64, blocks int64, edges []Edge) Estimate {
	var est Estimate
	est.Blocks = blocks
	minCount := int64(math.MaxInt64)
	for _, n := range counts {
		est.Postings += n
		if n < minCount {
			minCount = n
		}
	}
	if len(counts) == 0 {
		minCount = 0
	}
	est.Bytes = est.Postings * metrics.PostingWireBytes
	est.Matches = float64(minCount)
	if r != nil {
		r.mu.Lock()
		for _, e := range edges {
			if s, ok := r.sel[e.key()]; ok {
				est.Matches *= s
			}
		}
		r.mu.Unlock()
	}
	return est
}

// ObserveQuery trains the edge selectivities from a completed query's
// actuals: the total reduction from the rarest input to the index
// matches, spread uniformly over the query's edges (the per-edge
// factor is the E-th root of the total). Queries with no edges or no
// input carry no signal and are skipped.
func (r *Registry) ObserveQuery(minCount int64, matches int64, edges []Edge) {
	if r == nil || len(edges) == 0 || minCount <= 0 {
		return
	}
	total := float64(matches) / float64(minCount)
	perEdge := math.Pow(total, 1/float64(len(edges)))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries++
	for _, e := range edges {
		k := e.key()
		if old, ok := r.sel[k]; ok {
			r.sel[k] = (1-SelAlpha)*old + SelAlpha*perEdge
		} else {
			r.sel[k] = perEdge
		}
	}
}

// ObserveError records one query's cardinality-estimation relative
// error |est-actual| / max(actual, 1).
func (r *Registry) ObserveError(relErr float64) {
	if r == nil || math.IsNaN(relErr) || math.IsInf(relErr, 0) || relErr < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := len(ErrBounds)
	for b, ub := range ErrBounds {
		if relErr <= ub {
			i = b
			break
		}
	}
	r.errN[i]++
	r.errSum += relErr
}

// Queries returns how many completed queries trained the registry.
func (r *Registry) Queries() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries
}

// ErrorQuantile interpolates the q-quantile of the recorded relative
// errors from the histogram buckets (0 when nothing was recorded).
func (r *Registry) ErrorQuantile(q float64) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, n := range r.errN {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lo := 0.0
	for i, n := range r.errN {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			ub := lo
			if i < len(ErrBounds) {
				ub = ErrBounds[i]
			}
			return ub
		}
		cum += n
		if i < len(ErrBounds) {
			lo = ErrBounds[i]
		}
	}
	return ErrBounds[len(ErrBounds)-1]
}

// Export is the JSON snapshot served at /debug/stats and the
// persistence layout.
type Export struct {
	Terms      map[string]TermStat `json:"terms"`
	Sel        map[string]float64  `json:"selectivities,omitempty"`
	Queries    int64               `json:"queries_observed"`
	ErrBuckets []int64             `json:"est_error_buckets"`
	ErrSum     float64             `json:"est_error_sum"`
}

// Snapshot returns a deep copy of the registry state.
func (r *Registry) Snapshot() Export {
	ex := Export{Terms: map[string]TermStat{}, Sel: map[string]float64{}}
	if r == nil {
		ex.ErrBuckets = make([]int64, len(ErrBounds)+1)
		return ex
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for t, s := range r.terms {
		ex.Terms[t] = *s
	}
	for k, v := range r.sel {
		ex.Sel[k] = v
	}
	ex.Queries = r.queries
	ex.ErrBuckets = append([]int64(nil), r.errN...)
	ex.ErrSum = r.errSum
	return ex
}

// topTerms is the per-peer cap on exposed term series: the exposition
// stays bounded no matter how many terms a peer publishes, and the
// hottest (largest) terms are the ones cluster aggregation cares
// about.
const topTerms = 64

// WriteProm renders the registry as kadop_stats_* series in the
// Prometheus text exposition format, matching the style of
// metrics.WriteProm so the admin endpoint can concatenate them.
func (r *Registry) WriteProm(w io.Writer) error {
	ex := r.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP kadop_stats_terms Distinct terms tracked by the statistics registry.\n")
	fmt.Fprintf(&b, "# TYPE kadop_stats_terms gauge\n")
	fmt.Fprintf(&b, "kadop_stats_terms %d\n", len(ex.Terms))

	names := make([]string, 0, len(ex.Terms))
	for t := range ex.Terms {
		names = append(names, t)
	}
	sort.Slice(names, func(i, j int) bool {
		a, bb := ex.Terms[names[i]], ex.Terms[names[j]]
		if a.Bytes != bb.Bytes {
			return a.Bytes > bb.Bytes
		}
		return names[i] < names[j]
	})
	if len(names) > topTerms {
		names = names[:topTerms]
	}
	sort.Strings(names) // deterministic output order within the cap
	writeTermGauge := func(metric, help string, val func(TermStat) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
		for _, t := range names {
			fmt.Fprintf(&b, "%s{term=\"%s\"} %d\n", metric, escapeLabel(t), val(ex.Terms[t]))
		}
	}
	if len(names) > 0 {
		writeTermGauge("kadop_stats_term_docs",
			"Document frequency of this peer's largest published terms.",
			func(t TermStat) int64 { return t.Docs })
		writeTermGauge("kadop_stats_term_postings",
			"Postings published under this peer's largest terms.",
			func(t TermStat) int64 { return t.Postings })
		writeTermGauge("kadop_stats_term_bytes",
			"Posting bytes published under this peer's largest terms.",
			func(t TermStat) int64 { return t.Bytes })
	}

	fmt.Fprintf(&b, "# HELP kadop_stats_queries_observed_total Completed queries that trained the selectivity EWMAs.\n")
	fmt.Fprintf(&b, "# TYPE kadop_stats_queries_observed_total counter\n")
	fmt.Fprintf(&b, "kadop_stats_queries_observed_total %d\n", ex.Queries)

	fmt.Fprintf(&b, "# HELP kadop_stats_est_error Cardinality-estimation relative error per query.\n")
	fmt.Fprintf(&b, "# TYPE kadop_stats_est_error histogram\n")
	var cum int64
	var count int64
	for _, n := range ex.ErrBuckets {
		count += n
	}
	for i, ub := range ErrBounds {
		cum += ex.ErrBuckets[i]
		fmt.Fprintf(&b, "kadop_stats_est_error_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	fmt.Fprintf(&b, "kadop_stats_est_error_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(&b, "kadop_stats_est_error_sum %g\n", ex.ErrSum)
	fmt.Fprintf(&b, "kadop_stats_est_error_count %d\n", count)
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Save atomically persists the registry next to the peer's other
// durable state (write temp, fsync, rename — same discipline as the
// DPP root file).
func (r *Registry) Save(path string) error {
	if r == nil || path == "" {
		return nil
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("stats: save: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("stats: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("stats: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("stats: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("stats: save: %w", err)
	}
	return nil
}

// Load restores a saved registry (no-op when the file does not exist).
func (r *Registry) Load(path string) error {
	if r == nil || path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("stats: load %s: %w", path, err)
	}
	var ex Export
	if err := json.Unmarshal(data, &ex); err != nil {
		return fmt.Errorf("stats: load %s: %w", path, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for t, s := range ex.Terms {
		s := s
		r.terms[t] = &s
	}
	for k, v := range ex.Sel {
		r.sel[k] = v
	}
	r.queries = ex.Queries
	if len(ex.ErrBuckets) == len(r.errN) {
		copy(r.errN, ex.ErrBuckets)
	}
	r.errSum = ex.ErrSum
	return nil
}
