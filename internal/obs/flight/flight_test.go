package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestRecordSnapshotOrdered(t *testing.T) {
	r := New(64)
	for i := 0; i < 40; i++ {
		r.Record(Event{Kind: KindRPC, Name: "rpc:get", N: int64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 40 {
		t.Fatalf("snapshot has %d events, want 40", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, snap[i].Seq, snap[i-1].Seq)
		}
	}
	if snap[0].At.IsZero() {
		t.Error("At not defaulted")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := New(32)
	total := 500
	for i := 0; i < total; i++ {
		r.Record(Event{Kind: KindEvent, Name: "retries", N: int64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != r.Capacity() {
		t.Fatalf("retained %d, want capacity %d", len(snap), r.Capacity())
	}
	if r.Total() != int64(total) {
		t.Fatalf("total %d, want %d", r.Total(), total)
	}
	// Everything retained is from the recent tail: with round-robin
	// sharding each shard keeps its own most recent entries, so nothing
	// older than capacity*shards-worth of history can survive.
	for _, e := range snap {
		if int(e.Seq) <= total-2*r.Capacity() {
			t.Fatalf("ancient event seq %d survived a %d-capacity ring", e.Seq, r.Capacity())
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindRPC})
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if r.Total() != 0 || r.Capacity() != 0 {
		t.Fatal("nil totals not zero")
	}
	var w *Watchdog
	if path, err := w.Trip("x"); err != nil || path != "" {
		t.Fatalf("nil watchdog trip = %q, %v", path, err)
	}
}

func TestDumpTraceIDs(t *testing.T) {
	r := New(16)
	r.Record(Event{Kind: KindQuery, Name: "q1", TraceID: 7})
	r.Record(Event{Kind: KindRPC, Name: "rpc:get", TraceID: 7})
	r.Record(Event{Kind: KindQuery, Name: "q2", TraceID: 9})
	r.Record(Event{Kind: KindQuery, Name: "q3"}) // untraced
	d := r.TakeDump("test")
	if ids := d.TraceIDs(KindQuery); len(ids) != 2 || ids[0] != 7 || ids[1] != 9 {
		t.Fatalf("query trace ids = %v", ids)
	}
	if ids := d.TraceIDs(""); len(ids) != 2 {
		t.Fatalf("all trace ids = %v", ids)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := New(8)
	r.Record(Event{Kind: KindStore, Name: "serve", Peer: "sim://1", N: 128, Dur: time.Millisecond, Err: "boom"})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, "request"); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "request" || d.Total != 1 || len(d.Events) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	e := d.Events[0]
	if e.Kind != KindStore || e.Peer != "sim://1" || e.N != 128 || e.Dur != time.Millisecond || e.Err != "boom" {
		t.Fatalf("event = %+v", e)
	}
}

func TestWatchdogSnapshotsAndRateLimits(t *testing.T) {
	dir := t.TempDir()
	r := New(16)
	r.Record(Event{Kind: KindQuery, Name: "slow", TraceID: 42})
	w := NewWatchdog(r, dir, time.Hour)

	path, err := w.Trip("burn-rate")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("first trip rate-limited")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "burn-rate" {
		t.Fatalf("reason = %q", d.Reason)
	}
	// The trip itself is recorded, so the dump carries a snapshot marker.
	var marker bool
	for _, e := range d.Events {
		if e.Kind == KindSnapshot && e.Name == "burn-rate" {
			marker = true
		}
	}
	if !marker {
		t.Error("dump missing its own snapshot marker event")
	}
	if ids := d.TraceIDs(KindQuery); len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("dump trace ids = %v", ids)
	}

	// Within the rate limit: no second dump.
	if p2, err := w.Trip("again"); err != nil || p2 != "" {
		t.Fatalf("rate-limited trip = %q, %v", p2, err)
	}
	if got := w.Dumps(); len(got) != 1 || got[0] != path {
		t.Fatalf("dumps = %v", got)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 1 {
		t.Fatalf("dir has %d files", len(ents))
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump outside dir: %s", path)
	}
}

// TestConcurrentRecordSnapshot hammers the ring from many goroutines
// while snapshotting; under -race it proves the sharding is sound.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Record(Event{Kind: KindRPC, Name: "rpc:get", TraceID: uint64(g*1000 + i)})
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		for j := 1; j < len(snap); j++ {
			if snap[j].Seq <= snap[j-1].Seq {
				t.Errorf("snapshot %d unordered", i)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
}
