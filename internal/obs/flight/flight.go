// Package flight implements a per-peer flight recorder: a fixed-size,
// lock-sharded ring buffer of recent annotated events — RPC
// completions, cache misses, store operations, robustness events,
// query completions — that stays on in production and answers "what
// was this peer doing just before things went wrong" without having to
// reproduce the incident.
//
// The recorder is the forensic counterpart of the aggregate metrics
// plane: counters say a retry storm happened, the flight ring says
// which RPCs against which peers retried, in what order, carrying
// which trace ids. Recording is one shard-local mutex acquisition and
// a struct copy, so every subsystem that already counts a metric can
// also drop an event into the ring.
//
// A Watchdog pairs the ring with a disk path: when some monitor (the
// SLO engine's burn-rate alert, a caller-defined condition) trips it,
// the ring is snapshotted to a JSON file — rate-limited, so a flapping
// alert cannot grind the peer with dump I/O.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the system. Kind is an open string — higher
// layers may record their own — but the built-in feeds use these.
const (
	// KindRPC is one outgoing RPC, retries folded in (the client view).
	KindRPC = "rpc"
	// KindEvent is one robustness/cache occurrence, mirroring the
	// collector's event counters (retry, timeout, eviction, cache-miss…).
	KindEvent = "event"
	// KindStore is local store work: postings served or appended.
	KindStore = "store"
	// KindQuery is one completed query at the submitting peer.
	KindQuery = "query"
	// KindSpan is a completed trace span worth keeping after its trace
	// rotates out of the tracer ring (slow phases, errors).
	KindSpan = "span"
	// KindSnapshot marks a watchdog dump, so dumps are self-describing
	// about why they were taken.
	KindSnapshot = "snapshot"
)

// Event is one annotated ring entry. Zero-valued fields are omitted
// from the JSON dump, so cheap events stay cheap on disk too.
type Event struct {
	// Seq is the recorder-global sequence number; dumps sort by it.
	Seq uint64 `json:"seq"`
	// At is the wall-clock time the event was recorded.
	At time.Time `json:"at"`
	// Kind classifies the event (KindRPC, KindEvent, …).
	Kind string `json:"kind"`
	// Name identifies the event within its kind: the RPC op, the
	// collector event name, the query pattern.
	Name string `json:"name"`
	// Peer is the remote peer involved, when any.
	Peer string `json:"peer,omitempty"`
	// TraceID links the event to a recorded trace (0 = untraced).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Dur is the event's duration, when it has one.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// N carries the event's magnitude: bytes moved, postings served,
	// keys repaired.
	N int64 `json:"n,omitempty"`
	// Err is the failure, when the event records one.
	Err string `json:"err,omitempty"`
}

// shardCount is the number of independently locked rings. Sixteen
// shards keep the recorder off the contention profile of a peer
// serving concurrent queries while costing only a few pointers.
const shardCount = 16

type shard struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool
}

// Recorder is the lock-sharded ring. The zero value is unusable; use
// New. A nil *Recorder is a valid no-op recorder: every method guards
// on nil, so instrumentation sites need no feature flag.
type Recorder struct {
	shards [shardCount]shard
	seq    atomic.Uint64 // global event ordering
	rr     atomic.Uint64 // round-robin shard selector
	total  atomic.Int64  // events ever recorded (overwrites included)
}

// New returns a recorder retaining approximately the most recent
// capacity events (rounded up to a multiple of the shard count,
// minimum one event per shard).
func New(capacity int) *Recorder {
	per := (capacity + shardCount - 1) / shardCount
	if per < 1 {
		per = 1
	}
	r := &Recorder{}
	for i := range r.shards {
		r.shards[i].ring = make([]Event, per)
	}
	return r
}

// Capacity returns the number of events the ring retains.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.shards[0].ring) * shardCount
}

// Record adds one event to the ring, evicting the oldest entry of its
// shard past capacity. The event's Seq is assigned here; At defaults
// to now when unset. Safe for concurrent use; a nil recorder discards.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	e.Seq = r.seq.Add(1)
	if e.At.IsZero() {
		e.At = time.Now()
	}
	r.total.Add(1)
	s := &r.shards[r.rr.Add(1)%shardCount]
	s.mu.Lock()
	s.ring[s.next] = e
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Total returns the number of events ever recorded, overwritten ones
// included — Total - len(Snapshot()) is what the ring has forgotten.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Snapshot returns a point-in-time copy of the retained events, oldest
// first (by sequence number). Concurrent recording continues; the
// snapshot is consistent per shard and globally ordered by Seq.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.ring...)
		} else {
			out = append(out, s.ring[:s.next]...)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump is the JSON shape of a flight dump (/debug/flight and the
// watchdog's disk snapshots share it).
type Dump struct {
	// TakenAt is when the snapshot was cut.
	TakenAt time.Time `json:"taken_at"`
	// Reason is why (a watchdog trip reason, or "request" for the
	// debug endpoint).
	Reason string `json:"reason,omitempty"`
	// Total counts events ever recorded; len(Events) of them survive.
	Total  int64   `json:"total_recorded"`
	Events []Event `json:"events"`
}

// TraceIDs returns the distinct non-zero trace ids of the dump's
// events of one kind ("" = all kinds), in first-seen order.
func (d *Dump) TraceIDs(kind string) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, e := range d.Events {
		if e.TraceID == 0 || (kind != "" && e.Kind != kind) {
			continue
		}
		if !seen[e.TraceID] {
			seen[e.TraceID] = true
			out = append(out, e.TraceID)
		}
	}
	return out
}

// TakeDump cuts a snapshot with the given reason.
func (r *Recorder) TakeDump(reason string) *Dump {
	return &Dump{
		TakenAt: time.Now(),
		Reason:  reason,
		Total:   r.Total(),
		Events:  r.Snapshot(),
	}
}

// WriteJSON writes an indented JSON dump to w.
func (r *Recorder) WriteJSON(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeDump(reason))
}

// SnapshotToFile writes a dump to path atomically (temp file + rename),
// creating parent directories as needed.
func (r *Recorder) SnapshotToFile(path, reason string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("flight: snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".flight-*")
	if err != nil {
		return fmt.Errorf("flight: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := r.WriteJSON(tmp, reason); err != nil {
		tmp.Close()
		return fmt.Errorf("flight: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("flight: snapshot: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// Watchdog snapshots a recorder to disk when tripped, at most once per
// MinInterval — an alert that flaps every tick must not turn the peer
// into a dump mill. Safe for concurrent use; nil-safe.
type Watchdog struct {
	rec *Recorder
	dir string
	min time.Duration

	mu    sync.Mutex
	last  time.Time
	n     int
	taken []string
}

// NewWatchdog returns a watchdog snapshotting rec into dir (one file
// per trip, flight-<n>.json) at most once per minInterval (default
// 30s when <= 0).
func NewWatchdog(rec *Recorder, dir string, minInterval time.Duration) *Watchdog {
	if minInterval <= 0 {
		minInterval = 30 * time.Second
	}
	return &Watchdog{rec: rec, dir: dir, min: minInterval}
}

// Trip requests a snapshot with the given reason. It reports the dump
// file written, or "" when the trip was rate-limited or the watchdog
// is nil. The trip itself is recorded into the ring (KindSnapshot), so
// the dump documents why it exists.
func (w *Watchdog) Trip(reason string) (string, error) {
	if w == nil || w.rec == nil {
		return "", nil
	}
	w.mu.Lock()
	if !w.last.IsZero() && time.Since(w.last) < w.min {
		w.mu.Unlock()
		return "", nil
	}
	w.last = time.Now()
	w.n++
	path := filepath.Join(w.dir, fmt.Sprintf("flight-%d.json", w.n))
	w.mu.Unlock()

	w.rec.Record(Event{Kind: KindSnapshot, Name: reason})
	if err := w.rec.SnapshotToFile(path, reason); err != nil {
		return "", err
	}
	w.mu.Lock()
	w.taken = append(w.taken, path)
	w.mu.Unlock()
	return path, nil
}

// Dumps returns the snapshot files written so far.
func (w *Watchdog) Dumps() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.taken...)
}
