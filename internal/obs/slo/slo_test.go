package slo

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kadop/internal/metrics"
)

// fakeSource is a settable cumulative good/total pair.
type fakeSource struct{ good, total atomic.Int64 }

func (f *fakeSource) add(good, errs int64) {
	f.good.Add(good)
	f.total.Add(good + errs)
}

func (f *fakeSource) source() Source {
	return func() (int64, int64) { return f.good.Load(), f.total.Load() }
}

func testWindows() []Window {
	return []Window{{Short: 5 * time.Second, Long: 30 * time.Second, Burn: 10, Severity: "page"}}
}

func TestNewValidates(t *testing.T) {
	var src fakeSource
	bad := []Config{
		{},
		{Objectives: []Objective{{Name: "x", Target: 1.0, Source: src.source()}}},
		{Objectives: []Objective{{Name: "x", Target: 0, Source: src.source()}}},
		{Objectives: []Objective{{Name: "", Target: 0.99, Source: src.source()}}},
		{Objectives: []Objective{{Name: "x", Target: 0.99}}},
		{Objectives: []Objective{
			{Name: "x", Target: 0.99, Source: src.source()},
			{Name: "x", Target: 0.9, Source: src.source()},
		}},
		{Objectives: []Objective{{Name: "x", Target: 0.99, Source: src.source()}},
			Windows: []Window{{Short: time.Minute, Long: time.Second, Burn: 2}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Objectives: []Objective{{Name: "x", Target: 0.99, Source: src.source()}}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBurnRateAndAlert(t *testing.T) {
	var src fakeSource
	var alerts []Alert
	reg := metrics.NewRegistry()
	e, err := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.99, Source: src.source()}},
		Windows:    testWindows(),
		Registry:   reg,
		OnAlert:    func(a Alert) { alerts = append(alerts, a) },
	})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(1000, 0)
	// Healthy traffic: 1000 good events over a few ticks.
	for i := 0; i < 5; i++ {
		src.add(200, 0)
		now = now.Add(time.Second)
		sts := e.Tick(now)
		if sts[0].Alerting {
			t.Fatalf("alerting while healthy at tick %d: %+v", i, sts[0])
		}
	}
	if len(alerts) != 0 {
		t.Fatalf("alerts while healthy: %v", alerts)
	}

	// Overload: 50% errors, burn = 0.5/0.01 = 50x >> 10x on both windows.
	var sts []Status
	for i := 0; i < 5; i++ {
		src.add(100, 100)
		now = now.Add(time.Second)
		sts = e.Tick(now)
	}
	if !sts[0].Alerting || sts[0].Severity != "page" {
		t.Fatalf("no alert under 50%% errors: %+v", sts[0])
	}
	ws := sts[0].Windows[0]
	if ws.ShortBurn < 10 || ws.LongBurn < 10 {
		t.Fatalf("burns = %.1f/%.1f, want >= 10", ws.ShortBurn, ws.LongBurn)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts fired %d times, want 1 (transition only): %v", len(alerts), alerts)
	}
	if a := alerts[0]; a.SLO != "avail" || a.Severity != "page" {
		t.Fatalf("alert = %+v", a)
	}
	if !strings.Contains(alerts[0].String(), "avail") {
		t.Errorf("alert string = %q", alerts[0].String())
	}

	// Registry mirror: alert gauge up, burn exported in millis.
	ex := reg.Export()
	if f, ok := ex["kadop_slo_alert"]; !ok {
		t.Fatal("kadop_slo_alert not exported")
	} else {
		var pageVal int64 = -1
		for _, s := range f.Series {
			if s.Labels["slo"] == "avail" && s.Labels["severity"] == "page" {
				pageVal = s.Value
			}
		}
		if pageVal != 1 {
			t.Fatalf("alert gauge = %d, want 1", pageVal)
		}
	}
	if f, ok := ex["kadop_slo_burn_rate_milli"]; !ok {
		t.Fatal("burn rate not exported")
	} else {
		var found bool
		for _, s := range f.Series {
			if s.Labels["window"] == "5s" && s.Value >= 10000 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no 5s burn >= 10000 milli: %+v", f.Series)
		}
	}

	// Recovery: healthy traffic ages the errors out of both windows.
	for i := 0; i < 40; i++ {
		src.add(500, 0)
		now = now.Add(time.Second)
		sts = e.Tick(now)
	}
	if sts[0].Alerting {
		t.Fatalf("still alerting after recovery: %+v", sts[0])
	}
	if len(alerts) != 1 {
		t.Fatalf("recovery fired more alerts: %v", alerts)
	}
}

func TestBudgetRemaining(t *testing.T) {
	if b := budgetRemaining(0.99, 1000, 1000); b != 1 {
		t.Errorf("clean budget = %v", b)
	}
	// 1% errors at a 99% target: budget exactly spent.
	if b := budgetRemaining(0.99, 990, 1000); b > 1e-9 || b < -1e-9 {
		t.Errorf("spent budget = %v, want 0", b)
	}
	if b := budgetRemaining(0.99, 900, 1000); b >= 0 {
		t.Errorf("violated budget = %v, want negative", b)
	}
	if b := budgetRemaining(0.99, 0, 0); b != 1 {
		t.Errorf("no-traffic budget = %v, want 1", b)
	}
}

func TestLatencySource(t *testing.T) {
	c := metrics.NewCollector()
	c.Observe(metrics.OpQueryTotal, 2*time.Millisecond)
	c.Observe(metrics.OpQueryTotal, 3*time.Millisecond)
	c.Observe(metrics.OpQueryTotal, 2*time.Second)

	src := LatencySource(c, metrics.OpQueryTotal, 4096*time.Microsecond)
	good, total := src()
	if good != 2 || total != 3 {
		t.Fatalf("latency source = %d/%d, want 2/3", good, total)
	}
	// Unobserved op: no traffic, no division by zero anywhere.
	g0, t0 := LatencySource(c, metrics.OpLookup, time.Millisecond)()
	if g0 != 0 || t0 != 0 {
		t.Fatalf("empty source = %d/%d", g0, t0)
	}
}

func TestCounterSource(t *testing.T) {
	var good, errs atomic.Int64
	good.Store(90)
	errs.Store(10)
	g, total := CounterSource(good.Load, errs.Load)()
	if g != 90 || total != 100 {
		t.Fatalf("counter source = %d/%d", g, total)
	}
}

func TestNoTrafficNoBurn(t *testing.T) {
	var src fakeSource
	e, err := New(Config{
		Objectives: []Objective{{Name: "idle", Target: 0.999, Source: src.source()}},
		Windows:    testWindows(),
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		sts := e.Tick(now)
		if sts[0].Alerting || sts[0].Windows[0].ShortBurn != 0 {
			t.Fatalf("idle objective burning: %+v", sts[0])
		}
		if sts[0].BudgetRemaining != 1 {
			t.Fatalf("idle budget = %v", sts[0].BudgetRemaining)
		}
	}
}

func TestSampleTrim(t *testing.T) {
	var src fakeSource
	e, err := New(Config{
		Objectives: []Objective{{Name: "x", Target: 0.99, Source: src.source()}},
		Windows:    testWindows(),
		MaxSamples: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		src.add(10, 0)
		now = now.Add(time.Second)
		e.Tick(now)
	}
	if n := len(e.states[0].samples); n > 8 {
		t.Fatalf("samples = %d, want <= 8", n)
	}
}

func TestStatusWithoutTick(t *testing.T) {
	var src fakeSource
	e, err := New(Config{
		Objectives: []Objective{{Name: "x", Target: 0.99, Source: src.source()}},
		Windows:    testWindows(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sts := e.Status()
	if len(sts) != 1 || sts[0].Alerting || len(sts[0].Windows) != 1 {
		t.Fatalf("pre-tick status = %+v", sts)
	}
}

func TestVerdict(t *testing.T) {
	if v := Verdict(nil); v != "ok" {
		t.Errorf("empty verdict = %q", v)
	}
	v := Verdict([]Status{
		{Name: "b", Alerting: true, Severity: "page"},
		{Name: "a", Alerting: true, Severity: "page"},
		{Name: "c", Alerting: true, Severity: "ticket"},
		{Name: "d"},
	})
	if v != "BURN page: a,b" {
		t.Errorf("verdict = %q", v)
	}
	if v := Verdict([]Status{{Name: "c", Alerting: true, Severity: "ticket"}}); v != "BURN ticket: c" {
		t.Errorf("ticket verdict = %q", v)
	}
}

func TestParseTarget(t *testing.T) {
	for in, want := range map[string]float64{"0.99": 0.99, "99.9": 0.999, "99": 0.99} {
		got, err := ParseTarget(in)
		if err != nil || got < want-1e-9 || got > want+1e-9 {
			t.Errorf("ParseTarget(%q) = %v, %v", in, got, err)
		}
	}
	for _, in := range []string{"0", "1", "100", "-5", "abc"} {
		if _, err := ParseTarget(in); err == nil {
			t.Errorf("ParseTarget(%q) accepted", in)
		}
	}
}

func TestStartStop(t *testing.T) {
	var src fakeSource
	src.add(100, 0)
	e, err := New(Config{
		Objectives: []Objective{{Name: "x", Target: 0.99, Source: src.source()}},
		Windows:    testWindows(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := e.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		sts := e.Status()
		if sts[0].Total == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background tick never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
