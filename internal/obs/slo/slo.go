// Package slo evaluates service-level objectives over the metrics the
// cluster already records. An Objective names a cumulative good/total
// event source — queries under a latency threshold, RPCs that did not
// error — and a target fraction; the Engine samples the sources on a
// tick, computes error burn rates over multiple look-back windows, and
// raises an alert when both windows of a pair burn faster than their
// threshold (the multi-window, multi-burn-rate pattern: the short
// window proves the problem is current, the long window proves it is
// not a blip).
//
// Results are exported as kadop_slo_* registry gauges, so the same
// /metrics endpoint that carries the raw counters carries the verdict,
// and kadop-top can render cluster health without re-deriving policy.
// An OnAlert hook lets a flight-recorder watchdog snapshot forensics
// at the moment the budget starts burning.
package slo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"kadop/internal/metrics"
)

// Source reports the cumulative good and total event counts of one
// objective. Both must be monotonic; the engine works on deltas.
type Source func() (good, total int64)

// LatencySource adapts a collector histogram into a Source: an
// observation is good when it landed in a bucket bounded at or under
// the threshold. The threshold is rounded up to the owning bucket
// bound, so pick thresholds on the power-of-two grid for exactness.
func LatencySource(c *metrics.Collector, op string, threshold time.Duration) Source {
	return func() (int64, int64) {
		h := c.Hist(op)
		if h == nil {
			return 0, 0
		}
		var good int64
		for i := 0; i < metrics.NumBuckets; i++ {
			if metrics.BucketBound(i) > threshold {
				break
			}
			good += h.BucketCount(i)
		}
		return good, h.Count()
	}
}

// CounterSource adapts a pair of cumulative counter reads into a
// Source: total = good + errors.
func CounterSource(good, errors func() int64) Source {
	return func() (int64, int64) {
		g, e := good(), errors()
		return g, g + e
	}
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in exported series and alerts.
	Name string
	// Description is shown on /debug/slo.
	Description string
	// Target is the required good fraction, in (0, 1) — e.g. 0.99.
	Target float64
	// Source supplies the cumulative good/total counts.
	Source Source
}

// Window is one burn-rate alert condition: alert when the error budget
// burns at more than Burn× the sustainable rate over both the short
// and the long look-back.
type Window struct {
	Short    time.Duration
	Long     time.Duration
	Burn     float64
	Severity string
}

// String renders the window pair for labels ("5s/1m0s").
func (w Window) String() string { return w.Short.String() + "/" + w.Long.String() }

// Alert is one burn-rate condition newly met.
type Alert struct {
	SLO       string
	Severity  string
	Window    Window
	ShortBurn float64
	LongBurn  float64
	At        time.Time
}

func (a Alert) String() string {
	return fmt.Sprintf("slo %s %s: burn %.1fx/%.1fx over %s (threshold %.1fx)",
		a.SLO, a.Severity, a.ShortBurn, a.LongBurn, a.Window, a.Window.Burn)
}

// Config assembles an Engine.
type Config struct {
	Objectives []Objective
	// Windows are the alert conditions applied to every objective;
	// DefaultWindows() when empty.
	Windows []Window
	// Registry receives the kadop_slo_* gauges (optional).
	Registry *metrics.Registry
	// OnAlert fires once per transition into an alerting window
	// (optional). Called from Tick, so it must not block.
	OnAlert func(Alert)
	// MaxSamples bounds per-objective history (default 1024).
	MaxSamples int
}

// DefaultWindows returns the classic SRE multi-window pairs (5m/1h at
// 14.4× pages, 30m/6h at 6× tickets). Experiments pass compressed
// windows instead; production peers use these.
func DefaultWindows() []Window {
	return []Window{
		{Short: 5 * time.Minute, Long: time.Hour, Burn: 14.4, Severity: "page"},
		{Short: 30 * time.Minute, Long: 6 * time.Hour, Burn: 6, Severity: "ticket"},
	}
}

type sample struct {
	at          time.Time
	good, total int64
}

type objectiveState struct {
	obj      Objective
	samples  []sample
	alerting []bool // per window index
}

// Engine evaluates the configured objectives. Create with New; Tick
// drives it deterministically, Start runs a background ticker.
type Engine struct {
	cfg     Config
	windows []Window

	mu     sync.Mutex
	states []*objectiveState
}

// New validates the config and returns an engine. Objectives with
// targets outside (0,1) or without a source are rejected.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	for _, w := range windows {
		if w.Short <= 0 || w.Long < w.Short || w.Burn <= 0 {
			return nil, fmt.Errorf("slo: bad window %+v", w)
		}
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 1024
	}
	e := &Engine{cfg: cfg, windows: windows}
	seen := map[string]bool{}
	for _, o := range cfg.Objectives {
		if o.Name == "" || o.Source == nil {
			return nil, fmt.Errorf("slo: objective %q missing name or source", o.Name)
		}
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("slo: objective %s: target %v outside (0,1)", o.Name, o.Target)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
		e.states = append(e.states, &objectiveState{obj: o, alerting: make([]bool, len(windows))})
	}
	return e, nil
}

// WindowStatus is one window's evaluation for one objective.
type WindowStatus struct {
	Window    Window  `json:"-"`
	Label     string  `json:"window"`
	Severity  string  `json:"severity"`
	Threshold float64 `json:"threshold"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Alerting  bool    `json:"alerting"`
}

// Status is one objective's current evaluation.
type Status struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Target      float64 `json:"target"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	// BudgetRemaining is the fraction of the all-time error budget
	// left: 1 − observedErrorRate/allowedErrorRate. Negative when the
	// objective is violated outright.
	BudgetRemaining float64        `json:"budget_remaining"`
	Windows         []WindowStatus `json:"windows"`
	Alerting        bool           `json:"alerting"`
	// Severity is the worst alerting window's severity ("" when calm).
	Severity string `json:"severity,omitempty"`
}

// Tick samples every objective's source at now, re-evaluates all burn
// windows, updates the registry gauges, and fires OnAlert for windows
// newly alerting. Deterministic given the sources; tests drive it with
// a fake clock.
func (e *Engine) Tick(now time.Time) []Status {
	if e == nil {
		return nil
	}
	statuses, fired := e.tick(now)
	if e.cfg.OnAlert != nil {
		for _, a := range fired {
			e.cfg.OnAlert(a)
		}
	}
	return statuses
}

func (e *Engine) tick(now time.Time) ([]Status, []Alert) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var fired []Alert
	statuses := make([]Status, 0, len(e.states))
	for _, st := range e.states {
		good, total := st.obj.Source()
		st.samples = append(st.samples, sample{at: now, good: good, total: total})
		st.trim(now, e.longestWindow(), e.cfg.MaxSamples)

		status := Status{
			Name:            st.obj.Name,
			Description:     st.obj.Description,
			Target:          st.obj.Target,
			Good:            good,
			Total:           total,
			BudgetRemaining: budgetRemaining(st.obj.Target, good, total),
		}
		budget := 1 - st.obj.Target
		for wi, w := range e.windows {
			ws := WindowStatus{
				Window:    w,
				Label:     w.String(),
				Severity:  w.Severity,
				Threshold: w.Burn,
				ShortBurn: st.burn(now, w.Short, budget),
				LongBurn:  st.burn(now, w.Long, budget),
			}
			ws.Alerting = ws.ShortBurn >= w.Burn && ws.LongBurn >= w.Burn
			if ws.Alerting && !st.alerting[wi] {
				fired = append(fired, Alert{
					SLO: st.obj.Name, Severity: w.Severity, Window: w,
					ShortBurn: ws.ShortBurn, LongBurn: ws.LongBurn, At: now,
				})
			}
			st.alerting[wi] = ws.Alerting
			if ws.Alerting {
				status.Alerting = true
				if status.Severity == "" || ws.Severity == "page" {
					status.Severity = ws.Severity
				}
			}
			status.Windows = append(status.Windows, ws)
		}
		e.export(status)
		statuses = append(statuses, status)
	}
	return statuses, fired
}

// Status returns the evaluation of the most recent Tick (re-running
// the window math against the stored samples, without sampling the
// sources again). Before any tick it returns zeroed statuses.
func (e *Engine) Status() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	statuses := make([]Status, 0, len(e.states))
	for _, st := range e.states {
		status := Status{
			Name:        st.obj.Name,
			Description: st.obj.Description,
			Target:      st.obj.Target,
		}
		if n := len(st.samples); n > 0 {
			last := st.samples[n-1]
			status.Good, status.Total = last.good, last.total
			status.BudgetRemaining = budgetRemaining(st.obj.Target, last.good, last.total)
			budget := 1 - st.obj.Target
			for wi, w := range e.windows {
				ws := WindowStatus{
					Window:    w,
					Label:     w.String(),
					Severity:  w.Severity,
					Threshold: w.Burn,
					ShortBurn: st.burn(last.at, w.Short, budget),
					LongBurn:  st.burn(last.at, w.Long, budget),
					Alerting:  st.alerting[wi],
				}
				if ws.Alerting {
					status.Alerting = true
					if status.Severity == "" || ws.Severity == "page" {
						status.Severity = ws.Severity
					}
				}
				status.Windows = append(status.Windows, ws)
			}
		} else {
			for _, w := range e.windows {
				status.Windows = append(status.Windows, WindowStatus{
					Window: w, Label: w.String(), Severity: w.Severity, Threshold: w.Burn,
				})
			}
		}
		statuses = append(statuses, status)
	}
	return statuses
}

// Start runs Tick on the interval until the returned stop function is
// called.
func (e *Engine) Start(interval time.Duration) (stop func()) {
	if e == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				e.Tick(now)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// burn computes the budget burn rate over the window ending at the
// latest sample: (error rate over the window) / (allowed error rate).
// With history shorter than the window, the oldest sample brackets it.
func (st *objectiveState) burn(now time.Time, window time.Duration, budget float64) float64 {
	n := len(st.samples)
	if n < 2 || budget <= 0 {
		return 0
	}
	cur := st.samples[n-1]
	cutoff := now.Add(-window)
	// Latest sample at or before the cutoff; fall back to the oldest.
	base := st.samples[0]
	for i := n - 2; i >= 0; i-- {
		if !st.samples[i].at.After(cutoff) {
			base = st.samples[i]
			break
		}
	}
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dErr := (cur.total - cur.good) - (base.total - base.good)
	if dErr <= 0 {
		return 0
	}
	return (float64(dErr) / float64(dTotal)) / budget
}

// trim drops samples older than the longest window (keeping one
// bracketing sample past it) and enforces the MaxSamples cap.
func (st *objectiveState) trim(now time.Time, longest time.Duration, maxSamples int) {
	cutoff := now.Add(-longest)
	// Keep the newest sample at or before the cutoff as the bracket.
	keepFrom := 0
	for i := len(st.samples) - 1; i >= 0; i-- {
		if !st.samples[i].at.After(cutoff) {
			keepFrom = i
			break
		}
	}
	if over := len(st.samples) - maxSamples; over > keepFrom {
		keepFrom = over
	}
	if keepFrom > 0 {
		st.samples = append(st.samples[:0], st.samples[keepFrom:]...)
	}
}

func (e *Engine) longestWindow() time.Duration {
	var longest time.Duration
	for _, w := range e.windows {
		if w.Long > longest {
			longest = w.Long
		}
	}
	return longest
}

// budgetRemaining returns the fraction of the all-time error budget
// left (1 = untouched, 0 = spent, negative = violated).
func budgetRemaining(target float64, good, total int64) float64 {
	if total == 0 {
		return 1
	}
	budget := 1 - target
	errRate := float64(total-good) / float64(total)
	return 1 - errRate/budget
}

// export mirrors one status into the kadop_slo_* registry gauges.
// Registry values are int64, so fractions are scaled: targets and
// budgets in ppm, burn rates in millis.
func (e *Engine) export(s Status) {
	r := e.cfg.Registry
	if r == nil {
		return
	}
	l := metrics.Label{Key: "slo", Value: s.Name}
	r.Gauge("kadop_slo_target_ppm", "SLO good-fraction target, parts per million.", l).Set(ppm(s.Target))
	r.Gauge("kadop_slo_good_events", "Cumulative good events of the SLO source.", l).Set(s.Good)
	r.Gauge("kadop_slo_events", "Cumulative total events of the SLO source.", l).Set(s.Total)
	r.Gauge("kadop_slo_budget_remaining_ppm", "Remaining all-time error budget, parts per million (negative = violated).", l).Set(ppm(s.BudgetRemaining))
	alerting := map[string]bool{}
	for _, ws := range s.Windows {
		r.Gauge("kadop_slo_burn_rate_milli", "Error-budget burn rate over the look-back window, thousandths.",
			l, metrics.Label{Key: "window", Value: ws.Window.Short.String()}).Set(milli(ws.ShortBurn))
		r.Gauge("kadop_slo_burn_rate_milli", "Error-budget burn rate over the look-back window, thousandths.",
			l, metrics.Label{Key: "window", Value: ws.Window.Long.String()}).Set(milli(ws.LongBurn))
		if ws.Alerting {
			alerting[ws.Severity] = true
		}
	}
	for _, sev := range []string{"page", "ticket"} {
		v := int64(0)
		if alerting[sev] {
			v = 1
		}
		r.Gauge("kadop_slo_alert", "1 while a burn-rate window of this severity is alerting.", l, metrics.Label{Key: "severity", Value: sev}).Set(v)
	}
}

func ppm(f float64) int64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return int64(math.Round(f * 1e6))
}

func milli(f float64) int64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return int64(math.Round(f * 1e3))
}

// Verdict condenses a status list into a one-line cluster health call:
// "ok", or the worst alerting severity with the offending objectives.
func Verdict(statuses []Status) string {
	var page, ticket []string
	for _, s := range statuses {
		if !s.Alerting {
			continue
		}
		if s.Severity == "page" {
			page = append(page, s.Name)
		} else {
			ticket = append(ticket, s.Name)
		}
	}
	switch {
	case len(page) > 0:
		sort.Strings(page)
		return "BURN page: " + joinNames(page)
	case len(ticket) > 0:
		sort.Strings(ticket)
		return "BURN ticket: " + joinNames(ticket)
	default:
		return "ok"
	}
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// ParseTarget parses a "99.9" / "0.999"-style target into a fraction.
// Values above 1 are read as percentages.
func ParseTarget(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("slo: bad target %q: %w", s, err)
	}
	if f > 1 {
		f /= 100
	}
	if f <= 0 || f >= 1 {
		return 0, fmt.Errorf("slo: target %q outside (0,1)", s)
	}
	return f, nil
}
