// Package querylog writes one structured JSONL record per query: the
// pattern, per-phase latencies, bytes moved, cache hits, routing hops
// and retries. The records are the durable counterpart of the live
// trace ring — greppable with jq, joinable across peers by time, and
// cheap enough (one slog line per sampled query) to leave on in
// production deployments.
package querylog

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Options tune a Logger.
type Options struct {
	// SampleRate is the fraction of queries logged: 1 (or anything
	// >= 1, or <= 0) logs every query; 0.25 logs every fourth. Sampling
	// is deterministic — every round(1/rate)-th query — so repeated runs
	// log the same records.
	SampleRate float64
}

// Logger emits query records as JSON lines through log/slog. Safe for
// concurrent use; the zero value is not usable, use New. A nil Logger
// is safe: Sample reports false and Log is a no-op.
type Logger struct {
	lg    *slog.Logger
	every int64
	n     atomic.Int64
}

// New returns a Logger writing JSONL to w.
func New(w io.Writer, o Options) *Logger {
	every := int64(1)
	if o.SampleRate > 0 && o.SampleRate < 1 {
		every = int64(1/o.SampleRate + 0.5)
		if every < 1 {
			every = 1
		}
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return &Logger{lg: slog.New(h), every: every}
}

// Sample reports whether the next query should be logged, advancing
// the sampling counter. Callers pair one Sample with at most one Log.
func (l *Logger) Sample() bool {
	if l == nil {
		return false
	}
	return (l.n.Add(1)-1)%l.every == 0
}

// Record is one query's log line. Durations are nanoseconds, named
// *_ns; byte counts are the collector's class deltas around the query
// (exact for a single-query process; approximate under concurrent
// queries sharing a collector).
type Record struct {
	Query     string `json:"query"`
	Strategy  string `json:"strategy"`
	IndexOnly bool   `json:"index_only,omitempty"`

	IndexNS       int64 `json:"index_ns"`
	FirstAnswerNS int64 `json:"first_answer_ns"`
	SecondPhaseNS int64 `json:"second_phase_ns,omitempty"`
	TotalNS       int64 `json:"total_ns"`

	PostingBytes int64 `json:"posting_bytes"`
	FilterBytes  int64 `json:"filter_bytes,omitempty"`
	RoutingBytes int64 `json:"routing_bytes,omitempty"`

	CacheHits     int   `json:"cache_hits"`
	BlocksFetched int   `json:"blocks_fetched,omitempty"`
	Hops          int64 `json:"hops"`
	Retries       int64 `json:"retries"`
	Timeouts      int64 `json:"timeouts,omitempty"`
	IndexMatches  int   `json:"index_matches"`
	CandidateDocs int   `json:"candidate_docs"`
	Answers       int   `json:"answers"`
	Incomplete    bool  `json:"incomplete,omitempty"`
	FailedPeers   int   `json:"failed_peers,omitempty"`

	Err string `json:"err,omitempty"`

	// TraceID is the query's trace identifier in hex ("" when the query
	// was untraced). It joins the record with histogram exemplars on
	// /metrics and flight-recorder dumps.
	TraceID string `json:"trace_id,omitempty"`
	// Slow marks a record captured by the slow-query threshold — logged
	// regardless of sampling, with the trace tree attached.
	Slow bool `json:"slow,omitempty"`
	// Trace is the query's full span tree (slow captures only; any
	// JSON-marshalable shape, in practice trace.TraceRecord).
	Trace any `json:"trace,omitempty"`
}

// Log writes one record.
func (l *Logger) Log(r Record) {
	if l == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("query", r.Query),
		slog.String("strategy", r.Strategy),
		slog.Bool("index_only", r.IndexOnly),
		slog.Int64("index_ns", r.IndexNS),
		slog.Int64("first_answer_ns", r.FirstAnswerNS),
		slog.Int64("second_phase_ns", r.SecondPhaseNS),
		slog.Int64("total_ns", r.TotalNS),
		slog.Int64("posting_bytes", r.PostingBytes),
		slog.Int64("filter_bytes", r.FilterBytes),
		slog.Int64("routing_bytes", r.RoutingBytes),
		slog.Int("cache_hits", r.CacheHits),
		slog.Int("blocks_fetched", r.BlocksFetched),
		slog.Int64("hops", r.Hops),
		slog.Int64("retries", r.Retries),
		slog.Int64("timeouts", r.Timeouts),
		slog.Int("index_matches", r.IndexMatches),
		slog.Int("candidate_docs", r.CandidateDocs),
		slog.Int("answers", r.Answers),
		slog.Bool("incomplete", r.Incomplete),
		slog.Int("failed_peers", r.FailedPeers),
		slog.String("err", r.Err),
	}
	if r.TraceID != "" {
		attrs = append(attrs, slog.String("trace_id", r.TraceID))
	}
	if r.Slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if r.Trace != nil {
		attrs = append(attrs, slog.Any("trace", r.Trace))
	}
	l.lg.LogAttrs(context.Background(), slog.LevelInfo, "query", attrs...)
}

// DurNS converts a duration to the record's nanosecond representation.
func DurNS(d time.Duration) int64 { return d.Nanoseconds() }
