package querylog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{})
	if !l.Sample() {
		t.Fatal("rate 1 should sample every query")
	}
	l.Log(Record{
		Query:         `//article//author[. contains "Ullman"]`,
		Strategy:      "conventional",
		IndexNS:       DurNS(3 * time.Millisecond),
		FirstAnswerNS: DurNS(time.Millisecond),
		TotalNS:       DurNS(5 * time.Millisecond),
		PostingBytes:  1500,
		CacheHits:     2,
		Hops:          7,
		Retries:       1,
		IndexMatches:  4,
		CandidateDocs: 3,
		Answers:       4,
	})

	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one JSONL line, got:\n%s", buf.String())
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, line)
	}
	checks := map[string]any{
		"query":           `//article//author[. contains "Ullman"]`,
		"strategy":        "conventional",
		"index_ns":        float64(3e6),
		"first_answer_ns": float64(1e6),
		"total_ns":        float64(5e6),
		"posting_bytes":   float64(1500),
		"cache_hits":      float64(2),
		"hops":            float64(7),
		"retries":         float64(1),
		"index_matches":   float64(4),
		"candidate_docs":  float64(3),
		"answers":         float64(4),
		"incomplete":      false,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("%s = %v (%T), want %v", k, got[k], got[k], want)
		}
	}
	if _, ok := got["time"]; !ok {
		t.Error("record missing slog timestamp")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	l := New(io.Discard, Options{SampleRate: 0.25})
	var logged int
	for i := 0; i < 100; i++ {
		if l.Sample() {
			logged++
		}
	}
	if logged != 25 {
		t.Errorf("rate 0.25 over 100 queries logged %d, want 25", logged)
	}
	// First query is always sampled so one-shot CLI runs produce a line.
	l2 := New(io.Discard, Options{SampleRate: 0.01})
	if !l2.Sample() {
		t.Error("first query not sampled at rate 0.01")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	if l.Sample() {
		t.Error("nil logger should never sample")
	}
	l.Log(Record{Query: "x"}) // must not panic
}

func TestEveryLineParses(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{SampleRate: 0.5})
	for i := 0; i < 10; i++ {
		if l.Sample() {
			l.Log(Record{Query: "q", Answers: i})
		}
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
	}
	if lines != 5 {
		t.Errorf("rate 0.5 over 10 queries wrote %d lines, want 5", lines)
	}
}
