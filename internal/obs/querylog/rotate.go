package querylog

import (
	"fmt"
	"os"
	"sync"
)

// RotatingWriter is a size-capped JSONL sink: when the current file
// would exceed MaxBytes, it is renamed to <path>.1 (shifting older
// generations up, dropping the one past Keep) and a fresh file is
// opened. Long-lived peers keep a bounded disk footprint instead of an
// unbounded query log. Safe for concurrent use; each Write is one
// whole record (slog emits one line per call), so rotation never
// splits a line.
type RotatingWriter struct {
	path     string
	maxBytes int64
	keep     int

	mu   sync.Mutex
	f    *os.File
	size int64
}

// DefaultMaxLogBytes is the rotation threshold when none is given.
const DefaultMaxLogBytes = 64 << 20

// OpenRotating opens (appending to) path with rotation at maxBytes
// (default 64 MiB when <= 0), retaining keep rotated generations
// (default 3 when <= 0): path, path.1 (newest rotated) … path.<keep>.
func OpenRotating(path string, maxBytes int64, keep int) (*RotatingWriter, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxLogBytes
	}
	if keep <= 0 {
		keep = 3
	}
	w := &RotatingWriter{path: path, maxBytes: maxBytes, keep: keep}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("querylog: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("querylog: stat: %w", err)
	}
	w.f, w.size = f, st.Size()
	return nil
}

// Write appends one record, rotating first when it would push the file
// past the cap. A record larger than the cap still lands (in a file of
// its own) rather than being dropped.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, os.ErrClosed
	}
	if w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate closes the current file, shifts the retained generations and
// opens a fresh one. Called with the lock held.
func (w *RotatingWriter) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("querylog: rotate close: %w", err)
	}
	w.f = nil
	os.Remove(fmt.Sprintf("%s.%d", w.path, w.keep))
	for i := w.keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", w.path, i), fmt.Sprintf("%s.%d", w.path, i+1))
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("querylog: rotate: %w", err)
	}
	return w.open()
}

// Close closes the current file. Further writes fail.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
