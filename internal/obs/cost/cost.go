// Package cost accumulates per-query operator actuals: how much work
// each phase of a query did, as opposed to how long it took (the trace
// plane) or how often it happened (the metrics plane). A single
// Counters value rides the query's context through the fetch, join and
// answer phases; every operator adds to it with atomic increments, so
// goroutine fan-out (parallel DPP block fetches, per-vector joins,
// per-peer answer RPCs) needs no locking and no plumbing beyond the
// context it already receives.
//
// The package sits below every layer that does query work — dpp,
// twigjoin, pattern, kadop — and imports none of them, so any operator
// can count without creating an import cycle.
package cost

import (
	"context"
	"sync/atomic"
)

// Counters is the mutable per-query accumulator. All fields are
// updated atomically; read a consistent view with Snapshot. The zero
// value is ready to use, and a nil *Counters is safe to call: every
// adder is a no-op, so operators count unconditionally and pay one nil
// check when no query is being measured.
type Counters struct {
	// Fetch phase: index retrieval work.
	rootFetches   atomic.Int64 // DPP root descriptors fetched
	blocksFetched atomic.Int64 // posting blocks transferred over the wire
	cacheHits     atomic.Int64 // blocks served from the local block cache
	wireBytes     atomic.Int64 // posting bytes that actually crossed the network
	replicaProbes atomic.Int64 // speculative probes of advertised replicas
	shedRetries   atomic.Int64 // fetches retried after an overload shed

	// Join phase: index twig-join work.
	postingsScanned atomic.Int64 // postings pulled through join heads
	candidates      atomic.Int64 // per-node candidates collected before pruning
	pruned          atomic.Int64 // candidates discarded by structural pruning
	indexMatches    atomic.Int64 // document keys surviving the index join

	// Answers phase: second-phase document evaluation.
	docsEvaluated   atomic.Int64 // documents run through pattern matching
	elementsScanned atomic.Int64 // document elements visited while matching
	answers         atomic.Int64 // final matches produced
}

// Snapshot is an immutable copy of a Counters, safe to store, compare
// and serialise.
type Snapshot struct {
	RootFetches   int64 `json:"root_fetches"`
	BlocksFetched int64 `json:"blocks_fetched"`
	CacheHits     int64 `json:"cache_hits"`
	WireBytes     int64 `json:"wire_bytes"`
	ReplicaProbes int64 `json:"replica_probes"`
	ShedRetries   int64 `json:"shed_retries"`

	PostingsScanned int64 `json:"postings_scanned"`
	Candidates      int64 `json:"candidates"`
	Pruned          int64 `json:"pruned"`
	IndexMatches    int64 `json:"index_matches"`

	DocsEvaluated   int64 `json:"docs_evaluated"`
	ElementsScanned int64 `json:"elements_scanned"`
	Answers         int64 `json:"answers"`
}

// Snapshot reads every counter atomically. The fields are read
// independently, so a snapshot taken concurrently with updates is a
// point-in-time-per-field view — exact once the query has finished,
// which is when callers read it.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		RootFetches:     c.rootFetches.Load(),
		BlocksFetched:   c.blocksFetched.Load(),
		CacheHits:       c.cacheHits.Load(),
		WireBytes:       c.wireBytes.Load(),
		ReplicaProbes:   c.replicaProbes.Load(),
		ShedRetries:     c.shedRetries.Load(),
		PostingsScanned: c.postingsScanned.Load(),
		Candidates:      c.candidates.Load(),
		Pruned:          c.pruned.Load(),
		IndexMatches:    c.indexMatches.Load(),
		DocsEvaluated:   c.docsEvaluated.Load(),
		ElementsScanned: c.elementsScanned.Load(),
		Answers:         c.answers.Load(),
	}
}

func (c *Counters) AddRootFetches(n int64) {
	if c != nil {
		c.rootFetches.Add(n)
	}
}

func (c *Counters) AddBlocksFetched(n int64) {
	if c != nil {
		c.blocksFetched.Add(n)
	}
}

func (c *Counters) AddCacheHits(n int64) {
	if c != nil {
		c.cacheHits.Add(n)
	}
}

func (c *Counters) AddWireBytes(n int64) {
	if c != nil {
		c.wireBytes.Add(n)
	}
}

func (c *Counters) AddReplicaProbes(n int64) {
	if c != nil {
		c.replicaProbes.Add(n)
	}
}

func (c *Counters) AddShedRetries(n int64) {
	if c != nil {
		c.shedRetries.Add(n)
	}
}

func (c *Counters) AddPostingsScanned(n int64) {
	if c != nil {
		c.postingsScanned.Add(n)
	}
}

func (c *Counters) AddCandidates(n int64) {
	if c != nil {
		c.candidates.Add(n)
	}
}

func (c *Counters) AddPruned(n int64) {
	if c != nil {
		c.pruned.Add(n)
	}
}

func (c *Counters) AddIndexMatches(n int64) {
	if c != nil {
		c.indexMatches.Add(n)
	}
}

func (c *Counters) AddDocsEvaluated(n int64) {
	if c != nil {
		c.docsEvaluated.Add(n)
	}
}

func (c *Counters) AddElementsScanned(n int64) {
	if c != nil {
		c.elementsScanned.Add(n)
	}
}

func (c *Counters) AddAnswers(n int64) {
	if c != nil {
		c.answers.Add(n)
	}
}

type ctxKey struct{}

// NewContext returns a context carrying c. Operators downstream
// recover it with FromContext.
func NewContext(ctx context.Context, c *Counters) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the query's Counters, or nil when the context
// carries none. The nil result is directly usable — every adder on a
// nil receiver is a no-op.
func FromContext(ctx context.Context) *Counters {
	c, _ := ctx.Value(ctxKey{}).(*Counters)
	return c
}
