package cost

import (
	"context"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var c *Counters
	c.AddRootFetches(1)
	c.AddBlocksFetched(1)
	c.AddCacheHits(1)
	c.AddWireBytes(1)
	c.AddReplicaProbes(1)
	c.AddShedRetries(1)
	c.AddPostingsScanned(1)
	c.AddCandidates(1)
	c.AddPruned(1)
	c.AddIndexMatches(1)
	c.AddDocsEvaluated(1)
	c.AddElementsScanned(1)
	c.AddAnswers(1)
	if got := c.Snapshot(); got != (Snapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	c := new(Counters)
	ctx := NewContext(context.Background(), c)
	if got := FromContext(ctx); got != c {
		t.Fatalf("FromContext = %v, want %v", got, c)
	}
	got := FromContext(ctx)
	got.AddAnswers(3)
	if c.Snapshot().Answers != 3 {
		t.Errorf("answers = %d, want 3", c.Snapshot().Answers)
	}
}

// TestConcurrentPhaseUpdates hammers every adder from concurrent
// goroutines, mimicking parallel block fetches, per-vector joins and
// per-peer answer handlers updating one query's counters at once. Run
// under -race it proves the accumulator needs no external locking.
func TestConcurrentPhaseUpdates(t *testing.T) {
	c := new(Counters)
	ctx := NewContext(context.Background(), c)
	const (
		workers = 8
		rounds  = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := FromContext(ctx)
			for i := 0; i < rounds; i++ {
				cc.AddRootFetches(1)
				cc.AddBlocksFetched(2)
				cc.AddCacheHits(1)
				cc.AddWireBytes(18)
				cc.AddReplicaProbes(1)
				cc.AddShedRetries(1)
				cc.AddPostingsScanned(5)
				cc.AddCandidates(3)
				cc.AddPruned(2)
				cc.AddIndexMatches(1)
				cc.AddDocsEvaluated(1)
				cc.AddElementsScanned(7)
				cc.AddAnswers(1)
				// Interleave snapshots with writes to prove reads
				// never tear under the race detector.
				_ = cc.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	n := int64(workers * rounds)
	want := Snapshot{
		RootFetches: n, BlocksFetched: 2 * n, CacheHits: n, WireBytes: 18 * n,
		ReplicaProbes: n, ShedRetries: n,
		PostingsScanned: 5 * n, Candidates: 3 * n, Pruned: 2 * n, IndexMatches: n,
		DocsEvaluated: n, ElementsScanned: 7 * n, Answers: n,
	}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}
}
