package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// TermCard is one term's cluster-wide cardinality: per-peer statistics
// registries summed. Because every publish increments exactly one
// peer's registry, the sums are globally correct document and posting
// counts for the term.
type TermCard struct {
	Term     string
	Docs     int64
	Postings int64
	Bytes    int64
}

// StatsSummary is the cluster-merged view of the peers' statistics
// registries: global term cardinalities and the estimate-vs-actual
// error distribution across every completed query in the cluster.
type StatsSummary struct {
	Terms []TermCard
	// Queries is the total completed queries that trained selectivities.
	Queries int64
	// ErrCount/ErrP50/ErrP95 summarise the merged estimation-error
	// histogram: how far off the registries' cardinality estimates ran,
	// as relative error (0.1 = 10% off). All values are finite; a
	// cluster with no observed queries reports zeros.
	ErrCount int64
	ErrP50   float64
	ErrP95   float64
}

// mergeStats folds every peer's kadop_stats_* families into one
// summary, keeping the topK heaviest terms (0 = all). Returns nil when
// no scraped peer exports statistics series.
func mergeStats(scrapes []*PeerScrape, topK int) *StatsSummary {
	terms := map[string]*TermCard{}
	term := func(name string) *TermCard {
		if t := terms[name]; t != nil {
			return t
		}
		t := &TermCard{Term: name}
		terms[name] = t
		return t
	}
	errBuckets := map[float64]int64{}
	var errBounds []float64
	s := &StatsSummary{}
	seen := false
	for _, ps := range scrapes {
		for _, sm := range ps.Samples {
			switch sm.Name {
			case "kadop_stats_term_docs":
				term(sm.Label("term")).Docs += int64(sm.Value)
				seen = true
			case "kadop_stats_term_postings":
				term(sm.Label("term")).Postings += int64(sm.Value)
				seen = true
			case "kadop_stats_term_bytes":
				term(sm.Label("term")).Bytes += int64(sm.Value)
				seen = true
			case "kadop_stats_queries_observed_total":
				s.Queries += int64(sm.Value)
				seen = true
			case "kadop_stats_est_error_bucket":
				leStr := sm.Label("le")
				if leStr == "+Inf" {
					continue
				}
				le, err := parseValue(leStr)
				if err != nil {
					continue
				}
				if _, ok := errBuckets[le]; !ok {
					errBounds = append(errBounds, le)
				}
				errBuckets[le] += int64(sm.Value)
				seen = true
			case "kadop_stats_est_error_count":
				s.ErrCount += int64(sm.Value)
				seen = true
			}
		}
	}
	if !seen {
		return nil
	}
	for _, t := range terms {
		s.Terms = append(s.Terms, *t)
	}
	sort.Slice(s.Terms, func(i, j int) bool {
		if s.Terms[i].Bytes != s.Terms[j].Bytes {
			return s.Terms[i].Bytes > s.Terms[j].Bytes
		}
		return s.Terms[i].Term < s.Terms[j].Term
	})
	if topK > 0 && len(s.Terms) > topK {
		s.Terms = s.Terms[:topK]
	}
	sort.Float64s(errBounds)
	cum := make([]int64, 0, len(errBounds))
	for _, b := range errBounds {
		cum = append(cum, errBuckets[b])
	}
	s.ErrP50 = histQuantile(errBounds, cum, s.ErrCount, 0.50)
	s.ErrP95 = histQuantile(errBounds, cum, s.ErrCount, 0.95)
	return s
}

// formatStats renders the statistics section of the kadop-top view.
func (s *StatsSummary) format(b *strings.Builder) {
	if s == nil {
		return
	}
	fmt.Fprintf(b, "stats: %d queries observed, est error p50 %.3f p95 %.3f (n=%d)\n",
		s.Queries, s.ErrP50, s.ErrP95, s.ErrCount)
	if len(s.Terms) > 0 {
		fmt.Fprintf(b, "%-28s %10s %10s %12s\n", "term (cluster-wide)", "docs", "postings", "bytes")
		for i, t := range s.Terms {
			if i >= 8 {
				break
			}
			fmt.Fprintf(b, "%-28s %10d %10d %12s\n", t.Term, t.Docs, t.Postings, fmtBytes(t.Bytes))
		}
	}
}
