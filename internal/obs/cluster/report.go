package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/obs/slo"
)

// PeerRow is one peer's line in the load table.
type PeerRow struct {
	Target         string
	BytesServed    int64
	PostingsServed int64
	BlocksServed   int64
	Appends        int64
	AppendBytes    int64
	TopTerm        string
}

// OpLatency is one operation's cluster-merged latency summary.
type OpLatency struct {
	Op    string
	Count int64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// SLORow is one objective's cluster-merged state, built from the
// kadop_slo_* gauges of every peer running an SLO engine.
type SLORow struct {
	Name string
	// Target is the good fraction required (from kadop_slo_target_ppm).
	Target float64
	// BudgetRemaining is the worst (minimum) remaining error-budget
	// fraction across peers.
	BudgetRemaining float64
	// MaxBurn is the hottest burn rate across peers and windows.
	MaxBurn float64
	// Alerting is true when any peer has an alerting burn window for
	// this objective; Severity is "page" when any page window fires,
	// else "ticket".
	Alerting bool
	Severity string
}

// ExemplarRef is one histogram exemplar seen in a scrape: a trace id
// pinned to a latency observation, the handle for "go look at that
// exact slow query".
type ExemplarRef struct {
	Peer    string
	Op      string
	TraceID uint64
	Seconds float64
}

// Report is the cluster-wide view built from a set of peer scrapes.
type Report struct {
	Peers []PeerRow
	// MaxMeanRatio is max(bytes served) / mean(bytes served): 1.0 is a
	// perfectly flat cluster; the paper's hot terms push it toward the
	// peer count.
	MaxMeanRatio float64
	// Gini is the Gini coefficient over per-peer bytes served (0 flat,
	// →1 one peer does all the work).
	Gini float64
	// HotTerms are cluster-wide: per-peer sketches merged by summing
	// byte weights per term.
	HotTerms []metrics.HotTerm
	// Ops are latency summaries from the peers' merged histograms.
	Ops []OpLatency
	// SLOs summarise the peers' SLO engines; empty when no scraped peer
	// exports kadop_slo_* series.
	SLOs []SLORow
	// SLOVerdict is the one-line cluster health call ("" without SLOs).
	SLOVerdict string
	// Exemplars are the slowest histogram exemplars scraped, worst
	// first — trace ids of real outlier queries.
	Exemplars []ExemplarRef
	// Stats merges the peers' statistics registries (nil when no peer
	// exports kadop_stats_* series).
	Stats *StatsSummary
	// SampleCount is the total exposition samples scraped.
	SampleCount int
}

// BuildReport merges peer scrapes into one report, keeping the topK
// heaviest cluster-wide hot terms (0 = all).
func BuildReport(scrapes []*PeerScrape, topK int) *Report {
	r := &Report{}
	hot := map[string]int64{}
	var bytes []int64
	for _, ps := range scrapes {
		r.SampleCount += len(ps.Samples)
		row := PeerRow{
			Target:         ps.Target,
			BytesServed:    ps.Load.BytesServed,
			PostingsServed: ps.Load.PostingsServed,
			BlocksServed:   ps.Load.BlocksServed,
			Appends:        ps.Load.Appends,
			AppendBytes:    ps.Load.AppendBytes,
		}
		if len(ps.Load.HotTerms) > 0 {
			row.TopTerm = ps.Load.HotTerms[0].Term
		}
		for _, ht := range ps.Load.HotTerms {
			hot[ht.Term] += ht.Bytes
		}
		r.Peers = append(r.Peers, row)
		bytes = append(bytes, ps.Load.BytesServed)
	}
	r.MaxMeanRatio = maxMeanRatio(bytes)
	r.Gini = Gini(bytes)
	for term, b := range hot {
		r.HotTerms = append(r.HotTerms, metrics.HotTerm{Term: term, Bytes: b})
	}
	sort.Slice(r.HotTerms, func(i, j int) bool {
		if r.HotTerms[i].Bytes != r.HotTerms[j].Bytes {
			return r.HotTerms[i].Bytes > r.HotTerms[j].Bytes
		}
		return r.HotTerms[i].Term < r.HotTerms[j].Term
	})
	if topK > 0 && len(r.HotTerms) > topK {
		r.HotTerms = r.HotTerms[:topK]
	}
	r.Ops = mergeOps(scrapes)
	r.SLOs = mergeSLOs(scrapes)
	r.SLOVerdict = sloVerdict(r.SLOs)
	r.Exemplars = collectExemplars(scrapes, 5)
	r.Stats = mergeStats(scrapes, topK)
	return r
}

// mergeSLOs folds every peer's kadop_slo_* gauges into one row per
// objective: the worst budget, the hottest burn, alerting if anyone
// alerts.
func mergeSLOs(scrapes []*PeerScrape) []SLORow {
	rows := map[string]*SLORow{}
	row := func(name string) *SLORow {
		if r := rows[name]; r != nil {
			return r
		}
		r := &SLORow{Name: name, BudgetRemaining: 1}
		rows[name] = r
		return r
	}
	for _, ps := range scrapes {
		for _, s := range ps.Samples {
			name := s.Label("slo")
			if name == "" {
				continue
			}
			switch s.Name {
			case "kadop_slo_target_ppm":
				row(name).Target = s.Value / 1e6
			case "kadop_slo_budget_remaining_ppm":
				if b := s.Value / 1e6; b < row(name).BudgetRemaining {
					row(name).BudgetRemaining = b
				}
			case "kadop_slo_burn_rate_milli":
				if burn := s.Value / 1e3; burn > row(name).MaxBurn {
					row(name).MaxBurn = burn
				}
			case "kadop_slo_alert":
				if s.Value < 1 {
					continue
				}
				r := row(name)
				r.Alerting = true
				if sev := s.Label("severity"); sev == "page" || r.Severity == "" {
					r.Severity = sev
				}
			}
		}
	}
	out := make([]SLORow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sloVerdict renders the cluster health call with the engine's own
// Verdict, so kadop-top and /debug/slo always agree on the wording.
func sloVerdict(rows []SLORow) string {
	if len(rows) == 0 {
		return ""
	}
	statuses := make([]slo.Status, 0, len(rows))
	for _, r := range rows {
		statuses = append(statuses, slo.Status{Name: r.Name, Alerting: r.Alerting, Severity: r.Severity})
	}
	return slo.Verdict(statuses)
}

// collectExemplars gathers the topK slowest histogram exemplars across
// the scrapes.
func collectExemplars(scrapes []*PeerScrape, topK int) []ExemplarRef {
	var out []ExemplarRef
	for _, ps := range scrapes {
		for _, s := range ps.Samples {
			if s.Exemplar == nil || s.Name != "kadop_op_latency_seconds_bucket" {
				continue
			}
			id := s.Exemplar.TraceID()
			if id == 0 {
				continue
			}
			out = append(out, ExemplarRef{
				Peer:    ps.Target,
				Op:      s.Label("op"),
				TraceID: id,
				Seconds: s.Exemplar.Value,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].TraceID < out[j].TraceID
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// maxMeanRatio returns max/mean over the values (0 when empty or all
// zero).
func maxMeanRatio(vals []int64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var max, sum int64
	for _, v := range vals {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(vals))
	return float64(max) / mean
}

// Gini returns the Gini coefficient of the values: half the relative
// mean absolute difference. 0 when empty or all zero.
func Gini(vals []int64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, weighted float64
	for i, v := range sorted {
		sum += float64(v)
		weighted += float64(i+1) * float64(v)
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*sum) - float64(n+1)/float64(n)
}

// mergedHist reconstructs one operation's histogram from _bucket
// samples summed across peers.
type mergedHist struct {
	bounds []float64 // ascending le bounds, seconds; +Inf excluded
	cum    []int64   // cumulative counts per bound
	total  int64
}

func (h *mergedHist) quantile(q float64) time.Duration {
	return time.Duration(histQuantile(h.bounds, h.cum, h.total, q) * float64(time.Second))
}

// histQuantile interpolates a quantile from cumulative bucket counts.
// It is hardened against the merges a real scrape produces: zero
// observations (a peer that has served nothing yet) return 0, and a
// bucket whose count does not advance past its predecessor — possible
// when peers disagree on bounds — contributes its upper bound instead
// of dividing by zero. The result is always finite.
func histQuantile(bounds []float64, cum []int64, total int64, q float64) float64 {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1
	var prev int64
	lo := 0.0
	for i, c := range cum {
		if c >= rank {
			n := c - prev
			hi := bounds[i]
			if n <= 0 {
				return hi
			}
			frac := float64(rank-prev) / float64(n)
			return lo + frac*(hi-lo)
		}
		prev = c
		lo = bounds[i]
	}
	return bounds[len(bounds)-1]
}

// mergeOps merges kadop_op_latency_seconds histograms across peers.
func mergeOps(scrapes []*PeerScrape) []OpLatency {
	type key struct {
		op string
		le float64
	}
	buckets := map[key]int64{}
	totals := map[string]int64{}
	bounds := map[string]map[float64]bool{}
	for _, ps := range scrapes {
		for _, s := range ps.Samples {
			switch s.Name {
			case "kadop_op_latency_seconds_bucket":
				op := s.Label("op")
				leStr := s.Label("le")
				if leStr == "+Inf" {
					continue
				}
				le, err := parseValue(leStr)
				if err != nil {
					continue
				}
				buckets[key{op, le}] += int64(s.Value)
				if bounds[op] == nil {
					bounds[op] = map[float64]bool{}
				}
				bounds[op][le] = true
			case "kadop_op_latency_seconds_count":
				totals[s.Label("op")] += int64(s.Value)
			}
		}
	}
	ops := make([]string, 0, len(totals))
	for op := range totals {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	out := make([]OpLatency, 0, len(ops))
	for _, op := range ops {
		bs := make([]float64, 0, len(bounds[op]))
		for b := range bounds[op] {
			bs = append(bs, b)
		}
		sort.Float64s(bs)
		h := &mergedHist{bounds: bs, total: totals[op]}
		for _, b := range bs {
			h.cum = append(h.cum, buckets[key{op, b}])
		}
		out = append(out, OpLatency{
			Op:    op,
			Count: totals[op],
			P50:   h.quantile(0.50),
			P95:   h.quantile(0.95),
			P99:   h.quantile(0.99),
		})
	}
	return out
}

// Format renders the report as the kadop-top load table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster load — %d peers, %d samples\n", len(r.Peers), r.SampleCount)
	fmt.Fprintf(&b, "%-28s %12s %10s %8s %9s  %s\n",
		"peer", "bytes-served", "postings", "blocks", "appends", "top-term")
	for _, p := range r.Peers {
		fmt.Fprintf(&b, "%-28s %12s %10d %8d %9d  %s\n",
			p.Target, fmtBytes(p.BytesServed), p.PostingsServed, p.BlocksServed, p.Appends, p.TopTerm)
	}
	fmt.Fprintf(&b, "imbalance: max/mean %.2f, Gini %.3f\n", r.MaxMeanRatio, r.Gini)
	if len(r.HotTerms) > 0 {
		b.WriteString("hot terms (cluster-wide):")
		for i, ht := range r.HotTerms {
			if i >= 8 {
				break
			}
			fmt.Fprintf(&b, " %s=%s", ht.Term, fmtBytes(ht.Bytes))
		}
		b.WriteByte('\n')
	}
	if len(r.Ops) > 0 {
		fmt.Fprintf(&b, "%-20s %10s %12s %12s %12s\n", "op (merged)", "count", "p50", "p95", "p99")
		for _, o := range r.Ops {
			fmt.Fprintf(&b, "%-20s %10d %12v %12v %12v\n", o.Op, o.Count, o.P50, o.P95, o.P99)
		}
	}
	if r.SLOVerdict != "" {
		fmt.Fprintf(&b, "slo: %s\n", r.SLOVerdict)
		for _, s := range r.SLOs {
			state := "ok"
			if s.Alerting {
				state = "BURN " + s.Severity
			}
			fmt.Fprintf(&b, "  %-22s target %.4g%%  budget %6.1f%%  burn %5.1fx  %s\n",
				s.Name, s.Target*100, s.BudgetRemaining*100, s.MaxBurn, state)
		}
	}
	if len(r.Exemplars) > 0 {
		b.WriteString("slow exemplars:\n")
		for _, e := range r.Exemplars {
			fmt.Fprintf(&b, "  trace %016x  %-16s %9.2gs  %s\n", e.TraceID, e.Op, e.Seconds, e.Peer)
		}
	}
	r.Stats.format(&b)
	return b.String()
}

func fmtBytes(n int64) string {
	f := float64(n)
	switch {
	case f >= 1<<30:
		return fmt.Sprintf("%.2fGB", f/(1<<30))
	case f >= 1<<20:
		return fmt.Sprintf("%.2fMB", f/(1<<20))
	case f >= 1<<10:
		return fmt.Sprintf("%.1fKB", f/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
