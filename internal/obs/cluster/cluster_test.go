package cluster

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"kadop/internal/admin"
	"kadop/internal/metrics"
)

func TestParseExposition(t *testing.T) {
	in := `# HELP kadop_traffic_bytes_total DHT message bytes by traffic class.
# TYPE kadop_traffic_bytes_total counter
kadop_traffic_bytes_total{class="postings"} 1500
kadop_op_latency_seconds_bucket{op="lookup",le="4e-06"} 1
kadop_op_latency_seconds_bucket{op="lookup",le="+Inf"} 3
kadop_hot_term_bytes{term="l:we\"ird\\term\n"} 36
kadop_load_bytes_served_total 396
`
	samples, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	if samples[0].Name != "kadop_traffic_bytes_total" || samples[0].Label("class") != "postings" || samples[0].Value != 1500 {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	if samples[1].Label("le") != "4e-06" {
		t.Errorf("le label = %q", samples[1].Label("le"))
	}
	if got := samples[3].Label("term"); got != "l:we\"ird\\term\n" {
		t.Errorf("unescaped term = %q", got)
	}
	if samples[4].Value != 396 || len(samples[4].Labels) != 0 {
		t.Errorf("bare sample = %+v", samples[4])
	}
}

func TestParseExpositionExemplar(t *testing.T) {
	in := `kadop_op_latency_seconds_bucket{op="query-total",le="0.004096"} 7 # {trace_id="00000000deadbeef"} 0.0031
kadop_op_latency_seconds_bucket{op="query-total",le="+Inf"} 9
`
	samples, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	s := samples[0]
	if s.Value != 7 {
		t.Errorf("bucket value = %v", s.Value)
	}
	if s.Exemplar == nil {
		t.Fatal("exemplar not parsed")
	}
	if got := s.Exemplar.TraceID(); got != 0xdeadbeef {
		t.Errorf("exemplar trace id = %#x", got)
	}
	if math.Abs(s.Exemplar.Value-0.0031) > 1e-12 {
		t.Errorf("exemplar value = %v", s.Exemplar.Value)
	}
	if samples[1].Exemplar != nil {
		t.Errorf("bare bucket grew an exemplar: %+v", samples[1].Exemplar)
	}
}

func TestParseExpositionRejectsMalformedExemplar(t *testing.T) {
	bad := []string{
		"kadop_b{op=\"x\"} 1 # trace_id=\"7\" 0.1\n",    // no label braces
		"kadop_b{op=\"x\"} 1 # {trace_id=\"7\"} ten\n",  // bad exemplar value
		"kadop_b{op=\"x\"} 1 # {trace_id=\"7\" 0.1\n",   // unterminated labels
		"kadop_b{op=\"x\"} 1 # {trace_id=\"a\\q\"} 1\n", // bad escape
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed exemplar %q", in)
		}
	}
}

// TestEscapingRoundTrip feeds label values containing every escapable
// character through the real exporter and back through this parser,
// exemplars included: what the exporter writes, the scraper must read
// back byte-identically.
func TestEscapingRoundTrip(t *testing.T) {
	weird := "we\"ird\\term\nwith all three"
	col := metrics.NewCollector()
	col.Count(metrics.Class(weird), 64)
	col.ObserveExemplar(metrics.OpQueryTotal, 3*time.Millisecond, 0x77)
	load := metrics.NewLoad(4)
	load.Serve(weird, 2)

	var buf strings.Builder
	if err := metrics.WriteProm(&buf, metrics.PromOptions{Collector: col, Load: load}); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parser rejected exporter output: %v\n%s", err, buf.String())
	}
	var gotClass, gotTerm, gotExemplar bool
	for _, s := range samples {
		if s.Name == "kadop_traffic_bytes_total" && s.Label("class") == weird {
			gotClass = true
		}
		if s.Name == "kadop_hot_term_bytes" && s.Label("term") == weird {
			gotTerm = true
		}
		if s.Name == "kadop_op_latency_seconds_bucket" && s.Exemplar != nil {
			if got := s.Exemplar.TraceID(); got != 0x77 {
				t.Errorf("round-tripped exemplar trace id = %#x", got)
			}
			gotExemplar = true
		}
	}
	if !gotClass || !gotTerm || !gotExemplar {
		t.Fatalf("round trip lost data: class=%v term=%v exemplar=%v\n%s",
			gotClass, gotTerm, gotExemplar, buf.String())
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"kadop_bytes{class=\"postings\" 15\n", // unterminated label set
		"kadop_bytes{class=postings} 15\n",    // unquoted value
		"kadop_bytes fifteen\n",               // non-numeric value
		"0bad_name 3\n",                       // invalid metric name
		"# TYPE kadop_bytes widget\n",         // unknown type
		"kadop_bytes{class=\"a\\q\"} 1\n",     // bad escape
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestGini(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := Gini([]int64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("flat Gini = %v, want 0", g)
	}
	// One peer does everything: Gini = (n-1)/n.
	if g := Gini([]int64{0, 0, 0, 100}); math.Abs(g-0.75) > 1e-9 {
		t.Errorf("concentrated Gini = %v, want 0.75", g)
	}
	flat := Gini([]int64{90, 100, 110, 100})
	skew := Gini([]int64{10, 20, 30, 340})
	if flat >= skew {
		t.Errorf("flat %v should be < skewed %v", flat, skew)
	}
}

func TestMaxMeanRatio(t *testing.T) {
	if r := maxMeanRatio([]int64{100, 100, 100, 100}); math.Abs(r-1) > 1e-9 {
		t.Errorf("flat ratio = %v", r)
	}
	if r := maxMeanRatio([]int64{0, 0, 0, 400}); math.Abs(r-4) > 1e-9 {
		t.Errorf("concentrated ratio = %v", r)
	}
}

func mkSample(name string, labels map[string]string, v float64) Sample {
	if labels == nil {
		labels = map[string]string{}
	}
	return Sample{Name: name, Labels: labels, Value: v}
}

func TestMergeStats(t *testing.T) {
	a := &PeerScrape{Target: "a", Samples: []Sample{
		mkSample("kadop_stats_term_docs", map[string]string{"term": "l:author"}, 2),
		mkSample("kadop_stats_term_postings", map[string]string{"term": "l:author"}, 6),
		mkSample("kadop_stats_term_bytes", map[string]string{"term": "l:author"}, 108),
		mkSample("kadop_stats_queries_observed_total", nil, 3),
		mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "0.1"}, 1),
		mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "0.5"}, 3),
		mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "+Inf"}, 3),
		mkSample("kadop_stats_est_error_count", nil, 3),
	}}
	b := &PeerScrape{Target: "b", Samples: []Sample{
		mkSample("kadop_stats_term_docs", map[string]string{"term": "l:author"}, 5),
		mkSample("kadop_stats_term_postings", map[string]string{"term": "l:author"}, 10),
		mkSample("kadop_stats_term_bytes", map[string]string{"term": "l:author"}, 180),
		mkSample("kadop_stats_term_docs", map[string]string{"term": "l:title"}, 1),
		mkSample("kadop_stats_queries_observed_total", nil, 1),
		mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "0.1"}, 1),
		mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "0.5"}, 1),
		mkSample("kadop_stats_est_error_count", nil, 1),
	}}
	s := mergeStats([]*PeerScrape{a, b}, 0)
	if s == nil {
		t.Fatal("no stats merged")
	}
	if s.Queries != 4 || s.ErrCount != 4 {
		t.Errorf("queries/errcount = %d/%d, want 4/4", s.Queries, s.ErrCount)
	}
	if len(s.Terms) != 2 || s.Terms[0].Term != "l:author" {
		t.Fatalf("terms = %+v", s.Terms)
	}
	if got := s.Terms[0]; got.Docs != 7 || got.Postings != 16 || got.Bytes != 288 {
		t.Errorf("merged cardinality = %+v", got)
	}
	// 2 of 4 observations land in le=0.1: p50 within it, p95 above it.
	if s.ErrP50 <= 0 || s.ErrP50 > 0.1 || s.ErrP95 <= 0.1 || s.ErrP95 > 0.5 {
		t.Errorf("error quantiles = p50 %v p95 %v", s.ErrP50, s.ErrP95)
	}
	if m := mergeStats([]*PeerScrape{{Target: "c"}}, 0); m != nil {
		t.Errorf("statless scrape produced a summary: %+v", m)
	}
}

// TestZeroObservationPeers is the regression test for the quantile and
// imbalance merges: peers that have observed nothing — freshly joined,
// or idle — must never turn a report value into NaN or Inf.
func TestZeroObservationPeers(t *testing.T) {
	idle := func(target string) *PeerScrape {
		return &PeerScrape{Target: target, Samples: []Sample{
			mkSample("kadop_op_latency_seconds_bucket", map[string]string{"op": "lookup", "le": "0.001"}, 0),
			mkSample("kadop_op_latency_seconds_bucket", map[string]string{"op": "lookup", "le": "+Inf"}, 0),
			mkSample("kadop_op_latency_seconds_count", map[string]string{"op": "lookup"}, 0),
			mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "0.1"}, 0),
			mkSample("kadop_stats_est_error_count", nil, 0),
			mkSample("kadop_stats_queries_observed_total", nil, 0),
		}}
	}
	finite := func(rep *Report) {
		t.Helper()
		vals := []float64{rep.MaxMeanRatio, rep.Gini}
		for _, o := range rep.Ops {
			vals = append(vals, o.P50.Seconds(), o.P95.Seconds(), o.P99.Seconds())
		}
		if rep.Stats != nil {
			vals = append(vals, rep.Stats.ErrP50, rep.Stats.ErrP95)
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("report value %d is %v:\n%s", i, v, rep.Format())
			}
		}
	}
	// An entire cluster of zero-observation peers.
	rep := BuildReport([]*PeerScrape{idle("a"), idle("b")}, 0)
	finite(rep)
	if rep.Stats == nil || rep.Stats.ErrP50 != 0 || rep.Stats.ErrP95 != 0 {
		t.Errorf("idle cluster stats = %+v", rep.Stats)
	}
	// A mixed cluster: one busy peer, one idle.
	busy := &PeerScrape{Target: "c", Samples: []Sample{
		mkSample("kadop_op_latency_seconds_bucket", map[string]string{"op": "lookup", "le": "0.001"}, 2),
		mkSample("kadop_op_latency_seconds_count", map[string]string{"op": "lookup"}, 2),
		mkSample("kadop_stats_est_error_bucket", map[string]string{"le": "0.1"}, 1),
		mkSample("kadop_stats_est_error_count", nil, 1),
	}}
	busy.Load.BytesServed = 100
	finite(BuildReport([]*PeerScrape{idle("a"), busy}, 0))
	// Format renders without panicking on the degenerate report.
	if out := rep.Format(); !strings.Contains(out, "stats:") {
		t.Errorf("Format() missing stats section:\n%s", out)
	}
}

func TestHistQuantileDegenerate(t *testing.T) {
	if q := histQuantile(nil, nil, 0, 0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
	// A bucket whose cumulative count fails to advance (merge artifact)
	// yields its bound, not a division by zero.
	q := histQuantile([]float64{0.1, 0.2}, []int64{0, 2}, 2, 0.5)
	if math.IsNaN(q) || math.IsInf(q, 0) || q <= 0 {
		t.Errorf("non-advancing bucket quantile = %v", q)
	}
	// Count larger than any bucket (all mass in +Inf) clamps to the top
	// bound instead of running off the slice.
	if q := histQuantile([]float64{0.1}, []int64{0}, 5, 0.99); q != 0.1 {
		t.Errorf("overflow quantile = %v, want 0.1", q)
	}
}

// TestScrapeEndToEnd serves real admin endpoints over deterministic
// load/collector state and checks the scraped report end to end,
// merged histograms included.
func TestScrapeEndToEnd(t *testing.T) {
	var targets []string
	for i := 0; i < 3; i++ {
		col := metrics.NewCollector()
		load := metrics.NewLoad(8)
		// Peer i serves i*1000 postings of l:author: a skewed cluster.
		load.Serve("l:author", i*1000)
		load.ServeBlock()
		col.Observe(metrics.OpQueryTotal, time.Duration(i+1)*time.Millisecond)
		addr, stop, err := admin.Serve("127.0.0.1:0", admin.Options{Collector: col, Load: load})
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		targets = append(targets, addr)
	}

	var sc Scraper
	scrapes, err := sc.ScrapeAll(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(scrapes, 4)
	if len(rep.Peers) != 3 || rep.SampleCount == 0 {
		t.Fatalf("report = %+v", rep)
	}
	wantBytes := int64(2000) * metrics.PostingWireBytes
	var gotMax int64
	for _, p := range rep.Peers {
		if p.BytesServed > gotMax {
			gotMax = p.BytesServed
		}
	}
	if gotMax != wantBytes {
		t.Errorf("max bytes served = %d, want %d", gotMax, wantBytes)
	}
	// Cluster-wide hot terms merge per-peer sketches.
	if len(rep.HotTerms) != 1 || rep.HotTerms[0].Term != "l:author" || rep.HotTerms[0].Bytes != 3000*metrics.PostingWireBytes {
		t.Errorf("hot terms = %+v", rep.HotTerms)
	}
	if rep.MaxMeanRatio < 1.9 || rep.Gini <= 0 {
		t.Errorf("imbalance = ratio %v gini %v", rep.MaxMeanRatio, rep.Gini)
	}
	// Merged histogram: 3 query-total observations, one per peer.
	var found bool
	for _, o := range rep.Ops {
		if o.Op == metrics.OpQueryTotal {
			found = true
			if o.Count != 3 || o.P50 <= 0 {
				t.Errorf("merged op = %+v", o)
			}
		}
	}
	if !found {
		t.Error("merged ops missing query-total")
	}
	out := rep.Format()
	for _, want := range []string{"imbalance:", "Gini", "l:author", "query-total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
