// Package cluster scrapes the admin endpoints of a set of KadoP peers
// and merges them into one cluster-wide view: per-peer load rows, a
// load-imbalance report (max/mean ratio and Gini coefficient over
// bytes served), cluster-wide hot terms, and latency quantiles from
// merged histograms. It is the measurement half of the paper's load
// distribution story — DPP only matters if skew is visible.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its labels, and
// the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the OpenMetrics-style exemplar riding the line
	// (" # {labels} value"), nil when absent.
	Exemplar *Exemplar
}

// Exemplar is a traced observation attached to a histogram bucket line.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// TraceID returns the exemplar's trace_id label decoded from hex
// (0 when absent or malformed).
func (e *Exemplar) TraceID() uint64 {
	if e == nil {
		return 0
	}
	id, err := strconv.ParseUint(e.Labels["trace_id"], 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// Label returns a label value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseExposition parses Prometheus text exposition format strictly
// enough to catch a malformed exporter: unparsable lines are errors,
// not skips. Comment lines (# HELP / # TYPE) are validated for shape
// and discarded.
func ParseExposition(r io.Reader) ([]Sample, error) {
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[1+end:]
	}
	// An exemplar section may trail the sample (" # {labels} value",
	// OpenMetrics-style); split it off before value parsing.
	var exemplar string
	if j := strings.Index(rest, " # "); j >= 0 {
		exemplar = strings.TrimSpace(rest[j+3:])
		rest = rest[:j]
	}
	val := strings.TrimSpace(rest)
	// A timestamp may trail the value; the in-repo exporter emits none,
	// but tolerate it like a real scraper would.
	if j := strings.IndexByte(val, ' '); j >= 0 {
		val = val[:j]
	}
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", val, err)
	}
	s.Value = v
	if exemplar != "" {
		e, err := parseExemplar(exemplar)
		if err != nil {
			return s, err
		}
		s.Exemplar = e
	}
	return s, nil
}

// parseExemplar parses `{labels} value` after the " # " separator.
func parseExemplar(in string) (*Exemplar, error) {
	if in == "" || in[0] != '{' {
		return nil, fmt.Errorf("exemplar without label set in %q", in)
	}
	e := &Exemplar{Labels: map[string]string{}}
	end, err := parseLabels(in[1:], e.Labels)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	val := strings.TrimSpace(in[1+end:])
	// A timestamp may trail the exemplar value too.
	if j := strings.IndexByte(val, ' '); j >= 0 {
		val = val[:j]
	}
	v, err := parseValue(val)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %w", val, err)
	}
	e.Value = v
	return e, nil
}

// parseLabels parses `key="value",...}` starting after the opening
// brace, filling into; it returns the offset just past the closing
// brace.
func parseLabels(in string, into map[string]string) (int, error) {
	i := 0
	for {
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(in[i : i+eq])
		if key == "" || !validLabelName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: value not quoted", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %s: unterminated value", key)
			}
			c := in[i]
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, fmt.Errorf("label %s: dangling escape", key)
				}
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", key, in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		into[key] = b.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return float64(1<<63 - 1), nil // sentinel; only le labels carry Inf in practice
	case "-Inf":
		return -float64(1<<63 - 1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}
