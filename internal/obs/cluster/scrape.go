package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"kadop/internal/metrics"
)

// PeerScrape is one peer's scraped state: its parsed /metrics samples
// and its /debug/load ledger.
type PeerScrape struct {
	Target  string
	Samples []Sample
	Load    metrics.LoadExport
}

// Scraper pulls peers' admin endpoints. The zero value uses a default
// HTTP client with a 5-second timeout.
type Scraper struct {
	Client *http.Client
}

func (s *Scraper) client() *http.Client {
	if s != nil && s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Scrape pulls one peer. The target is a base URL ("http://host:port")
// or a bare "host:port". A scrape that returns no samples is an error —
// an empty exporter means the endpoint is miswired, and the CI smoke
// test relies on that failing loudly.
func (s *Scraper) Scrape(ctx context.Context, target string) (*PeerScrape, error) {
	base := target
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	body, err := s.get(ctx, base+"/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", target, err)
	}
	samples, err := ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		return nil, fmt.Errorf("scrape %s: malformed exposition: %w", target, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("scrape %s: no samples", target)
	}
	ps := &PeerScrape{Target: target, Samples: samples}

	loadBody, err := s.get(ctx, base+"/debug/load")
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", target, err)
	}
	if err := json.Unmarshal(loadBody, &ps.Load); err != nil {
		return nil, fmt.Errorf("scrape %s: /debug/load: %w", target, err)
	}
	return ps, nil
}

// ScrapeAll pulls every target, failing on the first unreachable or
// malformed peer.
func (s *Scraper) ScrapeAll(ctx context.Context, targets []string) ([]*PeerScrape, error) {
	out := make([]*PeerScrape, 0, len(targets))
	for _, t := range targets {
		ps, err := s.Scrape(ctx, t)
		if err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	return out, nil
}

func (s *Scraper) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
