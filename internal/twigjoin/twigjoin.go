// Package twigjoin implements the holistic twig join at the heart of
// KadoP's index-query processing (Sections 2-3 of the paper, after
// Bruno, Koudas and Srivastava's TwigStack).
//
// The join consumes one posting stream per query node, all in the
// canonical (peer, doc, start) order, and produces the answer tuples of
// the tree-pattern query. It is fully pipelined: postings are pulled
// from the streams one document at a time, so the join starts producing
// answers as soon as the producers have shipped the first documents'
// postings — this is what the paper's "pipelined get" enables.
//
// Within one document the join first prunes each node's candidates by
// structural semi-joins along the query edges (top-down, then
// bottom-up), then enumerates answer tuples by backtracking over the
// pruned candidate lists. Pruning makes the per-document work
// proportional to the surviving candidates, which for selective queries
// is far below the raw posting counts.
package twigjoin

import (
	"context"
	"fmt"
	"io"

	"kadop/internal/obs/cost"
	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sid"
)

// Match is one answer tuple: the document and one posting per query
// node in pre-order.
type Match struct {
	Doc      sid.DocKey
	Postings []sid.Posting
}

// Emit receives answer tuples as the join produces them. Returning an
// error aborts the join with that error.
type Emit func(Match) error

// ErrStop may be returned by an Emit callback to stop the join early
// without reporting an error (used for first-answer measurements).
var ErrStop = fmt.Errorf("twigjoin: stopped by consumer")

// head is a one-posting lookahead over a stream.
type head struct {
	s    postings.Stream
	cur  sid.Posting
	live bool
	c    *cost.Counters
}

func (h *head) advance() error {
	p, err := h.s.Next()
	if err == io.EOF {
		h.live = false
		return nil
	}
	if err != nil {
		return err
	}
	h.c.AddPostingsScanned(1)
	// Enforce canonical order so a buggy producer cannot silently
	// corrupt join results.
	if h.live && p.Less(h.cur) {
		return fmt.Errorf("twigjoin: stream out of order: %v after %v", p, h.cur)
	}
	h.cur = p
	h.live = true
	return nil
}

// Run evaluates the tree-pattern query q given one posting stream per
// query node (keyed by the node pointer, as returned by q.Nodes()).
// Wildcard nodes are not supported here: the index query is first
// projected to its non-wildcard nodes (see the kadop package), because
// the distributed index has no posting list for "*".
func Run(q *pattern.Query, streams map[*pattern.Node]postings.Stream, emit Emit) error {
	return RunContext(context.Background(), q, streams, emit)
}

// RunContext is Run with the caller's context. When the context
// carries cost.Counters (see internal/obs/cost) the join accumulates
// its operator actuals there: postings pulled through the heads,
// per-document candidates before pruning, candidates discarded by the
// structural semi-joins, and answer tuples emitted.
func RunContext(ctx context.Context, q *pattern.Query, streams map[*pattern.Node]postings.Stream, emit Emit) error {
	c := cost.FromContext(ctx)
	nodes := q.Nodes()
	if len(nodes) == 0 {
		return fmt.Errorf("twigjoin: empty query")
	}
	heads := make([]*head, len(nodes))
	for i, n := range nodes {
		if n.IsWildcard() {
			return fmt.Errorf("twigjoin: wildcard node in index query")
		}
		s, ok := streams[n]
		if !ok {
			return fmt.Errorf("twigjoin: no stream for query node %v", n.Term)
		}
		heads[i] = &head{s: s, c: c}
		if err := heads[i].advance(); err != nil {
			return err
		}
	}

	parent := parentIndexes(q, nodes)
	cands := make([][]sid.Posting, len(nodes))

	for {
		// Find the highest current document key; if any stream is
		// exhausted, no further document can match all nodes.
		var target sid.DocKey
		for _, h := range heads {
			if !h.live {
				return nil
			}
			if k := h.cur.Key(); k.Compare(target) > 0 {
				target = k
			}
		}
		// Advance every stream to the target document.
		aligned := true
		for _, h := range heads {
			for h.live && h.cur.Key().Compare(target) < 0 {
				if err := h.advance(); err != nil {
					return err
				}
			}
			if !h.live {
				return nil
			}
			if h.cur.Key().Compare(target) != 0 {
				aligned = false
			}
		}
		if !aligned {
			continue // some stream jumped past target; recompute
		}
		// Collect this document's candidates from every stream.
		for i, h := range heads {
			cands[i] = cands[i][:0]
			for h.live && h.cur.Key().Compare(target) == 0 {
				cands[i] = append(cands[i], h.cur)
				if err := h.advance(); err != nil {
					return err
				}
			}
		}
		if err := matchDoc(target, nodes, parent, cands, emit, c); err != nil {
			return err
		}
	}
}

// parentIndexes maps each node position to its parent's position in the
// pre-order node list (-1 for the root).
func parentIndexes(q *pattern.Query, nodes []*pattern.Node) []int {
	idx := map[*pattern.Node]int{}
	for i, n := range nodes {
		idx[n] = i
	}
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = -1
	}
	for i, n := range nodes {
		for _, c := range n.Children {
			parent[idx[c]] = i
		}
	}
	return parent
}

// matchDoc enumerates the answers within one document.
func matchDoc(doc sid.DocKey, nodes []*pattern.Node, parent []int, cands [][]sid.Posting, emit Emit, c *cost.Counters) error {
	before := 0
	for i := range cands {
		before += len(cands[i])
	}
	c.AddCandidates(int64(before))
	// After every early return the surviving candidates are what's
	// left in cands; the difference from `before` is the pruned work.
	defer func() {
		after := 0
		for i := range cands {
			after += len(cands[i])
		}
		c.AddPruned(int64(before - after))
	}()
	// Top-down semi-join pruning: a candidate for node i survives only
	// if some candidate of its parent satisfies the axis.
	for i := 1; i < len(nodes); i++ {
		p := parent[i]
		if p < 0 {
			continue
		}
		cands[i] = pruneDown(nodes[i].Axis, cands[p], cands[i])
		if len(cands[i]) == 0 {
			return nil
		}
	}
	// Bottom-up pruning: a candidate for node p survives only if every
	// child edge can be satisfied.
	for i := len(nodes) - 1; i >= 0; i-- {
		for j := len(nodes) - 1; j > i; j-- {
			if parent[j] != i {
				continue
			}
			cands[i] = pruneUp(nodes[j].Axis, cands[i], cands[j])
			if len(cands[i]) == 0 {
				return nil
			}
		}
	}

	// Backtracking enumeration over the pruned candidates.
	assignment := make([]sid.Posting, len(nodes))
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(nodes) {
			m := Match{Doc: doc, Postings: make([]sid.Posting, len(nodes))}
			copy(m.Postings, assignment)
			c.AddIndexMatches(1)
			return emit(m)
		}
		for _, c := range cands[i] {
			if p := parent[i]; p >= 0 {
				if !pattern.AxisSatisfied(nodes[i].Axis, assignment[p], c) {
					continue
				}
			}
			assignment[i] = c
			if err := enumerate(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return enumerate(0)
}

// pruneDown keeps the candidates of the child list that have at least
// one ancestor-side witness in the parent list.
func pruneDown(axis pattern.Axis, parents, children []sid.Posting) []sid.Posting {
	out := children[:0]
	for _, c := range children {
		for _, p := range parents {
			if pattern.AxisSatisfied(axis, p, c) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// pruneUp keeps the candidates of the parent list that have at least
// one descendant-side witness in the child list.
func pruneUp(axis pattern.Axis, parents, children []sid.Posting) []sid.Posting {
	out := parents[:0]
	for _, p := range parents {
		for _, c := range children {
			if pattern.AxisSatisfied(axis, p, c) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// Collect runs the join and gathers all matches (convenience for tests
// and non-streaming callers).
func Collect(q *pattern.Query, streams map[*pattern.Node]postings.Stream) ([]Match, error) {
	var out []Match
	err := Run(q, streams, func(m Match) error {
		out = append(out, m)
		return nil
	})
	return out, err
}

// MatchingDocs runs the join and returns only the distinct documents
// that produced at least one answer, in order. This is what the first
// (index) phase of query processing needs to know: which peers and
// documents to contact for final answers.
func MatchingDocs(q *pattern.Query, streams map[*pattern.Node]postings.Stream) ([]sid.DocKey, error) {
	var out []sid.DocKey
	err := Run(q, streams, func(m Match) error {
		if len(out) == 0 || out[len(out)-1] != m.Doc {
			out = append(out, m.Doc)
		}
		return nil
	})
	return out, err
}
