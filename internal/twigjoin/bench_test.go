package twigjoin

import (
	"math/rand"
	"testing"

	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sid"
)

// benchCorpus synthesises per-term posting lists shaped like a
// bibliography: records containing authors and titles across many docs.
func benchCorpus(docs, recordsPerDoc int) map[string]postings.List {
	rng := rand.New(rand.NewSource(1))
	lists := map[string]postings.List{}
	for d := 0; d < docs; d++ {
		pos := uint32(1)
		for r := 0; r < recordsPerDoc; r++ {
			recStart := pos
			pos++
			aStart := pos
			pos += 2
			tStart := pos
			pos += 2
			recEnd := pos
			pos++
			doc := sid.DocID(d)
			lists["l:article"] = append(lists["l:article"], sid.Posting{Peer: 1, Doc: doc, SID: sid.SID{Start: recStart, End: recEnd, Level: 1}})
			lists["l:author"] = append(lists["l:author"], sid.Posting{Peer: 1, Doc: doc, SID: sid.SID{Start: aStart, End: aStart + 1, Level: 2}})
			lists["l:title"] = append(lists["l:title"], sid.Posting{Peer: 1, Doc: doc, SID: sid.SID{Start: tStart, End: tStart + 1, Level: 2}})
			if rng.Intn(100) == 0 {
				lists["w:ullman"] = append(lists["w:ullman"], sid.Posting{Peer: 1, Doc: doc, SID: sid.SID{Start: aStart, End: aStart + 1, Level: 2}})
			}
		}
	}
	for k := range lists {
		lists[k].Sort()
	}
	return lists
}

func runJoin(b *testing.B, q *pattern.Query, lists map[string]postings.List) {
	b.Helper()
	total := 0
	for _, n := range q.Nodes() {
		total += len(lists[n.Term.Key()])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := map[*pattern.Node]postings.Stream{}
		for _, n := range q.Nodes() {
			streams[n] = postings.NewSliceStream(lists[n.Term.Key()])
		}
		n := 0
		if err := Run(q, streams, func(Match) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "postings/join")
}

func BenchmarkTwigJoinSelective(b *testing.B) {
	lists := benchCorpus(500, 20)
	runJoin(b, pattern.MustParse(`//article//author[. contains "ullman"]`), lists)
}

func BenchmarkTwigJoinBroad(b *testing.B) {
	lists := benchCorpus(500, 20)
	runJoin(b, pattern.MustParse(`//article//author`), lists)
}

func BenchmarkTwigJoinBranching(b *testing.B) {
	lists := benchCorpus(500, 20)
	runJoin(b, pattern.MustParse(`//article[//title]//author`), lists)
}
