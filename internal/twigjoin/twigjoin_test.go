package twigjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"kadop/internal/pattern"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/xmltree"
)

// corpus is a small in-memory collection: documents with term postings
// extracted exactly like the publishing pipeline does.
type corpus struct {
	docs  map[sid.DocKey]*xmltree.Document
	terms map[string]postings.List // term key -> sorted postings
}

func newCorpus() *corpus {
	return &corpus{docs: map[sid.DocKey]*xmltree.Document{}, terms: map[string]postings.List{}}
}

func (c *corpus) add(t *testing.T, key sid.DocKey, src string) {
	t.Helper()
	d, err := xmltree.ParseBytes([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c.docs[key] = d
	for _, tp := range xmltree.Extract(d, key.Peer, key.Doc, xmltree.ExtractOptions{}) {
		c.terms[tp.Term.Key()] = append(c.terms[tp.Term.Key()], tp.Posting)
	}
	for k := range c.terms {
		c.terms[k].Sort()
	}
}

// streams builds one stream per query node from the corpus index.
func (c *corpus) streams(q *pattern.Query) map[*pattern.Node]postings.Stream {
	m := map[*pattern.Node]postings.Stream{}
	for _, n := range q.Nodes() {
		m[n] = postings.NewSliceStream(c.terms[n.Term.Key()])
	}
	return m
}

// groundTruth evaluates q on every document directly.
func (c *corpus) groundTruth(q *pattern.Query) []Match {
	var out []Match
	for key, d := range c.docs {
		for _, m := range pattern.MatchDocument(q, d, key) {
			ps := make([]sid.Posting, len(m.Elements))
			for i, e := range m.Elements {
				ps[i] = sid.Posting{Peer: key.Peer, Doc: key.Doc, SID: e}
			}
			out = append(out, Match{Doc: key, Postings: ps})
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if c := ms[i].Doc.Compare(ms[j].Doc); c != 0 {
			return c < 0
		}
		for k := range ms[i].Postings {
			if c := ms[i].Postings[k].Compare(ms[j].Postings[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func check(t *testing.T, c *corpus, query string) {
	t.Helper()
	q := pattern.MustParse(query)
	got, err := Collect(q, c.streams(q))
	if err != nil {
		t.Fatalf("Collect(%s): %v", query, err)
	}
	sortMatches(got)
	want := c.groundTruth(q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("query %s:\n got %v\nwant %v", query, got, want)
	}
}

func fixedCorpus(t *testing.T) *corpus {
	c := newCorpus()
	c.add(t, sid.DocKey{Peer: 1, Doc: 1}, `<dblp>
	  <article><author>Jeffrey Ullman</author><title>Database systems</title></article>
	  <article><author>Serge Abiteboul</author><title>XML querying</title></article>
	</dblp>`)
	c.add(t, sid.DocKey{Peer: 1, Doc: 2}, `<dblp>
	  <inproceedings><author>Jeffrey Ullman</author><title>More systems</title></inproceedings>
	</dblp>`)
	c.add(t, sid.DocKey{Peer: 2, Doc: 1}, `<catalog>
	  <article><title>No author here</title></article>
	</catalog>`)
	return c
}

func TestJoinMatchesGroundTruth(t *testing.T) {
	c := fixedCorpus(t)
	for _, q := range []string{
		`//article//author`,
		`//article/author`,
		`//dblp//author[. contains "ullman"]`,
		`//article[//title]//author`,
		`//article[//title]//author[. contains "Ullman"]`,
		`//article//editor`,
		`//catalog//title`,
	} {
		check(t, c, q)
	}
}

// randomDoc builds a random bushy document over a small label alphabet
// so that structural joins have plenty of matches and near-misses.
func randomDoc(rng *rand.Rand) string {
	labels := []string{"a", "b", "c", "d"}
	words := []string{"x", "y", "z"}
	var build func(depth int) string
	build = func(depth int) string {
		l := labels[rng.Intn(len(labels))]
		inner := ""
		if depth < 5 {
			for i := 0; i < rng.Intn(4); i++ {
				inner += build(depth + 1)
			}
		}
		if rng.Float64() < 0.4 {
			inner += words[rng.Intn(len(words))]
		}
		return fmt.Sprintf("<%s>%s</%s>", l, inner, l)
	}
	return "<root>" + build(1) + build(1) + "</root>"
}

func TestJoinRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := []string{
		`//a//b`,
		`//a/b`,
		`//root//a[//b]//c`,
		`//a[. contains "x"]`,
		`//a[//b][//c]`,
		`//a//b[. contains "y"]`,
		`//b[/c]`,
	}
	for trial := 0; trial < 15; trial++ {
		c := newCorpus()
		ndocs := rng.Intn(6) + 1
		for d := 0; d < ndocs; d++ {
			c.add(t, sid.DocKey{Peer: sid.PeerID(rng.Intn(3)), Doc: sid.DocID(d)}, randomDoc(rng))
		}
		for _, q := range queries {
			check(t, c, q)
		}
	}
}

func TestJoinPipelinedStreams(t *testing.T) {
	c := fixedCorpus(t)
	q := pattern.MustParse(`//article//author[. contains "ullman"]`)
	streams := map[*pattern.Node]postings.Stream{}
	for _, n := range q.Nodes() {
		list := c.terms[n.Term.Key()]
		pipe := postings.NewPipe(2)
		go func(l postings.List) {
			for i := range l {
				pipe.Send(l[i : i+1])
			}
			pipe.Close(nil)
		}(list)
		streams[n] = pipe
	}
	got, err := Collect(q, streams)
	if err != nil {
		t.Fatal(err)
	}
	sortMatches(got)
	want := c.groundTruth(q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pipelined join mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestJoinEarlyStop(t *testing.T) {
	c := fixedCorpus(t)
	q := pattern.MustParse(`//article//author`)
	n := 0
	err := Run(q, c.streams(q), func(Match) error {
		n++
		return ErrStop
	})
	if err != ErrStop {
		t.Fatalf("err = %v", err)
	}
	if n != 1 {
		t.Fatalf("emitted %d matches after stop", n)
	}
}

func TestJoinMissingStream(t *testing.T) {
	q := pattern.MustParse(`//a//b`)
	if err := Run(q, map[*pattern.Node]postings.Stream{}, func(Match) error { return nil }); err == nil {
		t.Fatal("missing stream should error")
	}
}

func TestJoinRejectsWildcard(t *testing.T) {
	q := pattern.MustParse(`//*[contains(.,'x')]//b`)
	streams := map[*pattern.Node]postings.Stream{}
	for _, n := range q.Nodes() {
		streams[n] = postings.NewSliceStream(nil)
	}
	if err := Run(q, streams, func(Match) error { return nil }); err == nil {
		t.Fatal("wildcard node should be rejected")
	}
}

func TestJoinRejectsOutOfOrderStream(t *testing.T) {
	q := pattern.MustParse(`//a//b`)
	bad := postings.List{
		{Peer: 2, Doc: 1, SID: sid.SID{Start: 1, End: 10, Level: 0}},
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 10, Level: 0}},
	}
	good := postings.List{
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 2, End: 3, Level: 1}},
		{Peer: 2, Doc: 1, SID: sid.SID{Start: 2, End: 3, Level: 1}},
	}
	nodes := q.Nodes()
	streams := map[*pattern.Node]postings.Stream{
		nodes[0]: &rawStream{list: bad},
		nodes[1]: &rawStream{list: good},
	}
	if err := Run(q, streams, func(Match) error { return nil }); err == nil {
		t.Fatal("out-of-order stream should be detected")
	}
}

// rawStream delivers a list verbatim without sorting guarantees.
type rawStream struct {
	list postings.List
	pos  int
}

func (r *rawStream) Next() (sid.Posting, error) {
	if r.pos >= len(r.list) {
		return sid.Posting{}, fmt.Errorf("eof")
	}
	p := r.list[r.pos]
	r.pos++
	return p, nil
}

func TestMatchingDocs(t *testing.T) {
	c := fixedCorpus(t)
	q := pattern.MustParse(`//article//author`)
	docs, err := MatchingDocs(q, c.streams(q))
	if err != nil {
		t.Fatal(err)
	}
	// Only (1,1) holds article elements with authors; (1,2) is an
	// inproceedings and (2,1) has no author.
	want := []sid.DocKey{{Peer: 1, Doc: 1}}
	if !reflect.DeepEqual(docs, want) {
		t.Errorf("MatchingDocs = %v, want %v", docs, want)
	}
}

func TestJoinEmptyStreams(t *testing.T) {
	q := pattern.MustParse(`//a//b`)
	streams := map[*pattern.Node]postings.Stream{}
	for _, n := range q.Nodes() {
		streams[n] = postings.NewSliceStream(nil)
	}
	ms, err := Collect(q, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("matches = %v", ms)
	}
}
