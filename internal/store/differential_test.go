package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// TestBTreeMatchesMemUnderRandomOps drives the disk B+-tree and the
// in-memory store through the same random operation sequence and
// checks they agree after every step — a differential test of the
// B+-tree's split, delete and scan logic.
func TestBTreeMatchesMemUnderRandomOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "diff.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { bt.Close() }()
	mem := NewMem()

	rng := rand.New(rand.NewSource(99))
	terms := []string{"l:a", "l:b", "w:x", "w:y", "l:c"}
	inserted := map[string]postings.List{}

	randomPosting := func() sid.Posting {
		s := uint32(rng.Intn(4000)*2 + 1)
		return sid.Posting{
			Peer: sid.PeerID(rng.Intn(4)), Doc: sid.DocID(rng.Intn(40)),
			SID: sid.SID{Start: s, End: s + 1 + uint32(rng.Intn(30)), Level: uint16(rng.Intn(6))},
		}
	}

	for step := 0; step < 400; step++ {
		term := terms[rng.Intn(len(terms))]
		switch op := rng.Intn(10); {
		case op < 6: // append a batch
			batch := make(postings.List, rng.Intn(20)+1)
			for i := range batch {
				batch[i] = randomPosting()
			}
			batch.Sort()
			batch = batch.Dedup()
			if err := bt.Append(term, batch); err != nil {
				t.Fatalf("step %d: btree append: %v", step, err)
			}
			if err := mem.Append(term, batch); err != nil {
				t.Fatalf("step %d: mem append: %v", step, err)
			}
			inserted[term] = append(inserted[term], batch...)
		case op < 8: // delete a previously inserted posting
			if len(inserted[term]) == 0 {
				continue
			}
			victim := inserted[term][rng.Intn(len(inserted[term]))]
			if err := bt.Delete(term, victim); err != nil {
				t.Fatalf("step %d: btree delete: %v", step, err)
			}
			if err := mem.Delete(term, victim); err != nil {
				t.Fatalf("step %d: mem delete: %v", step, err)
			}
		case op < 9: // drop a whole term
			if err := bt.DeleteTerm(term); err != nil {
				t.Fatalf("step %d: btree delete term: %v", step, err)
			}
			if err := mem.DeleteTerm(term); err != nil {
				t.Fatalf("step %d: mem delete term: %v", step, err)
			}
			inserted[term] = nil
		default: // partial scan comparison
			from := randomPosting()
			var a, b postings.List
			bt.Scan(term, from, func(p sid.Posting) bool { a = append(a, p); return len(a) < 50 })
			mem.Scan(term, from, func(p sid.Posting) bool { b = append(b, p); return len(b) < 50 })
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("step %d: partial scans diverge on %q: %d vs %d", step, term, len(a), len(b))
			}
		}
		// Periodically cycle the disk tree: a clean Close/re-Open, or an
		// abandon-without-Close — the latter models a process kill at an
		// operation boundary, so WAL recovery must reconstruct every
		// committed op before the differential comparison resumes.
		if step%60 == 59 {
			if rng.Intn(2) == 0 {
				if err := bt.Close(); err != nil {
					t.Fatalf("step %d: close: %v", step, err)
				}
			} // else: abandon the handle, leaving the WAL to recovery
			bt, err = OpenBTree(path)
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
		}
		// Full-state check every few steps (Get is O(list)).
		if step%25 == 0 {
			for _, tm := range terms {
				a, err := bt.Get(tm)
				if err != nil {
					t.Fatal(err)
				}
				b, err := mem.Get(tm)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("step %d: stores diverge on %q: btree %d vs mem %d postings",
						step, tm, len(a), len(b))
				}
			}
		}
	}
	// Final: terms listings agree (modulo empty terms, which Mem drops
	// on DeleteTerm while the B+-tree may keep empty ranges invisible).
	for _, tm := range terms {
		na, _ := bt.Count(tm)
		nb, _ := mem.Count(tm)
		if na != nb {
			t.Fatalf("final counts diverge on %q: %d vs %d", tm, na, nb)
		}
	}
}

// TestBTreeReopenedAfterRandomOps checks durability of a non-trivial
// tree across close/reopen.
func TestBTreeReopenedAfterRandomOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dur.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := map[string]postings.List{}
	for i := 0; i < 40; i++ {
		term := fmt.Sprintf("l:t%d", rng.Intn(8))
		batch := make(postings.List, rng.Intn(200)+1)
		for j := range batch {
			s := uint32(rng.Intn(100000)*2 + 1)
			batch[j] = sid.Posting{Peer: 1, Doc: sid.DocID(rng.Intn(1000)), SID: sid.SID{Start: s, End: s + 1, Level: 1}}
		}
		batch.Sort()
		batch = batch.Dedup()
		if err := bt.Append(term, batch); err != nil {
			t.Fatal(err)
		}
		want[term] = postings.Merge(want[term], batch).Dedup()
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bt2.Close()
	for term, w := range want {
		got, err := bt2.Get(term)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("%q: %d vs %d postings after reopen", term, len(got), len(w))
		}
	}
}
