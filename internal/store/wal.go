package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// FsyncPolicy selects when the write-ahead log is fsynced.
//
// The policy trades publish throughput for the durability window: with
// FsyncAlways a successful Append survives any crash; with
// FsyncInterval up to FsyncEvery of committed operations may be lost
// (but the store always recovers to a consistent committed prefix);
// with FsyncOff the window is whatever the OS page cache holds. All
// three policies keep the same write ordering, so a crash never
// corrupts the tree — it only bounds how much of the recent history
// survives.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs the WAL on every commit (one Store operation).
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval groups commits: a background syncer fsyncs the WAL
	// every Options.FsyncEvery, so a crash loses at most that window.
	FsyncInterval
	// FsyncOff never fsyncs; the OS decides when bytes reach disk.
	FsyncOff
)

// String renders the policy in the form ParseFsyncPolicy accepts.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|off)", s)
}

// Options tune the durability machinery of a disk B+-tree.
type Options struct {
	// Fsync selects the WAL fsync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval group-commit window (default
	// 50ms); ignored under the other policies.
	FsyncEvery time.Duration
	// CheckpointBytes triggers a checkpoint — dirty pages flushed to
	// the page file, meta fenced behind them, WAL truncated — once the
	// WAL exceeds this size (default 4 MiB).
	CheckpointBytes int64

	// open substitutes the file opener; the crash-injection tests use
	// it to kill writes at arbitrary byte offsets. Nil means the real
	// filesystem.
	open fileOpener
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 50 * time.Millisecond
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 4 << 20
	}
	if o.open == nil {
		o.open = openOSFile
	}
	return o
}

// file is the slice of *os.File the pager and WAL consume. The crash
// harness substitutes a fault-injecting implementation whose writes die
// mid-stream at a chosen byte offset.
type file interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

type fileOpener func(path string) (file, error)

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func openOSFile(path string) (file, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// castagnoli is the CRC32-C table shared by page checksums and WAL
// record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL record framing: kind(1) | payloadLen(4) | payload | crc32(4),
// where the checksum covers kind, length and payload. A record whose
// frame does not parse — short, bad kind, bad checksum — marks the torn
// tail of the log; recovery discards it and everything after it.
const (
	walRecPage   = 1 // payload: pageID(4) | page image (pageSize)
	walRecCommit = 2 // payload: lsn(8) | root(4) | npages(4)

	walFrameOverhead = 1 + 4 + 4
	walCommitPayload = 16
)

// walAppendRecord frames one record into buf.
func walAppendRecord(buf []byte, kind byte, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(payload)))
	buf = append(buf, l[:]...)
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[start:], castagnoli)
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], sum)
	return append(buf, c[:]...)
}

// walParseRecord parses the first record of data. ok is false when the
// data does not begin with a complete, checksum-valid record.
func walParseRecord(data []byte) (kind byte, payload []byte, size int, ok bool) {
	if len(data) < walFrameOverhead {
		return 0, nil, 0, false
	}
	kind = data[0]
	if kind != walRecPage && kind != walRecCommit {
		return 0, nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[1:]))
	size = walFrameOverhead + n
	if n < 0 || len(data) < size {
		return 0, nil, 0, false
	}
	want := binary.LittleEndian.Uint32(data[size-4:])
	if crc32.Checksum(data[:size-4], castagnoli) != want {
		return 0, nil, 0, false
	}
	return kind, data[5 : 5+n], size, true
}

// wal is the write-ahead log of one B+-tree: an append-only file of
// page-image records fenced by LSN-stamped commit records. The pager
// appends one transaction per Store operation; the fsync policy decides
// when appended transactions become durable. A checkpoint truncates the
// log once the page file durably holds everything the log describes.
type wal struct {
	mu     sync.Mutex
	f      file
	path   string
	size   int64 // append offset
	synced bool  // no appended bytes awaiting fsync
	err    error // sticky I/O error; the log refuses further appends

	policy FsyncPolicy
	stop   chan struct{}
	done   chan struct{}
}

// openWAL opens (or creates) the log file. The caller replays its
// contents before appending (see pager.recover).
func openWAL(path string, o Options) (*wal, error) {
	f, err := o.open(path)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	w := &wal{f: f, path: path, size: size, synced: true, policy: o.Fsync}
	if o.Fsync == FsyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop(o.FsyncEvery)
	}
	return w, nil
}

// syncLoop is the FsyncInterval group-commit worker: every period it
// fsyncs whatever commits accumulated, so one fsync covers them all.
func (w *wal) syncLoop(every time.Duration) {
	defer close(w.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.synced && w.err == nil {
				if err := w.f.Sync(); err != nil {
					w.err = fmt.Errorf("store: wal: sync: %w", err)
				} else {
					w.synced = true
				}
			}
			w.mu.Unlock()
		}
	}
}

// readAll returns the log's full contents for replay.
func (w *wal) readAll() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.size == 0 {
		return nil, nil
	}
	buf := make([]byte, w.size)
	n, err := w.f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: wal: read: %w", err)
	}
	return buf[:n], nil
}

// appendTx appends one framed transaction (page records plus its commit
// record, pre-rendered into buf) and applies the fsync policy. The
// transaction is a single write, so a crash tears at most its tail —
// which the frame checksums catch at recovery.
func (w *wal) appendTx(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		w.err = fmt.Errorf("store: wal: append: %w", err)
		return w.err
	}
	w.size += int64(len(buf))
	w.synced = false
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("store: wal: sync: %w", err)
			return w.err
		}
		w.synced = true
	}
	return nil
}

// bytes reports the current log size.
func (w *wal) bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// reset truncates the log after a checkpoint. The caller must have
// durably fenced the page file and meta page first.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("store: wal: truncate: %w", err)
		return w.err
	}
	w.size = 0
	w.synced = true
	return nil
}

// close stops the group-commit worker, fsyncs pending appends (unless
// the policy is off) and closes the file.
func (w *wal) close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.err == nil && !w.synced && w.policy != FsyncOff {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
