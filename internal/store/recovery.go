package store

import (
	"encoding/binary"
	"fmt"
)

// recover replays the committed prefix of the write-ahead log onto the
// page file and discards the torn tail. It runs once, inside openPager,
// before the tree serves any operation.
//
// The scan walks the log record by record. Page images accumulate in a
// pending set; a checksum-valid commit record applies them (when its
// LSN is newer than the meta page's checkpoint LSN — older commits are
// already in the page file) and advances root/npages/LSN. The first
// record that fails to parse — short, unknown kind, checksum mismatch —
// marks the crash point: everything from there on was never
// acknowledged as committed, so it is discarded wholesale.
//
// Replay is idempotent: page images are physical and full, so crashing
// during recovery and recovering again converges to the same state.
// After a successful replay the pager checkpoints immediately, which
// rewrites the meta page (healing a torn meta write) and truncates the
// log.
//
// recover reports whether the log contained at least one applicable
// committed transaction; openPager uses that to distinguish "corrupt
// meta but the WAL rebuilt it" from "corrupt meta, nothing to replay".
// metaValid says whether the meta page parsed; without it and without
// an applied commit the base state is unknown, so recover must not
// touch the files (openPager then fails the open, leaving the evidence
// in place).
func (pg *pager) recover(metaValid bool) (bool, error) {
	data, err := pg.wal.readAll()
	if err != nil {
		return false, err
	}
	if len(data) == 0 {
		return false, nil
	}
	type pendingPage struct {
		id    uint32
		image []byte
	}
	var pending []pendingPage
	applied := false
	for off := 0; off < len(data); {
		kind, payload, size, ok := walParseRecord(data[off:])
		if !ok {
			break // torn tail: the crash point
		}
		off += size
		switch kind {
		case walRecPage:
			if len(payload) != 4+pageSize {
				return false, fmt.Errorf("store: recovery: malformed page record (%d bytes)", len(payload))
			}
			pending = append(pending, pendingPage{
				id:    binary.LittleEndian.Uint32(payload),
				image: payload[4:],
			})
		case walRecCommit:
			if len(payload) != walCommitPayload {
				return false, fmt.Errorf("store: recovery: malformed commit record (%d bytes)", len(payload))
			}
			lsn := binary.LittleEndian.Uint64(payload)
			if lsn > pg.lsn {
				for _, pp := range pending {
					if _, err := pg.f.WriteAt(pp.image, int64(pp.id)*pageSize); err != nil {
						return false, fmt.Errorf("store: recovery: replay page %d: %w", pp.id, err)
					}
				}
				pg.root = binary.LittleEndian.Uint32(payload[8:])
				pg.npages = binary.LittleEndian.Uint32(payload[12:])
				pg.lsn = lsn
				applied = true
			}
			pending = pending[:0]
		}
	}
	if !metaValid && !applied {
		return false, nil
	}
	// Re-fence: data pages durably in place, then the meta page, then
	// drop the log. This also runs when nothing applied (the log held
	// only stale or torn transactions), so a once-crashed store does not
	// carry its garbage tail forward.
	if err := pg.checkpointNoTruncate(); err != nil {
		return applied, err
	}
	if err := pg.wal.reset(); err != nil {
		return applied, err
	}
	return applied, nil
}
