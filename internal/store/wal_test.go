package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

func mustPosting(start uint32) sid.Posting {
	return sid.Posting{Peer: 1, Doc: 1, SID: sid.SID{Start: start, End: start + 1, Level: 1}}
}

// TestWALTornTailDiscarded abandons a handle mid-life (so the WAL holds
// replayable transactions), appends garbage to the log, and checks that
// recovery replays the committed prefix and discards the garbage tail.
func TestWALTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	want := postings.List{mustPosting(1), mustPosting(3), mustPosting(5)}
	if err := bt.Append("l:a", want); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the WAL keeps the committed transactions.
	wf, err := os.OpenFile(walPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte("\x01garbage torn tail garbage")); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	rec, err := OpenBTree(path)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer rec.Close()
	got, err := rec.Get("l:a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d postings, want %d", len(got), len(want))
	}
	// The garbage tail must be gone: recovery checkpoints and truncates.
	st, err := os.Stat(walPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("WAL not truncated after recovery: %d bytes", st.Size())
	}
}

// TestPageChecksumDetectsCorruption flips a byte inside a data page and
// checks the CRC32 footer turns the silent corruption into an error.
func TestPageChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Append("l:a", postings.List{mustPosting(1)}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}

	// Page 0 is meta; the root leaf is page 1. Flip a payload byte.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], pageSize+20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], pageSize+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := OpenBTree(path)
	if err != nil {
		t.Fatalf("open after data-page corruption should succeed (meta is intact): %v", err)
	}
	defer rec.Close()
	if _, err := rec.Get("l:a"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Get on corrupted page: err = %v, want checksum mismatch", err)
	}
}

// TestCorruptMetaNoWALFailsOpen corrupts the meta page of a cleanly
// closed tree (empty WAL) and checks the open fails loudly instead of
// silently serving an empty tree.
func TestCorruptMetaNoWALFailsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Append("l:a", postings.List{mustPosting(1)}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenBTree(path); err == nil {
		t.Fatal("open with corrupt meta and empty WAL should fail")
	}
}

// TestV1FileRejected checks the pre-WAL magic is recognised and reported
// as needing a rebuild rather than parsed as garbage.
func TestV1FileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.bt")
	page := make([]byte, pageSize)
	copy(page, "KADOPBT1")
	if err := os.WriteFile(path, page, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenBTree(path)
	if err == nil || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("v1 file: err = %v, want v1 rejection", err)
	}
}

// TestParseFsyncPolicyRoundTrip pins the policy spelling used by flags
// and configs.
func TestParseFsyncPolicyRoundTrip(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil {
			t.Fatalf("round-trip %v: %v", p, err)
		}
		if got != p {
			t.Fatalf("round-trip %v: got %v", p, got)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy(sometimes) should fail")
	}
}

// TestErrClosedOnEveryMethod pins the use-after-close guard: every Store
// method (and a second Close) returns ErrClosed instead of leaking raw
// OS errors from a dead file descriptor.
func TestErrClosedOnEveryMethod(t *testing.T) {
	bt, err := OpenBTree(filepath.Join(t.TempDir(), "closed.bt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Append("l:a", postings.List{mustPosting(1)}); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != ErrClosed {
		t.Fatalf("second Close: err = %v, want ErrClosed", err)
	}
	checks := map[string]error{
		"Append":     bt.Append("l:a", postings.List{mustPosting(3)}),
		"Delete":     bt.Delete("l:a", mustPosting(1)),
		"DeleteTerm": bt.DeleteTerm("l:a"),
		"Scan":       bt.Scan("l:a", sid.MinPosting, func(sid.Posting) bool { return true }),
		"Checkpoint": bt.Checkpoint(),
	}
	if _, err := bt.Get("l:a"); err != ErrClosed {
		t.Fatalf("Get after close: err = %v, want ErrClosed", err)
	}
	if _, err := bt.Count("l:a"); err != ErrClosed {
		t.Fatalf("Count after close: err = %v, want ErrClosed", err)
	}
	if _, err := bt.Terms(); err != ErrClosed {
		t.Fatalf("Terms after close: err = %v, want ErrClosed", err)
	}
	for name, err := range checks {
		if err != ErrClosed {
			t.Fatalf("%s after close: err = %v, want ErrClosed", name, err)
		}
	}
	if pages, height := bt.Stats(); pages != 0 || height != 0 {
		t.Fatalf("Stats after close: (%d, %d), want zeros", pages, height)
	}
}

// TestReopenContinuesLSN checks the log sequence number survives a
// close/reopen cycle, so post-restart commits stay newer than the
// checkpoint and recovery ordering remains monotone.
func TestReopenContinuesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lsn.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 10; i++ {
		if err := bt.Append("l:a", postings.List{mustPosting(2*i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	before := bt.pager.lsn
	if before == 0 {
		t.Fatal("lsn did not advance")
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bt2.Close()
	if bt2.pager.lsn != before {
		t.Fatalf("lsn after reopen: %d, want %d", bt2.pager.lsn, before)
	}
	if err := bt2.Append("l:a", postings.List{mustPosting(101)}); err != nil {
		t.Fatal(err)
	}
	if bt2.pager.lsn <= before {
		t.Fatalf("lsn after post-reopen commit: %d, want > %d", bt2.pager.lsn, before)
	}
}

// TestFsyncPolicies drives the same workload under each policy and
// checks a clean close/reopen preserves everything regardless.
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "pol.bt")
			bt, err := OpenBTreeOptions(path, Options{Fsync: policy, FsyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			want := postings.List{mustPosting(1), mustPosting(3), mustPosting(5)}
			if err := bt.Append("l:a", want); err != nil {
				t.Fatal(err)
			}
			if err := bt.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := OpenBTree(path)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			got, err := rec.Get("l:a")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("policy %v: %d postings after reopen, want %d", policy, len(got), len(want))
			}
		})
	}
}
