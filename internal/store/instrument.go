package store

import (
	"kadop/internal/metrics"
	"kadop/internal/postings"
	"kadop/internal/sid"
)

// Instrumented wraps a Store and charges every append and every serve
// (Get or Scan) to a per-peer metrics.Load, attributing by term. The
// DHT node wraps its store at construction, so all index traffic a
// peer absorbs — replicated appends, repair pushes, posting streams,
// DPP block serves — lands in the same per-peer ledger regardless of
// which handler triggered it.
type Instrumented struct {
	inner Store
	load  *metrics.Load
}

// Instrument wraps st so its traffic accrues to load. A nil load
// returns st unchanged.
func Instrument(st Store, load *metrics.Load) Store {
	if load == nil {
		return st
	}
	return &Instrumented{inner: st, load: load}
}

// Unwrap returns the wrapped store.
func (s *Instrumented) Unwrap() Store { return s.inner }

// Append implements Store.
func (s *Instrumented) Append(term string, ps postings.List) error {
	err := s.inner.Append(term, ps)
	if err == nil {
		s.load.Append(term, len(ps))
	}
	return err
}

// Get implements Store.
func (s *Instrumented) Get(term string) (postings.List, error) {
	l, err := s.inner.Get(term)
	if err == nil {
		s.load.Serve(term, len(l))
	}
	return l, err
}

// Scan implements Store. Only postings actually delivered to fn are
// charged — an early-stopped scan served less.
func (s *Instrumented) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	n := 0
	err := s.inner.Scan(term, from, func(p sid.Posting) bool {
		ok := fn(p)
		if ok {
			n++
		}
		return ok
	})
	s.load.Serve(term, n)
	return err
}

// ApplyBatch implements Batcher, charging each appended op's postings
// to the ledger exactly as the per-op path would.
func (s *Instrumented) ApplyBatch(b *Batch) error {
	err := ApplyBatch(s.inner, b)
	if err == nil && b != nil {
		for _, op := range b.ops {
			if !op.del {
				s.load.Append(op.term, len(op.ps))
			}
		}
	}
	return err
}

// Snapshot implements Snapshotter when the inner store does; serves
// through the snapshot charge the same ledger as direct reads.
func (s *Instrumented) Snapshot() (Snapshot, error) {
	ss, ok := s.inner.(Snapshotter)
	if !ok {
		return nil, errNoSnapshot
	}
	snap, err := ss.Snapshot()
	if err != nil {
		return nil, err
	}
	return &instrumentedSnap{inner: snap, load: s.load}, nil
}

// instrumentedSnap charges snapshot reads to the peer's load ledger.
type instrumentedSnap struct {
	inner Snapshot
	load  *metrics.Load
}

func (s *instrumentedSnap) Get(term string) (postings.List, error) {
	l, err := s.inner.Get(term)
	if err == nil {
		s.load.Serve(term, len(l))
	}
	return l, err
}

func (s *instrumentedSnap) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	n := 0
	err := s.inner.Scan(term, from, func(p sid.Posting) bool {
		ok := fn(p)
		if ok {
			n++
		}
		return ok
	})
	s.load.Serve(term, n)
	return err
}

func (s *instrumentedSnap) Count(term string) (int, error) { return s.inner.Count(term) }
func (s *instrumentedSnap) Terms() ([]string, error)       { return s.inner.Terms() }
func (s *instrumentedSnap) Close() error                   { return s.inner.Close() }

// Count implements Store.
func (s *Instrumented) Count(term string) (int, error) { return s.inner.Count(term) }

// Delete implements Store.
func (s *Instrumented) Delete(term string, p sid.Posting) error { return s.inner.Delete(term, p) }

// DeleteTerm implements Store.
func (s *Instrumented) DeleteTerm(term string) error { return s.inner.DeleteTerm(term) }

// Terms implements Store.
func (s *Instrumented) Terms() ([]string, error) { return s.inner.Terms() }

// Close implements Store.
func (s *Instrumented) Close() error { return s.inner.Close() }
