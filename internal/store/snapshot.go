package store

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// This file implements MVCC snapshot reads for the disk B+-tree.
//
// A snapshot pins the committed generation at its creation instant: the
// last committed root page id and page count. Creation is valid at ANY
// instant, including mid-transaction — the pager keeps the committed
// pre-images of the in-flight transaction's dirty pages (txUndo), and a
// new snapshot starts from a copy of them. From then on the writer
// proceeds copy-on-write — before the first mutation of any page the
// snapshot can reach, markDirty stashes the page's committed image into
// the snapshot's overlay (pager.go). A snapshot read resolves a page id
// in order:
//
//	private cache → overlay pre-image → live cache (cloned under
//	snapMu) → page file
//
// The live-cache clone is shallow: the key byte slices are shared with
// the live tree (they are never mutated in place — inserts splice fresh
// copies into the pointer array), so posting blocks are served
// zero-copy from pinned pages. The page-file path re-checks the overlay
// after the read: a write-back racing the read can only concern a page
// that went through markDirty first, so either the disk bytes are the
// pinned generation or the overlay now holds it.
//
// Readers never take the tree's writer lock, so a bulk publish holds no
// lock a query waits on — and a query pins no lock that would stall the
// publish. The cost is bounded: overlays hold pre-images only for pages
// the writer actually touches during the snapshot's lifetime, and
// vanish with Close.

// snapState is the pager-side record of one live snapshot.
type snapState struct {
	id      uint64
	root    uint32
	npages  uint32           // pages that existed at snapshot time
	overlay map[uint32]*page // committed pre-images of pages since rewritten
}

// clone returns a read-only copy of p sharing the key bytes (the
// individual key slices are immutable; only the pointer arrays are
// copied).
func (p *page) clone() *page {
	cp := &page{id: p.id, typ: p.typ, next: p.next}
	cp.keys = append(make([][]byte, 0, len(p.keys)), p.keys...)
	if p.children != nil {
		cp.children = append(make([]uint32, 0, len(p.children)), p.children...)
	}
	return cp
}

// openSnapshot registers a snapshot of the last committed generation.
// It takes only snapMu — never the tree's writer lock — so creating a
// snapshot does not wait for an in-flight transaction (whose commit may
// be an fsync away). The snapshot starts from the committed root and
// page count, with the in-flight transaction's undo images copied as
// its initial overlay: pages the transaction already dirtied resolve to
// their committed pre-images, and pages it dirties later are stashed by
// markDirty like for any other live snapshot.
func (pg *pager) openSnapshot() (*snapState, error) {
	pg.snapMu.Lock()
	defer pg.snapMu.Unlock()
	if pg.snapClosed {
		return nil, ErrClosed
	}
	if pg.snapErr != nil {
		return nil, pg.snapErr
	}
	overlay := make(map[uint32]*page, len(pg.txUndo))
	for id, p := range pg.txUndo {
		overlay[id] = p
	}
	pg.snapSeq++
	s := &snapState{id: pg.snapSeq, root: pg.committedRoot, npages: pg.committedNPages, overlay: overlay}
	pg.snaps[s.id] = s
	return s, nil
}

// closeSnapshot releases the pin; the writer stops stashing pre-images
// for it and the overlay becomes garbage.
func (pg *pager) closeSnapshot(s *snapState) {
	pg.snapMu.Lock()
	delete(pg.snaps, s.id)
	pg.snapMu.Unlock()
}

// snapCacheLimit caps a snapshot's private page cache. Pages past the
// cap evict arbitrarily — a snapshot is a short-lived read view, not a
// second buffer pool.
const snapCacheLimit = 512

// btreeSnap implements Snapshot over a BTree. Safe for concurrent use.
type btreeSnap struct {
	pg *pager
	st *snapState

	mu     sync.Mutex
	cache  map[uint32]*page
	closed bool
}

// Snapshot implements Snapshotter: it pins the last committed
// generation of the tree. Creation deliberately does NOT take the
// tree's writer lock — a batch commit in the middle of its fsync would
// otherwise stall every reader for the full flush — so a snapshot can
// be opened at any instant and sees the committed state as of that
// instant. Readers of the snapshot never block behind (or tear against)
// writers; the caller must Close it to release the copy-on-write pin.
func (t *BTree) Snapshot() (Snapshot, error) {
	st, err := t.pager.openSnapshot()
	if err != nil {
		return nil, err
	}
	return &btreeSnap{
		pg:    t.pager,
		st:    st,
		cache: map[uint32]*page{},
	}, nil
}

// page resolves a page id to its content as of the snapshot.
func (s *btreeSnap) page(id uint32) (*page, error) {
	if id == 0 || id > s.st.npages {
		return nil, fmt.Errorf("store: snapshot: page id %d out of range (have %d)", id, s.st.npages)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := s.cache[id]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()

	pg := s.pg
	pg.snapMu.Lock()
	if p, ok := s.st.overlay[id]; ok {
		pg.snapMu.Unlock()
		return s.keep(p), nil
	}
	if p, ok := pg.cache[id]; ok {
		// Unmodified since the snapshot (else the overlay would hold its
		// pre-image); clone under snapMu so a writer about to modify it
		// must stash first and cannot race the copy.
		cp := p.clone()
		pg.snapMu.Unlock()
		return s.keep(cp), nil
	}
	pg.snapMu.Unlock()

	// Cold page: read the page file without any lock. The read can race
	// a write-back of a newer generation (eviction happens under snapMu,
	// but our read syscall does not), so re-check the overlay after the
	// fact: any post-snapshot change to this page stashed its pre-image
	// there before the page could reach the disk. No overlay entry means
	// the disk bytes ARE the pinned generation.
	buf := make([]byte, pageSize)
	_, rdErr := pg.f.ReadAt(buf, int64(id)*pageSize)
	p := &page{id: id}
	parseErr := rdErr
	if parseErr == nil {
		parseErr = p.deserialize(buf)
	}
	pg.snapMu.Lock()
	op, ok := s.st.overlay[id]
	pg.snapMu.Unlock()
	if ok {
		return s.keep(op), nil
	}
	if parseErr != nil {
		return nil, fmt.Errorf("store: snapshot: read page %d: %w", id, parseErr)
	}
	return s.keep(p), nil
}

// keep caches a resolved page, evicting arbitrarily past the cap. A
// concurrently closed snapshot just skips caching.
func (s *btreeSnap) keep(p *page) *page {
	s.mu.Lock()
	if s.cache != nil {
		if len(s.cache) >= snapCacheLimit {
			for id := range s.cache {
				delete(s.cache, id)
				break
			}
		}
		s.cache[p.id] = p
	}
	s.mu.Unlock()
	return p
}

// seek returns the leaf containing the first key >= key and that key's
// index, descending the pinned generation.
func (s *btreeSnap) seek(key []byte) (*page, int, error) {
	cur, err := s.page(s.st.root)
	if err != nil {
		return nil, 0, err
	}
	for cur.typ == pageBranch {
		cur, err = s.page(cur.children[cur.childIndex(key)])
		if err != nil {
			return nil, 0, err
		}
	}
	i := sort.Search(len(cur.keys), func(i int) bool { return bytes.Compare(cur.keys[i], key) >= 0 })
	return cur, i, nil
}

// Scan implements Snapshot.
func (s *btreeSnap) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	start, err := encodeKey(term, from)
	if err != nil {
		return err
	}
	prefix := termPrefix(term)
	leaf, i, err := s.seek(start)
	if err != nil {
		return err
	}
	for {
		for ; i < len(leaf.keys); i++ {
			k := leaf.keys[i]
			if !bytes.HasPrefix(k, prefix) {
				return nil
			}
			_, p, err := decodeKey(k)
			if err != nil {
				return err
			}
			if !fn(p) {
				return nil
			}
		}
		if leaf.next == 0 {
			return nil
		}
		leaf, err = s.page(leaf.next)
		if err != nil {
			return err
		}
		i = 0
	}
}

// Get implements Snapshot.
func (s *btreeSnap) Get(term string) (postings.List, error) {
	var out postings.List
	err := s.Scan(term, sid.MinPosting, func(p sid.Posting) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// Count implements Snapshot.
func (s *btreeSnap) Count(term string) (int, error) {
	n := 0
	err := s.Scan(term, sid.MinPosting, func(sid.Posting) bool { n++; return true })
	return n, err
}

// Terms implements Snapshot.
func (s *btreeSnap) Terms() ([]string, error) {
	var out []string
	leaf, i, err := s.seek([]byte{1})
	if err != nil {
		return nil, err
	}
	last := ""
	for {
		for ; i < len(leaf.keys); i++ {
			term, _, err := decodeKey(leaf.keys[i])
			if err != nil {
				return nil, err
			}
			if term != last {
				out = append(out, term)
				last = term
			}
		}
		if leaf.next == 0 {
			return out, nil
		}
		leaf, err = s.page(leaf.next)
		if err != nil {
			return nil, err
		}
		i = 0
	}
}

// Close implements Snapshot: it releases the copy-on-write pin.
// Idempotent.
func (s *btreeSnap) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cache = nil
	s.mu.Unlock()
	s.pg.closeSnapshot(s.st)
	return nil
}
