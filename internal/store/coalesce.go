package store

import (
	"sync"
	"time"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// CoalesceOptions bound the batches a Coalescer forms.
type CoalesceOptions struct {
	// MaxOps caps the operations flushed as one batch (default 256).
	MaxOps int
	// MaxDelay, when positive, makes a flush leader wait this long
	// before flushing so concurrent publishers can pile in. Zero (the
	// default) relies on natural batching: ops arriving while a flush
	// is in flight form the next batch, so a lone sequential writer
	// pays no added latency at all.
	MaxDelay time.Duration
}

// Coalescer wraps a Store and group-commits its writes: concurrent
// Append/Delete calls are queued and applied as one ApplyBatch — a
// single WAL transaction and a single fsync — by a leader goroutine,
// while the callers block until their op is durable. Reads pass
// through: queued ops belong to callers that have not yet been
// acknowledged, so no read is required to observe them.
//
// The protocol is leader/follower: the first op to arrive while no
// flush is running becomes the leader and drains the queue in
// MaxOps-sized batches; ops arriving meanwhile are appended to the
// queue and picked up by the same drain (or the next leader). Under a
// serial workload every batch has size one and the coalescer adds two
// channel operations; under N concurrent publishers the fsync cost
// divides by the batch size.
type Coalescer struct {
	inner    Store
	maxOps   int
	maxDelay time.Duration

	mu       sync.Mutex
	idle     *sync.Cond // signalled when a drain finishes
	queue    []*pendingOp
	flushing bool
	closed   bool
}

// pendingOp is one queued write and the channel its caller blocks on.
type pendingOp struct {
	kind int // 0 = append, 1 = delete, 2 = delete term
	term string
	ps   postings.List
	p    sid.Posting
	done chan error
}

// NewCoalescer wraps st. The wrapped store should implement Batcher
// (BTree, Mem); otherwise batches degrade to per-op application and the
// coalescer only adds queueing.
func NewCoalescer(st Store, o CoalesceOptions) *Coalescer {
	if o.MaxOps <= 0 {
		o.MaxOps = 256
	}
	c := &Coalescer{inner: st, maxOps: o.MaxOps, maxDelay: o.MaxDelay}
	c.idle = sync.NewCond(&c.mu)
	return c
}

// Unwrap returns the wrapped store.
func (c *Coalescer) Unwrap() Store { return c.inner }

// Append implements Store: the op joins the current batch and the call
// returns once that batch is durable.
func (c *Coalescer) Append(term string, ps postings.List) error {
	if len(ps) == 0 {
		return nil
	}
	return c.submit(&pendingOp{kind: 0, term: term, ps: ps})
}

// Delete implements Store.
func (c *Coalescer) Delete(term string, p sid.Posting) error {
	return c.submit(&pendingOp{kind: 1, term: term, p: p})
}

// DeleteTerm implements Store. It rides the same queue so it orders
// with the writes around it, but flushes as its own op (a whole-term
// delete is not a batchable key op).
func (c *Coalescer) DeleteTerm(term string) error {
	return c.submit(&pendingOp{kind: 2, term: term})
}

// submit queues op and runs the leader protocol.
func (c *Coalescer) submit(op *pendingOp) error {
	op.done = make(chan error, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.queue = append(c.queue, op)
	if c.flushing {
		// A leader is draining; it (or a successor) will flush us.
		c.mu.Unlock()
		return <-op.done
	}
	c.flushing = true
	c.mu.Unlock()

	c.mu.Lock()
	for len(c.queue) > 0 {
		if c.maxDelay > 0 {
			// Linger before every flush, not just the first: under a
			// CPU-bound arrival stream the queue drains faster than it
			// fills, and without the linger batches collapse to single
			// ops whenever the disk happens to be fast.
			c.mu.Unlock()
			time.Sleep(c.maxDelay)
			c.mu.Lock()
		}
		n := len(c.queue)
		if n > c.maxOps {
			n = c.maxOps
		}
		chunk := c.queue[:n:n]
		c.queue = c.queue[n:]
		c.mu.Unlock()
		c.flush(chunk)
		c.mu.Lock()
	}
	c.queue = nil
	c.flushing = false
	c.idle.Broadcast()
	c.mu.Unlock()
	return <-op.done
}

// flush applies one chunk. Contiguous key ops form batches; a
// whole-term delete splits the chunk and applies alone, preserving
// queue order.
func (c *Coalescer) flush(ops []*pendingOp) {
	start := 0
	for i, op := range ops {
		if op.kind != 2 {
			continue
		}
		c.flushBatch(ops[start:i])
		op.done <- c.inner.DeleteTerm(op.term)
		start = i + 1
	}
	c.flushBatch(ops[start:])
}

// flushBatch applies a run of key ops as one batch, falling back to
// per-op application when the batch fails as a unit — a single
// malformed op then reports to its own caller instead of poisoning the
// whole group.
func (c *Coalescer) flushBatch(ops []*pendingOp) {
	switch len(ops) {
	case 0:
		return
	case 1:
		ops[0].done <- c.applyOne(ops[0])
		return
	}
	b := NewBatch()
	for _, op := range ops {
		if op.kind == 1 {
			b.Delete(op.term, op.p)
		} else {
			b.Append(op.term, op.ps)
		}
	}
	if err := ApplyBatch(c.inner, b); err == nil {
		for _, op := range ops {
			op.done <- nil
		}
		return
	}
	for _, op := range ops {
		op.done <- c.applyOne(op)
	}
}

func (c *Coalescer) applyOne(op *pendingOp) error {
	if op.kind == 1 {
		return c.inner.Delete(op.term, op.p)
	}
	return c.inner.Append(op.term, op.ps)
}

// ApplyBatch implements Batcher: caller-assembled batches skip the
// queue and go straight to the inner store (their callers already did
// the grouping).
func (c *Coalescer) ApplyBatch(b *Batch) error { return ApplyBatch(c.inner, b) }

// Snapshot implements Snapshotter when the inner store does.
func (c *Coalescer) Snapshot() (Snapshot, error) {
	if ss, ok := c.inner.(Snapshotter); ok {
		return ss.Snapshot()
	}
	return nil, errNoSnapshot
}

// Get implements Store (pass-through; see the type comment).
func (c *Coalescer) Get(term string) (postings.List, error) { return c.inner.Get(term) }

// Scan implements Store.
func (c *Coalescer) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	return c.inner.Scan(term, from, fn)
}

// Count implements Store.
func (c *Coalescer) Count(term string) (int, error) { return c.inner.Count(term) }

// Terms implements Store.
func (c *Coalescer) Terms() ([]string, error) { return c.inner.Terms() }

// Close implements Store: it rejects new writes, waits for the queue to
// drain, then closes the inner store.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	for c.flushing {
		c.idle.Wait()
	}
	c.mu.Unlock()
	return c.inner.Close()
}
