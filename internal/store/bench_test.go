package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"kadop/internal/sid"
)

func benchAppend(b *testing.B, s Store) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	batches := make([]struct {
		term string
		l    []sid.Posting
	}, 64)
	for i := range batches {
		batches[i].term = fmt.Sprintf("l:t%d", i%8)
		batches[i].l = randomList(rng, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := batches[i%len(batches)]
		if err := s.Append(bt.term, bt.l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeAppend(b *testing.B) {
	bt, err := OpenBTree(filepath.Join(b.TempDir(), "bench.bt"))
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	benchAppend(b, bt)
}

func BenchmarkMemAppend(b *testing.B) {
	benchAppend(b, NewMem())
}

func BenchmarkBTreeScan(b *testing.B) {
	bt, err := OpenBTree(filepath.Join(b.TempDir(), "scan.bt"))
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if err := bt.Append("l:author", randomList(rng, 500)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bt.Scan("l:author", sid.MinPosting, func(sid.Posting) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty scan")
		}
	}
}
