// Package store implements the local index stores a KadoP peer can run.
//
// Section 3 of the paper attributes two to three orders of magnitude of
// publishing speed-up to replacing PAST's gzip-file store with a
// BerkeleyDB B+-tree, clustered by term with postings in (p, d, sid)
// order, and to extending the DHT API with an append operation of
// linear cost. This package provides:
//
//   - BTree: a from-scratch page-based disk B+-tree with the same
//     clustering (term, posting) and a linear-cost Append;
//   - Mem: an in-memory store with identical semantics, used by the
//     simulated deployments where thousands of peers share a process;
//   - Naive: the PAST-like baseline — one compressed blob per term,
//     rewritten wholesale on every insertion — kept for the Figure 2
//     and store-ablation experiments.
package store

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// Store is the local index interface the DHT layer builds on. A store
// maps term keys to posting lists kept in canonical order.
type Store interface {
	// Append adds postings to the term's list. Implementations must cost
	// O(len(ps) · log N), never O(existing list size).
	Append(term string, ps postings.List) error
	// Get returns the term's full posting list in canonical order.
	Get(term string) (postings.List, error)
	// Scan streams the term's postings in order, starting at the first
	// posting >= from. It stops early when fn returns false.
	Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error
	// Count returns the number of postings stored for the term.
	Count(term string) (int, error)
	// Delete removes one posting from the term's list (it is not an
	// error if absent).
	Delete(term string, p sid.Posting) error
	// DeleteTerm removes a term's entire list.
	DeleteTerm(term string) error
	// Terms lists the stored terms in lexicographic order.
	Terms() ([]string, error)
	// Close releases resources, flushing pending writes.
	Close() error
}

// Mem is an in-memory Store.
type Mem struct {
	mu    sync.RWMutex
	lists map[string]postings.List
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{lists: map[string]postings.List{}} }

// Append implements Store. Postings are merged into sorted position.
// Re-appending a posting already present is a no-op, which makes
// at-least-once delivery (retried or duplicated DHT appends) safe.
func (m *Mem) Append(term string, ps postings.List) error {
	if len(ps) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appendLocked(term, ps)
	return nil
}

// appendLocked merges postings under m.mu (Append and ApplyBatch). It
// never overwrites elements below a published slice's length, so slice
// headers handed out by Snapshot stay valid without copying.
func (m *Mem) appendLocked(term string, ps postings.List) {
	add := ps.Clone()
	add.Sort()
	add = add.Dedup()
	cur := m.lists[term]
	if n := len(cur); n == 0 || cur[n-1].Compare(add[0]) < 0 {
		// Common fast path: bulk loads arrive in order.
		m.lists[term] = append(cur, add...)
		return
	}
	m.lists[term] = postings.MergeUnique(cur, add)
}

// Get implements Store.
func (m *Mem) Get(term string) (postings.List, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lists[term].Clone(), nil
}

// Scan implements Store. The slice header captured under RLock is a
// consistent prefix of the list — published elements are never mutated
// in place (Append extends past the captured length, Delete copies) —
// so the scan iterates it directly instead of cloning the whole tail,
// which allocated O(list) even when fn stopped after one posting.
func (m *Mem) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	m.mu.RLock()
	l := m.lists[term]
	m.mu.RUnlock()
	i := sort.Search(len(l), func(i int) bool { return l[i].Compare(from) >= 0 })
	for _, p := range l[i:] {
		if !fn(p) {
			return nil
		}
	}
	return nil
}

// Count implements Store.
func (m *Mem) Count(term string) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.lists[term]), nil
}

// Delete implements Store.
func (m *Mem) Delete(term string, p sid.Posting) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deleteLocked(term, p)
	return nil
}

// deleteLocked removes one posting under m.mu. It rebuilds the list
// instead of shifting in place: slice headers handed out by Snapshot
// (and by lock-free Scan) share the old backing array, which must stay
// untouched.
func (m *Mem) deleteLocked(term string, p sid.Posting) {
	l := m.lists[term]
	i := sort.Search(len(l), func(i int) bool { return l[i].Compare(p) >= 0 })
	if i >= len(l) || l[i] != p {
		return
	}
	nl := make(postings.List, 0, len(l)-1)
	nl = append(nl, l[:i]...)
	nl = append(nl, l[i+1:]...)
	m.lists[term] = nl
}

// DeleteTerm implements Store.
func (m *Mem) DeleteTerm(term string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.lists, term)
	return nil
}

// Terms implements Store.
func (m *Mem) Terms() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.lists))
	for t := range m.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Naive is the PAST-like baseline store: every term's posting list is
// one gzip-compressed file, and each Append reads, decompresses,
// merges, recompresses and rewrites the whole file — the quadratic
// behaviour the paper measured before re-engineering the store.
type Naive struct {
	dir string
	mu  sync.Mutex
}

// NewNaive returns a naive store rooted at dir (created if needed).
func NewNaive(dir string) (*Naive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: naive: %w", err)
	}
	return &Naive{dir: dir}, nil
}

func (n *Naive) path(term string) string {
	// Escape path separators; term keys are short ("l:author"). The
	// escape character itself goes first, so a term containing a literal
	// "%2F" ("%252F" on disk) cannot collide with a term containing "/".
	safe := strings.NewReplacer("%", "%25", "/", "%2F", "\\", "%5C", ":", "%3A", ".", "%2E").Replace(term)
	return filepath.Join(n.dir, safe+".gz")
}

func (n *Naive) read(term string) (postings.List, error) {
	f, err := os.Open(n.path(term))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: naive: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("store: naive: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("store: naive: %w", err)
	}
	l, _, err := postings.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("store: naive: %w", err)
	}
	return l, nil
}

func (n *Naive) write(term string, l postings.List) error {
	raw, err := postings.Encode(l)
	if err != nil {
		return fmt.Errorf("store: naive: %w", err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return fmt.Errorf("store: naive: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("store: naive: %w", err)
	}
	if err := os.WriteFile(n.path(term), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: naive: %w", err)
	}
	return nil
}

// Append implements Store — deliberately by read-modify-write.
func (n *Naive) Append(term string, ps postings.List) error {
	if len(ps) == 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	cur, err := n.read(term)
	if err != nil {
		return err
	}
	add := ps.Clone()
	add.Sort()
	return n.write(term, postings.MergeUnique(cur, add))
}

// Get implements Store.
func (n *Naive) Get(term string) (postings.List, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.read(term)
}

// Scan implements Store.
func (n *Naive) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	l, err := n.Get(term)
	if err != nil {
		return err
	}
	i := sort.Search(len(l), func(i int) bool { return l[i].Compare(from) >= 0 })
	for _, p := range l[i:] {
		if !fn(p) {
			return nil
		}
	}
	return nil
}

// Count implements Store.
func (n *Naive) Count(term string) (int, error) {
	l, err := n.Get(term)
	return len(l), err
}

// Delete implements Store.
func (n *Naive) Delete(term string, p sid.Posting) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, err := n.read(term)
	if err != nil {
		return err
	}
	i := sort.Search(len(l), func(i int) bool { return l[i].Compare(p) >= 0 })
	if i < len(l) && l[i] == p {
		return n.write(term, append(l[:i], l[i+1:]...))
	}
	return nil
}

// DeleteTerm implements Store.
func (n *Naive) DeleteTerm(term string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	err := os.Remove(n.path(term))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Terms implements Store.
func (n *Naive) Terms() ([]string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ents, err := os.ReadDir(n.dir)
	if err != nil {
		return nil, fmt.Errorf("store: naive: %w", err)
	}
	// Unescape the escape character last, mirroring path's escape order.
	unescape := strings.NewReplacer("%2F", "/", "%5C", "\\", "%3A", ":", "%2E", ".", "%25", "%")
	var out []string
	for _, e := range ents {
		// Only .gz files are term blobs; TrimSuffix alone used to let
		// stray directory entries (editor droppings, tempfiles) through
		// as phantom terms.
		name, ok := strings.CutSuffix(e.Name(), ".gz")
		if !ok {
			continue
		}
		out = append(out, unescape.Replace(name))
	}
	sort.Strings(out)
	return out, nil
}

// Close implements Store.
func (n *Naive) Close() error { return nil }
